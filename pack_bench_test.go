package progqoi

// pack_bench_test.go benchmarks the producer side of the pipeline: the
// PR 5 parallel ingest. BenchmarkPackSequential vs BenchmarkPackParallel
// runs the full pack path — refactor every variable and write the archive
// blobs — with the encode pool off and on; the CI benchmark gate requires
// the parallel variant to beat the sequential reference ≥2x on the 4-core
// runner, mirroring the Advance gate on the retrieval side.

import (
	"context"
	"runtime"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/storage"
)

func benchPack(b *testing.B, workers int) {
	ds := datagen.GE("GE-pack-bench", 24, 512, 17)
	opt := core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
		Workers:     workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, opt)
		if err != nil {
			b.Fatal(err)
		}
		if err := storage.WriteArchive(context.Background(), storage.NewMemStore(), "ge", vars); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(ds.TotalBytes())
}

// BenchmarkPackSequential is the single-threaded ingest reference.
func BenchmarkPackSequential(b *testing.B) { benchPack(b, 1) }

// BenchmarkPackParallel packs the same dataset with the full worker pool:
// variables refactor concurrently and the per-bitplane encode stages
// pool-schedule within each. The CI benchmark gate requires ≥2x over
// BenchmarkPackSequential on the 4-core runner.
func BenchmarkPackParallel(b *testing.B) { benchPack(b, runtime.GOMAXPROCS(0)) }

// BenchmarkStreamingPack measures the bounded-memory streaming path
// (storage.RefactorTo): sequential over variables, pooled within each.
// Ungated — it exists to track the cost of the memory bound next to the
// batch path above.
func BenchmarkStreamingPack(b *testing.B) {
	ds := datagen.GE("GE-pack-bench", 24, 512, 17)
	opt := core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := storage.RefactorTo(context.Background(), storage.NewMemStore(), "ge", ds.FieldNames, ds.Dims, opt,
			func(f int) ([]float64, error) { return ds.Fields[f], nil })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(ds.TotalBytes())
}
