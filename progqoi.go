// Package progqoi is an error-controlled progressive retrieval library for
// scientific data with guaranteed error bounds on derivable quantities of
// interest (QoIs), reproducing the SC'24 paper "Error-controlled
// Progressive Retrieval of Scientific Data under Derivable Quantities of
// Interest".
//
// A producer refactors each field once into progressive fragments:
//
//	archive, err := progqoi.Refactor(
//	    []string{"Vx", "Vy", "Vz"}, fields, []int{512, 512},
//	    progqoi.WithMethod(progqoi.PMGARDHB))
//
// A consumer then opens a retrieval session and asks for QoIs under
// absolute error tolerances; the session fetches only the fragments needed
// to *certify* those tolerances from the reconstruction alone — no ground
// truth required — and reuses every byte across successive requests:
//
//	sess, err := archive.Open(nil)
//	vtot, err := progqoi.ParseQoI("VTOT", "sqrt(Vx^2+Vy^2+Vz^2)", archive.FieldNames())
//	res, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-4})
//	// res.Data, res.EstErrors, res.RetrievedBytes
//
// QoIs are derivable when composable from the paper's basis: polynomials,
// square root, the radical 1/(x+c), addition, multiplication, division and
// composition — enough for total velocity, temperature, Mach number, total
// pressure, viscosity, molar-concentration products, and far more.
//
// # Remote retrieval
//
// The paper's headline scenario keeps the refactored fragments at a
// storage site and pulls only the bytes each tolerance needs. Serve an
// archive directory with the progqoid daemon (cmd/progqoid) and open it
// over the wire:
//
//	archive, err := progqoi.OpenRemote("http://storage-site:9123", "ge")
//	sess, err := archive.Open(nil)
//	res, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-4})
//
// A remote session certifies the same error bounds and reconstructs the
// same bytes as a local one; fragment fetches are batched into one HTTP
// round trip per retrieval iteration, cached in a byte-bounded LRU shared
// by all sessions of the archive, and coalesced across concurrent
// sessions. Archive.RemoteStats reports actual wire bytes next to each
// session's logical RetrievedBytes.
package progqoi

import (
	"fmt"
	"net/http"

	"progqoi/internal/client"
	"progqoi/internal/core"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
)

// Method selects a progressive representation.
type Method = progressive.Method

// The available progressive representations (§V-B of the paper).
const (
	// PSZ3 stores independent error-bounded snapshots.
	PSZ3 = progressive.PSZ3
	// PSZ3Delta stores residual snapshots (no cross-request redundancy).
	PSZ3Delta = progressive.PSZ3Delta
	// PMGARD is the multilevel orthogonal-basis decomposition + bit planes.
	PMGARD = progressive.PMGARD
	// PMGARDHB is the paper's revised hierarchical-basis variant: tighter
	// L∞ estimates, faster refactoring (the recommended default).
	PMGARDHB = progressive.PMGARDHB
)

// QoI is a named derivable quantity of interest.
type QoI = qoi.QoI

// Expr is a derivable QoI expression tree; see ParseQoI and the builders.
type Expr = qoi.Expr

// Result reports one retrieval: reconstructed data, certified per-QoI error
// estimates, and cumulative retrieved bytes.
type Result = core.Result

// ErrExhausted is returned (with a best-effort Result) when full fidelity
// is reached before the requested tolerances can be certified.
var ErrExhausted = core.ErrExhausted

// ParseQoI compiles a formula over the named fields into a QoI, e.g.
// ParseQoI("T", "P/(287.1*D)", []string{"Vx","Vy","Vz","P","D"}).
// Half-integer exponents (x^3.5) lower automatically to sqrt(x^7).
func ParseQoI(name, formula string, fields []string) (QoI, error) {
	e, err := qoi.Parse(formula, fields)
	if err != nil {
		return QoI{}, err
	}
	return QoI{Name: name, Expr: e}, nil
}

// TotalVelocity returns the √(Vx²+Vy²+Vz²) QoI over three field indices.
func TotalVelocity(vx, vy, vz int) QoI { return qoi.TotalVelocity(vx, vy, vz) }

// GEQoIs returns the paper's six GE CFD QoIs (Equations 1–6), defined over
// fields ordered Vx, Vy, Vz, P, D.
func GEQoIs() []QoI { return qoi.GEQoIs() }

// Option configures Refactor.
type Option func(*options)

type options struct {
	method    Method
	maskZeros bool
	planes    int
	snapshots []float64
	tail      bool
}

// WithMethod selects the progressive representation (default PMGARDHB).
func WithMethod(m Method) Option { return func(o *options) { o.method = m } }

// WithZeroMask enables the outlier mask for exact-zero points, keeping
// square-root QoI estimates finite at wall nodes (default on).
func WithZeroMask(on bool) Option { return func(o *options) { o.maskZeros = on } }

// WithPlanes sets the bit-plane count for PMGARD methods (default 60).
func WithPlanes(n int) Option { return func(o *options) { o.planes = n } }

// WithSnapshotBounds sets the preset absolute bounds for snapshot methods
// (default: 16 decades from 1/10 of the field range).
func WithSnapshotBounds(ebs []float64) Option {
	return func(o *options) { o.snapshots = append([]float64(nil), ebs...) }
}

// WithLosslessTail appends a bit-exact final fragment to snapshot methods
// so any tolerance is reachable (default on).
func WithLosslessTail(on bool) Option { return func(o *options) { o.tail = on } }

// Archive is a set of refactored variables sharing one grid. A local
// Archive comes from Refactor; a remote one from OpenRemote, in which case
// sessions fetch fragment payloads over the wire as they need them.
type Archive struct {
	vars   []*core.Variable
	names  []string
	dims   []int
	fields int
	remote *client.Remote
}

// RemoteConfig tunes OpenRemote; the zero value uses the defaults of the
// remote client (30 s HTTP timeout, 3 retries with exponential backoff,
// 64 MiB fragment cache).
type RemoteConfig struct {
	// CacheBytes bounds the fragment LRU cache shared by all sessions of
	// this archive (negative disables caching).
	CacheBytes int64
	// MaxRetries re-attempts failed requests (negative disables retries).
	MaxRetries int
	// HTTPClient overrides the transport.
	HTTPClient *http.Client
}

// RemoteStats snapshots a remote archive's wire accounting: fragment
// payload bytes fetched over HTTP (the same unit as RetrievedBytes;
// transport compression not deducted), cache hits (free), and coalesced
// fetches shared between concurrent sessions. Compare WireBytes with a
// session's RetrievedBytes to see what the cache saved.
type RemoteStats = client.Stats

// OpenRemote opens a dataset hosted by a progqoid fragment service (see
// cmd/progqoid). Only retrieval metadata crosses the wire up front;
// sessions opened with Archive.Open then pull exactly the fragments each
// tolerance needs, batched into one request per retrieval iteration.
func OpenRemote(baseURL, dataset string, cfg ...RemoteConfig) (*Archive, error) {
	var rc RemoteConfig
	if len(cfg) > 0 {
		rc = cfg[0]
	}
	rem, err := client.Open(baseURL, dataset, client.Options{
		CacheBytes: rc.CacheBytes,
		MaxRetries: rc.MaxRetries,
		HTTPClient: rc.HTTPClient,
	})
	if err != nil {
		return nil, err
	}
	names := rem.FieldNames()
	return &Archive{
		names:  names,
		dims:   rem.Dims(),
		fields: len(names),
		remote: rem,
	}, nil
}

// Remote reports whether the archive retrieves over the network.
func (a *Archive) Remote() bool { return a.remote != nil }

// RemoteStats returns the wire accounting of a remote archive (zero for
// local archives).
func (a *Archive) RemoteStats() RemoteStats {
	if a.remote == nil {
		return RemoteStats{}
	}
	return a.remote.Client().Stats()
}

// Refactor transforms fields (row-major on dims, one slice per field) into
// a progressive archive.
func Refactor(names []string, fields [][]float64, dims []int, opts ...Option) (*Archive, error) {
	o := options{method: PMGARDHB, maskZeros: true, tail: true}
	for _, fn := range opts {
		fn(&o)
	}
	vars, err := core.RefactorVariables(names, fields, dims, core.RefactorOptions{
		Progressive: progressive.Options{
			Method:       o.method,
			Planes:       o.planes,
			SnapshotEBs:  o.snapshots,
			LosslessTail: o.tail,
		},
		MaskZeros: o.maskZeros,
	})
	if err != nil {
		return nil, err
	}
	return &Archive{vars: vars, names: append([]string(nil), names...), dims: append([]int(nil), dims...), fields: len(fields)}, nil
}

// FieldNames returns the archive's field names in variable order.
func (a *Archive) FieldNames() []string { return append([]string(nil), a.names...) }

// Dims returns the grid shape.
func (a *Archive) Dims() []int { return append([]int(nil), a.dims...) }

// StoredBytes returns the total fragment bytes across all variables (for
// remote archives: the bytes held at the storage site, not yet fetched).
func (a *Archive) StoredBytes() int64 {
	if a.remote != nil {
		return a.remote.StoredBytes()
	}
	var n int64
	for _, v := range a.vars {
		n += v.Ref.TotalBytes()
	}
	return n
}

// Variables exposes the underlying refactored variables (advanced use:
// custom retrievers, storage layers, transfer simulation). Remote archives
// hold no local variables and return nil.
func (a *Archive) Variables() []*core.Variable { return a.vars }

// FetchObserver sees every fragment fetch (index within its variable,
// size in bytes); use it for byte accounting or transfer simulation.
type FetchObserver = progressive.FetchFunc

// SessionConfig tunes the retrieval loop; the zero value uses the paper's
// settings (tightening factor c = 1.5, max-error-point optimization on).
type SessionConfig = core.Config

// Session is an incremental QoI-preserving retrieval session. Fragments
// fetched by one Retrieve call are reused by every later call.
type Session struct {
	rt *core.Retriever
}

// Open starts a retrieval session over the archive. fetch may be nil. On a
// remote archive the session's fragment fetches cross the wire, batched
// into one request per retrieval iteration; concurrent sessions share the
// archive's fragment cache and coalesce duplicate fetches.
func (a *Archive) Open(fetch FetchObserver, cfg ...SessionConfig) (*Session, error) {
	var c core.Config
	if len(cfg) > 0 {
		c = cfg[0]
	}
	var (
		rt  *core.Retriever
		err error
	)
	if a.remote != nil {
		rt, err = a.remote.NewSession(fetch, c)
	} else {
		rt, err = core.NewRetriever(a.vars, c, fetch)
	}
	if err != nil {
		return nil, err
	}
	return &Session{rt: rt}, nil
}

// Retrieve fetches just enough fragments to certify every QoI within its
// absolute tolerance, returning the reconstruction and the certified error
// estimates. When tolerances cannot be certified even at full fidelity it
// returns the best-effort Result together with ErrExhausted.
func (s *Session) Retrieve(qois []QoI, tolerances []float64) (*Result, error) {
	return s.rt.Retrieve(core.Request{QoIs: qois, Tolerances: tolerances})
}

// Region is a half-open flat-index range of the data space used for
// region-of-interest retrieval; the zero Region means the whole domain.
type Region = core.Region

// RetrieveRegions is Retrieve with per-QoI regions of interest: QoI k is
// certified only over regions[k]. Request the same QoI twice with
// different regions and tolerances to express spatially varying fidelity.
func (s *Session) RetrieveRegions(qois []QoI, tolerances []float64, regions []Region) (*Result, error) {
	return s.rt.Retrieve(core.Request{QoIs: qois, Tolerances: tolerances, Regions: regions})
}

// RetrieveRelative is Retrieve with tolerances relative to the given QoI
// ranges (the paper's evaluation convention): absolute τ = rel × range.
func (s *Session) RetrieveRelative(qois []QoI, rel []float64, qoiRanges []float64) (*Result, error) {
	if len(rel) != len(qois) || len(qoiRanges) != len(qois) {
		return nil, fmt.Errorf("progqoi: rel/range length mismatch")
	}
	abs := make([]float64, len(rel))
	for i := range rel {
		abs[i] = rel[i] * qoiRanges[i]
	}
	return s.rt.Retrieve(core.Request{QoIs: qois, Tolerances: abs, InitRel: rel})
}

// RetrievedBytes returns the session's cumulative fetched bytes.
func (s *Session) RetrievedBytes() int64 { return s.rt.RetrievedBytes() }

// ActualQoIErrors computes ground-truth QoI errors between original and
// reconstructed fields — evaluation only; the retrieval loop never sees it.
func ActualQoIErrors(qois []QoI, orig, recon [][]float64) []float64 {
	return core.ActualQoIErrors(qois, orig, recon)
}

// QoIRanges computes per-QoI value ranges on original data, for converting
// between absolute and relative tolerances.
func QoIRanges(qois []QoI, orig [][]float64) []float64 {
	return core.QoIRanges(qois, orig)
}
