// Package progqoi is an error-controlled progressive retrieval library for
// scientific data with guaranteed error bounds on derivable quantities of
// interest (QoIs), reproducing the SC'24 paper "Error-controlled
// Progressive Retrieval of Scientific Data under Derivable Quantities of
// Interest".
//
// A producer refactors each field once into progressive fragments:
//
//	archive, err := progqoi.Refactor(
//	    []string{"Vx", "Vy", "Vz"}, fields, []int{512, 512},
//	    progqoi.WithMethod(progqoi.PMGARDHB))
//
// A consumer then opens a retrieval session and asks for QoIs under error
// tolerances; the session fetches only the fragments needed to *certify*
// those tolerances from the reconstruction alone — no ground truth
// required — and reuses every byte across successive requests. A request
// is a set of [Target]s, each pairing one QoI with its own tolerance
// (absolute or relative) and optional region of interest:
//
//	sess, err := archive.Open()
//	vtot, err := progqoi.ParseQoI("VTOT", "sqrt(Vx^2+Vy^2+Vz^2)", archive.FieldNames())
//	res, err := sess.Do(ctx, progqoi.Request{Targets: []progqoi.Target{
//	    {QoI: vtot, Tolerance: 1e-4},
//	}})
//	// res.Data, res.EstErrors, res.RetrievedBytes
//
// The context cancels or deadlines the retrieval end to end, including
// in-flight HTTP fetches of a remote session; Request.OnProgress streams
// one report per certify-loop iteration. See [Session.Do] for both.
//
// QoIs are derivable when composable from the paper's basis: polynomials,
// square root, the radical 1/(x+c), addition, multiplication, division and
// composition — enough for total velocity, temperature, Mach number, total
// pressure, viscosity, molar-concentration products, and far more.
//
// # Remote retrieval
//
// The paper's headline scenario keeps the refactored fragments at a
// storage site and pulls only the bytes each tolerance needs. [Open]
// resolves any archive reference — the last path segment is always the
// dataset:
//
//	archive, err := progqoi.Open(ctx, "/data/archives/ge")          // local directory
//	archive, err = progqoi.Open(ctx, "http://storage-site:9123/ge") // progqoid fragment service
//	archive, err = progqoi.Open(ctx, "s3://bucket/archives/ge",     // object store, ranged reads
//	    progqoi.WithS3Endpoint("http://minio:9000"))
//	sess, err := archive.Open()
//	res, err := sess.Do(ctx, progqoi.Request{Targets: []progqoi.Target{
//	    {QoI: vtot, Tolerance: 1e-4},
//	}})
//
// A remote session certifies the same error bounds and reconstructs the
// same bytes as a local one; fragment fetches are batched into one HTTP
// round trip per retrieval iteration, cached in a byte-bounded LRU shared
// by all sessions of the archive, and coalesced across concurrent
// sessions. Archive.RemoteStats reports actual wire bytes next to each
// session's logical RetrievedBytes. An s3:// archive skips the daemon
// entirely: sessions fetch exactly the fragment byte ranges they need
// with authenticated ranged GETs, every read pinned to the object's ETag
// (Archive.StoreStats reports the cold fetches that reached the bucket).
//
// The producer side scales too: Refactor parallelizes across variables
// and bit planes under [WithRefactorWorkers] with bit-identical output,
// `progqoi pack` streams one variable at a time (crash-safe: the archive
// manifest commits last), and a running progqoid publishes newly packed
// datasets with zero downtime via its admin reload route. ARCHITECTURE.md
// and FORMATS.md at the repository root document the layers and every
// at-rest/wire format.
//
// Several progqoid nodes serving the same archive form a cluster: pass
// the extra base URLs with [WithEndpoints] (or let [WithPeerDiscovery]
// find them), and fragment fetches shard across the nodes by rendezvous
// hashing with transparent replica failover — a node dying mid-retrieval
// changes nothing about the result.
//
// # Concurrency
//
// A Session is a stateful incremental cursor: use each Session from one
// goroutine at a time. Everything above a Session is concurrency-safe —
// any number of goroutines may Open sessions of the same Archive (local or
// remote) and drive them in parallel; remote sessions share the archive's
// fragment cache and coalesce duplicate in-flight fetches.
package progqoi

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"progqoi/internal/client"
	"progqoi/internal/core"
	"progqoi/internal/obs"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
)

// Method selects a progressive representation.
type Method = progressive.Method

// The available progressive representations (§V-B of the paper).
const (
	// PSZ3 stores independent error-bounded snapshots.
	PSZ3 = progressive.PSZ3
	// PSZ3Delta stores residual snapshots (no cross-request redundancy).
	PSZ3Delta = progressive.PSZ3Delta
	// PMGARD is the multilevel orthogonal-basis decomposition + bit planes.
	PMGARD = progressive.PMGARD
	// PMGARDHB is the paper's revised hierarchical-basis variant: tighter
	// L∞ estimates, faster refactoring (the recommended default).
	PMGARDHB = progressive.PMGARDHB
)

// QoI is a named derivable quantity of interest.
type QoI = qoi.QoI

// Expr is a derivable QoI expression tree; see ParseQoI and the builders.
type Expr = qoi.Expr

// Result reports one retrieval: reconstructed data, certified per-QoI error
// estimates, and cumulative retrieved bytes.
type Result = core.Result

// Iteration is one certify-loop progress report streamed to
// Request.OnProgress: iteration number, per-QoI estimated errors, and
// cumulative retrieved/wire bytes.
type Iteration = core.Iteration

// ErrExhausted is returned (with a best-effort Result) when full fidelity
// is reached before the requested tolerances can be certified.
var ErrExhausted = core.ErrExhausted

// ErrBadRequest is the sentinel wrapped by every argument-validation
// failure of Session.Do and the legacy Retrieve wrappers: length
// mismatches, non-positive tolerances, relative targets without a range,
// malformed regions, QoIs referencing unknown variables. Test with
// errors.Is(err, ErrBadRequest).
var ErrBadRequest = core.ErrBadRequest

// ParseQoI compiles a formula over the named fields into a QoI, e.g.
// ParseQoI("T", "P/(287.1*D)", []string{"Vx","Vy","Vz","P","D"}).
// Half-integer exponents (x^3.5) lower automatically to sqrt(x^7).
func ParseQoI(name, formula string, fields []string) (QoI, error) {
	e, err := qoi.Parse(formula, fields)
	if err != nil {
		return QoI{}, err
	}
	return QoI{Name: name, Expr: e}, nil
}

// TotalVelocity returns the √(Vx²+Vy²+Vz²) QoI over three field indices.
func TotalVelocity(vx, vy, vz int) QoI { return qoi.TotalVelocity(vx, vy, vz) }

// GEQoIs returns the paper's six GE CFD QoIs (Equations 1–6), defined over
// fields ordered Vx, Vy, Vz, P, D.
func GEQoIs() []QoI { return qoi.GEQoIs() }

// Option configures Refactor.
type Option func(*options)

type options struct {
	method    Method
	maskZeros bool
	planes    int
	snapshots []float64
	tail      bool
	workers   int
}

// WithMethod selects the progressive representation (default PMGARDHB).
func WithMethod(m Method) Option { return func(o *options) { o.method = m } }

// WithZeroMask enables the outlier mask for exact-zero points, keeping
// square-root QoI estimates finite at wall nodes (default on).
func WithZeroMask(on bool) Option { return func(o *options) { o.maskZeros = on } }

// WithPlanes sets the bit-plane count for PMGARD methods (default 60).
func WithPlanes(n int) Option { return func(o *options) { o.planes = n } }

// WithSnapshotBounds sets the preset absolute bounds for snapshot methods
// (default: 16 decades from 1/10 of the field range).
func WithSnapshotBounds(ebs []float64) Option {
	return func(o *options) { o.snapshots = append([]float64(nil), ebs...) }
}

// WithLosslessTail appends a bit-exact final fragment to snapshot methods
// so any tolerance is reachable (default on).
func WithLosslessTail(on bool) Option { return func(o *options) { o.tail = on } }

// WithRefactorWorkers bounds Refactor's encode pool, the producer-side
// mirror of WithWorkers: variables refactor concurrently and the
// per-bitplane encode stages within each variable share the same budget.
// n = 1 selects the fully sequential path; the default (0) is GOMAXPROCS.
// Parallel refactoring is deterministic — the archive is bit-identical to
// the sequential path for every setting.
func WithRefactorWorkers(n int) Option { return func(o *options) { o.workers = n } }

// Archive is a set of refactored variables sharing one grid. A local
// Archive comes from Refactor or a file:// reference; Open's http(s) and
// s3 schemes return archives whose sessions fetch fragment payloads over
// the wire as they need them.
type Archive struct {
	vars   []*core.Variable
	names  []string
	dims   []int
	fields int
	remote *client.Remote
	store  *storeArchive
}

// RemoteOption configures OpenRemote, in the same functional-options idiom
// Refactor and Archive.Open use. With no options the remote client's
// defaults apply: 30 s response-header timeout, 3 retries with exponential
// backoff, 64 MiB fragment cache.
type RemoteOption func(*remoteOptions)

type remoteOptions struct {
	cacheBytes  int64
	maxRetries  int
	readAhead   int
	httpClient  *http.Client
	endpoints   []string
	replication int
	discover    bool
	token       string

	topologyRefresh time.Duration
	s3Endpoint      string
	s3Access        string
	s3Secret        string
	s3Region        string
}

// WithCache bounds the fragment LRU cache shared by all sessions of the
// archive (default 64 MiB; negative disables caching).
func WithCache(bytes int64) RemoteOption {
	return func(o *remoteOptions) { o.cacheBytes = bytes }
}

// WithRetries sets how many times failed requests are re-attempted
// (default 3; negative disables retries).
func WithRetries(n int) RemoteOption {
	return func(o *remoteOptions) { o.maxRetries = n }
}

// WithHTTPClient overrides the HTTP transport.
func WithHTTPClient(hc *http.Client) RemoteOption {
	return func(o *remoteOptions) { o.httpClient = hc }
}

// WithEndpoints adds further cluster nodes serving the same archive as
// the primary base URL. Fragment fetches shard across all endpoints by
// rendezvous hashing over (variable, fragment id) — so each node's hot
// cache sees a stable slice of the key space — and each batched fetch
// splits into concurrent per-shard sub-batches. A node that refuses
// connections or answers 5xx is failed over transparently: retrieval
// results stay bit-identical, and RemoteStats.Failovers counts the
// rerouted fetches.
func WithEndpoints(urls ...string) RemoteOption {
	return func(o *remoteOptions) { o.endpoints = append(o.endpoints, urls...) }
}

// WithReplication sets the replica-set size per shard: how many
// rendezvous-preferred endpoints a fragment fetch tries before spilling
// to the rest of the cluster (default 2, clamped to the endpoint count).
func WithReplication(n int) RemoteOption {
	return func(o *remoteOptions) { o.replication = n }
}

// WithPeerDiscovery asks OpenRemote to fetch the seed node's static
// topology (/v1/cluster, populated by progqoid -peers) and fold the
// advertised peers into the endpoint set — point a client at one node of
// a static cluster and it finds the rest. Best-effort: a node without
// the route behaves as a solo node.
func WithPeerDiscovery() RemoteOption {
	return func(o *remoteOptions) { o.discover = true }
}

// WithS3Endpoint sets the object-store base URL for s3:// references
// opened with Open (overrides the PROGQOI_S3_ENDPOINT environment
// variable). Ignored for other schemes.
func WithS3Endpoint(endpoint string) RemoteOption {
	return func(o *remoteOptions) { o.s3Endpoint = endpoint }
}

// WithS3Credentials sets the SigV4 signing credentials for s3://
// references opened with Open (overrides PROGQOI_S3_ACCESS_KEY and
// PROGQOI_S3_SECRET_KEY). Both empty sends unsigned requests. Ignored
// for other schemes.
func WithS3Credentials(accessKey, secretKey string) RemoteOption {
	return func(o *remoteOptions) { o.s3Access, o.s3Secret = accessKey, secretKey }
}

// WithS3Region sets the SigV4 signing region for s3:// references opened
// with Open (overrides PROGQOI_S3_REGION; default "us-east-1"). Ignored
// for other schemes.
func WithS3Region(region string) RemoteOption {
	return func(o *remoteOptions) { o.s3Region = region }
}

// WithToken attaches a tenant bearer token to every request against a
// progqoid service started with -tenants. The token selects the tenant's
// QoS envelope (rate limit, in-flight cap, priority class); requests over
// the rate limit are throttled with 429 + Retry-After, which the client
// honors transparently — across replicas, a retrieval slows down rather
// than fails, and final results stay bit-identical. Missing or unknown
// tokens fail immediately with an error matching ErrUnauthorized.
// Ignored by servers without tenants and by non-http(s) schemes.
func WithToken(token string) RemoteOption {
	return func(o *remoteOptions) { o.token = token }
}

// Sentinel errors surfaced by sessions against a multi-tenant service,
// matched with errors.Is: ErrUnauthorized (401 — missing or unknown
// token), ErrForbidden (403), and ErrRateLimited (a 429 that survived
// the whole retry budget on every replica).
var (
	ErrUnauthorized = client.ErrUnauthorized
	ErrForbidden    = client.ErrForbidden
	ErrRateLimited  = client.ErrRateLimited
)

// WithTopologyRefresh makes the archive follow an elastic progqoid
// cluster: every interval the client re-fetches /v1/cluster and swaps in
// the live membership as a new routing view, so nodes that join start
// taking their rendezvous share of fragment fetches mid-session and
// nodes that drain or die stop receiving new requests. A fully failed
// retry pass also forces an immediate refresh, so a rolling restart is
// picked up within one backoff rather than one interval. Combine with
// WithPeerDiscovery to bootstrap from a single seed URL. Zero (the
// default) keeps the classic static topology. Call Archive.Close to stop
// the background refresher.
func WithTopologyRefresh(interval time.Duration) RemoteOption {
	return func(o *remoteOptions) { o.topologyRefresh = interval }
}

// WithReadAhead pipelines the wire with the decoder: after each batched
// fragment fetch, up to n further fragments per variable — the ones a
// tightening iteration would request next — are fetched in the background
// into the shared cache while the session's worker pool decodes the batch
// it already has (default 0 = off). Speculative fragments count toward
// RemoteStats.WireBytes even when a retrieval certifies before needing
// them, so the wire total can exceed a session's RetrievedBytes.
func WithReadAhead(n int) RemoteOption {
	return func(o *remoteOptions) { o.readAhead = n }
}

// RemoteStats snapshots a remote archive's wire accounting: fragment
// payload bytes fetched over HTTP (the same unit as RetrievedBytes;
// transport compression not deducted), cache hits (free), and coalesced
// fetches shared between concurrent sessions. Compare WireBytes with a
// session's RetrievedBytes to see what the cache saved.
type RemoteStats = client.Stats

// OpenRemote opens a dataset hosted by a progqoid fragment service (see
// cmd/progqoid). Only retrieval metadata crosses the wire up front —
// scoped by ctx — and sessions opened with Archive.Open then pull exactly
// the fragments each tolerance needs, batched into one request per
// retrieval iteration under each Do call's own context.
//
// Deprecated: use Open with an "http(s)://host[/base]/dataset" reference;
// OpenRemote(ctx, base, ds, opts...) is Open(ctx, base+"/"+ds, opts...).
func OpenRemote(ctx context.Context, baseURL, dataset string, opts ...RemoteOption) (*Archive, error) {
	var ro remoteOptions
	for _, fn := range opts {
		if fn != nil {
			fn(&ro)
		}
	}
	return openRemoteArchive(ctx, baseURL, dataset, ro)
}

// Remote reports whether the archive retrieves from a progqoid fragment
// service (see StoreBacked for archives reading an object store directly).
func (a *Archive) Remote() bool { return a.remote != nil }

// RemoteStats returns the wire accounting of a remote archive (zero for
// local archives).
func (a *Archive) RemoteStats() RemoteStats {
	if a.remote == nil {
		return RemoteStats{}
	}
	return a.remote.Client().Stats()
}

// WaitReadAhead blocks until every background read-ahead fetch launched by
// WithReadAhead sessions has finished — for orderly shutdown or stable
// stats snapshots; retrieval itself never waits on speculation. No-op for
// local archives.
func (a *Archive) WaitReadAhead() {
	if a.remote != nil {
		a.remote.WaitReadAhead()
	}
}

// Close releases the archive's background machinery: it waits for
// in-flight read-ahead fetches and stops the topology refresher started
// by WithTopologyRefresh. Idempotent; a no-op for local and store-backed
// archives, and sessions already open keep working afterwards (the
// routing view just stops following the cluster).
func (a *Archive) Close() {
	if a.remote != nil {
		a.remote.Close()
	}
}

// Refactor transforms fields (row-major on dims, one slice per field) into
// a progressive archive.
func Refactor(names []string, fields [][]float64, dims []int, opts ...Option) (*Archive, error) {
	o := options{method: PMGARDHB, maskZeros: true, tail: true}
	for _, fn := range opts {
		fn(&o)
	}
	vars, err := core.RefactorVariables(names, fields, dims, core.RefactorOptions{
		Progressive: progressive.Options{
			Method:       o.method,
			Planes:       o.planes,
			SnapshotEBs:  o.snapshots,
			LosslessTail: o.tail,
		},
		MaskZeros: o.maskZeros,
		Workers:   o.workers,
	})
	if err != nil {
		return nil, err
	}
	return &Archive{vars: vars, names: append([]string(nil), names...), dims: append([]int(nil), dims...), fields: len(fields)}, nil
}

// FieldNames returns the archive's field names in variable order.
func (a *Archive) FieldNames() []string { return append([]string(nil), a.names...) }

// Dims returns the grid shape.
func (a *Archive) Dims() []int { return append([]int(nil), a.dims...) }

// StoredBytes returns the total fragment bytes across all variables (for
// remote and store-backed archives: the bytes held at the storage site,
// not yet fetched).
func (a *Archive) StoredBytes() int64 {
	if a.remote != nil {
		return a.remote.StoredBytes()
	}
	if a.store != nil {
		return a.store.stored
	}
	var n int64
	for _, v := range a.vars {
		n += v.Ref.TotalBytes()
	}
	return n
}

// Variables exposes the underlying refactored variables (advanced use:
// custom retrievers, storage layers, transfer simulation). Remote archives
// hold no local variables and return nil.
func (a *Archive) Variables() []*core.Variable { return a.vars }

// FetchObserver sees every fragment fetch (index within its variable,
// size in bytes); use it for byte accounting or transfer simulation.
type FetchObserver = progressive.FetchFunc

// SessionConfig tunes the retrieval loop; the zero value uses the paper's
// settings (tightening factor c = 1.5, max-error-point optimization on).
type SessionConfig = core.Config

// OpenOption configures Archive.Open, in the same functional-options idiom
// Refactor and OpenRemote use.
type OpenOption func(*openOptions)

type openOptions struct {
	fetch FetchObserver
	cfg   SessionConfig
}

// WithFetchObserver registers a callback that sees every fragment fetch
// (index, size) the session performs — byte accounting, transfer
// simulation (netsim.Recorder), progress meters.
func WithFetchObserver(fetch FetchObserver) OpenOption {
	return func(o *openOptions) { o.fetch = fetch }
}

// WithSessionConfig overrides the retrieval-loop settings (tightening
// factor, iteration cap, worker count, estimator ablations).
func WithSessionConfig(cfg SessionConfig) OpenOption {
	return func(o *openOptions) { o.cfg = cfg }
}

// WithWorkers bounds the session's retrieval compute pool: fragment decode
// inside each reader, the concurrent per-variable advance, and per-target
// error estimation all share the bound. n = 1 selects the fully sequential
// path; the default (0) is GOMAXPROCS. Parallel retrieval is
// deterministic — the reconstruction and every certified estimate are
// bit-identical to the sequential path.
func WithWorkers(n int) OpenOption {
	return func(o *openOptions) { o.cfg.Workers = n }
}

// Trace collects timed spans from a retrieval session: the plan, fetch,
// decode, commit, and estimate phases of every iteration, plus (for remote
// archives) each wire request with its byte count. A Trace is safe for
// concurrent use and may be shared across sessions; render one with
// WriteChromeTrace for chrome://tracing / Perfetto, or walk Spans directly.
type Trace = obs.Trace

// NewTrace returns an empty trace recorder with a fresh request ID.
func NewTrace() *Trace { return obs.NewTrace() }

// WithTrace records the session's retrieval phases into tr. On a remote
// archive the trace's ID also travels as the X-Request-Id header of every
// wire request, so server access logs can be joined with client spans.
// A nil tr is ignored; sessions opened without WithTrace pay no tracing
// overhead (zero extra allocations on the retrieval path).
func WithTrace(tr *Trace) OpenOption {
	return func(o *openOptions) { o.cfg.Trace = tr }
}

// Session is an incremental QoI-preserving retrieval session: a stateful
// cursor over the archive whose fragments, once fetched by any Do call,
// are reused by every later call. Use a Session from one goroutine at a
// time; open one Session per goroutine for parallel retrieval (the archive
// and, for remote archives, the shared fragment cache are
// concurrency-safe).
type Session struct {
	rt *core.Retriever
}

// Open starts a retrieval session over the archive. On a remote archive
// the session's fragment fetches cross the wire, batched into one request
// per retrieval iteration; concurrent sessions share the archive's
// fragment cache and coalesce duplicate fetches.
func (a *Archive) Open(opts ...OpenOption) (*Session, error) {
	var o openOptions
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	var (
		rt  *core.Retriever
		err error
	)
	switch {
	case a.remote != nil:
		rt, err = a.remote.NewSession(o.fetch, o.cfg)
	case a.store != nil:
		rt, err = a.store.newSession(o.fetch, o.cfg)
	default:
		rt, err = core.NewRetriever(a.vars, o.cfg, o.fetch)
	}
	if err != nil {
		return nil, err
	}
	return &Session{rt: rt}, nil
}

// Region is a half-open flat-index range of the data space used for
// region-of-interest retrieval; the zero Region means the whole domain.
type Region = core.Region

// Target is one quantity of interest with its own error requirement: an
// absolute tolerance, or a tolerance relative to the QoI's value range,
// certified over the whole domain or just a Region. A Request mixes
// targets freely — the same QoI may appear twice with different regions
// and tolerances to express spatially varying fidelity.
type Target struct {
	// QoI is the derivable quantity to certify.
	QoI QoI
	// Tolerance is the requested max error: absolute by default, or a
	// fraction of Range when Relative is set. Must be positive.
	Tolerance float64
	// Relative interprets Tolerance as Tolerance × Range (the paper's
	// evaluation convention) and seeds the error-bound assigner with the
	// relative value.
	Relative bool
	// Range is the QoI's value range (see QoIRanges); required when
	// Relative is set, ignored otherwise.
	Range float64
	// Region restricts certification to a flat-index range; the zero
	// Region means the whole domain.
	Region Region
}

// Request asks one Do call to certify a set of Targets.
type Request struct {
	Targets []Target
	// OnProgress, when set, fires after every certify-loop iteration with
	// the current per-QoI estimated errors and cumulative byte counts —
	// render convergence, or cancel the Do context from inside the
	// callback to stop early and keep the best-effort Result. It runs on
	// the retrieving goroutine.
	OnProgress func(Iteration)
}

// toCore validates the request and lowers it to the core representation.
// Every validation failure wraps ErrBadRequest.
func (r Request) toCore() (core.Request, error) {
	if len(r.Targets) == 0 {
		return core.Request{}, fmt.Errorf("%w: request has no targets", ErrBadRequest)
	}
	creq := core.Request{
		QoIs:       make([]qoi.QoI, len(r.Targets)),
		Tolerances: make([]float64, len(r.Targets)),
		OnProgress: r.OnProgress,
	}
	regions := false
	relative := false
	for k, t := range r.Targets {
		creq.QoIs[k] = t.QoI
		if !(t.Tolerance > 0) {
			return core.Request{}, fmt.Errorf("%w: target %d (%s): tolerance must be positive, got %g",
				ErrBadRequest, k, t.QoI.Name, t.Tolerance)
		}
		if t.Relative {
			if !(t.Range > 0) {
				return core.Request{}, fmt.Errorf("%w: target %d (%s): relative tolerance needs a positive Range, got %g",
					ErrBadRequest, k, t.QoI.Name, t.Range)
			}
			relative = true
			creq.Tolerances[k] = t.Tolerance * t.Range
		} else {
			creq.Tolerances[k] = t.Tolerance
		}
		if t.Region != (Region{}) {
			regions = true
		}
	}
	if relative {
		creq.InitRel = make([]float64, len(r.Targets))
		for k, t := range r.Targets {
			if t.Relative {
				creq.InitRel[k] = t.Tolerance
			}
		}
	}
	if regions {
		creq.Regions = make([]Region, len(r.Targets))
		for k, t := range r.Targets {
			creq.Regions[k] = t.Region
		}
	}
	return creq, nil
}

// Do fetches just enough fragments to certify every target, returning the
// reconstruction and the certified error estimates (EstErrors[k] belongs
// to Targets[k]). Fragments fetched by one Do call are reused by every
// later call on the same Session.
//
// ctx scopes the retrieval end to end: cancellation or deadline expiry is
// honored between loop iterations, between fragment ingests, and on
// in-flight HTTP requests of a remote session. On cancellation Do returns
// the best-effort Result accumulated so far together with an error
// wrapping ctx.Err(); the Session stays valid, and a follow-up Do resumes
// without re-fetching any fragment already held. A nil ctx means
// context.Background().
//
// When the targets cannot be certified even at full fidelity, Do returns
// the best-effort Result together with ErrExhausted. Invalid requests
// return an error wrapping ErrBadRequest.
func (s *Session) Do(ctx context.Context, req Request) (*Result, error) {
	creq, err := req.toCore()
	if err != nil {
		return nil, err
	}
	return s.rt.Retrieve(ctx, creq)
}

// Retrieve certifies every QoI within its absolute tolerance over the
// whole domain.
//
// Deprecated: use Do, which composes tolerances, regions and relative
// targets in one request and adds context cancellation and progress
// streaming. Retrieve is Do with one absolute whole-domain Target per QoI
// under context.Background().
func (s *Session) Retrieve(qois []QoI, tolerances []float64) (*Result, error) {
	if len(tolerances) != len(qois) {
		return nil, fmt.Errorf("%w: %d tolerances for %d QoIs", ErrBadRequest, len(tolerances), len(qois))
	}
	targets := make([]Target, len(qois))
	for k := range qois {
		targets[k] = Target{QoI: qois[k], Tolerance: tolerances[k]}
	}
	//progqoivet:allow ctxflow -- deprecated v1 wrapper documented to run under a root context
	return s.Do(context.Background(), Request{Targets: targets})
}

// RetrieveRegions is Retrieve with per-QoI regions of interest: QoI k is
// certified only over regions[k]. A nil regions slice means the whole
// domain for every QoI, as before.
//
// Deprecated: use Do with per-Target Regions.
func (s *Session) RetrieveRegions(qois []QoI, tolerances []float64, regions []Region) (*Result, error) {
	if regions == nil {
		regions = make([]Region, len(qois))
	}
	if len(tolerances) != len(qois) || len(regions) != len(qois) {
		return nil, fmt.Errorf("%w: %d tolerances / %d regions for %d QoIs",
			ErrBadRequest, len(tolerances), len(regions), len(qois))
	}
	targets := make([]Target, len(qois))
	for k := range qois {
		targets[k] = Target{QoI: qois[k], Tolerance: tolerances[k], Region: regions[k]}
	}
	//progqoivet:allow ctxflow -- deprecated v1 wrapper documented to run under a root context
	return s.Do(context.Background(), Request{Targets: targets})
}

// RetrieveRelative is Retrieve with tolerances relative to the given QoI
// ranges (the paper's evaluation convention): absolute τ = rel × range.
//
// Deprecated: use Do with Relative Targets.
func (s *Session) RetrieveRelative(qois []QoI, rel []float64, qoiRanges []float64) (*Result, error) {
	if len(rel) != len(qois) || len(qoiRanges) != len(qois) {
		return nil, fmt.Errorf("%w: rel/range length mismatch", ErrBadRequest)
	}
	targets := make([]Target, len(qois))
	for k := range qois {
		targets[k] = Target{QoI: qois[k], Tolerance: rel[k], Relative: true, Range: qoiRanges[k]}
	}
	//progqoivet:allow ctxflow -- deprecated v1 wrapper documented to run under a root context
	return s.Do(context.Background(), Request{Targets: targets})
}

// RetrievedBytes returns the session's cumulative fetched bytes.
func (s *Session) RetrievedBytes() int64 { return s.rt.RetrievedBytes() }

// ActualQoIErrors computes ground-truth QoI errors between original and
// reconstructed fields — evaluation only; the retrieval loop never sees it.
func ActualQoIErrors(qois []QoI, orig, recon [][]float64) []float64 {
	return core.ActualQoIErrors(qois, orig, recon)
}

// QoIRanges computes per-QoI value ranges on original data, for converting
// between absolute and relative tolerances.
func QoIRanges(qois []QoI, orig [][]float64) []float64 {
	return core.QoIRanges(qois, orig)
}
