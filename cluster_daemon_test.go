package progqoi

// cluster_daemon_test.go is the CI cluster-e2e matrix: it drives real
// progqoid processes — not in-process handlers — through the whole
// cluster story: pack an archive directory, launch a 3-node sharded
// cluster on loopback with -peers/-advertise topology, open it with peer
// discovery, and SIGKILL one node in the middle of a Do. Retrieval must
// complete through replica failover with results bit-identical to a
// local session.
//
// The test needs a built daemon and real ports, so it only runs when
// PROGQOID_BIN points at a progqoid binary (the cluster-e2e CI job builds
// one with -race); otherwise it skips and `go test ./...` stays hermetic.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"progqoi/internal/datagen"
	"progqoi/internal/storage"
)

// daemonNode is one running progqoid process.
type daemonNode struct {
	url string
	cmd *exec.Cmd
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// startDaemons launches an n-node progqoid cluster over dir and waits for
// every node to answer /healthz.
func startDaemons(t *testing.T, bin, dir string, n int) []*daemonNode {
	t.Helper()
	addrs := freeAddrs(t, n)
	nodes := make([]*daemonNode, n)
	for i, addr := range addrs {
		var peers []string
		for j, other := range addrs {
			if j != i {
				peers = append(peers, "http://"+other)
			}
		}
		cmd := exec.Command(bin,
			"-dir", dir,
			"-addr", addr,
			"-advertise", "http://"+addr,
			"-peers", strings.Join(peers, ","))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		node := &daemonNode{url: "http://" + addr, cmd: cmd}
		t.Cleanup(func() {
			node.cmd.Process.Kill() //nolint:errcheck // may already be dead
			node.cmd.Wait()         //nolint:errcheck
		})
		nodes[i] = node
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, node := range nodes {
		for {
			resp, err := http.Get(node.url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == 200 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became healthy: %v", node.url, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nodes
}

func TestClusterDaemonE2E(t *testing.T) {
	bin := os.Getenv("PROGQOID_BIN")
	if bin == "" {
		t.Skip("set PROGQOID_BIN to a built progqoid binary to run the daemon cluster e2e")
	}

	ds := datagen.GE("GE-daemon-e2e", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(context.Background(), st, "ge", arch.Variables()); err != nil {
		t.Fatal(err)
	}

	req := clusterRequest(t, ds.FieldNames)
	lsess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	local, err := lsess.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	for victim := 0; victim < 3; victim++ {
		t.Run(fmt.Sprintf("kill-node-%d", victim), func(t *testing.T) {
			nodes := startDaemons(t, bin, dir, 3)

			// Peer discovery: the client is told one node and must learn
			// the rest from the daemon's -peers/-advertise topology.
			rarch, err := OpenRemote(context.Background(), nodes[0].url, "ge", WithPeerDiscovery())
			if err != nil {
				t.Fatal(err)
			}
			if eps := rarch.RemoteStats().Endpoints; len(eps) != 3 {
				t.Fatalf("discovered %d endpoints, want 3: %+v", len(eps), eps)
			}
			rsess, err := rarch.Open()
			if err != nil {
				t.Fatal(err)
			}
			killed := false
			kreq := req
			kreq.OnProgress = func(it Iteration) {
				if !killed {
					killed = true
					if err := nodes[victim].cmd.Process.Kill(); err != nil {
						t.Errorf("kill node %d: %v", victim, err)
					}
					nodes[victim].cmd.Wait() //nolint:errcheck // SIGKILL is the point
				}
			}
			remote, err := rsess.Do(context.Background(), kreq)
			if err != nil {
				t.Fatalf("Do with node %d SIGKILLed mid-flight: %v", victim, err)
			}
			if !killed {
				t.Fatal("retrieval finished in one iteration; the kill never happened mid-Do")
			}
			mustEqualResults(t, local, remote)
			st := rarch.RemoteStats()
			if st.Failovers == 0 {
				t.Fatalf("no rerouted fetches after SIGKILLing node %d: %+v", victim, st)
			}

			// A surviving node's /metrics must expose the serving counters
			// the cluster story depends on.
			alive := (victim + 1) % 3
			resp, err := http.Get(nodes[alive].url + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			mbody, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{
				"progqoid_batch_requests_total",
				"progqoid_hot_cache_hits_total",
				"progqoid_fragment_bytes_total",
			} {
				if !strings.Contains(string(mbody), want) {
					t.Fatalf("/metrics on survivor missing %s", want)
				}
			}
		})
	}
}
