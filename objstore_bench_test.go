package progqoi

// objstore_bench_test.go measures the stateless tier's cold path: every
// fragment of the archive fetched from the mock bucket with signed ranged
// GETs, cache disabled so each read pays the full sign → GET → verify
// round trip. The CI bench job gates it against the committed baseline —
// a regression here means the SigV4 signing, the range bookkeeping or the
// retry wrapper got slower on the per-fragment hot path.

import (
	"context"
	"sync"
	"testing"
	"time"

	"progqoi/internal/datagen"
	"progqoi/internal/storage"
	"progqoi/internal/storage/objstore"
	"progqoi/internal/storage/objstore/miniobj"
)

var coldBench struct {
	once   sync.Once
	srv    *miniobj.Server
	keys   []string
	ranges [][]storage.FragmentRange
	total  int64
}

func coldBenchSetup(b *testing.B) {
	coldBench.once.Do(func() {
		ds := datagen.GE("GE-objstore-bench", 4, 160, 5)
		arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
		if err != nil {
			b.Fatal(err)
		}
		srv := miniobj.New(e2eBucket, miniobj.Credentials{AccessKey: e2eAccess, SecretKey: e2eSecret})
		seed, err := objstore.New(objstore.Options{
			Endpoint: srv.URL(), Bucket: e2eBucket, Prefix: e2ePrefix,
			AccessKey: e2eAccess, SecretKey: e2eSecret,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if err := storage.WriteArchive(ctx, seed, "ge", arch.Variables()); err != nil {
			b.Fatal(err)
		}
		vars, ranges, err := storage.ReadArchiveRanged(ctx, seed, "ge")
		if err != nil {
			b.Fatal(err)
		}
		keys := make([]string, len(vars))
		var total int64
		for i, v := range vars {
			keys[i] = storage.VarKey("ge", v.Name)
			for _, r := range ranges[i] {
				total += r.Len
			}
		}
		coldBench.srv, coldBench.keys, coldBench.ranges, coldBench.total = srv, keys, ranges, total
	})
}

// BenchmarkColdFetchObjstore fetches every fragment byte range of the
// archive from the bucket with the cache disabled: b.N full cold sweeps,
// throughput in fragment payload bytes per second.
func BenchmarkColdFetchObjstore(b *testing.B) {
	coldBenchSetup(b)
	ctx := context.Background()
	b.SetBytes(coldBench.total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh client per sweep keeps the ETag pins warm-path-free;
		// CacheBytes < 0 disables the read-through cache so every range
		// crosses the wire.
		st, err := objstore.New(objstore.Options{
			Endpoint: coldBench.srv.URL(), Bucket: e2eBucket, Prefix: e2ePrefix,
			AccessKey: e2eAccess, SecretKey: e2eSecret,
			CacheBytes: -1, RetryBackoff: time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		var got int64
		for vi, key := range coldBench.keys {
			for _, r := range coldBench.ranges[vi] {
				p, err := st.GetRange(ctx, key, r.Off, r.Len)
				if err != nil {
					b.Fatal(err)
				}
				got += int64(len(p))
			}
		}
		if got != coldBench.total {
			b.Fatalf("cold sweep moved %d bytes, want %d", got, coldBench.total)
		}
	}
}
