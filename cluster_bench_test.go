package progqoi

// cluster_bench_test.go measures the sharded fetch path the cluster
// transport added: the same full-archive fragment fetch against one node
// and against a 3-node cluster (concurrent per-shard sub-batches). The CI
// bench job gates both against BENCH_pr4_baseline.json — the cluster
// variant is where a regression in shard grouping or sub-batch fan-out
// would show first.

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"progqoi/internal/client"
	"progqoi/internal/datagen"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

var shardBench struct {
	once  sync.Once
	st    *storage.MemStore
	wants map[string][]int
	total int64
}

func shardBenchSetup(b *testing.B) {
	shardBench.once.Do(func() {
		ds := datagen.GE("GE-shard-bench", 4, 160, 5)
		arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
		if err != nil {
			b.Fatal(err)
		}
		st := storage.NewMemStore()
		if err := storage.WriteArchive(context.Background(), st, "ge", arch.Variables()); err != nil {
			b.Fatal(err)
		}
		wants := map[string][]int{}
		var total int64
		for _, v := range arch.Variables() {
			for fi, f := range v.Ref.Fragments {
				wants[v.Name] = append(wants[v.Name], fi)
				total += int64(len(f))
			}
		}
		shardBench.st, shardBench.wants, shardBench.total = st, wants, total
	})
}

func benchShardFetch(b *testing.B, nodes int) {
	shardBenchSetup(b)
	urls := make([]string, nodes)
	for i := range urls {
		srv, err := server.New(context.Background(), shardBench.st, server.Options{})
		if err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		defer hs.Close()
		urls[i] = hs.URL
	}
	b.SetBytes(shardBench.total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh client per iteration keeps the fragment cache cold so
		// every byte crosses the wire; the LRU itself stays enabled to
		// exercise the real install path.
		c, err := client.New(urls[0], client.Options{Endpoints: urls[1:]})
		if err != nil {
			b.Fatal(err)
		}
		got, err := c.Fragments(context.Background(), "ge", shardBench.wants)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(shardBench.wants) {
			b.Fatalf("%d variables fetched, want %d", len(got), len(shardBench.wants))
		}
	}
}

func BenchmarkShardFetchSingle(b *testing.B)   { benchShardFetch(b, 1) }
func BenchmarkShardFetchCluster3(b *testing.B) { benchShardFetch(b, 3) }
