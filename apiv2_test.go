package progqoi

// apiv2_test.go covers the composable retrieval API: Session.Do with mixed
// absolute/relative/region targets, end-to-end context cancellation and
// deadline expiry (local and remote), session resumability after a
// cancelled retrieval, progress streaming, and the ErrBadRequest contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"progqoi/internal/datagen"
	"progqoi/internal/server"
)

// TestDoMixedTargetsLocalAndRemote is the acceptance scenario: one QoI
// under a relative tolerance over a region, another under an absolute
// tolerance over the whole domain, certified by a single Do call — with
// identical results on local and remote archives.
func TestDoMixedTargetsLocalAndRemote(t *testing.T) {
	ds := datagen.GE("GE-mixed", 4, 300, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	temp, err := ParseQoI("T", "Pressure/(287.1*Density)", ds.FieldNames)
	if err != nil {
		t.Fatal(err)
	}
	ranges := QoIRanges([]QoI{vtot}, ds.Fields)
	hot := Region{Lo: 100, Hi: 400}
	tempTol := 2e-4 * QoIRanges([]QoI{temp}, ds.Fields)[0]
	req := Request{Targets: []Target{
		{QoI: vtot, Tolerance: 1e-5, Relative: true, Range: ranges[0], Region: hot},
		{QoI: temp, Tolerance: tempTol},
	}}

	run := func(a *Archive) *Result {
		t.Helper()
		sess, err := a.Open()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.ToleranceMet {
			t.Fatal("mixed request not certified")
		}
		return res
	}

	local := run(arch)
	hs := serveArchive(t, arch, "ge")
	rarch, err := OpenRemote(context.Background(), hs.URL, "ge")
	if err != nil {
		t.Fatal(err)
	}
	remote := run(rarch)

	// The certified errors respect each target's own convention.
	if !(local.EstErrors[0] <= 1e-5*ranges[0]) {
		t.Fatalf("region target certified %g > rel tolerance %g", local.EstErrors[0], 1e-5*ranges[0])
	}
	if !(local.EstErrors[1] <= tempTol) {
		t.Fatalf("absolute target certified %g > %g", local.EstErrors[1], tempTol)
	}
	// Ground truth inside the region must obey the certified bound.
	hotOrig := make([][]float64, len(ds.Fields))
	hotRecon := make([][]float64, len(ds.Fields))
	for v := range ds.Fields {
		hotOrig[v] = ds.Fields[v][hot.Lo:hot.Hi]
		if local.Data[v] != nil {
			hotRecon[v] = local.Data[v][hot.Lo:hot.Hi]
		}
	}
	if e := ActualQoIErrors([]QoI{vtot}, hotOrig, hotRecon); e[0] > local.EstErrors[0] {
		t.Fatalf("region ground-truth error %g exceeds certified %g", e[0], local.EstErrors[0])
	}

	// Local and remote agree bit for bit.
	for k := range req.Targets {
		if local.EstErrors[k] != remote.EstErrors[k] {
			t.Fatalf("target %d: certified %g (local) != %g (remote)", k, local.EstErrors[k], remote.EstErrors[k])
		}
	}
	if local.RetrievedBytes != remote.RetrievedBytes {
		t.Fatalf("retrieved %d (local) != %d (remote)", local.RetrievedBytes, remote.RetrievedBytes)
	}
	for v := range local.Data {
		if (local.Data[v] == nil) != (remote.Data[v] == nil) {
			t.Fatalf("var %d: nil-ness differs", v)
		}
		for j := range local.Data[v] {
			if math.Float64bits(local.Data[v][j]) != math.Float64bits(remote.Data[v][j]) {
				t.Fatalf("var %d point %d: %g (local) != %g (remote)", v, j, local.Data[v][j], remote.Data[v][j])
			}
		}
	}
}

// batchRecorder counts batched fragment requests and records every
// requested (var, index) pair, optionally blocking one designated batch
// until released.
type batchRecorder struct {
	mu       sync.Mutex
	requests map[string]int // "var/idx" -> times requested
	calls    int
	blockAt  int           // 1-based batch call to block (0 = never)
	blocked  chan struct{} // closed when the designated batch arrives
	release  chan struct{} // closing lets the blocked batch proceed
}

func newBatchRecorder() *batchRecorder {
	return &batchRecorder{
		requests: map[string]int{},
		blocked:  make(chan struct{}),
		release:  make(chan struct{}),
	}
}

func (br *batchRecorder) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			body, _ := io.ReadAll(r.Body)
			r.Body.Close() //nolint:errcheck
			var breq server.BatchRequest
			if err := json.Unmarshal(body, &breq); err == nil {
				br.mu.Lock()
				br.calls++
				call := br.calls
				for _, w := range breq.Wants {
					for _, fi := range w.Indices {
						br.requests[fmt.Sprintf("%s/%d", w.Var, fi)]++
					}
				}
				br.mu.Unlock()
				if br.blockAt > 0 && call == br.blockAt {
					close(br.blocked)
					<-br.release
				}
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		next.ServeHTTP(w, r)
	})
}

func (br *batchRecorder) snapshot() (calls int, counts map[string]int) {
	br.mu.Lock()
	defer br.mu.Unlock()
	counts = map[string]int{}
	for k, v := range br.requests {
		counts[k] = v
	}
	return br.calls, counts
}

// TestDoCancelRemoteMidIteration cancels a remote Do while its batched
// fragment fetch is in flight, then proves the session is still usable and
// that the follow-up Do does not re-fetch fragments already held.
func TestDoCancelRemoteMidIteration(t *testing.T) {
	ds := datagen.GE("GE-cancel", 4, 256, 7)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, ds.Fields)

	br := newBatchRecorder()
	st := newMemArchiveServer(t, arch, "ge", br.middleware)
	rarch, err := OpenRemote(context.Background(), st.URL, "ge")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := rarch.Open()
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a loose retrieval completes and seeds the session.
	res1, err := sess.Do(context.Background(), Request{Targets: []Target{
		{QoI: vtot, Tolerance: 1e-2, Relative: true, Range: ranges[0]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.ToleranceMet {
		t.Fatal("loose request not certified")
	}
	callsAfter1, _ := br.snapshot()
	if callsAfter1 == 0 {
		t.Fatal("no batched fetches observed")
	}

	// Phase 2: a tight retrieval whose first new batch blocks on the
	// server; cancel while it is in flight.
	br.mu.Lock()
	br.blockAt = callsAfter1 + 1
	br.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res2 *Result
	var err2 error
	go func() {
		defer close(done)
		res2, err2 = sess.Do(ctx, Request{Targets: []Target{
			{QoI: vtot, Tolerance: 1e-7, Relative: true, Range: ranges[0]},
		}})
	}()
	select {
	case <-br.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("tight retrieval never issued a new batch")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Do did not return promptly")
	}
	close(br.release) // let the parked handler finish
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err2)
	}
	if res2 == nil {
		t.Fatal("cancelled Do returned no best-effort result")
	}
	if res2.ToleranceMet {
		t.Fatal("cancelled Do claims certification")
	}

	// Phase 3: the same session resumes with a fresh context and certifies.
	res3, err := sess.Do(context.Background(), Request{Targets: []Target{
		{QoI: vtot, Tolerance: 1e-7, Relative: true, Range: ranges[0]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.ToleranceMet {
		t.Fatal("resumed request not certified")
	}
	if res3.RetrievedBytes <= res1.RetrievedBytes {
		t.Fatal("tight request retrieved nothing beyond the loose one")
	}

	// No fragment ingested before the cancellation crossed the wire twice:
	// wire payload bytes stay below two sessions' worth, and every byte the
	// session logically holds crossed at most once plus the aborted batch.
	ws := rarch.RemoteStats()
	if ws.WireBytes >= 2*res3.RetrievedBytes {
		t.Fatalf("wire bytes %d suggest wholesale re-fetching (logical %d)", ws.WireBytes, res3.RetrievedBytes)
	}

	// Strong check via the recorder: no (var, fragment) pair was requested
	// more than twice, and pairs served before the cancel exactly once.
	_, counts := br.snapshot()
	for key, n := range counts {
		if n > 2 {
			t.Fatalf("fragment %s requested %d times", key, n)
		}
	}

	// The reconstruction after resume matches a never-cancelled session.
	ref, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Do(context.Background(), Request{Targets: []Target{
		{QoI: vtot, Tolerance: 1e-7, Relative: true, Range: ranges[0]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want.RetrievedBytes != res3.RetrievedBytes {
		t.Fatalf("resumed session retrieved %d bytes, pristine session %d", res3.RetrievedBytes, want.RetrievedBytes)
	}
	for v := range want.Data {
		if (want.Data[v] == nil) != (res3.Data[v] == nil) {
			t.Fatalf("var %d nil-ness differs after resume", v)
		}
		for j := range want.Data[v] {
			if math.Float64bits(want.Data[v][j]) != math.Float64bits(res3.Data[v][j]) {
				t.Fatalf("var %d point %d differs after resume", v, j)
			}
		}
	}
}

// newMemArchiveServer is serveArchive with a middleware hook.
func newMemArchiveServer(t *testing.T, arch *Archive, name string, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	hsrv := serveArchiveHandler(t, arch, name)
	var h http.Handler = hsrv
	if mw != nil {
		h = mw(hsrv)
	}
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs
}

// TestDoDeadlineLocalArchive proves deadline expiry is honored on a purely
// local archive and leaves the session usable.
func TestDoDeadlineLocalArchive(t *testing.T) {
	names, fields, dims := demoFields(2000)
	arch, err := Refactor(names, fields, dims)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	res, err := sess.Do(ctx, Request{Targets: []Target{{QoI: vtot, Tolerance: 1e-4}}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if res == nil || res.ToleranceMet {
		t.Fatal("expired deadline must yield a best-effort, uncertified result")
	}

	// Session still usable after the expiry.
	res2, err := sess.Do(context.Background(), Request{Targets: []Target{{QoI: vtot, Tolerance: 1e-4}}})
	if err != nil || !res2.ToleranceMet {
		t.Fatalf("session unusable after deadline expiry: %v", err)
	}
}

// TestDoCancelFromOnProgress stops a local retrieval from inside the
// progress callback and keeps the best-effort result.
func TestDoCancelFromOnProgress(t *testing.T) {
	names, fields, dims := demoFields(3000)
	arch, err := Refactor(names, fields, dims)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen []Iteration
	res, err := sess.Do(ctx, Request{
		Targets: []Target{{QoI: vtot, Tolerance: 1e-12}},
		OnProgress: func(it Iteration) {
			seen = append(seen, it)
			if it.N >= 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if res == nil || res.Iterations < 2 {
		t.Fatalf("best-effort result missing or too early: %+v", res)
	}
	if len(seen) < 2 {
		t.Fatalf("progress callback fired %d times", len(seen))
	}
	for i, it := range seen {
		if it.N != i+1 {
			t.Fatalf("iteration %d reported N=%d", i, it.N)
		}
		if i > 0 && it.RetrievedBytes < seen[i-1].RetrievedBytes {
			t.Fatal("RetrievedBytes not monotone across iterations")
		}
	}
}

// TestDoProgressStreaming checks the full progress stream of a successful
// retrieval, including wire-byte reporting on remote sessions.
func TestDoProgressStreaming(t *testing.T) {
	ds := datagen.GE("GE-progress", 4, 200, 3)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	hs := serveArchive(t, arch, "ge")
	rarch, err := OpenRemote(context.Background(), hs.URL, "ge")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := rarch.Open()
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, ds.Fields)
	var seen []Iteration
	res, err := sess.Do(context.Background(), Request{
		Targets:    []Target{{QoI: vtot, Tolerance: 1e-4, Relative: true, Range: ranges[0]}},
		OnProgress: func(it Iteration) { seen = append(seen, it) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Iterations {
		t.Fatalf("%d progress reports for %d iterations", len(seen), res.Iterations)
	}
	last := seen[len(seen)-1]
	if !last.ToleranceMet {
		t.Fatal("final progress report not marked ToleranceMet")
	}
	if last.RetrievedBytes != res.RetrievedBytes {
		t.Fatalf("final progress bytes %d != result %d", last.RetrievedBytes, res.RetrievedBytes)
	}
	if last.WireBytes == 0 {
		t.Fatal("remote session reported no wire bytes in progress")
	}
	if last.EstErrors[0] > 1e-4*ranges[0] {
		t.Fatalf("final progress estimate %g above tolerance", last.EstErrors[0])
	}
}

// TestErrBadRequest exercises the typed validation sentinel across Do and
// the legacy wrappers.
func TestErrBadRequest(t *testing.T) {
	names, fields, dims := demoFields(500)
	arch, err := Refactor(names, fields, dims)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	ctx := context.Background()
	cases := map[string]func() error{
		"no targets": func() error {
			_, err := sess.Do(ctx, Request{})
			return err
		},
		"zero tolerance": func() error {
			_, err := sess.Do(ctx, Request{Targets: []Target{{QoI: vtot}}})
			return err
		},
		"negative tolerance": func() error {
			_, err := sess.Do(ctx, Request{Targets: []Target{{QoI: vtot, Tolerance: -1}}})
			return err
		},
		"relative without range": func() error {
			_, err := sess.Do(ctx, Request{Targets: []Target{{QoI: vtot, Tolerance: 1e-3, Relative: true}}})
			return err
		},
		"inverted region": func() error {
			_, err := sess.Do(ctx, Request{Targets: []Target{
				{QoI: vtot, Tolerance: 1e-3, Region: Region{Lo: 400, Hi: 100}}}})
			return err
		},
		"region past end": func() error {
			_, err := sess.Do(ctx, Request{Targets: []Target{
				{QoI: vtot, Tolerance: 1e-3, Region: Region{Lo: 0, Hi: 501}}}})
			return err
		},
		"legacy Retrieve length mismatch": func() error {
			_, err := sess.Retrieve([]QoI{vtot}, []float64{1, 2})
			return err
		},
		"legacy RetrieveRegions length mismatch": func() error {
			_, err := sess.RetrieveRegions([]QoI{vtot}, []float64{1}, []Region{{}, {}})
			return err
		},
		"legacy RetrieveRelative length mismatch": func() error {
			_, err := sess.RetrieveRelative([]QoI{vtot}, []float64{1e-3, 1}, []float64{1})
			return err
		},
	}
	for name, fn := range cases {
		if err := fn(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: want ErrBadRequest, got %v", name, err)
		}
	}

	// The pre-v2 contract accepted nil regions as "whole domain"; the
	// deprecated wrapper must keep doing so.
	if res, err := sess.RetrieveRegions([]QoI{vtot}, []float64{1e-2}, nil); err != nil || !res.ToleranceMet {
		t.Errorf("RetrieveRegions with nil regions regressed: %v", err)
	}
}

// TestLegacyWrappersMatchDo pins the compatibility contract: the deprecated
// Retrieve* methods are exactly Do under the equivalent targets.
func TestLegacyWrappersMatchDo(t *testing.T) {
	names, fields, dims := demoFields(1500)
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, fields)

	open := func() *Session {
		t.Helper()
		arch, err := Refactor(names, fields, dims)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := arch.Open()
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	oldRes, err := open().RetrieveRelative([]QoI{vtot}, []float64{1e-4}, ranges)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := open().Do(context.Background(), Request{Targets: []Target{
		{QoI: vtot, Tolerance: 1e-4, Relative: true, Range: ranges[0]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if oldRes.RetrievedBytes != newRes.RetrievedBytes || oldRes.EstErrors[0] != newRes.EstErrors[0] {
		t.Fatalf("legacy RetrieveRelative diverged from Do: %d/%g vs %d/%g",
			oldRes.RetrievedBytes, oldRes.EstErrors[0], newRes.RetrievedBytes, newRes.EstErrors[0])
	}
}
