package progqoi

import (
	"context"
	"fmt"
	"net/url"
	"strings"
	"sync/atomic"

	"progqoi/internal/client"
	"progqoi/internal/core"
	"progqoi/internal/storage"
	"progqoi/internal/storage/objstore"
)

// open.go is the unified entry point of the v3 API: one Open call that
// resolves any supported archive reference, so callers name *where the
// data lives* and stop choosing constructors:
//
//	file:///data/archives/ge    local archive directory + dataset
//	/data/archives/ge           same, bare path
//	http://storage-site:9123/ge progqoid fragment service (cluster-capable)
//	s3://bucket/prefix/ge       object-store bucket, ranged fragment reads
//
// The last path segment is always the dataset name; everything before it
// locates the store. OpenRemote remains as a deprecated wrapper over the
// http(s) case.

// ErrBadRef reports an Open reference that cannot be resolved: an
// unsupported scheme, a missing dataset segment, or an s3 reference
// without a configured endpoint. It is the same sentinel progqoid's
// -store validation uses, so errors.Is works across both layers.
var ErrBadRef = objstore.ErrBadStoreURL

// StoreFetchStats snapshots an object-store archive's cold-fetch
// accounting: how many reads actually reached the bucket, their payload
// bytes, and the wall time they spent on the wire. Reads served by the
// store's byte-bounded cache appear nowhere here — compare ColdFetchBytes
// with a session's RetrievedBytes to see what the cache saved.
type StoreFetchStats = storage.FetchStats

// Open resolves an archive reference and opens it, dispatching on scheme:
//
//   - "s3://bucket[/prefix]/dataset" opens the dataset directly from an
//     S3-compatible object store: retrieval metadata is read once up
//     front, and sessions then fetch exactly the fragment byte ranges
//     each tolerance needs with authenticated ranged GETs. The endpoint
//     and credentials come from WithS3Endpoint / WithS3Credentials or the
//     PROGQOI_S3_* environment variables; every read is ETag-pinned, so
//     a bucket republished mid-session surfaces as an error, never as
//     stale bytes.
//
//   - "http://…" / "https://…" opens a dataset served by a progqoid
//     fragment service, exactly like OpenRemote: the base URL is the
//     reference minus its last path segment. All cluster options
//     (WithEndpoints, WithReplication, WithPeerDiscovery, WithReadAhead)
//     apply.
//
//   - "file:///dir/dataset", "file://dir/dataset" and bare paths open a
//     local archive directory; fragments are resident in memory like an
//     archive returned by Refactor.
//
// ctx scopes the metadata reads; sessions opened later carry their own
// per-Do contexts. Unresolvable references fail with errors wrapping
// ErrBadRef.
func Open(ctx context.Context, ref string, opts ...RemoteOption) (*Archive, error) {
	var ro remoteOptions
	for _, fn := range opts {
		if fn != nil {
			fn(&ro)
		}
	}
	switch {
	case strings.HasPrefix(ref, "http://"), strings.HasPrefix(ref, "https://"):
		base, dataset, err := splitHTTPRef(ref)
		if err != nil {
			return nil, err
		}
		return openRemoteArchive(ctx, base, dataset, ro)
	case strings.HasPrefix(ref, "s3://"):
		st, dataset, err := openObjStore(ref, ro)
		if err != nil {
			return nil, err
		}
		return openStoreArchive(ctx, st, dataset)
	case strings.HasPrefix(ref, "file://"):
		return openDirArchive(ctx, strings.TrimPrefix(ref, "file://"))
	case strings.Contains(ref, "://"):
		return nil, fmt.Errorf("%w: %q: unsupported scheme (want s3://, http(s)://, file:// or a bare path)", ErrBadRef, ref)
	case ref == "":
		return nil, fmt.Errorf("%w: empty reference", ErrBadRef)
	default:
		return openDirArchive(ctx, ref)
	}
}

// splitHTTPRef splits an http(s) reference into the service base URL and
// the dataset (its last path segment).
func splitHTTPRef(ref string) (base, dataset string, err error) {
	u, err := url.Parse(ref)
	if err != nil {
		return "", "", fmt.Errorf("%w: %q: %v", ErrBadRef, ref, err)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", "", fmt.Errorf("%w: %q: query or fragment not allowed", ErrBadRef, ref)
	}
	p := strings.TrimSuffix(u.Path, "/")
	i := strings.LastIndex(p, "/")
	if i < 0 || p[i+1:] == "" {
		return "", "", fmt.Errorf("%w: %q: missing dataset segment (want %s://host[/base]/dataset)", ErrBadRef, ref, u.Scheme)
	}
	dataset = p[i+1:]
	u.Path = p[:i]
	return u.String(), dataset, nil
}

// openObjStore builds the object-store client for an s3:// reference:
// bucket and key prefix from the reference, endpoint/credentials/region
// from the options with PROGQOI_S3_* environment variables as defaults,
// cache and retry budgets shared with the remote-client options.
func openObjStore(ref string, ro remoteOptions) (*objstore.Store, string, error) {
	bucket, path, err := objstore.SplitRef(ref)
	if err != nil {
		return nil, "", err
	}
	prefix, dataset := "", path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		prefix, dataset = path[:i], path[i+1:]
	}
	if dataset == "" {
		return nil, "", fmt.Errorf("%w: %q: missing dataset segment (want s3://bucket[/prefix]/dataset)", ErrBadRef, ref)
	}
	o := objstore.EnvOptions()
	if ro.s3Endpoint != "" {
		o.Endpoint = ro.s3Endpoint
	}
	if ro.s3Access != "" || ro.s3Secret != "" {
		o.AccessKey, o.SecretKey = ro.s3Access, ro.s3Secret
	}
	if ro.s3Region != "" {
		o.Region = ro.s3Region
	}
	if o.Endpoint == "" {
		return nil, "", fmt.Errorf("%w: %q: s3 needs an endpoint (WithS3Endpoint or %s)", ErrBadRef, ref, objstore.EnvEndpoint)
	}
	o.Bucket, o.Prefix = bucket, prefix
	o.HTTPClient = ro.httpClient
	o.CacheBytes = ro.cacheBytes
	o.MaxRetries = ro.maxRetries
	st, err := objstore.New(o)
	if err != nil {
		return nil, "", fmt.Errorf("%w: %q: %v", ErrBadRef, ref, err)
	}
	return st, dataset, nil
}

// openDirArchive opens a local directory-store archive with resident
// fragments — the file:// and bare-path cases.
func openDirArchive(ctx context.Context, p string) (*Archive, error) {
	dir, dataset := ".", strings.TrimSuffix(p, "/")
	if i := strings.LastIndex(dataset, "/"); i >= 0 {
		dir, dataset = dataset[:i], dataset[i+1:]
	}
	if dataset == "" {
		return nil, fmt.Errorf("%w: %q: missing dataset segment (want dir/dataset)", ErrBadRef, p)
	}
	if dir == "" {
		dir = "/"
	}
	st, err := storage.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	vars, err := storage.ReadArchive(ctx, st, dataset)
	if err != nil {
		return nil, err
	}
	return archiveFromVars(vars), nil
}

// openRemoteArchive is the shared body of Open's http(s) case and the
// deprecated OpenRemote wrapper.
func openRemoteArchive(ctx context.Context, baseURL, dataset string, ro remoteOptions) (*Archive, error) {
	rem, err := client.Open(ctx, baseURL, dataset, client.Options{
		CacheBytes:      ro.cacheBytes,
		MaxRetries:      ro.maxRetries,
		ReadAhead:       ro.readAhead,
		HTTPClient:      ro.httpClient,
		Endpoints:       ro.endpoints,
		Replication:     ro.replication,
		DiscoverPeers:   ro.discover,
		Token:           ro.token,
		TopologyRefresh: ro.topologyRefresh,
	})
	if err != nil {
		return nil, err
	}
	names := rem.FieldNames()
	return &Archive{
		names:  names,
		dims:   rem.Dims(),
		fields: len(names),
		remote: rem,
	}, nil
}

// archiveFromVars wraps fully loaded variables as a local Archive.
func archiveFromVars(vars []*core.Variable) *Archive {
	names := make([]string, len(vars))
	for i, v := range vars {
		names[i] = v.Name
	}
	var dims []int
	if len(vars) > 0 {
		dims = append([]int(nil), vars[0].Ref.Dims...)
	}
	return &Archive{vars: vars, names: names, dims: dims, fields: len(vars)}
}

// storeArchive is an archive opened directly from a storage.Store (the
// s3:// case): retrieval metadata held locally, fragment payloads
// re-read on demand at their recorded byte ranges. One storeArchive can
// serve many concurrent sessions; the store's read-through cache is the
// shared layer between them.
type storeArchive struct {
	st      storage.Store
	rr      storage.RangeReader // nil when the store cannot read ranges
	dataset string
	vars    []*core.Variable          // meta-only: fragment payloads stripped
	ranges  [][]storage.FragmentRange // ranges[vi][fi] within keys[vi]'s blob
	keys    []string                  // store key of each variable's blob
	stored  int64                     // total fragment payload bytes at rest
	wire    atomic.Int64              // fragment payload bytes fetched
}

// openStoreArchive reads the archive's metadata (one pass over each
// variable blob) and returns a session factory whose fragment reads are
// ranged GETs against st.
func openStoreArchive(ctx context.Context, st storage.Store, dataset string) (*Archive, error) {
	vars, ranges, err := storage.ReadArchiveRanged(ctx, st, dataset)
	if err != nil {
		return nil, err
	}
	sa := &storeArchive{st: st, dataset: dataset, vars: vars, ranges: ranges}
	sa.rr, _ = st.(storage.RangeReader)
	sa.keys = make([]string, len(vars))
	for i, v := range vars {
		sa.keys[i] = storage.VarKey(dataset, v.Name)
		for _, r := range ranges[i] {
			sa.stored += r.Len
		}
	}
	a := archiveFromVars(vars)
	a.vars, a.store = nil, sa
	return a, nil
}

// newSession mirrors the remote session factory: each session owns its
// fragment payload slots; metadata is immutable and shared. The Prefetch
// hook fetches exactly the byte range of every fragment the certify loop
// plans, through the store's cache, retry and ETag-pinning layers.
func (sa *storeArchive) newSession(fetch FetchObserver, cfg SessionConfig) (*core.Retriever, error) {
	vars := make([]*core.Variable, len(sa.vars))
	for i, v := range sa.vars {
		ref := *v.Ref
		ref.Fragments = make([][]byte, len(v.Ref.Fragments))
		cv := *v
		cv.Ref = &ref
		vars[i] = &cv
	}
	cfg.Prefetch = func(ctx context.Context, need [][]int) error {
		for vi, idxs := range need {
			for _, fi := range idxs {
				if fi < 0 || fi >= len(vars[vi].Ref.Fragments) {
					return fmt.Errorf("progqoi: plan wants fragment %s/%d of %d",
						vars[vi].Name, fi, len(vars[vi].Ref.Fragments))
				}
				if len(vars[vi].Ref.Fragments[fi]) != 0 {
					continue
				}
				b, err := sa.fetchFragment(ctx, vi, fi)
				if err != nil {
					return err
				}
				vars[vi].Ref.Fragments[fi] = b
				sa.wire.Add(int64(len(b)))
			}
		}
		return nil
	}
	cfg.WireBytes = func() int64 { return sa.wire.Load() }
	return core.NewRetriever(vars, cfg, fetch)
}

// fetchFragment reads one fragment payload at its recorded range — a
// ranged GET when the store supports it, a full blob read (cached by the
// store) otherwise.
func (sa *storeArchive) fetchFragment(ctx context.Context, vi, fi int) ([]byte, error) {
	r := sa.ranges[vi][fi]
	if sa.rr != nil {
		return sa.rr.GetRange(ctx, sa.keys[vi], r.Off, r.Len)
	}
	raw, err := sa.st.Get(ctx, sa.keys[vi])
	if err != nil {
		return nil, err
	}
	if r.Off+r.Len > int64(len(raw)) {
		return nil, fmt.Errorf("progqoi: %s: fragment %d range [%d,%d) outside %d-byte blob",
			sa.keys[vi], fi, r.Off, r.Off+r.Len, len(raw))
	}
	return raw[r.Off : r.Off+r.Len], nil
}

// StoreBacked reports whether the archive reads fragments from an object
// store opened via an s3:// reference.
func (a *Archive) StoreBacked() bool { return a.store != nil }

// StoreStats returns the cold-fetch accounting of a store-backed archive:
// reads that actually reached the bucket, their bytes and wall time.
// Zero for local and progqoid-served archives (use RemoteStats for the
// latter) and for stores that do not keep fetch statistics.
func (a *Archive) StoreStats() StoreFetchStats {
	if a.store == nil {
		return StoreFetchStats{}
	}
	if fs, ok := a.store.st.(storage.FetchStatser); ok {
		return fs.FetchStats()
	}
	return StoreFetchStats{}
}
