package progqoi

// parallel_test.go covers the PR's concurrency surface at the public API:
// the WithWorkers determinism guarantee, the read-ahead fetch/decode
// pipeline, and the shared-cache race of concurrent sessions while a third
// session cancels mid-Do (run under -race in CI).

import (
	"context"
	"math"
	"sync"
	"testing"

	"progqoi/internal/datagen"
)

// doVTOT certifies the total-velocity QoI at rel on one fresh session.
func doVTOT(t *testing.T, arch *Archive, rel float64, opts ...OpenOption) *Result {
	t.Helper()
	sess, err := arch.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	res, err := sess.Do(context.Background(), Request{Targets: []Target{
		{QoI: vtot, Tolerance: rel, Relative: true, Range: qoiRange(t, arch, vtot)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var qoiRangeCache sync.Map

func qoiRange(t *testing.T, arch *Archive, q QoI) float64 {
	t.Helper()
	ds := parallelDataset()
	if v, ok := qoiRangeCache.Load(q.Name); ok {
		return v.(float64)
	}
	r := QoIRanges([]QoI{q}, ds.Fields)[0]
	qoiRangeCache.Store(q.Name, r)
	return r
}

func parallelDataset() *datagen.Dataset { return datagen.GE("GE-parallel", 6, 280, 17) }

func TestWithWorkersBitIdentical(t *testing.T) {
	ds := parallelDataset()
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	want := doVTOT(t, arch, 1e-4, WithWorkers(1))
	got := doVTOT(t, arch, 1e-4, WithWorkers(8))
	if got.RetrievedBytes != want.RetrievedBytes || got.EstErrors[0] != want.EstErrors[0] {
		t.Fatalf("workers=8 certified (%d B, %g), workers=1 (%d B, %g)",
			got.RetrievedBytes, got.EstErrors[0], want.RetrievedBytes, want.EstErrors[0])
	}
	for v := range want.Data {
		if want.Data[v] == nil {
			continue
		}
		for j := range want.Data[v] {
			if math.Float64bits(got.Data[v][j]) != math.Float64bits(want.Data[v][j]) {
				t.Fatalf("var %d point %d: parallel reconstruction differs", v, j)
			}
		}
	}
}

// TestSharedCacheSessionsWithCancelMidDo races two full retrievals over one
// remote archive's shared fragment cache while a third session cancels
// itself mid-Do, extending the PR 2 coalescing tests to the worker pool:
// the survivors must certify results bit-identical to a local session, and
// the canceller must remain resumable.
func TestSharedCacheSessionsWithCancelMidDo(t *testing.T) {
	ds := parallelDataset()
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	want := doVTOT(t, arch, 1e-4)

	hs := serveArchive(t, arch, "ge")
	rarch, err := OpenRemote(context.Background(), hs.URL, "ge")
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	target := Target{QoI: vtot, Tolerance: 1e-4, Relative: true, Range: qoiRange(t, rarch, vtot)}
	// The canceller gets an absolute target with no relative seed: the
	// assigner starts from the default 10% bound and must tighten over
	// several iterations, guaranteeing the cancel strikes mid-retrieval.
	ctarget := Target{QoI: vtot, Tolerance: 1e-5 * qoiRange(t, rarch, vtot)}
	lsess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := lsess.Do(context.Background(), Request{Targets: []Target{ctarget}})
	if err != nil {
		t.Fatal(err)
	}

	results := make([]*Result, 2)
	errs := make([]error, 2)
	var cancelled *Session
	var cancelledErr error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := rarch.Open()
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = sess.Do(context.Background(), Request{Targets: []Target{target}})
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := rarch.Open()
		if err != nil {
			cancelledErr = err
			return
		}
		cancelled = sess
		ctx, cancel := context.WithCancel(context.Background())
		_, cancelledErr = sess.Do(ctx, Request{
			Targets: []Target{ctarget},
			// Abort from inside the certify loop: the worker pool and any
			// in-flight batch must unwind cleanly while the other two
			// sessions keep hitting the same cache.
			OnProgress: func(Iteration) { cancel() },
		})
	}()
	wg.Wait()

	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if results[i].RetrievedBytes != want.RetrievedBytes || results[i].EstErrors[0] != want.EstErrors[0] {
			t.Fatalf("session %d certified (%d B, %g), local (%d B, %g)",
				i, results[i].RetrievedBytes, results[i].EstErrors[0], want.RetrievedBytes, want.EstErrors[0])
		}
		for j := range want.Data[0] {
			if math.Float64bits(results[i].Data[0][j]) != math.Float64bits(want.Data[0][j]) {
				t.Fatalf("session %d point %d: reconstruction differs from local", i, j)
			}
		}
	}
	if cancelledErr == nil {
		t.Fatal("cancelling session reported no error")
	}
	// The canceller's session stays valid: finishing the request certifies
	// the same result without re-fetching what it already holds.
	res, err := cancelled.Do(context.Background(), Request{Targets: []Target{ctarget}})
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if res.RetrievedBytes != wantC.RetrievedBytes || res.EstErrors[0] != wantC.EstErrors[0] {
		t.Fatalf("resumed session certified (%d B, %g), local (%d B, %g)",
			res.RetrievedBytes, res.EstErrors[0], wantC.RetrievedBytes, wantC.EstErrors[0])
	}
}

func TestReadAheadPipeline(t *testing.T) {
	ds := parallelDataset()
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	want := doVTOT(t, arch, 1e-4)

	hs := serveArchive(t, arch, "ge")
	rarch, err := OpenRemote(context.Background(), hs.URL, "ge", WithReadAhead(4))
	if err != nil {
		t.Fatal(err)
	}
	got := doVTOT(t, rarch, 1e-4)
	if got.RetrievedBytes != want.RetrievedBytes || got.EstErrors[0] != want.EstErrors[0] {
		t.Fatalf("read-ahead session certified (%d B, %g), local (%d B, %g)",
			got.RetrievedBytes, got.EstErrors[0], want.RetrievedBytes, want.EstErrors[0])
	}
	for j := range want.Data[0] {
		if math.Float64bits(got.Data[0][j]) != math.Float64bits(want.Data[0][j]) {
			t.Fatalf("point %d: read-ahead reconstruction differs", j)
		}
	}
	rarch.WaitReadAhead()
	st := rarch.RemoteStats()
	if st.Speculated == 0 {
		t.Fatal("pipeline never speculated: read-ahead is not overlapping fetch with decode")
	}
	// Speculation may over-fetch (that is its price) but never under-counts:
	// the wire carried at least the logical bytes, and everything speculated
	// landed in the shared cache for later sessions.
	if st.WireBytes < want.RetrievedBytes {
		t.Fatalf("wire bytes %d below logical %d", st.WireBytes, want.RetrievedBytes)
	}
	// A tighter follow-up on the same session consumes speculated fragments
	// from the cache instead of the wire.
	before := rarch.RemoteStats()
	_ = doVTOT(t, rarch, 1e-5)
	rarch.WaitReadAhead()
	after := rarch.RemoteStats()
	if after.CacheHits <= before.CacheHits {
		t.Fatal("tighter retrieval hit the cache zero times despite read-ahead")
	}
}
