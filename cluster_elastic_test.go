package progqoi

// cluster_elastic_test.go proves elastic cluster membership end to end,
// in process: real fragment services form a cluster by announcing and
// heartbeating, a remote archive follows the live topology with
// WithTopologyRefresh, and retrieval stays bit-identical to a local
// session through every membership fault the suite injects — a rolling
// restart of every node, a node joining mid-retrieval, a graceful drain
// under load, a heartbeat partition that falsely suspects a live node,
// and split membership views between clients. The daemon twin of the
// rolling-restart and drain proofs runs against real progqoid processes
// in cluster_elastic_daemon_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"progqoi/internal/datagen"
	"progqoi/internal/obs"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// elasticNode is one in-process cluster member: a real fragment service
// with live membership, plus a scriptable partition that drops
// membership announcements from one chosen address.
type elasticNode struct {
	srv      *server.Server
	hs       *httptest.Server
	stopOnce sync.Once
	block    atomic.Pointer[string] // announcements from this addr get 503
}

func (n *elasticNode) URL() string { return n.hs.URL }

// partitionFrom makes this node drop join/heartbeat/leave announcements
// from addr ("" heals). Data-plane and /v1/cluster reads pass through:
// the partition cuts the membership protocol only, which is what lets a
// perfectly healthy node be falsely suspected.
func (n *elasticNode) partitionFrom(addr string) { n.block.Store(&addr) }

// startElasticNode boots one node over the shared store with fast
// membership timers (25ms heartbeats) so suspicion and removal converge
// in test time.
func startElasticNode(t *testing.T, st storage.Store, gen int64, admin string) *elasticNode {
	t.Helper()
	srv, err := server.New(context.Background(), st, server.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
		RemoveAfter:       600 * time.Millisecond,
		Generation:        gen,
		AdminToken:        admin,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &elasticNode{srv: srv}
	none := ""
	n.block.Store(&none)
	n.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/cluster/") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			var a struct {
				Addr string `json:"addr"`
			}
			_ = json.Unmarshal(body, &a)
			if blocked := *n.block.Load(); blocked != "" && a.Addr == blocked {
				http.Error(w, "partitioned", http.StatusServiceUnavailable)
				return
			}
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(n.kill)
	return n
}

// join starts this node's membership, announcing to the given seeds.
func (n *elasticNode) join(t *testing.T, seeds ...string) {
	t.Helper()
	if err := n.srv.StartMembership(context.Background(), n.URL(), seeds); err != nil {
		t.Fatal(err)
	}
}

// kill stops the node abruptly — no leave announcement — so its peers
// must detect the death through missed heartbeats. Idempotent.
func (n *elasticNode) kill() {
	n.stopOnce.Do(func() {
		n.srv.StopMembership()
		n.hs.CloseClientConnections()
		n.hs.Close()
	})
}

// startElasticCluster writes the archive once and boots n nodes, each
// joining the ones before it, then waits until every node sees the full
// membership. The shared store is returned so tests can boot
// replacements and joiners over the same archive.
func startElasticCluster(t *testing.T, arch *Archive, name string, n int, admin string) ([]*elasticNode, storage.Store) {
	t.Helper()
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, name, arch.Variables()); err != nil {
		t.Fatal(err)
	}
	nodes := make([]*elasticNode, n)
	var seeds []string
	for i := range nodes {
		nodes[i] = startElasticNode(t, st, int64(i+1), admin)
		nodes[i].join(t, seeds...)
		seeds = append(seeds, nodes[i].URL())
	}
	for _, node := range nodes {
		waitMembership(t, node.URL(), func(info server.ClusterInfo) bool {
			alive := 0
			for _, m := range info.Members {
				if m.State == server.MemberAlive {
					alive++
				}
			}
			return alive == n
		})
	}
	return nodes, st
}

// clusterInfoFrom fetches and decodes one node's /v1/cluster.
func clusterInfoFrom(t *testing.T, url string) (server.ClusterInfo, error) {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster")
	if err != nil {
		return server.ClusterInfo{}, err
	}
	defer resp.Body.Close()
	var info server.ClusterInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return server.ClusterInfo{}, err
	}
	return info, nil
}

// waitMembership polls a node's /v1/cluster until cond holds.
func waitMembership(t *testing.T, url string, cond func(server.ClusterInfo) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if info, err := clusterInfoFrom(t, url); err == nil && cond(info) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	info, err := clusterInfoFrom(t, url)
	t.Fatalf("membership at %s never converged: %+v (err %v)", url, info, err)
}

// waitRoutable polls the archive's topology view until it contains every
// URL in want and none in absent.
func waitRoutable(t *testing.T, arch *Archive, want, absent []string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		routable := map[string]bool{}
		for _, u := range arch.RemoteStats().Routable {
			routable[u] = true
		}
		ok := true
		for _, u := range want {
			if !routable[u] {
				ok = false
			}
		}
		for _, u := range absent {
			if routable[u] {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("client view never converged: routable=%v want=%v absent=%v",
		arch.RemoteStats().Routable, want, absent)
}

// elasticTolerances is the tightening workload the elastic suite drives:
// three Do calls per session, each with several certify iterations, so
// fault injection always has in-flight work to disturb.
var elasticTolerances = []float64{2e-3, 5e-4, 2e-4}

// doSequence runs the tightening workload on one fresh session.
func doSequence(t *testing.T, arch *Archive, fields []string, progress func(step int, it Iteration)) []*Result {
	t.Helper()
	sess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	temp, err := ParseQoI("T", "Pressure/(287.1*Density)", fields)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Result, len(elasticTolerances))
	for i, tol := range elasticTolerances {
		req := Request{Targets: []Target{
			{QoI: vtot, Tolerance: tol},
			{QoI: temp, Tolerance: tol},
		}}
		if progress != nil {
			step := i
			req.OnProgress = func(it Iteration) { progress(step, it) }
		}
		res, err := sess.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("Do step %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// TestElasticRollingRestartZeroDowntime is the tentpole proof: all three
// nodes of the cluster are killed and replaced — one per Do of the
// tightening sequence, mid-certify-loop — while the client follows the
// membership through its topology refresher. Zero sessions fail, every
// result is bit-identical to a local retrieval, and concurrent sessions
// retrieving throughout the restarts see the same.
func TestElasticRollingRestartZeroDowntime(t *testing.T) {
	ds := datagen.GE("GE-elastic-roll", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	local := doSequence(t, arch, ds.FieldNames, nil)

	nodes, st := startElasticCluster(t, arch, "ge", 3, "")

	rarch, err := OpenRemote(context.Background(), nodes[0].URL(), "ge",
		WithEndpoints(nodes[1].URL(), nodes[2].URL()),
		WithReplication(2), WithTopologyRefresh(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rarch.Close()

	// Two concurrent sessions retrieve non-stop through every restart:
	// the zero-failed-sessions half of the proof.
	bgCtx, bgStop := context.WithCancel(context.Background())
	defer bgStop()
	var bg sync.WaitGroup
	bgErrs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		bg.Add(1)
		go func() {
			defer bg.Done()
			vtot := TotalVelocity(0, 1, 2)
			for bgCtx.Err() == nil {
				sess, err := rarch.Open()
				if err != nil {
					bgErrs <- err
					return
				}
				res, err := sess.Do(context.Background(), Request{Targets: []Target{
					{QoI: vtot, Tolerance: elasticTolerances[len(elasticTolerances)-1]},
				}})
				if err != nil {
					bgErrs <- fmt.Errorf("concurrent session failed during rolling restart: %w", err)
					return
				}
				points := 0
				for v := range res.Data {
					points += len(res.Data[v])
				}
				if points == 0 {
					bgErrs <- fmt.Errorf("concurrent session returned no data")
					return
				}
			}
		}()
	}

	current := []*elasticNode{nodes[0], nodes[1], nodes[2]}
	restarts := 0
	postRestartIters := 0
	remote := doSequence(t, rarch, ds.FieldNames, func(step int, it Iteration) {
		if step == restarts && restarts < 3 && it.N == 1 {
			victim := current[restarts]
			victim.kill()
			repl := startElasticNode(t, st, int64(100+restarts), "")
			var survivors []string
			for i, n := range current {
				if i != restarts {
					survivors = append(survivors, n.URL())
				}
			}
			repl.join(t, survivors...)
			current[restarts] = repl
			restarts++
			// The kill and the join must both be visible to the client
			// before this Do's next iteration: the dead node unrouted,
			// the replacement serving its rendezvous share.
			waitRoutable(t, rarch, []string{repl.URL()}, []string{victim.URL()})
		} else if it.N > 1 {
			postRestartIters++
		}
	})
	if restarts != 3 {
		t.Fatalf("only %d of 3 nodes were restarted mid-Do", restarts)
	}
	if postRestartIters == 0 {
		t.Fatal("no certify iterations ran after a restart; the faults were not mid-Do")
	}
	for i := range local {
		mustEqualResults(t, local[i], remote[i])
	}
	bgStop()
	bg.Wait()
	select {
	case err := <-bgErrs:
		t.Fatal(err)
	default:
	}

	st2 := rarch.RemoteStats()
	if st2.TopologySwaps < 3 {
		t.Fatalf("TopologySwaps = %d after 3 restarts, want >= 3", st2.TopologySwaps)
	}
	// The final view must be exactly the three replacements.
	var replURLs []string
	for _, n := range current {
		replURLs = append(replURLs, n.URL())
	}
	waitRoutable(t, rarch, replURLs, []string{nodes[0].URL(), nodes[1].URL(), nodes[2].URL()})
}

// TestElasticJoinWhileRetrieving grows the cluster mid-Do: a third node
// joins while a session retrieves, the client's refresher picks it up,
// and it starts serving its rendezvous share — with the result still
// bit-identical.
func TestElasticJoinWhileRetrieving(t *testing.T) {
	ds := datagen.GE("GE-elastic-join", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	local := doSequence(t, arch, ds.FieldNames, nil)

	nodes, st := startElasticCluster(t, arch, "ge", 2, "")
	rarch, err := OpenRemote(context.Background(), nodes[0].URL(), "ge",
		WithEndpoints(nodes[1].URL()),
		WithReplication(2), WithTopologyRefresh(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rarch.Close()

	var joiner *elasticNode
	joined := false
	remote := doSequence(t, rarch, ds.FieldNames, func(step int, it Iteration) {
		if !joined {
			joined = true
			joiner = startElasticNode(t, st, 50, "")
			joiner.join(t, nodes[0].URL())
			waitRoutable(t, rarch, []string{joiner.URL()}, nil)
		}
	})
	if !joined {
		t.Fatal("join never happened mid-Do")
	}
	for i := range local {
		mustEqualResults(t, local[i], remote[i])
	}
	// The joiner took over its rendezvous share of the remaining fetches.
	served := false
	for _, ep := range rarch.RemoteStats().Endpoints {
		if ep.URL == joiner.URL() && ep.Requests > 0 {
			served = true
		}
	}
	if !served {
		t.Fatalf("joined node served no requests: %+v", rarch.RemoteStats().Endpoints)
	}
}

// TestElasticDrainUnderLoad retires a node gracefully while sessions
// retrieve: the admin-gated drain unroutes it from refreshing clients,
// new sessions are refused at its front door while fragment reads keep
// working, and retrieval completes bit-identically. The membership
// gauges are validated through the strict exposition parser.
func TestElasticDrainUnderLoad(t *testing.T) {
	ds := datagen.GE("GE-elastic-drain", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	local := doSequence(t, arch, ds.FieldNames, nil)

	nodes, _ := startElasticCluster(t, arch, "ge", 3, "sesame")
	rarch, err := OpenRemote(context.Background(), nodes[0].URL(), "ge",
		WithEndpoints(nodes[1].URL(), nodes[2].URL()),
		WithReplication(2), WithTopologyRefresh(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rarch.Close()

	victim := nodes[2]
	drained := false
	remote := doSequence(t, rarch, ds.FieldNames, func(step int, it Iteration) {
		if !drained {
			drained = true
			req, err := http.NewRequest(http.MethodPost, victim.URL()+"/v1/cluster/drain", nil)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Authorization", "Bearer sesame")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("drain: status %d", resp.StatusCode)
			}
			waitRoutable(t, rarch, nil, []string{victim.URL()})
		}
	})
	if !drained {
		t.Fatal("drain never happened mid-Do")
	}
	for i := range local {
		mustEqualResults(t, local[i], remote[i])
	}

	// The drained node refuses new sessions but keeps serving fragments.
	resp, err := http.Get(victim.URL() + "/v1/d/ge/index")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("drained index: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drained index refusal has no Retry-After")
	}
	fresp, err := http.Get(victim.URL() + "/v1/d/ge/frag/" + ds.FieldNames[0] + "/0")
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != 200 {
		t.Fatalf("drained fragment read: status %d, want 200", fresp.StatusCode)
	}

	// Peers advertise it as draining; the victim's own gauges agree, and
	// the whole exposition still parses strictly.
	waitMembership(t, nodes[0].URL(), func(info server.ClusterInfo) bool {
		for _, m := range info.Members {
			if m.Addr == victim.URL() && m.State == server.MemberDraining {
				return true
			}
		}
		return false
	})
	mresp, err := http.Get(victim.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("drained node metrics failed strict parse: %v", err)
	}
	for _, want := range []string{
		"progqoid_cluster_drains_total 1",
		`progqoid_cluster_members{state="draining"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// refreshSource computes which of the given base URLs a client's
// topology refresher will consistently ask: the rendezvous winner for
// the "/v1/cluster" key, mirroring the client's pinned scoring (see the
// golden test in internal/client).
func refreshSource(urls []string) string {
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	hash := func(s string) uint64 {
		h := fnv.New64a()
		io.WriteString(h, s) //nolint:errcheck
		return h.Sum64()
	}
	kh := mix(hash("/v1/cluster"))
	best, bestScore := "", uint64(0)
	for _, u := range urls {
		if s := mix(hash(u) ^ kh); best == "" || s > bestScore || (s == bestScore && u < best) {
			best, bestScore = u, s
		}
	}
	return best
}

// TestElasticHeartbeatPartition falsely suspects a perfectly healthy
// node: its announcements are dropped at both peers, the peers' sweepers
// mark it suspect, refreshing clients route around it — and when the
// partition heals, its very next heartbeat restores it to alive with no
// special rejoin dance.
func TestElasticHeartbeatPartition(t *testing.T) {
	ds := datagen.GE("GE-elastic-part", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	local := doSequence(t, arch, ds.FieldNames, nil)

	nodes, _ := startElasticCluster(t, arch, "ge", 3, "")
	urls := []string{nodes[0].URL(), nodes[1].URL(), nodes[2].URL()}
	// The victim must not be the node the client polls for topology, or
	// the client would keep adopting the victim's own (partition-blind)
	// view of the cluster.
	src := refreshSource(urls)
	var victim *elasticNode
	for _, n := range nodes {
		if n.URL() != src {
			victim = n
		}
	}

	rarch, err := OpenRemote(context.Background(), nodes[0].URL(), "ge",
		WithEndpoints(nodes[1].URL(), nodes[2].URL()),
		WithReplication(2), WithTopologyRefresh(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rarch.Close()
	waitRoutable(t, rarch, urls, nil)

	// Partition: both peers drop the victim's announcements.
	for _, n := range nodes {
		if n != victim {
			n.partitionFrom(victim.URL())
		}
	}
	waitMembership(t, src, func(info server.ClusterInfo) bool {
		for _, m := range info.Members {
			if m.Addr == victim.URL() && m.State == server.MemberSuspect {
				return true
			}
		}
		return false
	})
	waitRoutable(t, rarch, nil, []string{victim.URL()})

	// Retrieval during the partition: the suspected node is healthy but
	// unrouted; results stay bit-identical on the remaining two.
	remote := doSequence(t, rarch, ds.FieldNames, nil)
	for i := range local {
		mustEqualResults(t, local[i], remote[i])
	}

	// Heal. The victim's own next heartbeat — same generation, no rejoin
	// protocol — restores alive everywhere, and the client re-routes it.
	for _, n := range nodes {
		n.partitionFrom("")
	}
	waitMembership(t, src, func(info server.ClusterInfo) bool {
		alive := 0
		for _, m := range info.Members {
			if m.State == server.MemberAlive {
				alive++
			}
		}
		return alive == 3
	})
	waitRoutable(t, rarch, urls, nil)

	// The false suspicion was counted on at least one peer.
	suspected := false
	for _, n := range nodes {
		if n == victim {
			continue
		}
		resp, err := http.Get(n.URL() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, "progqoid_cluster_suspect_total") && !strings.HasSuffix(line, " 0") {
				suspected = true
			}
		}
	}
	if !suspected {
		t.Fatal("no peer counted the false suspicion")
	}
}

// TestElasticSplitMembershipView pins behavior when two clients hold
// different membership views — one bootstrapped from a node that
// suspects the victim, one from the (partition-blind) victim itself.
// Both complete bit-identically: membership disagreement affects
// routing, never results.
func TestElasticSplitMembershipView(t *testing.T) {
	ds := datagen.GE("GE-elastic-split", 4, 220, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	local := doSequence(t, arch, ds.FieldNames, nil)

	nodes, _ := startElasticCluster(t, arch, "ge", 3, "")
	victim := nodes[2]
	// One-sided partition: nodes 0 and 1 stop hearing the victim (and
	// suspect it); the victim keeps hearing them and believes the
	// cluster whole.
	nodes[0].partitionFrom(victim.URL())
	nodes[1].partitionFrom(victim.URL())
	for _, url := range []string{nodes[0].URL(), nodes[1].URL()} {
		waitMembership(t, url, func(info server.ClusterInfo) bool {
			for _, m := range info.Members {
				if m.Addr == victim.URL() && m.State == server.MemberSuspect {
					return true
				}
			}
			return false
		})
	}

	// Client A discovers the cluster through a suspecting node, client B
	// through the victim: genuinely split views (no refresh — each keeps
	// the view it bootstrapped).
	archA, err := OpenRemote(context.Background(), nodes[0].URL(), "ge", WithPeerDiscovery(), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	archB, err := OpenRemote(context.Background(), victim.URL(), "ge", WithPeerDiscovery(), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	viewA, viewB := archA.RemoteStats().Routable, archB.RemoteStats().Routable
	if len(viewA) != 2 {
		t.Fatalf("client A routable = %v, want the 2 non-suspect nodes", viewA)
	}
	if len(viewB) != 3 {
		t.Fatalf("client B routable = %v, want all 3 (victim is partition-blind)", viewB)
	}

	remoteA := doSequence(t, archA, ds.FieldNames, nil)
	remoteB := doSequence(t, archB, ds.FieldNames, nil)
	for i := range local {
		mustEqualResults(t, local[i], remoteA[i])
		mustEqualResults(t, local[i], remoteB[i])
	}
}
