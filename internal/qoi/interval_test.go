package qoi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalPrimitives(t *testing.T) {
	a := Interval{1, 2}
	b := Interval{-3, 4}
	if got := addIv(a, b); got != (Interval{-2, 6}) {
		t.Fatalf("add = %v", got)
	}
	if got := scaleIv(-2, a); got != (Interval{-4, -2}) {
		t.Fatalf("scale = %v", got)
	}
	if got := mulIv(a, b); got != (Interval{-6, 8}) {
		t.Fatalf("mul = %v", got)
	}
	if _, ok := divIv(a, Interval{-1, 1}); ok {
		t.Fatal("division by zero-straddling interval should fail")
	}
	if got, ok := divIv(Interval{2, 4}, Interval{1, 2}); !ok || got != (Interval{1, 4}) {
		t.Fatalf("div = %v %v", got, ok)
	}
	if got := powIv(Interval{-2, 1}, 2); got != (Interval{0, 4}) {
		t.Fatalf("even pow = %v", got)
	}
	if got, ok := sqrtIv(Interval{-1, 4}); !ok || got != (Interval{0, 2}) {
		t.Fatalf("sqrt = %v %v", got, ok)
	}
	if _, ok := sqrtIv(Interval{-4, -1}); ok {
		t.Fatal("sqrt of negative interval should fail")
	}
}

// TestIntervalEnclosureSound verifies the fundamental property: for random
// expressions and random perturbations inside the box, f(x') always lands
// inside the computed enclosure.
func TestIntervalEnclosureSound(t *testing.T) {
	var build func(rng *rand.Rand, depth int) Expr
	build = func(rng *rand.Rand, depth int) Expr {
		if depth <= 0 || rng.Intn(4) == 0 {
			if rng.Intn(3) == 0 {
				return Const{C: rng.NormFloat64() * 2}
			}
			return Var{Index: rng.Intn(3)}
		}
		switch rng.Intn(9) {
		case 0:
			return Add(build(rng, depth-1), build(rng, depth-1))
		case 1:
			return Mul{A: build(rng, depth-1), B: build(rng, depth-1)}
		case 2:
			return Div{Num: build(rng, depth-1), Den: build(rng, depth-1)}
		case 3:
			return Pow{N: 1 + rng.Intn(3), X: build(rng, depth-1)}
		case 4:
			return Sqrt{X: build(rng, depth-1)}
		case 5:
			return Radical{C: rng.NormFloat64(), X: build(rng, depth-1)}
		case 6:
			return Abs{X: build(rng, depth-1)}
		case 7:
			return Exp{X: Scale(0.3, build(rng, depth-1))}
		default:
			return Log{X: build(rng, depth-1)}
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := build(rng, 4)
		vals := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		ebs := []float64{rng.Float64() * 0.1, rng.Float64() * 0.1, rng.Float64() * 0.1}
		iv, ok := EvalInterval(e, vals, ebs)
		if !ok {
			return true
		}
		pert := make([]float64, 3)
		for s := 0; s < 200; s++ {
			for i := range pert {
				pert[i] = vals[i] + (rng.Float64()*2-1)*ebs[i]
			}
			v := e.Eval(pert)
			if math.IsNaN(v) {
				continue
			}
			slack := 1e-9*(math.Abs(iv.Lo)+math.Abs(iv.Hi)) + 1e-300
			if v < iv.Lo-slack || v > iv.Hi+slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	qois := GEQoIs()
	for trial := 0; trial < 30; trial++ {
		vals := []float64{
			rng.NormFloat64() * 100, rng.NormFloat64() * 100, rng.NormFloat64() * 100,
			101325 * (1 + 0.1*rng.NormFloat64()), 1.2 * (1 + 0.05*rng.NormFloat64()),
		}
		ebs := []float64{1e-3, 1e-3, 1e-3, 1e-1, 1e-5}
		for _, q := range qois {
			val, bound := IntervalBound(q.Expr, vals, ebs)
			if math.IsInf(bound, 1) {
				continue
			}
			sup := bruteForceSup(q.Expr, vals, ebs, rng, 300)
			slack := bound*1e-9 + 1e-12*(1+math.Abs(val))
			if sup > bound+slack {
				t.Errorf("%s: interval bound %g below observed sup %g", q.Name, bound, sup)
			}
		}
	}
}

func TestIntervalVsTheoremTightness(t *testing.T) {
	// Documents the tightness relationship on the GE QoIs: both are sound;
	// neither dominates universally, but both must stay within a small
	// factor on realistic CFD values.
	rng := rand.New(rand.NewSource(32))
	qois := GEQoIs()
	for trial := 0; trial < 20; trial++ {
		vals := []float64{
			50 + rng.Float64()*100, rng.NormFloat64() * 50, rng.NormFloat64() * 30,
			101325 * (1 + 0.05*rng.NormFloat64()), 1.2,
		}
		ebs := []float64{1e-4, 1e-4, 1e-4, 1e-2, 1e-6}
		for _, q := range qois {
			_, tb := TheoremBound(q.Expr, vals, ebs)
			_, ib := IntervalBound(q.Expr, vals, ebs)
			if math.IsInf(tb, 1) || math.IsInf(ib, 1) {
				continue
			}
			if tb <= 0 || ib <= 0 {
				continue
			}
			ratio := tb / ib
			if ratio < 1e-3 || ratio > 1e3 {
				t.Errorf("%s: estimator ratio %g wildly divergent (theorem %g, interval %g)",
					q.Name, ratio, tb, ib)
			}
		}
	}
}

func TestIntervalBoundInfiniteCases(t *testing.T) {
	// Division straddling zero.
	e := Div{Num: Var{0}, Den: Var{1}}
	if _, b := IntervalBound(e, []float64{1, 0.1}, []float64{0, 1}); !math.IsInf(b, 1) {
		t.Fatal("straddling division should be +Inf")
	}
	// Infinite input bound.
	if _, b := IntervalBound(Var{0}, []float64{1}, []float64{math.Inf(1)}); !math.IsInf(b, 1) {
		t.Fatal("infinite input bound should propagate")
	}
	// Log domain violation.
	if _, b := IntervalBound(Log{X: Var{0}}, []float64{0.5}, []float64{1}); !math.IsInf(b, 1) {
		t.Fatal("log straddling zero should be +Inf")
	}
}

func TestIntervalZeroErrorGivesZeroBound(t *testing.T) {
	vals := []float64{3, 4, 5, 101325, 1.2}
	zero := make([]float64, 5)
	for _, q := range GEQoIs() {
		_, b := IntervalBound(q.Expr, vals, zero)
		if b > 1e-12 {
			t.Errorf("%s: zero input error gives interval bound %g", q.Name, b)
		}
	}
}
