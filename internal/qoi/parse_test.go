package qoi

import (
	"math"
	"testing"
)

var geFields = []string{"Vx", "Vy", "Vz", "P", "D"}

func TestParseVTOT(t *testing.T) {
	e, err := Parse("sqrt(Vx^2 + Vy^2 + Vz^2)", geFields)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{3, 4, 0, 0, 0}
	if got := e.Eval(vals); got != 5 {
		t.Fatalf("got %g, want 5", got)
	}
	// Parsed tree must agree with the hand-built QoI on values and bounds.
	ref := TotalVelocity(0, 1, 2).Expr
	ebs := []float64{0.1, 0.2, 0.3, 0, 0}
	v1, b1 := e.Bound(vals, ebs)
	v2, b2 := ref.Bound(vals, ebs)
	if v1 != v2 || math.Abs(b1-b2) > 1e-15 {
		t.Fatalf("parsed (%g,%g) vs built (%g,%g)", v1, b1, v2, b2)
	}
}

func TestParseArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		vals []float64
		want float64
	}{
		{"1 + 2 * 3", nil, 7},
		{"(1 + 2) * 3", nil, 9},
		{"2 ^ 3", nil, 8},
		{"-Vx", []float64{4}, -4},
		{"Vx - Vy - Vz", []float64{10, 3, 2}, 5},
		{"Vx / Vy / Vz", []float64{24, 3, 2}, 4},
		{"Vx * -2", []float64{5}, -10},
		{"2e2 + 1", nil, 201},
		{"Vx^0", []float64{9}, 1},
	}
	for _, c := range cases {
		e, err := Parse(c.src, geFields)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		vals := c.vals
		if vals == nil {
			vals = make([]float64, 5)
		}
		if got := e.Eval(vals); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %g, want %g", c.src, got, c.want)
		}
	}
}

func TestParseHalfIntegerPower(t *testing.T) {
	e, err := Parse("Vx^1.5", geFields)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Eval([]float64{4}), 8.0; got != want {
		t.Fatalf("4^1.5 = %g, want %g", got, want)
	}
	// x^3.5 lowers to sqrt(x^7): the Equation (5) decomposition.
	e2, err := Parse("Vx^3.5", geFields)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e2.Eval([]float64{2}), math.Pow(2, 3.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("2^3.5 = %g, want %g", got, want)
	}
	if _, ok := e2.(Sqrt); !ok {
		t.Fatalf("x^3.5 should lower to Sqrt, got %T", e2)
	}
}

func TestParseConstantFoldIntoScale(t *testing.T) {
	e, err := Parse("2 * Vx", geFields)
	if err != nil {
		t.Fatal(err)
	}
	// Constant multiplication must use the exact Theorem 8 bound a·Δ(f),
	// not the looser generic product bound.
	_, b := e.Bound([]float64{10}, []float64{0.5})
	if b != 1.0 {
		t.Fatalf("2*Vx bound = %g, want exactly 1", b)
	}
}

func TestParseGEFormulas(t *testing.T) {
	// All six GE QoIs written as formulas must match the builders.
	formulas := map[string]QoI{
		"sqrt(Vx^2+Vy^2+Vz^2)": TotalVelocity(0, 1, 2),
		"P / (287.1 * D)":      Temperature(),
	}
	vals := []float64{120, -35, 60, 98000, 1.18}
	ebs := []float64{1e-2, 1e-2, 1e-2, 5, 1e-4}
	for src, ref := range formulas {
		e, err := Parse(src, geFields)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		v1, b1 := e.Bound(vals, ebs)
		v2, b2 := ref.Expr.Bound(vals, ebs)
		if math.Abs(v1-v2) > 1e-9*math.Abs(v2) {
			t.Errorf("%q value %g vs %g", src, v1, v2)
		}
		if math.Abs(b1-b2) > 1e-9*b2 {
			t.Errorf("%q bound %g vs %g", src, b1, b2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Vx +",
		"(Vx",
		"sqrt Vx",
		"sqrt(Vx",
		"unknown_field",
		"Vx ^ Vy",
		"Vx ^ -2",
		"Vx ^ 0.3",
		"Vx * * Vy",
		"1 2",
		"Vx @ Vy",
	}
	for _, src := range bad {
		if _, err := Parse(src, geFields); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("(((", geFields)
}

func TestParseWhitespaceAndCase(t *testing.T) {
	e, err := Parse("  SQRT( Vx ^ 2 )  ", geFields)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Eval([]float64{-3, 0, 0, 0, 0}); got != 3 {
		t.Fatalf("got %g", got)
	}
}
