// Package qoi implements the paper's theory of derivable quantities of
// interest (§IV): an expression tree over the basis of Table II
// (polynomials, square root, radical, addition, multiplication, division,
// and functional composition), with two operations per node:
//
//   - Eval: the QoI value at a reconstructed data point, and
//   - Bound: the guaranteed supremum Δ(f, x, ε) of the QoI error given the
//     reconstructed values x and the L∞ error bounds ε used during
//     retrieval (Definitions 4–5).
//
// Bound implements Theorems 1 (polynomial), 2 (square root), 3 (radical),
// 4 (addition), 5 (multiplication), 6 (division), 7–8 (additive /
// multiplicative closure) and 9 with Lemmas 1–2 (composition) — composition
// is simply the recursion over the tree, with each node receiving its
// children's (value, bound) pairs.
//
// A node whose theorem precondition fails (ε ≥ |x₂| in division, ε ≥ |x+c|
// in the radical, or a negative radicand) reports a +Inf bound; the
// retrieval loop reacts by tightening primary-data bounds (or masking
// exact-zero points, §V-A). A zero incoming bound always yields a zero
// outgoing bound, so retrieval at full fidelity terminates.
package qoi

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Expr is a derivable QoI over a vector of variables addressed by index.
type Expr interface {
	// Eval computes the QoI at vals.
	Eval(vals []float64) float64
	// Bound computes the QoI value at the reconstructed vals and the
	// guaranteed error supremum given per-variable L∞ bounds ebs. The bound
	// is +Inf when a theorem precondition fails at this point.
	Bound(vals, ebs []float64) (value, bound float64)
	// MaxVar returns the largest variable index used (-1 for constants).
	MaxVar() int
	// String renders the expression.
	String() string
}

// Var references input variable i.
type Var struct{ Index int }

// Eval implements Expr.
func (v Var) Eval(vals []float64) float64 { return vals[v.Index] }

// Bound implements Expr: a variable's error is its retrieval bound.
func (v Var) Bound(vals, ebs []float64) (float64, float64) {
	return vals[v.Index], ebs[v.Index]
}

// MaxVar implements Expr.
func (v Var) MaxVar() int { return v.Index }

// String implements Expr.
func (v Var) String() string { return fmt.Sprintf("x%d", v.Index) }

// Const is a constant (zero error).
type Const struct{ C float64 }

// Eval implements Expr.
func (c Const) Eval([]float64) float64 { return c.C }

// Bound implements Expr.
func (c Const) Bound([]float64, []float64) (float64, float64) { return c.C, 0 }

// MaxVar implements Expr.
func (c Const) MaxVar() int { return -1 }

// String implements Expr.
func (c Const) String() string { return trimFloat(c.C) }

// Sum is the weighted sum Σ wᵢ·termᵢ (Theorems 4, 7, 8).
type Sum struct {
	Weights []float64
	Terms   []Expr
}

// Add builds an unweighted sum.
func Add(terms ...Expr) Expr {
	w := make([]float64, len(terms))
	for i := range w {
		w[i] = 1
	}
	return Sum{Weights: w, Terms: terms}
}

// Sub builds a − b.
func Sub(a, b Expr) Expr { return Sum{Weights: []float64{1, -1}, Terms: []Expr{a, b}} }

// Scale builds w·x (Theorem 8).
func Scale(w float64, x Expr) Expr { return Sum{Weights: []float64{w}, Terms: []Expr{x}} }

// Eval implements Expr.
func (s Sum) Eval(vals []float64) float64 {
	acc := 0.0
	for i, t := range s.Terms {
		acc += s.Weights[i] * t.Eval(vals)
	}
	return acc
}

// Bound implements Expr: Δ(Σwᵢfᵢ) ≤ Σ|wᵢ|Δ(fᵢ).
func (s Sum) Bound(vals, ebs []float64) (float64, float64) {
	acc, d := 0.0, 0.0
	for i, t := range s.Terms {
		v, dv := t.Bound(vals, ebs)
		acc += s.Weights[i] * v
		d += math.Abs(s.Weights[i]) * dv
	}
	return acc, d
}

// MaxVar implements Expr.
func (s Sum) MaxVar() int {
	m := -1
	for _, t := range s.Terms {
		if v := t.MaxVar(); v > m {
			m = v
		}
	}
	return m
}

// String implements Expr.
func (s Sum) String() string {
	var b strings.Builder
	for i, t := range s.Terms {
		w := s.Weights[i]
		if i == 0 {
			if w == 1 {
				b.WriteString(t.String())
			} else if w == -1 {
				fmt.Fprintf(&b, "-%s", t.String())
			} else {
				fmt.Fprintf(&b, "%s*%s", trimFloat(w), t.String())
			}
			continue
		}
		switch {
		case w == 1:
			fmt.Fprintf(&b, " + %s", t.String())
		case w == -1:
			fmt.Fprintf(&b, " - %s", t.String())
		case w < 0:
			fmt.Fprintf(&b, " - %s*%s", trimFloat(-w), t.String())
		default:
			fmt.Fprintf(&b, " + %s*%s", trimFloat(w), t.String())
		}
	}
	return "(" + b.String() + ")"
}

// Mul is the product of two QoIs (Theorem 5; n-ary products fold pairwise
// via Theorem 9's composition).
type Mul struct{ A, B Expr }

// Product folds factors left-to-right into nested Mul nodes.
func Product(factors ...Expr) Expr {
	if len(factors) == 0 {
		return Const{1}
	}
	e := factors[0]
	for _, f := range factors[1:] {
		e = Mul{A: e, B: f}
	}
	return e
}

// Eval implements Expr.
func (m Mul) Eval(vals []float64) float64 { return m.A.Eval(vals) * m.B.Eval(vals) }

// Bound implements Expr: Δ(x₁x₂) ≤ |x₁|ε₂ + |x₂|ε₁ + ε₁ε₂.
func (m Mul) Bound(vals, ebs []float64) (float64, float64) {
	va, da := m.A.Bound(vals, ebs)
	vb, db := m.B.Bound(vals, ebs)
	return va * vb, math.Abs(va)*db + math.Abs(vb)*da + da*db
}

// MaxVar implements Expr.
func (m Mul) MaxVar() int { return max(m.A.MaxVar(), m.B.MaxVar()) }

// String implements Expr.
func (m Mul) String() string { return fmt.Sprintf("(%s * %s)", m.A, m.B) }

// Div is the quotient of two QoIs (Theorem 6).
type Div struct{ Num, Den Expr }

// Eval implements Expr.
func (d Div) Eval(vals []float64) float64 { return d.Num.Eval(vals) / d.Den.Eval(vals) }

// Bound implements Expr: Δ(x₁/x₂) ≤ (|x₁|ε₂+|x₂|ε₁) / (|x₂|·min(|x₂−ε₂|,|x₂+ε₂|))
// valid only while ε₂ < |x₂|.
func (d Div) Bound(vals, ebs []float64) (float64, float64) {
	vn, dn := d.Num.Bound(vals, ebs)
	vd, dd := d.Den.Bound(vals, ebs)
	val := vn / vd
	if dn == 0 && dd == 0 {
		return val, 0
	}
	if !(dd < math.Abs(vd)) {
		return val, math.Inf(1)
	}
	den := math.Abs(vd) * math.Min(math.Abs(vd-dd), math.Abs(vd+dd))
	return val, (math.Abs(vn)*dd + math.Abs(vd)*dn) / den
}

// MaxVar implements Expr.
func (d Div) MaxVar() int { return max(d.Num.MaxVar(), d.Den.MaxVar()) }

// String implements Expr.
func (d Div) String() string { return fmt.Sprintf("(%s / %s)", d.Num, d.Den) }

// Pow is the integer power xⁿ, n ≥ 1 (Theorem 1 for a monomial).
type Pow struct {
	N int
	X Expr
}

// Eval implements Expr.
func (p Pow) Eval(vals []float64) float64 { return intPow(p.X.Eval(vals), p.N) }

// Bound implements Expr: Δ(xⁿ) ≤ Σᵢ₌₁ⁿ C(n,i)|x|ⁿ⁻ⁱ εⁱ.
func (p Pow) Bound(vals, ebs []float64) (float64, float64) {
	v, d := p.X.Bound(vals, ebs)
	return intPow(v, p.N), powBound(v, d, p.N)
}

func powBound(v, d float64, n int) float64 {
	if d == 0 {
		return 0
	}
	av := math.Abs(v)
	bound := 0.0
	c := 1.0 // C(n,i) built incrementally
	for i := 1; i <= n; i++ {
		c = c * float64(n-i+1) / float64(i)
		bound += c * intPow(av, n-i) * intPow(d, i)
	}
	return bound
}

func intPow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

// MaxVar implements Expr.
func (p Pow) MaxVar() int { return p.X.MaxVar() }

// String implements Expr.
func (p Pow) String() string { return fmt.Sprintf("%s^%d", p.X, p.N) }

// Poly is the polynomial Σ aᵢ·xⁱ over one sub-expression (Theorem 1 with
// the additive and multiplicative closures of Theorems 7–8).
type Poly struct {
	Coeffs []float64 // Coeffs[i] multiplies x^i
	X      Expr
}

// Eval implements Expr (Horner form).
func (p Poly) Eval(vals []float64) float64 {
	x := p.X.Eval(vals)
	acc := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc = acc*x + p.Coeffs[i]
	}
	return acc
}

// Bound implements Expr: Δ(Σaᵢxⁱ) ≤ Σ|aᵢ|·Δ(xⁱ).
func (p Poly) Bound(vals, ebs []float64) (float64, float64) {
	x, d := p.X.Bound(vals, ebs)
	acc := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc = acc*x + p.Coeffs[i]
	}
	bound := 0.0
	for i, a := range p.Coeffs {
		if i == 0 || a == 0 {
			continue
		}
		bound += math.Abs(a) * powBound(x, d, i)
	}
	return acc, bound
}

// MaxVar implements Expr.
func (p Poly) MaxVar() int { return p.X.MaxVar() }

// String implements Expr.
func (p Poly) String() string {
	parts := make([]string, 0, len(p.Coeffs))
	for i, a := range p.Coeffs {
		if a == 0 {
			continue
		}
		switch i {
		case 0:
			parts = append(parts, trimFloat(a))
		case 1:
			parts = append(parts, fmt.Sprintf("%s*%s", trimFloat(a), p.X))
		default:
			parts = append(parts, fmt.Sprintf("%s*%s^%d", trimFloat(a), p.X, i))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// Sqrt is √x (Theorem 2).
type Sqrt struct{ X Expr }

// Eval implements Expr.
func (s Sqrt) Eval(vals []float64) float64 { return math.Sqrt(s.X.Eval(vals)) }

// Bound implements Expr: Δ(√x) ≤ ε/(√max(x−ε,0) + √x). The estimate blows
// up as x→0 with ε>0 — the behaviour the paper's outlier mask exists for.
func (s Sqrt) Bound(vals, ebs []float64) (float64, float64) {
	v, d := s.X.Bound(vals, ebs)
	if v < 0 {
		// Reconstructed radicand negative: the true value cannot be
		// certified until the bound shrinks.
		return math.NaN(), math.Inf(1)
	}
	val := math.Sqrt(v)
	if d == 0 {
		return val, 0
	}
	den := math.Sqrt(math.Max(v-d, 0)) + val
	if den == 0 {
		return val, math.Inf(1)
	}
	return val, d / den
}

// MaxVar implements Expr.
func (s Sqrt) MaxVar() int { return s.X.MaxVar() }

// String implements Expr.
func (s Sqrt) String() string { return fmt.Sprintf("sqrt(%s)", s.X) }

// Radical is 1/(x + c) (Theorem 3).
type Radical struct {
	C float64
	X Expr
}

// Eval implements Expr.
func (r Radical) Eval(vals []float64) float64 { return 1 / (r.X.Eval(vals) + r.C) }

// Bound implements Expr: Δ(1/(x+c)) ≤ ε/(min(|x+c−ε|,|x+c+ε|)·|x+c|),
// valid only while ε < |x+c|.
func (r Radical) Bound(vals, ebs []float64) (float64, float64) {
	v, d := r.X.Bound(vals, ebs)
	u := v + r.C
	val := 1 / u
	if d == 0 {
		return val, 0
	}
	if !(d < math.Abs(u)) {
		return val, math.Inf(1)
	}
	return val, d / (math.Min(math.Abs(u-d), math.Abs(u+d)) * math.Abs(u))
}

// MaxVar implements Expr.
func (r Radical) MaxVar() int { return r.X.MaxVar() }

// String implements Expr.
func (r Radical) String() string { return fmt.Sprintf("1/(%s + %s)", r.X, trimFloat(r.C)) }

// Vars returns the sorted distinct variable indices used by e.
func Vars(e Expr) []int {
	set := map[int]bool{}
	collectVars(e, set)
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func collectVars(e Expr, set map[int]bool) {
	switch n := e.(type) {
	case Var:
		set[n.Index] = true
	case Const:
	case Sum:
		for _, t := range n.Terms {
			collectVars(t, set)
		}
	case Mul:
		collectVars(n.A, set)
		collectVars(n.B, set)
	case Div:
		collectVars(n.Num, set)
		collectVars(n.Den, set)
	case Pow:
		collectVars(n.X, set)
	case Poly:
		collectVars(n.X, set)
	case Sqrt:
		collectVars(n.X, set)
	case Radical:
		collectVars(n.X, set)
	case Abs:
		collectVars(n.X, set)
	case Exp:
		collectVars(n.X, set)
	case Log:
		collectVars(n.X, set)
	default:
		// Unknown node types contribute conservatively via MaxVar.
		for i := 0; i <= e.MaxVar(); i++ {
			set[i] = true
		}
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
