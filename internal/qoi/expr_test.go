package qoi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceSup samples perturbations |x'−x| ≤ ε on a dense grid (plus the
// corners) and returns the largest observed QoI deviation. The theorems
// guarantee Bound() dominates this for any sample.
func bruteForceSup(e Expr, vals, ebs []float64, rng *rand.Rand, samples int) float64 {
	base := e.Eval(vals)
	pert := make([]float64, len(vals))
	sup := 0.0
	try := func() {
		v := e.Eval(pert)
		if math.IsNaN(v) || math.IsNaN(base) {
			return
		}
		if d := math.Abs(v - base); d > sup {
			sup = d
		}
	}
	// Corners of the hyper-box.
	n := len(vals)
	if n <= 12 {
		for mask := 0; mask < 1<<n; mask++ {
			for i := range vals {
				if mask>>i&1 == 1 {
					pert[i] = vals[i] + ebs[i]
				} else {
					pert[i] = vals[i] - ebs[i]
				}
			}
			try()
		}
	}
	for s := 0; s < samples; s++ {
		for i := range vals {
			pert[i] = vals[i] + (rng.Float64()*2-1)*ebs[i]
		}
		try()
	}
	return sup
}

func checkSound(t *testing.T, name string, e Expr, vals, ebs []float64, rng *rand.Rand) {
	t.Helper()
	val, bound := e.Bound(vals, ebs)
	evalVal := e.Eval(vals)
	if !math.IsNaN(val) && !math.IsNaN(evalVal) && val != evalVal {
		t.Errorf("%s: Bound value %g != Eval %g", name, val, evalVal)
	}
	if math.IsInf(bound, 1) {
		return // infinite bounds are trivially sound
	}
	// The theorems hold in exact arithmetic; evaluating f twice in floats
	// adds a few ulp of noise, so allow a relative 1e-9 + tiny absolute
	// slack proportional to the value magnitude.
	sup := bruteForceSup(e, vals, ebs, rng, 300)
	slack := bound*1e-9 + 1e-12*(1+math.Abs(val))
	if sup > bound+slack {
		t.Errorf("%s at vals=%v ebs=%v: observed sup %g > bound %g", name, vals, ebs, sup, bound)
	}
}

func TestTheorem1Polynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := rng.NormFloat64() * 5
		eb := math.Abs(rng.NormFloat64())
		for n := 1; n <= 6; n++ {
			checkSound(t, "pow", Pow{N: n, X: Var{0}}, []float64{x}, []float64{eb}, rng)
		}
		poly := Poly{Coeffs: []float64{2, -1, 0.5, 3}, X: Var{0}}
		checkSound(t, "poly", poly, []float64{x}, []float64{eb}, rng)
	}
}

func TestTheorem2Sqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := Sqrt{X: Var{0}}
	for trial := 0; trial < 50; trial++ {
		x := math.Abs(rng.NormFloat64()) * 10
		eb := math.Abs(rng.NormFloat64())
		checkSound(t, "sqrt", e, []float64{x}, []float64{eb}, rng)
	}
	// x = 0 with ε > 0 must report an infinite (unusable) bound.
	if _, b := e.Bound([]float64{0}, []float64{0.1}); !math.IsInf(b, 1) {
		t.Errorf("sqrt at 0: bound = %g, want +Inf", b)
	}
	// Zero incoming error must give zero bound even at x = 0.
	if _, b := e.Bound([]float64{0}, []float64{0}); b != 0 {
		t.Errorf("sqrt exact: bound = %g, want 0", b)
	}
	// Negative reconstructed radicand: NaN value, +Inf bound.
	if v, b := e.Bound([]float64{-1}, []float64{0.5}); !math.IsNaN(v) || !math.IsInf(b, 1) {
		t.Errorf("sqrt negative: %g, %g", v, b)
	}
}

func TestTheorem3Radical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		c := rng.NormFloat64() * 3
		x := rng.NormFloat64() * 5
		if math.Abs(x+c) < 1e-3 {
			continue
		}
		eb := math.Abs(rng.NormFloat64()) * 0.3 * math.Abs(x+c) // ε < |x+c|
		e := Radical{C: c, X: Var{0}}
		checkSound(t, "radical", e, []float64{x}, []float64{eb}, rng)
	}
	// Precondition violation ε ≥ |x+c|: +Inf.
	e := Radical{C: 1, X: Var{0}}
	if _, b := e.Bound([]float64{0}, []float64{2}); !math.IsInf(b, 1) {
		t.Errorf("radical precondition: bound = %g, want +Inf", b)
	}
	if _, b := e.Bound([]float64{0}, []float64{0}); b != 0 {
		t.Errorf("radical exact: bound = %g, want 0", b)
	}
}

func TestTheorem4Addition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := Sum{Weights: []float64{2, -3, 0.5}, Terms: []Expr{Var{0}, Var{1}, Var{2}}}
	for trial := 0; trial < 30; trial++ {
		vals := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		ebs := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		checkSound(t, "sum", e, vals, ebs, rng)
	}
	// The additive bound is exactly Σ|wᵢ|εᵢ.
	_, b := e.Bound([]float64{1, 1, 1}, []float64{0.1, 0.2, 0.4})
	want := 2*0.1 + 3*0.2 + 0.5*0.4
	if math.Abs(b-want) > 1e-15 {
		t.Errorf("additive bound %g, want %g", b, want)
	}
}

func TestTheorem5Multiplication(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := Mul{A: Var{0}, B: Var{1}}
	for trial := 0; trial < 50; trial++ {
		vals := []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		ebs := []float64{rng.Float64(), rng.Float64()}
		checkSound(t, "mul", e, vals, ebs, rng)
	}
	// Exact formula check: |x1|ε2 + |x2|ε1 + ε1ε2.
	_, b := e.Bound([]float64{-3, 2}, []float64{0.1, 0.2})
	want := 3*0.2 + 2*0.1 + 0.1*0.2
	if math.Abs(b-want) > 1e-15 {
		t.Errorf("mul bound %g, want %g", b, want)
	}
}

func TestTheorem6Division(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := Div{Num: Var{0}, Den: Var{1}}
	for trial := 0; trial < 50; trial++ {
		x1 := rng.NormFloat64() * 4
		x2 := rng.NormFloat64() * 4
		if math.Abs(x2) < 1e-2 {
			continue
		}
		ebs := []float64{rng.Float64(), rng.Float64() * 0.4 * math.Abs(x2)}
		checkSound(t, "div", e, []float64{x1, x2}, ebs, rng)
	}
	// Precondition ε₂ ≥ |x₂| → +Inf.
	if _, b := e.Bound([]float64{1, 0.5}, []float64{0, 1}); !math.IsInf(b, 1) {
		t.Errorf("div precondition: bound %g, want +Inf", b)
	}
}

func TestTheorems789Composition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// f1+f2, a·f, f1∘f2 stacked: sqrt(2·(x0²+x1²) + 1).
	e := Sqrt{X: Sum{
		Weights: []float64{2, 1},
		Terms: []Expr{
			Add(Pow{N: 2, X: Var{0}}, Pow{N: 2, X: Var{1}}),
			Const{1},
		},
	}}
	for trial := 0; trial < 50; trial++ {
		vals := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		ebs := []float64{rng.Float64() * 0.5, rng.Float64() * 0.5}
		checkSound(t, "composite", e, vals, ebs, rng)
	}
}

func TestLemma12UnivariateMultivariateComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// g∘{f1,f2}: (x0²)·(√x1) then f∘g: √ of that again.
	e := Sqrt{X: Mul{A: Pow{N: 2, X: Var{0}}, B: Sqrt{X: Var{1}}}}
	for trial := 0; trial < 50; trial++ {
		vals := []float64{rng.NormFloat64()*2 + 3, math.Abs(rng.NormFloat64())*5 + 1}
		ebs := []float64{rng.Float64() * 0.3, rng.Float64() * 0.3}
		checkSound(t, "lemma", e, vals, ebs, rng)
	}
}

func TestGEQoIsSoundOnRealisticValues(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	qois := GEQoIs()
	if len(qois) != 6 {
		t.Fatalf("want 6 GE QoIs, got %d", len(qois))
	}
	for trial := 0; trial < 40; trial++ {
		// Realistic CFD magnitudes: velocities ±200 m/s, P ≈ 1e5 Pa, D ≈ 1.2.
		vals := []float64{
			rng.NormFloat64() * 100,
			rng.NormFloat64() * 100,
			rng.NormFloat64() * 100,
			101325 * (1 + 0.2*rng.NormFloat64()),
			1.2 * (1 + 0.1*rng.NormFloat64()),
		}
		if vals[GED] < 0.5 || vals[GEP] < 1e4 {
			continue
		}
		ebs := []float64{1e-3, 1e-3, 1e-3, 1e-1, 1e-5}
		for _, q := range qois {
			checkSound(t, q.Name, q.Expr, vals, ebs, rng)
		}
	}
}

func TestGEQoIValuesPhysical(t *testing.T) {
	// Standard air at sea level: T ≈ 288 K, C ≈ 340 m/s, μ ≈ 1.8e-5.
	vals := []float64{100, 0, 0, 101325, 1.225}
	temp := Temperature().Expr.Eval(vals)
	if math.Abs(temp-288.1) > 1 {
		t.Errorf("T = %g, want ≈ 288", temp)
	}
	c := SoundSpeed().Expr.Eval(vals)
	if math.Abs(c-340.3) > 1 {
		t.Errorf("C = %g, want ≈ 340", c)
	}
	mach := MachNumber().Expr.Eval(vals)
	if math.Abs(mach-100/340.3) > 1e-2 {
		t.Errorf("Mach = %g", mach)
	}
	mu := Viscosity().Expr.Eval(vals)
	if math.Abs(mu-1.79e-5) > 2e-7 {
		t.Errorf("mu = %g, want ≈ 1.79e-5", mu)
	}
	// At Mach ≈ 0.294 the isentropic ratio is (1+0.2·M²)^3.5 ≈ 1.0604^...
	// PT/P ≈ 1.228, so PT ≈ 124.4 kPa.
	pt := TotalPressure().Expr.Eval(vals)
	if pt <= 101325 || pt > 1.3*101325 {
		t.Errorf("PT = %g, want within (P, 1.3P)", pt)
	}
	vt := TotalVelocity(0, 1, 2).Expr.Eval(vals)
	if vt != 100 {
		t.Errorf("VTOT = %g", vt)
	}
}

func TestS3DProducts(t *testing.T) {
	qois := S3DProducts()
	if len(qois) != 4 {
		t.Fatalf("want 4 products, got %d", len(qois))
	}
	vals := make([]float64, 8)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if got := qois[0].Expr.Eval(vals); got != vals[S3DO2]*vals[S3DH] {
		t.Errorf("x1*x3 = %g", got)
	}
	rng := rand.New(rand.NewSource(10))
	ebs := make([]float64, 8)
	for i := range ebs {
		ebs[i] = 1e-4
	}
	for _, q := range qois {
		checkSound(t, q.Name, q.Expr, vals, ebs, rng)
	}
}

func TestZeroErrorPropagatesToZeroBound(t *testing.T) {
	zero := make([]float64, 5)
	vals := []float64{1, 2, 3, 101325, 1.2}
	for _, q := range GEQoIs() {
		if _, b := q.Expr.Bound(vals, zero); b != 0 {
			t.Errorf("%s: zero input error gives bound %g", q.Name, b)
		}
	}
}

func TestVarsCollection(t *testing.T) {
	e := MachNumber().Expr
	got := Vars(e)
	want := []int{GEVx, GEVy, GEVz, GEP, GED}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if v := Vars(Const{3}); len(v) != 0 {
		t.Errorf("const vars = %v", v)
	}
	if v := Vars(Mul{A: Var{2}, B: Var{2}}); len(v) != 1 || v[0] != 2 {
		t.Errorf("dup vars = %v", v)
	}
}

func TestMaxVar(t *testing.T) {
	if got := TotalPressure().Expr.MaxVar(); got != GED {
		t.Errorf("PT MaxVar = %d, want %d", got, GED)
	}
	if got := (Const{1}).MaxVar(); got != -1 {
		t.Errorf("const MaxVar = %d", got)
	}
}

func TestStringsRender(t *testing.T) {
	for _, q := range GEQoIs() {
		if s := q.Expr.String(); len(s) == 0 {
			t.Errorf("%s: empty String()", q.Name)
		}
	}
	if s := (Sub(Var{0}, Var{1})).String(); s != "(x0 - x1)" {
		t.Errorf("Sub string = %q", s)
	}
}

func TestPropertyRandomCompositesSound(t *testing.T) {
	// Random expression trees over 3 variables must always produce sound
	// bounds wherever the bound is finite.
	var build func(rng *rand.Rand, depth int) Expr
	build = func(rng *rand.Rand, depth int) Expr {
		if depth <= 0 || rng.Intn(4) == 0 {
			if rng.Intn(3) == 0 {
				return Const{C: rng.NormFloat64() * 2}
			}
			return Var{Index: rng.Intn(3)}
		}
		switch rng.Intn(6) {
		case 0:
			return Add(build(rng, depth-1), build(rng, depth-1))
		case 1:
			return Mul{A: build(rng, depth-1), B: build(rng, depth-1)}
		case 2:
			return Div{Num: build(rng, depth-1), Den: build(rng, depth-1)}
		case 3:
			return Pow{N: 1 + rng.Intn(3), X: build(rng, depth-1)}
		case 4:
			return Sqrt{X: build(rng, depth-1)}
		default:
			return Radical{C: rng.NormFloat64(), X: build(rng, depth-1)}
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := build(rng, 4)
		vals := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		ebs := []float64{rng.Float64() * 0.1, rng.Float64() * 0.1, rng.Float64() * 0.1}
		val, bound := e.Bound(vals, ebs)
		if math.IsInf(bound, 1) || math.IsNaN(val) || math.IsNaN(bound) {
			return true // indeterminate points are allowed to be refused
		}
		sup := bruteForceSup(e, vals, ebs, rand.New(rand.NewSource(seed+1)), 200)
		if math.IsNaN(sup) {
			return true
		}
		return sup <= bound*(1+1e-9)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
