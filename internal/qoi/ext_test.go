package qoi

import (
	"math"
	"math/rand"
	"testing"
)

func TestAbsTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	e := Abs{X: Var{0}}
	for trial := 0; trial < 50; trial++ {
		x := rng.NormFloat64() * 5
		eb := math.Abs(rng.NormFloat64())
		checkSound(t, "abs", e, []float64{x}, []float64{eb}, rng)
	}
	// Tightness: with |x| ≥ ε the bound equals ε exactly.
	if _, b := e.Bound([]float64{10}, []float64{0.5}); b != 0.5 {
		t.Fatalf("abs bound = %g, want 0.5", b)
	}
	if _, b := e.Bound([]float64{-3}, []float64{0}); b != 0 {
		t.Fatal("abs exact should have zero bound")
	}
}

func TestExpTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	e := Exp{X: Var{0}}
	for trial := 0; trial < 50; trial++ {
		x := rng.NormFloat64() * 3
		eb := math.Abs(rng.NormFloat64()) * 0.5
		checkSound(t, "exp", e, []float64{x}, []float64{eb}, rng)
	}
	// Exactness: the sup is attained at ξ = +ε.
	v, b := e.Bound([]float64{1}, []float64{0.25})
	wantV := math.E
	wantB := math.E * math.Expm1(0.25)
	if math.Abs(v-wantV) > 1e-15 || math.Abs(b-wantB) > 1e-15 {
		t.Fatalf("exp bound (%g,%g), want (%g,%g)", v, b, wantV, wantB)
	}
	if _, b := e.Bound([]float64{2}, []float64{0}); b != 0 {
		t.Fatal("exp exact should have zero bound")
	}
}

func TestLogTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e := Log{X: Var{0}}
	for trial := 0; trial < 50; trial++ {
		x := math.Abs(rng.NormFloat64())*10 + 0.5
		eb := rng.Float64() * 0.4 * x // ε < x
		checkSound(t, "log", e, []float64{x}, []float64{eb}, rng)
	}
	// Precondition ε ≥ x: +Inf.
	if _, b := e.Bound([]float64{1}, []float64{1}); !math.IsInf(b, 1) {
		t.Fatal("log precondition violation should be +Inf")
	}
	// Non-positive reconstructed argument: NaN value, +Inf bound.
	if v, b := e.Bound([]float64{-1}, []float64{0.1}); !math.IsNaN(v) || !math.IsInf(b, 1) {
		t.Fatalf("log negative: %g %g", v, b)
	}
	if _, b := e.Bound([]float64{5}, []float64{0}); b != 0 {
		t.Fatal("log exact should have zero bound")
	}
}

func TestExtCompositions(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// log(1 + exp(x)) — softplus, stacked extensions.
	softplus := Log{X: Sum{Weights: []float64{1, 1}, Terms: []Expr{Const{1}, Exp{X: Var{0}}}}}
	for trial := 0; trial < 40; trial++ {
		x := rng.NormFloat64() * 2
		eb := rng.Float64() * 0.3
		checkSound(t, "softplus", softplus, []float64{x}, []float64{eb}, rng)
	}
	// abs inside sqrt: sqrt(abs(x)) is always well-defined at the value level.
	sa := Sqrt{X: Abs{X: Var{0}}}
	for trial := 0; trial < 40; trial++ {
		x := rng.NormFloat64() * 4
		if math.Abs(x) < 0.5 {
			continue
		}
		eb := rng.Float64() * 0.2
		checkSound(t, "sqrt-abs", sa, []float64{x}, []float64{eb}, rng)
	}
}

func TestParseExtensions(t *testing.T) {
	fields := []string{"x"}
	cases := []struct {
		src  string
		val  float64
		want float64
	}{
		{"abs(x)", -4, 4},
		{"exp(x)", 1, math.E},
		{"log(x)", math.E, 1},
		{"log(exp(x))", 3.5, 3.5},
		{"abs(x) + exp(0)", -2, 3},
	}
	for _, c := range cases {
		e, err := Parse(c.src, fields)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := e.Eval([]float64{c.val}); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q(%g) = %g, want %g", c.src, c.val, got, c.want)
		}
	}
	// Vars traverses the new nodes.
	e := MustParse("log(exp(x) + abs(x))", fields)
	if vs := Vars(e); len(vs) != 1 || vs[0] != 0 {
		t.Fatalf("vars = %v", vs)
	}
	if s := e.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
}

func TestParseExtErrors(t *testing.T) {
	for _, src := range []string{"abs x", "exp(", "log()"} {
		if _, err := Parse(src, []string{"x"}); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}
