package qoi

import "math"

// library.go prebuilds the QoIs the paper evaluates: the six GE CFD
// quantities of Equations (1)–(6) and the S3D molar-concentration products.

// Physical constants of the GE case study (§III-A).
const (
	GasConstantR = 287.1    // specific gas constant R
	Gamma        = 1.4      // heat capacity ratio γ
	MachExponent = 3.5      // mi in Equation (5)
	MuRef        = 1.716e-5 // μr, reference viscosity
	TRef         = 273.15   // Tr, reference temperature
	Sutherland   = 110.4    // S, Sutherland constant
)

// GE field indices (the order datagen.GE produces them).
const (
	GEVx = iota
	GEVy
	GEVz
	GEP
	GED
	GENumFields
)

// QoI names a derivable quantity of interest.
type QoI struct {
	Name string
	Expr Expr
}

// TotalVelocity builds Equation (1), √(Vx²+Vy²+Vz²), over the given three
// variable indices. Used for GE, NYX, and Hurricane.
func TotalVelocity(vx, vy, vz int) QoI {
	return QoI{
		Name: "VTOT",
		Expr: Sqrt{X: Add(
			Pow{N: 2, X: Var{vx}},
			Pow{N: 2, X: Var{vy}},
			Pow{N: 2, X: Var{vz}},
		)},
	}
}

// Temperature builds Equation (2), T = P/(D·R).
func Temperature() QoI {
	return QoI{
		Name: "T",
		Expr: Div{Num: Var{GEP}, Den: Scale(GasConstantR, Var{GED})},
	}
}

// SoundSpeed builds Equation (3), C = √(γ·R·T).
func SoundSpeed() QoI {
	return QoI{
		Name: "C",
		Expr: Sqrt{X: Scale(Gamma*GasConstantR, Temperature().Expr)},
	}
}

// MachNumber builds Equation (4), Mach = Vtotal/C.
func MachNumber() QoI {
	return QoI{
		Name: "Mach",
		Expr: Div{Num: TotalVelocity(GEVx, GEVy, GEVz).Expr, Den: SoundSpeed().Expr},
	}
}

// TotalPressure builds Equation (5), PT = P·(1 + γ/2·Mach²)^3.5. The 3.5
// power decomposes into the derivable basis as √((1 + γ/2·Mach²)⁷) — the
// square-root-of-polynomial composition the paper walks through in §III-A.
func TotalPressure() QoI {
	base := Poly{Coeffs: []float64{1, Gamma / 2}, X: Pow{N: 2, X: MachNumber().Expr}}
	return QoI{
		Name: "PT",
		Expr: Mul{A: Var{GEP}, B: Sqrt{X: Pow{N: 7, X: base}}},
	}
}

// Viscosity builds Equation (6), μ = μr·(T/Tr)^1.5·(Tr+S)/(T+S). The 1.5
// power decomposes as √(T³)/Tr^1.5, and 1/(T+S) is the radical basis
// function of Theorem 3.
func Viscosity() QoI {
	coef := MuRef * (TRef + Sutherland) / (TRef * math.Sqrt(TRef))
	t := Temperature().Expr
	return QoI{
		Name: "mu",
		Expr: Scale(coef, Mul{
			A: Sqrt{X: Pow{N: 3, X: t}},
			B: Radical{C: Sutherland, X: t},
		}),
	}
}

// GEQoIs returns the paper's six GE quantities, Equations (1)–(6), in order.
func GEQoIs() []QoI {
	return []QoI{
		TotalVelocity(GEVx, GEVy, GEVz),
		Temperature(),
		SoundSpeed(),
		MachNumber(),
		TotalPressure(),
		Viscosity(),
	}
}

// S3D species indices (the subset named in §VI-A).
const (
	S3DH2 = 0 // H2
	S3DO2 = 1 // O2
	S3DH  = 3 // H
	S3DO  = 4 // O
	S3DOH = 5 // OH
)

// S3DProducts returns the four molar-concentration multiplications the
// paper evaluates (two reactions: H + O2 ⇌ O + OH and H2 + O ⇌ H + OH).
func S3DProducts() []QoI {
	mk := func(name string, a, b int) QoI {
		return QoI{Name: name, Expr: Mul{A: Var{a}, B: Var{b}}}
	}
	return []QoI{
		mk("x1*x3", S3DO2, S3DH),
		mk("x4*x5", S3DO, S3DOH),
		mk("x0*x4", S3DH2, S3DO),
		mk("x3*x5", S3DH, S3DOH),
	}
}
