package qoi

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds an Expr from a textual formula over named fields, e.g.
//
//	Parse("sqrt(Vx^2+Vy^2+Vz^2)", []string{"Vx", "Vy", "Vz"})
//
// Grammar (usual precedence, left associative):
//
//	expr   := term (('+'|'-') term)*
//	term   := factor (('*'|'/') factor)*
//	factor := unary ('^' number)?
//	unary  := '-' unary | primary
//	primary:= number | field | 'sqrt' '(' expr ')' | '(' expr ')'
//
// Exponents must be non-negative integers or half-integers; a half-integer
// power x^(k+0.5) is lowered to sqrt(x^(2k+1)), the decomposition the paper
// uses for Equation (5)'s 3.5 exponent.
func Parse(src string, fields []string) (Expr, error) {
	p := &parser{src: src, fields: fields}
	p.next()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("qoi: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

// MustParse is Parse that panics; for tests and package-level QoI tables.
func MustParse(src string, fields []string) Expr {
	e, err := Parse(src, fields)
	if err != nil {
		panic(err)
	}
	return e
}

// ErrParse reports a formula syntax error.
var ErrParse = errors.New("qoi: parse error")

// unaryFuncs maps formula function names to node constructors. sqrt is the
// Table II basis; abs/exp/log are the derivable extensions of ext.go.
var unaryFuncs = map[string]func(Expr) Expr{
	"sqrt": func(x Expr) Expr { return Sqrt{X: x} },
	"abs":  func(x Expr) Expr { return Abs{X: x} },
	"exp":  func(x Expr) Expr { return Exp{X: x} },
	"log":  func(x Expr) Expr { return Log{X: x} },
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokIdent
	tokOp // one of + - * / ^ ( )
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

type parser struct {
	src    string
	pos    int
	tok    token
	fields []string
}

func (p *parser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	switch {
	case strings.ContainsRune("+-*/^()", rune(c)):
		p.pos++
		p.tok = token{kind: tokOp, text: string(c), pos: start}
	case c >= '0' && c <= '9' || c == '.':
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				p.pos++
				continue
			}
			// exponent sign
			if (c == '+' || c == '-') && p.pos > start &&
				(p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') {
				p.pos++
				continue
			}
			break
		}
		text := p.src[start:p.pos]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			// Malformed number: surface as an operator-class token so the
			// parser reports it rather than silently treating it as EOF.
			p.tok = token{kind: tokOp, text: text, pos: start}
			return
		}
		p.tok = token{kind: tokNumber, text: text, num: v, pos: start}
	case unicode.IsLetter(rune(c)) || c == '_':
		for p.pos < len(p.src) {
			r := rune(p.src[p.pos])
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				p.pos++
				continue
			}
			break
		}
		p.tok = token{kind: tokIdent, text: p.src[start:p.pos], pos: start}
	default:
		// Unknown character: an operator-class token the grammar rejects.
		p.pos++
		p.tok = token{kind: tokOp, text: string(c), pos: start}
	}
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	weights := []float64{1}
	terms := []Expr{left}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		p.next()
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		w := 1.0
		if op == "-" {
			w = -1
		}
		weights = append(weights, w)
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return left, nil
	}
	return Sum{Weights: weights, Terms: terms}, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if op == "*" {
			left = simplifyMul(left, right)
		} else {
			left = Div{Num: left, Den: right}
		}
	}
	return left, nil
}

// simplifyMul folds constant factors into Scale nodes so the tighter
// Theorem 8 bound applies instead of the generic product bound.
func simplifyMul(a, b Expr) Expr {
	if c, ok := a.(Const); ok {
		if c2, ok2 := b.(Const); ok2 {
			return Const{C: c.C * c2.C}
		}
		return Scale(c.C, b)
	}
	if c, ok := b.(Const); ok {
		return Scale(c.C, a)
	}
	return Mul{A: a, B: b}
}

func (p *parser) parseFactor() (Expr, error) {
	base, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "^" {
		p.next()
		if p.tok.kind != tokNumber {
			return nil, fmt.Errorf("%w: exponent must be a number at offset %d", ErrParse, p.tok.pos)
		}
		exp := p.tok.num
		p.next()
		return lowerPower(base, exp)
	}
	return base, nil
}

// lowerPower converts x^e into the derivable basis: integer powers map to
// Pow, half-integer powers to sqrt(x^(2e)).
func lowerPower(base Expr, exp float64) (Expr, error) {
	if exp < 0 {
		return nil, fmt.Errorf("%w: negative exponent %g (write 1/x^n instead)", ErrParse, exp)
	}
	if exp == 0 {
		return Const{C: 1}, nil
	}
	if exp == math.Trunc(exp) {
		return Pow{N: int(exp), X: base}, nil
	}
	if d := exp * 2; d == math.Trunc(d) {
		return Sqrt{X: Pow{N: int(d), X: base}}, nil
	}
	return nil, fmt.Errorf("%w: exponent %g is not an integer or half-integer", ErrParse, exp)
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if c, ok := e.(Const); ok {
			return Const{C: -c.C}, nil
		}
		return Scale(-1, e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tokNumber:
		v := p.tok.num
		p.next()
		return Const{C: v}, nil
	case p.tok.kind == tokIdent:
		name := p.tok.text
		p.next()
		if ctor, ok := unaryFuncs[strings.ToLower(name)]; ok {
			if p.tok.kind != tokOp || p.tok.text != "(" {
				return nil, fmt.Errorf("%w: %s requires parentheses at offset %d", ErrParse, name, p.tok.pos)
			}
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.tok.kind != tokOp || p.tok.text != ")" {
				return nil, fmt.Errorf("%w: missing ) at offset %d", ErrParse, p.tok.pos)
			}
			p.next()
			return ctor(inner), nil
		}
		for i, f := range p.fields {
			if f == name {
				return Var{Index: i}, nil
			}
		}
		return nil, fmt.Errorf("%w: unknown field %q (have %v)", ErrParse, name, p.fields)
	case p.tok.kind == tokOp && p.tok.text == "(":
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || p.tok.text != ")" {
			return nil, fmt.Errorf("%w: missing ) at offset %d", ErrParse, p.tok.pos)
		}
		p.next()
		return inner, nil
	default:
		return nil, fmt.Errorf("%w: unexpected %q at offset %d", ErrParse, p.tok.text, p.tok.pos)
	}
}
