package qoi

import (
	"fmt"
	"math"
)

// ext.go extends the derivable-QoI basis beyond Table II, following the
// paper's §IV-D remark that the theory extends to any operator with a
// derivable error bound. Each new operator ships with the same contract as
// the originals: Bound returns a guaranteed supremum of |f(x')−f(x)| over
// |x'−x| ≤ ε, computed from the reconstruction alone, and a zero incoming
// bound yields a zero outgoing bound.

// Abs is |x|.
//
// Theorem (absolute value): Δ(|x|) ≤ ε, by the reverse triangle inequality
// ||x+ξ| − |x|| ≤ |ξ| ≤ ε. The bound is attained whenever |x| ≥ ε, so it
// is tight.
type Abs struct{ X Expr }

// Eval implements Expr.
func (a Abs) Eval(vals []float64) float64 { return math.Abs(a.X.Eval(vals)) }

// Bound implements Expr.
func (a Abs) Bound(vals, ebs []float64) (float64, float64) {
	v, d := a.X.Bound(vals, ebs)
	return math.Abs(v), d
}

// MaxVar implements Expr.
func (a Abs) MaxVar() int { return a.X.MaxVar() }

// String implements Expr.
func (a Abs) String() string { return fmt.Sprintf("abs(%s)", a.X) }

// Exp is eˣ.
//
// Theorem (exponential): Δ(eˣ) = eˣ·(e^ε − 1), exactly: the supremum of
// |e^{x+ξ} − eˣ| over |ξ| ≤ ε is attained at ξ = +ε and equals
// eˣ(e^ε − 1) ≥ eˣ(1 − e^{−ε}).
type Exp struct{ X Expr }

// Eval implements Expr.
func (e Exp) Eval(vals []float64) float64 { return math.Exp(e.X.Eval(vals)) }

// Bound implements Expr.
func (e Exp) Bound(vals, ebs []float64) (float64, float64) {
	v, d := e.X.Bound(vals, ebs)
	val := math.Exp(v)
	if d == 0 {
		return val, 0
	}
	return val, val * math.Expm1(d)
}

// MaxVar implements Expr.
func (e Exp) MaxVar() int { return e.X.MaxVar() }

// String implements Expr.
func (e Exp) String() string { return fmt.Sprintf("exp(%s)", e.X) }

// Log is the natural logarithm ln(x), defined for x > 0.
//
// Theorem (logarithm): for ε < x, Δ(ln x) = ln(x/(x−ε)) = −ln(1 − ε/x),
// exactly: the supremum over |ξ| ≤ ε is attained going downward at
// ξ = −ε since ln is concave. The precondition ε < x mirrors Theorem 3's
// radical condition; outside it the bound is +Inf and the retrieval loop
// tightens.
type Log struct{ X Expr }

// Eval implements Expr.
func (l Log) Eval(vals []float64) float64 { return math.Log(l.X.Eval(vals)) }

// Bound implements Expr.
func (l Log) Bound(vals, ebs []float64) (float64, float64) {
	v, d := l.X.Bound(vals, ebs)
	if v <= 0 {
		return math.NaN(), math.Inf(1)
	}
	val := math.Log(v)
	if d == 0 {
		return val, 0
	}
	if !(d < v) {
		return val, math.Inf(1)
	}
	return val, -math.Log1p(-d / v)
}

// MaxVar implements Expr.
func (l Log) MaxVar() int { return l.X.MaxVar() }

// String implements Expr.
func (l Log) String() string { return fmt.Sprintf("log(%s)", l.X) }
