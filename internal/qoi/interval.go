package qoi

import (
	"math"
)

// interval.go provides an alternative, interval-arithmetic QoI error
// estimator used as an ablation baseline against the paper's theorem-based
// bounds (§IV). Instead of propagating scalar error suprema through
// per-operator theorems, it propagates the full value interval
// [x−ε, x+ε] through outward interval arithmetic and reports the maximal
// deviation of the interval from the center value. Both estimators are
// sound; their relative tightness differs per operator (intervals are
// exact for monotone univariate maps but can be looser through additive
// cancellation, while the theorems bake in the structure of each basis
// function). BenchmarkAblationEstimator compares them.

// Interval is a closed interval [Lo, Hi].
type Interval struct{ Lo, Hi float64 }

// width returns Hi − Lo.
func (iv Interval) width() float64 { return iv.Hi - iv.Lo }

// valid reports a well-formed finite-ordered interval.
func (iv Interval) valid() bool {
	return !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi) && iv.Lo <= iv.Hi
}

func point(v float64) Interval { return Interval{v, v} }

func (iv Interval) contains0() bool { return iv.Lo <= 0 && iv.Hi >= 0 }

func addIv(a, b Interval) Interval { return Interval{a.Lo + b.Lo, a.Hi + b.Hi} }

func scaleIv(w float64, a Interval) Interval {
	if w >= 0 {
		return Interval{w * a.Lo, w * a.Hi}
	}
	return Interval{w * a.Hi, w * a.Lo}
}

func mulIv(a, b Interval) Interval {
	p1, p2, p3, p4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
	return Interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

func divIv(a, b Interval) (Interval, bool) {
	if b.contains0() {
		return Interval{}, false
	}
	inv := Interval{1 / b.Hi, 1 / b.Lo}
	return mulIv(a, inv), true
}

func powIv(a Interval, n int) Interval {
	if n == 0 {
		return point(1)
	}
	out := a
	for i := 1; i < n; i++ {
		out = mulIv(out, a)
	}
	// Even powers of sign-crossing intervals tighten to [0, max]: the naive
	// product fold gives a sound but loose lower bound; fix it exactly.
	if n%2 == 0 && a.contains0() {
		out.Lo = 0
	}
	return out
}

func sqrtIv(a Interval) (Interval, bool) {
	if a.Hi < 0 {
		return Interval{}, false
	}
	lo := a.Lo
	if lo < 0 {
		lo = 0
	}
	return Interval{math.Sqrt(lo), math.Sqrt(a.Hi)}, true
}

// EvalInterval computes a guaranteed enclosure of e over the box
// |x'−x| ≤ ε. ok=false means the enclosure is unbounded (a division or
// radical straddled a pole, or a log/sqrt domain violation) — the interval
// analogue of the theorems' +Inf.
func EvalInterval(e Expr, vals, ebs []float64) (Interval, bool) {
	switch n := e.(type) {
	case Var:
		v, d := vals[n.Index], ebs[n.Index]
		if math.IsInf(d, 1) {
			return Interval{}, false
		}
		return Interval{v - d, v + d}, true
	case Const:
		return point(n.C), true
	case Sum:
		acc := point(0)
		for i, t := range n.Terms {
			iv, ok := EvalInterval(t, vals, ebs)
			if !ok {
				return Interval{}, false
			}
			acc = addIv(acc, scaleIv(n.Weights[i], iv))
		}
		return acc, true
	case Mul:
		a, ok := EvalInterval(n.A, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		b, ok := EvalInterval(n.B, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		return mulIv(a, b), true
	case Div:
		a, ok := EvalInterval(n.Num, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		b, ok := EvalInterval(n.Den, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		return divIv(a, b)
	case Pow:
		a, ok := EvalInterval(n.X, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		return powIv(a, n.N), true
	case Poly:
		a, ok := EvalInterval(n.X, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		acc := point(0)
		for i, c := range n.Coeffs {
			if c == 0 {
				continue
			}
			acc = addIv(acc, scaleIv(c, powIv(a, i)))
		}
		return acc, true
	case Sqrt:
		a, ok := EvalInterval(n.X, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		return sqrtIv(a)
	case Radical:
		a, ok := EvalInterval(n.X, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		return divIv(point(1), addIv(a, point(n.C)))
	case Abs:
		a, ok := EvalInterval(n.X, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		if a.contains0() {
			return Interval{0, math.Max(-a.Lo, a.Hi)}, true
		}
		if a.Hi < 0 {
			return Interval{-a.Hi, -a.Lo}, true
		}
		return a, true
	case Exp:
		a, ok := EvalInterval(n.X, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		return Interval{math.Exp(a.Lo), math.Exp(a.Hi)}, true
	case Log:
		a, ok := EvalInterval(n.X, vals, ebs)
		if !ok {
			return Interval{}, false
		}
		if a.Lo <= 0 {
			return Interval{}, false
		}
		return Interval{math.Log(a.Lo), math.Log(a.Hi)}, true
	default:
		return Interval{}, false
	}
}

// IntervalBound is the interval-arithmetic counterpart of Expr.Bound: the
// QoI value at the reconstruction plus a guaranteed error supremum derived
// from the enclosure width. A failed enclosure reports +Inf, mirroring the
// theorems' precondition behaviour.
func IntervalBound(e Expr, vals, ebs []float64) (value, bound float64) {
	value = e.Eval(vals)
	iv, ok := EvalInterval(e, vals, ebs)
	if !ok || !iv.valid() {
		return value, math.Inf(1)
	}
	if math.IsNaN(value) {
		return value, math.Inf(1)
	}
	bound = math.Max(iv.Hi-value, value-iv.Lo)
	if bound < 0 {
		// The center must lie inside the enclosure up to round-off.
		bound = 0
	}
	return value, bound
}

// BoundFunc is an estimator signature shared by the theorem-based
// Expr.Bound and IntervalBound, letting the retrieval framework swap
// estimators for ablations.
type BoundFunc func(e Expr, vals, ebs []float64) (value, bound float64)

// TheoremBound adapts Expr.Bound to BoundFunc (the paper's estimator).
func TheoremBound(e Expr, vals, ebs []float64) (float64, float64) {
	return e.Bound(vals, ebs)
}
