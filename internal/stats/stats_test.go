package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMaxAbsError(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1.5, 2, 2}
	if got := MaxAbsError(a, b); got != 1 {
		t.Fatalf("got %v, want 1", got)
	}
	if got := MaxAbsError(nil, nil); got != 0 {
		t.Fatalf("empty: got %v", got)
	}
}

func TestMaxAbsErrorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxAbsError([]float64{1}, []float64{1, 2})
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-3, 2, 1}); got != 3 {
		t.Fatalf("got %v", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("empty: got %v", got)
	}
}

func TestRangeMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Range(xs); got != 6 {
		t.Fatalf("range = %v", got)
	}
	lo, hi := MinMax(xs)
	if lo != -1 || hi != 5 {
		t.Fatalf("minmax = %v,%v", lo, hi)
	}
	if Range(nil) != 0 || Range([]float64{7}) != 0 {
		t.Fatal("degenerate ranges should be 0")
	}
}

func TestRelMaxError(t *testing.T) {
	ref := []float64{0, 10}
	ap := []float64{1, 10}
	if got := RelMaxError(ref, ap); got != 0.1 {
		t.Fatalf("got %v", got)
	}
	if got := RelMaxError([]float64{5, 5}, []float64{5, 5}); got != 0 {
		t.Fatalf("constant exact: got %v", got)
	}
	if got := RelMaxError([]float64{5, 5}, []float64{6, 5}); !math.IsInf(got, 1) {
		t.Fatalf("constant inexact: got %v", got)
	}
}

func TestRMSEAndPSNR(t *testing.T) {
	ref := []float64{0, 0, 0, 0}
	ap := []float64{1, 1, 1, 1}
	if got := RMSE(ref, ap); got != 1 {
		t.Fatalf("rmse = %v", got)
	}
	if got := PSNR(ref, ref); !math.IsInf(got, 1) {
		t.Fatalf("exact psnr = %v", got)
	}
	ref2 := []float64{0, 10}
	ap2 := []float64{1, 10}
	want := 20 * math.Log10(10/math.Sqrt(0.5))
	if got := PSNR(ref2, ap2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("psnr = %v, want %v", got, want)
	}
}

func TestBitrate(t *testing.T) {
	if got := Bitrate(100, 100); got != 8 {
		t.Fatalf("got %v", got)
	}
	if got := Bitrate(100, 0); got != 0 {
		t.Fatalf("zero elements: got %v", got)
	}
}

func TestCompressionRatio(t *testing.T) {
	if got := CompressionRatio(80, 100); got != 10 {
		t.Fatalf("got %v", got)
	}
	if got := CompressionRatio(0, 100); !math.IsInf(got, 1) {
		t.Fatalf("got %v", got)
	}
}

func TestRDSeries(t *testing.T) {
	var s RDSeries
	s.Name = "test"
	s.Add(10, 1e-2)
	s.Add(12, 1e-4)
	s.Add(15, 1e-6)
	if br, ok := s.BitrateAt(1e-4); !ok || br != 12 {
		t.Fatalf("BitrateAt(1e-4) = %v,%v", br, ok)
	}
	if _, ok := s.BitrateAt(1e-9); ok {
		t.Fatal("unreachable tolerance should report !ok")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", math.Inf(1))
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") || !strings.Contains(out, "inf") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
}

func TestFormatG(t *testing.T) {
	if FormatG(math.NaN()) != "nan" || FormatG(math.Inf(-1)) != "-inf" {
		t.Fatal("special values")
	}
	if FormatG(0.125) != "0.125" {
		t.Fatalf("got %q", FormatG(0.125))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestPropertyRelErrorBounds(t *testing.T) {
	// Relative error of data vs itself is always 0; error vs perturbed copy is ≥ 0.
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if RelMaxError(vals, vals) != 0 {
			return false
		}
		pert := append([]float64(nil), vals...)
		pert[0] += 1
		return RelMaxError(vals, pert) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
