// Package stats implements the quality metrics used throughout the paper's
// evaluation: L∞ (maximum absolute) error, value ranges, relative errors,
// bitrate, and rate–distortion series, plus a small fixed-width table
// renderer for the experiment drivers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MaxAbsError returns max_i |a[i]-b[i]|. Slices must have equal length.
func MaxAbsError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// MaxAbs returns max_i |a[i]| (0 for empty input).
func MaxAbs(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Range returns max(a)-min(a); 0 for empty or constant input.
func Range(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	lo, hi := a[0], a[0]
	for _, v := range a[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// MinMax returns the minimum and maximum of a. It panics on empty input.
func MinMax(a []float64) (lo, hi float64) {
	if len(a) == 0 {
		panic("stats: MinMax on empty slice")
	}
	lo, hi = a[0], a[0]
	for _, v := range a[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// RelMaxError returns the L∞ error normalized by the value range of the
// reference data; this is the paper's distortion metric. A zero range yields
// 0 when the absolute error is 0 and +Inf otherwise.
func RelMaxError(ref, approx []float64) float64 {
	e := MaxAbsError(ref, approx)
	r := Range(ref)
	if r == 0 {
		if e == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return e / r
}

// RMSE returns the root-mean-square error between a and b.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// PSNR returns the peak signal-to-noise ratio in dB using the value range of
// ref as peak. Infinite for exact reconstruction.
func PSNR(ref, approx []float64) float64 {
	rmse := RMSE(ref, approx)
	if rmse == 0 {
		return math.Inf(1)
	}
	r := Range(ref)
	if r == 0 {
		return math.Inf(-1)
	}
	return 20*math.Log10(r) - 20*math.Log10(rmse)
}

// Bitrate converts a retrieved byte count into average bits per element.
func Bitrate(bytes int64, elements int) float64 {
	if elements <= 0 {
		return 0
	}
	return float64(bytes) * 8 / float64(elements)
}

// CompressionRatio converts a byte count to the ratio original/compressed
// assuming 64-bit original values.
func CompressionRatio(bytes int64, elements int) float64 {
	if bytes <= 0 {
		return math.Inf(1)
	}
	return float64(elements) * 8 / float64(bytes)
}

// RDPoint is one point on a rate–distortion curve.
type RDPoint struct {
	Bitrate float64 // bits per element retrieved so far
	Error   float64 // relative (range-normalized) error
}

// RDSeries is a named rate–distortion curve, ordered as produced.
type RDSeries struct {
	Name   string
	Points []RDPoint
}

// Add appends a point.
func (s *RDSeries) Add(bitrate, err float64) {
	s.Points = append(s.Points, RDPoint{Bitrate: bitrate, Error: err})
}

// BitrateAt returns the smallest bitrate among points whose error is ≤ tol,
// and ok=false when no point reaches tol.
func (s *RDSeries) BitrateAt(tol float64) (float64, bool) {
	best := math.Inf(1)
	ok := false
	for _, p := range s.Points {
		if p.Error <= tol && p.Bitrate < best {
			best = p.Bitrate
			ok = true
		}
	}
	return best, ok
}

// Table is a minimal fixed-width text table used by cmd/experiments to print
// the same rows the paper reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatG(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatG renders a float compactly (%.4g) with Inf/NaN spelled out.
func FormatG(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of a copy of xs using
// nearest-rank. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile on empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}
