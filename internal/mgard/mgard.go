// Package mgard implements an MGARD-style multilevel decomposition of
// uniform-grid data in 1, 2, or 3 (or more) dimensions, with two selectable
// decomposition bases:
//
//   - Hierarchical (HB): detail coefficients are interpolation residuals at
//     odd nodes; coarse nodes keep their nodal values. This is the paper's
//     PMGARD-HB revision (§V-B): no cross-level intervention, so the L∞
//     reconstruction error is bounded by a *sum* of per-level coefficient
//     bounds — tight and cheap.
//
//   - Orthogonal (OB): after computing details, an L2 projection correction
//     (a tridiagonal mass-matrix solve per grid line) is added to the coarse
//     nodes, following MGARD's original decomposition. The projection is
//     optimal in L2 but makes conservative L∞ estimates markedly looser —
//     exactly the over-retrieval effect the paper measures in Fig. 3.
//
// The transform is exactly invertible (reconstruction recomputes the same
// correction from the retrieved details and subtracts it), so correctness
// never depends on the projection; only rate and estimate tightness do.
//
// Coefficients are exposed as per-level groups (group 0 = coarsest nodal
// values, then detail levels coarse→fine) for bit-plane encoding, and
// ErrorBound converts per-group L∞ bounds into a guaranteed bound on the
// reconstructed data, using per-level amplification factors derived in the
// comments of levelFactor.
package mgard

import (
	"errors"
	"fmt"
	"math"

	"progqoi/internal/grid"
)

// Basis selects the decomposition variant.
type Basis int

const (
	// Hierarchical is interpolation-only (PMGARD-HB).
	Hierarchical Basis = iota
	// Orthogonal adds MGARD's L2-projection correction (PMGARD / OB).
	Orthogonal
)

// String implements fmt.Stringer.
func (b Basis) String() string {
	switch b {
	case Hierarchical:
		return "HB"
	case Orthogonal:
		return "OB"
	default:
		return fmt.Sprintf("Basis(%d)", int(b))
	}
}

// ErrBadInput reports invalid decomposition input.
var ErrBadInput = errors.New("mgard: invalid input")

// Decomposition holds the transformed coefficients of one field.
type Decomposition struct {
	Basis Basis
	Grid  *grid.Grid
	Steps int // number of level-halving steps applied (≥ 0)

	coeffs []float64 // transformed array, same layout as input
	// dimsAtLevel[l] = number of dimensions that actually transformed at
	// level l (a dim participates while 2^l < extent).
	dimsAtLevel []int
}

// Decompose transforms data (row-major on g) into multilevel coefficients.
// The input slice is not modified. Values must be finite.
func Decompose(data []float64, g *grid.Grid, basis Basis) (*Decomposition, error) {
	if err := g.Validate(data); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite value at index %d", ErrBadInput, i)
		}
	}
	steps := g.NumLevels() - 1
	d := &Decomposition{
		Basis:       basis,
		Grid:        g.Clone(),
		Steps:       steps,
		coeffs:      append([]float64(nil), data...),
		dimsAtLevel: make([]int, steps),
	}
	for l := 0; l < steps; l++ {
		s := grid.LevelStride(l)
		nd := 0
		for dim := 0; dim < g.NDims(); dim++ {
			if s < g.Dim(dim) { // at least one odd node exists along dim
				d.forwardDim(dim, s)
				nd++
			}
		}
		d.dimsAtLevel[l] = nd
	}
	return d, nil
}

// NumGroups returns the number of coefficient groups: 1 (coarsest nodal
// values) + Steps detail levels.
func (d *Decomposition) NumGroups() int { return d.Steps + 1 }

// GroupLevel maps a group index to its detail level: group 0 (coarsest) has
// no level (-1); group k > 0 holds the details introduced at level
// Steps - k (group 1 = coarsest details, last group = finest details).
func (d *Decomposition) GroupLevel(gIdx int) int {
	if gIdx == 0 {
		return -1
	}
	return d.Steps - gIdx
}

// groupIndices invokes fn for every flat offset in group gIdx, in a fixed
// deterministic (row-major) order.
func (d *Decomposition) groupIndices(gIdx int, fn func(off int)) {
	ndim := d.Grid.NDims()
	var coarse, fine int
	if gIdx == 0 {
		coarse = grid.LevelStride(d.Steps)
		fine = -1 // all nodes on the coarsest lattice
	} else {
		l := d.GroupLevel(gIdx)
		fine = grid.LevelStride(l)
		coarse = fine * 2
	}
	var walk func(dim, off int, anyOdd bool)
	walk = func(dim, off int, anyOdd bool) {
		if dim == ndim {
			if fine < 0 || anyOdd {
				fn(off)
			}
			return
		}
		ext := d.Grid.Dim(dim)
		stride := d.Grid.Stride(dim)
		if fine < 0 {
			// Coarsest lattice: coords ≡ 0 (mod coarse).
			for c := 0; c < ext; c += coarse {
				walk(dim+1, off+c*stride, false)
			}
			return
		}
		if fine >= ext {
			// Dim does not participate at this level: only coord 0 active.
			walk(dim+1, off, anyOdd)
			return
		}
		for c := 0; c < ext; c += fine {
			odd := (c/fine)%2 == 1
			walk(dim+1, off+c*stride, anyOdd || odd)
		}
	}
	walk(0, 0, false)
}

// GroupSize returns the number of coefficients in group gIdx.
func (d *Decomposition) GroupSize(gIdx int) int {
	n := 0
	d.groupIndices(gIdx, func(int) { n++ })
	return n
}

// Group copies the coefficients of group gIdx.
func (d *Decomposition) Group(gIdx int) []float64 {
	out := make([]float64, 0, 64)
	d.groupIndices(gIdx, func(off int) { out = append(out, d.coeffs[off]) })
	return out
}

// SetGroup overwrites the coefficients of group gIdx (used when assembling a
// reconstruction from approximately retrieved groups).
func (d *Decomposition) SetGroup(gIdx int, vals []float64) error {
	want := d.GroupSize(gIdx)
	if len(vals) != want {
		return fmt.Errorf("%w: group %d expects %d values, got %d", ErrBadInput, gIdx, want, len(vals))
	}
	i := 0
	d.groupIndices(gIdx, func(off int) { d.coeffs[off] = vals[i]; i++ })
	return nil
}

// Coefficients returns the raw transformed array (no copy); callers must not
// modify it except through SetGroup.
func (d *Decomposition) Coefficients() []float64 { return d.coeffs }

// Reconstruct runs the inverse transform and returns the nodal values. The
// decomposition's coefficient state is unchanged.
func (d *Decomposition) Reconstruct() []float64 {
	work := append([]float64(nil), d.coeffs...)
	inv := &Decomposition{Basis: d.Basis, Grid: d.Grid, Steps: d.Steps, coeffs: work}
	for l := d.Steps - 1; l >= 0; l-- {
		s := grid.LevelStride(l)
		for dim := d.Grid.NDims() - 1; dim >= 0; dim-- {
			if s < d.Grid.Dim(dim) {
				inv.inverseDim(dim, s)
			}
		}
	}
	return work
}

// ReconstructToLevel runs the inverse transform only down to level l
// (l = 0 is the full resolution, equivalent to Reconstruct) and returns the
// nodal values gathered on the level-l lattice together with the coarse
// grid shape. This is the "progression in resolution" PMGARD offers
// alongside progression in precision: under the hierarchical basis the
// coarse values are exactly the original nodal values at lattice nodes,
// and under the orthogonal basis they are the L2-projected coarse
// representation.
func (d *Decomposition) ReconstructToLevel(l int) ([]float64, *grid.Grid, error) {
	if l < 0 || l > d.Steps {
		return nil, nil, fmt.Errorf("%w: level %d outside [0,%d]", ErrBadInput, l, d.Steps)
	}
	work := append([]float64(nil), d.coeffs...)
	inv := &Decomposition{Basis: d.Basis, Grid: d.Grid, Steps: d.Steps, coeffs: work}
	for lev := d.Steps - 1; lev >= l; lev-- {
		s := grid.LevelStride(lev)
		for dim := d.Grid.NDims() - 1; dim >= 0; dim-- {
			if s < d.Grid.Dim(dim) {
				inv.inverseDim(dim, s)
			}
		}
	}
	stride := grid.LevelStride(l)
	coarseDims := make([]int, d.Grid.NDims())
	for i := range coarseDims {
		coarseDims[i] = (d.Grid.Dim(i) + stride - 1) / stride
	}
	cg, err := grid.New(coarseDims...)
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, 0, cg.Size())
	var walk func(dim, off int)
	walk = func(dim, off int) {
		if dim == d.Grid.NDims() {
			out = append(out, work[off])
			return
		}
		for c := 0; c < d.Grid.Dim(dim); c += stride {
			walk(dim+1, off+c*d.Grid.Stride(dim))
		}
	}
	walk(0, 0)
	return out, cg, nil
}

// Shell returns an empty decomposition with the same shape metadata, ready
// for SetGroup + Reconstruct. Coefficients start at zero.
func (d *Decomposition) Shell() *Decomposition {
	return &Decomposition{
		Basis:       d.Basis,
		Grid:        d.Grid.Clone(),
		Steps:       d.Steps,
		coeffs:      make([]float64, d.Grid.Size()),
		dimsAtLevel: append([]int(nil), d.dimsAtLevel...),
	}
}

// NewShell builds an empty decomposition for the given shape/basis, used by
// readers that reconstruct without access to the original.
func NewShell(g *grid.Grid, basis Basis) *Decomposition {
	steps := g.NumLevels() - 1
	d := &Decomposition{
		Basis:       basis,
		Grid:        g.Clone(),
		Steps:       steps,
		coeffs:      make([]float64, g.Size()),
		dimsAtLevel: make([]int, steps),
	}
	for l := 0; l < steps; l++ {
		s := grid.LevelStride(l)
		nd := 0
		for dim := 0; dim < g.NDims(); dim++ {
			if s < g.Dim(dim) {
				nd++
			}
		}
		d.dimsAtLevel[l] = nd
	}
	return d
}

// levelFactor returns the guaranteed L∞ amplification of a detail-group
// coefficient error at a level transforming ndims dimensions.
//
// Derivation (per 1-D inverse pass, coefficient error a, incoming value
// error b):
//
//	HB: even nodes keep error b; odd nodes get a + interp ≤ a + b.
//	    Composing D passes where coefficients may themselves be outputs of
//	    earlier passes yields error ≤ b + (2^D − 1)·a.
//	OB: the correction w solves M w = f with Varah bound ‖M⁻¹‖∞ ≤ 3 (the
//	    boundary diagonal is lumped to 1/2 to keep dominance 1/3) and load
//	    |f| ≤ a/2, so |w err| ≤ 1.5a; even nodes: b + 1.5a, odd nodes:
//	    a + (b + 1.5a) = b + 2.5a. Composing D passes: b + (3.5^D − 1)·a.
func levelFactor(basis Basis, ndims int) float64 {
	if ndims <= 0 {
		return 0
	}
	switch basis {
	case Orthogonal:
		return math.Pow(3.5, float64(ndims)) - 1
	default:
		return math.Pow(2, float64(ndims)) - 1
	}
}

// LevelFactors returns the per-group error amplification factors in group
// order (coarsest first, factor 1). ErrorBound is the dot product of these
// factors with per-group coefficient bounds.
func (d *Decomposition) LevelFactors() []float64 {
	out := make([]float64, d.NumGroups())
	out[0] = 1
	for g := 1; g < d.NumGroups(); g++ {
		out[g] = levelFactor(d.Basis, d.dimsAtLevel[d.GroupLevel(g)])
	}
	return out
}

// ErrorBound converts per-group coefficient L∞ bounds (len = NumGroups, in
// group order: coarsest first) into a guaranteed L∞ bound on Reconstruct().
func (d *Decomposition) ErrorBound(groupBounds []float64) (float64, error) {
	if len(groupBounds) != d.NumGroups() {
		return 0, fmt.Errorf("%w: want %d group bounds, got %d", ErrBadInput, d.NumGroups(), len(groupBounds))
	}
	// Coarsest nodal values propagate with factor 1 (they are carried, or
	// for OB additionally corrected by w recomputed from details — the
	// detail contribution is already charged to the detail groups).
	total := groupBounds[0]
	for g := 1; g < d.NumGroups(); g++ {
		l := d.GroupLevel(g)
		total += levelFactor(d.Basis, d.dimsAtLevel[l]) * groupBounds[g]
	}
	return total, nil
}

// forwardDim applies one decomposition step along dim with node stride s.
func (d *Decomposition) forwardDim(dim, s int) {
	d.eachLine(dim, s, func(line []int) {
		d.forwardLine(line)
	})
}

// inverseDim undoes forwardDim.
func (d *Decomposition) inverseDim(dim, s int) {
	d.eachLine(dim, s, func(line []int) {
		d.inverseLine(line)
	})
}

// eachLine invokes fn with the flat offsets of every active line along dim
// at level stride s. Active line: all other coords are multiples of s (and
// 0 when their extent ≤ s); along dim the offsets step by s.
func (d *Decomposition) eachLine(dim, s int, fn func(line []int)) {
	ndim := d.Grid.NDims()
	ext := d.Grid.Dim(dim)
	stride := d.Grid.Stride(dim)
	nLine := (ext + s - 1) / s
	line := make([]int, nLine)

	var walk func(k, base int)
	walk = func(k, base int) {
		if k == ndim {
			for i := 0; i < nLine; i++ {
				line[i] = base + i*s*stride
			}
			fn(line)
			return
		}
		if k == dim {
			walk(k+1, base)
			return
		}
		e := d.Grid.Dim(k)
		st := d.Grid.Stride(k)
		if s >= e {
			walk(k+1, base) // only coord 0 active
			return
		}
		for c := 0; c < e; c += s {
			walk(k+1, base+c*st)
		}
	}
	walk(0, 0)
}

// forwardLine transforms one line: entries line[0..m-1] are flat offsets of
// active nodes; odd positions become detail coefficients, and under OB the
// even positions receive the projection correction.
func (d *Decomposition) forwardLine(line []int) {
	m := len(line)
	if m < 2 {
		return
	}
	c := d.coeffs
	// Details at odd positions.
	for i := 1; i < m; i += 2 {
		var pred float64
		if i+1 < m {
			pred = 0.5 * (c[line[i-1]] + c[line[i+1]])
		} else {
			pred = c[line[i-1]]
		}
		c[line[i]] -= pred
	}
	if d.Basis == Orthogonal {
		w := d.correction(line)
		for i, j := 0, 0; i < m; i, j = i+2, j+1 {
			c[line[i]] += w[j]
		}
	}
}

// inverseLine undoes forwardLine exactly.
func (d *Decomposition) inverseLine(line []int) {
	m := len(line)
	if m < 2 {
		return
	}
	c := d.coeffs
	if d.Basis == Orthogonal {
		w := d.correction(line)
		for i, j := 0, 0; i < m; i, j = i+2, j+1 {
			c[line[i]] -= w[j]
		}
	}
	for i := 1; i < m; i += 2 {
		var pred float64
		if i+1 < m {
			pred = 0.5 * (c[line[i-1]] + c[line[i+1]])
		} else {
			pred = c[line[i-1]]
		}
		c[line[i]] += pred
	}
}

// correction computes the L2-projection correction w for the coarse nodes of
// a line from its current detail coefficients, solving the tridiagonal
// system M w = f (Thomas algorithm). It depends only on detail entries, so
// forward and inverse recompute identical values.
func (d *Decomposition) correction(line []int) []float64 {
	m := len(line)
	nc := (m + 1) / 2 // coarse node count
	c := d.coeffs
	f := make([]float64, nc)
	for j := 0; j < nc; j++ {
		var load float64
		li := 2 * j
		if li-1 >= 0 {
			load += c[line[li-1]]
		}
		if li+1 < m {
			load += c[line[li+1]]
		}
		f[j] = load / 4
	}
	// Tridiagonal M: interior diag 2/3, boundary diag 1/2 (lumped for the
	// Varah bound, see levelFactor), off-diagonals 1/6.
	diag := make([]float64, nc)
	for j := range diag {
		if j == 0 || j == nc-1 {
			diag[j] = 0.5
		} else {
			diag[j] = 2.0 / 3.0
		}
	}
	if nc == 1 {
		f[0] /= diag[0]
		return f
	}
	const off = 1.0 / 6.0
	// Thomas forward sweep.
	cp := make([]float64, nc)
	cp[0] = off / diag[0]
	f[0] /= diag[0]
	for j := 1; j < nc; j++ {
		denom := diag[j] - off*cp[j-1]
		if j < nc-1 {
			cp[j] = off / denom
		}
		f[j] = (f[j] - off*f[j-1]) / denom
	}
	for j := nc - 2; j >= 0; j-- {
		f[j] -= cp[j] * f[j+1]
	}
	return f
}
