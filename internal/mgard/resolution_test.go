package mgard

import (
	"math/rand"
	"testing"

	"progqoi/internal/grid"
)

func TestReconstructToLevelZeroEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := grid.MustNew(17, 9)
	data := randField(rng, g.Size())
	for _, basis := range []Basis{Hierarchical, Orthogonal} {
		d, err := Decompose(data, g, basis)
		if err != nil {
			t.Fatal(err)
		}
		full := d.Reconstruct()
		lvl0, cg, err := d.ReconstructToLevel(0)
		if err != nil {
			t.Fatal(err)
		}
		if !cg.Equal(g) {
			t.Fatalf("%v: level-0 grid %v != %v", basis, cg.Dims(), g.Dims())
		}
		if e := maxAbsDiff(full, lvl0); e != 0 {
			t.Fatalf("%v: level-0 differs from full by %g", basis, e)
		}
	}
}

func TestHBCoarseLevelsSubsampleOriginal(t *testing.T) {
	// Under the hierarchical basis, the level-l reconstruction must equal
	// the original values at the level-l lattice nodes exactly (up to
	// round-off): finer detail levels never touch coarse nodes.
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][]int{{33}, {17, 12}, {9, 8, 7}} {
		g := grid.MustNew(dims...)
		data := randField(rng, g.Size())
		d, err := Decompose(data, g, Hierarchical)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l <= d.Steps; l++ {
			coarse, cg, err := d.ReconstructToLevel(l)
			if err != nil {
				t.Fatal(err)
			}
			stride := grid.LevelStride(l)
			wantDims := make([]int, len(dims))
			for i, e := range dims {
				wantDims[i] = (e + stride - 1) / stride
			}
			if !cg.Equal(grid.MustNew(wantDims...)) {
				t.Fatalf("%v level %d: coarse dims %v, want %v", dims, l, cg.Dims(), wantDims)
			}
			// Compare against direct subsampling of the original.
			idx := 0
			var walk func(dim, off int)
			var fail bool
			walk = func(dim, off int) {
				if fail {
					return
				}
				if dim == len(dims) {
					if diff := coarse[idx] - data[off]; diff > 1e-9 || diff < -1e-9 {
						t.Errorf("%v level %d: node %d differs by %g", dims, l, idx, diff)
						fail = true
					}
					idx++
					return
				}
				for c := 0; c < g.Dim(dim); c += stride {
					walk(dim+1, off+c*g.Stride(dim))
				}
			}
			walk(0, 0)
		}
	}
}

func TestReconstructToLevelValidates(t *testing.T) {
	g := grid.MustNew(16)
	d, _ := Decompose(make([]float64, 16), g, Hierarchical)
	if _, _, err := d.ReconstructToLevel(-1); err == nil {
		t.Fatal("negative level accepted")
	}
	if _, _, err := d.ReconstructToLevel(d.Steps + 1); err == nil {
		t.Fatal("level beyond steps accepted")
	}
}

func TestOBCoarseLevelIsSmoothedProjection(t *testing.T) {
	// OB coarse values are L2 projections, not subsamples: they generally
	// differ from the original nodal values but remain close for smooth
	// data.
	g := grid.MustNew(65)
	data := smoothField(g)
	d, _ := Decompose(data, g, Orthogonal)
	coarse, cg, err := d.ReconstructToLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Dim(0) != 17 {
		t.Fatalf("coarse dim = %d", cg.Dim(0))
	}
	maxDiff, anyDiff := 0.0, false
	for i, v := range coarse {
		orig := data[i*4]
		diff := v - orig
		if diff < 0 {
			diff = -diff
		}
		if diff > 0 {
			anyDiff = true
		}
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	if !anyDiff {
		t.Fatal("OB projection should differ from plain subsampling")
	}
	rangeScale := 6.0 // smoothField amplitude
	if maxDiff > 0.5*rangeScale {
		t.Fatalf("OB projection wildly off: %g", maxDiff)
	}
}
