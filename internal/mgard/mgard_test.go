package mgard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"progqoi/internal/grid"
)

func randField(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 10
	}
	return out
}

func smoothField(g *grid.Grid) []float64 {
	out := make([]float64, g.Size())
	for off := range out {
		c := g.Coords(off)
		v := 0.0
		for d, x := range c {
			v += math.Sin(2*math.Pi*float64(x)/float64(g.Dim(d))+float64(d)) * float64(d+1)
		}
		out[off] = v
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

var testShapes = [][]int{
	{1}, {2}, {3}, {5}, {17}, {100}, {129},
	{1, 1}, {4, 4}, {5, 7}, {16, 33},
	{3, 4, 5}, {8, 8, 8}, {9, 5, 17},
}

func TestRoundTripExactBothBases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range testShapes {
		g := grid.MustNew(dims...)
		data := randField(rng, g.Size())
		for _, basis := range []Basis{Hierarchical, Orthogonal} {
			d, err := Decompose(data, g, basis)
			if err != nil {
				t.Fatalf("%v %v: %v", dims, basis, err)
			}
			rec := d.Reconstruct()
			// Transform is exactly invertible up to float round-off.
			tol := 1e-9 * (1 + maxAbs(data))
			if e := maxAbsDiff(data, rec); e > tol {
				t.Errorf("%v %v: round-trip error %g > %g", dims, basis, e, tol)
			}
		}
	}
}

func maxAbs(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if x := math.Abs(v); x > m {
			m = x
		}
	}
	return m
}

func TestDecomposeRejectsBadInput(t *testing.T) {
	g := grid.MustNew(4)
	if _, err := Decompose([]float64{1, 2, 3}, g, Hierarchical); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Decompose([]float64{1, 2, math.NaN(), 4}, g, Hierarchical); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Decompose([]float64{1, 2, math.Inf(1), 4}, g, Orthogonal); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestGroupsPartitionTheGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range testShapes {
		g := grid.MustNew(dims...)
		d, err := Decompose(randField(rng, g.Size()), g, Hierarchical)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		total := 0
		for gi := 0; gi < d.NumGroups(); gi++ {
			d.groupIndices(gi, func(off int) {
				seen[off]++
				total++
			})
		}
		if total != g.Size() {
			t.Errorf("%v: groups cover %d of %d offsets", dims, total, g.Size())
		}
		for off, cnt := range seen {
			if cnt != 1 {
				t.Errorf("%v: offset %d covered %d times", dims, off, cnt)
			}
		}
	}
}

func TestGroupGetSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := grid.MustNew(9, 5)
	data := randField(rng, g.Size())
	d, _ := Decompose(data, g, Orthogonal)
	// Rebuild a shell from extracted groups; reconstruction must match.
	shell := d.Shell()
	for gi := 0; gi < d.NumGroups(); gi++ {
		if err := shell.SetGroup(gi, d.Group(gi)); err != nil {
			t.Fatal(err)
		}
	}
	r1, r2 := d.Reconstruct(), shell.Reconstruct()
	if e := maxAbsDiff(r1, r2); e != 0 {
		t.Fatalf("shell reconstruction differs by %g", e)
	}
}

func TestSetGroupRejectsWrongSize(t *testing.T) {
	g := grid.MustNew(8)
	d, _ := Decompose(make([]float64, 8), g, Hierarchical)
	if err := d.SetGroup(0, []float64{1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Fatal("wrong group size accepted")
	}
}

func TestNewShellMatchesDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := grid.MustNew(7, 11)
	data := randField(rng, g.Size())
	d, _ := Decompose(data, g, Hierarchical)
	shell := NewShell(g, Hierarchical)
	if shell.NumGroups() != d.NumGroups() || shell.Steps != d.Steps {
		t.Fatalf("shell shape mismatch: %d/%d groups", shell.NumGroups(), d.NumGroups())
	}
	for gi := 0; gi < d.NumGroups(); gi++ {
		if shell.GroupSize(gi) != d.GroupSize(gi) {
			t.Fatalf("group %d size mismatch", gi)
		}
		if err := shell.SetGroup(gi, d.Group(gi)); err != nil {
			t.Fatal(err)
		}
	}
	if e := maxAbsDiff(d.Reconstruct(), shell.Reconstruct()); e != 0 {
		t.Fatalf("NewShell reconstruction differs by %g", e)
	}
}

// TestErrorBoundSound perturbs every group by a known amount and checks the
// reconstruction error never exceeds ErrorBound.
func TestErrorBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][]int{{33}, {16, 17}, {9, 9, 9}} {
		g := grid.MustNew(dims...)
		data := smoothField(g)
		for _, basis := range []Basis{Hierarchical, Orthogonal} {
			d, err := Decompose(data, g, basis)
			if err != nil {
				t.Fatal(err)
			}
			exact := d.Reconstruct()
			for trial := 0; trial < 5; trial++ {
				pert := d.Shell()
				bounds := make([]float64, d.NumGroups())
				for gi := 0; gi < d.NumGroups(); gi++ {
					eb := math.Pow(10, float64(rng.Intn(5))-4) // 1e-4..1e0
					bounds[gi] = eb
					grp := d.Group(gi)
					for i := range grp {
						grp[i] += (rng.Float64()*2 - 1) * eb
					}
					if err := pert.SetGroup(gi, grp); err != nil {
						t.Fatal(err)
					}
				}
				bound, err := d.ErrorBound(bounds)
				if err != nil {
					t.Fatal(err)
				}
				rec := pert.Reconstruct()
				actual := maxAbsDiff(exact, rec)
				if actual > bound*(1+1e-9) {
					t.Errorf("%v %v trial %d: actual %g > bound %g", dims, basis, trial, actual, bound)
				}
			}
		}
	}
}

func TestErrorBoundHBTighterThanOB(t *testing.T) {
	g := grid.MustNew(65)
	data := smoothField(g)
	bounds := func(d *Decomposition) []float64 {
		b := make([]float64, d.NumGroups())
		for i := range b {
			b[i] = 1e-3
		}
		return b
	}
	hb, _ := Decompose(data, g, Hierarchical)
	ob, _ := Decompose(data, g, Orthogonal)
	bh, _ := hb.ErrorBound(bounds(hb))
	bo, _ := ob.ErrorBound(bounds(ob))
	if bh >= bo {
		t.Fatalf("HB bound %g should be tighter than OB bound %g", bh, bo)
	}
}

func TestErrorBoundWrongLength(t *testing.T) {
	g := grid.MustNew(16)
	d, _ := Decompose(make([]float64, 16), g, Hierarchical)
	if _, err := d.ErrorBound([]float64{1}); err == nil {
		t.Fatal("wrong bounds length accepted")
	}
}

// TestOBDecaysCoefficientsOnSmoothData checks the transform decorrelates:
// detail coefficients of a smooth field must be much smaller than the data.
func TestCoefficientDecay(t *testing.T) {
	g := grid.MustNew(129)
	data := smoothField(g)
	for _, basis := range []Basis{Hierarchical, Orthogonal} {
		d, _ := Decompose(data, g, basis)
		finest := d.Group(d.NumGroups() - 1)
		coarsest := d.Group(0)
		if maxAbs(finest) > maxAbs(coarsest)/10 {
			t.Errorf("%v: finest details %g not small vs coarsest %g", basis, maxAbs(finest), maxAbs(coarsest))
		}
	}
}

func TestSingleElementGrid(t *testing.T) {
	g := grid.MustNew(1)
	d, err := Decompose([]float64{42}, g, Orthogonal)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumGroups() != 1 {
		t.Fatalf("groups = %d", d.NumGroups())
	}
	if got := d.Reconstruct(); got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestGroupLevelMapping(t *testing.T) {
	g := grid.MustNew(17) // 5 levels → 4 steps
	d, _ := Decompose(make([]float64, 17), g, Hierarchical)
	if d.Steps != 4 {
		t.Fatalf("steps = %d", d.Steps)
	}
	if d.GroupLevel(0) != -1 {
		t.Fatal("coarsest group level should be -1")
	}
	if d.GroupLevel(1) != 3 || d.GroupLevel(4) != 0 {
		t.Fatalf("levels: %d %d", d.GroupLevel(1), d.GroupLevel(4))
	}
	// Group sizes: coarsest 2 nodes (0,16), then 1, 2, 4, 8.
	wantSizes := []int{2, 1, 2, 4, 8}
	for gi, want := range wantSizes {
		if got := d.GroupSize(gi); got != want {
			t.Errorf("group %d size = %d, want %d", gi, got, want)
		}
	}
}

func TestPropertyRoundTripQuick(t *testing.T) {
	f := func(seed int64, dsel uint8, basisSel bool) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := testShapes[int(dsel)%len(testShapes)]
		g := grid.MustNew(dims...)
		data := randField(rng, g.Size())
		basis := Hierarchical
		if basisSel {
			basis = Orthogonal
		}
		d, err := Decompose(data, g, basis)
		if err != nil {
			return false
		}
		rec := d.Reconstruct()
		return maxAbsDiff(data, rec) <= 1e-9*(1+maxAbs(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBasisString(t *testing.T) {
	if Hierarchical.String() != "HB" || Orthogonal.String() != "OB" {
		t.Fatal("basis names")
	}
	if Basis(9).String() != "Basis(9)" {
		t.Fatal("unknown basis name")
	}
}

func BenchmarkDecomposeHB64x64x64(b *testing.B) {
	g := grid.MustNew(64, 64, 64)
	data := smoothField(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(data, g, Hierarchical); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeOB64x64x64(b *testing.B) {
	g := grid.MustNew(64, 64, 64)
	data := smoothField(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(data, g, Orthogonal); err != nil {
			b.Fatal(err)
		}
	}
}
