package storage

import (
	"context"
	"fmt"

	"progqoi/internal/core"
	"progqoi/internal/encoding"
)

// ArchiveWriter streams an archive into a store one variable at a time:
// each WriteVariable flushes that variable's CRC-framed blob immediately,
// and Close writes the manifest last. Because the manifest is the commit
// point — readers and the fragment service only recognise a dataset by its
// ".manifest" key — a writer killed mid-stream leaves the store readable:
// the orphaned variable blobs are ignored until a later pack completes.
// The store contents are byte-identical to WriteArchive over the same
// variables in the same order.
//
// An ArchiveWriter is single-use and not safe for concurrent use.
type ArchiveWriter struct {
	st       Store
	name     string
	sections []byte // manifest name sections, in write order
	count    uint32
	bytes    int64
	seen     map[string]bool
	closed   bool
}

// NewArchiveWriter starts streaming an archive named name into st. The
// dataset name must be usable as a store key.
func NewArchiveWriter(st Store, name string) (*ArchiveWriter, error) {
	if err := validKey(name + ".manifest"); err != nil {
		return nil, err
	}
	return &ArchiveWriter{st: st, name: name, seen: map[string]bool{}}, nil
}

// WriteVariable flushes one refactored variable to the store. Variables
// appear in the manifest in write order; duplicate names are rejected.
func (w *ArchiveWriter) WriteVariable(ctx context.Context, v *core.Variable) error {
	if w.closed {
		return fmt.Errorf("storage: archive %q already closed", w.name)
	}
	key := VarKey(w.name, v.Name)
	if err := validKey(key); err != nil {
		return fmt.Errorf("storage: variable name %q unusable as key: %w", v.Name, err)
	}
	if w.seen[v.Name] {
		return fmt.Errorf("storage: duplicate variable %q in archive %q", v.Name, w.name)
	}
	blob := withCRC(marshalVariable(v))
	if err := w.st.Put(ctx, key, blob); err != nil {
		return err
	}
	w.seen[v.Name] = true
	w.sections = encoding.PutSection(w.sections, []byte(v.Name))
	w.count++
	w.bytes += int64(len(blob))
	return nil
}

// StoredBytes returns the variable-blob bytes written so far (CRC trailers
// included; the manifest is not counted).
func (w *ArchiveWriter) StoredBytes() int64 { return w.bytes }

// Close writes the manifest, committing the archive. Closing twice is an
// error; a writer that is never closed publishes nothing.
func (w *ArchiveWriter) Close(ctx context.Context) error {
	if w.closed {
		return fmt.Errorf("storage: archive %q already closed", w.name)
	}
	w.closed = true
	manifest := append([]byte(nil), archiveMagic...)
	manifest = appendU32(manifest, w.count)
	manifest = append(manifest, w.sections...)
	return w.st.Put(ctx, w.name+".manifest", withCRC(manifest))
}

// FieldSource supplies the raw data of field i to RefactorTo, so inputs
// can be loaded lazily (e.g. one file at a time) instead of held together
// in memory.
type FieldSource func(i int) ([]float64, error)

// RefactorTo is the streaming form of core.RefactorVariables +
// WriteArchive: fields are loaded, refactored and flushed to the store one
// variable at a time — each variable using the full opt.Workers encode
// pool — with the manifest written last, so packing a dataset never holds
// more than one variable's planes (plus one raw field) in RAM and a crash
// mid-pack leaves the store readable. The resulting store contents are
// byte-identical to the in-memory path. It returns the total variable-blob
// bytes written.
func RefactorTo(ctx context.Context, st Store, name string, names []string, dims []int, opt core.RefactorOptions, src FieldSource) (int64, error) {
	w, err := NewArchiveWriter(st, name)
	if err != nil {
		return 0, err
	}
	for i, vname := range names {
		data, err := src(i)
		if err != nil {
			return w.StoredBytes(), fmt.Errorf("storage: load field %s: %w", vname, err)
		}
		vars, err := core.RefactorVariables([]string{vname}, [][]float64{data}, dims, opt)
		if err != nil {
			return w.StoredBytes(), err
		}
		if err := w.WriteVariable(ctx, vars[0]); err != nil {
			return w.StoredBytes(), err
		}
	}
	if err := w.Close(ctx); err != nil {
		return w.StoredBytes(), err
	}
	return w.StoredBytes(), nil
}
