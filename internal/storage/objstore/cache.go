package objstore

import (
	"container/list"
	"strings"
	"sync"
)

// byteCache is the store's byte-bounded read-through LRU: the layer that
// makes a bucket-backed progqoid node a pure cache. Keys distinguish
// full-object reads ("g\x00<key>") from ranged reads
// ("r\x00<key>\x00<off>\x00<len>") so a republish can drop both shapes
// for one object. Values are held by reference — object bytes are
// immutable once fetched — so a hit costs no copy. A zero-capacity cache
// stores nothing: every read reaches the bucket, slower but correct.
type byteCache struct {
	mu        sync.Mutex
	capBytes  int64                    // immutable after construction
	size      int64                    // guarded by mu
	ll        *list.List               // guarded by mu; front = most recently used
	items     map[string]*list.Element // guarded by mu
	hits      int64                    // guarded by mu
	misses    int64                    // guarded by mu
	evictions int64                    // guarded by mu
}

type cacheEntry struct {
	key string
	val []byte
}

func newByteCache(capBytes int64) *byteCache {
	return &byteCache{capBytes: capBytes, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *byteCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *byteCache) add(key string, val []byte) {
	if c.capBytes <= 0 || int64(len(val)) > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.size += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.size += int64(len(val))
	}
	for c.size > c.capBytes && c.ll.Len() > 0 {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.size -= int64(len(e.val))
		c.evictions++
	}
}

// drop removes the exact full-object entry and every ranged entry under
// prefix — called after a Put so a republished object can never serve
// its predecessor's cached bytes.
func (c *byteCache) drop(exact, prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key != exact && !strings.HasPrefix(e.key, prefix) {
			continue
		}
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.size -= int64(len(e.val))
	}
}

// stats is one consistent snapshot of the cache counters.
func (c *byteCache) stats() (bytes int64, entries int, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size, c.ll.Len(), c.hits, c.misses, c.evictions
}
