package miniobj

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
)

// verify.go re-derives the AWS SigV4 signature of a received request and
// compares it against the Authorization header. It deliberately does NOT
// share code with the parent package's signer: the two canonicalizations
// are written independently, so an encoding bug in either side breaks the
// round trip under test instead of cancelling itself out.

// verifySignature checks the request's SigV4 Authorization header against
// the server's configured credentials.
func (s *Server) verifySignature(r *http.Request) error {
	auth := r.Header.Get("Authorization")
	if auth == "" {
		return fmt.Errorf("request is not signed")
	}
	rest, ok := strings.CutPrefix(auth, "AWS4-HMAC-SHA256 ")
	if !ok {
		return fmt.Errorf("unsupported authorization scheme")
	}
	fields := map[string]string{}
	for _, part := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("malformed authorization field %q", part)
		}
		fields[k] = v
	}
	cred := fields["Credential"]
	signedHeaders := fields["SignedHeaders"]
	gotSig := fields["Signature"]
	if cred == "" || signedHeaders == "" || gotSig == "" {
		return fmt.Errorf("authorization header missing Credential, SignedHeaders or Signature")
	}
	credParts := strings.Split(cred, "/")
	if len(credParts) != 5 {
		return fmt.Errorf("malformed credential scope %q", cred)
	}
	accessKey, date, region, service, term := credParts[0], credParts[1], credParts[2], credParts[3], credParts[4]
	if accessKey != s.creds.AccessKey {
		return fmt.Errorf("unknown access key %q", accessKey)
	}
	if region != s.creds.Region || service != "s3" || term != "aws4_request" {
		return fmt.Errorf("credential scope %q does not match region %q service s3", cred, s.creds.Region)
	}
	amzDate := r.Header.Get("x-amz-date")
	if len(amzDate) < 8 || amzDate[:8] != date {
		return fmt.Errorf("x-amz-date %q does not match credential date %q", amzDate, date)
	}
	payloadHash := r.Header.Get("x-amz-content-sha256")
	if payloadHash == "" {
		return fmt.Errorf("missing x-amz-content-sha256")
	}

	// Canonical headers, exactly the set the client declared signed.
	var lines []string
	for _, h := range strings.Split(signedHeaders, ";") {
		var v string
		if h == "host" {
			v = r.Host
		} else {
			v = r.Header.Get(h)
		}
		lines = append(lines, h+":"+strings.TrimSpace(v))
	}
	canonical := r.Method + "\n" +
		strictURI(r.URL) + "\n" +
		strictQuery(r.URL) + "\n" +
		strings.Join(lines, "\n") + "\n\n" +
		signedHeaders + "\n" +
		payloadHash

	scope := date + "/" + region + "/s3/aws4_request"
	sum := sha256.Sum256([]byte(canonical))
	toSign := "AWS4-HMAC-SHA256\n" + amzDate + "\n" + scope + "\n" + hex.EncodeToString(sum[:])

	key := []byte("AWS4" + s.creds.SecretKey)
	for _, part := range []string{date, region, "s3", "aws4_request"} {
		key = hmacSum(key, []byte(part))
	}
	wantSig := hex.EncodeToString(hmacSum(key, []byte(toSign)))
	if wantSig != gotSig {
		return fmt.Errorf("signature mismatch")
	}
	return nil
}

func hmacSum(key, msg []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(msg)
	return h.Sum(nil)
}

// strictURI re-encodes the request path with S3's strict percent-encoding,
// slashes preserved.
func strictURI(u *url.URL) string {
	p := u.EscapedPath()
	if p == "" {
		return "/"
	}
	dec, err := url.PathUnescape(p)
	if err != nil {
		return p
	}
	return strictEncode(dec, false)
}

// strictQuery sorts and strictly encodes the query string.
func strictQuery(u *url.URL) string {
	q := u.Query()
	names := make([]string, 0, len(q))
	for k := range q {
		names = append(names, k)
	}
	sort.Strings(names)
	var parts []string
	for _, k := range names {
		vals := append([]string(nil), q[k]...)
		sort.Strings(vals)
		for _, v := range vals {
			parts = append(parts, strictEncode(k, true)+"="+strictEncode(v, true))
		}
	}
	return strings.Join(parts, "&")
}

// strictEncode percent-encodes everything but the unreserved set (and,
// optionally, '/'), uppercase hex — an independent twin of the client's
// encoder.
func strictEncode(s string, encodeSlash bool) string {
	const upperhex = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
			c == '-' || c == '_' || c == '.' || c == '~' || (c == '/' && !encodeSlash) {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('%')
		b.WriteByte(upperhex[c>>4])
		b.WriteByte(upperhex[c&0xf])
	}
	return b.String()
}
