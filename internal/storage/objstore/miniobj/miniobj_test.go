package miniobj

import (
	"encoding/xml"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil && resp.StatusCode == http.StatusOK {
		// Only the truncation fault makes a 200 body unreadable; callers
		// that inject it read the body themselves.
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestObjectLifecycle(t *testing.T) {
	s := New("bkt", Credentials{})
	defer s.Close()

	etag := s.Put("a/one", []byte("hello world"))
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("Put etag = %q, want quoted strong etag", etag)
	}
	if got := s.ETag("a/one"); got != etag {
		t.Fatalf("ETag = %q, want %q", got, etag)
	}
	if got := s.ETag("missing"); got != "" {
		t.Fatalf("ETag(missing) = %q, want empty", got)
	}
	s.Put("a/two", []byte("xx"))
	s.Put("b/three", []byte("yy"))
	if got := s.Keys(); len(got) != 3 || got[0] != "a/one" {
		t.Fatalf("Keys = %v", got)
	}
	if !s.Mutate("a/two", []byte("zz")) {
		t.Fatal("Mutate of existing key = false")
	}
	// Mutate upserts; it only reports whether the key already existed.
	if s.Mutate("missing", nil) {
		t.Fatal("Mutate of missing key = true")
	}
	s.Delete("missing")
	s.Delete("b/three")
	if got := s.Keys(); len(got) != 2 {
		t.Fatalf("Keys after delete = %v", got)
	}

	// GET: full body with ETag and Accept-Ranges.
	resp, body := get(t, s.URL()+"/bkt/a/one", nil)
	if resp.StatusCode != 200 || body != "hello world" || resp.Header.Get("ETag") != etag {
		t.Fatalf("GET: %d %q etag=%q", resp.StatusCode, body, resp.Header.Get("ETag"))
	}
	// Ranged GET, end clamped to the object size.
	resp, body = get(t, s.URL()+"/bkt/a/one", map[string]string{"Range": "bytes=6-99"})
	if resp.StatusCode != http.StatusPartialContent || body != "world" {
		t.Fatalf("ranged GET: %d %q", resp.StatusCode, body)
	}
	if cr := resp.Header.Get("Content-Range"); cr != "bytes 6-10/11" {
		t.Fatalf("Content-Range = %q", cr)
	}
	// Unsatisfiable and malformed ranges.
	resp, _ = get(t, s.URL()+"/bkt/a/one", map[string]string{"Range": "bytes=50-60"})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("range past EOF: %d", resp.StatusCode)
	}
	resp, body = get(t, s.URL()+"/bkt/a/one", map[string]string{"Range": "bytes=1-2,4-5"})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable || !strings.Contains(body, "InvalidRange") {
		t.Fatalf("multi-range: %d %q", resp.StatusCode, body)
	}
	// Conditional GETs.
	resp, _ = get(t, s.URL()+"/bkt/a/one", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match hit: %d", resp.StatusCode)
	}
	resp, _ = get(t, s.URL()+"/bkt/a/one", map[string]string{"If-Match": `"deadbeef"`})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("If-Match miss: %d", resp.StatusCode)
	}
	resp, _ = get(t, s.URL()+"/bkt/a/one", map[string]string{"If-Match": "*"})
	if resp.StatusCode != 200 {
		t.Fatalf("If-Match *: %d", resp.StatusCode)
	}
	// Missing key, wrong bucket, unsupported method.
	resp, body = get(t, s.URL()+"/bkt/nope", nil)
	if resp.StatusCode != 404 || !strings.Contains(body, "NoSuchKey") {
		t.Fatalf("missing key: %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, s.URL()+"/other/a/one", nil)
	if resp.StatusCode != 404 || !strings.Contains(body, "NoSuchBucket") {
		t.Fatalf("wrong bucket: %d %q", resp.StatusCode, body)
	}
	req, _ := http.NewRequest("DELETE", s.URL()+"/bkt/a/one", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}

	// PUT over the wire lands in the store with a fresh ETag.
	preq, _ := http.NewRequest("PUT", s.URL()+"/bkt/c/four", strings.NewReader("wire"))
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 200 || presp.Header.Get("ETag") != s.ETag("c/four") {
		t.Fatalf("PUT: %d etag=%q", presp.StatusCode, presp.Header.Get("ETag"))
	}

	gets, lists, puts, denied := s.Stats()
	if gets == 0 || puts != 1 || lists != 0 || denied != 0 {
		t.Fatalf("Stats = %d gets %d lists %d puts %d denied", gets, lists, puts, denied)
	}
}

func TestListObjectsV2(t *testing.T) {
	s := New("bkt", Credentials{})
	defer s.Close()
	s.Put("frag/001", []byte("a"))
	s.Put("frag/002", []byte("bb"))
	s.Put("frag/003", []byte("ccc"))
	s.Put("meta/idx", []byte("d"))

	type doc struct {
		KeyCount              int    `xml:"KeyCount"`
		IsTruncated           bool   `xml:"IsTruncated"`
		NextContinuationToken string `xml:"NextContinuationToken"`
		Contents              []struct {
			Key  string `xml:"Key"`
			Size int    `xml:"Size"`
		} `xml:"Contents"`
	}
	list := func(query string) doc {
		t.Helper()
		resp, body := get(t, s.URL()+"/bkt?"+query, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("list %q: %d %s", query, resp.StatusCode, body)
		}
		var d doc
		if err := xml.Unmarshal([]byte(body), &d); err != nil {
			t.Fatalf("list %q: %v", query, err)
		}
		return d
	}

	if resp, body := get(t, s.URL()+"/bkt?list-type=1", nil); resp.StatusCode != 400 || !strings.Contains(body, "InvalidArgument") {
		t.Fatalf("list-type=1: %d %q", resp.StatusCode, body)
	}
	all := list("list-type=2")
	if all.KeyCount != 4 || all.IsTruncated {
		t.Fatalf("full list: %+v", all)
	}
	pre := list("list-type=2&prefix=frag/")
	if pre.KeyCount != 3 || pre.Contents[0].Key != "frag/001" {
		t.Fatalf("prefix list: %+v", pre)
	}

	// Page through with maxKeys=2: two pages, resumed by token.
	s.SetMaxKeys(2)
	page1 := list("list-type=2&prefix=frag/")
	if page1.KeyCount != 2 || !page1.IsTruncated || page1.NextContinuationToken != "frag/002" {
		t.Fatalf("page 1: %+v", page1)
	}
	page2 := list("list-type=2&prefix=frag/&continuation-token=" + page1.NextContinuationToken)
	if page2.KeyCount != 1 || page2.IsTruncated || page2.Contents[0].Key != "frag/003" {
		t.Fatalf("page 2: %+v", page2)
	}
}

func TestFaultInjection(t *testing.T) {
	s := New("bkt", Credentials{})
	defer s.Close()
	s.Put("k", []byte("0123456789abcdef"))

	s.Fail503(1)
	if resp, body := get(t, s.URL()+"/bkt/k", nil); resp.StatusCode != 503 || !strings.Contains(body, "SlowDown") {
		t.Fatalf("injected 503: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get(t, s.URL()+"/bkt/k", nil); resp.StatusCode != 200 {
		t.Fatalf("after 503 budget: %d", resp.StatusCode)
	}

	s.Deny403(true)
	if resp, body := get(t, s.URL()+"/bkt/k", nil); resp.StatusCode != 403 || !strings.Contains(body, "AccessDenied") {
		t.Fatalf("injected 403: %d %q", resp.StatusCode, body)
	}
	s.Deny403(false)
	if _, _, _, denied := s.Stats(); denied != 1 {
		t.Fatalf("denied counter = %d, want 1", denied)
	}

	s.SetDelay(time.Millisecond)
	start := time.Now()
	if resp, _ := get(t, s.URL()+"/bkt/k", nil); resp.StatusCode != 200 {
		t.Fatalf("delayed GET: %d", resp.StatusCode)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay was not applied")
	}
	s.SetDelay(0)

	// Truncation promises the full length, delivers half, and aborts —
	// the client must see an unexpected EOF, not a clean short body.
	s.TruncateNext(1)
	resp, err := http.Get(s.URL() + "/bkt/k")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated read succeeded with %d bytes", len(b))
	}
	if len(b) >= 16 {
		t.Fatalf("truncated body delivered %d bytes, want < 16", len(b))
	}
}

func TestUnsignedRejectedWhenCredentialsConfigured(t *testing.T) {
	s := New("bkt", Credentials{AccessKey: "AK", SecretKey: "SK"})
	defer s.Close()
	s.Put("k", []byte("v"))
	resp, body := get(t, s.URL()+"/bkt/k", nil)
	if resp.StatusCode != 403 || !strings.Contains(body, "SignatureDoesNotMatch") {
		t.Fatalf("unsigned GET with creds: %d %q", resp.StatusCode, body)
	}
	req, _ := http.NewRequest("GET", s.URL()+"/bkt/k", nil)
	req.Header.Set("Authorization", "AWS4-HMAC-SHA256 Credential=garbage")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 403 {
		t.Fatalf("malformed signature: %d", r2.StatusCode)
	}
	if _, _, _, denied := s.Stats(); denied != 2 {
		t.Fatalf("denied counter = %d, want 2", denied)
	}
}
