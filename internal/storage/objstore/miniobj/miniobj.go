// Package miniobj is a hermetic in-process mock of the S3 protocol subset
// the objstore backend speaks: path-style GET/PUT of objects, ranged GETs
// with Content-Range, strong ETags with If-Match/If-None-Match handling,
// ListObjectsV2 with continuation tokens, and (when credentials are
// configured) AWS SigV4 verification by re-deriving the signature from
// the received request — so the signer in the parent package and this
// verifier exercise each other, and a canonicalization bug fails the test
// suite instead of producing requests only a lenient server accepts.
//
// Fault-injection hooks drive the failure matrix the stateless serving
// tier must survive offline: deny every request with 403, fail the next N
// requests with 503, truncate the next N response bodies (Content-Length
// promises more than arrives), delay responses, and mutate an object
// in place so its ETag changes mid-session.
package miniobj

import (
	"crypto/md5" //nolint:gosec // S3 ETags are MD5 by protocol, not a security boundary
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Credentials configures SigV4 verification. Zero value disables it
// (unsigned requests accepted, Authorization ignored).
type Credentials struct {
	AccessKey string
	SecretKey string
	Region    string // default "us-east-1"
}

// Server is one in-process bucket behind an httptest.Server.
type Server struct {
	bucket string
	creds  Credentials
	hs     *httptest.Server

	mu       sync.Mutex
	objects  map[string]object // guarded by mu
	maxKeys  int               // guarded by mu; ListObjectsV2 page size
	deny403  bool              // guarded by mu; every request answers 403
	fail503  int               // guarded by mu; fail the next N requests with 503
	truncate int               // guarded by mu; truncate the next N object bodies
	delay    time.Duration     // guarded by mu; sleep before answering

	gets   int64 // guarded by mu; object GETs served (any status)
	lists  int64 // guarded by mu; ListObjectsV2 pages served
	puts   int64 // guarded by mu; object PUTs accepted
	denied int64 // guarded by mu; requests rejected 403 (policy or signature)
}

type object struct {
	data []byte
	etag string // strong, quoted, md5 — what real S3 sends for simple PUTs
}

// New starts a mock bucket. creds zero value accepts unsigned requests.
func New(bucket string, creds Credentials) *Server {
	if creds.Region == "" {
		creds.Region = "us-east-1"
	}
	s := &Server{
		bucket:  bucket,
		creds:   creds,
		objects: map[string]object{},
		maxKeys: 1000,
	}
	s.hs = httptest.NewServer(http.HandlerFunc(s.serve))
	return s
}

// URL returns the endpoint base URL.
func (s *Server) URL() string { return s.hs.URL }

// Close shuts the listener down.
func (s *Server) Close() { s.hs.Close() }

// Put seeds or replaces an object directly (no HTTP), returning its ETag.
func (s *Server) Put(key string, data []byte) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := object{data: append([]byte(nil), data...), etag: etagOf(data)}
	s.objects[key] = o
	return o.etag
}

// Mutate rewrites an object's bytes in place — the republished-bucket
// fault: the key keeps resolving but its ETag changes, so a pinned reader
// must fail rather than mix incarnations. Reports whether the key existed.
func (s *Server) Mutate(key string, data []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[key]
	s.objects[key] = object{data: append([]byte(nil), data...), etag: etagOf(data)}
	return ok
}

// Delete removes an object.
func (s *Server) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, key)
}

// Keys returns the stored keys, sorted.
func (s *Server) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.objects))
	for k := range s.objects {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ETag returns an object's current ETag ("" when missing).
func (s *Server) ETag(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.objects[key].etag
}

// SetMaxKeys shrinks the ListObjectsV2 page size so pagination paths run
// under test without thousands of objects.
func (s *Server) SetMaxKeys(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxKeys = n
}

// Deny403 makes every request fail 403 (bucket-policy / bad-credentials
// fault) until turned off.
func (s *Server) Deny403(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deny403 = on
}

// Fail503 makes the next n requests answer 503 — the transient fault the
// client's retry budget must absorb.
func (s *Server) Fail503(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fail503 = n
}

// TruncateNext makes the next n object GETs promise the full
// Content-Length but deliver half the body, then drop the connection —
// the mid-transfer truncation fault (clients see unexpected EOF).
func (s *Server) TruncateNext(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.truncate = n
}

// SetDelay makes every request sleep first (slow-read fault; pair with a
// request context deadline).
func (s *Server) SetDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delay = d
}

// Stats reports request counters: object GETs, list pages, PUTs, and
// 403-denied requests.
func (s *Server) Stats() (gets, lists, puts, denied int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.lists, s.puts, s.denied
}

// etagOf is the protocol ETag for a simple (non-multipart) object.
func etagOf(b []byte) string {
	sum := md5.Sum(b) //nolint:gosec // protocol checksum
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// errorXML writes an S3-style error document.
func errorXML(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	fmt.Fprintf(w, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<Error><Code>%s</Code><Message>%s</Message></Error>", code, msg)
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	delay := s.delay
	deny := s.deny403
	fail := s.fail503 > 0
	if fail {
		s.fail503--
	}
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		errorXML(w, http.StatusServiceUnavailable, "SlowDown", "injected 503")
		return
	}
	if deny {
		s.countDenied()
		errorXML(w, http.StatusForbidden, "AccessDenied", "injected policy denial")
		return
	}
	if s.creds.AccessKey != "" {
		if err := s.verifySignature(r); err != nil {
			s.countDenied()
			errorXML(w, http.StatusForbidden, "SignatureDoesNotMatch", err.Error())
			return
		}
	}
	bucket, key, ok := strings.Cut(strings.TrimPrefix(r.URL.Path, "/"), "/")
	if !ok {
		bucket = strings.TrimPrefix(r.URL.Path, "/")
	}
	if bucket != s.bucket {
		errorXML(w, http.StatusNotFound, "NoSuchBucket", bucket)
		return
	}
	switch {
	case r.Method == http.MethodGet && key == "":
		s.handleList(w, r)
	case r.Method == http.MethodGet:
		s.handleGet(w, r, key)
	case r.Method == http.MethodPut && key != "":
		s.handlePut(w, r, key)
	default:
		errorXML(w, http.StatusMethodNotAllowed, "MethodNotAllowed", r.Method)
	}
}

func (s *Server) countDenied() {
	s.mu.Lock()
	s.denied++
	s.mu.Unlock()
}

// parseRange parses a "bytes=a-b" header (single range only, both bounds
// required — all the client sends). ok=false means no/unsupported header.
func parseRange(h string) (off, end int64, ok bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found || strings.Contains(spec, ",") {
		return 0, 0, false
	}
	a, b, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	off, err1 := strconv.ParseInt(a, 10, 64)
	end, err2 := strconv.ParseInt(b, 10, 64)
	if err1 != nil || err2 != nil || off < 0 || end < off {
		return 0, 0, false
	}
	return off, end, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, key string) {
	s.mu.Lock()
	o, exists := s.objects[key]
	trunc := false
	if exists && s.truncate > 0 {
		s.truncate--
		trunc = true
	}
	s.gets++
	s.mu.Unlock()
	if !exists {
		errorXML(w, http.StatusNotFound, "NoSuchKey", key)
		return
	}
	if im := r.Header.Get("If-Match"); im != "" && im != o.etag && im != "*" {
		errorXML(w, http.StatusPreconditionFailed, "PreconditionFailed", key)
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && (inm == o.etag || inm == "*") {
		w.Header().Set("ETag", o.etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := o.data
	status := http.StatusOK
	if h := r.Header.Get("Range"); h != "" {
		off, end, ok := parseRange(h)
		if !ok || off >= int64(len(o.data)) {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", len(o.data)))
			errorXML(w, http.StatusRequestedRangeNotSatisfiable, "InvalidRange", h)
			return
		}
		if end >= int64(len(o.data)) {
			end = int64(len(o.data)) - 1
		}
		body = o.data[off : end+1]
		status = http.StatusPartialContent
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, end, len(o.data)))
	}
	w.Header().Set("ETag", o.etag)
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if trunc {
		// Promise len(body), deliver half, and cut the connection so the
		// client sees unexpected EOF instead of a clean short read.
		w.Write(body[:len(body)/2]) //nolint:errcheck
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.Write(body) //nolint:errcheck
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, key string) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		errorXML(w, http.StatusBadRequest, "IncompleteBody", err.Error())
		return
	}
	s.mu.Lock()
	o := object{data: data, etag: etagOf(data)}
	s.objects[key] = o
	s.puts++
	s.mu.Unlock()
	w.Header().Set("ETag", o.etag)
	w.WriteHeader(http.StatusOK)
}

// listEntry / listDoc mirror the ListObjectsV2 response shape the client
// parses.
type listEntry struct {
	Key  string `xml:"Key"`
	ETag string `xml:"ETag"`
	Size int    `xml:"Size"`
}

type listDoc struct {
	XMLName               xml.Name    `xml:"ListBucketResult"`
	Name                  string      `xml:"Name"`
	Prefix                string      `xml:"Prefix"`
	KeyCount              int         `xml:"KeyCount"`
	MaxKeys               int         `xml:"MaxKeys"`
	IsTruncated           bool        `xml:"IsTruncated"`
	NextContinuationToken string      `xml:"NextContinuationToken,omitempty"`
	Contents              []listEntry `xml:"Contents"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("list-type") != "2" {
		errorXML(w, http.StatusBadRequest, "InvalidArgument", "only list-type=2 is supported")
		return
	}
	prefix := q.Get("prefix")
	after := q.Get("continuation-token") // we use "resume after this key"
	s.mu.Lock()
	maxKeys := s.maxKeys
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) && (after == "" || k > after) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	doc := listDoc{Name: s.bucket, Prefix: prefix, MaxKeys: maxKeys}
	for _, k := range keys {
		if len(doc.Contents) == maxKeys {
			doc.IsTruncated = true
			doc.NextContinuationToken = doc.Contents[len(doc.Contents)-1].Key
			break
		}
		o := s.objects[k]
		doc.Contents = append(doc.Contents, listEntry{Key: k, ETag: o.etag, Size: len(o.data)})
	}
	doc.KeyCount = len(doc.Contents)
	s.lists++
	s.mu.Unlock()
	out, err := xml.Marshal(doc)
	if err != nil {
		errorXML(w, http.StatusInternalServerError, "InternalError", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write([]byte(xml.Header)) //nolint:errcheck
	w.Write(out)                //nolint:errcheck
}
