package objstore

import (
	"context"
	"errors"
	"testing"

	"progqoi/internal/storage"
)

func TestSplitRef(t *testing.T) {
	cases := []struct {
		ref          string
		bucket, path string
		wantErr      bool
	}{
		{"s3://bucket", "bucket", "", false},
		{"s3://bucket/", "bucket", "", false},
		{"s3://bucket/prefix", "bucket", "prefix", false},
		{"s3://bucket/a/b/c/", "bucket", "a/b/c", false},
		{"s3://", "", "", true},                   // missing bucket
		{"s3:///prefix", "", "", true},            // missing bucket, path only
		{"http://bucket/p", "", "", true},         // wrong scheme
		{"bucket/prefix", "", "", true},           // no scheme
		{"s3://bucket/p?version=2", "", "", true}, // query
		{"s3://bucket/p#frag", "", "", true},      // fragment
	}
	for _, tc := range cases {
		bucket, path, err := SplitRef(tc.ref)
		if tc.wantErr {
			if !errors.Is(err, ErrBadStoreURL) {
				t.Errorf("SplitRef(%q): err = %v, want ErrBadStoreURL", tc.ref, err)
			}
			continue
		}
		if err != nil || bucket != tc.bucket || path != tc.path {
			t.Errorf("SplitRef(%q) = (%q, %q, %v), want (%q, %q)", tc.ref, bucket, path, err, tc.bucket, tc.path)
		}
	}
}

func TestResolveStore(t *testing.T) {
	dir := t.TempDir()

	// Bare paths and file:// URLs resolve to directory stores.
	for _, ref := range []string{dir, "file://" + dir} {
		st, err := ResolveStore(ref, Options{})
		if err != nil {
			t.Fatalf("ResolveStore(%q): %v", ref, err)
		}
		if _, ok := st.(*storage.DirStore); !ok {
			t.Fatalf("ResolveStore(%q) = %T, want *storage.DirStore", ref, st)
		}
	}

	// s3:// with an endpoint resolves to an object store carrying the
	// reference's bucket and prefix.
	st, err := ResolveStore("s3://bkt/some/prefix", Options{Endpoint: "http://localhost:1"})
	if err != nil {
		t.Fatalf("ResolveStore(s3): %v", err)
	}
	os, ok := st.(*Store)
	if !ok {
		t.Fatalf("ResolveStore(s3) = %T, want *Store", st)
	}
	if os.opts.Bucket != "bkt" || os.opts.Prefix != "some/prefix" {
		t.Fatalf("resolved bucket/prefix = %q/%q", os.opts.Bucket, os.opts.Prefix)
	}
	if _, ok := st.(storage.RangeReader); !ok {
		t.Fatal("resolved s3 store does not implement storage.RangeReader")
	}

	// Failure shapes all wrap ErrBadStoreURL so a daemon can classify them.
	bad := []struct {
		name string
		ref  string
		opt  Options
	}{
		{"empty reference", "", Options{}},
		{"s3 without endpoint", "s3://bkt/p", Options{}},
		{"s3 missing bucket", "s3://", Options{Endpoint: "http://localhost:1"}},
		{"s3 with query", "s3://bkt/p?x=1", Options{Endpoint: "http://localhost:1"}},
		{"bad endpoint", "s3://bkt/p", Options{Endpoint: "not a url"}},
		{"unsupported scheme", "gs://bkt/p", Options{}},
		{"empty file URL", "file://", Options{}},
	}
	for _, tc := range bad {
		if _, err := ResolveStore(tc.ref, tc.opt); !errors.Is(err, ErrBadStoreURL) {
			t.Errorf("%s: ResolveStore(%q) err = %v, want ErrBadStoreURL", tc.name, tc.ref, err)
		}
	}
}

func TestEnvOptions(t *testing.T) {
	t.Setenv(EnvEndpoint, "http://minio.local:9000")
	t.Setenv(EnvAccessKey, "AK")
	t.Setenv(EnvSecretKey, "SK")
	t.Setenv(EnvRegion, "eu-west-1")
	got := EnvOptions()
	if got.Endpoint != "http://minio.local:9000" || got.AccessKey != "AK" ||
		got.SecretKey != "SK" || got.Region != "eu-west-1" {
		t.Fatalf("EnvOptions = %+v", got)
	}
}

func TestResolvedStoreRoundTrips(t *testing.T) {
	// ResolveStore output must be a working Store, not just a typed value.
	dir := t.TempDir()
	st, err := ResolveStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := st.Put(ctx, "k.manifest", []byte("v")); err != nil {
		t.Fatal(err)
	}
	b, err := st.Get(ctx, "k.manifest")
	if err != nil || string(b) != "v" {
		t.Fatalf("round trip = %q, %v", b, err)
	}
}
