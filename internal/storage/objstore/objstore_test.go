package objstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"progqoi/internal/obs"
	"progqoi/internal/storage"
	"progqoi/internal/storage/objstore/miniobj"
)

// Every test runs with SigV4 credentials configured unless it says
// otherwise, so the client's signer and miniobj's independently written
// verifier cross-check each other on every request.

const (
	testBucket = "archives"
	testAccess = "AKIDTEST"
	testSecret = "sekrit/with+chars"
)

// newPair starts a credentialed mock bucket and a store pointed at it.
// mutate can adjust Options before New (nil for defaults).
func newPair(t *testing.T, mutate func(*Options)) (*miniobj.Server, *Store) {
	t.Helper()
	srv := miniobj.New(testBucket, miniobj.Credentials{AccessKey: testAccess, SecretKey: testSecret})
	t.Cleanup(srv.Close)
	opts := Options{
		Endpoint:     srv.URL(),
		Bucket:       testBucket,
		AccessKey:    testAccess,
		SecretKey:    testSecret,
		RetryBackoff: time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	st, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, st
}

func TestNewValidates(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"empty endpoint", Options{Bucket: "b"}},
		{"relative endpoint", Options{Endpoint: "localhost:9000", Bucket: "b"}},
		{"wrong scheme", Options{Endpoint: "ftp://host", Bucket: "b"}},
		{"missing bucket", Options{Endpoint: "http://h"}},
		{"slash in bucket", Options{Endpoint: "http://h", Bucket: "a/b"}},
		{"query char in bucket", Options{Endpoint: "http://h", Bucket: "b?x"}},
		{"half credentials", Options{Endpoint: "http://h", Bucket: "b", AccessKey: "k"}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.opts)
		}
	}
	st, err := New(Options{Endpoint: "http://h", Bucket: "b"})
	if err != nil {
		t.Fatalf("valid opts rejected: %v", err)
	}
	if st.opts.Region != "us-east-1" || st.opts.MaxRetries != DefaultMaxRetries ||
		st.opts.CacheBytes != DefaultCacheBytes || st.opts.RetryBackoff != DefaultRetryBackoff {
		t.Errorf("defaults not applied: %+v", st.opts)
	}
	if st, _ := New(Options{Endpoint: "http://h", Bucket: "b", MaxRetries: -1, CacheBytes: -1}); st.opts.MaxRetries != 0 || st.opts.CacheBytes != 0 {
		t.Errorf("negative MaxRetries/CacheBytes should disable, got %+v", st.opts)
	}
}

func TestRoundTripSigned(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.Prefix = "team data/v1" })
	ctx := context.Background()
	payload := bytes.Repeat([]byte("0123456789abcdef"), 64)
	if err := st.Put(ctx, "ds.manifest", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := srv.Keys(); len(got) != 1 || got[0] != "team data/v1/ds.manifest" {
		t.Fatalf("bucket keys = %v, want the prefixed object", got)
	}
	b, err := st.Get(ctx, "ds.manifest")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(b, payload) {
		t.Fatalf("Get returned %d bytes, want %d", len(b), len(payload))
	}
	keys, err := st.Keys(ctx)
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 1 || keys[0] != "ds.manifest" {
		t.Fatalf("Keys = %v, want [ds.manifest]", keys)
	}
}

func TestSignatureRejected(t *testing.T) {
	_, st := newPair(t, func(o *Options) { o.SecretKey = "wrong-secret" })
	if _, err := st.Get(context.Background(), "k"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("bad secret: got %v, want ErrAccessDenied", err)
	}
}

func TestUnsignedAgainstOpenBucket(t *testing.T) {
	srv := miniobj.New(testBucket, miniobj.Credentials{})
	defer srv.Close()
	srv.Put("k", []byte("public"))
	st, err := New(Options{Endpoint: srv.URL(), Bucket: testBucket})
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Get(context.Background(), "k")
	if err != nil || string(b) != "public" {
		t.Fatalf("unsigned Get = %q, %v", b, err)
	}
}

func TestGetRangeExact(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.CacheBytes = -1 })
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	srv.Put("blob", data)
	ctx := context.Background()
	for _, r := range []struct{ off, n int64 }{{0, 1}, {17, 100}, {4000, 96}, {0, 4096}} {
		got, err := st.GetRange(ctx, "blob", r.off, r.n)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", r.off, r.n, err)
		}
		if !bytes.Equal(got, data[r.off:r.off+r.n]) {
			t.Fatalf("GetRange(%d,%d) returned wrong bytes", r.off, r.n)
		}
	}
	// Zero-length ranges answer locally.
	gets0, _, _, _ := srv.Stats()
	if got, err := st.GetRange(ctx, "blob", 10, 0); err != nil || len(got) != 0 {
		t.Fatalf("zero-length range = %v, %v", got, err)
	}
	if gets, _, _, _ := srv.Stats(); gets != gets0 {
		t.Fatalf("zero-length range hit the wire")
	}
	// Negative ranges are rejected locally.
	if _, err := st.GetRange(ctx, "blob", -1, 4); err == nil {
		t.Fatal("negative offset accepted")
	}
	// Ranges past the object fail (416 from the server).
	if _, err := st.GetRange(ctx, "blob", 5000, 4); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
}

func TestRetryTransient(t *testing.T) {
	srv, st := newPair(t, nil)
	srv.Put("k", []byte("value"))
	ctx := context.Background()

	srv.Fail503(2) // within the default budget of 3
	if b, err := st.Get(ctx, "k"); err != nil || string(b) != "value" {
		t.Fatalf("Get after 2x503 = %q, %v", b, err)
	}

	srv.TruncateNext(1)
	if b, err := st.GetRange(ctx, "k", 0, 5); err != nil || string(b) != "value" {
		t.Fatalf("GetRange after truncation = %q, %v", b, err)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.MaxRetries = 2; o.CacheBytes = -1 })
	srv.Put("k", []byte("value"))
	srv.Fail503(10)
	_, err := st.Get(context.Background(), "k")
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 503 {
		t.Fatalf("got %v, want StatusError 503", err)
	}
}

func TestPermanentFailuresDoNotRetry(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.CacheBytes = -1 })
	srv.Put("k", []byte("value"))
	ctx := context.Background()

	if _, err := st.Get(ctx, "missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing key: got %v, want storage.ErrNotFound", err)
	}

	srv.Deny403(true)
	_, _, _, denied0 := srv.Stats()
	if _, err := st.Get(ctx, "k"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("denied: got %v, want ErrAccessDenied", err)
	}
	if _, _, _, denied := srv.Stats(); denied != denied0+1 {
		t.Fatalf("403 was retried: %d denials for one Get", denied-denied0)
	}
}

func TestETagPinning(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.CacheBytes = -1 })
	srv.Put("k", []byte("incarnation-one"))
	ctx := context.Background()
	if _, err := st.Get(ctx, "k"); err != nil {
		t.Fatalf("first Get: %v", err)
	}
	// Same bytes, same ETag: later reads keep working.
	if _, err := st.GetRange(ctx, "k", 0, 4); err != nil {
		t.Fatalf("ranged read under pin: %v", err)
	}
	// Republish behind the store's back: every read must now fail — no
	// retry, no stale bytes.
	srv.Mutate("k", []byte("incarnation-TWO"))
	if _, err := st.Get(ctx, "k"); !errors.Is(err, ErrETagChanged) {
		t.Fatalf("full read after mutate: got %v, want ErrETagChanged", err)
	}
	if _, err := st.GetRange(ctx, "k", 0, 4); !errors.Is(err, ErrETagChanged) {
		t.Fatalf("ranged read after mutate: got %v, want ErrETagChanged", err)
	}
	// A Put through this store re-pins: reads recover on the new bytes.
	if err := st.Put(ctx, "k", []byte("incarnation-three")); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	b, err := st.Get(ctx, "k")
	if err != nil || string(b) != "incarnation-three" {
		t.Fatalf("Get after re-Put = %q, %v", b, err)
	}
}

func TestCacheServesRepeatsAndSlicesFullObjects(t *testing.T) {
	srv, st := newPair(t, nil)
	data := bytes.Repeat([]byte("x"), 1000)
	srv.Put("k", data)
	ctx := context.Background()

	if _, err := st.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	// A range of a cached full object is sliced locally, not fetched.
	if b, err := st.GetRange(ctx, "k", 10, 20); err != nil || len(b) != 20 {
		t.Fatalf("sliced range = %d bytes, %v", len(b), err)
	}
	gets, _, _, _ := srv.Stats()
	if gets != 1 {
		t.Fatalf("3 reads cost %d wire GETs, want 1", gets)
	}
	if _, _, hits, _, _ := st.CacheStats(); hits < 1 {
		t.Fatalf("cache hits = %d, want >= 1", hits)
	}
	st2 := st.FetchStats()
	if st2.ColdFetches != 1 || st2.ColdFetchBytes != 1000 {
		t.Fatalf("FetchStats = %+v, want 1 fetch / 1000 bytes", st2)
	}

	// Put drops both cache shapes for the key.
	if err := st.Put(ctx, "k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	b, err := st.Get(ctx, "k")
	if err != nil || string(b) != "fresh" {
		t.Fatalf("Get after Put = %q, %v (stale cache?)", b, err)
	}
}

func TestCacheEviction(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.CacheBytes = 2048 })
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		srv.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 1024))
	}
	for i := 0; i < 4; i++ {
		if _, err := st.Get(ctx, fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	size, entries, _, _, evictions := st.CacheStats()
	if size > 2048 || entries > 2 {
		t.Fatalf("cache over budget: %d bytes in %d entries", size, entries)
	}
	if evictions < 2 {
		t.Fatalf("evictions = %d, want >= 2", evictions)
	}
	// Oversized values bypass the cache entirely.
	srv.Put("big", bytes.Repeat([]byte("b"), 4096))
	if _, err := st.Get(ctx, "big"); err != nil {
		t.Fatal(err)
	}
	if size, _, _, _, _ := st.CacheStats(); size > 2048 {
		t.Fatalf("oversized value cached: %d bytes", size)
	}
}

func TestColdFetchSpansReconcile(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.CacheBytes = -1 })
	srv.Put("a", bytes.Repeat([]byte("a"), 100))
	srv.Put("b", bytes.Repeat([]byte("b"), 300))
	tr := obs.NewTrace()
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, err := st.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetRange(ctx, "b", 50, 200); err != nil {
		t.Fatal(err)
	}
	var spanBytes int64
	var spans int
	for _, sp := range tr.Spans() {
		if sp.Cat == obs.CatStore {
			spanBytes += sp.Bytes
			spans++
		}
	}
	fs := st.FetchStats()
	if spans != 2 || spanBytes != fs.ColdFetchBytes || fs.ColdFetchBytes != 300 {
		t.Fatalf("spans=%d spanBytes=%d stats=%+v; want 2 spans summing to the cold-fetch counter (300)",
			spans, spanBytes, fs)
	}
	if fs.ColdFetchSeconds <= 0 {
		t.Fatalf("ColdFetchSeconds = %v, want > 0", fs.ColdFetchSeconds)
	}
}

func TestFallbackTraceOption(t *testing.T) {
	tr := obs.NewTrace()
	srv, st := newPair(t, func(o *Options) { o.Trace = tr; o.CacheBytes = -1 })
	srv.Put("k", []byte("bytes"))
	// Context carries no trace: the store's own Trace records the span.
	if _, err := st.Get(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Cat != obs.CatStore || spans[0].Bytes != 5 {
		t.Fatalf("fallback trace spans = %+v", spans)
	}
}

func TestKeysPaginationAndNesting(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.Prefix = "p" })
	for i := 0; i < 7; i++ {
		srv.Put(fmt.Sprintf("p/ds%d.manifest", i), []byte("m"))
	}
	srv.Put("p/nested/skip.var", []byte("x")) // pseudo-directory: not a flat archive key
	srv.Put("outside.manifest", []byte("x"))  // other prefix: invisible
	srv.SetMaxKeys(2)                         // force 4+ pages
	keys, err := st.Keys(context.Background())
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 7 {
		t.Fatalf("Keys = %v, want the 7 flat p/ keys", keys)
	}
	for i, k := range keys {
		if want := fmt.Sprintf("ds%d.manifest", i); k != want {
			t.Fatalf("keys[%d] = %q, want %q", i, k, want)
		}
	}
	_, lists, _, _ := srv.Stats()
	if lists < 4 {
		t.Fatalf("%d list pages served, want >= 4 (pagination not exercised)", lists)
	}
}

func TestContextCancellationStopsRetry(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.RetryBackoff = time.Hour })
	srv.Put("k", []byte("v"))
	srv.Fail503(10)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := st.Get(ctx, "k")
	if err == nil {
		t.Fatal("Get succeeded under permanent 503")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded in chain", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation did not interrupt backoff (took %v)", time.Since(start))
	}
}

func TestSlowStoreHonorsDeadline(t *testing.T) {
	srv, st := newPair(t, func(o *Options) { o.MaxRetries = -1 })
	srv.Put("k", []byte("v"))
	srv.SetDelay(2 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := st.Get(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow store: got %v, want deadline exceeded", err)
	}
}

func TestSpecialCharacterKeysSignCorrectly(t *testing.T) {
	// Keys with spaces, '+', '=' and unicode must survive the
	// sign-encode / verify-decode round trip byte-identically.
	srv, st := newPair(t, func(o *Options) { o.Prefix = "pre fix" })
	ctx := context.Background()
	for _, key := range []string{"a b.var", "plus+plus", "eq=sign", "tilde~ok", "unié.var"} {
		want := []byte("payload for " + key)
		if err := st.Put(ctx, key, want); err != nil {
			t.Fatalf("Put %q: %v", key, err)
		}
		got, err := st.Get(ctx, key)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get %q = %q, %v", key, got, err)
		}
	}
	_ = srv
}

func TestStatusErrorMessage(t *testing.T) {
	e := &StatusError{Op: "range", Key: "ds.v.var", Status: 502}
	if msg := e.Error(); !strings.Contains(msg, "range") || !strings.Contains(msg, "502") {
		t.Fatalf("StatusError message %q", msg)
	}
}
