package objstore

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"strings"

	"progqoi/internal/storage"
)

// resolve.go maps store references onto storage.Store implementations, so
// every entry point that accepts "a place archives live" — progqoid
// -store, progqoi pack -store, progqoi.Open — speaks one scheme-dispatched
// grammar instead of growing parallel constructors:
//
//	s3://bucket[/prefix]   object-store bucket (endpoint + credentials
//	                       from Options, typically flags or PROGQOI_S3_*)
//	file:///dir, file://dir, bare path
//	                       local directory (storage.DirStore)
//
// Malformed references fail with errors wrapping ErrBadStoreURL, so a
// daemon can turn any of them into one clean startup diagnostic.

// ErrBadStoreURL reports a store reference that cannot be resolved: an
// unsupported scheme, a missing bucket, or an s3 reference without a
// configured endpoint. Test with errors.Is.
var ErrBadStoreURL = errors.New("objstore: bad store URL")

// Env variable names consulted by EnvOptions — the non-argv channel for
// credentials (secrets on a command line leak through process listings).
const (
	EnvEndpoint  = "PROGQOI_S3_ENDPOINT"
	EnvAccessKey = "PROGQOI_S3_ACCESS_KEY"
	EnvSecretKey = "PROGQOI_S3_SECRET_KEY"
	EnvRegion    = "PROGQOI_S3_REGION"
)

// EnvOptions reads the PROGQOI_S3_* environment variables into an Options
// skeleton (endpoint, credentials, region). Callers overlay explicit
// settings on top; Bucket and Prefix always come from the reference.
func EnvOptions() Options {
	return Options{
		Endpoint:  os.Getenv(EnvEndpoint),
		AccessKey: os.Getenv(EnvAccessKey),
		SecretKey: os.Getenv(EnvSecretKey),
		Region:    os.Getenv(EnvRegion),
	}
}

// SplitRef parses an s3://bucket[/path] reference into its bucket and
// slash-trimmed path ("" for the bucket root). Errors wrap ErrBadStoreURL.
func SplitRef(ref string) (bucket, path string, err error) {
	u, err := url.Parse(ref)
	if err != nil {
		return "", "", fmt.Errorf("%w: %q: %v", ErrBadStoreURL, ref, err)
	}
	if u.Scheme != "s3" {
		return "", "", fmt.Errorf("%w: %q: scheme %q is not s3", ErrBadStoreURL, ref, u.Scheme)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("%w: %q: missing bucket", ErrBadStoreURL, ref)
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", "", fmt.Errorf("%w: %q: query or fragment not allowed", ErrBadStoreURL, ref)
	}
	return u.Host, strings.Trim(u.Path, "/"), nil
}

// ResolveStore maps a store reference onto a live storage.Store:
//
//   - s3://bucket[/prefix] becomes an object-store *Store; opt supplies
//     everything but Bucket and Prefix, and must carry an Endpoint.
//   - file:///dir, file://dir and bare filesystem paths become a
//     *storage.DirStore.
//
// Any other scheme fails with ErrBadStoreURL. Resolution is offline — an
// unreachable endpoint surfaces on the first request (probe with Keys).
func ResolveStore(ref string, opt Options) (storage.Store, error) {
	if ref == "" {
		return nil, fmt.Errorf("%w: empty reference", ErrBadStoreURL)
	}
	switch {
	case strings.HasPrefix(ref, "s3://"):
		bucket, prefix, err := SplitRef(ref)
		if err != nil {
			return nil, err
		}
		if opt.Endpoint == "" {
			return nil, fmt.Errorf("%w: %q: s3 needs an endpoint (set %s or the endpoint flag)",
				ErrBadStoreURL, ref, EnvEndpoint)
		}
		opt.Bucket, opt.Prefix = bucket, prefix
		st, err := New(opt)
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadStoreURL, ref, err)
		}
		return st, nil
	case strings.HasPrefix(ref, "file://"):
		dir := strings.TrimPrefix(ref, "file://")
		if dir == "" {
			return nil, fmt.Errorf("%w: %q: missing directory", ErrBadStoreURL, ref)
		}
		return storage.NewDirStore(dir)
	case strings.Contains(ref, "://"):
		return nil, fmt.Errorf("%w: %q: unsupported scheme (want s3://, file:// or a bare path)", ErrBadStoreURL, ref)
	default:
		return storage.NewDirStore(ref)
	}
}
