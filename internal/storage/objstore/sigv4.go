package objstore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// sigv4.go implements the subset of AWS Signature Version 4 the object
// store speaks: path-style requests, header signing (no presigned URLs,
// no chunked uploads), the "s3" service. The mock server re-derives the
// signature from the request it receives, so the signer and verifier
// exercise each other — a canonicalization bug fails the test suite
// rather than producing requests only a lenient server accepts.

// amzDateFormat is SigV4's timestamp layout (ISO8601 basic, UTC).
const amzDateFormat = "20060102T150405Z"

// emptyPayloadSHA256 is the hex SHA-256 of zero bytes, precomputed
// because every GET carries it as x-amz-content-sha256.
const emptyPayloadSHA256 = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"

// signedHeaderSet is the allowlist of headers the signer binds into the
// signature when present. host, x-amz-content-sha256 and x-amz-date are
// always present; the conditional headers protect the ranged-read
// staleness contract — a proxy cannot strip If-Match without breaking
// the signature.
var signedHeaderSet = []string{
	"host",
	"if-match",
	"if-none-match",
	"range",
	"x-amz-content-sha256",
	"x-amz-date",
}

// signRequest signs req in place: sets x-amz-date and
// x-amz-content-sha256 (payloadHash, emptyPayloadSHA256 for bodyless
// requests) and the Authorization header. now is injectable for tests.
func signRequest(req *http.Request, accessKey, secretKey, region string, payloadHash string, now time.Time) {
	amzDate := now.UTC().Format(amzDateFormat)
	date := amzDate[:8]
	req.Header.Set("x-amz-date", amzDate)
	req.Header.Set("x-amz-content-sha256", payloadHash)

	canonical, signedHeaders := canonicalRequest(req, payloadHash)
	scope := date + "/" + region + "/s3/aws4_request"
	toSign := "AWS4-HMAC-SHA256\n" + amzDate + "\n" + scope + "\n" + hexSHA256([]byte(canonical))
	sig := hex.EncodeToString(hmacSHA256(signingKey(secretKey, date, region), []byte(toSign)))
	req.Header.Set("Authorization",
		"AWS4-HMAC-SHA256 Credential="+accessKey+"/"+scope+
			", SignedHeaders="+signedHeaders+
			", Signature="+sig)
}

// canonicalRequest builds the SigV4 canonical request string and the
// semicolon-joined signed-header list for req.
func canonicalRequest(req *http.Request, payloadHash string) (canonical, signedHeaders string) {
	var names []string
	var lines []string
	for _, h := range signedHeaderSet {
		var v string
		if h == "host" {
			v = req.Host
			if v == "" {
				v = req.URL.Host
			}
		} else {
			v = req.Header.Get(h)
		}
		if v == "" {
			continue
		}
		names = append(names, h)
		lines = append(lines, h+":"+strings.TrimSpace(v))
	}
	signedHeaders = strings.Join(names, ";")
	canonical = req.Method + "\n" +
		canonicalURI(req.URL) + "\n" +
		canonicalQuery(req.URL) + "\n" +
		strings.Join(lines, "\n") + "\n\n" +
		signedHeaders + "\n" +
		payloadHash
	return canonical, signedHeaders
}

// canonicalURI is the aws-encoded path, slashes preserved.
func canonicalURI(u *url.URL) string {
	p := u.EscapedPath()
	if p == "" {
		return "/"
	}
	// Re-encode strictly: decode, then aws-encode keeping slashes.
	if dec, err := url.PathUnescape(p); err == nil {
		return awsEncode(dec, false)
	}
	return p
}

// canonicalQuery sorts the query parameters by name and aws-encodes
// both names and values (slash included).
func canonicalQuery(u *url.URL) string {
	q := u.Query()
	names := make([]string, 0, len(q))
	for k := range q {
		names = append(names, k)
	}
	sort.Strings(names)
	var parts []string
	for _, k := range names {
		vals := append([]string(nil), q[k]...)
		sort.Strings(vals)
		for _, v := range vals {
			parts = append(parts, awsEncode(k, true)+"="+awsEncode(v, true))
		}
	}
	return strings.Join(parts, "&")
}

// awsEncode is SigV4's URI encoding: unreserved characters pass through,
// everything else becomes %XX (uppercase hex); encodeSlash controls '/'.
func awsEncode(s string, encodeSlash bool) string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == '~':
			b.WriteByte(c)
		case c == '/' && !encodeSlash:
			b.WriteByte(c)
		default:
			b.WriteByte('%')
			b.WriteByte(hexDigits[c>>4])
			b.WriteByte(hexDigits[c&0xf])
		}
	}
	return b.String()
}

// signingKey derives the per-day SigV4 key via the HMAC chain.
func signingKey(secretKey, date, region string) []byte {
	k := hmacSHA256([]byte("AWS4"+secretKey), []byte(date))
	k = hmacSHA256(k, []byte(region))
	k = hmacSHA256(k, []byte("s3"))
	return hmacSHA256(k, []byte("aws4_request"))
}

func hmacSHA256(key, msg []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(msg)
	return h.Sum(nil)
}

func hexSHA256(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
