// Package objstore is the S3-compatible object-store backend of the
// storage layer: a storage.Store + storage.RangeReader that maps archive
// reads onto authenticated HTTP requests against a bucket, so a progqoid
// node can serve a dataset it holds zero local bytes of. The paper's
// workflow writes refactored fragments to "a storage system" at
// data-generation time; this package makes that system a bucket and the
// serving tier a replaceable cache in front of it.
//
// The read path is built around three invariants:
//
//   - Partial reads are real ranged GETs (`Range: bytes=off-end`): a
//     fragment fetch moves exactly the fragment's bytes, never the
//     variable blob around it.
//
//   - No stale bytes, ever: the first read of an object records its
//     ETag; every later read sends it as If-Match and re-verifies the
//     response header, so an object republished mid-session surfaces as
//     ErrETagChanged instead of a silent mix of old and new fragments —
//     the bucket-facing mirror of the server's hot-cache corruption
//     check.
//
//   - Transient faults are absorbed, permanent ones surface fast:
//     5xx responses, network errors and truncated bodies retry with
//     exponential backoff up to Options.MaxRetries; 403 and 404 fail
//     immediately with typed errors (storage.ErrNotFound,
//     ErrAccessDenied) a caller can dispatch on.
//
// A byte-bounded read-through LRU (Options.CacheBytes) sits in front of
// the wire; cold fetches — the reads that actually reached the bucket —
// are counted in FetchStats and recorded as obs.CatStore spans, so
// summed span bytes reconcile exactly with the cold-fetch counter a
// /metrics scrape reports.
//
// Requests are signed with AWS Signature V4 (see sigv4.go) when
// credentials are configured; the hermetic mock server in the miniobj
// subpackage verifies those signatures by re-deriving them.
package objstore

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progqoi/internal/obs"
	"progqoi/internal/storage"
)

// DefaultCacheBytes bounds the read-through cache when Options.CacheBytes
// is zero.
const DefaultCacheBytes = 64 << 20

// DefaultMaxRetries is the retry budget for transient faults when
// Options.MaxRetries is zero.
const DefaultMaxRetries = 3

// DefaultRetryBackoff is the initial backoff when Options.RetryBackoff is
// zero; it doubles per attempt.
const DefaultRetryBackoff = 50 * time.Millisecond

// ErrETagChanged reports an object whose ETag no longer matches the one
// recorded when this store first read it: the bucket was republished
// mid-session, and serving any bytes from the new incarnation alongside
// metadata from the old one would be silent corruption.
var ErrETagChanged = errors.New("objstore: object changed mid-session (etag mismatch)")

// ErrAccessDenied reports a 403 from the object store — wrong or expired
// credentials, or a bucket policy rejecting the request.
var ErrAccessDenied = errors.New("objstore: access denied")

// StatusError is an unexpected HTTP status from the object store,
// preserved so callers can distinguish transient (5xx, retried before
// surfacing) from permanent failures.
type StatusError struct {
	Op     string // "get", "range", "list", "put"
	Key    string // object key ("" for list)
	Status int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("objstore: %s %q: http %d", e.Op, e.Key, e.Status)
}

// Options configures a Store. Endpoint and Bucket are required.
type Options struct {
	// Endpoint is the object store's base URL (http(s)://host[:port]).
	// Requests are path-style: <endpoint>/<bucket>/<key>.
	Endpoint string
	// Bucket is the bucket holding the archives.
	Bucket string
	// Prefix scopes all keys under a directory-like prefix within the
	// bucket ("" for the bucket root). Leading/trailing slashes are
	// ignored.
	Prefix string
	// Region is the SigV4 signing region (default "us-east-1").
	Region string
	// AccessKey and SecretKey enable SigV4 request signing. Both empty
	// sends unsigned requests (public buckets, signature-less mocks).
	AccessKey string
	SecretKey string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds retries of transient faults per logical read
	// (default DefaultMaxRetries; negative disables retrying).
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// (default DefaultRetryBackoff).
	RetryBackoff time.Duration
	// CacheBytes bounds the read-through cache (default
	// DefaultCacheBytes; negative disables caching).
	CacheBytes int64
	// Trace, when set, records obs.CatStore spans for cold fetches whose
	// context carries no trace of its own — how a serving daemon keeps
	// store-fetch spans without threading a client trace through HTTP
	// handlers.
	Trace *obs.Trace
}

// Store is an S3-compatible storage.Store. It implements
// storage.RangeReader (ranged GETs) and storage.FetchStatser (cold-fetch
// accounting) and is safe for concurrent use.
type Store struct {
	opts  Options
	base  string // endpoint, no trailing slash
	hc    *http.Client
	creds bool

	mu    sync.Mutex
	etags map[string]string // guarded by mu; object key -> ETag recorded at first read

	cache *byteCache

	coldFetches atomic.Int64
	coldBytes   atomic.Int64
	coldNanos   atomic.Int64
}

// New validates opts and returns a Store. No request is sent: a
// misconfigured endpoint surfaces on first use (progqoid probes
// explicitly at startup via Keys).
func New(opts Options) (*Store, error) {
	u, err := url.Parse(opts.Endpoint)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("objstore: endpoint %q is not an absolute http(s) URL", opts.Endpoint)
	}
	if opts.Bucket == "" {
		return nil, fmt.Errorf("objstore: bucket is required")
	}
	if strings.ContainsAny(opts.Bucket, "/?#") {
		return nil, fmt.Errorf("objstore: bucket %q contains path or query characters", opts.Bucket)
	}
	if (opts.AccessKey == "") != (opts.SecretKey == "") {
		return nil, fmt.Errorf("objstore: access key and secret key must be set together")
	}
	if opts.Region == "" {
		opts.Region = "us-east-1"
	}
	opts.Prefix = strings.Trim(opts.Prefix, "/")
	if opts.MaxRetries == 0 {
		opts.MaxRetries = DefaultMaxRetries
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = DefaultCacheBytes
	} else if opts.CacheBytes < 0 {
		opts.CacheBytes = 0
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Store{
		opts:  opts,
		base:  strings.TrimRight(opts.Endpoint, "/"),
		hc:    hc,
		creds: opts.AccessKey != "",
		etags: map[string]string{},
		cache: newByteCache(opts.CacheBytes),
	}, nil
}

// objectKey maps a store key to its key inside the bucket.
func (s *Store) objectKey(key string) string {
	if s.opts.Prefix == "" {
		return key
	}
	return s.opts.Prefix + "/" + key
}

// FetchStats implements storage.FetchStatser.
func (s *Store) FetchStats() storage.FetchStats {
	return storage.FetchStats{
		ColdFetches:      s.coldFetches.Load(),
		ColdFetchBytes:   s.coldBytes.Load(),
		ColdFetchSeconds: float64(s.coldNanos.Load()) / 1e9,
	}
}

// CacheStats reports the read-through cache counters.
func (s *Store) CacheStats() (bytes int64, entries int, hits, misses, evictions int64) {
	return s.cache.stats()
}

// Get implements storage.Store: one full-object GET through the
// read-through cache, ETag-pinned like every read.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ck := "g\x00" + key
	if b, ok := s.cache.get(ck); ok {
		return b, nil
	}
	b, err := s.fetch(ctx, "get", key, -1, -1)
	if err != nil {
		return nil, err
	}
	s.cache.add(ck, b)
	return b, nil
}

// GetRange implements storage.RangeReader: one `Range: bytes=off-end`
// GET through the read-through cache, returning exactly length bytes.
func (s *Store) GetRange(ctx context.Context, key string, off, length int64) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("objstore: negative range [%d,%d) for %q", off, off+length, key)
	}
	if length == 0 {
		return []byte{}, nil
	}
	ck := "r\x00" + key + "\x00" + strconv.FormatInt(off, 10) + "\x00" + strconv.FormatInt(length, 10)
	if b, ok := s.cache.get(ck); ok {
		return b, nil
	}
	// A cached full object covers every range of itself: slice instead of
	// re-fetching bytes already resident (objects are immutable once read —
	// the ETag pin guarantees it — so the shared backing array is safe).
	if full, ok := s.cache.get("g\x00" + key); ok && off+length <= int64(len(full)) {
		return full[off : off+length], nil
	}
	b, err := s.fetch(ctx, "range", key, off, length)
	if err != nil {
		return nil, err
	}
	s.cache.add(ck, b)
	return b, nil
}

// fetch performs one logical object read (full when length < 0) with
// retry, ETag pinning, cold-fetch accounting and a CatStore span whose
// Bytes equal exactly the payload this fetch added to the cold counter.
func (s *Store) fetch(ctx context.Context, op, key string, off, length int64) ([]byte, error) {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		tr = s.opts.Trace
	}
	var m obs.SpanMark
	if tr != nil {
		m = tr.Begin(obs.CatStore, op+" "+key)
	}
	start := time.Now()
	b, err := s.retrying(ctx, op, key, func(ctx context.Context) ([]byte, error) {
		return s.getOnce(ctx, op, key, off, length)
	})
	if err != nil {
		m.End()
		return nil, err
	}
	s.coldFetches.Add(1)
	s.coldBytes.Add(int64(len(b)))
	s.coldNanos.Add(time.Since(start).Nanoseconds())
	m.EndBytes(int64(len(b)))
	return b, nil
}

// getOnce is a single GET attempt. length < 0 reads the whole object;
// otherwise a Range header asks for [off, off+length).
func (s *Store) getOnce(ctx context.Context, op, key string, off, length int64) ([]byte, error) {
	okey := s.objectKey(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		s.base+"/"+s.opts.Bucket+"/"+awsEncode(okey, false), nil)
	if err != nil {
		return nil, err
	}
	ranged := length >= 0
	if ranged {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	}
	s.mu.Lock()
	pinned := s.etags[okey]
	s.mu.Unlock()
	if pinned != "" {
		req.Header.Set("If-Match", pinned)
	}
	s.sign(req, emptyPayloadSHA256)
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only
	switch {
	case resp.StatusCode == http.StatusOK && !ranged,
		resp.StatusCode == http.StatusPartialContent && ranged:
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("%w: %q", storage.ErrNotFound, key)
	case resp.StatusCode == http.StatusForbidden:
		return nil, fmt.Errorf("%w: %s %q", ErrAccessDenied, op, key)
	case resp.StatusCode == http.StatusPreconditionFailed:
		return nil, fmt.Errorf("%w: %q (recorded %s)", ErrETagChanged, key, pinned)
	default:
		return nil, &StatusError{Op: op, Key: key, Status: resp.StatusCode}
	}
	if err := s.pinETag(okey, resp.Header.Get("ETag"), pinned); err != nil {
		return nil, err
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("objstore: %s %q: read body: %w", op, key, err)
	}
	if ranged && int64(len(b)) != length {
		return nil, fmt.Errorf("objstore: %s %q: truncated response: %d bytes, want %d", op, key, len(b), length)
	}
	return b, nil
}

// pinETag records an object's ETag at first read and verifies every
// later response against it — the If-Match header covers the server
// side of the contract, this covers the response side.
func (s *Store) pinETag(okey, got, pinned string) error {
	if got == "" {
		return nil // store without ETags: nothing to verify against
	}
	if pinned != "" {
		if got != pinned {
			return fmt.Errorf("%w: %q (%s != recorded %s)", ErrETagChanged, okey, got, pinned)
		}
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.etags[okey]; ok && prev != got {
		return fmt.Errorf("%w: %q (%s != recorded %s)", ErrETagChanged, okey, got, prev)
	}
	s.etags[okey] = got
	return nil
}

// Keys implements storage.Store via ListObjectsV2 with continuation
// tokens, returning the keys under the configured prefix (nested
// pseudo-directories are skipped — archive keys are flat).
func (s *Store) Keys(ctx context.Context) ([]string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prefix := s.opts.Prefix
	if prefix != "" {
		prefix += "/"
	}
	var out []string
	token := ""
	for {
		q := url.Values{}
		q.Set("list-type", "2")
		if prefix != "" {
			q.Set("prefix", prefix)
		}
		if token != "" {
			q.Set("continuation-token", token)
		}
		page, err := s.retrying(ctx, "list", "", func(ctx context.Context) ([]byte, error) {
			return s.listOnce(ctx, q)
		})
		if err != nil {
			return nil, err
		}
		var lr listResult
		if err := xml.Unmarshal(page, &lr); err != nil {
			return nil, fmt.Errorf("objstore: list: %w", err)
		}
		for _, c := range lr.Contents {
			k := strings.TrimPrefix(c.Key, prefix)
			if k == "" || strings.Contains(k, "/") {
				continue
			}
			out = append(out, k)
		}
		if !lr.IsTruncated || lr.NextContinuationToken == "" {
			break
		}
		token = lr.NextContinuationToken
	}
	sort.Strings(out)
	return out, nil
}

// listOnce is a single ListObjectsV2 page request.
func (s *Store) listOnce(ctx context.Context, q url.Values) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		s.base+"/"+s.opts.Bucket+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	s.sign(req, emptyPayloadSHA256)
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusForbidden:
		return nil, fmt.Errorf("%w: list bucket %q", ErrAccessDenied, s.opts.Bucket)
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: bucket %q", storage.ErrNotFound, s.opts.Bucket)
	default:
		return nil, &StatusError{Op: "list", Status: resp.StatusCode}
	}
	return io.ReadAll(resp.Body)
}

// listResult is the subset of the ListObjectsV2 response the store
// consumes.
type listResult struct {
	XMLName               xml.Name `xml:"ListBucketResult"`
	IsTruncated           bool     `xml:"IsTruncated"`
	NextContinuationToken string   `xml:"NextContinuationToken"`
	Contents              []struct {
		Key  string `xml:"Key"`
		ETag string `xml:"ETag"`
		Size int64  `xml:"Size"`
	} `xml:"Contents"`
}

// Put implements storage.Store with one object PUT. A successful write
// re-pins the key's ETag and drops its cached reads, so a republish
// through this store stays self-consistent.
func (s *Store) Put(ctx context.Context, key string, val []byte) error {
	if ctx == nil {
		ctx = context.Background()
	}
	okey := s.objectKey(key)
	payloadHash := hexSHA256(val)
	_, err := s.retrying(ctx, "put", key, func(ctx context.Context) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			s.base+"/"+s.opts.Bucket+"/"+awsEncode(okey, false), strings.NewReader(string(val)))
		if err != nil {
			return nil, err
		}
		req.ContentLength = int64(len(val))
		s.sign(req, payloadHash)
		resp, err := s.hc.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close() //nolint:errcheck // status-only
		switch resp.StatusCode {
		case http.StatusOK, http.StatusCreated, http.StatusNoContent:
		case http.StatusForbidden:
			return nil, fmt.Errorf("%w: put %q", ErrAccessDenied, key)
		default:
			return nil, &StatusError{Op: "put", Key: key, Status: resp.StatusCode}
		}
		s.mu.Lock()
		if tag := resp.Header.Get("ETag"); tag != "" {
			s.etags[okey] = tag
		} else {
			delete(s.etags, okey)
		}
		s.mu.Unlock()
		return nil, nil
	})
	if err != nil {
		return err
	}
	s.cache.drop("g\x00"+key, "r\x00"+key+"\x00")
	return nil
}

// sign applies SigV4 when credentials are configured.
func (s *Store) sign(req *http.Request, payloadHash string) {
	if !s.creds {
		return
	}
	signRequest(req, s.opts.AccessKey, s.opts.SecretKey, s.opts.Region, payloadHash, time.Now())
}

// retrying runs one attempt-able operation under the store's retry
// policy: transient faults (network errors, 5xx, truncation) back off
// and retry up to MaxRetries; typed permanent failures surface at once.
func (s *Store) retrying(ctx context.Context, op, key string, attempt func(context.Context) ([]byte, error)) ([]byte, error) {
	backoff := s.opts.RetryBackoff
	var err error
	for try := 0; ; try++ {
		var b []byte
		b, err = attempt(ctx)
		if err == nil {
			return b, nil
		}
		if !retryable(err) || try >= s.opts.MaxRetries {
			return nil, err
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("objstore: %s %q: %w (last error: %v)", op, key, ctx.Err(), err)
		case <-t.C:
		}
		backoff *= 2
	}
}

// retryable classifies an attempt error: 5xx statuses, truncated bodies
// and transport errors are transient; typed failures (missing key,
// denied access, changed ETag, cancellation) are permanent.
func retryable(err error) bool {
	if errors.Is(err, storage.ErrNotFound) || errors.Is(err, ErrAccessDenied) ||
		errors.Is(err, ErrETagChanged) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return true // network error, truncated body, unexpected EOF
}
