package storage

import (
	"context"
	"errors"
	"math"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
)

func testVars(t *testing.T) ([]*core.Variable, *datagen.Dataset) {
	t.Helper()
	ds := datagen.GE("GE-arch", 4, 128, 11)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vars, ds
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Get(context.Background(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := s.Put(context.Background(), "a", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(context.Background(), "a")
	if err != nil || len(v) != 2 {
		t.Fatalf("get: %v %v", v, err)
	}
	// Returned slice must be a copy.
	v[0] = 99
	v2, _ := s.Get(context.Background(), "a")
	if v2[0] != 1 {
		t.Fatal("MemStore leaked internal buffer")
	}
	keys, _ := s.Keys(context.Background())
	if len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestDirStoreBasics(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), "block-1.var", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(context.Background(), "block-1.var")
	if err != nil || string(v) != "hello" {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := s.Get(context.Background(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	keys, err := s.Keys(context.Background())
	if err != nil || len(keys) != 1 {
		t.Fatalf("keys: %v %v", keys, err)
	}
}

func TestDirStoreRejectsUnsafeKeys(t *testing.T) {
	s, _ := NewDirStore(t.TempDir())
	for _, key := range []string{"", "../evil", "a/b", ".hidden", "sp ace", string(make([]byte, 300))} {
		if err := s.Put(context.Background(), key, []byte("x")); err == nil {
			t.Errorf("key %q accepted", key)
		}
		if _, err := s.Get(context.Background(), key); err == nil {
			t.Errorf("get key %q accepted", key)
		}
	}
}

func TestArchiveRoundTripMem(t *testing.T) {
	vars, ds := testVars(t)
	st := NewMemStore()
	if err := WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(context.Background(), st, "ge")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vars) {
		t.Fatalf("got %d vars", len(got))
	}
	for i := range vars {
		if got[i].Name != vars[i].Name || got[i].Range != vars[i].Range {
			t.Fatalf("var %d metadata mismatch", i)
		}
		if (got[i].ZeroMask == nil) != (vars[i].ZeroMask == nil) {
			t.Fatalf("var %d mask presence mismatch", i)
		}
		for j := range vars[i].ZeroMask {
			if got[i].ZeroMask[j] != vars[i].ZeroMask[j] {
				t.Fatalf("var %d mask differs at %d", i, j)
			}
		}
	}
	// The reopened archive must drive a full QoI retrieval identically.
	rt, err := core.NewRetriever(got, core.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vtot := []qoi.QoI{ds.QoIs[0]}
	ranges := core.QoIRanges(vtot, ds.Fields)
	res, err := rt.Retrieve(context.Background(), core.Request{
		QoIs:       vtot,
		Tolerances: []float64{1e-4 * ranges[0]},
		InitRel:    []float64{1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	actual := core.ActualQoIErrors(vtot, ds.Fields, res.Data)
	if actual[0] > res.EstErrors[0] {
		t.Fatalf("actual %g > est %g after archive round trip", actual[0], res.EstErrors[0])
	}
}

func TestArchiveRoundTripDir(t *testing.T) {
	vars, _ := testVars(t)
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(context.Background(), st, "ge")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d vars", len(got))
	}
}

func TestArchiveDetectsCorruption(t *testing.T) {
	vars, _ := testVars(t)
	st := NewMemStore()
	if err := WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in a variable blob: the CRC must catch it.
	key := "ge.Pressure.var"
	blob, err := st.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := st.Put(context.Background(), key, blob); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArchive(context.Background(), st, "ge"); err == nil {
		t.Fatal("corruption not detected")
	}
	// Corrupt manifest too.
	st2 := NewMemStore()
	_ = WriteArchive(context.Background(), st2, "ge", vars)
	m, _ := st2.Get(context.Background(), "ge.manifest")
	m[3] ^= 0xff
	_ = st2.Put(context.Background(), "ge.manifest", m)
	if _, err := ReadArchive(context.Background(), st2, "ge"); err == nil {
		t.Fatal("manifest corruption not detected")
	}
}

func TestArchiveMissingVariableBlob(t *testing.T) {
	vars, _ := testVars(t)
	st := NewMemStore()
	if err := WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	// Simulate a lost object by re-creating the store without one blob.
	st2 := NewMemStore()
	keys, _ := st.Keys(context.Background())
	for _, k := range keys {
		if k == "ge.Density.var" {
			continue
		}
		v, _ := st.Get(context.Background(), k)
		_ = st2.Put(context.Background(), k, v)
	}
	if _, err := ReadArchive(context.Background(), st2, "ge"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestMaskPackUnpack(t *testing.T) {
	if out := packMask(nil); out != nil {
		t.Fatal("nil mask should pack to nil")
	}
	mask := []bool{true, false, true, true, false, false, false, true, true}
	packed := packMask(mask)
	got, err := unpackMask(packed, len(mask))
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if got[i] != mask[i] {
			t.Fatalf("mask differs at %d", i)
		}
	}
	if _, err := unpackMask(packed, len(mask)+1); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, err := unpackMask([]byte{1, 2}, 9); err == nil {
		t.Fatal("short mask not detected")
	}
}

func TestCRCRoundTrip(t *testing.T) {
	blob := []byte("payload with checksum")
	framed := withCRC(blob)
	got, err := checkCRC(framed)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("%q %v", got, err)
	}
	framed[0] ^= 1
	if _, err := checkCRC(framed); err == nil {
		t.Fatal("bit flip not detected")
	}
	if _, err := checkCRC([]byte{1, 2}); err == nil {
		t.Fatal("short blob not detected")
	}
}

func TestRangePreservedThroughArchive(t *testing.T) {
	vars, _ := testVars(t)
	// Ranges should be finite, positive physical values.
	for _, v := range vars {
		if !(v.Range > 0) || math.IsInf(v.Range, 0) {
			t.Fatalf("%s range %g", v.Name, v.Range)
		}
	}
}

func TestGetRange(t *testing.T) {
	mem := NewMemStore()
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Store{"mem": mem, "dir": dir} {
		t.Run(name, func(t *testing.T) {
			rr, ok := s.(RangeReader)
			if !ok {
				t.Fatalf("%T does not implement RangeReader", s)
			}
			if err := s.Put(context.Background(), "blob", []byte("0123456789")); err != nil {
				t.Fatal(err)
			}
			got, err := rr.GetRange(context.Background(), "blob", 3, 4)
			if err != nil || string(got) != "3456" {
				t.Fatalf("GetRange = %q, %v", got, err)
			}
			if _, err := rr.GetRange(context.Background(), "blob", 8, 4); err == nil {
				t.Fatal("read past end did not fail")
			}
			if _, err := rr.GetRange(context.Background(), "blob", -1, 2); err == nil {
				t.Fatal("negative offset accepted")
			}
			if _, err := rr.GetRange(context.Background(), "missing", 0, 1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing key: want ErrNotFound, got %v", err)
			}
		})
	}
	// MemStore ranges must be copies, like Get.
	got, err := mem.GetRange(context.Background(), "blob", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, _ := mem.GetRange(context.Background(), "blob", 0, 2)
	if again[0] != '0' {
		t.Fatal("MemStore.GetRange leaked internal buffer")
	}
}

func TestVariableFragmentRanges(t *testing.T) {
	vars, _ := testVars(t)
	st := NewMemStore()
	if err := WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		raw, err := st.Get(context.Background(), VarKey("ge", v.Name))
		if err != nil {
			t.Fatal(err)
		}
		ranges, err := VariableFragmentRanges(raw)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if len(ranges) != len(v.Ref.Fragments) {
			t.Fatalf("%s: %d ranges for %d fragments", v.Name, len(ranges), len(v.Ref.Fragments))
		}
		for fi, rng := range ranges {
			want := v.Ref.Fragments[fi]
			if rng.Len != int64(len(want)) {
				t.Fatalf("%s/%d: range length %d, fragment %d", v.Name, fi, rng.Len, len(want))
			}
			got := raw[rng.Off : rng.Off+rng.Len]
			if string(got) != string(want) {
				t.Fatalf("%s/%d: range payload differs from fragment", v.Name, fi)
			}
		}
	}
	// Corruption must be caught by the frame CRC before any walking.
	raw, _ := st.Get(context.Background(), VarKey("ge", vars[0].Name))
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xff
	if _, err := VariableFragmentRanges(bad); err == nil {
		t.Fatal("corrupt blob walked without error")
	}
}
