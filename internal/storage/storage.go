// Package storage provides the archive substrate of the paper's workflow
// (Fig. 1): refactored multi-precision fragments and their metadata are
// written to a storage system at data-generation time and fetched
// incrementally at analysis time.
//
// Three layers:
//
//   - Store: a fragment-addressed key-value interface with an in-memory
//     implementation (remote-cache semantics) and a directory-backed
//     implementation (one file per variable, fragments resolved by offset
//     from a validated index).
//
//   - Archive: a container bundling the refactored variables of one
//     dataset — names, grids, value ranges, zero masks, fragments — into a
//     single self-describing blob with per-section checksums, so analysis
//     code can reopen everything a producer wrote.
//
//   - Streaming ingest: ArchiveWriter flushes one variable blob at a time
//     with the manifest as the commit point, and RefactorTo drives the
//     whole refactor-and-pack pipeline in that bounded-memory mode — see
//     writer.go. The on-disk layout ("PQARCH1") is specified in FORMATS.md
//     at the repository root.
package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"progqoi/internal/core"
	"progqoi/internal/encoding"
	"progqoi/internal/progressive"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("storage: not found")

// ErrInvalidKey reports a key outside the safe character set.
var ErrInvalidKey = errors.New("storage: invalid key")

// Store is a minimal fragment store. Every method takes the caller's
// context, so a store backed by real I/O (a directory, an object-store
// bucket, a remote fragment service) honors session cancellation and
// deadlines end to end; in-memory implementations only check ctx.Err().
// A nil ctx is treated as context.Background().
type Store interface {
	// Put writes a value under key (overwrites).
	Put(ctx context.Context, key string, val []byte) error
	// Get reads a value; ErrNotFound when missing.
	Get(ctx context.Context, key string) ([]byte, error)
	// Keys lists all keys in lexical order.
	Keys(ctx context.Context) ([]string, error)
}

// RangeReader is an optional Store extension for partial reads. A server
// holding only fragment offsets (see VariableFragmentRanges) uses it to
// pull one fragment off disk — or out of a bucket with one HTTP ranged
// GET — without materializing the whole variable blob. Implementations
// must return exactly length bytes or an error.
type RangeReader interface {
	// GetRange reads length bytes starting at off within the value stored
	// under key. Reads past the end of the value fail rather than truncate.
	GetRange(ctx context.Context, key string, off, length int64) ([]byte, error)
}

// ctxErr reports the context's cancellation state, tolerating the nil
// context the Store contract allows.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// FetchStats counts a store's cold reads — the fetches that actually went
// to the backing medium rather than a read-through cache. The object-store
// backend exposes them so a serving node can reconcile "bytes pulled from
// the bucket" against its hot-cache miss traffic and its /metrics scrape.
type FetchStats struct {
	// ColdFetches counts Get/GetRange calls served by the backend.
	ColdFetches int64
	// ColdFetchBytes is the payload bytes those fetches carried.
	ColdFetchBytes int64
	// ColdFetchSeconds is the cumulative wall time spent in them.
	ColdFetchSeconds float64
}

// FetchStatser is an optional Store extension reporting cold-fetch
// accounting (see FetchStats). internal/server surfaces it on /metrics.
type FetchStatser interface {
	FetchStats() FetchStats
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte // guarded by mu
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore { return &MemStore{m: map[string][]byte{}} }

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, key string, val []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte(nil), v...), nil
}

// GetRange implements RangeReader.
func (s *MemStore) GetRange(ctx context.Context, key string, off, length int64) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > int64(len(v)) {
		return nil, fmt.Errorf("storage: range [%d,%d) outside %q (%d bytes)", off, off+length, key, len(v))
	}
	return append([]byte(nil), v[off:off+length]...), nil
}

// Keys implements Store.
func (s *MemStore) Keys(ctx context.Context) ([]string, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// DirStore keeps each key in its own file under a root directory. Keys are
// restricted to a safe character set to prevent path traversal.
type DirStore struct {
	root string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{root: root}, nil
}

func validKey(key string) error {
	if key == "" || len(key) > 200 {
		return fmt.Errorf("%w: %q", ErrInvalidKey, key)
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("%w: character %q in %q", ErrInvalidKey, r, key)
		}
	}
	if key[0] == '.' {
		return fmt.Errorf("%w: %q may not start with a dot", ErrInvalidKey, key)
	}
	return nil
}

// Put implements Store.
func (s *DirStore) Put(ctx context.Context, key string, val []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := validKey(key); err != nil {
		return err
	}
	tmp := filepath.Join(s.root, key+".tmp")
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.root, key))
}

// Get implements Store.
func (s *DirStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := validKey(key); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(s.root, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return b, err
}

// GetRange implements RangeReader with one positioned read, so a fragment
// fetch costs a pread instead of loading the whole variable file.
func (s *DirStore) GetRange(ctx context.Context, key string, off, length int64) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := validKey(key); err != nil {
		return nil, err
	}
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("storage: negative range [%d,%d) for %q", off, off+length, key)
	}
	f, err := os.Open(filepath.Join(s.root, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck // read-only
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: range [%d,%d) of %q: %w", off, off+length, key, err)
	}
	return buf, nil
}

// Keys implements Store.
func (s *DirStore) Keys(ctx context.Context) ([]string, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) == ".tmp" {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// archiveMagic identifies the container format.
var archiveMagic = []byte("PQARCH1\n")

// WriteArchive bundles refactored variables into a store under the given
// dataset name: one "<name>.manifest" blob plus one "<name>.<var>.var" blob
// per variable, all CRC-protected. It is ArchiveWriter driven in one call
// over already-refactored variables; RefactorTo is the streaming form that
// never holds the whole dataset in memory.
func WriteArchive(ctx context.Context, st Store, name string, vars []*core.Variable) error {
	w, err := NewArchiveWriter(st, name)
	if err != nil {
		return err
	}
	for _, v := range vars {
		if err := w.WriteVariable(ctx, v); err != nil {
			return err
		}
	}
	return w.Close(ctx)
}

// ReadArchive reopens an archive written by WriteArchive.
func ReadArchive(ctx context.Context, st Store, name string) ([]*core.Variable, error) {
	vars, _, err := readArchive(ctx, st, name, false)
	return vars, err
}

// ReadArchiveRanged reopens an archive like ReadArchive, but additionally
// returns, for every variable, the byte ranges of its fragment payloads
// within the raw store blob — and strips the payloads from the returned
// variables. It is the meta-only open a range-reading consumer wants: one
// pass over each blob up front, then any individual fragment re-readable
// with RangeReader.GetRange at its recorded range. ranges[i][j] locates
// fragment j of vars[i] inside the blob stored under VarKey(name,
// vars[i].Name).
func ReadArchiveRanged(ctx context.Context, st Store, name string) (vars []*core.Variable, ranges [][]FragmentRange, err error) {
	return readArchive(ctx, st, name, true)
}

// readArchive walks the manifest and loads each variable blob; with ranged
// set it also records fragment payload ranges and strips the payloads.
func readArchive(ctx context.Context, st Store, name string, ranged bool) ([]*core.Variable, [][]FragmentRange, error) {
	mraw, err := st.Get(ctx, name+".manifest")
	if err != nil {
		return nil, nil, err
	}
	manifest, err := checkCRC(mraw)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: manifest: %w", err)
	}
	if len(manifest) < len(archiveMagic)+4 || string(manifest[:len(archiveMagic)]) != string(archiveMagic) {
		return nil, nil, fmt.Errorf("%w: bad archive magic", encoding.ErrCorrupt)
	}
	off := len(archiveMagic)
	n := int(binary.LittleEndian.Uint32(manifest[off:]))
	off += 4
	if n < 0 || n > 1<<16 {
		return nil, nil, fmt.Errorf("%w: %d variables", encoding.ErrCorrupt, n)
	}
	vars := make([]*core.Variable, n)
	var ranges [][]FragmentRange
	if ranged {
		ranges = make([][]FragmentRange, n)
	}
	for i := 0; i < n; i++ {
		nameB, m, err := encoding.GetSection(manifest[off:])
		if err != nil {
			return nil, nil, err
		}
		off += m
		key := VarKey(name, string(nameB))
		raw, err := st.Get(ctx, key)
		if err != nil {
			return nil, nil, err
		}
		blob, err := checkCRC(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: %s: %w", key, err)
		}
		v, err := unmarshalVariable(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: %s: %w", key, err)
		}
		if v.Name != string(nameB) {
			return nil, nil, fmt.Errorf("%w: variable blob name %q != manifest %q", encoding.ErrCorrupt, v.Name, nameB)
		}
		if ranged {
			fr, err := VariableFragmentRanges(raw)
			if err != nil {
				return nil, nil, fmt.Errorf("storage: %s: %w", key, err)
			}
			if len(fr) != len(v.Ref.Fragments) {
				return nil, nil, fmt.Errorf("%w: %s: %d payload ranges for %d fragments",
					encoding.ErrCorrupt, key, len(fr), len(v.Ref.Fragments))
			}
			ranges[i] = fr
			for j := range v.Ref.Fragments {
				v.Ref.Fragments[j] = nil
			}
		}
		vars[i] = v
	}
	return vars, ranges, nil
}

// VarKey returns the store key of one variable's blob within an archive,
// as written by WriteArchive.
func VarKey(dataset, variable string) string {
	return fmt.Sprintf("%s.%s.var", dataset, variable)
}

// FragmentRange locates one fragment payload inside a stored variable blob
// (the raw store value, CRC trailer included in the blob but not in the
// range).
type FragmentRange struct {
	Off int64
	Len int64
}

// VariableFragmentRanges walks a raw .var store blob (as written by
// WriteArchive) and returns the byte range of every fragment payload
// within it, in fragment order. A server that knows these ranges can drop
// the payloads from memory and re-read any one of them with a
// RangeReader. The blob CRC is verified before walking.
func VariableFragmentRanges(raw []byte) ([]FragmentRange, error) {
	blob, err := checkCRC(raw)
	if err != nil {
		return nil, fmt.Errorf("storage: fragment ranges: %w", err)
	}
	// marshalVariable layout: sections name, range, mask, then the
	// progressive.Refactored blob. Within that: one header section, a
	// 4-byte fragment count, then one section per fragment.
	off := 0
	for i := 0; i < 3; i++ {
		_, n, err := encoding.GetSection(blob[off:])
		if err != nil {
			return nil, fmt.Errorf("storage: fragment ranges: section %d: %w", i, err)
		}
		off += n
	}
	refStart := off + 4 // skip the ref section's own length prefix
	if off+4 > len(blob) {
		return nil, fmt.Errorf("%w: variable blob truncated before representation", encoding.ErrCorrupt)
	}
	ref, _, err := encoding.GetSection(blob[off:])
	if err != nil {
		return nil, fmt.Errorf("storage: fragment ranges: representation: %w", err)
	}
	roff := 0
	_, n, err := encoding.GetSection(ref)
	if err != nil {
		return nil, fmt.Errorf("storage: fragment ranges: header: %w", err)
	}
	roff += n
	if roff+4 > len(ref) {
		return nil, fmt.Errorf("%w: representation truncated before fragment count", encoding.ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(ref[roff:]))
	roff += 4
	if count < 0 || count > len(ref)/4 {
		return nil, fmt.Errorf("%w: %d fragments in %d-byte representation", encoding.ErrCorrupt, count, len(ref))
	}
	out := make([]FragmentRange, count)
	for i := 0; i < count; i++ {
		payload, n, err := encoding.GetSection(ref[roff:])
		if err != nil {
			return nil, fmt.Errorf("storage: fragment ranges: fragment %d: %w", i, err)
		}
		out[i] = FragmentRange{Off: int64(refStart + roff + 4), Len: int64(len(payload))}
		roff += n
	}
	return out, nil
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

// withCRC frames a blob with a CRC32C trailer.
func withCRC(blob []byte) []byte {
	out := make([]byte, 0, len(blob)+4)
	out = append(out, blob...)
	crc := crc32.Checksum(blob, crc32.MakeTable(crc32.Castagnoli))
	return appendU32(out, crc)
}

func checkCRC(raw []byte) ([]byte, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: blob too short for checksum", encoding.ErrCorrupt)
	}
	blob, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	got := crc32.Checksum(blob, crc32.MakeTable(crc32.Castagnoli))
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", encoding.ErrCorrupt, got, want)
	}
	return blob, nil
}

// EncodeVariable serializes one refactored variable — name, range, zero
// mask, progressive representation — into a standalone blob readable by
// DecodeVariable. The fragment service uses it (with fragment payloads
// stripped) to ship retrieval metadata to remote clients.
func EncodeVariable(v *core.Variable) []byte { return marshalVariable(v) }

// DecodeVariable parses an EncodeVariable blob.
func DecodeVariable(blob []byte) (*core.Variable, error) { return unmarshalVariable(blob) }

// marshalVariable serializes a core.Variable: name, range, zero mask, and
// its refactored representation.
func marshalVariable(v *core.Variable) []byte {
	var out []byte
	out = encoding.PutSection(out, []byte(v.Name))
	var rb [8]byte
	binary.LittleEndian.PutUint64(rb[:], math.Float64bits(v.Range))
	out = encoding.PutSection(out, rb[:])
	out = encoding.PutSection(out, packMask(v.ZeroMask))
	out = encoding.PutSection(out, v.Ref.Marshal())
	return out
}

func unmarshalVariable(blob []byte) (*core.Variable, error) {
	nameB, n, err := encoding.GetSection(blob)
	if err != nil {
		return nil, err
	}
	off := n
	rb, n, err := encoding.GetSection(blob[off:])
	if err != nil {
		return nil, err
	}
	if len(rb) != 8 {
		return nil, fmt.Errorf("%w: range field size %d", encoding.ErrCorrupt, len(rb))
	}
	off += n
	maskB, n, err := encoding.GetSection(blob[off:])
	if err != nil {
		return nil, err
	}
	off += n
	refB, _, err := encoding.GetSection(blob[off:])
	if err != nil {
		return nil, err
	}
	ref, err := progressive.Unmarshal(refB)
	if err != nil {
		return nil, err
	}
	mask, err := unpackMask(maskB, ref.NumElements())
	if err != nil {
		return nil, err
	}
	return &core.Variable{
		Name:     string(nameB),
		Range:    math.Float64frombits(binary.LittleEndian.Uint64(rb)),
		ZeroMask: mask,
		Ref:      ref,
	}, nil
}

// packMask encodes a bool slice as count + bitmap (empty when nil).
func packMask(mask []bool) []byte {
	if mask == nil {
		return nil
	}
	out := appendU32(nil, uint32(len(mask)))
	bits := make([]byte, (len(mask)+7)/8)
	for i, m := range mask {
		if m {
			bits[i/8] |= 1 << uint(i%8)
		}
	}
	return append(out, bits...)
}

func unpackMask(b []byte, wantLen int) ([]bool, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: mask header", encoding.ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n != wantLen {
		return nil, fmt.Errorf("%w: mask length %d, want %d", encoding.ErrCorrupt, n, wantLen)
	}
	if len(b) != 4+(n+7)/8 {
		return nil, fmt.Errorf("%w: mask bitmap size %d", encoding.ErrCorrupt, len(b)-4)
	}
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = b[4+i/8]>>uint(i%8)&1 == 1
	}
	return mask, nil
}
