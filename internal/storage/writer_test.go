package storage

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/progressive"
)

func testFields(n, k int) ([]string, [][]float64) {
	names := make([]string, k)
	fields := make([][]float64, k)
	for f := 0; f < k; f++ {
		names[f] = string(rune('A' + f))
		data := make([]float64, n)
		for i := range data {
			data[i] = 30*math.Sin(float64(i)/float64(9+f)) + float64(f)
		}
		if f == 0 {
			data[5] = 0 // exercise the zero mask
		}
		fields[f] = data
	}
	return names, fields
}

func storeSnapshot(t *testing.T, st Store) map[string][]byte {
	t.Helper()
	keys, err := st.Keys(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, k := range keys {
		b, err := st.Get(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = b
	}
	return out
}

// TestRefactorToMatchesWriteArchive is the streaming-ingest equivalence
// guarantee: RefactorTo leaves the store byte-identical — every key, every
// blob — to the in-memory Refactor+WriteArchive path, at any worker count.
func TestRefactorToMatchesWriteArchive(t *testing.T) {
	names, fields := testFields(4000, 3)
	opt := core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	}
	vars, err := core.RefactorVariables(names, fields, []int{4000}, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewMemStore()
	if err := WriteArchive(context.Background(), ref, "ds", vars); err != nil {
		t.Fatal(err)
	}
	want := storeSnapshot(t, ref)
	var wantBytes int64
	for k, b := range want {
		if k != "ds.manifest" {
			wantBytes += int64(len(b))
		}
	}

	for _, workers := range []int{1, 4} {
		sopt := opt
		sopt.Workers = workers
		st := NewMemStore()
		loads := 0
		stored, err := RefactorTo(context.Background(), st, "ds", names, []int{4000}, sopt, func(i int) ([]float64, error) {
			loads++
			return fields[i], nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if loads != len(fields) {
			t.Fatalf("workers=%d: %d source loads for %d fields", workers, loads, len(fields))
		}
		if stored != wantBytes {
			t.Fatalf("workers=%d: StoredBytes %d, want %d", workers, stored, wantBytes)
		}
		got := storeSnapshot(t, st)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d keys, want %d", workers, len(got), len(want))
		}
		for k, b := range want {
			if !bytes.Equal(got[k], b) {
				t.Fatalf("workers=%d: blob %q differs from WriteArchive output", workers, k)
			}
		}
		// And it reopens identically.
		rt, err := ReadArchive(context.Background(), st, "ds")
		if err != nil {
			t.Fatal(err)
		}
		if len(rt) != len(vars) || !reflect.DeepEqual(rt[0].ZeroMask, vars[0].ZeroMask) {
			t.Fatalf("workers=%d: reopened archive differs", workers)
		}
	}
}

// TestArchiveWriterCommitPoint: until Close writes the manifest, the
// archive does not exist for readers — the crash-safety contract of
// streaming ingest.
func TestArchiveWriterCommitPoint(t *testing.T) {
	names, fields := testFields(600, 2)
	vars, err := core.RefactorVariables(names, fields, []int{600}, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemStore()
	w, err := NewArchiveWriter(st, "torn")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVariable(context.Background(), vars[0]); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: variable blob flushed, manifest never written.
	if _, err := ReadArchive(context.Background(), st, "torn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted archive readable: %v", err)
	}
	if err := w.WriteVariable(context.Background(), vars[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(context.Background(), st, "torn")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != names[0] || got[1].Name != names[1] {
		t.Fatalf("committed archive = %v", got)
	}
}

// TestArchiveWriterMisuse: duplicate variables, bad names, use after
// Close, and double Close all fail loudly.
func TestArchiveWriterMisuse(t *testing.T) {
	names, fields := testFields(200, 1)
	vars, err := core.RefactorVariables(names, fields, []int{200}, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PSZ3, LosslessTail: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArchiveWriter(NewMemStore(), "bad/name"); err == nil {
		t.Fatal("invalid dataset name accepted")
	}
	st := NewMemStore()
	w, err := NewArchiveWriter(st, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVariable(context.Background(), vars[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVariable(context.Background(), vars[0]); err == nil {
		t.Fatal("duplicate variable accepted")
	}
	bad := *vars[0]
	bad.Name = "no/slash"
	if err := w.WriteVariable(context.Background(), &bad); err == nil {
		t.Fatal("invalid variable name accepted")
	}
	if err := w.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(context.Background()); err == nil {
		t.Fatal("double Close accepted")
	}
	if err := w.WriteVariable(context.Background(), vars[0]); err == nil {
		t.Fatal("write after Close accepted")
	}
}

// TestRefactorToSourceError: a failing source aborts the pack before the
// manifest commit, so the store stays free of the dataset.
func TestRefactorToSourceError(t *testing.T) {
	names, fields := testFields(300, 2)
	st := NewMemStore()
	boom := errors.New("disk gone")
	_, err := RefactorTo(context.Background(), st, "ds", names, []int{300}, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB},
	}, func(i int) ([]float64, error) {
		if i == 1 {
			return nil, boom
		}
		return fields[i], nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("source error lost: %v", err)
	}
	if _, err := ReadArchive(context.Background(), st, "ds"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted pack published a manifest: %v", err)
	}
}
