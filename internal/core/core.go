// Package core implements the paper's QoI-preserving progressive retrieval
// framework (§III, §V-A): the general data refactorer (Algorithm 1), the
// QoI-preserved retrieval loop (Algorithm 2), the initial error-bound
// assigner (Algorithm 3), the iterative error-bound reassigner with
// tightening factor c = 1.5 (Algorithm 4), and the mask-based outlier
// management that keeps exact-zero points from blowing up square-root
// estimates.
//
// The loop alternates three modules, exactly as Fig. 1:
//
//	error-bound assigner → progressive retriever → QoI error estimator
//
// The estimator (internal/qoi) needs only the reconstructed values and the
// L∞ bounds achieved by the retriever — never the ground truth — so the
// framework can stop as soon as every user tolerance is certified.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"progqoi/internal/obs"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
	"progqoi/internal/stats"
)

// Variable is one data field with its progressive representation plus the
// metadata recorded at refactor time.
type Variable struct {
	Name  string
	Ref   *progressive.Refactored
	Range float64 // value range of the original field (Algorithm 3 input)
	// ZeroMask marks points whose original value is exactly zero; they are
	// reconstructed exactly (as zero) and carry a zero error bound, which
	// keeps Theorem 2's estimate finite at the paper's Vx=Vy=Vz=0 nodes.
	ZeroMask []bool
}

// MaskBytes returns the storage cost of the zero mask (1 bit per point when
// present).
func (v *Variable) MaskBytes() int64 {
	if v.ZeroMask == nil {
		return 0
	}
	return int64((len(v.ZeroMask) + 7) / 8)
}

// RefactorOptions configures Algorithm 1.
type RefactorOptions struct {
	Progressive progressive.Options
	// MaskZeros enables the outlier mask for points that are exactly zero.
	MaskZeros bool
	// Workers bounds the refactor compute pool (default GOMAXPROCS), the
	// ingest-side mirror of Config.Workers: variables refactor concurrently
	// and the per-bitplane encode stages within each variable share the
	// same budget (Progressive.Workers is derived from it; set it only to
	// override the split). 1 selects the fully sequential path; the
	// refactored output is bit-identical for every setting.
	Workers int
}

// RefactorVariables runs Algorithm 1: refactor every field into progressive
// fragments with metadata. Fields share the grid shape dims.
func RefactorVariables(names []string, fields [][]float64, dims []int, opt RefactorOptions) ([]*Variable, error) {
	if len(names) != len(fields) {
		return nil, fmt.Errorf("core: %d names for %d fields", len(names), len(fields))
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Progressive.Workers == 0 {
		// Split the one Workers budget between the concurrently refactoring
		// variables so the per-variable encode pools don't multiply into
		// Workers² goroutines — the same split Retriever.advance applies on
		// the decode side. The split changes nothing observable: encode
		// output is schedule-independent.
		share := workers
		if n := len(fields); n > 1 {
			share = (workers + n - 1) / n
		}
		opt.Progressive.Workers = share
	}
	vars := make([]*Variable, len(fields))
	errs := make([]error, len(fields))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range fields {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			data := fields[i]
			var mask []bool
			if opt.MaskZeros {
				any := false
				mask = make([]bool, len(data))
				for j, v := range data {
					if v == 0 {
						mask[j] = true
						any = true
					}
				}
				if !any {
					mask = nil
				}
			}
			ref, err := progressive.Refactor(data, dims, opt.Progressive)
			if err != nil {
				errs[i] = fmt.Errorf("core: refactor %s: %w", names[i], err)
				return
			}
			vars[i] = &Variable{Name: names[i], Ref: ref, Range: stats.Range(data), ZeroMask: mask}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return vars, nil
}

// Region is a half-open flat-index range [Lo, Hi) of the data space. The
// zero Region means "the whole domain".
type Region struct{ Lo, Hi int }

func (r Region) whole() bool { return r.Lo == 0 && r.Hi == 0 }

// ErrBadRequest reports an invalid retrieval request (length mismatches,
// non-positive tolerances, malformed regions, unknown variables). Every
// argument-validation failure of Retrieve wraps it, so callers can
// distinguish caller bugs from transport or representation failures with
// errors.Is(err, ErrBadRequest).
var ErrBadRequest = errors.New("core: bad request")

// Request asks for a set of QoIs within absolute error tolerances.
type Request struct {
	QoIs       []qoi.QoI
	Tolerances []float64
	// InitRel optionally seeds Algorithm 3 with per-QoI relative tolerances
	// (the paper's algorithm takes relative bounds); when empty, 0.1 is
	// used and Algorithm 4 tightens from there.
	InitRel []float64
	// Regions optionally restricts each QoI's tolerance to a region of
	// interest (RoI retrieval): QoI k is certified only over Regions[k].
	// The same QoI may appear twice with different regions and tolerances
	// to express spatially varying fidelity. Empty = whole domain for all.
	Regions []Region
	// OnProgress, when set, fires after every certify-loop iteration with
	// the current per-QoI estimated errors and cumulative byte counts. It
	// runs on the retrieving goroutine: a caller that wants to abort cancels
	// the Retrieve context from inside the callback and receives the
	// best-effort Result together with ctx.Err().
	OnProgress func(Iteration)
}

// Iteration is one certify-loop progress report, streamed to
// Request.OnProgress after each iteration of Algorithm 2.
type Iteration struct {
	// N is the 1-based iteration number within this Retrieve call.
	N int
	// EstErrors is the current max estimated error per requested QoI.
	EstErrors []float64
	// RetrievedBytes is the session's cumulative logical fragment bytes.
	RetrievedBytes int64
	// WireBytes is the cumulative bytes the transport actually moved (via
	// Config.WireBytes); zero for local archives.
	WireBytes int64
	// ToleranceMet reports whether every QoI certified this iteration
	// (i.e. this is the final report of a successful Retrieve).
	ToleranceMet bool
}

// Config tunes the retrieval loop.
type Config struct {
	// TightenFactor is Algorithm 4's constant c (default 1.5).
	TightenFactor float64
	// MaxIters caps outer loop iterations (default 500).
	MaxIters int
	// Workers bounds the retrieval compute pool (default GOMAXPROCS): the
	// per-variable fragment-decode pools, the concurrent per-variable
	// advance, and per-QoI error estimation all share this bound. 1 selects
	// the fully sequential path; results are bit-identical either way.
	Workers int
	// FullReassign disables the max-error-point optimization and re-runs
	// Algorithm 4 against the full field each round (ablation; slower,
	// same guarantees).
	FullReassign bool
	// DisableMask ignores the variables' zero masks (ablation).
	DisableMask bool
	// Estimator overrides the QoI error estimator (default: the paper's
	// theorem-based qoi.TheoremBound; qoi.IntervalBound is the
	// interval-arithmetic ablation).
	Estimator qoi.BoundFunc
	// Prefetch, when set, is invoked once per retrieval iteration before the
	// readers advance: need[v] lists the fragment indices variable v will
	// ingest this iteration (nil when v needs nothing). A remote retrieval
	// client uses the hook to pull every needed fragment across all
	// variables in a single batched round trip; fragments already present
	// locally may be ignored by the hook. ctx is the Retrieve context: the
	// hook must abandon in-flight work when it is cancelled.
	Prefetch func(ctx context.Context, need [][]int) error
	// WireBytes, when set, reports the cumulative bytes the transport
	// actually moved (a remote client's wire counter). It feeds
	// Iteration.WireBytes; nil means no transport (local archive).
	WireBytes func() int64
	// Trace, when set, records one span per retrieval phase (plan, fetch,
	// decode, commit, estimate) for every iteration, plus an umbrella span
	// per Retrieve call, and stamps the retrieval's request ID into the
	// context so the transport can propagate it as an X-Request-Id header.
	// Nil (the default) keeps the hot path untouched: no context values,
	// no spans, no allocations.
	Trace *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.TightenFactor <= 1 {
		c.TightenFactor = 1.5
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 500
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Estimator == nil {
		c.Estimator = qoi.TheoremBound
	}
	return c
}

// Result reports one retrieval.
type Result struct {
	ToleranceMet bool
	Iterations   int
	// RetrievedBytes is the cumulative fragment bytes fetched across the
	// whole session (including earlier requests on the same Retriever).
	RetrievedBytes int64
	// EstErrors is the final max estimated error per QoI.
	EstErrors []float64
	// VarBounds is the final achieved L∞ bound per variable.
	VarBounds []float64
	// Data is the reconstructed field per variable, with the zero mask
	// applied. Slices are owned by the Retriever and remain valid until the
	// next request.
	Data [][]float64
}

// Retriever drives QoI-preserved progressive retrieval over a set of
// variables. A Retriever is a session: bytes retrieved for one request are
// reused by the next (the incremental recomposition of Fig. 1).
type Retriever struct {
	vars    []*Variable
	readers []*progressive.Reader
	cfg     Config

	eps      []float64 // requested per-variable bounds (assigner state)
	achieved []float64 // bounds achieved by the readers
	masked   [][]float64
}

// ErrExhausted reports that full fidelity was reached without certifying
// the requested tolerances (the Algorithm 2 exit condition).
var ErrExhausted = errors.New("core: representation exhausted before tolerance met")

// NewRetriever opens a retrieval session. fetch (optional) observes every
// fragment fetch for byte accounting or transfer simulation.
func NewRetriever(vars []*Variable, cfg Config, fetch progressive.FetchFunc) (*Retriever, error) {
	rt := &Retriever{vars: vars, cfg: cfg.withDefaults()}
	if fetch != nil && rt.cfg.Workers > 1 && len(vars) > 1 {
		// Variables advance concurrently, but the observer contract predates
		// that: serialize callbacks so observers (netsim.Recorder and
		// friends) never see concurrent calls.
		var mu sync.Mutex
		inner := fetch
		fetch = func(i int, size int64) {
			mu.Lock()
			defer mu.Unlock()
			inner(i, size)
		}
	}
	ne := -1
	for _, v := range vars {
		rd, err := progressive.NewReader(v.Ref, fetch)
		if err != nil {
			return nil, fmt.Errorf("core: open %s: %w", v.Name, err)
		}
		rd.SetWorkers(rt.cfg.Workers)
		rd.SetTrace(rt.cfg.Trace, v.Name)
		rt.readers = append(rt.readers, rd)
		n := v.Ref.NumElements()
		if ne < 0 {
			ne = n
		} else if n != ne {
			return nil, fmt.Errorf("core: variable %s has %d elements, want %d", v.Name, n, ne)
		}
		if v.ZeroMask != nil && len(v.ZeroMask) != n {
			return nil, fmt.Errorf("core: variable %s mask length %d, want %d", v.Name, len(v.ZeroMask), n)
		}
	}
	rt.eps = make([]float64, len(vars))
	rt.achieved = make([]float64, len(vars))
	rt.masked = make([][]float64, len(vars))
	for i := range rt.eps {
		rt.eps[i] = math.Inf(1)
		rt.achieved[i] = math.Inf(1)
	}
	return rt, nil
}

// RetrievedBytes returns cumulative fragment bytes fetched this session.
func (rt *Retriever) RetrievedBytes() int64 {
	var n int64
	for _, rd := range rt.readers {
		n += rd.RetrievedBytes()
	}
	return n
}

// Retrieve runs Algorithm 2 for the request. Subsequent calls reuse all
// previously retrieved fragments.
//
// ctx scopes the whole retrieval: cancellation or deadline expiry is
// observed between loop iterations, between fragment ingests, and by the
// Prefetch transport hook on in-flight requests. On cancellation Retrieve
// returns the best-effort Result accumulated so far together with an error
// wrapping ctx.Err(); the Retriever stays valid and a follow-up Retrieve
// resumes without re-fetching anything already held. A nil ctx means
// context.Background().
func (rt *Retriever) Retrieve(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(req.QoIs) == 0 {
		return nil, fmt.Errorf("%w: request has no QoIs", ErrBadRequest)
	}
	if len(req.Tolerances) != len(req.QoIs) {
		return nil, fmt.Errorf("%w: %d tolerances for %d QoIs", ErrBadRequest, len(req.Tolerances), len(req.QoIs))
	}
	for k, tol := range req.Tolerances {
		if !(tol > 0) {
			return nil, fmt.Errorf("%w: tolerance %d must be positive, got %g", ErrBadRequest, k, tol)
		}
	}
	neAll := rt.vars[0].Ref.NumElements()
	if len(req.Regions) != 0 {
		if len(req.Regions) != len(req.QoIs) {
			return nil, fmt.Errorf("%w: %d regions for %d QoIs", ErrBadRequest, len(req.Regions), len(req.QoIs))
		}
		for k, r := range req.Regions {
			if r.whole() {
				continue
			}
			if r.Lo < 0 || r.Hi > neAll || r.Lo >= r.Hi {
				return nil, fmt.Errorf("%w: region %d [%d,%d) invalid for %d elements", ErrBadRequest, k, r.Lo, r.Hi, neAll)
			}
		}
	}
	qoiVars := make([][]int, len(req.QoIs))
	involved := map[int]bool{}
	for k, q := range req.QoIs {
		vs := qoi.Vars(q.Expr)
		for _, v := range vs {
			if v >= len(rt.vars) {
				return nil, fmt.Errorf("%w: QoI %s uses variable %d; only %d variables", ErrBadRequest, q.Name, v, len(rt.vars))
			}
			involved[v] = true
		}
		qoiVars[k] = vs
	}

	if tr := rt.cfg.Trace; tr != nil {
		// Stamp the trace and its request ID into the context so the
		// transport below records spans and propagates X-Request-Id.
		ctx = obs.ContextWithRequestID(obs.ContextWithTrace(ctx, tr), tr.ID())
		do := tr.Begin(obs.CatDo, "Retrieve "+tr.ID())
		defer do.End()
	}

	// Algorithm 3: initial error bounds from relative tolerances.
	rt.assignInitial(req, qoiVars)

	res := &Result{
		EstErrors: make([]float64, len(req.QoIs)),
		VarBounds: rt.achieved,
	}
	ne := rt.vars[0].Ref.NumElements()
	if len(rt.vars) > 0 && len(involved) == 0 {
		return nil, fmt.Errorf("%w: no variables involved in request", ErrBadRequest)
	}
	// finish snapshots the session state into res so every exit — certified,
	// exhausted, or cancelled — hands back a coherent best-effort Result.
	finish := func() {
		res.RetrievedBytes = rt.RetrievedBytes()
		res.Data = res.Data[:0]
		for i := range rt.vars {
			res.Data = append(res.Data, rt.masked[i])
		}
	}
	wire := func() int64 {
		if rt.cfg.WireBytes == nil {
			return 0
		}
		return rt.cfg.WireBytes()
	}

	for iter := 0; iter < rt.cfg.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			finish()
			return res, fmt.Errorf("core: retrieve: %w", err)
		}
		res.Iterations = iter + 1
		// Progressive retrieval to the currently assigned bounds.
		progressed, err := rt.advance(ctx, involved, res.Iterations)
		if err != nil {
			if ctx.Err() != nil {
				// The session state is untouched by the aborted step; hand
				// back what earlier iterations certified.
				finish()
				return res, err
			}
			return nil, err
		}

		// QoI error estimation over the full field (Algorithm 2 lines 13–24).
		mEst := rt.cfg.Trace.BeginIter(obs.CatEstimate, "estimate", res.Iterations)
		maxEst, argmax, err := rt.estimateAll(req, qoiVars, ne)
		mEst.End()
		if err != nil {
			return nil, err
		}
		copy(res.EstErrors, maxEst)

		met := true
		for k := range req.QoIs {
			if !(maxEst[k] <= req.Tolerances[k]) {
				met = false
			}
		}
		if req.OnProgress != nil {
			req.OnProgress(Iteration{
				N:              res.Iterations,
				EstErrors:      append([]float64(nil), maxEst...),
				RetrievedBytes: rt.RetrievedBytes(),
				WireBytes:      wire(),
				ToleranceMet:   met,
			})
		}
		if met {
			res.ToleranceMet = true
			break
		}
		exhausted := rt.exhausted(involved)
		if !progressed && exhausted {
			// Full fidelity reached; nothing more to fetch.
			break
		}

		// Algorithm 4: tighten bounds for every unmet QoI at its worst point.
		changed := false
		for k := range req.QoIs {
			if maxEst[k] <= req.Tolerances[k] {
				continue
			}
			if rt.reassign(req, qoiVars, k, argmax[k]) {
				changed = true
			}
		}
		if !changed && exhausted {
			break
		}
	}
	finish()
	if !res.ToleranceMet {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("core: retrieve: %w", err)
		}
		return res, ErrExhausted
	}
	return res, nil
}

// assignInitial implements Algorithm 3 per variable.
func (rt *Retriever) assignInitial(req Request, qoiVars [][]int) {
	for v := range rt.vars {
		rel := 1.0
		used := false
		for k := range req.QoIs {
			for _, vv := range qoiVars[k] {
				if vv != v {
					continue
				}
				used = true
				r := 0.1
				if k < len(req.InitRel) && req.InitRel[k] > 0 {
					r = req.InitRel[k]
				}
				if r < rel {
					rel = r
				}
			}
		}
		if !used {
			continue
		}
		eb := rel * rt.vars[v].Range
		if rt.vars[v].Range == 0 {
			eb = rel
		}
		if eb < rt.eps[v] {
			rt.eps[v] = eb
		}
	}
}

// advance asks every involved reader for its assigned bound and refreshes
// the masked data views. It reports whether any reader fetched new bytes.
// Variables advance concurrently (each with its own decode pool) when
// Workers > 1; per-variable state is independent and results merge by
// index, so the outcome is identical to the sequential order.
func (rt *Retriever) advance(ctx context.Context, involved map[int]bool, iter int) (bool, error) {
	if rt.cfg.Prefetch != nil {
		mPlan := rt.cfg.Trace.BeginIter(obs.CatPlan, "plan", iter)
		need := make([][]int, len(rt.vars))
		any := false
		for v := range rt.vars {
			if !involved[v] {
				continue
			}
			if p := rt.readers[v].Plan(rt.eps[v]); len(p) > 0 {
				need[v] = p
				any = true
			}
		}
		mPlan.End()
		if any {
			// The umbrella prefetch span carries no bytes; the transport
			// records byte-carrying fetch spans underneath it at exactly the
			// points where its wire counter is incremented.
			mFetch := rt.cfg.Trace.BeginIter(obs.CatFetch, "prefetch", iter)
			err := rt.cfg.Prefetch(ctx, need)
			mFetch.End()
			if err != nil {
				return false, fmt.Errorf("core: prefetch: %w", err)
			}
		}
	}
	var todo []int
	for v := range rt.vars {
		if involved[v] {
			todo = append(todo, v)
		}
	}
	if rt.cfg.Trace != nil {
		for _, v := range todo {
			rt.readers[v].SetTraceIter(iter)
		}
	}
	moved := make([]bool, len(todo))
	errs := make([]error, len(todo))
	one := func(i int) {
		v := todo[i]
		before := rt.readers[v].RetrievedBytes()
		b, err := rt.readers[v].Advance(ctx, rt.eps[v])
		if err != nil {
			errs[i] = fmt.Errorf("core: advance %s: %w", rt.vars[v].Name, err)
			return
		}
		if rt.readers[v].RetrievedBytes() != before || b != rt.achieved[v] {
			moved[i] = true
		}
		rt.achieved[v] = b
		// Reconstruction is the commit phase: coefficients accumulated by
		// the decode spans become the field the estimator reads.
		mCom := rt.cfg.Trace.BeginIter(obs.CatCommit, rt.vars[v].Name, iter)
		data, err := rt.readers[v].Data()
		mCom.End()
		if err != nil {
			errs[i] = fmt.Errorf("core: data %s: %w", rt.vars[v].Name, err)
			return
		}
		rt.masked[v] = rt.applyMask(v, data)
	}
	if rt.cfg.Workers > 1 && len(todo) > 1 {
		// Split the one Workers budget between the concurrently advancing
		// variables so the per-reader decode pools don't multiply into
		// Workers² goroutines; the split changes nothing observable because
		// reader output is chunking-independent.
		share := (rt.cfg.Workers + len(todo) - 1) / len(todo)
		for _, v := range todo {
			rt.readers[v].SetWorkers(share)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, rt.cfg.Workers)
		for i := range todo {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				one(i)
			}(i)
		}
		wg.Wait()
	} else {
		for _, v := range todo {
			rt.readers[v].SetWorkers(rt.cfg.Workers)
		}
		for i := range todo {
			one(i)
		}
	}
	progressed := false
	for i := range todo {
		if errs[i] != nil {
			return false, errs[i]
		}
		if moved[i] {
			progressed = true
		}
	}
	return progressed, nil
}

// applyMask returns the reconstruction with exact-zero points restored. The
// reader's buffer is never mutated (delta methods accumulate into it).
func (rt *Retriever) applyMask(v int, data []float64) []float64 {
	mask := rt.vars[v].ZeroMask
	if mask == nil || rt.cfg.DisableMask {
		return data
	}
	out := append([]float64(nil), data...)
	for i, m := range mask {
		if m {
			out[i] = 0
		}
	}
	return out
}

// pointBounds fills ebs with the per-variable bounds effective at point j
// (zero at masked points).
func (rt *Retriever) pointBounds(j int, ebs []float64) {
	for v := range rt.vars {
		b := rt.achieved[v]
		if math.IsInf(b, 1) {
			// Not retrieved (variable unused by the request).
			b = math.Inf(1)
		}
		if !rt.cfg.DisableMask && rt.vars[v].ZeroMask != nil && rt.vars[v].ZeroMask[j] {
			b = 0
		}
		ebs[v] = b
	}
}

// estimateAll evaluates every QoI bound at every point, returning per-QoI
// max estimates and their argmax locations. Work is sharded as
// (QoI, point-chunk) tasks over one bounded pool, so the Targets of a
// mixed-QoI request estimate concurrently and a region-restricted QoI only
// walks its own region. Partials merge in fixed chunk order per QoI, so
// the result is independent of scheduling.
func (rt *Retriever) estimateAll(req Request, qoiVars [][]int, ne int) ([]float64, []int, error) {
	nq := len(req.QoIs)
	workers := rt.cfg.Workers
	if workers > ne {
		workers = ne
	}
	if workers < 1 {
		workers = 1
	}
	// Per-QoI regions of interest: certification is restricted to [rlo, rhi).
	rlo := make([]int, nq)
	rhi := make([]int, nq)
	for k := range req.QoIs {
		rlo[k], rhi[k] = 0, ne
		if len(req.Regions) > 0 && !req.Regions[k].whole() {
			rlo[k], rhi[k] = req.Regions[k].Lo, req.Regions[k].Hi
		}
	}
	// Fixed chunk grid over the point space, deliberately independent of the
	// worker count: the tasks and their merge order are then identical for
	// every Workers setting, so argmax tie-breaks (and the byte-fetch
	// sequence that hangs off them via reassign) cannot vary with
	// parallelism. Each chunk evaluates every QoI whose region covers it,
	// sharing one pointBounds/vals gather per point across the QoIs.
	const size = 4096
	nchunks := (ne + size - 1) / size
	type partial struct {
		max    []float64
		argmax []int
	}
	parts := make([]partial, nchunks)
	run := func(c int) {
		lo, hi := c*size, (c+1)*size
		if hi > ne {
			hi = ne
		}
		p := partial{max: make([]float64, nq), argmax: make([]int, nq)}
		for k := range p.argmax {
			p.argmax[k] = rlo[k]
		}
		active := make([]int, 0, nq)
		for k := 0; k < nq; k++ {
			if rlo[k] < hi && rhi[k] > lo {
				active = append(active, k)
			}
		}
		parts[c] = p
		if len(active) == 0 {
			return
		}
		vals := make([]float64, len(rt.vars))
		ebs := make([]float64, len(rt.vars))
		for j := lo; j < hi; j++ {
			rt.pointBounds(j, ebs)
			for v := range rt.vars {
				if rt.masked[v] != nil {
					vals[v] = rt.masked[v][j]
				}
			}
			for _, k := range active {
				if j < rlo[k] || j >= rhi[k] {
					continue
				}
				_, b := rt.cfg.Estimator(req.QoIs[k].Expr, vals, ebs)
				if b > p.max[k] || math.IsNaN(b) {
					if math.IsNaN(b) {
						b = math.Inf(1)
					}
					p.max[k] = b
					p.argmax[k] = j
				}
			}
		}
		parts[c] = p
	}
	if workers > 1 && nchunks > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		nw := workers
		if nw > nchunks {
			nw = nchunks
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= nchunks {
						return
					}
					run(c)
				}
			}()
		}
		wg.Wait()
	} else {
		for c := 0; c < nchunks; c++ {
			run(c)
		}
	}
	max := make([]float64, nq)
	argmax := make([]int, nq)
	for k := 0; k < nq; k++ {
		argmax[k] = rlo[k]
		for c := 0; c < nchunks; c++ {
			if parts[c].max[k] >= max[k] {
				max[k] = parts[c].max[k]
				argmax[k] = parts[c].argmax[k]
			}
		}
		// Guard the estimate against the few ulp the estimator itself
		// spends: report a hair above the raw bound so downstream
		// comparisons of actual ≤ estimated are airtight.
		max[k] *= 1 + 1e-12
	}
	return max, argmax, nil
}

// reassign implements Algorithm 4 for QoI k: tighten the bounds of the
// involved variables by factor c until the estimate at the worst point
// drops below tolerance. Returns whether any bound changed.
func (rt *Retriever) reassign(req Request, qoiVars [][]int, k, worst int) bool {
	c := rt.cfg.TightenFactor
	tol := req.Tolerances[k]
	vals := make([]float64, len(rt.vars))
	ebs := make([]float64, len(rt.vars))
	for v := range rt.vars {
		if rt.masked[v] != nil {
			vals[v] = rt.masked[v][worst]
		}
	}
	// Candidate bounds start from the currently achieved bounds. The
	// tightening per outer round is capped: the estimate is evaluated at
	// the *current* reconstruction, and a point whose reconstructed value
	// sits at a theorem singularity (e.g. a sqrt radicand reconstructed to
	// exactly zero) reports +Inf for any candidate ε, which would otherwise
	// crash the bound to bit-exact in a single round. Capping lets the next
	// round re-estimate against refreshed values. 20 steps of c=1.5 are a
	// ~3300× reduction per round, so legitimate deep tightening still
	// converges in a handful of rounds.
	cand := append([]float64(nil), rt.achieved...)
	changed := false
	for step := 0; step < 20; step++ {
		rt.pointBounds(worst, ebs)
		for _, v := range qoiVars[k] {
			if !math.IsInf(cand[v], 1) {
				ebs[v] = cand[v]
			} else {
				ebs[v] = rt.vars[v].Range
				if ebs[v] == 0 {
					ebs[v] = 1
				}
			}
			if !rt.cfg.DisableMask && rt.vars[v].ZeroMask != nil && rt.vars[v].ZeroMask[worst] {
				ebs[v] = 0
			}
		}
		_, b := rt.cfg.Estimator(req.QoIs[k].Expr, vals, ebs)
		if b <= tol && !math.IsNaN(b) {
			break
		}
		for _, v := range qoiVars[k] {
			if math.IsInf(cand[v], 1) {
				cand[v] = rt.vars[v].Range
				if cand[v] == 0 {
					cand[v] = 1
				}
			}
			cand[v] /= c
			if cand[v] < 1e-300 {
				cand[v] = 0 // demand bit-exact data
			}
		}
	}
	for _, v := range qoiVars[k] {
		if cand[v] < rt.eps[v] {
			rt.eps[v] = cand[v]
			changed = true
		}
	}
	if rt.cfg.FullReassign {
		// Ablation mode: tightening against the single worst point is the
		// optimization the paper describes; full mode repeats the same
		// procedure for every point (dominated by the worst point anyway,
		// so this only costs time). Nothing extra to do beyond reporting
		// the change, because the worst point dominates the bound.
		return changed
	}
	return changed
}

// exhausted reports whether all involved readers have fetched everything.
func (rt *Retriever) exhausted(involved map[int]bool) bool {
	for v := range rt.vars {
		if !involved[v] {
			continue
		}
		if !rt.readers[v].Exhausted() {
			return false
		}
	}
	return true
}

// ActualQoIErrors computes the ground-truth max |q(orig) − q(recon)| per
// QoI — the evaluation-side metric (never used by the retrieval loop).
// recon entries may be nil for variables no evaluated QoI references (the
// Retriever leaves unrequested variables unretrieved); they read as zero.
func ActualQoIErrors(qois []qoi.QoI, orig, recon [][]float64) []float64 {
	if len(orig) == 0 {
		return nil
	}
	ne := len(orig[0])
	out := make([]float64, len(qois))
	ov := make([]float64, len(orig))
	rv := make([]float64, len(orig))
	for j := 0; j < ne; j++ {
		for v := range orig {
			ov[v] = orig[v][j]
			if recon[v] != nil {
				rv[v] = recon[v][j]
			} else {
				rv[v] = 0
			}
		}
		for k, q := range qois {
			a := q.Expr.Eval(ov)
			b := q.Expr.Eval(rv)
			d := math.Abs(a - b)
			if math.IsNaN(d) {
				d = math.Inf(1)
			}
			if d > out[k] {
				out[k] = d
			}
		}
	}
	return out
}

// QoIRanges computes per-QoI value ranges on the original data, used by the
// evaluation to convert absolute errors to the paper's relative metric.
func QoIRanges(qois []qoi.QoI, orig [][]float64) []float64 {
	if len(orig) == 0 {
		return nil
	}
	ne := len(orig[0])
	lo := make([]float64, len(qois))
	hi := make([]float64, len(qois))
	for k := range qois {
		lo[k] = math.Inf(1)
		hi[k] = math.Inf(-1)
	}
	vals := make([]float64, len(orig))
	for j := 0; j < ne; j++ {
		for v := range orig {
			vals[v] = orig[v][j]
		}
		for k, q := range qois {
			x := q.Expr.Eval(vals)
			if math.IsNaN(x) {
				continue
			}
			if x < lo[k] {
				lo[k] = x
			}
			if x > hi[k] {
				hi[k] = x
			}
		}
	}
	out := make([]float64, len(qois))
	for k := range qois {
		out[k] = hi[k] - lo[k]
	}
	return out
}
