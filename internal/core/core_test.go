package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
)

// smallGE builds a fast GE stand-in for unit tests.
func smallGE() *datagen.Dataset { return datagen.GE("GE-test", 12, 256, 99) }

func refactorDataset(t *testing.T, ds *datagen.Dataset, method progressive.Method) []*Variable {
	t.Helper()
	vars, err := RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, RefactorOptions{
		Progressive: progressive.Options{Method: method, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vars
}

func TestRetrieveMeetsQoITolerancesAllMethods(t *testing.T) {
	ds := smallGE()
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	for _, method := range []progressive.Method{progressive.PSZ3, progressive.PSZ3Delta, progressive.PMGARD, progressive.PMGARDHB} {
		vars := refactorDataset(t, ds, method)
		rt, err := NewRetriever(vars, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		tols := make([]float64, len(ds.QoIs))
		rels := make([]float64, len(ds.QoIs))
		for k := range tols {
			rels[k] = 1e-4
			tols[k] = rels[k] * ranges[k]
		}
		res, err := rt.Retrieve(context.Background(), Request{QoIs: ds.QoIs, Tolerances: tols, InitRel: rels})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !res.ToleranceMet {
			t.Fatalf("%v: tolerance not met", method)
		}
		// The hard guarantee: actual ≤ estimated ≤ requested, per QoI.
		actual := ActualQoIErrors(ds.QoIs, ds.Fields, res.Data)
		for k, q := range ds.QoIs {
			if res.EstErrors[k] > tols[k] {
				t.Errorf("%v %s: estimated %g > tolerance %g", method, q.Name, res.EstErrors[k], tols[k])
			}
			if actual[k] > res.EstErrors[k] {
				t.Errorf("%v %s: actual %g > estimated %g", method, q.Name, actual[k], res.EstErrors[k])
			}
		}
		if res.RetrievedBytes <= 0 {
			t.Errorf("%v: no bytes retrieved", method)
		}
	}
}

func TestIncrementalSessionReusesBytes(t *testing.T) {
	ds := smallGE()
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	rt, err := NewRetriever(vars, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vtot := []qoi.QoI{ds.QoIs[0]}
	run := func(rel float64) int64 {
		res, err := rt.Retrieve(context.Background(), Request{
			QoIs:       vtot,
			Tolerances: []float64{rel * ranges[0]},
			InitRel:    []float64{rel},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.ToleranceMet {
			t.Fatalf("rel %g not met", rel)
		}
		return res.RetrievedBytes
	}
	b1 := run(1e-2)
	b2 := run(1e-4)
	b3 := run(1e-6)
	if !(b1 < b2 && b2 < b3) {
		t.Fatalf("cumulative bytes should grow: %d %d %d", b1, b2, b3)
	}
	// A fresh session going straight to 1e-6 should cost no more than the
	// incremental path's total (no redundancy for PMGARD-HB).
	rt2, _ := NewRetriever(refactorDataset(t, ds, progressive.PMGARDHB), Config{}, nil)
	res, err := rt2.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1e-6 * ranges[0]}, InitRel: []float64{1e-6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetrievedBytes > b3+b3/10 {
		t.Fatalf("direct session (%d) much larger than incremental total (%d)", res.RetrievedBytes, b3)
	}
}

func TestMaskKeepsSqrtEstimatesFinite(t *testing.T) {
	ds := smallGE()
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	vtot := []qoi.QoI{ds.QoIs[0]}

	// With the mask, a moderate tolerance must be reachable quickly.
	rt, _ := NewRetriever(vars, Config{}, nil)
	res, err := rt.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1e-3 * ranges[0]}, InitRel: []float64{1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	maskedBytes := res.RetrievedBytes

	// Without the mask the exact-zero nodes force far deeper retrieval
	// (sqrt estimate at near-zero radicand), or exhaustion.
	vars2 := refactorDataset(t, ds, progressive.PMGARDHB)
	rt2, _ := NewRetriever(vars2, Config{DisableMask: true}, nil)
	res2, err := rt2.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1e-3 * ranges[0]}, InitRel: []float64{1e-3}})
	if err != nil && !errors.Is(err, ErrExhausted) {
		t.Fatal(err)
	}
	if res2.RetrievedBytes <= maskedBytes {
		t.Errorf("mask should reduce retrieval: masked %d, unmasked %d", maskedBytes, res2.RetrievedBytes)
	}
}

func TestMultiQoIRequestSatisfiesAll(t *testing.T) {
	ds := smallGE()
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vars := refactorDataset(t, ds, progressive.PSZ3Delta)
	rt, _ := NewRetriever(vars, Config{}, nil)
	// Mixed tolerances: tight on T, loose on PT.
	rels := []float64{1e-3, 1e-6, 1e-4, 1e-3, 1e-2, 1e-5}
	tols := make([]float64, len(rels))
	for k := range rels {
		tols[k] = rels[k] * ranges[k]
	}
	res, err := rt.Retrieve(context.Background(), Request{QoIs: ds.QoIs, Tolerances: tols, InitRel: rels})
	if err != nil {
		t.Fatal(err)
	}
	actual := ActualQoIErrors(ds.QoIs, ds.Fields, res.Data)
	for k, q := range ds.QoIs {
		if actual[k] > tols[k] {
			t.Errorf("%s: actual %g > tolerance %g", q.Name, actual[k], tols[k])
		}
	}
}

func TestRetrieveValidatesRequest(t *testing.T) {
	ds := smallGE()
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	rt, _ := NewRetriever(vars, Config{}, nil)
	if _, err := rt.Retrieve(context.Background(), Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := rt.Retrieve(context.Background(), Request{QoIs: ds.QoIs, Tolerances: []float64{1}}); err == nil {
		t.Error("tolerance count mismatch accepted")
	}
	if _, err := rt.Retrieve(context.Background(), Request{QoIs: ds.QoIs[:1], Tolerances: []float64{0}}); err == nil {
		t.Error("zero tolerance accepted")
	}
	badQoI := []qoi.QoI{{Name: "bad", Expr: qoi.Var{Index: 99}}}
	if _, err := rt.Retrieve(context.Background(), Request{QoIs: badQoI, Tolerances: []float64{1}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestNewRetrieverValidates(t *testing.T) {
	ds := smallGE()
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	vars[0].ZeroMask = make([]bool, 3) // wrong length
	if _, err := NewRetriever(vars, Config{}, nil); err == nil {
		t.Error("bad mask length accepted")
	}
}

func TestRefactorVariablesValidates(t *testing.T) {
	if _, err := RefactorVariables([]string{"a"}, [][]float64{{1}, {2}}, []int{1}, RefactorOptions{}); err == nil {
		t.Error("name/field mismatch accepted")
	}
	if _, err := RefactorVariables([]string{"a"}, [][]float64{{1, 2, 3}}, []int{2}, RefactorOptions{}); err == nil {
		t.Error("dims mismatch accepted")
	}
}

func TestS3DMultiplicationQoIs(t *testing.T) {
	ds := datagen.S3D(8, 12, 10, 3)
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	rt, _ := NewRetriever(vars, Config{}, nil)
	rels := []float64{1e-5, 1e-5, 1e-5, 1e-5}
	tols := make([]float64, 4)
	for k := range tols {
		tols[k] = rels[k] * ranges[k]
	}
	res, err := rt.Retrieve(context.Background(), Request{QoIs: ds.QoIs, Tolerances: tols, InitRel: rels})
	if err != nil {
		t.Fatal(err)
	}
	actual := ActualQoIErrors(ds.QoIs, ds.Fields, res.Data)
	for k, q := range ds.QoIs {
		if actual[k] > res.EstErrors[k] || res.EstErrors[k] > tols[k] {
			t.Errorf("%s: actual %g est %g tol %g", q.Name, actual[k], res.EstErrors[k], tols[k])
		}
	}
}

func TestTotalVelocityOn3D(t *testing.T) {
	ds := datagen.Hurricane(6, 16, 16, 5)
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	rt, _ := NewRetriever(vars, Config{}, nil)
	res, err := rt.Retrieve(context.Background(), Request{
		QoIs:       ds.QoIs,
		Tolerances: []float64{1e-5 * ranges[0]},
		InitRel:    []float64{1e-5},
	})
	if err != nil {
		t.Fatal(err)
	}
	actual := ActualQoIErrors(ds.QoIs, ds.Fields, res.Data)
	if actual[0] > res.EstErrors[0] {
		t.Errorf("actual %g > est %g", actual[0], res.EstErrors[0])
	}
}

func TestTightenFactorAblation(t *testing.T) {
	ds := smallGE()
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vtot := []qoi.QoI{ds.QoIs[0]}
	for _, c := range []float64{1.1, 1.5, 4} {
		vars := refactorDataset(t, ds, progressive.PMGARDHB)
		rt, _ := NewRetriever(vars, Config{TightenFactor: c}, nil)
		res, err := rt.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1e-4 * ranges[0]}, InitRel: []float64{1e-4}})
		if err != nil {
			t.Fatalf("c=%g: %v", c, err)
		}
		if !res.ToleranceMet {
			t.Errorf("c=%g: tolerance not met", c)
		}
	}
}

func TestRegionOfInterestRetrieval(t *testing.T) {
	ds := smallGE()
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vtot := ds.QoIs[0]
	ne := ds.NumElements()
	hot := Region{Lo: 0, Hi: ne / 8}

	// Same QoI requested twice: tight in the hot region, loose elsewhere.
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	rt, _ := NewRetriever(vars, Config{}, nil)
	res, err := rt.Retrieve(context.Background(), Request{
		QoIs:       []qoi.QoI{vtot, vtot},
		Tolerances: []float64{1e-6 * ranges[0], 1e-2 * ranges[0]},
		InitRel:    []float64{1e-6, 1e-2},
		Regions:    []Region{hot, {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the hot region actually meets the tight tolerance.
	hotOrig := make([][]float64, len(ds.Fields))
	hotRecon := make([][]float64, len(ds.Fields))
	for v := range ds.Fields {
		hotOrig[v] = ds.Fields[v][hot.Lo:hot.Hi]
		if res.Data[v] != nil {
			hotRecon[v] = res.Data[v][hot.Lo:hot.Hi]
		}
	}
	hotErr := ActualQoIErrors([]qoi.QoI{vtot}, hotOrig, hotRecon)
	if hotErr[0] > 1e-6*ranges[0] {
		t.Fatalf("hot region error %g exceeds tight tolerance %g", hotErr[0], 1e-6*ranges[0])
	}
	roiBytes := res.RetrievedBytes

	// A uniformly tight request must cost at least as much as the RoI one.
	vars2 := refactorDataset(t, ds, progressive.PMGARDHB)
	rt2, _ := NewRetriever(vars2, Config{}, nil)
	res2, err := rt2.Retrieve(context.Background(), Request{
		QoIs:       []qoi.QoI{vtot},
		Tolerances: []float64{1e-6 * ranges[0]},
		InitRel:    []float64{1e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RetrievedBytes < roiBytes {
		t.Fatalf("uniform tight request (%d B) cheaper than RoI request (%d B)", res2.RetrievedBytes, roiBytes)
	}
}

func TestRegionValidation(t *testing.T) {
	ds := smallGE()
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	rt, _ := NewRetriever(vars, Config{}, nil)
	vtot := []qoi.QoI{ds.QoIs[0]}
	bad := []Region{{Lo: -1, Hi: 5}}
	if _, err := rt.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1}, Regions: bad}); err == nil {
		t.Error("negative region accepted")
	}
	bad = []Region{{Lo: 10, Hi: 5}}
	if _, err := rt.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1}, Regions: bad}); err == nil {
		t.Error("inverted region accepted")
	}
	bad = []Region{{Lo: 0, Hi: ds.NumElements() + 1}}
	if _, err := rt.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1}, Regions: bad}); err == nil {
		t.Error("oversized region accepted")
	}
	if _, err := rt.Retrieve(context.Background(), Request{QoIs: vtot, Tolerances: []float64{1}, Regions: []Region{{}, {}}}); err == nil {
		t.Error("region count mismatch accepted")
	}
}

func TestIntervalEstimatorAlsoCertifies(t *testing.T) {
	// The interval-arithmetic ablation estimator must preserve the full
	// guarantee chain through the retrieval loop.
	ds := smallGE()
	ranges := QoIRanges(ds.QoIs, ds.Fields)
	vars := refactorDataset(t, ds, progressive.PMGARDHB)
	rt, err := NewRetriever(vars, Config{Estimator: qoi.IntervalBound}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rels := []float64{1e-4, 1e-4, 1e-4, 1e-4, 1e-3, 1e-4}
	tols := make([]float64, len(rels))
	for k := range rels {
		tols[k] = rels[k] * ranges[k]
	}
	res, err := rt.Retrieve(context.Background(), Request{QoIs: ds.QoIs, Tolerances: tols, InitRel: rels})
	if err != nil {
		t.Fatal(err)
	}
	actual := ActualQoIErrors(ds.QoIs, ds.Fields, res.Data)
	for k, q := range ds.QoIs {
		if actual[k] > res.EstErrors[k] || res.EstErrors[k] > tols[k] {
			t.Errorf("%s: actual %g est %g tol %g", q.Name, actual[k], res.EstErrors[k], tols[k])
		}
	}
}

func TestActualQoIErrorsAndRanges(t *testing.T) {
	orig := [][]float64{{3, 0}, {4, 0}, {0, 0}}
	recon := [][]float64{{3, 0}, {4, 0.1}, {0, 0}}
	qois := []qoi.QoI{qoi.TotalVelocity(0, 1, 2)}
	errs := ActualQoIErrors(qois, orig, recon)
	if math.Abs(errs[0]-0.1) > 1e-12 {
		t.Fatalf("actual error = %g, want 0.1", errs[0])
	}
	ranges := QoIRanges(qois, orig)
	if ranges[0] != 5 {
		t.Fatalf("range = %g, want 5", ranges[0])
	}
}

func TestQoIRangesEmpty(t *testing.T) {
	if out := QoIRanges(nil, nil); out != nil {
		t.Fatal("nil input should give nil")
	}
	if out := ActualQoIErrors(nil, nil, nil); out != nil {
		t.Fatal("nil input should give nil")
	}
}
