package core

// parallel_test.go pins the determinism contract of the retrieval compute
// pool: any Workers setting must certify identical errors, fetch identical
// bytes, and reconstruct bit-identical data, because fragment decode,
// per-variable advance, and per-QoI estimation all merge deterministically.

import (
	"context"
	"math"
	"sync"
	"testing"

	"progqoi/internal/qoi"
)

func retrieveWith(t *testing.T, workers int, req Request) *Result {
	t.Helper()
	ds := smallGE()
	vars, err := RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, RefactorOptions{MaskZeros: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetriever(vars, Config{Workers: workers}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Retrieve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRetrieveWorkersEquivalence(t *testing.T) {
	ds := smallGE()
	qois := []qoi.QoI{ds.QoIs[0], ds.QoIs[1]}
	ranges := QoIRanges(qois, ds.Fields)
	ne := len(ds.Fields[0])
	req := Request{
		QoIs:       qois,
		Tolerances: []float64{1e-3 * ranges[0], 1e-4 * ranges[1]},
		InitRel:    []float64{1e-3, 1e-4},
		// One whole-domain target, one region-restricted target: the
		// (QoI, chunk) estimation grid must stay deterministic for both.
		Regions: []Region{{}, {Lo: ne / 4, Hi: ne / 2}},
	}
	want := retrieveWith(t, 1, req)
	for _, workers := range []int{2, 4, 16} {
		got := retrieveWith(t, workers, req)
		if !got.ToleranceMet {
			t.Fatalf("workers=%d: tolerance not met", workers)
		}
		if got.Iterations != want.Iterations {
			t.Fatalf("workers=%d: %d iterations, want %d", workers, got.Iterations, want.Iterations)
		}
		if got.RetrievedBytes != want.RetrievedBytes {
			t.Fatalf("workers=%d: retrieved %d bytes, want %d", workers, got.RetrievedBytes, want.RetrievedBytes)
		}
		for k := range qois {
			if got.EstErrors[k] != want.EstErrors[k] {
				t.Fatalf("workers=%d QoI %d: certified %g, want %g", workers, k, got.EstErrors[k], want.EstErrors[k])
			}
		}
		for v := range want.Data {
			for j := range want.Data[v] {
				if math.Float64bits(got.Data[v][j]) != math.Float64bits(want.Data[v][j]) {
					t.Fatalf("workers=%d var %d point %d: reconstruction differs", workers, v, j)
				}
			}
		}
	}
}

// TestFetchObserverSerialized proves the shared fetch observer is never
// invoked concurrently even though variables advance in parallel (run under
// -race this also catches unsynchronized observer state).
func TestFetchObserverSerialized(t *testing.T) {
	ds := smallGE()
	vars, err := RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, RefactorOptions{MaskZeros: true})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	inObserver := false
	var calls int
	var bytes int64
	rt, err := NewRetriever(vars, Config{Workers: 8}, func(i int, size int64) {
		mu.Lock()
		if inObserver {
			mu.Unlock()
			t.Error("observer reentered concurrently")
			return
		}
		inObserver = true
		mu.Unlock()
		calls++
		bytes += size
		mu.Lock()
		inObserver = false
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	qois := []qoi.QoI{ds.QoIs[0]}
	ranges := QoIRanges(qois, ds.Fields)
	res, err := rt.Retrieve(context.Background(), Request{
		QoIs:       qois,
		Tolerances: []float64{1e-3 * ranges[0]},
		InitRel:    []float64{1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || bytes != res.RetrievedBytes {
		t.Fatalf("observer saw %d calls / %d bytes, session retrieved %d", calls, bytes, res.RetrievedBytes)
	}
}
