// Package client is the compute-site half of the remote retrieval
// subsystem: a typed HTTP client for the internal/server fragment service
// with bounded retry/backoff, a byte-bounded LRU fragment cache shared by
// every session, and request coalescing so concurrent sessions asking for
// the same fragment share one wire fetch.
//
// The paper's economics (§VI-D) survive the real network because the
// client separates two byte counts: a session's RetrievedBytes (the
// fragment bytes its retrieval loop ingested — what the paper plots) and
// the client's WireBytes (what actually crossed the network). Cache hits
// and coalesced fetches make the second strictly smaller on repeated
// workloads.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progqoi/internal/encoding"
	"progqoi/internal/obs"
	"progqoi/internal/server"
)

// DefaultCacheBytes bounds the fragment cache when Options.CacheBytes is 0.
const DefaultCacheBytes = 64 << 20

// Options configures a Client.
type Options struct {
	// HTTPClient overrides the transport (default: stock transport with a
	// 30 s response-header timeout; body reads are not deadlined so large
	// fragments survive slow links).
	HTTPClient *http.Client
	// MaxRetries is the number of re-attempts after a transport error,
	// truncated body, or 5xx (default 3; negative disables retries). On a
	// cluster it bounds extra passes over the endpoints: failing over to
	// another replica is free, and backoff applies only once every
	// candidate has failed the current pass.
	MaxRetries int
	// RetryBackoff is the first retry delay, doubled per attempt
	// (default 50 ms).
	RetryBackoff time.Duration
	// CacheBytes bounds the shared fragment cache (default
	// DefaultCacheBytes; negative disables caching).
	CacheBytes int64
	// ReadAhead pipelines network fetch with decode: after each batched
	// session fetch, up to ReadAhead further fragments per variable (the
	// ones a tightening iteration would request next) are fetched in the
	// background into the shared cache while the session decodes the batch
	// it already has. 0 disables the pipeline. Speculative fragments count
	// toward WireBytes even if never ingested, so on workloads that stop
	// early the wire total can exceed a session's RetrievedBytes.
	ReadAhead int
	// Endpoints are additional base URLs of cluster nodes serving the
	// same archives as the primary base URL; fragment fetches shard over
	// all of them by rendezvous hashing and fail over between them. See
	// the cluster transport notes in cluster.go.
	Endpoints []string
	// Replication is the replica-set size per shard key: the number of
	// rendezvous-preferred endpoints a fragment fetch tries before
	// spilling to the rest of the cluster (default DefaultReplication,
	// clamped to the endpoint count).
	Replication int
	// BreakerCooldown is how long an endpoint's circuit stays open after
	// breakerThreshold consecutive failures before a half-open probe
	// (default DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// DiscoverPeers asks Open to fetch /v1/cluster from the primary
	// endpoint and merge the advertised peers (and alive members, on an
	// elastic cluster) into Endpoints, so a client pointed at one node
	// finds the rest. Discovery is best-effort: nodes without the route
	// are treated as solo.
	DiscoverPeers bool
	// TopologyRefresh enables elastic mode: the client re-resolves the
	// cluster membership every TopologyRefresh by fetching /v1/cluster
	// and swapping in a fresh epoch-numbered view (see view.go), so
	// sessions follow joins, drains, and rolling restarts mid-retrieval.
	// It also arms the fast path: a fully failed retry pass forces an
	// immediate refresh. 0 (the default) keeps the topology fixed for the
	// client's lifetime. Call Close to stop the background refresher.
	TopologyRefresh time.Duration
	// Token is a tenant bearer token sent as "Authorization: Bearer …" on
	// every request. Required against a multi-tenant server (one started
	// with -tenants); ignored by anonymous servers. Empty sends no header.
	Token string
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		// Bound how long the server may take to start answering, but not
		// the body read: a whole-response deadline would kill large batch
		// downloads on slow links no matter how healthy the transfer.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.ResponseHeaderTimeout = 30 * time.Second
		o.HTTPClient = &http.Client{Transport: tr}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = DefaultCacheBytes
	} else if o.CacheBytes < 0 {
		o.CacheBytes = 0
	}
	if o.Replication <= 0 {
		o.Replication = DefaultReplication
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	return o
}

// Stats is a point-in-time snapshot of the client's wire accounting.
type Stats struct {
	// WireBytes is fragment payload bytes fetched over HTTP — the same
	// unit as a session's RetrievedBytes and netsim's recorder, so the
	// three are directly comparable. Cache hits and coalesced waits
	// contribute nothing. Transport-level gzip savings are not deducted:
	// this counts payloads, not socket bytes.
	WireBytes int64
	// WireRequests counts HTTP requests issued, including retries.
	WireRequests int64
	// FragmentsFetched counts fragments that crossed the wire.
	FragmentsFetched int64
	// CacheHits counts fragment lookups served from the local cache.
	CacheHits int64
	// Coalesced counts fragment lookups that piggybacked on another
	// session's in-flight fetch.
	Coalesced int64
	// Speculated counts fragments requested by the read-ahead pipeline
	// (Options.ReadAhead) rather than by a session's current plan.
	Speculated int64
	// Failovers counts fetches served by an endpoint other than their
	// shard's rendezvous primary — each one is a request a healthy
	// single-node path would have lost.
	Failovers int64
	// BreakerOpens counts circuit-open transitions across all endpoints —
	// the number of times a node was demoted for failing
	// breakerThreshold requests in a row (or flunking a half-open probe).
	BreakerOpens int64
	// RetryPasses counts backoff waits spent: full passes over the
	// endpoint set that ended with every candidate failing, forcing the
	// client to sleep and spend retry budget. Zero on a healthy cluster
	// no matter how much plain (free) failover happened.
	RetryPasses int64
	// RateLimited counts 429 responses received. Each one failed over or
	// retried after honoring the server's Retry-After; none tripped a
	// circuit breaker — being throttled proves the node alive.
	RateLimited int64
	// TopologyEpoch numbers the current topology view: it starts at 1 and
	// bumps every time a refresh installs a different routable set.
	TopologyEpoch int64
	// TopologySwaps counts installed view changes after the initial one —
	// how many times the client observed the cluster move.
	TopologySwaps int64
	// Routable lists the current view's endpoint URLs: the cluster's
	// alive members as of the last refresh. A subset of Endpoints, which
	// also keeps endpoints that have left the view.
	Routable []string
	// CacheBytes / CacheEntries / CacheEvictions describe the LRU.
	CacheBytes     int64
	CacheEntries   int
	CacheEvictions int64
	// Endpoints reports per-node traffic and circuit-breaker state, in
	// the order the endpoints were configured.
	Endpoints []EndpointStats
}

// call is one in-flight fragment fetch that coalesced waiters block on.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Client talks to one fragment service — or a cluster of them serving the
// same archives. It is safe for concurrent use and meant to be shared:
// the cache and coalescing work across sessions, and the per-endpoint
// breaker state is what routes every session around a dead node.
type Client struct {
	hc    *http.Client
	opts  Options
	cache *lruCache

	// topo is the current epoch-numbered topology view (see view.go),
	// swapped whole on membership changes — the client-side mirror of
	// the server's hot-publish catalog swap. Requests re-load it at the
	// start of every retry pass.
	topo atomic.Pointer[clusterView]

	// The endpoint registry: every endpoint this client has ever routed
	// to, in first-seen order. Views reference these canonical objects,
	// so breaker state and counters survive leaving and rejoining.
	epMu    sync.Mutex
	epByURL map[string]*endpoint // guarded by epMu
	epOrder []*endpoint          // guarded by epMu

	// refreshStop ends the background refresher; Close closes it once.
	refreshStop chan struct{}
	refreshWG   sync.WaitGroup
	closeOnce   sync.Once

	mu       sync.Mutex
	inflight map[string]*call // guarded by mu

	idxMu   sync.Mutex
	indexes map[string]*server.Index // guarded by idxMu

	wireBytes    atomic.Int64
	wireRequests atomic.Int64
	fragsFetched atomic.Int64
	cacheHits    atomic.Int64
	coalesced    atomic.Int64
	speculated   atomic.Int64
	failovers    atomic.Int64
	retryPasses  atomic.Int64
	rateLimited  atomic.Int64
	viewSwaps    atomic.Int64
}

// New returns a client for the service at baseURL (e.g.
// "http://host:9123") plus any extra cluster endpoints in opt.Endpoints.
// With Options.TopologyRefresh set it also starts the background
// topology refresher; stop it with Close.
func New(baseURL string, opt Options) (*Client, error) {
	opt = opt.withDefaults()
	c := &Client{
		hc:          opt.HTTPClient,
		opts:        opt,
		cache:       newLRUCache(opt.CacheBytes),
		inflight:    map[string]*call{},
		indexes:     map[string]*server.Index{},
		epByURL:     map[string]*endpoint{},
		refreshStop: make(chan struct{}),
	}
	bases := make([]string, 0, 1+len(opt.Endpoints))
	for _, u := range append([]string{baseURL}, opt.Endpoints...) {
		base := strings.TrimRight(u, "/")
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			return nil, fmt.Errorf("client: base URL %q must be http(s)", u)
		}
		bases = append(bases, base)
	}
	if !c.installView(bases) {
		return nil, fmt.Errorf("client: no usable endpoints in %q", bases)
	}
	if opt.TopologyRefresh > 0 {
		c.refreshWG.Add(1)
		go c.refresher()
	}
	return c, nil
}

// Endpoints returns every endpoint base URL this client knows, in
// first-seen order: the configured ones, then any discovered by
// topology refresh. Endpoints no longer in the routable view stay
// listed (their breaker stats remain meaningful); see Stats.Routable
// for the current view.
func (c *Client) Endpoints() []string {
	eps := c.epSnapshot()
	out := make([]string, len(eps))
	for i, ep := range eps {
		out[i] = ep.base
	}
	return out
}

// Stats snapshots the wire accounting.
func (c *Client) Stats() Stats {
	cb, ce, ev := c.cache.stats()
	v := c.view()
	st := Stats{
		TopologyEpoch:    v.epoch,
		TopologySwaps:    c.viewSwaps.Load(),
		WireBytes:        c.wireBytes.Load(),
		WireRequests:     c.wireRequests.Load(),
		FragmentsFetched: c.fragsFetched.Load(),
		CacheHits:        c.cacheHits.Load(),
		Coalesced:        c.coalesced.Load(),
		Speculated:       c.speculated.Load(),
		Failovers:        c.failovers.Load(),
		RetryPasses:      c.retryPasses.Load(),
		RateLimited:      c.rateLimited.Load(),
		CacheBytes:       cb,
		CacheEntries:     ce,
		CacheEvictions:   ev,
	}
	for _, ep := range v.eps {
		st.Routable = append(st.Routable, ep.base)
	}
	for _, ep := range c.epSnapshot() {
		es := ep.snapshot()
		st.BreakerOpens += es.Opens
		st.Endpoints = append(st.Endpoints, es)
	}
	return st
}

// Sentinel errors for auth and throttling outcomes, matched by
// errors.Is through *HTTPError so callers branch on what happened
// without parsing status codes out of error strings.
var (
	// ErrUnauthorized is a 401: the request carried no tenant token, or
	// one the server does not know. Not retried — a bad credential does
	// not get better on another replica.
	ErrUnauthorized = errors.New("client: unauthorized")
	// ErrForbidden is a 403: the token is known but not allowed here.
	ErrForbidden = errors.New("client: forbidden")
	// ErrRateLimited is a 429 that survived the whole retry budget: every
	// replica throttled the tenant even after honoring Retry-After.
	ErrRateLimited = errors.New("client: rate limited")
)

// HTTPError reports an HTTP failure status that reached the caller.
type HTTPError struct {
	Status int
	Msg    string
	// RetryAfter is the server's parsed Retry-After hint (zero when the
	// response carried none).
	RetryAfter time.Duration
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, strings.TrimSpace(e.Msg))
}

// Is maps status codes onto the package's sentinel errors, so
// errors.Is(err, ErrRateLimited) works on any wrapped *HTTPError.
func (e *HTTPError) Is(target error) bool {
	switch target {
	case ErrUnauthorized:
		return e.Status == http.StatusUnauthorized
	case ErrForbidden:
		return e.Status == http.StatusForbidden
	case ErrRateLimited:
		return e.Status == http.StatusTooManyRequests
	}
	return false
}

// do issues one request with bounded retry/backoff and replica failover.
// Transport errors, truncated bodies, and 5xx responses fail over to the
// next endpoint and retry; other non-200 statuses fail immediately with
// *HTTPError. Non-fragment routes hash by path, so metadata traffic also
// spreads over the cluster deterministically — and may spill to every
// endpoint of the current view, not just a replica set. ctx cancels the
// in-flight request and any backoff wait: once ctx is done no further
// attempts are made and the context's error is returned.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string) ([]byte, error) {
	return c.doKeyed(ctx, path, false, method, path, body, contentType)
}

// Health fetches the service's /healthz stats.
func (c *Client) Health(ctx context.Context) (*server.Stats, error) {
	b, err := c.do(ctx, "GET", "/healthz", nil, "")
	if err != nil {
		return nil, err
	}
	var st server.Stats
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("client: healthz: %w", err)
	}
	return &st, nil
}

// Datasets lists the datasets the service hosts.
func (c *Client) Datasets(ctx context.Context) ([]string, error) {
	b, err := c.do(ctx, "GET", "/v1/datasets", nil, "")
	if err != nil {
		return nil, err
	}
	var out struct {
		Datasets []string `json:"datasets"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("client: datasets: %w", err)
	}
	return out.Datasets, nil
}

// Index fetches (and memoizes — the archive is immutable) one dataset's
// index.
func (c *Client) Index(ctx context.Context, dataset string) (*server.Index, error) {
	c.idxMu.Lock()
	if idx, ok := c.indexes[dataset]; ok {
		c.idxMu.Unlock()
		return idx, nil
	}
	c.idxMu.Unlock()
	b, err := c.do(ctx, "GET", "/v1/d/"+dataset+"/index", nil, "")
	if err != nil {
		return nil, err
	}
	idx := &server.Index{}
	if err := json.Unmarshal(b, idx); err != nil {
		return nil, fmt.Errorf("client: index %s: %w", dataset, err)
	}
	c.idxMu.Lock()
	c.indexes[dataset] = idx
	c.idxMu.Unlock()
	return idx, nil
}

// indexFragSize returns the index-declared size of one fragment, or -1
// when the index does not know it.
func indexFragSize(idx *server.Index, vr string, fi int) int64 {
	for i := range idx.Variables {
		if idx.Variables[i].Name == vr {
			if fi >= 0 && fi < len(idx.Variables[i].FragmentSizes) {
				return idx.Variables[i].FragmentSizes[fi]
			}
			return -1
		}
	}
	return -1
}

func fragKey(dataset, vr string, fi int) string {
	return dataset + "\x00" + vr + "\x00" + strconv.Itoa(fi)
}

// Fragment fetches a single fragment through the cache via the
// single-fragment GET endpoint, routed to the fragment's shard.
func (c *Client) Fragment(ctx context.Context, dataset, vr string, fi int) ([]byte, error) {
	key := fragKey(dataset, vr, fi)
	if v, ok := c.cache.get(key); ok {
		c.cacheHits.Add(1)
		return v, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The fetch span's Bytes mirrors the wireBytes increment below exactly,
	// so a trace's summed fetch bytes reconcile with Stats.WireBytes. The
	// mark is zero (and free) when the context carries no trace.
	var mf obs.SpanMark
	if tr := obs.TraceFrom(ctx); tr != nil {
		mf = tr.Begin(obs.CatFetch, "frag "+vr+"/"+strconv.Itoa(fi))
	}
	path := "/v1/d/" + dataset + "/frag/" + vr + "/" + strconv.Itoa(fi)
	b, err := c.doKeyed(ctx, shardKey(vr, fi), true, "GET", path, nil, "")
	if err != nil {
		mf.End()
		return nil, err
	}
	if idx, ierr := c.Index(ctx, dataset); ierr == nil {
		if want := indexFragSize(idx, vr, fi); want >= 0 && int64(len(b)) != want {
			mf.End()
			return nil, fmt.Errorf("%w: fragment %s/%s/%d is %d bytes, index says %d",
				encoding.ErrCorrupt, dataset, vr, fi, len(b), want)
		}
	}
	c.wireBytes.Add(int64(len(b)))
	mf.EndBytes(int64(len(b)))
	c.fragsFetched.Add(1)
	c.cache.add(key, b)
	return b, nil
}

// Fragments fetches a set of fragments in at most one HTTP round trip per
// shard: cached fragments are returned directly, fragments already being
// fetched by a concurrent session are awaited, and the rest split into
// per-shard sub-batches issued concurrently (one batched POST per cluster
// node involved). The result maps variable name → fragment index →
// payload.
func (c *Client) Fragments(ctx context.Context, dataset string, wants map[string][]int) (map[string]map[int][]byte, error) {
	return c.FragmentsWorkers(ctx, dataset, wants, 0)
}

// FragmentsWorkers is Fragments with an explicit bound on concurrent
// per-shard sub-batches (workers <= 0 means GOMAXPROCS). Remote sessions
// pass their retrieval Workers budget here so the wire fan-out never
// exceeds the compute fan-out.
func (c *Client) FragmentsWorkers(ctx context.Context, dataset string, wants map[string][]int, workers int) (map[string]map[int][]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	idx, err := c.Index(ctx, dataset)
	if err != nil {
		return nil, err
	}
	out := map[string]map[int][]byte{}
	put := func(vr string, fi int, v []byte) {
		m := out[vr]
		if m == nil {
			m = map[int][]byte{}
			out[vr] = m
		}
		m[fi] = v
	}
	type pending struct {
		vr  string
		fi  int
		key string
		cl  *call
	}
	var owned, waited []pending
	seen := map[string]bool{}
	c.mu.Lock()
	for _, vr := range sortedKeys(wants) {
		for _, fi := range wants[vr] {
			key := fragKey(dataset, vr, fi)
			if seen[key] {
				continue
			}
			seen[key] = true
			if v, ok := c.cache.get(key); ok {
				c.cacheHits.Add(1)
				put(vr, fi, v)
				continue
			}
			if cl := c.inflight[key]; cl != nil {
				c.coalesced.Add(1)
				waited = append(waited, pending{vr, fi, key, cl})
				continue
			}
			cl := &call{done: make(chan struct{})}
			c.inflight[key] = cl
			owned = append(owned, pending{vr, fi, key, cl})
		}
	}
	c.mu.Unlock()

	if len(owned) > 0 {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		// Bytes mirror the per-fragment wireBytes increments in the install
		// loop below, keeping traced fetch bytes equal to Stats.WireBytes.
		var mf obs.SpanMark
		if tr := obs.TraceFrom(ctx); tr != nil {
			mf = tr.Begin(obs.CatFetch, "frags "+dataset+" x"+strconv.Itoa(len(owned)))
		}
		byVar := map[string][]int{}
		for _, p := range owned {
			byVar[p.vr] = append(byVar[p.vr], p.fi)
		}
		got, ferr := c.fetchShards(ctx, dataset, byVar, workers)
		if ferr == nil {
			for _, p := range owned {
				payload, ok := got[p.key]
				if !ok {
					ferr = fmt.Errorf("client: batch response missing fragment %s/%d", p.vr, p.fi)
					break
				}
				if want := indexFragSize(idx, p.vr, p.fi); want >= 0 && int64(len(payload)) != want {
					ferr = fmt.Errorf("%w: fragment %s/%d is %d bytes, index says %d",
						encoding.ErrCorrupt, p.vr, p.fi, len(payload), want)
					break
				}
			}
		}
		var fetched int64
		c.mu.Lock()
		for _, p := range owned {
			delete(c.inflight, p.key)
			if ferr != nil {
				p.cl.err = ferr
			} else {
				// Clone out of the decoded batch blob: DecodeBatch payloads
				// are subslices of the whole response, and caching them by
				// reference would pin the full blob in memory long after
				// eviction shrank the accounted cache size.
				p.cl.val = bytes.Clone(got[p.key])
				c.cache.add(p.key, p.cl.val)
				c.wireBytes.Add(int64(len(p.cl.val)))
				fetched += int64(len(p.cl.val))
				c.fragsFetched.Add(1)
			}
			close(p.cl.done)
		}
		c.mu.Unlock()
		mf.EndBytes(fetched)
		if ferr != nil {
			return nil, ferr
		}
		for _, p := range owned {
			put(p.vr, p.fi, p.cl.val)
		}
	}
	var retry map[string][]int
	for _, p := range waited {
		select {
		case <-p.cl.done:
		case <-ctx.Done():
			// The owning session's fetch is still in flight; this caller
			// stops waiting without disturbing it.
			return nil, fmt.Errorf("client: coalesced fetch: %w", ctx.Err())
		}
		if p.cl.err != nil {
			// The owner's context died mid-fetch. That cancellation belongs
			// to the owner, not to this caller: re-fetch under our own live
			// context rather than inheriting an error nobody here caused.
			if isContextErr(p.cl.err) && ctx.Err() == nil {
				if retry == nil {
					retry = map[string][]int{}
				}
				retry[p.vr] = append(retry[p.vr], p.fi)
				continue
			}
			return nil, fmt.Errorf("client: coalesced fetch: %w", p.cl.err)
		}
		put(p.vr, p.fi, p.cl.val)
	}
	if len(retry) > 0 {
		// Either this call becomes the new owner, or it coalesces onto
		// another live fetch; our own ctx now governs the wait.
		got, err := c.Fragments(ctx, dataset, retry)
		if err != nil {
			return nil, err
		}
		for vr, m := range got {
			for fi, v := range m {
				put(vr, fi, v)
			}
		}
	}
	return out, nil
}

// isContextErr reports whether err stems from a cancelled or expired
// context.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func sortedKeys(m map[string][]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
