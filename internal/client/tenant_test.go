package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// tenantService starts one fragment service requiring the given tenants.
func tenantService(t *testing.T, vars []*core.Variable, tenants []server.Tenant) *httptest.Server {
	t.Helper()
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(context.Background(), st, server.Options{Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs
}

func TestTokenAuthAgainstTenantServer(t *testing.T) {
	vars := testVars(t)
	hs := tenantService(t, vars, []server.Tenant{{Name: "dash", Token: "dash-token-1"}})

	// No token and a wrong token both surface as ErrUnauthorized — a
	// terminal error, not something retries can fix.
	for _, tok := range []string{"", "wrong-token-0"} {
		opt := fastOptions()
		opt.Token = tok
		c, err := New(hs.URL, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Index(context.Background(), "ge"); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("token %q: err = %v, want ErrUnauthorized", tok, err)
		}
	}

	opt := fastOptions()
	opt.Token = "dash-token-1"
	c, err := New(hs.URL, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatalf("authenticated fetch: %v", err)
	}
	checkPayloads(t, vars, got)
}

// TestRateLimit429FailsOverAcrossShards pins the 429 contract under
// shard failover: a rate-limiting node is healthy, not sick — the
// client moves to a replica within the same pass (each node enforces
// its own bucket), never trips the breaker, and the payloads arrive
// bit-identical.
func TestRateLimit429FailsOverAcrossShards(t *testing.T) {
	vars := testVars(t)
	// Three replicas of the same archive; node 0 throttles every data
	// request with a one-second Retry-After.
	var throttled atomic.Int64
	node0 := serviceFor(t, vars, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.Contains(r.URL.Path, "/frag") {
				throttled.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "tenant over rate limit", http.StatusTooManyRequests)
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	opt := fastOptions()
	opt.Endpoints = []string{serviceFor(t, vars, nil).URL, serviceFor(t, vars, nil).URL}
	c, err := New(node0.URL, opt)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatalf("fetch with a throttling node: %v", err)
	}
	checkPayloads(t, vars, got)
	// Failover, not waiting: replicas served the shards the throttled
	// node rejected, so no Retry-After sleep was needed.
	if elapsed := time.Since(start); elapsed > 800*time.Millisecond {
		t.Fatalf("fetch took %v: client slept on Retry-After despite healthy replicas", elapsed)
	}
	if throttled.Load() == 0 {
		t.Fatal("throttling node was never asked for data")
	}
	st := c.Stats()
	if st.RateLimited == 0 {
		t.Fatal("no 429s recorded despite a throttling node")
	}
	for _, ep := range st.Endpoints {
		if ep.URL != node0.URL {
			continue
		}
		// 429 is a healthy signal: the breaker must stay closed and the
		// rejections must not count as endpoint errors.
		if ep.State != "ok" {
			t.Fatalf("throttled endpoint state = %q, want ok (429 must not trip the breaker)", ep.State)
		}
		if ep.Errors != 0 {
			t.Fatalf("throttled endpoint errors = %d, want 0", ep.Errors)
		}
	}
}

func TestRetryAfterHonoredWhenAllReplicasLimited(t *testing.T) {
	vars := testVars(t)
	var limited atomic.Bool
	limited.Store(true)
	var rejected atomic.Int64
	hs := serviceFor(t, vars, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if limited.Load() && strings.Contains(r.URL.Path, "/frag") {
				rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "tenant over rate limit", http.StatusTooManyRequests)
				return
			}
			next.ServeHTTP(w, r)
		})
	})

	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Lift the limit once the client has been rejected: the retry that
	// succeeds must come after the advertised Retry-After, not after the
	// (millisecond) configured backoff.
	go func() {
		for rejected.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		limited.Store(false)
	}()
	start := time.Now()
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatalf("fetch after throttle lifted: %v", err)
	}
	checkPayloads(t, vars, got)
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry came after %v, want >= ~1s (Retry-After honored over the %v backoff)",
			elapsed, fastOptions().RetryBackoff)
	}
}

func TestRateLimitExhaustionSurfacesErrRateLimited(t *testing.T) {
	vars := testVars(t)
	hs := serviceFor(t, vars, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.Contains(r.URL.Path, "/frag") {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "tenant over rate limit", http.StatusTooManyRequests)
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	opt := fastOptions()
	opt.MaxRetries = 1
	c, err := New(hs.URL, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fragments(context.Background(), "ge", allWants(vars)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
}
