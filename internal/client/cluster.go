package client

// Cluster transport: a Client may hold several endpoints serving the same
// archives (a progqoid cluster). Every request routes deterministically by
// rendezvous hashing — fragment fetches by (variable, fragment id), other
// routes by path — so each node's hot cache sees a stable shard of the
// key space. The top Replication endpoints of a key's rendezvous order are
// its replica set: the primary serves in the steady state, and connection
// errors, truncated bodies or 5xx responses fail the request over to the
// next replica immediately, spilling past the replica set only when every
// replica is unavailable. A per-endpoint circuit breaker (open after
// breakerThreshold consecutive failures, half-open probe after
// BreakerCooldown) keeps a dead node from eating a connection timeout on
// every request; its state is surfaced in Stats.Endpoints.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progqoi/internal/obs"
	"progqoi/internal/server"
)

// breakerThreshold is how many consecutive endpoint-health failures open
// the circuit.
const breakerThreshold = 3

// DefaultBreakerCooldown is how long an open circuit rejects an endpoint
// before a half-open probe, when Options.BreakerCooldown is zero.
const DefaultBreakerCooldown = time.Second

// DefaultReplication is the replica-set size when Options.Replication is
// zero: primary plus one failover candidate per shard.
const DefaultReplication = 2

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "probing"
	default:
		return "ok"
	}
}

// endpoint is one cluster node with its circuit-breaker state and traffic
// counters.
type endpoint struct {
	base string
	hash uint64 // fnv64(base), precomputed for rendezvous scoring

	mu        sync.Mutex
	state     breakerState // guarded by mu
	failures  int          // guarded by mu; consecutive
	openUntil time.Time    // guarded by mu

	requests atomic.Int64
	errors   atomic.Int64
	opens    atomic.Int64 // circuit-open transitions
}

// admit reports whether the breaker lets a request through right now. An
// open circuit whose cooldown expired flips to half-open and admits
// exactly one probe; the probe's outcome decides what happens next.
func (e *endpoint) admit(now time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case bkClosed:
		return true
	case bkOpen:
		if now.Before(e.openUntil) {
			return false
		}
		e.state = bkHalfOpen
		return true
	default: // half-open: a probe is already in flight
		return false
	}
}

// abortProbe releases the half-open probe slot when a probe ends without
// a verdict (the caller's context died mid-request). The circuit returns
// to open with its already-expired cooldown, so the next admit starts a
// fresh probe immediately — without this, a cancelled probe would pin the
// endpoint in half-open forever and demote it out of every replica set.
func (e *endpoint) abortProbe() {
	e.mu.Lock()
	if e.state == bkHalfOpen {
		e.state = bkOpen
	}
	e.mu.Unlock()
}

// report records a request outcome. Only endpoint-health failures
// (connection errors, truncated bodies, 5xx) count toward the breaker;
// any answered request — even a 404 — proves the node alive.
func (e *endpoint) report(ok bool, cooldown time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ok {
		e.state, e.failures = bkClosed, 0
		return
	}
	e.failures++
	if e.state == bkHalfOpen || e.failures >= breakerThreshold {
		if e.state != bkOpen {
			e.opens.Add(1)
		}
		e.state = bkOpen
		e.openUntil = time.Now().Add(cooldown)
	}
}

// snapshot returns the breaker state for Stats.
func (e *endpoint) snapshot() EndpointStats {
	e.mu.Lock()
	st := e.state
	e.mu.Unlock()
	return EndpointStats{
		URL:      e.base,
		State:    st.String(),
		Requests: e.requests.Load(),
		Errors:   e.errors.Load(),
		Opens:    e.opens.Load(),
	}
}

// EndpointStats reports one cluster endpoint's health and traffic.
type EndpointStats struct {
	// URL is the endpoint's base URL.
	URL string
	// State is the circuit-breaker state: "ok" (closed), "open" (failing,
	// cooling down), or "probing" (half-open, one trial request allowed).
	State string
	// Requests counts HTTP requests issued to this endpoint.
	Requests int64
	// Errors counts endpoint-health failures (connection errors,
	// truncated bodies, 5xx).
	Errors int64
	// Opens counts this endpoint's circuit-open transitions: how many
	// times it went from serving to cooling down.
	Opens int64
}

// shardKey is the rendezvous key of one fragment: sharding is by
// (variable, fragment id), so a variable's fragments spread across the
// cluster and every client agrees on each fragment's primary.
func shardKey(vr string, fi int) string {
	return vr + "\x00" + strconv.Itoa(fi)
}

// mix64 is the splitmix64 finalizer: full-avalanche mixing of a 64-bit
// word. Rendezvous needs it because comparing raw FNV digests of
// base+key strings is a trap — two bases differing in a few bytes keep a
// near-linear relation through a shared key suffix, and one endpoint can
// win almost every key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s) //nolint:errcheck // fnv never errors
	return h.Sum64()
}

// rankEndpoints orders eps by rendezvous score for key, highest first.
// The order is deterministic across clients, immune to the endpoint
// list's input order, and — because each endpoint scores independently —
// minimally disturbed by membership changes: adding or removing one node
// moves only the keys it wins or held.
func rankEndpoints(eps []*endpoint, key string) []*endpoint {
	if len(eps) == 1 {
		return eps
	}
	type scored struct {
		ep    *endpoint
		score uint64
	}
	kh := mix64(fnv64(key))
	sc := make([]scored, len(eps))
	for i, ep := range eps {
		sc[i] = scored{ep, mix64(ep.hash ^ kh)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].ep.base < sc[j].ep.base
	})
	out := make([]*endpoint, len(sc))
	for i, s := range sc {
		out[i] = s.ep
	}
	return out
}

// candidates ranks the current topology view's endpoints for key.
func (c *Client) candidates(key string) []*endpoint {
	return rankEndpoints(c.view().eps, key)
}

// parseRetryAfter reads a Retry-After header value: integer seconds (the
// only form our server emits) or an HTTP date. Zero when absent or
// unparseable — the caller falls back to its own backoff.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// attempt issues exactly one HTTP request to one endpoint, classifying
// the outcome: retryable failures (connection errors, truncated bodies,
// 5xx, 429) may fail over; of those, only genuine health failures feed
// the breaker — a 429 proves the node alive and merely throttling this
// tenant. retryAfter carries the server's Retry-After hint on throttled
// and shed responses so pass-level backoff can honor it.
func (c *Client) attempt(ctx context.Context, ep *endpoint, method, path string, body []byte, contentType string) (data []byte, err error, retryable bool, retryAfter time.Duration) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, ep.base+path, rd)
	if err != nil {
		ep.abortProbe()
		return nil, err, false, 0
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.Token)
	}
	if rid := obs.RequestIDFrom(ctx); rid != "" {
		// The retrieval's request ID rides every HTTP attempt, so server
		// access logs correlate with the client-side trace.
		req.Header.Set(obs.RequestIDHeader, rid)
	}
	// One raw http span per attempt (including retries and failovers);
	// Bytes is the raw response size, not wire accounting — fetch spans
	// own that.
	var mh obs.SpanMark
	if tr := obs.TraceFrom(ctx); tr != nil {
		mh = tr.Begin(obs.CatHTTP, method+" "+ep.base+path)
	}
	var nread int64
	defer func() { mh.EndBytes(nread) }()
	c.wireRequests.Add(1)
	ep.requests.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller walked away; surface its reason, not the
			// transport's wrapping of the aborted socket — and give back
			// the probe slot if this request was one.
			ep.abortProbe()
			return nil, fmt.Errorf("client: %s %s: %w", method, path, ctx.Err()), false, 0
		}
		ep.errors.Add(1)
		ep.report(false, c.opts.BreakerCooldown)
		return nil, fmt.Errorf("client: %s %s via %s: %w", method, path, ep.base, err), true, 0
	}
	data, rerr := io.ReadAll(resp.Body)
	nread = int64(len(data))
	resp.Body.Close() //nolint:errcheck
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Throttled, not broken: the node is healthy and enforcing this
		// tenant's budget, so the breaker stays closed. Another replica
		// has its own bucket — fail over immediately; if every candidate
		// throttles, the pass backoff honors the largest Retry-After.
		ep.report(true, 0)
		c.rateLimited.Add(1)
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		return nil, fmt.Errorf("client: %s %s via %s: %w", method, path, ep.base,
			&HTTPError{Status: resp.StatusCode, Msg: string(data), RetryAfter: ra}), true, ra
	case resp.StatusCode >= 500:
		ep.errors.Add(1)
		ep.report(false, c.opts.BreakerCooldown)
		return nil, fmt.Errorf("client: %s %s via %s: %s: %s",
				method, path, ep.base, resp.Status, strings.TrimSpace(string(data))), true,
			parseRetryAfter(resp.Header.Get("Retry-After"))
	case resp.StatusCode != http.StatusOK:
		ep.report(true, 0)
		return nil, fmt.Errorf("client: %s %s: %w", method, path, &HTTPError{Status: resp.StatusCode, Msg: string(data)}), false, 0
	case rerr != nil:
		if ctx.Err() != nil {
			ep.abortProbe()
			return nil, fmt.Errorf("client: %s %s: %w", method, path, ctx.Err()), false, 0
		}
		ep.errors.Add(1)
		ep.report(false, c.opts.BreakerCooldown)
		return nil, fmt.Errorf("client: %s %s via %s: truncated body: %w", method, path, ep.base, rerr), true, 0
	}
	ep.report(true, 0)
	return data, nil, false, 0
}

// doKeyed issues one request routed by rendezvous key in three sweeps
// per pass: replicas (the first repl candidates) with willing breakers,
// then any endpoint with a willing breaker (healthy spill), and only
// then breaker-open nodes as a last resort — so a shard whose whole
// replica set is dead reaches a healthy non-replica without first eating
// a doomed dial timeout per open circuit. The candidate order is
// re-resolved from the current topology view at the start of every pass
// (and, in elastic mode, a fully failed pass forces a view refresh
// first), so a retry after a membership change routes against the
// cluster as it is, not as it was. replicaSet restricts the first sweep
// to the view's replica set; metadata routes pass false and may use the
// whole view. Failing over to the next candidate is immediate;
// exponential backoff applies only between full passes, and MaxRetries
// bounds the extra passes exactly as it bounded single-endpoint retries.
func (c *Client) doKeyed(ctx context.Context, key string, replicaSet bool, method, path string, body []byte, contentType string) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	attempts := 0
	backoff := c.opts.RetryBackoff
	var retryAfter time.Duration
	for pass := 0; pass <= c.opts.MaxRetries; pass++ {
		if pass > 0 {
			c.retryPasses.Add(1)
			// Honor the largest Retry-After the failed pass collected when
			// it exceeds our own exponential backoff: the server told us
			// when budget returns, and hammering earlier just burns the
			// remaining retry passes on guaranteed 429s.
			wait := backoff
			if retryAfter > wait {
				wait = retryAfter
			}
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("client: %s %s: %w", method, path, ctx.Err())
			case <-t.C:
			}
			backoff *= 2
			c.refreshAfterFailedPass(ctx)
		}
		retryAfter = 0
		v := c.view()
		order := rankEndpoints(v.eps, key)
		repl := len(order)
		if replicaSet && v.repl < repl {
			repl = v.repl
		}
		tried := map[*endpoint]bool{}
		for sweep := 0; sweep < 3; sweep++ {
			for i, ep := range order {
				if tried[ep] {
					continue
				}
				if sweep == 0 && i >= repl {
					continue
				}
				if sweep < 2 && !ep.admit(time.Now()) {
					continue
				}
				tried[ep] = true
				attempts++
				data, err, retryable, ra := c.attempt(ctx, ep, method, path, body, contentType)
				if err == nil {
					if i > 0 {
						c.failovers.Add(1)
					}
					return data, nil
				}
				if !retryable {
					return nil, err
				}
				if ra > retryAfter {
					retryAfter = ra
				}
				lastErr = err
			}
		}
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", attempts, lastErr)
}

// ClusterInfo fetches a node's live topology — membership table, epoch,
// drain state, plus the legacy advertise/peers fields — for endpoint
// discovery. RefreshTopology is the view-installing wrapper.
func (c *Client) ClusterInfo(ctx context.Context) (*server.ClusterInfo, error) {
	b, err := c.do(ctx, "GET", "/v1/cluster", nil, "")
	if err != nil {
		return nil, err
	}
	var info server.ClusterInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return nil, fmt.Errorf("client: cluster info: %w", err)
	}
	return &info, nil
}

// shardItem is one fragment routed through the sharded batch fetch.
type shardItem struct {
	vr  string
	fi  int
	key string // fragKey (cache/result key)
}

// fetchShards fetches the given fragments from the cluster: each fragment
// routes to the first available endpoint of its rendezvous order, the
// per-endpoint sub-batches travel as concurrent POSTs bounded by workers,
// and a sub-batch that fails with a retryable error is re-sharded onto
// the next replica of each of its fragments. Routing state is per pass:
// every iteration loads the current topology view and re-ranks the
// remaining fragments against it, so a view swap mid-call redirects only
// the fragments not yet fetched. Backoff and the MaxRetries budget apply
// only once every endpoint has failed the current pass — plain failover
// is free — and a failed pass forces a view refresh in elastic mode.
// A fragment served by an endpoint other than its current pass's primary
// counts one failover; each fragment is fetched successfully exactly
// once, so Failovers can never double-count a fragment across passes or
// view swaps. The result maps fragKey to payload (payloads alias the
// response blobs; callers clone before caching).
func (c *Client) fetchShards(ctx context.Context, dataset string, wants map[string][]int, workers int) (map[string][]byte, error) {
	var items []shardItem
	for _, vr := range sortedKeys(wants) {
		for _, fi := range wants[vr] {
			items = append(items, shardItem{vr: vr, fi: fi, key: fragKey(dataset, vr, fi)})
		}
	}
	if workers <= 0 {
		workers = 1
	}
	got := map[string][]byte{}
	remaining := items
	excluded := map[*endpoint]bool{}
	var lastErr error
	backoff := c.opts.RetryBackoff
	var retryAfter time.Duration
	pass := 0
	for len(remaining) > 0 {
		// Route every remaining fragment to the first endpoint of its
		// rendezvous order — in the topology view current *now* — that has
		// not failed this call: replicas with willing breakers first, then
		// any willing endpoint (healthy spill), and breaker-open nodes
		// only as a last resort — never ahead of a healthy non-replica.
		v := c.view()
		type assignment struct {
			items   []shardItem
			primary []bool // item's chosen endpoint was its rendezvous primary
		}
		groups := map[*endpoint]*assignment{}
		now := time.Now()
		for _, it := range remaining {
			order := rankEndpoints(v.eps, shardKey(it.vr, it.fi))
			var ep *endpoint
			for sweep := 0; sweep < 3 && ep == nil; sweep++ {
				for i, cand := range order {
					if excluded[cand] {
						continue
					}
					if sweep == 0 && i >= v.repl {
						continue
					}
					if sweep < 2 && !cand.admit(now) {
						continue
					}
					ep = cand
					break
				}
			}
			if ep != nil {
				g := groups[ep]
				if g == nil {
					g = &assignment{}
					groups[ep] = g
				}
				g.items = append(g.items, it)
				g.primary = append(g.primary, ep == order[0])
			}
		}
		if len(groups) == 0 {
			// Every endpoint has failed this pass: spend one unit of the
			// retry budget, back off, and give them all another chance.
			pass++
			if pass > c.opts.MaxRetries {
				return nil, fmt.Errorf("client: giving up after %d passes over %d endpoint(s): %w",
					pass, len(v.eps), lastErr)
			}
			c.retryPasses.Add(1)
			// As in doKeyed: when the pass died throttled, wait out the
			// server's Retry-After rather than our (possibly shorter)
			// exponential backoff.
			wait := backoff
			if retryAfter > wait {
				wait = retryAfter
			}
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("client: batch fetch: %w", ctx.Err())
			case <-t.C:
			}
			backoff *= 2
			retryAfter = 0
			excluded = map[*endpoint]bool{}
			c.refreshAfterFailedPass(ctx)
			continue
		}

		type groupResult struct {
			ep         *endpoint
			as         *assignment
			frags      []server.BatchFragment
			err        error
			retryable  bool
			retryAfter time.Duration
		}
		results := make([]groupResult, 0, len(groups))
		var (
			resMu sync.Mutex
			wg    sync.WaitGroup
		)
		sem := make(chan struct{}, workers)
		for ep, as := range groups {
			wg.Add(1)
			go func(ep *endpoint, as *assignment) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				byVar := map[string][]int{}
				for _, it := range as.items {
					byVar[it.vr] = append(byVar[it.vr], it.fi)
				}
				req := server.BatchRequest{}
				for _, vr := range sortedKeys(byVar) {
					req.Wants = append(req.Wants, server.BatchWant{Var: vr, Indices: byVar[vr]})
				}
				body, _ := json.Marshal(req)
				blob, err, retryable, ra := c.attempt(ctx, ep, "POST", "/v1/d/"+dataset+"/frags", body, "application/json")
				res := groupResult{ep: ep, as: as, err: err, retryable: retryable, retryAfter: ra}
				if err == nil {
					res.frags, res.err = server.DecodeBatch(blob)
					// A batch that decodes wrong is corruption, not an
					// unhealthy endpoint: fail the call like the
					// single-endpoint client did.
				}
				resMu.Lock()
				results = append(results, res)
				resMu.Unlock()
			}(ep, as)
		}
		wg.Wait()

		remaining = remaining[:0]
		for _, res := range results {
			switch {
			case res.err == nil:
				for _, f := range res.frags {
					got[fragKey(dataset, f.Var, f.Index)] = f.Payload
				}
				for i := range res.as.items {
					if !res.as.primary[i] {
						c.failovers.Add(1)
					}
				}
			case res.retryable:
				if ctx.Err() != nil {
					return nil, fmt.Errorf("client: batch fetch: %w", ctx.Err())
				}
				lastErr = res.err
				if res.retryAfter > retryAfter {
					retryAfter = res.retryAfter
				}
				excluded[res.ep] = true
				remaining = append(remaining, res.as.items...)
			default:
				return nil, res.err
			}
		}
	}
	return got, nil
}
