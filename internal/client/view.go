package client

// Topology views: the client-side half of elastic cluster membership.
// The routable endpoint set lives in an immutable, epoch-numbered
// clusterView behind an atomic pointer — the mirror image of the
// server's hot-publish catalog swap. Requests load the current view at
// the start of every retry pass, rank its endpoints by rendezvous hash,
// and enforce the replication-factor invariant against that view (repl
// is clamped per view, not per request), so a node joining or leaving
// moves only ~1/N of the key space and never invalidates an in-flight
// pass. RefreshTopology fetches /v1/cluster and installs the live
// membership as a new view; Options.TopologyRefresh runs it on a timer,
// and a fully failed retry pass forces it early so a rolling restart is
// observed within one backoff, not one refresh period.

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"progqoi/internal/server"
)

// refreshTimeout bounds one topology refresh round trip made by the
// background refresher (foreground refreshes inherit their caller's
// context).
const refreshTimeout = 5 * time.Second

// clusterView is one immutable snapshot of the routable cluster. A new
// membership observation builds a new view and swaps the pointer;
// nothing mutates a published view.
type clusterView struct {
	// epoch counts installed views in this client, monotonically: any
	// two Stats snapshots with equal epochs saw the identical routable
	// set. (Client-local on purpose — different cluster nodes report
	// their own server-side epochs, which need not agree mid-change.)
	epoch int64
	// eps are the routable endpoints: the cluster's alive members.
	// Suspect and draining nodes are excluded; endpoints removed from
	// the view keep their identity (breaker state, counters) in the
	// client registry and re-enter cheaply when they rejoin.
	eps []*endpoint
	// repl is the replica-set size enforced against THIS view:
	// Options.Replication clamped to the view's endpoint count. Shrink
	// the cluster below the configured factor and the invariant degrades
	// explicitly here instead of silently per request.
	repl int
}

// view returns the current topology view; never nil after New.
func (c *Client) view() *clusterView { return c.topo.Load() }

// intern returns the canonical endpoint object for base, creating it on
// first sight. Endpoint identity survives view swaps: a node that leaves
// and rejoins keeps its breaker history and traffic counters, and Stats
// keeps reporting endpoints that are no longer routable.
func (c *Client) intern(base string) *endpoint {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	if ep := c.epByURL[base]; ep != nil {
		return ep
	}
	ep := &endpoint{base: base, hash: fnv64(base)}
	c.epByURL[base] = ep
	c.epOrder = append(c.epOrder, ep)
	return ep
}

// installView publishes the given base URLs as the new routable view,
// skipping invalid or duplicate entries. It reports whether a new view
// was installed: an unchanged set installs nothing (in-flight passes and
// Stats.TopologyEpoch stay put), and an empty set is never installed —
// a refresh that would strand the client keeps the last good view, whose
// endpoints are still the best place to ask for the next topology.
func (c *Client) installView(bases []string) bool {
	var eps []*endpoint
	seen := map[string]bool{}
	for _, u := range bases {
		base := strings.TrimRight(u, "/")
		if base == "" || seen[base] ||
			(!strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://")) {
			continue
		}
		seen[base] = true
		eps = append(eps, c.intern(base))
	}
	if len(eps) == 0 {
		return false
	}
	repl := c.opts.Replication
	if repl > len(eps) {
		repl = len(eps)
	}
	for {
		cur := c.topo.Load()
		if cur != nil && sameEndpointSet(cur.eps, eps) {
			return false
		}
		var epoch int64 = 1
		if cur != nil {
			epoch = cur.epoch + 1
		}
		if c.topo.CompareAndSwap(cur, &clusterView{epoch: epoch, eps: eps, repl: repl}) {
			if cur != nil {
				c.viewSwaps.Add(1)
			}
			return true
		}
	}
}

// sameEndpointSet reports whether two views route to the same endpoints.
// Interning makes pointer identity canonical per base URL, and
// rendezvous ranking makes slice order irrelevant.
func sameEndpointSet(a, b []*endpoint) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[*endpoint]bool, len(a))
	for _, ep := range a {
		in[ep] = true
	}
	for _, ep := range b {
		if !in[ep] {
			return false
		}
	}
	return true
}

// routableFrom derives the routable base URLs from a /v1/cluster
// payload. Elastic servers list Members: alive ones are routable,
// suspect and draining ones are not. Legacy servers (no Members) expose
// advertise+peers; source (the endpoint that answered) stands in when
// the node does not know its own public URL. Static peers are honored in
// both cases — an operator-configured -peers list outranks gossip.
func routableFrom(info *server.ClusterInfo, source string) []string {
	var bases []string
	for _, m := range info.Members {
		if m.State == server.MemberAlive {
			bases = append(bases, m.Addr)
		}
	}
	if len(info.Members) == 0 {
		if info.Advertise != "" {
			bases = append(bases, info.Advertise)
		} else {
			bases = append(bases, source)
		}
	}
	return append(bases, info.Peers...)
}

// RefreshTopology re-resolves the cluster membership: it fetches
// /v1/cluster from the current view's endpoints (rendezvous order, so
// refresh load spreads like any other path-keyed request) and installs
// the answer as a new view. It reports whether the routable set changed.
// When every endpoint is unreachable the current view is kept and the
// last error returned. Safe for concurrent use.
func (c *Client) RefreshTopology(ctx context.Context) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	for _, ep := range rankEndpoints(c.view().eps, "/v1/cluster") {
		data, err, _, _ := c.attempt(ctx, ep, "GET", "/v1/cluster", nil, "")
		if err != nil {
			if ctx.Err() != nil {
				return false, err
			}
			lastErr = err
			continue
		}
		var info server.ClusterInfo
		if err := json.Unmarshal(data, &info); err != nil {
			lastErr = fmt.Errorf("client: cluster info from %s: %w", ep.base, err)
			continue
		}
		return c.installView(routableFrom(&info, ep.base)), nil
	}
	return false, lastErr
}

// refreshAfterFailedPass forces a topology re-resolve between retry
// passes — a whole pass with every endpoint failing is the signature of
// a topology change (rolling restart), and waiting out the refresh timer
// would burn the remaining retry budget on dead endpoints. Elastic mode
// only: static clients (no TopologyRefresh) keep their original retry
// behavior untouched.
func (c *Client) refreshAfterFailedPass(ctx context.Context) {
	if c.opts.TopologyRefresh <= 0 {
		return
	}
	_, _ = c.RefreshTopology(ctx)
}

// refresher is the background topology loop started by New when
// Options.TopologyRefresh is set; Close stops it.
func (c *Client) refresher() {
	defer c.refreshWG.Done()
	t := time.NewTicker(c.opts.TopologyRefresh)
	defer t.Stop()
	for {
		select {
		case <-c.refreshStop:
			return
		case <-t.C:
		}
		// Topology maintenance belongs to the shared client, not to
		// whichever session happens to be running, so the refresh detaches
		// from session contexts and times itself out.
		//progqoivet:allow ctxflow -- background topology refresh outlives any one session; Close stops the loop
		ctx, cancel := context.WithTimeout(context.Background(), refreshTimeout)
		_, _ = c.RefreshTopology(ctx)
		cancel()
	}
}

// Close stops the background topology refresher and waits for it. A
// client without one closes trivially; Close is idempotent and the
// client remains usable for requests afterwards (the view just stops
// following the cluster).
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.refreshStop) })
	c.refreshWG.Wait()
}

// epSnapshot copies the registry in first-seen order (configured
// endpoints first, then discovered ones) for Stats and Endpoints.
func (c *Client) epSnapshot() []*endpoint {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	return append([]*endpoint(nil), c.epOrder...)
}
