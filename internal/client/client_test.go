package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/encoding"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func testVars(t *testing.T) []*core.Variable {
	t.Helper()
	ds := datagen.GE("GE-cli", 4, 128, 11)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vars
}

// serviceFor serves the given variables as dataset "ge" through an
// optional middleware.
func serviceFor(t *testing.T, vars []*core.Variable, middleware func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(context.Background(), st, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var h http.Handler = srv
	if middleware != nil {
		h = middleware(srv)
	}
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs
}

// testService serves one dataset "ge" through an optional middleware.
func testService(t *testing.T, middleware func(http.Handler) http.Handler) (*httptest.Server, []*core.Variable) {
	t.Helper()
	vars := testVars(t)
	return serviceFor(t, vars, middleware), vars
}

func fastOptions() Options {
	return Options{MaxRetries: 3, RetryBackoff: time.Millisecond}
}

func TestRetryOn5xxThenSuccess(t *testing.T) {
	var failures atomic.Int64
	failures.Store(2)
	var attempts atomic.Int64
	hs, vars := testService(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.Contains(r.URL.Path, "/frag/") {
				attempts.Add(1)
				if failures.Add(-1) >= 0 {
					http.Error(w, "transient", http.StatusServiceUnavailable)
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	})
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	frag, err := c.Fragment(context.Background(), "ge", vars[0].Name, 0)
	if err != nil {
		t.Fatalf("fragment after transient 5xx: %v", err)
	}
	if string(frag) != string(vars[0].Ref.Fragments[0]) {
		t.Fatal("payload mismatch")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (2 failures + 1 success)", got)
	}
}

func TestRetryExhaustion(t *testing.T) {
	var attempts atomic.Int64
	hs, vars := testService(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.Contains(r.URL.Path, "/frag/") {
				attempts.Add(1)
				http.Error(w, "down", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fragment(context.Background(), "ge", vars[0].Name, 0); err == nil {
		t.Fatal("persistent 5xx did not fail")
	} else if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("error %v does not report retry exhaustion", err)
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("%d attempts, want 4 (1 + 3 retries)", got)
	}
}

func TestNoRetryOn404(t *testing.T) {
	hs, _ := testService(t, nil)
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := c.Stats().WireRequests
	_, err = c.Fragment(context.Background(), "ge", "NoSuchVar", 0)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 404 {
		t.Fatalf("want HTTPError 404, got %v", err)
	}
	if got := c.Stats().WireRequests - before; got != 1 {
		t.Fatalf("404 issued %d requests, want 1 (no retry)", got)
	}
}

func TestTruncatedBodyRetriesThenFails(t *testing.T) {
	var attempts atomic.Int64
	hs, vars := testService(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.Contains(r.URL.Path, "/frag/") {
				attempts.Add(1)
				// Promise more bytes than we send: the client sees an
				// unexpected EOF mid-body.
				w.Header().Set("Content-Length", "4096")
				w.Write([]byte("short")) //nolint:errcheck
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fragment(context.Background(), "ge", vars[0].Name, 0); err == nil {
		t.Fatal("truncated body did not fail")
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("%d attempts, want 4 (truncation retried)", got)
	}
}

func TestCorruptBatchDetected(t *testing.T) {
	vars := testVars(t)
	hs := serviceFor(t, vars, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/frags") {
				blob := server.EncodeBatch([]server.BatchFragment{{Var: vars[0].Name, Index: 0, Payload: []byte("xx")}})
				blob[len(blob)/2] ^= 0x20
				w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
				w.Write(blob) //nolint:errcheck
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Fragments(context.Background(), "ge", map[string][]int{vars[0].Name: {0}})
	if !errors.Is(err, encoding.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for corrupted batch, got %v", err)
	}
}

func TestShortFragmentAgainstIndexDetected(t *testing.T) {
	vars := testVars(t)
	hs := serviceFor(t, vars, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/frags") {
				// A well-formed batch whose payload is shorter than the
				// index-declared fragment size: only the size cross-check
				// can catch it.
				blob := server.EncodeBatch([]server.BatchFragment{{Var: vars[0].Name, Index: 0, Payload: []byte("tiny")}})
				w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
				w.Write(blob) //nolint:errcheck
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Fragments(context.Background(), "ge", map[string][]int{vars[0].Name: {0}})
	if !errors.Is(err, encoding.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for short fragment, got %v", err)
	}
}

func TestCacheEvictionUnderBytePressure(t *testing.T) {
	hs, vars := testService(t, nil)
	sizes := make([]int64, 4)
	for i := range sizes {
		sizes[i] = int64(len(vars[0].Ref.Fragments[i]))
	}
	opt := fastOptions()
	opt.CacheBytes = sizes[2] + sizes[3] // room for roughly two fragments
	c, err := New(hs.URL, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Fragment(context.Background(), "ge", vars[0].Name, i); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.CacheEvictions == 0 {
		t.Fatalf("no evictions under byte pressure: %+v", st)
	}
	if st.CacheBytes > opt.CacheBytes {
		t.Fatalf("cache %d bytes exceeds cap %d", st.CacheBytes, opt.CacheBytes)
	}
	// Fragment 0 was evicted long ago: re-fetching it pays the wire again.
	wire := c.Stats().WireBytes
	if _, err := c.Fragment(context.Background(), "ge", vars[0].Name, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().WireBytes == wire {
		t.Fatal("evicted fragment came back without wire bytes")
	}
}

func TestCoalescingConcurrentFetches(t *testing.T) {
	var batchCalls atomic.Int64
	gate := make(chan struct{})
	hs, vars := testService(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/frags") {
				batchCalls.Add(1)
				<-gate // hold the first fetch open until the second session queues on it
			}
			next.ServeHTTP(w, r)
		})
	})
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{vars[0].Name: {0, 1}}
	var wg sync.WaitGroup
	results := make([]map[string]map[int][]byte, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Fragments(context.Background(), "ge", want)
		}(i)
	}
	// Wait until one goroutine owns the in-flight fetch and the other has
	// coalesced onto it, then release the server.
	deadline := time.After(5 * time.Second)
	for c.Stats().Coalesced < 2 {
		select {
		case <-deadline:
			t.Fatalf("second fetch never coalesced: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for fi, payload := range results[i][vars[0].Name] {
			if string(payload) != string(vars[0].Ref.Fragments[fi]) {
				t.Fatalf("session %d fragment %d mismatch", i, fi)
			}
		}
	}
	if got := batchCalls.Load(); got != 1 {
		t.Fatalf("%d batch requests for identical concurrent wants, want 1", got)
	}
	st := c.Stats()
	wantWire := int64(len(vars[0].Ref.Fragments[0]) + len(vars[0].Ref.Fragments[1]))
	if st.WireBytes != wantWire {
		t.Fatalf("wire bytes %d, want %d (each fragment fetched once)", st.WireBytes, wantWire)
	}
}

// TestCoalescedWaiterSurvivesOwnerCancellation pins the isolation
// guarantee: when the session owning an in-flight batch cancels its
// context, a coalesced waiter with a live context re-fetches on its own
// instead of inheriting the owner's cancellation.
func TestCoalescedWaiterSurvivesOwnerCancellation(t *testing.T) {
	gate := make(chan struct{})
	var batchCalls atomic.Int64
	hs, vars := testService(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/frags") {
				if batchCalls.Add(1) == 1 {
					<-gate // park only the owner's fetch
				}
			}
			next.ServeHTTP(w, r)
		})
	})
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{vars[0].Name: {0, 1}}
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := c.Fragments(ownerCtx, "ge", want)
		ownerErr <- err
	}()
	// Wait until the owner's batch is parked on the server, then coalesce.
	deadline := time.After(5 * time.Second)
	for batchCalls.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("owner batch never reached the server")
		case <-time.After(time.Millisecond):
		}
	}
	waiterDone := make(chan struct{})
	var waiterRes map[string]map[int][]byte
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterRes, waiterErr = c.Fragments(context.Background(), "ge", want)
	}()
	for c.Stats().Coalesced < 2 {
		select {
		case <-deadline:
			t.Fatalf("waiter never coalesced: %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	cancelOwner()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner: want context.Canceled, got %v", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never finished after owner cancellation")
	}
	close(gate)
	if waiterErr != nil {
		t.Fatalf("live waiter inherited the owner's cancellation: %v", waiterErr)
	}
	for fi, payload := range waiterRes[vars[0].Name] {
		if string(payload) != string(vars[0].Ref.Fragments[fi]) {
			t.Fatalf("waiter fragment %d mismatch after re-fetch", fi)
		}
	}
	if got := batchCalls.Load(); got < 2 {
		t.Fatalf("waiter did not issue its own fetch (%d batch calls)", got)
	}
}

func TestConcurrentSessionsShareWire(t *testing.T) {
	hs, _ := testService(t, nil)
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	rem, err := c.OpenDataset(context.Background(), "ge")
	if err != nil {
		t.Fatal(err)
	}
	vtot := qoi.TotalVelocity(0, 1, 2)
	const sessions = 4
	var wg sync.WaitGroup
	retrieved := make([]int64, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt, err := rem.NewSession(nil, core.Config{})
			if err != nil {
				errs[i] = err
				return
			}
			res, err := rt.Retrieve(context.Background(), core.Request{QoIs: []qoi.QoI{vtot}, Tolerances: []float64{5e-3}})
			if err != nil {
				errs[i] = err
				return
			}
			retrieved[i] = res.RetrievedBytes
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i := 1; i < sessions; i++ {
		if retrieved[i] != retrieved[0] {
			t.Fatalf("sessions disagree on RetrievedBytes: %v", retrieved)
		}
	}
	// Cache + coalescing guarantee every fragment crosses the wire at most
	// once, so N concurrent identical sessions cost the wire exactly what
	// one session retrieves.
	st := c.Stats()
	if st.WireBytes != retrieved[0] {
		t.Fatalf("wire bytes %d for %d sessions, want %d (one session's worth)",
			st.WireBytes, sessions, retrieved[0])
	}
	if st.CacheHits+st.Coalesced == 0 {
		t.Fatal("no sharing observed across concurrent sessions")
	}
}

func TestRemoteStore(t *testing.T) {
	ctx := context.Background()
	hs, vars := testService(t, nil)
	c, err := New(hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs := c.Store()
	keys, err := rs.Keys(ctx)
	if err != nil || len(keys) == 0 {
		t.Fatalf("keys: %v %v", keys, err)
	}
	got, err := storage.ReadArchive(context.Background(), rs, "ge")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vars) {
		t.Fatalf("%d variables, want %d", len(got), len(vars))
	}
	for i := range got {
		if got[i].Name != vars[i].Name || got[i].Ref.TotalBytes() != vars[i].Ref.TotalBytes() {
			t.Fatalf("variable %d differs after remote ReadArchive", i)
		}
	}
	if _, err := rs.Get(ctx, "no-such-key"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := rs.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("put on read-only store: %v", err)
	}
}

func TestBadBaseURL(t *testing.T) {
	if _, err := New("ftp://nope", Options{}); err == nil {
		t.Fatal("ftp scheme accepted")
	}
}
