package client

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"progqoi/internal/server"
)

// elasticInfo swaps the /v1/cluster payload a test node serves, so
// client-side refresh tests can script membership changes without
// running the server-side heartbeat machinery.
type elasticInfo struct{ v atomic.Value }

func (e *elasticInfo) set(info server.ClusterInfo) { e.v.Store(info) }

// withElasticCluster intercepts GET /v1/cluster on every node with the
// scripted payload; all other routes pass through.
func withElasticCluster(t *testing.T, nodes []*clusterNode) *elasticInfo {
	t.Helper()
	e := &elasticInfo{}
	e.set(server.ClusterInfo{Peers: []string{}})
	for _, n := range nodes {
		inner := n.hs.Config.Handler
		n.hs.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodGet && r.URL.Path == "/v1/cluster" {
				b, _ := json.Marshal(e.v.Load().(server.ClusterInfo))
				w.Header().Set("Content-Type", "application/json")
				w.Write(b) //nolint:errcheck
				return
			}
			inner.ServeHTTP(w, r)
		})
	}
	return e
}

// alive builds a ClusterInfo whose members are all alive.
func aliveMembers(addrs ...string) server.ClusterInfo {
	info := server.ClusterInfo{Peers: []string{}, Epoch: 1}
	for i, a := range addrs {
		info.Members = append(info.Members, server.MemberInfo{Addr: a, Generation: int64(i + 1), State: server.MemberAlive})
	}
	return info
}

// TestInstallViewSemantics pins the view installer's contract: epochs
// count installed changes, identical sets are no-ops, empty or invalid
// sets never displace a good view, and the replication clamp is
// re-derived per view.
func TestInstallViewSemantics(t *testing.T) {
	c, err := New("http://a:1", Options{Endpoints: []string{"http://b:2"}, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	v0 := c.view()
	if v0.epoch != 1 || len(v0.eps) != 2 || v0.repl != 2 {
		t.Fatalf("initial view = epoch %d, %d eps, repl %d", v0.epoch, len(v0.eps), v0.repl)
	}
	// Same set (order and spelling variants included): no install.
	if c.installView([]string{"http://b:2/", "http://a:1"}) {
		t.Fatal("identical set installed a new view")
	}
	if c.view() != v0 {
		t.Fatal("view pointer changed on a no-op install")
	}
	// A genuinely different set bumps the epoch and re-clamps repl.
	if !c.installView([]string{"http://a:1"}) {
		t.Fatal("shrunk set not installed")
	}
	v1 := c.view()
	if v1.epoch != 2 || len(v1.eps) != 1 || v1.repl != 1 {
		t.Fatalf("shrunk view = epoch %d, %d eps, repl %d", v1.epoch, len(v1.eps), v1.repl)
	}
	// Growing back re-uses the interned endpoint objects: identity (and
	// with it breaker state) survives leaving the view.
	if !c.installView([]string{"http://a:1", "http://b:2"}) {
		t.Fatal("regrown set not installed")
	}
	for _, ep := range c.view().eps {
		found := false
		for _, old := range v0.eps {
			if ep == old {
				found = true
			}
		}
		if !found {
			t.Fatalf("endpoint %s lost its identity across view swaps", ep.base)
		}
	}
	// Empty and all-invalid sets are refused outright.
	if c.installView(nil) || c.installView([]string{"ftp://x", "", "nope"}) {
		t.Fatal("unusable set installed")
	}
	if got := c.view().epoch; got != 3 {
		t.Fatalf("epoch after refused installs = %d, want 3", got)
	}
	if st := c.Stats(); st.TopologyEpoch != 3 || st.TopologySwaps != 2 {
		t.Fatalf("stats epoch/swaps = %d/%d, want 3/2", st.TopologyEpoch, st.TopologySwaps)
	}
}

// TestRefreshTopologyRoutesAliveMembersOnly exercises the client half of
// the membership protocol: a refresh installs exactly the alive members
// of the fetched view — suspect and draining nodes drop out — and a
// refresh that reaches nobody keeps the last good view.
func TestRefreshTopologyRoutesAliveMembersOnly(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 3)
	info := withElasticCluster(t, nodes)
	c := clusterClient(t, nodes, fastOptions())

	// All three alive: refresh is a no-op (same set).
	info.set(aliveMembers(nodes[0].hs.URL, nodes[1].hs.URL, nodes[2].hs.URL))
	changed, err := c.RefreshTopology(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("identical membership changed the view")
	}

	// Node 1 goes suspect, node 2 starts draining: both leave the view.
	sick := aliveMembers(nodes[0].hs.URL, nodes[1].hs.URL, nodes[2].hs.URL)
	sick.Members[1].State = server.MemberSuspect
	sick.Members[2].State = server.MemberDraining
	info.set(sick)
	changed, err = c.RefreshTopology(context.Background())
	if err != nil || !changed {
		t.Fatalf("refresh after suspicion: changed=%v err=%v", changed, err)
	}
	v := c.view()
	if len(v.eps) != 1 || v.eps[0].base != nodes[0].hs.URL {
		t.Fatalf("routable view = %v, want only node0", v.eps)
	}
	if st := c.Stats(); len(st.Routable) != 1 || st.Routable[0] != nodes[0].hs.URL {
		t.Fatalf("Stats.Routable = %v", st.Routable)
	}

	// Back to healthy; then all nodes unreachable: the view survives.
	info.set(aliveMembers(nodes[0].hs.URL, nodes[1].hs.URL, nodes[2].hs.URL))
	if changed, err = c.RefreshTopology(context.Background()); err != nil || !changed {
		t.Fatalf("recovery refresh: changed=%v err=%v", changed, err)
	}
	for _, n := range nodes {
		n.hs.Close()
	}
	if _, err = c.RefreshTopology(context.Background()); err == nil {
		t.Fatal("refresh with cluster down reported success")
	}
	if got := len(c.view().eps); got != 3 {
		t.Fatalf("view shrank to %d endpoints on a failed refresh", got)
	}
}

// TestFailedPassForcesRefresh proves the rolling-restart rescue path: a
// client whose whole view is failing re-resolves topology between retry
// passes (elastic mode only) and completes on the discovered node
// without burning the retry budget on the dead one.
func TestFailedPassForcesRefresh(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 2)
	info := withElasticCluster(t, nodes)

	opt := fastOptions()
	opt.TopologyRefresh = time.Hour     // elastic mode on; the timer never fires in-test
	c, err := New(nodes[0].hs.URL, opt) // view = node0 only
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Node 0's data plane dies, but its control plane still answers and
	// advertises node 1 — exactly a node mid-restart handing off.
	nodes[0].fail.Store(true)
	info.set(aliveMembers(nodes[0].hs.URL, nodes[1].hs.URL))
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, vars, got)
	if posts := nodes[1].batchPosts.Load(); posts == 0 {
		t.Fatal("discovered node served nothing")
	}
	if st := c.Stats(); st.TopologySwaps == 0 {
		t.Fatal("no view swap recorded")
	}

	// Static clients (no TopologyRefresh) keep legacy behavior: the same
	// dead-view situation exhausts retries and fails.
	sc, err := New(nodes[0].hs.URL, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Fragments(context.Background(), "ge", allWants(vars)); err == nil {
		t.Fatal("static client silently adopted elastic refresh")
	}
}

// TestViewSwapRace is the elastic race suite: topology views swapping
// concurrently with in-flight batched fetches and breaker transitions.
// An endpoint removed from the view mid-pass must fail over — never
// panic, never lose a fragment, never double-count a failover. Run with
// -race; the assertions below catch logic races the detector cannot.
func TestViewSwapRace(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 3)
	opt := fastOptions()
	opt.Replication = 2
	opt.CacheBytes = -1 // every call refetches, maximizing wire concurrency
	c := clusterClient(t, nodes, opt)

	var frags int
	for _, v := range vars {
		frags += len(v.Ref.Fragments)
	}
	urls := []string{nodes[0].hs.URL, nodes[1].hs.URL, nodes[2].hs.URL}
	viewSets := [][]string{
		urls,
		{urls[0], urls[1]},
		{urls[1], urls[2]},
		{urls[0], urls[2]},
		{urls[2]},
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	// Swapper: churn through views including every removal pattern.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.installView(viewSets[i%len(viewSets)])
		}
	}()
	// Flapper: bounce node 1 between failing and healthy so breakers
	// open and half-open while views change underneath them.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nodes[1].fail.Store(i%2 == 0)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const fetchers, rounds = 4, 8
	errs := make(chan error, fetchers)
	var fetch sync.WaitGroup
	for f := 0; f < fetchers; f++ {
		fetch.Add(1)
		go func() {
			defer fetch.Done()
			for r := 0; r < rounds; r++ {
				got, err := c.Fragments(context.Background(), "ge", allWants(vars))
				if err != nil {
					errs <- err
					return
				}
				checkPayloads(t, vars, got)
			}
		}()
	}
	fetch.Wait()
	close(stop)
	churn.Wait()

	select {
	case err := <-errs:
		// With node 1 flapping and views churning, every fetch should
		// still succeed: replication 2 guarantees a live replica in all
		// scripted views except the {node2} singleton, where node 2 is
		// always healthy.
		t.Fatalf("fetch failed under view churn: %v", err)
	default:
	}
	st := c.Stats()
	// Failover accounting: at most one failover per fetched fragment per
	// call — a double-counted fragment would exceed this ceiling.
	if max := int64(fetchers * rounds * frags); st.Failovers > max {
		t.Fatalf("Failovers = %d exceeds %d fragments fetched (double-counted)", st.Failovers, max)
	}
	if st.TopologySwaps == 0 {
		t.Fatal("view churn recorded no swaps")
	}
}
