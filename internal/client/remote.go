package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/obs"
	"progqoi/internal/progressive"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// readAheadTimeout bounds one background read-ahead fetch; nothing waits on
// it, so a stuck speculative request must time itself out.
const readAheadTimeout = 2 * time.Minute

// ErrReadOnly reports a write against the remote store, which the fragment
// service does not accept: archives are immutable once refactored.
var ErrReadOnly = errors.New("client: remote store is read-only")

// RemoteStore adapts the service's raw store passthrough to storage.Store,
// so generic archive code (storage.ReadArchive and friends) runs unchanged
// over the wire. Reads go through the client's retry policy; writes return
// ErrReadOnly.
type RemoteStore struct{ c *Client }

// Store returns the service's raw blob store view.
func (c *Client) Store() *RemoteStore { return &RemoteStore{c: c} }

// Put implements storage.Store; it always fails with ErrReadOnly.
func (s *RemoteStore) Put(ctx context.Context, key string, val []byte) error {
	return fmt.Errorf("%w (key %q)", ErrReadOnly, key)
}

// Get implements storage.Store. A nil ctx defaults to Background.
func (s *RemoteStore) Get(ctx context.Context, key string) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b, err := s.c.do(ctx, "GET", "/v1/store/blob/"+key, nil, "")
	var he *HTTPError
	if errors.As(err, &he) && he.Status == 404 {
		return nil, fmt.Errorf("%w: %q", storage.ErrNotFound, key)
	}
	return b, err
}

// Keys implements storage.Store. A nil ctx defaults to Background.
func (s *RemoteStore) Keys(ctx context.Context) ([]string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b, err := s.c.do(ctx, "GET", "/v1/store/keys", nil, "")
	if err != nil {
		return nil, err
	}
	var out struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("client: store keys: %w", err)
	}
	return out.Keys, nil
}

// Remote is an opened remote dataset: the retrieval metadata of every
// variable (prefix bounds, schedules, zero masks, ranges) held locally,
// fragment payloads fetched lazily per retrieval iteration. One Remote can
// serve many concurrent sessions; they share the client's cache and
// coalesce duplicate fetches.
type Remote struct {
	c       *Client
	dataset string
	vars    []*core.Variable // meta-only: fragment payloads are placeholders
	stored  int64

	specWG sync.WaitGroup // in-flight read-ahead fetches
}

// WaitReadAhead blocks until every in-flight background read-ahead fetch
// has finished — for orderly shutdown and deterministic tests; sessions
// never need it.
func (r *Remote) WaitReadAhead() { r.specWG.Wait() }

// Close waits for in-flight read-ahead fetches and stops the underlying
// client's background topology refresher. Only the Remote that owns its
// client (the Open path) should call it; with a shared client (New +
// OpenDataset across datasets), close the client once instead.
func (r *Remote) Close() {
	r.WaitReadAhead()
	r.c.Close()
}

// Open dials baseURL and opens the named dataset with fresh client
// options; ctx scopes the metadata round trips (and, with
// Options.DiscoverPeers, one best-effort topology fetch). Share one
// Client across datasets via New + OpenDataset when the cache should
// span them.
func Open(ctx context.Context, baseURL, dataset string, opt Options) (*Remote, error) {
	if opt.DiscoverPeers {
		// Ask the seed node for its topology and fold the routable nodes
		// (alive members on an elastic cluster, static peers otherwise)
		// into the endpoint set. Best-effort: a node without the route
		// (or an unreachable one — the configured endpoints may still
		// cover for it) is treated as advertising nothing.
		seed, err := New(baseURL, Options{
			HTTPClient:   opt.HTTPClient,
			MaxRetries:   opt.MaxRetries,
			RetryBackoff: opt.RetryBackoff,
			CacheBytes:   -1,
			Token:        opt.Token,
		})
		if err != nil {
			return nil, err
		}
		if info, err := seed.ClusterInfo(ctx); err == nil {
			opt.Endpoints = append(append([]string(nil), opt.Endpoints...), routableFrom(info, baseURL)...)
		}
	}
	c, err := New(baseURL, opt)
	if err != nil {
		return nil, err
	}
	return c.OpenDataset(ctx, dataset)
}

// OpenDataset fetches the dataset's index and metadata blob and returns a
// session factory for it. ctx scopes the two metadata fetches only;
// sessions opened later carry their own per-request contexts.
func (c *Client) OpenDataset(ctx context.Context, dataset string) (*Remote, error) {
	idx, err := c.Index(ctx, dataset)
	if err != nil {
		return nil, err
	}
	blob, err := c.do(ctx, "GET", "/v1/d/"+dataset+"/meta", nil, "")
	if err != nil {
		return nil, err
	}
	vars, err := server.DecodeMeta(blob)
	if err != nil {
		return nil, err
	}
	if len(vars) != len(idx.Variables) {
		return nil, fmt.Errorf("client: dataset %s: meta has %d variables, index %d", dataset, len(vars), len(idx.Variables))
	}
	var stored int64
	for i, v := range vars {
		iv := idx.Variables[i]
		if v.Name != iv.Name {
			return nil, fmt.Errorf("client: dataset %s: meta variable %q != index %q", dataset, v.Name, iv.Name)
		}
		if len(v.Ref.Fragments) != len(iv.FragmentSizes) {
			return nil, fmt.Errorf("client: dataset %s: %s has %d fragments in meta, %d in index",
				dataset, v.Name, len(v.Ref.Fragments), len(iv.FragmentSizes))
		}
		stored += iv.TotalBytes
	}
	return &Remote{c: c, dataset: dataset, vars: vars, stored: stored}, nil
}

// Client returns the underlying client (shared cache, wire stats).
func (r *Remote) Client() *Client { return r.c }

// Dataset returns the dataset name.
func (r *Remote) Dataset() string { return r.dataset }

// FieldNames returns the dataset's variable names in order.
func (r *Remote) FieldNames() []string {
	out := make([]string, len(r.vars))
	for i, v := range r.vars {
		out[i] = v.Name
	}
	return out
}

// Dims returns the dataset's grid shape.
func (r *Remote) Dims() []int {
	if len(r.vars) == 0 {
		return nil
	}
	return append([]int(nil), r.vars[0].Ref.Dims...)
}

// StoredBytes returns the total fragment bytes held at the storage site.
func (r *Remote) StoredBytes() int64 { return r.stored }

// NewSession opens a QoI retrieval session whose fragment fetches travel
// the wire in one batched request per retrieval iteration. fetch (optional)
// observes every ingested fragment exactly as in the local path, so byte
// accounting (e.g. a netsim.Recorder) works identically. Any Prefetch
// already set in cfg is replaced.
//
// With Options.ReadAhead > 0 the prefetch hook pipelines the wire with the
// decoder: once iteration N's batch is installed it launches a background
// fetch of the fragments a tightening iteration would request next, so the
// network works on batch N+1 while the worker pool decodes batch N. The
// speculative payloads land in the client's shared cache; iteration N+1
// either hits the cache or coalesces onto the still-in-flight fetch.
func (r *Remote) NewSession(fetch progressive.FetchFunc, cfg core.Config) (*core.Retriever, error) {
	// Each session owns its fragment payload slots; metadata (blocks,
	// bounds, schedules, masks) is immutable and shared across sessions.
	vars := make([]*core.Variable, len(r.vars))
	for i, v := range r.vars {
		ref := *v.Ref
		ref.Fragments = make([][]byte, len(v.Ref.Fragments))
		cv := *v
		cv.Ref = &ref
		vars[i] = &cv
	}
	// The session's Workers budget bounds the concurrent per-shard
	// sub-batches too, so wire fan-out never exceeds compute fan-out.
	workers := cfg.Workers
	cfg.Prefetch = func(ctx context.Context, need [][]int) error {
		wants := map[string][]int{}
		for vi, idxs := range need {
			for _, fi := range idxs {
				if fi < 0 || fi >= len(vars[vi].Ref.Fragments) {
					return fmt.Errorf("client: plan wants fragment %s/%d of %d", vars[vi].Name, fi, len(vars[vi].Ref.Fragments))
				}
				if len(vars[vi].Ref.Fragments[fi]) == 0 {
					wants[vars[vi].Name] = append(wants[vars[vi].Name], fi)
				}
			}
		}
		if len(wants) == 0 {
			return nil
		}
		got, err := r.c.FragmentsWorkers(ctx, r.dataset, wants, workers)
		if err != nil {
			return err
		}
		for vi := range vars {
			for fi, payload := range got[vars[vi].Name] {
				vars[vi].Ref.Fragments[fi] = payload
			}
		}
		r.readAhead(ctx, need, vars)
		return nil
	}
	cfg.WireBytes = func() int64 { return r.c.wireBytes.Load() }
	return core.NewRetriever(vars, cfg, fetch)
}

// readAhead launches the speculative fetch of the fragments just past each
// variable's current plan (the contiguous-prefix representations always
// request next fragments in order, so the prediction is exact for PMGARD
// and PSZ3-Delta). It returns immediately; errors are swallowed — a failed
// speculation costs nothing but the attempt.
func (r *Remote) readAhead(ctx context.Context, need [][]int, vars []*core.Variable) {
	ra := r.c.opts.ReadAhead
	if ra <= 0 {
		return
	}
	spec := map[string][]int{}
	var count int64
	for vi, idxs := range need {
		if len(idxs) == 0 {
			continue
		}
		last := idxs[0]
		for _, fi := range idxs {
			if fi > last {
				last = fi
			}
		}
		frags := vars[vi].Ref.Fragments
		for fi := last + 1; fi <= last+ra && fi < len(frags); fi++ {
			if len(frags[fi]) == 0 {
				spec[vars[vi].Name] = append(spec[vars[vi].Name], fi)
				count++
			}
		}
	}
	if len(spec) == 0 {
		return
	}
	r.c.speculated.Add(count)
	r.specWG.Add(1)
	// Detach from the iteration's deadline but keep its trace and request
	// ID: speculative fetches increment WireBytes, so they must also record
	// fetch spans or the trace's byte reconciliation would leak.
	tr, rid := obs.TraceFrom(ctx), obs.RequestIDFrom(ctx)
	go func() {
		defer r.specWG.Done()
		//progqoivet:allow ctxflow -- speculative read-ahead must outlive the iteration that spawned it
		sctx, cancel := context.WithTimeout(context.Background(), readAheadTimeout)
		defer cancel()
		sctx = obs.ContextWithRequestID(obs.ContextWithTrace(sctx, tr), rid)
		r.c.Fragments(sctx, r.dataset, spec) //nolint:errcheck // speculative
	}()
}
