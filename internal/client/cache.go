package client

import (
	"container/list"
	"sync"
)

// lruCache is a byte-bounded LRU over fragment payloads. Values are stored
// by reference — fragments are immutable on both ends of the wire — so a
// hit costs no copy.
type lruCache struct {
	mu        sync.Mutex
	capBytes  int64                    // immutable after construction
	size      int64                    // guarded by mu
	ll        *list.List               // guarded by mu; front = most recently used
	items     map[string]*list.Element // guarded by mu
	evictions int64                    // guarded by mu
}

type lruEntry struct {
	key string
	val []byte
}

func newLRUCache(capBytes int64) *lruCache {
	return &lruCache{capBytes: capBytes, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key string, val []byte) {
	if c.capBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.size += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
		c.size += int64(len(val))
	}
	for c.size > c.capBytes && c.ll.Len() > 0 {
		back := c.ll.Back()
		e := back.Value.(*lruEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.size -= int64(len(e.val))
		c.evictions++
	}
}

func (c *lruCache) stats() (bytes int64, entries int, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size, c.ll.Len(), c.evictions
}
