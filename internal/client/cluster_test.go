package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// clusterNode is one test cluster member: a real fragment service plus
// request counters and a switchable failure mode.
type clusterNode struct {
	hs         *httptest.Server
	batchPosts atomic.Int64
	fragGets   atomic.Int64
	fail       atomic.Bool // 500 every data request while set
}

// testCluster serves the same archive from n independent nodes.
func testCluster(t *testing.T, vars []*core.Variable, n int) []*clusterNode {
	t.Helper()
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		srv, err := server.New(context.Background(), st, server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		node := &clusterNode{}
		node.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch {
			case strings.Contains(r.URL.Path, "/frags"):
				node.batchPosts.Add(1)
			case strings.Contains(r.URL.Path, "/frag/"):
				node.fragGets.Add(1)
			}
			if node.fail.Load() && strings.Contains(r.URL.Path, "/frag") {
				http.Error(w, "induced failure", http.StatusInternalServerError)
				return
			}
			srv.ServeHTTP(w, r)
		}))
		t.Cleanup(node.hs.Close)
		nodes[i] = node
	}
	return nodes
}

func clusterClient(t *testing.T, nodes []*clusterNode, opt Options) *Client {
	t.Helper()
	for _, n := range nodes[1:] {
		opt.Endpoints = append(opt.Endpoints, n.hs.URL)
	}
	c, err := New(nodes[0].hs.URL, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// allWants asks for every fragment of every variable.
func allWants(vars []*core.Variable) map[string][]int {
	wants := map[string][]int{}
	for _, v := range vars {
		for fi := range v.Ref.Fragments {
			wants[v.Name] = append(wants[v.Name], fi)
		}
	}
	return wants
}

func checkPayloads(t *testing.T, vars []*core.Variable, got map[string]map[int][]byte) {
	t.Helper()
	for _, v := range vars {
		for fi, want := range v.Ref.Fragments {
			b, ok := got[v.Name][fi]
			if !ok {
				t.Fatalf("fragment %s/%d missing", v.Name, fi)
			}
			if string(b) != string(want) {
				t.Fatalf("fragment %s/%d payload differs", v.Name, fi)
			}
		}
	}
}

func TestRendezvousDeterministicAndOrderIndependent(t *testing.T) {
	mk := func(urls ...string) *Client {
		c, err := New(urls[0], Options{Endpoints: urls[1:]})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	c1 := mk(urls[0], urls[1], urls[2])
	c2 := mk(urls[2], urls[0], urls[1])
	for _, key := range []string{shardKey("Vx", 0), shardKey("Vx", 7), shardKey("Pressure", 3), "/v1/datasets"} {
		o1, o2 := c1.candidates(key), c2.candidates(key)
		for i := range o1 {
			if o1[i].base != o2[i].base {
				t.Fatalf("key %q: order differs between clients: %s vs %s", key, o1[i].base, o2[i].base)
			}
		}
	}
	// Rendezvous must spread primaries roughly evenly: no node may own
	// less than half its fair share of 300 keys (the raw-FNV scoring this
	// replaced could starve a node completely).
	primaries := map[string]int{}
	for _, v := range []string{"Vx", "Vy", "Vz", "Pressure", "Density"} {
		for fi := 0; fi < 60; fi++ {
			primaries[c1.candidates(shardKey(v, fi))[0].base]++
		}
	}
	for _, u := range urls {
		if primaries[u] < 50 {
			t.Fatalf("node %s owns %d of 300 primaries (want >= 50): %v", u, primaries[u], primaries)
		}
	}
}

func TestReplicationClampAndEndpoints(t *testing.T) {
	c, err := New("http://a:1", Options{Endpoints: []string{"http://b:2", "http://a:1/"}, Replication: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Endpoints(); len(got) != 2 { // the duplicate (trailing slash) deduped
		t.Fatalf("endpoints = %v", got)
	}
	if got := c.view().repl; got != 2 {
		t.Fatalf("replication = %d, want clamped 2", got)
	}
	if _, err := New("ftp://nope", Options{}); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := New("http://ok:1", Options{Endpoints: []string{"nope"}}); err == nil {
		t.Fatal("bad extra endpoint accepted")
	}
}

func TestShardedBatchSplitsAcrossNodes(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 3)
	c := clusterClient(t, nodes, fastOptions())
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, vars, got)
	posts, served := 0, 0
	for i, n := range nodes {
		p := int(n.batchPosts.Load())
		t.Logf("node %d: %d batch POSTs", i, p)
		posts += p
		if p > 0 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("sharding used %d of 3 nodes", served)
	}
	if posts != served {
		t.Fatalf("%d POSTs across %d nodes: sub-batches retried unexpectedly", posts, served)
	}
	if st := c.Stats(); st.Failovers != 0 {
		t.Fatalf("healthy cluster recorded %d failovers", st.Failovers)
	}
}

func TestFailoverOnDeadNode(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 3)
	c := clusterClient(t, nodes, fastOptions())
	// Kill one node outright: connections refuse, fetches must fail over
	// and every payload still arrive bit-identical.
	nodes[1].hs.Close()
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatalf("fetch with a dead node: %v", err)
	}
	checkPayloads(t, vars, got)
	st := c.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead node")
	}
	var deadErrors int64
	for _, ep := range st.Endpoints {
		if ep.URL == nodes[1].hs.URL {
			deadErrors = ep.Errors
		}
	}
	if deadErrors == 0 {
		t.Fatalf("dead endpoint shows no errors: %+v", st.Endpoints)
	}
}

func TestFailoverOn5xxNode(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 3)
	c := clusterClient(t, nodes, fastOptions())
	nodes[0].fail.Store(true)
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatalf("fetch with a 500ing node: %v", err)
	}
	checkPayloads(t, vars, got)
	if st := c.Stats(); st.Failovers == 0 {
		t.Fatal("no failovers recorded despite a 500ing node")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	ep := &endpoint{base: "http://x:1"}
	cooldown := 25 * time.Millisecond
	now := time.Now()
	if !ep.admit(now) {
		t.Fatal("fresh endpoint refused")
	}
	for i := 0; i < breakerThreshold-1; i++ {
		ep.report(false, cooldown)
		if !ep.admit(now) {
			t.Fatalf("breaker opened after %d failures (threshold %d)", i+1, breakerThreshold)
		}
	}
	ep.report(false, cooldown) // reaches threshold
	if ep.admit(time.Now()) {
		t.Fatal("breaker did not open at threshold")
	}
	if got := ep.snapshot().State; got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	time.Sleep(2 * cooldown)
	if !ep.admit(time.Now()) {
		t.Fatal("no half-open probe after cooldown")
	}
	if got := ep.snapshot().State; got != "probing" {
		t.Fatalf("state = %q, want probing", got)
	}
	if ep.admit(time.Now()) {
		t.Fatal("second probe admitted while first in flight")
	}
	ep.report(false, cooldown) // failed probe reopens immediately
	if ep.admit(time.Now()) {
		t.Fatal("breaker closed after failed probe")
	}
	time.Sleep(2 * cooldown)
	if !ep.admit(time.Now()) {
		t.Fatal("no second probe")
	}
	ep.report(true, cooldown)
	if !ep.admit(time.Now()) || ep.snapshot().State != "ok" {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestBreakerRoutesAroundSickNodeThenRecovers(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 2)
	opt := fastOptions()
	opt.CacheBytes = -1 // every call exercises the wire
	// Long enough that the open phase cannot expire mid-test even under
	// -race; the recovery phase fast-forwards it by hand.
	opt.BreakerCooldown = time.Minute
	c := clusterClient(t, nodes, opt)
	ctx := context.Background()
	wants := allWants(vars)

	nodes[0].fail.Store(true)
	// Enough failed calls to trip node 0's breaker (one health failure per
	// call: the first sub-batch 500s, then everything reroutes to node 1).
	for i := 0; i < breakerThreshold; i++ {
		if _, err := c.Fragments(ctx, "ge", wants); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	before := nodes[0].batchPosts.Load()
	if _, err := c.Fragments(ctx, "ge", wants); err != nil {
		t.Fatal(err)
	}
	if after := nodes[0].batchPosts.Load(); after != before {
		t.Fatalf("open breaker still sent %d POSTs to the sick node", after-before)
	}

	// Node recovers. Expire the cooldown by hand (deterministic under
	// -race, unlike sleeping): the next call's half-open probe lets the
	// node back in.
	nodes[0].fail.Store(false)
	for _, ep := range c.view().eps {
		if ep.base == nodes[0].hs.URL {
			ep.mu.Lock()
			ep.openUntil = time.Now()
			ep.mu.Unlock()
		}
	}
	if _, err := c.Fragments(ctx, "ge", wants); err != nil {
		t.Fatal(err)
	}
	if nodes[0].batchPosts.Load() == before {
		t.Fatal("recovered node never probed back into rotation")
	}
	var state string
	for _, ep := range c.Stats().Endpoints {
		if ep.URL == nodes[0].hs.URL {
			state = ep.State
		}
	}
	if state != "ok" {
		t.Fatalf("recovered endpoint state = %q, want ok", state)
	}
}

func TestOpenDiscoversPeers(t *testing.T) {
	vars := testVars(t)
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	var peers []*httptest.Server
	for i := 0; i < 2; i++ {
		srv, err := server.New(context.Background(), st, server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		t.Cleanup(hs.Close)
		peers = append(peers, hs)
	}
	seedSrv, err := server.New(context.Background(), st, server.Options{Peers: []string{peers[0].URL, peers[1].URL}})
	if err != nil {
		t.Fatal(err)
	}
	seed := httptest.NewServer(seedSrv)
	t.Cleanup(seed.Close)

	opt := fastOptions()
	opt.DiscoverPeers = true
	rem, err := Open(context.Background(), seed.URL, "ge", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := rem.Client().Endpoints(); len(got) != 3 {
		t.Fatalf("discovered endpoints = %v, want 3", got)
	}
}

func TestAbortedProbeReleasesHalfOpen(t *testing.T) {
	ep := &endpoint{base: "http://x:1"}
	cooldown := time.Millisecond
	for i := 0; i < breakerThreshold; i++ {
		ep.report(false, cooldown)
	}
	time.Sleep(2 * cooldown)
	if !ep.admit(time.Now()) {
		t.Fatal("no probe after cooldown")
	}
	// The probe's context dies mid-request: the slot must come back so the
	// endpoint is not stuck half-open (= demoted) forever.
	ep.abortProbe()
	if !ep.admit(time.Now()) {
		t.Fatal("aborted probe did not release the half-open slot")
	}
	ep.report(true, cooldown)
	if ep.snapshot().State != "ok" {
		t.Fatal("probe success did not close the breaker")
	}
}

func TestSpillPrefersHealthyNodeOverOpenReplicas(t *testing.T) {
	vars := testVars(t)
	nodes := testCluster(t, vars, 3)
	opt := fastOptions()
	opt.Replication = 2
	c := clusterClient(t, nodes, opt)
	// Force-open two breakers with a far-future cooldown. Every shard
	// whose whole replica set they cover must spill straight to the
	// healthy third node without dialing the open ones.
	for _, ep := range c.view().eps[:2] {
		ep.mu.Lock()
		ep.state = bkOpen
		ep.openUntil = time.Now().Add(time.Hour)
		ep.mu.Unlock()
	}
	before0, before1 := nodes[0].batchPosts.Load()+nodes[0].fragGets.Load(),
		nodes[1].batchPosts.Load()+nodes[1].fragGets.Load()
	got, err := c.Fragments(context.Background(), "ge", allWants(vars))
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, vars, got)
	after0, after1 := nodes[0].batchPosts.Load()+nodes[0].fragGets.Load(),
		nodes[1].batchPosts.Load()+nodes[1].fragGets.Load()
	if after0 != before0 || after1 != before1 {
		t.Fatalf("breaker-open nodes were dialed despite a healthy spill target: %d/%d new requests",
			after0-before0, after1-before1)
	}
}
