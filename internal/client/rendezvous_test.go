package client

import (
	"fmt"
	"math/rand"
	"testing"
)

// mkEndpoints builds n endpoints named like real cluster nodes.
func mkEndpoints(n int) []*endpoint {
	eps := make([]*endpoint, n)
	for i := range eps {
		base := fmt.Sprintf("http://node%d:9123", i)
		eps[i] = &endpoint{base: base, hash: fnv64(base)}
	}
	return eps
}

// shardKeys builds a realistic key population: five variables, nk
// fragments each.
func shardKeys(nk int) []string {
	vars := []string{"Vx", "Vy", "Vz", "P", "D"}
	keys := make([]string, 0, len(vars)*nk)
	for _, vr := range vars {
		for fi := 0; fi < nk; fi++ {
			keys = append(keys, shardKey(vr, fi))
		}
	}
	return keys
}

func owners(eps []*endpoint, keys []string) map[string]*endpoint {
	out := make(map[string]*endpoint, len(keys))
	for _, k := range keys {
		out[k] = rankEndpoints(eps, k)[0]
	}
	return out
}

// TestRendezvousRebalanceBound is the property test for elastic
// rebalancing: across randomized N→N+1 and N→N-1 transitions, the
// fraction of keys whose owner changes stays near the ideal 1/N — the
// whole point of rendezvous hashing over mod-N sharding, where a single
// join reshuffles nearly everything.
func TestRendezvousRebalanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := shardKeys(200) // 1000 keys
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8) // clusters of 2..9 nodes
		eps := mkEndpoints(n)
		rng.Shuffle(len(eps), func(i, j int) { eps[i], eps[j] = eps[j], eps[i] })
		before := owners(eps, keys)

		t.Run(fmt.Sprintf("trial%d_grow_%d_to_%d", trial, n, n+1), func(t *testing.T) {
			extra := &endpoint{base: fmt.Sprintf("http://joiner%d:9123", trial)}
			extra.hash = fnv64(extra.base)
			grown := append(append([]*endpoint(nil), eps...), extra)
			moved := 0
			for k, prev := range before {
				now := rankEndpoints(grown, k)[0]
				if now != prev {
					moved++
					// Every moved key must have moved TO the joiner:
					// rendezvous scores are per (endpoint, key), so an
					// added node cannot shuffle keys between survivors.
					if now != extra {
						t.Fatalf("key %q moved %s -> %s, not to the joiner", k, prev.base, now.base)
					}
				}
			}
			frac, ideal := float64(moved)/float64(len(keys)), 1/float64(n+1)
			// 1.6x headroom over the ideal covers hash variance at 1000
			// keys while still catching any systematic reshuffle.
			if frac > 1.6*ideal {
				t.Fatalf("grow moved %.1f%% of keys, ideal %.1f%%", 100*frac, 100*ideal)
			}
		})

		t.Run(fmt.Sprintf("trial%d_shrink_%d", trial, n), func(t *testing.T) {
			gone := eps[rng.Intn(n)]
			var shrunk []*endpoint
			for _, ep := range eps {
				if ep != gone {
					shrunk = append(shrunk, ep)
				}
			}
			for k, prev := range before {
				now := rankEndpoints(shrunk, k)[0]
				if prev == gone {
					// Orphaned keys must land on their previous second
					// choice — that is what makes replica fetches warm.
					if want := rankEndpoints(eps, k)[1]; now != want {
						t.Fatalf("orphaned key %q landed on %s, want old runner-up %s", k, now.base, want.base)
					}
				} else if now != prev {
					t.Fatalf("key %q owned by surviving %s moved to %s on unrelated removal",
						k, prev.base, now.base)
				}
			}
		})
	}
}

// TestRendezvousOrderIndependence pins that ownership — the full
// preference order, not just the winner — is identical no matter what
// order a client learned the peers in, which is what lets nodes with
// different join histories agree on every fragment's primary.
func TestRendezvousOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eps := mkEndpoints(7)
	keys := shardKeys(40)
	want := make(map[string][]string, len(keys))
	for _, k := range keys {
		var bases []string
		for _, ep := range rankEndpoints(eps, k) {
			bases = append(bases, ep.base)
		}
		want[k] = bases
	}
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]*endpoint(nil), eps...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, k := range keys {
			got := rankEndpoints(shuffled, k)
			for i, ep := range got {
				if ep.base != want[k][i] {
					t.Fatalf("trial %d key %q: rank %d is %s, want %s", trial, k, i, ep.base, want[k][i])
				}
			}
		}
	}
}

// TestRendezvousGolden pins the splitmix64-mixed scoring against
// accidental reshuffles: changing the mixer, the FNV seed, the shard-key
// encoding, or the tie-break silently remaps every fragment in every
// deployed cluster (cold caches fleet-wide), so the exact assignment is
// frozen here.
func TestRendezvousGolden(t *testing.T) {
	eps := mkEndpoints(5)
	want := map[string]string{
		shardKey("Vx", 0):  "http://node4:9123",
		shardKey("Vx", 1):  "http://node0:9123",
		shardKey("Vx", 2):  "http://node0:9123",
		shardKey("Vx", 3):  "http://node1:9123",
		shardKey("Vy", 0):  "http://node2:9123",
		shardKey("Vy", 7):  "http://node1:9123",
		shardKey("Vz", 11): "http://node1:9123",
		shardKey("P", 0):   "http://node4:9123",
		shardKey("P", 5):   "http://node1:9123",
		shardKey("D", 63):  "http://node2:9123",
	}
	for k, wantBase := range want {
		if got := rankEndpoints(eps, k)[0].base; got != wantBase {
			t.Fatalf("owner of %q = %s, want pinned %s (scoring function changed?)", k, got, wantBase)
		}
	}
	// And the mixer itself: splitmix64 finalizer reference values.
	for _, tc := range []struct{ in, out uint64 }{
		{0, 0},
		{1, 0x5692161d100b05e5},
		{0x9e3779b97f4a7c15, 0xe220a8397b1dcdaf},
	} {
		if got := mix64(tc.in); got != tc.out {
			t.Fatalf("mix64(%#x) = %#x, want %#x", tc.in, got, tc.out)
		}
	}
}
