package bitplane

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randGroups builds coefficient groups of mixed sizes, including an
// all-zero group and an empty one, to exercise every EncodeAll branch.
func randGroups(seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{1, 7, 64, 513, 0, 200}
	groups := make([][]float64, len(sizes))
	for g, n := range sizes {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
		groups[g] = vals
	}
	groups[4] = []float64{} // empty
	if len(groups[5]) > 0 {
		for i := range groups[5] {
			groups[5][i] = 0 // all-zero block
		}
	}
	return groups
}

func blocksEqual(t *testing.T, a, b *Block) {
	t.Helper()
	if a.N != b.N || a.Exp != b.Exp || a.B != b.B {
		t.Fatalf("header differs: %+v vs %+v", a, b)
	}
	if !bytes.Equal(a.Signs, b.Signs) {
		t.Fatal("sign fragments differ")
	}
	if len(a.Planes) != len(b.Planes) {
		t.Fatalf("plane counts differ: %d vs %d", len(a.Planes), len(b.Planes))
	}
	for p := range a.Planes {
		if !bytes.Equal(a.Planes[p], b.Planes[p]) {
			t.Fatalf("plane %d differs", p)
		}
	}
}

// TestEncodeAllMatchesEncode is the encode-side bit-identity guarantee:
// pooling the per-(group, plane) compression changes no stored byte, for
// any worker count.
func TestEncodeAllMatchesEncode(t *testing.T) {
	groups := randGroups(7)
	want := make([]*Block, len(groups))
	for g, vals := range groups {
		blk, err := Encode(vals, 40)
		if err != nil {
			t.Fatal(err)
		}
		want[g] = blk
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := EncodeAll(groups, 40, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d blocks", workers, len(got))
		}
		for g := range want {
			blocksEqual(t, want[g], got[g])
		}
	}
}

// TestEncodeAllRejectsBadInput mirrors Encode's validation: non-finite
// values and out-of-range plane counts fail, from any group position.
func TestEncodeAllRejectsBadInput(t *testing.T) {
	if _, err := EncodeAll([][]float64{{1, 2}}, 0, 4); err == nil {
		t.Fatal("numPlanes 0 accepted")
	}
	if _, err := EncodeAll([][]float64{{1, 2}}, 63, 4); err == nil {
		t.Fatal("numPlanes 63 accepted")
	}
	groups := [][]float64{{1, 2}, {3, math.NaN()}, {5}}
	if _, err := EncodeAll(groups, 30, 4); err == nil {
		t.Fatal("NaN accepted")
	}
	groups[1][1] = math.Inf(1)
	if _, err := EncodeAll(groups, 30, 4); err == nil {
		t.Fatal("Inf accepted")
	}
}

// TestEncodeAllRoundTrip decodes pooled-encode output through the normal
// Decoder to full precision.
func TestEncodeAllRoundTrip(t *testing.T) {
	groups := randGroups(11)
	blocks, err := EncodeAll(groups, DefaultPlanes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for g, blk := range blocks {
		d := NewDecoder(blk)
		if err := d.Advance(blk.B); err != nil {
			t.Fatal(err)
		}
		vals := d.Values()
		bound := blk.Bound(blk.B)
		for i, v := range groups[g] {
			if math.Abs(v-vals[i]) > bound {
				t.Fatalf("group %d value %d: |%g-%g| > %g", g, i, v, vals[i], bound)
			}
		}
	}
}
