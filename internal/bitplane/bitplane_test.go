package bitplane

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVals(rng *rand.Rand, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (rng.Float64()*2 - 1) * scale
	}
	return out
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	for _, bad := range [][]float64{{math.NaN()}, {math.Inf(1)}, {1, math.Inf(-1)}} {
		if _, err := Encode(bad, 20); err == nil {
			t.Errorf("Encode(%v) should fail", bad)
		}
	}
	if _, err := Encode([]float64{1}, 0); err == nil {
		t.Error("numPlanes 0 should fail")
	}
	if _, err := Encode([]float64{1}, 63); err == nil {
		t.Error("numPlanes 63 should fail")
	}
}

func TestAllZerosBlock(t *testing.T) {
	b, err := Encode(make([]float64, 100), 30)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bound(0) != 0 || b.Bound(30) != 0 {
		t.Fatal("all-zero block should have zero bound")
	}
	d := NewDecoder(b)
	if err := d.Advance(5); err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Values() {
		if v != 0 {
			t.Fatal("all-zero block should decode to zeros")
		}
	}
	if b.TotalSize() != 0 {
		t.Fatalf("all-zero block stores %d bytes", b.TotalSize())
	}
}

func TestEmptyBlock(t *testing.T) {
	b, err := Encode(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(b)
	if err := d.Advance(10); err != nil {
		t.Fatal(err)
	}
	if len(d.Values()) != 0 {
		t.Fatal("empty block should decode empty")
	}
}

func TestProgressiveBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := randVals(rng, 1000, 123.0)
	vals[0] = 123.0 // exercise the max boundary
	vals[1] = -123.0
	b, err := Encode(vals, DefaultPlanes)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(b)
	prevBound := math.Inf(1)
	for k := 0; k <= b.B; k += 3 {
		if err := d.Advance(k); err != nil {
			t.Fatal(err)
		}
		got := d.Values()
		bound := d.Bound()
		if bound > prevBound {
			t.Fatalf("bound not monotone at k=%d: %g > %g", k, bound, prevBound)
		}
		prevBound = bound
		for i := range vals {
			if e := math.Abs(vals[i] - got[i]); e > bound {
				t.Fatalf("k=%d i=%d: error %g exceeds bound %g", k, i, e, bound)
			}
		}
	}
}

func TestFullPrecisionRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := randVals(rng, 500, 1e6)
	b, err := Encode(vals, DefaultPlanes)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(b)
	if err := d.Advance(b.B); err != nil {
		t.Fatal(err)
	}
	got := d.Values()
	tol := b.Bound(b.B)
	for i := range vals {
		if math.Abs(vals[i]-got[i]) > tol {
			t.Fatalf("i=%d: %g vs %g (tol %g)", i, vals[i], got[i], tol)
		}
	}
	// Full recovery should be extremely precise relative to magnitude.
	if rel := tol / 1e6; rel > 1e-15 {
		t.Fatalf("full-precision relative bound too loose: %g", rel)
	}
}

func TestSignsRecovered(t *testing.T) {
	vals := []float64{-1, 1, -0.5, 0.5, -0.25, 0.25, 0}
	b, err := Encode(vals, 40)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(b)
	if err := d.Advance(40); err != nil {
		t.Fatal(err)
	}
	got := d.Values()
	for i, v := range vals {
		if v < 0 && got[i] > 0 || v > 0 && got[i] < 0 {
			t.Fatalf("sign lost at %d: %g -> %g", i, v, got[i])
		}
	}
}

func TestZeroPlanesDecodesZero(t *testing.T) {
	vals := []float64{3, -4, 5}
	b, _ := Encode(vals, 20)
	d := NewDecoder(b)
	for _, v := range d.Values() {
		if v != 0 {
			t.Fatal("no planes applied should give zeros")
		}
	}
	if d.Bound() < 4 { // must cover max |v| = 5 < 2^3
		t.Fatalf("bound %g too small with no data", d.Bound())
	}
}

func TestAdvanceClampsAndIsIdempotent(t *testing.T) {
	vals := []float64{1, 2, 3}
	b, _ := Encode(vals, 10)
	d := NewDecoder(b)
	if err := d.Advance(100); err != nil {
		t.Fatal(err)
	}
	if d.Applied() != 10 {
		t.Fatalf("applied = %d", d.Applied())
	}
	v1 := d.Values()
	if err := d.Advance(5); err != nil { // backwards advance is a no-op
		t.Fatal(err)
	}
	v2 := d.Values()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("no-op advance changed values")
		}
	}
}

func TestPlaneSizeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, _ := Encode(randVals(rng, 4096, 1), 30)
	sum := 0
	for p := 0; p < 30; p++ {
		sum += b.PlaneSize(p)
	}
	if sum != b.TotalSize() {
		t.Fatalf("plane sizes %d != total %d", sum, b.TotalSize())
	}
	if b.PlaneSize(0) <= len(b.Planes[0]) {
		t.Fatal("plane 0 must include sign fragment cost")
	}
}

func TestLeadingZeroPlanesCompress(t *testing.T) {
	// Values much smaller than a single large one: high planes nearly empty.
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = 1e-6
	}
	vals[0] = 1.0
	b, _ := Encode(vals, 50)
	if b.PlaneSize(1) > 200 {
		t.Fatalf("near-empty plane stored %d bytes", b.PlaneSize(1))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := randVals(rng, 777, 3.14)
	b, _ := Encode(vals, 25)
	buf := b.Marshal()
	b2, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	d1, d2 := NewDecoder(b), NewDecoder(b2)
	if err := d1.Advance(25); err != nil {
		t.Fatal(err)
	}
	if err := d2.Advance(25); err != nil {
		t.Fatal(err)
	}
	v1, v2 := d1.Values(), d2.Values()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("marshal round trip mismatch at %d", i)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	b, _ := Encode(vals, 12)
	buf := b.Marshal()
	for _, cut := range []int{0, 3, 10, len(buf) - 1} {
		if _, _, err := Unmarshal(buf[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestCorruptFragmentDetected(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b, _ := Encode(vals, 12)
	b.Planes[0] = []byte{99, 1, 2} // bad tag
	d := NewDecoder(b)
	if err := d.Advance(1); err == nil {
		t.Fatal("bad tag not detected")
	}
	b.Planes[0] = nil
	d = NewDecoder(b)
	if err := d.Advance(1); err == nil {
		t.Fatal("empty fragment not detected")
	}
}

func TestPropertyBoundSoundness(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		scale := math.Ldexp(1, rng.Intn(40)-20)
		vals := randVals(rng, n, scale)
		b, err := Encode(vals, 45)
		if err != nil {
			return false
		}
		k := int(kRaw) % 46
		d := NewDecoder(b)
		if err := d.Advance(k); err != nil {
			return false
		}
		bound := d.Bound()
		for i, v := range d.Values() {
			if math.Abs(vals[i]-v) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode4K(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	vals := randVals(rng, 4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(vals, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode4K(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	vals := randVals(rng, 4096, 1)
	blk, _ := Encode(vals, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(blk)
		if err := d.Advance(32); err != nil {
			b.Fatal(err)
		}
		_ = d.Values()
	}
}
