// Package bitplane implements progressive-precision encoding of float64
// coefficient blocks, the mechanism PMGARD-style refactoring uses to serve
// data "from the most to the least significant bit" (paper §II, §V-B).
//
// A block of coefficients shares one binary exponent e chosen so that every
// |v| < 2^e. Magnitudes are converted to B-bit fixed point under that
// exponent and sliced into B bit planes from most to least significant; the
// sign bits travel with the first plane. Retrieving the first k planes
// reconstructs every value with a guaranteed error
//
//	|v − v̂| ≤ 2^e · (2^−k + 2^−B)
//
// which is exactly the per-fragment L∞ bound the QoI retrieval loop consumes.
// Each plane is independently compressed (DEFLATE with a raw fallback) so
// leading all-zero planes cost almost nothing.
package bitplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"progqoi/internal/encoding"
)

// DefaultPlanes is the default fixed-point width: enough for full double
// precision recovery relative to the block magnitude.
const DefaultPlanes = 60

// ErrBadInput reports non-finite input values.
var ErrBadInput = errors.New("bitplane: input must be finite")

// Block is an encoded coefficient block: per-plane compressed fragments plus
// the shared exponent metadata needed to decode any prefix of planes.
type Block struct {
	N      int      // number of coefficients
	Exp    int      // shared exponent: all |v| < 2^Exp (meaningful when N>0 and not all-zero)
	B      int      // total planes available
	Signs  []byte   // compressed sign bitmap (fetched with the first plane)
	Planes [][]byte // compressed magnitude planes, MSB first
}

// Encode slices vals into numPlanes bit planes. numPlanes ≤ 62; values must
// be finite. An all-zero block encodes to zero-length planes.
func Encode(vals []float64, numPlanes int) (*Block, error) {
	blocks, err := EncodeAll([][]float64{vals}, numPlanes, 1)
	if err != nil {
		return nil, err
	}
	return blocks[0], nil
}

// EncodeAll encodes several coefficient groups at once, scheduling the
// per-plane slicing and compression of every group over one bounded pool
// of workers goroutines (≤ 1 selects the sequential path). Each fragment
// is sliced and compressed independently, so the output blocks are
// bit-identical to calling Encode per group — only the schedule changes.
// This is the encode-side mirror of the Reader's decode pool.
func EncodeAll(groups [][]float64, numPlanes, workers int) ([]*Block, error) {
	if numPlanes <= 0 || numPlanes > 62 {
		return nil, fmt.Errorf("bitplane: numPlanes %d outside (0,62]", numPlanes)
	}
	blocks := make([]*Block, len(groups))
	mags := make([][]uint64, len(groups))
	signs := make([][]byte, len(groups))
	errs := make([]error, len(groups))
	// Stage 1: per-group fixed-point conversion (exponent, magnitudes,
	// sign bitmap).
	runTasks(workers, len(groups), func(gi int) {
		blocks[gi], mags[gi], signs[gi], errs[gi] = prepare(groups[gi], numPlanes)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Stage 2: one task per stored fragment — the sign bitmap and every
	// magnitude plane of every non-zero group — over the same pool. Each
	// task writes only its own slot, so the merge is deterministic.
	type task struct{ gi, p int } // p == -1 is the sign fragment
	var tasks []task
	for gi, blk := range blocks {
		if blk.Exp == math.MinInt32 {
			continue // all-zero block: no fragments at all
		}
		blk.Planes = make([][]byte, numPlanes)
		tasks = append(tasks, task{gi, -1})
		for p := 0; p < numPlanes; p++ {
			tasks = append(tasks, task{gi, p})
		}
	}
	terrs := make([]error, len(tasks))
	runTasks(workers, len(tasks), func(ti int) {
		t := tasks[ti]
		blk := blocks[t.gi]
		if t.p < 0 {
			blk.Signs, terrs[ti] = compressFragment(signs[t.gi])
			return
		}
		blk.Planes[t.p], terrs[ti] = slicePlane(mags[t.gi], blk.N, numPlanes, t.p)
	})
	for _, err := range terrs {
		if err != nil {
			return nil, err
		}
	}
	return blocks, nil
}

// prepare runs the sequential head of the encode: validation, shared
// exponent, fixed-point magnitudes and the raw sign bitmap. All-zero (or
// empty) groups come back with Exp = math.MinInt32 and nil magnitudes.
func prepare(vals []float64, numPlanes int) (*Block, []uint64, []byte, error) {
	maxAbs := 0.0
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, nil, ErrBadInput
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	b := &Block{N: len(vals), B: numPlanes}
	if len(vals) == 0 || maxAbs == 0 {
		b.Exp = math.MinInt32 // marks the all-zero block; Bound() treats it as 0
		return b, nil, nil, nil
	}
	// Choose e with maxAbs < 2^e (frexp: maxAbs = f·2^exp, f ∈ [0.5,1)).
	_, exp := math.Frexp(maxAbs)
	b.Exp = exp
	scale := math.Ldexp(1, numPlanes-exp) // 2^(B-e)

	// Fixed-point magnitudes and signs.
	mags := make([]uint64, len(vals))
	signBits := make([]byte, (len(vals)+7)/8)
	limit := (uint64(1) << uint(numPlanes)) - 1
	for i, v := range vals {
		if v < 0 {
			signBits[i/8] |= 1 << uint(i%8)
		}
		m := uint64(math.Abs(v) * scale) // floor; |v|·2^(B-e) < 2^B
		if m > limit {
			m = limit // guards the v == maxAbs boundary under rounding
		}
		mags[i] = m
	}
	return b, mags, signBits, nil
}

// slicePlane extracts plane p (MSB-first) of the fixed-point magnitudes as
// a bitmap and compresses it. Pure function of its arguments, so plane
// tasks can run on any goroutine in any order.
func slicePlane(mags []uint64, n, numPlanes, p int) ([]byte, error) {
	bit := uint(numPlanes - 1 - p)
	raw := make([]byte, (n+7)/8)
	for i, m := range mags {
		if m>>bit&1 == 1 {
			raw[i/8] |= 1 << uint(i%8)
		}
	}
	return compressFragment(raw)
}

// runTasks runs fn(0..n-1) on up to workers goroutines, handing out indices
// from an atomic counter. workers ≤ 1 (or a single task) runs inline.
func runTasks(workers, n int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Bound returns the guaranteed L∞ reconstruction error after applying the
// first k planes (0 ≤ k ≤ B). For k = 0 the bound is 2^Exp (values unknown,
// reconstructed as zero). All-zero blocks have bound 0 for any k.
func (b *Block) Bound(k int) float64 {
	if b.N == 0 || b.Exp == math.MinInt32 {
		return 0
	}
	if k < 0 {
		k = 0
	}
	if k >= b.B {
		return math.Ldexp(1, b.Exp-b.B) // truncation only
	}
	return math.Ldexp(1, b.Exp-k) + math.Ldexp(1, b.Exp-b.B)
}

// PlaneSize returns the stored byte size of plane p, including the sign
// fragment for p = 0. This is the retrieval cost accounting unit.
func (b *Block) PlaneSize(p int) int {
	if b.Exp == math.MinInt32 {
		return 0
	}
	n := len(b.Planes[p])
	if p == 0 {
		n += len(b.Signs)
	}
	return n
}

// TotalSize returns the total stored bytes of all fragments.
func (b *Block) TotalSize() int {
	n := len(b.Signs)
	for _, p := range b.Planes {
		n += len(p)
	}
	return n
}

// Decoder incrementally reconstructs a block as planes arrive.
type Decoder struct {
	blk     *Block
	mags    []uint64
	signs   []byte
	applied int
}

// NewDecoder prepares incremental decoding of b.
func NewDecoder(b *Block) *Decoder {
	return &Decoder{blk: b, mags: make([]uint64, b.N)}
}

// Applied returns the number of planes applied so far.
func (d *Decoder) Applied() int { return d.applied }

// Advance applies planes until k planes are active (k ≥ current). Advancing
// past b.B is clamped.
func (d *Decoder) Advance(k int) error {
	if k > d.blk.B {
		k = d.blk.B
	}
	if d.blk.N == 0 || d.blk.Exp == math.MinInt32 {
		d.applied = k
		return nil
	}
	if d.applied == 0 && k > 0 {
		raw, err := decompressFragment(d.blk.Signs, (d.blk.N+7)/8)
		if err != nil {
			return fmt.Errorf("bitplane: signs: %w", err)
		}
		d.signs = raw
	}
	for p := d.applied; p < k; p++ {
		raw, err := decompressFragment(d.blk.Planes[p], (d.blk.N+7)/8)
		if err != nil {
			return fmt.Errorf("bitplane: plane %d: %w", p, err)
		}
		bit := uint(d.blk.B - 1 - p)
		for i := 0; i < d.blk.N; i++ {
			if raw[i/8]>>uint(i%8)&1 == 1 {
				d.mags[i] |= 1 << bit
			}
		}
	}
	if k > d.applied {
		d.applied = k
	}
	return nil
}

// Values reconstructs the current approximation. With zero planes applied it
// returns zeros (bound 2^Exp).
func (d *Decoder) Values() []float64 {
	out := make([]float64, d.blk.N)
	if d.applied == 0 || d.blk.Exp == math.MinInt32 {
		return out
	}
	inv := math.Ldexp(1, d.blk.Exp-d.blk.B) // 2^(e-B)
	for i, m := range d.mags {
		v := float64(m) * inv
		if d.signs != nil && d.signs[i/8]>>uint(i%8)&1 == 1 {
			v = -v
		}
		out[i] = v
	}
	return out
}

// Bound returns the current guaranteed L∞ error of Values().
func (d *Decoder) Bound() float64 { return d.blk.Bound(d.applied) }

// The three-step decode surface below (RawBitmap → OrPlane/SetSigns →
// CommitPlanes) decomposes Advance so a caller can decompress fragments and
// apply bit planes with its own worker pool. Advance(k) is exactly
// RawBitmap of each missing plane (plus signs when starting from zero),
// OrPlane over the whole coefficient range, then CommitPlanes(k); any
// interleaving of disjoint OrPlane ranges produces bit-identical magnitudes
// because plane application only ORs independent bits.

// RawBitmap decompresses one of the block's compressed fragments (a
// magnitude plane or the sign fragment) into its raw bitmap of
// ceil(N/8) bytes. It does not touch decoder state and is safe to call
// concurrently.
func (b *Block) RawBitmap(frag []byte) ([]byte, error) {
	return decompressFragment(frag, (b.N+7)/8)
}

// OrPlane ORs the raw bitmap of plane p into the decoder's magnitudes for
// coefficients [lo, hi). Callers running concurrent OrPlane calls must keep
// their ranges disjoint; planes of the same range may be applied in any
// order. Applied() is unchanged until CommitPlanes.
func (d *Decoder) OrPlane(p int, raw []byte, lo, hi int) {
	bit := uint(d.blk.B - 1 - p)
	for i := lo; i < hi; i++ {
		if raw[i/8]>>uint(i%8)&1 == 1 {
			d.mags[i] |= 1 << bit
		}
	}
}

// SetSigns installs the decompressed sign bitmap (RawBitmap of Block.Signs).
func (d *Decoder) SetSigns(raw []byte) { d.signs = raw }

// CommitPlanes records that every plane below k has been fully applied via
// OrPlane, making Values()/Bound() reflect them. k past B is clamped;
// committing below the current Applied() is a no-op, so replays of
// already-applied planes (idempotent under OR) are harmless.
func (d *Decoder) CommitPlanes(k int) {
	if k > d.blk.B {
		k = d.blk.B
	}
	if k > d.applied {
		d.applied = k
	}
}

// fragment framing: tag byte 0 = raw, 1 = deflate(payload).

func compressFragment(raw []byte) ([]byte, error) {
	c, err := encoding.Deflate(raw, 6)
	if err != nil {
		return nil, err
	}
	if len(c)+1 < len(raw)+1 {
		return append([]byte{1}, c...), nil
	}
	return append([]byte{0}, raw...), nil
}

func decompressFragment(frag []byte, wantLen int) ([]byte, error) {
	if len(frag) == 0 {
		return nil, fmt.Errorf("%w: empty fragment", encoding.ErrCorrupt)
	}
	var raw []byte
	switch frag[0] {
	case 0:
		raw = frag[1:]
	case 1:
		var err error
		raw, err = encoding.Inflate(frag[1:], int64(wantLen))
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown fragment tag %d", encoding.ErrCorrupt, frag[0])
	}
	if len(raw) != wantLen {
		return nil, fmt.Errorf("%w: fragment size %d, want %d", encoding.ErrCorrupt, len(raw), wantLen)
	}
	return raw, nil
}

// Marshal serializes the block (metadata + all fragments).
func (b *Block) Marshal() []byte {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(b.N))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(b.Exp)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(b.B))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(b.Planes)))
	out := encoding.PutSection(nil, hdr)
	out = encoding.PutSection(out, b.Signs)
	for _, p := range b.Planes {
		out = encoding.PutSection(out, p)
	}
	return out
}

// Unmarshal parses Marshal output, returning the block and bytes consumed.
func Unmarshal(data []byte) (*Block, int, error) {
	hdr, n, err := encoding.GetSection(data)
	if err != nil {
		return nil, 0, err
	}
	if len(hdr) != 16 {
		return nil, 0, fmt.Errorf("%w: bitplane header size %d", encoding.ErrCorrupt, len(hdr))
	}
	b := &Block{
		N:   int(binary.LittleEndian.Uint32(hdr[0:])),
		Exp: int(int32(binary.LittleEndian.Uint32(hdr[4:]))),
		B:   int(binary.LittleEndian.Uint32(hdr[8:])),
	}
	nPlanes := int(binary.LittleEndian.Uint32(hdr[12:]))
	if b.N < 0 || b.B < 0 || b.B > 62 || nPlanes < 0 || nPlanes > 62 {
		return nil, 0, fmt.Errorf("%w: implausible bitplane header", encoding.ErrCorrupt)
	}
	off := n
	b.Signs, n, err = encoding.GetSection(data[off:])
	if err != nil {
		return nil, 0, err
	}
	off += n
	b.Planes = make([][]byte, nPlanes)
	for i := range b.Planes {
		b.Planes[i], n, err = encoding.GetSection(data[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
	}
	return b, off, nil
}
