// Package server implements the fragment service side of the paper's
// remote-retrieval scenario (§VI-D): refactored archives live at a storage
// site and are served over HTTP so a compute site can pull exactly the
// bytes each tolerance needs. The service is stdlib-only and speaks three
// route families:
//
//	GET  /healthz                     liveness + serving statistics (JSON)
//	GET  /v1/datasets                 served dataset names (JSON)
//	GET  /v1/d/{ds}/index             dataset index: variables + fragment sizes
//	GET  /v1/d/{ds}/meta              retrieval metadata blob (binary, CRC)
//	GET  /v1/d/{ds}/frag/{var}/{idx}  one immutable fragment (ETag, 304)
//	POST /v1/d/{ds}/frags             batched fragment fetch (binary, CRC)
//	GET  /v1/store/keys               raw store passthrough: key list
//	GET  /v1/store/blob/{key}         raw store passthrough: one blob
//
// Fragments are immutable once refactored, so single-fragment responses
// carry strong ETags with far-future cache headers and honor
// If-None-Match. All responses gzip when the client accepts it. A
// semaphore bounds in-flight requests; the high-water mark is visible in
// /healthz. Handlers respect the request context: a request cancelled
// while queued on the semaphore returns 503 without consuming a slot, and
// a batch abandoned mid-assembly stops with 499 instead of encoding bytes
// nobody will read.
package server

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/storage"
)

// DefaultMaxInflight bounds concurrent requests when Options.MaxInflight
// is zero.
const DefaultMaxInflight = 64

// gzipMin is the smallest payload worth compressing.
const gzipMin = 512

// Options configures a Server.
type Options struct {
	// MaxInflight caps concurrently served requests (default
	// DefaultMaxInflight); excess requests queue on a semaphore.
	MaxInflight int
	// LogRequests emits one log line per request via Logger.
	LogRequests bool
	// Logger receives request logs (default log.Default()).
	Logger *log.Logger
}

// dataset is one loaded archive with its precomputed wire artifacts.
type dataset struct {
	vars     []*core.Variable
	varIdx   map[string]int
	index    []byte // JSON Index
	indexTag string
	meta     []byte // EncodeMeta blob
	metaTag  string
	fragTags [][]string
}

// Stats is a snapshot of serving counters, exposed at /healthz.
type Stats struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Datasets      int     `json:"datasets"`
	Requests      int64   `json:"requests"`
	Inflight      int64   `json:"inflight"`
	MaxConcurrent int64   `json:"maxConcurrent"`
	FragmentBytes int64   `json:"fragmentBytes"`
}

// Server is an http.Handler serving every archive found in a storage.Store.
type Server struct {
	store    storage.Store
	opts     Options
	mux      *http.ServeMux
	sem      chan struct{}
	datasets map[string]*dataset
	names    []string
	start    time.Time

	requests  atomic.Int64
	inflight  atomic.Int64
	maxSeen   atomic.Int64
	fragBytes atomic.Int64
}

// New scans st for archives (keys ending in ".manifest", as written by
// storage.WriteArchive) and builds a server over all of them. Fragment
// data is held in memory: the service exists to make fragment reads cheap.
func New(st storage.Store, opt Options) (*Server, error) {
	if opt.MaxInflight <= 0 {
		opt.MaxInflight = DefaultMaxInflight
	}
	if opt.Logger == nil {
		opt.Logger = log.Default()
	}
	keys, err := st.Keys()
	if err != nil {
		return nil, fmt.Errorf("server: list store: %w", err)
	}
	s := &Server{
		store:    st,
		opts:     opt,
		sem:      make(chan struct{}, opt.MaxInflight),
		datasets: map[string]*dataset{},
		start:    time.Now(),
	}
	for _, k := range keys {
		name, ok := strings.CutSuffix(k, ".manifest")
		if !ok {
			continue
		}
		vars, err := storage.ReadArchive(st, name)
		if err != nil {
			return nil, fmt.Errorf("server: load dataset %q: %w", name, err)
		}
		ds := &dataset{vars: vars, varIdx: map[string]int{}}
		idx, err := json.Marshal(BuildIndex(name, vars))
		if err != nil {
			return nil, err
		}
		ds.index, ds.indexTag = idx, etag(idx)
		ds.meta = EncodeMeta(vars)
		ds.metaTag = etag(ds.meta)
		ds.fragTags = make([][]string, len(vars))
		for vi, v := range vars {
			ds.varIdx[v.Name] = vi
			tags := make([]string, len(v.Ref.Fragments))
			for fi, f := range v.Ref.Fragments {
				tags[fi] = etag(f)
			}
			ds.fragTags[vi] = tags
		}
		s.datasets[name] = ds
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /v1/d/{ds}/index", s.handleIndex)
	s.mux.HandleFunc("GET /v1/d/{ds}/meta", s.handleMeta)
	s.mux.HandleFunc("GET /v1/d/{ds}/frag/{vr}/{idx}", s.handleFragment)
	s.mux.HandleFunc("POST /v1/d/{ds}/frags", s.handleBatch)
	s.mux.HandleFunc("GET /v1/store/keys", s.handleStoreKeys)
	s.mux.HandleFunc("GET /v1/store/blob/{key}", s.handleStoreBlob)
	return s, nil
}

// Datasets returns the served dataset names.
func (s *Server) Datasets() []string { return append([]string(nil), s.names...) }

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Datasets:      len(s.datasets),
		Requests:      s.requests.Load(),
		Inflight:      s.inflight.Load(),
		MaxConcurrent: s.maxSeen.Load(),
		FragmentBytes: s.fragBytes.Load(),
	}
}

// ServeHTTP implements http.Handler: bound concurrency, count, dispatch.
// Liveness probes bypass the semaphore — a saturated-but-healthy server
// must still answer /healthz, and the stats it reports are atomics that
// need no slot.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
		return
	}
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		http.Error(w, "canceled while queued", http.StatusServiceUnavailable)
		return
	}
	defer func() { <-s.sem }()
	s.requests.Add(1)
	cur := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	for {
		max := s.maxSeen.Load()
		if cur <= max || s.maxSeen.CompareAndSwap(max, cur) {
			break
		}
	}
	if s.opts.LogRequests {
		s.opts.Logger.Printf("progqoid: %s %s from %s", r.Method, r.URL.Path, r.RemoteAddr)
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) dataset(w http.ResponseWriter, r *http.Request) *dataset {
	ds, ok := s.datasets[r.PathValue("ds")]
	if !ok {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return nil
	}
	return ds
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	b, _ := json.Marshal(s.Stats())
	writeBlob(w, r, b, "", "application/json", false)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	b, _ := json.Marshal(struct {
		Datasets []string `json:"datasets"`
	}{s.names})
	writeBlob(w, r, b, "", "application/json", false)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if ds := s.dataset(w, r); ds != nil {
		writeBlob(w, r, ds.index, ds.indexTag, "application/json", true)
	}
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if ds := s.dataset(w, r); ds != nil {
		writeBlob(w, r, ds.meta, ds.metaTag, "application/octet-stream", true)
	}
}

func (s *Server) handleFragment(w http.ResponseWriter, r *http.Request) {
	ds := s.dataset(w, r)
	if ds == nil {
		return
	}
	vi, ok := ds.varIdx[r.PathValue("vr")]
	if !ok {
		http.Error(w, "unknown variable", http.StatusNotFound)
		return
	}
	fi, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || fi < 0 || fi >= len(ds.vars[vi].Ref.Fragments) {
		http.Error(w, "fragment index out of range", http.StatusNotFound)
		return
	}
	frag := ds.vars[vi].Ref.Fragments[fi]
	if writeBlob(w, r, frag, ds.fragTags[vi][fi], "application/octet-stream", true) {
		s.fragBytes.Add(int64(len(frag)))
	}
}

// maxBatchBody bounds the batched request JSON.
const maxBatchBody = 1 << 20

// statusClientClosedRequest is nginx's convention for "the client cancelled
// while we were serving"; no stdlib constant exists for it.
const statusClientClosedRequest = 499

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ds := s.dataset(w, r)
	if ds == nil {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		http.Error(w, "request body too large or unreadable", http.StatusBadRequest)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var frags []BatchFragment
	// Dedupe requested (variable, index) pairs: without it a small JSON
	// body repeating one large fragment index amplifies into an
	// arbitrarily large response. After dedup the response is bounded by
	// the dataset's total fragment bytes.
	type fragID struct {
		vi, fi int
	}
	sent := map[fragID]bool{}
	for _, want := range req.Wants {
		// A cancelled request means the client is gone: stop assembling the
		// batch instead of burning counters on bytes nobody will read.
		if err := r.Context().Err(); err != nil {
			http.Error(w, "request canceled", statusClientClosedRequest)
			return
		}
		vi, ok := ds.varIdx[want.Var]
		if !ok {
			http.Error(w, "unknown variable "+want.Var, http.StatusNotFound)
			return
		}
		v := ds.vars[vi]
		for _, fi := range want.Indices {
			if fi < 0 || fi >= len(v.Ref.Fragments) {
				http.Error(w, fmt.Sprintf("fragment %s/%d out of range", want.Var, fi), http.StatusNotFound)
				return
			}
			if sent[fragID{vi, fi}] {
				continue
			}
			sent[fragID{vi, fi}] = true
			frags = append(frags, BatchFragment{Var: want.Var, Index: fi, Payload: v.Ref.Fragments[fi]})
			s.fragBytes.Add(int64(len(v.Ref.Fragments[fi])))
		}
	}
	writeBlob(w, r, EncodeBatch(frags), "", "application/octet-stream", false)
}

func (s *Server) handleStoreKeys(w http.ResponseWriter, r *http.Request) {
	keys, err := s.store.Keys()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b, _ := json.Marshal(struct {
		Keys []string `json:"keys"`
	}{keys})
	writeBlob(w, r, b, "", "application/json", false)
}

func (s *Server) handleStoreBlob(w http.ResponseWriter, r *http.Request) {
	blob, err := s.store.Get(r.PathValue("key"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotFound) || errors.Is(err, storage.ErrInvalidKey) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeBlob(w, r, blob, etag(blob), "application/octet-stream", true)
}

// etag builds a strong validator from content checksum + length.
func etag(b []byte) string {
	return fmt.Sprintf("\"%08x-%x\"", crc32.Checksum(b, crcTable), len(b))
}

// writeBlob sends one in-memory payload with conditional-request and
// compression handling, reporting whether payload bytes were sent (false
// for a 304 revalidation). Immutable payloads get far-future cache
// headers; the gzip variant of a strong ETag is suffixed so validators
// stay unique per representation.
func writeBlob(w http.ResponseWriter, r *http.Request, blob []byte, tag, contentType string, immutable bool) bool {
	h := w.Header()
	h.Set("Content-Type", contentType)
	if tag != "" {
		h.Set("Vary", "Accept-Encoding")
		if immutable {
			h.Set("Cache-Control", "public, max-age=31536000, immutable")
		}
		gzTag := strings.TrimSuffix(tag, "\"") + "-gz\""
		if match := r.Header.Get("If-None-Match"); match != "" {
			for _, cand := range strings.Split(match, ",") {
				cand = strings.TrimSpace(cand)
				if cand == tag || cand == gzTag || cand == "*" {
					h.Set("ETag", tag)
					w.WriteHeader(http.StatusNotModified)
					return false
				}
			}
		}
		h.Set("ETag", tag)
	}
	if len(blob) >= gzipMin && acceptsGzip(r) {
		if tag != "" {
			h.Set("ETag", strings.TrimSuffix(tag, "\"")+"-gz\"")
		}
		h.Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		gz.Write(blob) //nolint:errcheck // client disconnects surface in Close
		gz.Close()     //nolint:errcheck
		return true
	}
	h.Set("Content-Length", strconv.Itoa(len(blob)))
	w.Write(blob) //nolint:errcheck
	return true
}

func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		e := strings.TrimSpace(enc)
		if e != "gzip" && !strings.HasPrefix(e, "gzip;") {
			continue
		}
		// Honor an explicit refusal: "gzip;q=0" (with any number of
		// trailing zeros) declines the encoding per RFC 9110.
		for _, p := range strings.Split(e, ";")[1:] {
			p = strings.TrimSpace(p)
			if q, ok := strings.CutPrefix(p, "q="); ok && strings.Trim(q, "0.") == "" {
				return false
			}
		}
		return true
	}
	return false
}
