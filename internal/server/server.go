// Package server implements the fragment service side of the paper's
// remote-retrieval scenario (§VI-D): refactored archives live at a storage
// site and are served over HTTP so a compute site can pull exactly the
// bytes each tolerance needs. The service is stdlib-only and speaks these
// route families:
//
//	GET  /healthz                     liveness + serving statistics (JSON)
//	GET  /metrics                     Prometheus text exposition
//	GET  /v1/cluster                  live cluster topology: members, states, epoch
//	POST /v1/cluster/join             node announcement: enter the membership table
//	POST /v1/cluster/heartbeat        liveness refresh + anti-entropy view exchange
//	POST /v1/cluster/leave            clean departure (deregister immediately)
//	POST /v1/cluster/drain            graceful drain (admin-gated)
//	GET  /v1/datasets                 served dataset names (JSON)
//	POST /v1/datasets/reload          hot-publish: re-scan the store (admin-gated)
//	GET  /v1/d/{ds}/index             dataset index: variables + fragment sizes
//	GET  /v1/d/{ds}/meta              retrieval metadata blob (binary, CRC)
//	GET  /v1/d/{ds}/frag/{var}/{idx}  one immutable fragment (ETag, 304)
//	POST /v1/d/{ds}/frags             batched fragment fetch (binary, CRC)
//	GET  /v1/store/keys               raw store passthrough: key list
//	GET  /v1/store/blob/{key}         raw store passthrough: one blob
//
// Fragments are immutable once refactored, so single-fragment responses
// carry strong ETags with far-future cache headers and honor
// If-None-Match. All responses gzip when the client accepts it. A
// semaphore bounds in-flight requests; the high-water mark is visible in
// /healthz. Handlers respect the request context: a request cancelled
// while queued on the semaphore returns 503 without consuming a slot, and
// a batch abandoned mid-assembly stops with 499 instead of encoding bytes
// nobody will read.
//
// # Live publishing
//
// The served dataset set is an immutable catalog snapshot swapped
// atomically: POST /v1/datasets/reload (enabled by Options.AdminToken,
// presented as a Bearer token) re-scans the store with the same
// validation startup applies and installs a fresh catalog in one pointer
// swap. Requests in flight keep the snapshot they resolved, and datasets
// whose stored bytes are unchanged are carried into the new catalog
// verbatim — same object, same cache generation — so publishing new
// datasets never interrupts sessions retrieving existing ones. A
// *republished* dataset (same name, new bytes) is a new incarnation with
// new ETags: sessions opened against its predecessor must be reopened. A
// failed reload leaves the serving catalog untouched. Datasets are
// published crash-safely by writing variable blobs first and the
// manifest last (storage.ArchiveWriter), so a packer killed mid-publish
// leaves only ignored orphan blobs.
//
// # Memory model
//
// Startup loads each archive once to build the wire artifacts (index,
// metadata blob, per-fragment ETags) and the byte offset of every
// fragment payload inside its store blob, then drops the payloads.
// Steady-state fragment reads go through a byte-bounded in-memory
// hot-fragment LRU (Options.HotCacheBytes) in front of the store; a miss
// is one ranged store read (storage.RangeReader when the store supports
// it), re-verified against the fragment's recorded ETag so silent disk
// corruption cannot reach the wire. A node therefore serves archives far
// larger than its RAM, with the hot set pinned.
package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/obs"
	"progqoi/internal/storage"
)

// DefaultMaxInflight bounds concurrent requests when Options.MaxInflight
// is zero.
const DefaultMaxInflight = 64

// DefaultHotCacheBytes bounds the hot-fragment cache when
// Options.HotCacheBytes is zero.
const DefaultHotCacheBytes = 256 << 20

// gzipMin is the smallest payload worth compressing.
const gzipMin = 512

// Options configures a Server.
type Options struct {
	// MaxInflight caps concurrently served requests (default
	// DefaultMaxInflight); excess requests queue on a semaphore.
	MaxInflight int
	// HotCacheBytes bounds the in-memory hot-fragment cache in front of
	// the store (default DefaultHotCacheBytes; negative disables caching,
	// sending every fragment read to the store).
	HotCacheBytes int64
	// Advertise is this node's public base URL, reported at /v1/cluster
	// so clients reached through a load balancer learn the direct address.
	Advertise string
	// Peers are the base URLs of the other nodes of a static cluster,
	// reported at /v1/cluster for client-side endpoint discovery. The
	// server itself never contacts them: sharding and failover are
	// client-side concerns.
	Peers []string
	// LogRequests emits one structured record per request via Log: route,
	// method, path, status, response bytes, duration, request ID, and
	// remote address. Observability probes (/healthz, /metrics) log at
	// debug level so a scraped node stays quiet at the default level.
	LogRequests bool
	// Log receives structured records (request logs when LogRequests is
	// set, plus operational notices like hot publishes). Nil disables
	// logging.
	Log *slog.Logger
	// AdminToken enables the admin surface (POST /v1/datasets/reload) when
	// non-empty: requests must present it as "Authorization: Bearer
	// <token>". Empty keeps the admin routes disabled (403) — hot publish
	// is opt-in per node.
	AdminToken string
	// Tenants enables multi-tenant serving when non-empty: every
	// data-plane request must present one tenant's bearer token, and the
	// tenant's QoS envelope (rate limit, in-flight cap, priority class)
	// applies. The /healthz and /metrics probes stay open, and the
	// reload route keeps its own AdminToken gate. See tenant.go.
	Tenants []Tenant
	// MaxQueue bounds how many admitted requests may wait for a serving
	// slot before the server sheds with 503, expressed in requests per
	// serving slot (default DefaultMaxQueue; negative allows no queueing
	// at all — a request that cannot be served immediately sheds).
	MaxQueue int
	// HeartbeatInterval is how often StartMembership announces this node
	// to every known member and seed (default DefaultHeartbeatInterval).
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a member may go silent before it is marked
	// suspect and clients stop routing to it (default
	// DefaultSuspectMultiple × HeartbeatInterval).
	SuspectAfter time.Duration
	// RemoveAfter is how long a member may go silent before it is removed
	// from the table entirely (default DefaultRemoveMultiple ×
	// HeartbeatInterval; clamped to at least SuspectAfter).
	RemoveAfter time.Duration
	// Generation orders incarnations of this node's advertised address:
	// a restart must announce a higher generation than its predecessor
	// (the daemon uses the boot time in nanoseconds). Default 1.
	Generation int64
}

// dataset is one loaded archive with its precomputed wire artifacts.
// Fragment payloads are dropped after loading; fragLocs locates each one
// inside its variable's store blob for on-demand ranged reads. A dataset
// is immutable once loaded: hot publish builds new datasets and swaps the
// catalog that maps names to them.
type dataset struct {
	name string
	// gen is the catalog load generation that produced this dataset; it
	// prefixes hot-cache keys so a republished dataset can never be served
	// stale fragment bytes cached under its previous incarnation.
	gen int64
	// fingerprint identifies the dataset's stored bytes (manifest + every
	// variable blob). Reload reuses the previous incarnation verbatim —
	// same object, same gen, same warm cache slice — when it matches.
	fingerprint string
	vars        []*core.Variable // metadata only: fragment payloads dropped
	varIdx      map[string]int
	index       []byte // JSON Index
	indexTag    string
	meta        []byte // EncodeMeta blob
	metaTag     string
	fragTags    [][]string
	varKeys     []string
	fragLocs    [][]storage.FragmentRange
}

// catalog is one immutable snapshot of the served datasets. Handlers load
// it once per request; Reload installs a replacement with a single atomic
// pointer swap, so in-flight requests (and remote sessions that planned
// against the old metadata) keep working against the snapshot they saw.
type catalog struct {
	datasets map[string]*dataset
	names    []string // sorted
}

// Stats is a snapshot of serving counters, exposed at /healthz. The
// limiter counters (Requests, Inflight, MaxConcurrent) are captured in one
// critical section, so a snapshot can never show Inflight above
// MaxConcurrent — cluster health checks key routing decisions off these.
type Stats struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Datasets      int     `json:"datasets"`
	Requests      int64   `json:"requests"`
	Inflight      int64   `json:"inflight"`
	MaxConcurrent int64   `json:"maxConcurrent"`
	FragmentBytes int64   `json:"fragmentBytes"`
	// Hot-fragment cache counters (see Options.HotCacheBytes).
	HotCacheBytes     int64 `json:"hotCacheBytes"`
	HotCacheEntries   int   `json:"hotCacheEntries"`
	HotCacheHits      int64 `json:"hotCacheHits"`
	HotCacheMisses    int64 `json:"hotCacheMisses"`
	HotCacheEvictions int64 `json:"hotCacheEvictions"`
	// Hot-publish counters (see POST /v1/datasets/reload).
	Reloads        int64 `json:"reloads"`
	ReloadFailures int64 `json:"reloadFailures"`
	DatasetsLoaded int64 `json:"datasetsLoaded"`
	// Admission-queue depths by class (see Options.MaxQueue).
	QueuedInteractive int `json:"queuedInteractive"`
	QueuedBulk        int `json:"queuedBulk"`
	// Unauthorized counts data-plane requests rejected 401 for a missing
	// or unknown tenant token (only possible with Options.Tenants set).
	Unauthorized int64 `json:"unauthorized"`
	// Cluster membership state (see membership.go): the epoch of this
	// node's view, how many members it knows (including itself when it
	// has an advertised address), and whether it is draining.
	ClusterEpoch    int64 `json:"clusterEpoch"`
	ClusterMembers  int   `json:"clusterMembers"`
	ClusterDraining bool  `json:"clusterDraining"`
	// Tenants reports per-tenant serving counters, sorted by name; nil
	// on a single-tenant (anonymous) server.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// ReloadResult reports one successful hot publish: the dataset names now
// served and the delta against the previous catalog.
type ReloadResult struct {
	Datasets []string `json:"datasets"`
	Added    []string `json:"added"`
	Removed  []string `json:"removed"`
}

// ClusterInfo is the /v1/cluster payload: this node's live view of the
// cluster. Advertise and Peers predate elastic membership and keep their
// shapes — Peers is the static -peers configuration unioned with every
// known member, so one-shot peer discovery still finds the whole
// cluster. Epoch, Members and Draining carry the live state: Epoch bumps
// on every membership change, Members lists this node first (with its
// generation and state) then peers sorted by address, and Draining
// reports whether this node stopped accepting new sessions.
type ClusterInfo struct {
	Advertise string       `json:"advertise,omitempty"`
	Peers     []string     `json:"peers"`
	Epoch     int64        `json:"epoch,omitempty"`
	Members   []MemberInfo `json:"members,omitempty"`
	Draining  bool         `json:"draining,omitempty"`
}

// routeLabels names the per-route request counters in /metrics order.
var routeLabels = []string{"healthz", "metrics", "cluster", "datasets", "reload", "index", "meta", "frag", "frags", "store"}

// Server is an http.Handler serving every archive found in a storage.Store.
type Server struct {
	store storage.Store
	opts  Options
	mux   *http.ServeMux
	adm   *admitter
	cat   atomic.Pointer[catalog]
	gen   atomic.Int64 // dataset load generations (hot-cache key prefix)
	start time.Time
	hot   *hotCache

	// tenants holds per-tenant limiter/accounting state, sorted by name;
	// empty on an anonymous server. The slice is immutable after New.
	tenants      []*tenantState
	unauthorized atomic.Int64

	// reloadMu serializes hot publishes; readers never take it — they see
	// either the old or the new catalog via the atomic pointer.
	reloadMu sync.Mutex

	// memb is the live membership table (see membership.go). The loop
	// plumbing below it is written once by StartMembership and read-only
	// afterwards.
	memb         *membership
	membHC       *http.Client
	membSeeds    []string
	membStop     chan struct{}
	membStopOnce sync.Once
	membWG       sync.WaitGroup
	membStarted  atomic.Bool

	// The limiter counters share one mutex so /healthz and /metrics
	// snapshot them consistently (inflight can never read above maxSeen).
	limMu    sync.Mutex
	requests int64 // guarded by limMu
	inflight int64 // guarded by limMu
	maxSeen  int64 // guarded by limMu

	fragBytes      atomic.Int64
	fragsServed    atomic.Int64
	batchReqs      atomic.Int64
	batchFrags     atomic.Int64
	reloads        atomic.Int64
	reloadFailures atomic.Int64
	datasetsLoaded atomic.Int64
	routeReqs      [10]atomic.Int64 // indexed like routeLabels

	// Latency and size distributions, exposed at /metrics as Prometheus
	// histograms (fixed buckets, stdlib only).
	routeHist   [10]*obs.Histogram // request latency, indexed like routeLabels
	fragsReqHB  *obs.Histogram     // frags request body bytes
	fragsRespHB *obs.Histogram     // frags response bytes (post-compression)
}

// New scans st for archives (keys ending in ".manifest", as written by
// storage.WriteArchive) and builds a server over all of them. Each archive
// is loaded once to precompute wire artifacts and fragment offsets, then
// its payloads are dropped: steady-state reads go through the hot cache in
// front of the store. Reload repeats the scan later with the same
// validation, swapping the catalog atomically. ctx bounds the startup
// store scan — a remote store that hangs on boot is cancellable.
func New(ctx context.Context, st storage.Store, opt Options) (*Server, error) {
	if opt.MaxInflight <= 0 {
		opt.MaxInflight = DefaultMaxInflight
	}
	if opt.HotCacheBytes == 0 {
		opt.HotCacheBytes = DefaultHotCacheBytes
	} else if opt.HotCacheBytes < 0 {
		opt.HotCacheBytes = 0
	}
	if opt.MaxQueue == 0 {
		opt.MaxQueue = DefaultMaxQueue
	} else if opt.MaxQueue < 0 {
		opt.MaxQueue = 0
	}
	if len(opt.Tenants) > 0 {
		// Programmatic tenants get the same validation and defaulting a
		// -tenants file gets; without this, a zero Burst would throttle
		// every request of an in-code tenant.
		var err error
		if opt.Tenants, err = NormalizeTenants(opt.Tenants); err != nil {
			return nil, err
		}
	}
	s := &Server{
		store:    st,
		opts:     opt,
		adm:      newAdmitter(opt.MaxInflight, opt.MaxQueue*opt.MaxInflight),
		start:    time.Now(),
		hot:      newHotCache(opt.HotCacheBytes),
		memb:     newMembership(opt),
		membStop: make(chan struct{}),
	}
	now := time.Now()
	for _, t := range opt.Tenants {
		s.tenants = append(s.tenants, newTenantState(t, now))
	}
	s.tenants = sortTenantStates(s.tenants)
	for i := range s.routeHist {
		s.routeHist[i] = obs.NewHistogram(obs.LatencyBuckets()...)
	}
	s.fragsReqHB = obs.NewHistogram(obs.ByteBuckets()...)
	s.fragsRespHB = obs.NewHistogram(obs.ByteBuckets()...)
	cat, err := s.loadCatalog(ctx, nil)
	if err != nil {
		return nil, err
	}
	s.cat.Store(cat)
	s.datasetsLoaded.Add(int64(len(cat.names)))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /v1/cluster", s.counted("cluster", s.handleCluster))
	s.mux.HandleFunc("POST /v1/cluster/join", s.counted("cluster", s.handleClusterJoin))
	s.mux.HandleFunc("POST /v1/cluster/heartbeat", s.counted("cluster", s.handleClusterHeartbeat))
	s.mux.HandleFunc("POST /v1/cluster/leave", s.counted("cluster", s.handleClusterLeave))
	s.mux.HandleFunc("POST /v1/cluster/drain", s.counted("cluster", s.handleClusterDrain))
	s.mux.HandleFunc("GET /v1/datasets", s.counted("datasets", s.handleDatasets))
	s.mux.HandleFunc("POST /v1/datasets/reload", s.counted("reload", s.handleReload))
	s.mux.HandleFunc("GET /v1/d/{ds}/index", s.counted("index", s.handleIndex))
	s.mux.HandleFunc("GET /v1/d/{ds}/meta", s.counted("meta", s.handleMeta))
	s.mux.HandleFunc("GET /v1/d/{ds}/frag/{vr}/{idx}", s.counted("frag", s.handleFragment))
	s.mux.HandleFunc("POST /v1/d/{ds}/frags", s.counted("frags", s.handleBatch))
	s.mux.HandleFunc("GET /v1/store/keys", s.counted("store", s.handleStoreKeys))
	s.mux.HandleFunc("GET /v1/store/blob/{key}", s.counted("store", s.handleStoreBlob))
	return s, nil
}

// loadCatalog scans the store and loads every archive into a fresh catalog
// snapshot. Any invalid dataset fails the whole load — a reload must be
// all-or-nothing so a torn or corrupt publish can never evict the healthy
// catalog already being served. prev (nil at startup) is the catalog being
// replaced: a dataset whose stored bytes are unchanged is carried over
// verbatim, keeping its cache generation warm and its identity stable for
// sessions mid-retrieval.
func (s *Server) loadCatalog(ctx context.Context, prev *catalog) (*catalog, error) {
	keys, err := s.store.Keys(ctx)
	if err != nil {
		return nil, fmt.Errorf("server: list store: %w", err)
	}
	cat := &catalog{datasets: map[string]*dataset{}}
	for _, k := range keys {
		name, ok := strings.CutSuffix(k, ".manifest")
		if !ok {
			continue
		}
		var old *dataset
		if prev != nil {
			old = prev.datasets[name]
		}
		ds, err := s.loadDataset(ctx, name, old)
		if err != nil {
			return nil, err
		}
		cat.datasets[name] = ds
		cat.names = append(cat.names, name)
	}
	sort.Strings(cat.names)
	return cat, nil
}

// loadDataset loads one archive and precomputes its wire artifacts,
// dropping fragment payloads once their ETags and byte offsets are
// recorded. The archive is always re-validated in full (startup-equivalent
// checks); but when its stored bytes fingerprint the same as prev, prev is
// returned instead of the rebuild, so an unchanged dataset keeps its load
// generation — and with it the hot-cache slice and the object identity
// in-flight retrievals depend on.
func (s *Server) loadDataset(ctx context.Context, name string, prev *dataset) (*dataset, error) {
	mraw, err := s.store.Get(ctx, name+".manifest")
	if err != nil {
		return nil, fmt.Errorf("server: load dataset %q: %w", name, err)
	}
	fingerprint := etag(mraw)
	vars, err := storage.ReadArchive(ctx, s.store, name)
	if err != nil {
		return nil, fmt.Errorf("server: load dataset %q: %w", name, err)
	}
	ds := &dataset{name: name, gen: s.gen.Add(1), vars: vars, varIdx: map[string]int{}}
	idx, err := json.Marshal(BuildIndex(name, vars))
	if err != nil {
		return nil, err
	}
	ds.index, ds.indexTag = idx, etag(idx)
	ds.meta = EncodeMeta(vars)
	ds.metaTag = etag(ds.meta)
	ds.fragTags = make([][]string, len(vars))
	ds.varKeys = make([]string, len(vars))
	ds.fragLocs = make([][]storage.FragmentRange, len(vars))
	for vi, v := range vars {
		ds.varIdx[v.Name] = vi
		tags := make([]string, len(v.Ref.Fragments))
		for fi, f := range v.Ref.Fragments {
			tags[fi] = etag(f)
		}
		ds.fragTags[vi] = tags
		key := storage.VarKey(name, v.Name)
		raw, err := s.store.Get(ctx, key)
		if err != nil {
			return nil, fmt.Errorf("server: locate fragments of %s/%s: %w", name, v.Name, err)
		}
		locs, err := storage.VariableFragmentRanges(raw)
		if err != nil {
			return nil, fmt.Errorf("server: locate fragments of %s/%s: %w", name, v.Name, err)
		}
		if len(locs) != len(v.Ref.Fragments) {
			return nil, fmt.Errorf("server: %s/%s: %d fragment ranges for %d fragments",
				name, v.Name, len(locs), len(v.Ref.Fragments))
		}
		for fi, loc := range locs {
			if loc.Len != int64(len(v.Ref.Fragments[fi])) {
				return nil, fmt.Errorf("server: %s/%s/%d: range length %d, fragment %d",
					name, v.Name, fi, loc.Len, len(v.Ref.Fragments[fi]))
			}
		}
		ds.varKeys[vi] = key
		ds.fragLocs[vi] = locs
		fingerprint += "/" + etag(raw)
		// Loading is the only time the whole variable is resident: drop
		// the payloads now that the index, ETags and offsets are recorded.
		// Serving pulls them back through the hot cache.
		for fi := range v.Ref.Fragments {
			v.Ref.Fragments[fi] = nil
		}
	}
	ds.fingerprint = fingerprint
	if prev != nil && prev.fingerprint == fingerprint {
		return prev, nil
	}
	return ds, nil
}

// Reload re-scans the store with startup-equivalent validation and
// atomically swaps the serving catalog. Datasets whose stored bytes are
// unchanged are carried over verbatim (same generation, warm cache);
// changed or new ones load under fresh cache generations. On any error
// the old catalog stays installed and the failure is counted. Concurrent
// Reloads serialize.
func (s *Server) Reload(ctx context.Context) (ReloadResult, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.cat.Load()
	cat, err := s.loadCatalog(ctx, old)
	if err != nil {
		s.reloadFailures.Add(1)
		return ReloadResult{}, err
	}
	s.cat.Store(cat)
	s.reloads.Add(1)
	s.datasetsLoaded.Add(int64(len(cat.names)))
	res := ReloadResult{Datasets: append([]string(nil), cat.names...), Added: []string{}, Removed: []string{}}
	for _, n := range cat.names {
		if old.datasets[n] == nil {
			res.Added = append(res.Added, n)
		}
	}
	for _, n := range old.names {
		if cat.datasets[n] == nil {
			res.Removed = append(res.Removed, n)
		}
	}
	return res, nil
}

// countingWriter captures the status code and response byte count as they
// pass through to the underlying ResponseWriter — what the latency, byte
// histograms, and access log report per request.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (cw *countingWriter) WriteHeader(code int) {
	if cw.status == 0 {
		cw.status = code
	}
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	n, err := cw.ResponseWriter.Write(p)
	cw.bytes += int64(n)
	return n, err
}

// counted wraps a handler with its per-route instrumentation: request
// counter, latency histogram, frags byte histograms, X-Request-Id echo,
// and (when enabled) one structured access-log record.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	ri := -1
	for i, l := range routeLabels {
		if l == route {
			ri = i
			break
		}
	}
	if ri < 0 {
		panic("server: unknown route label " + route)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.routeReqs[ri].Add(1)
		// Echo a well-formed client request ID so both sides of the wire
		// log the same correlation handle; hostile values are dropped.
		rid := obs.SanitizeRequestID(r.Header.Get(obs.RequestIDHeader))
		if rid != "" {
			w.Header().Set(obs.RequestIDHeader, rid)
		}
		cw := &countingWriter{ResponseWriter: w}
		start := time.Now()
		h(cw, r)
		dur := time.Since(start)
		s.routeHist[ri].Observe(dur.Seconds())
		ts, _ := r.Context().Value(tenantCtxKey{}).(*tenantState)
		if ts != nil {
			ts.hist.Observe(dur.Seconds())
			ts.bytes.Add(cw.bytes)
		}
		if route == "frags" {
			if r.ContentLength >= 0 {
				s.fragsReqHB.Observe(float64(r.ContentLength))
			}
			s.fragsRespHB.Observe(float64(cw.bytes))
		}
		if s.opts.LogRequests && s.opts.Log != nil {
			status := cw.status
			if status == 0 {
				status = http.StatusOK
			}
			lvl := slog.LevelInfo
			if route == "healthz" || route == "metrics" {
				lvl = slog.LevelDebug // probes stay quiet at the default level
			}
			attrs := []slog.Attr{
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", cw.bytes),
				slog.Duration("duration", dur),
				slog.String("request_id", rid),
				slog.String("remote", r.RemoteAddr),
			}
			if ts != nil {
				attrs = append(attrs,
					slog.String("tenant", ts.t.Name),
					slog.String("class", ts.t.Class))
			}
			s.opts.Log.LogAttrs(r.Context(), lvl, "request", attrs...)
		}
	}
}

// Datasets returns the currently served dataset names.
func (s *Server) Datasets() []string { return append([]string(nil), s.cat.Load().names...) }

// Stats snapshots the serving counters. The limiter counters are read in
// one critical section — the same one their updates hold — so the snapshot
// is internally consistent: Inflight never exceeds MaxConcurrent and never
// exceeds Requests.
func (s *Server) Stats() Stats {
	s.limMu.Lock()
	requests, inflight, maxSeen := s.requests, s.inflight, s.maxSeen
	s.limMu.Unlock()
	hc := s.hot.stats()
	depths := s.adm.depths()
	mm := s.memb.metrics()
	var tstats []TenantStats
	for _, ts := range s.tenants {
		tstats = append(tstats, ts.stats())
	}
	return Stats{
		QueuedInteractive: depths[0],
		QueuedBulk:        depths[1],
		Unauthorized:      s.unauthorized.Load(),
		ClusterEpoch:      mm.epoch,
		ClusterMembers:    mm.alive + mm.suspect + mm.draining,
		ClusterDraining:   s.memb.isDraining(),
		Tenants:           tstats,
		Status:            "ok",
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Datasets:          len(s.cat.Load().datasets),
		Requests:          requests,
		Inflight:          inflight,
		MaxConcurrent:     maxSeen,
		FragmentBytes:     s.fragBytes.Load(),
		HotCacheBytes:     hc.bytes,
		HotCacheEntries:   hc.entries,
		HotCacheHits:      hc.hits,
		HotCacheMisses:    hc.misses,
		HotCacheEvictions: hc.evictions,
		Reloads:           s.reloads.Load(),
		ReloadFailures:    s.reloadFailures.Load(),
		DatasetsLoaded:    s.datasetsLoaded.Load(),
	}
}

// countRequest updates the limiter counters under their shared mutex and
// returns a release func for the inflight gauge (nil when track is false).
func (s *Server) countRequest(track bool) func() {
	s.limMu.Lock()
	defer s.limMu.Unlock()
	s.requests++
	if !track {
		return nil
	}
	s.inflight++
	if s.inflight > s.maxSeen {
		s.maxSeen = s.inflight
	}
	return func() {
		s.limMu.Lock()
		s.inflight--
		s.limMu.Unlock()
	}
}

// tenantCtxKey carries the authenticated *tenantState from ServeHTTP to
// the per-route instrumentation in counted.
type tenantCtxKey struct{}

// bearerToken extracts the request's bearer token.
func bearerToken(r *http.Request) (string, bool) {
	return strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
}

// authenticate resolves the request's tenant. On an anonymous server
// (no Options.Tenants) every request passes with a nil tenant. With
// tenants configured, a missing or unknown token fails. The scan always
// visits every tenant — no early exit — so response timing does not
// depend on which tenant matched.
func (s *Server) authenticate(r *http.Request) (*tenantState, bool) {
	if len(s.tenants) == 0 {
		return nil, true
	}
	tok, ok := bearerToken(r)
	if !ok {
		return nil, false
	}
	var match *tenantState
	for _, ts := range s.tenants {
		if TokenEqual(tok, ts.t.Token) {
			match = ts
		}
	}
	return match, match != nil
}

// ServeHTTP implements http.Handler: authenticate, rate-limit, admit,
// count, dispatch. Observability probes bypass authentication and
// admission — a saturated-but-healthy server must still answer
// /healthz and /metrics, and the stats they report need no slot. The
// cluster control plane (/v1/cluster and its sub-routes) gets the same
// treatment: peer heartbeats and topology refreshes are node-to-node
// traffic that must survive tenant saturation, and the one mutating
// route a client could abuse (drain) carries its own AdminToken gate.
// The admin reload route also skips tenant auth for the same reason.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" ||
		r.URL.Path == "/v1/cluster" || strings.HasPrefix(r.URL.Path, "/v1/cluster/") {
		s.countRequest(false)
		s.mux.ServeHTTP(w, r)
		return
	}
	class := 0 // interactive: anonymous and admin requests queue at priority
	var ts *tenantState
	if r.URL.Path != "/v1/datasets/reload" {
		var ok bool
		ts, ok = s.authenticate(r)
		if !ok {
			s.countRequest(false)
			s.unauthorized.Add(1)
			http.Error(w, "unknown or missing tenant token", http.StatusUnauthorized)
			return
		}
	}
	if ts != nil {
		ts.requests.Add(1)
		class = classIndex(ts.t.Class)
		if ok, retryAfter := ts.allow(time.Now()); !ok {
			s.countRequest(false)
			ts.rateLimited.Add(1)
			s.reject429(w, retryAfter)
			return
		}
		if !ts.acquireInflight() {
			s.countRequest(false)
			ts.overInflight.Add(1)
			s.reject429(w, time.Second)
			return
		}
		defer ts.releaseInflight()
		r = r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, ts))
	}
	switch err := s.adm.acquire(r.Context(), class); {
	case errors.Is(err, errQueueFull):
		s.countRequest(false)
		if ts != nil {
			ts.shed.Add(1)
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, "admission queue full", http.StatusServiceUnavailable)
		return
	case err != nil:
		s.countRequest(false)
		http.Error(w, "canceled while queued", http.StatusServiceUnavailable)
		return
	}
	defer s.adm.release()
	release := s.countRequest(true)
	defer release()
	s.mux.ServeHTTP(w, r)
}

// reject429 rejects an over-limit request with the instant the client
// should try again. Retry-After is integer seconds (RFC 9110), rounded
// up so a compliant client never retries into a still-empty bucket.
func (s *Server) reject429(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "tenant over rate limit", http.StatusTooManyRequests)
}

// fragment returns one fragment payload: hot-cache hit, or a ranged store
// read verified against the fragment's recorded ETag. Cache keys carry the
// dataset's load generation, so a republished dataset starts from a cold
// slice of the cache instead of inheriting its predecessor's bytes (stale
// entries age out of the LRU).
func (s *Server) fragment(ctx context.Context, ds *dataset, vi, fi int) ([]byte, error) {
	key := strconv.FormatInt(ds.gen, 10) + "\x00" + ds.vars[vi].Name + "\x00" + strconv.Itoa(fi)
	if b, ok := s.hot.get(key); ok {
		return b, nil
	}
	loc := ds.fragLocs[vi][fi]
	var (
		b   []byte
		err error
	)
	if rr, ok := s.store.(storage.RangeReader); ok {
		b, err = rr.GetRange(ctx, ds.varKeys[vi], loc.Off, loc.Len)
	} else {
		// Store without partial reads: load the variable blob and copy the
		// fragment out. The clone matters: caching a subslice would pin
		// the whole blob's backing array while the cache accounts only the
		// fragment's length, making the byte bound fiction.
		var raw []byte
		raw, err = s.store.Get(ctx, ds.varKeys[vi])
		if err == nil {
			if loc.Off+loc.Len > int64(len(raw)) {
				err = fmt.Errorf("server: %s/%s blob shrank under us", ds.name, ds.vars[vi].Name)
			} else {
				b = bytes.Clone(raw[loc.Off : loc.Off+loc.Len])
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("server: read fragment %s/%s/%d: %w", ds.name, ds.vars[vi].Name, fi, err)
	}
	if got := etag(b); got != ds.fragTags[vi][fi] {
		return nil, fmt.Errorf("server: fragment %s/%s/%d corrupt at rest: etag %s, recorded %s",
			ds.name, ds.vars[vi].Name, fi, got, ds.fragTags[vi][fi])
	}
	s.hot.add(key, b)
	return b, nil
}

func (s *Server) dataset(w http.ResponseWriter, r *http.Request) *dataset {
	ds, ok := s.cat.Load().datasets[r.PathValue("ds")]
	if !ok {
		http.Error(w, "unknown dataset", http.StatusNotFound)
		return nil
	}
	return ds
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	b, _ := json.Marshal(s.Stats())
	writeBlob(w, r, b, "", "application/json", false)
}

// handleMetrics renders the Prometheus text exposition format (version
// 0.0.4) with the stdlib only: request counts and latency histograms per
// route, frags request/response byte histograms, batch sizes, cache
// hit/miss/eviction counters, in-flight gauge, bytes served, and Go
// runtime gauges (goroutines, heap, GC).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var b strings.Builder
	metric := func(name, typ, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	metric("progqoid_uptime_seconds", "gauge", "Seconds since the server started.", st.UptimeSeconds)
	metric("progqoid_datasets", "gauge", "Datasets served.", st.Datasets)
	metric("progqoid_requests_total", "counter", "HTTP requests received, including observability probes.", st.Requests)
	fmt.Fprintf(&b, "# HELP progqoid_route_requests_total HTTP requests dispatched, by route family.\n"+
		"# TYPE progqoid_route_requests_total counter\n")
	for i, l := range routeLabels {
		fmt.Fprintf(&b, "progqoid_route_requests_total{route=%q} %d\n", l, s.routeReqs[i].Load())
	}
	metric("progqoid_inflight_requests", "gauge", "Requests currently holding a concurrency slot.", st.Inflight)
	metric("progqoid_max_concurrent_requests", "gauge", "High-water mark of concurrent requests.", st.MaxConcurrent)
	metric("progqoid_fragment_bytes_total", "counter", "Fragment payload bytes served (before transport compression).", st.FragmentBytes)
	metric("progqoid_fragments_served_total", "counter", "Fragments served across single and batched fetches.", s.fragsServed.Load())
	metric("progqoid_batch_requests_total", "counter", "Batched fragment POSTs answered.", s.batchReqs.Load())
	metric("progqoid_batch_fragments_total", "counter", "Fragments shipped inside batched responses (divide by batch_requests for mean batch size).", s.batchFrags.Load())
	metric("progqoid_hot_cache_bytes", "gauge", "Bytes resident in the hot-fragment cache.", st.HotCacheBytes)
	metric("progqoid_hot_cache_entries", "gauge", "Fragments resident in the hot-fragment cache.", st.HotCacheEntries)
	metric("progqoid_hot_cache_hits_total", "counter", "Fragment reads served from the hot cache.", st.HotCacheHits)
	metric("progqoid_hot_cache_misses_total", "counter", "Fragment reads that went to the store.", st.HotCacheMisses)
	metric("progqoid_hot_cache_evictions_total", "counter", "Fragments evicted from the hot cache under byte pressure.", st.HotCacheEvictions)
	metric("progqoid_reloads_total", "counter", "Successful hot publishes (POST /v1/datasets/reload catalog swaps).", st.Reloads)
	metric("progqoid_reload_failures_total", "counter", "Hot publishes rejected by store validation (catalog kept).", st.ReloadFailures)
	metric("progqoid_datasets_loaded_total", "counter", "Datasets ingested into a serving catalog, at startup and on each reload.", st.DatasetsLoaded)

	// Cluster membership families are always emitted — a solo node is a
	// one-member cluster — so every node's scrape parses identically.
	mm := s.memb.metrics()
	fmt.Fprintf(&b, "# HELP progqoid_cluster_members Cluster members this node knows (including itself), by membership state.\n"+
		"# TYPE progqoid_cluster_members gauge\n"+
		"progqoid_cluster_members{state=\"alive\"} %d\n"+
		"progqoid_cluster_members{state=\"suspect\"} %d\n"+
		"progqoid_cluster_members{state=\"draining\"} %d\n",
		mm.alive, mm.suspect, mm.draining)
	metric("progqoid_cluster_epoch", "gauge", "Membership view epoch: bumps on every join, leave, drain, or state change.", mm.epoch)
	metric("progqoid_cluster_suspect_total", "counter", "Members marked suspect after missed heartbeats.", mm.suspects)
	metric("progqoid_cluster_drains_total", "counter", "Drain transitions this node acknowledged.", mm.drains)
	metric("progqoid_cluster_heartbeats_total", "counter", "Membership heartbeats received from peers.", mm.heartbeats)

	// Admission-queue gauges: how many requests are parked per class
	// right now, plus cumulative queue traffic. A persistently deep bulk
	// queue with an empty interactive one is the QoS design working.
	fmt.Fprintf(&b, "# HELP progqoid_admission_queued Requests parked in the admission queue, by class.\n"+
		"# TYPE progqoid_admission_queued gauge\n"+
		"progqoid_admission_queued{class=%q} %d\nprogqoid_admission_queued{class=%q} %d\n",
		classLabels[0], st.QueuedInteractive, classLabels[1], st.QueuedBulk)
	fmt.Fprintf(&b, "# HELP progqoid_admission_waits_total Requests that had to queue for a serving slot, by class.\n"+
		"# TYPE progqoid_admission_waits_total counter\n")
	for ci, cl := range classLabels {
		fmt.Fprintf(&b, "progqoid_admission_waits_total{class=%q} %d\n", cl, s.adm.waits[ci].Load())
	}
	if len(s.tenants) > 0 {
		metric("progqoid_unauthorized_total", "counter", "Data-plane requests rejected 401 (missing or unknown tenant token).", st.Unauthorized)
		fmt.Fprintf(&b, "# HELP progqoid_tenant_requests_total Authenticated requests received per tenant, including rejected ones.\n"+
			"# TYPE progqoid_tenant_requests_total counter\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(&b, "progqoid_tenant_requests_total{tenant=%q,class=%q} %d\n", t.Name, t.Class, t.Requests)
		}
		fmt.Fprintf(&b, "# HELP progqoid_tenant_rejected_total Per-tenant QoS rejections, by reason: rate (429, token bucket), inflight (429, per-tenant cap), queue (503, shed).\n"+
			"# TYPE progqoid_tenant_rejected_total counter\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(&b, "progqoid_tenant_rejected_total{tenant=%q,reason=\"rate\"} %d\n", t.Name, t.RateLimited)
			fmt.Fprintf(&b, "progqoid_tenant_rejected_total{tenant=%q,reason=\"inflight\"} %d\n", t.Name, t.OverInflight)
			fmt.Fprintf(&b, "progqoid_tenant_rejected_total{tenant=%q,reason=\"queue\"} %d\n", t.Name, t.Shed)
		}
		fmt.Fprintf(&b, "# HELP progqoid_tenant_inflight Requests currently being served per tenant.\n"+
			"# TYPE progqoid_tenant_inflight gauge\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(&b, "progqoid_tenant_inflight{tenant=%q} %d\n", t.Name, t.Inflight)
		}
		fmt.Fprintf(&b, "# HELP progqoid_tenant_bytes_total Response bytes written per tenant.\n"+
			"# TYPE progqoid_tenant_bytes_total counter\n")
		for _, t := range st.Tenants {
			fmt.Fprintf(&b, "progqoid_tenant_bytes_total{tenant=%q} %d\n", t.Name, t.Bytes)
		}
		obs.WriteFamilyHeader(&b, "progqoid_tenant_request_duration_seconds", "histogram", "Served-request latency per tenant.")
		for _, ts := range s.tenants {
			obs.WriteHistogramSeries(&b, "progqoid_tenant_request_duration_seconds",
				`tenant="`+ts.t.Name+`",class="`+ts.t.Class+`"`, ts.hist.Snapshot())
		}
	}

	// Cold-fetch counters, when the backing store reports them (object
	// store backends): wire reads that missed every cache in front of the
	// bucket. Summed bytes reconcile with the trace's store-span bytes.
	if fs, ok := s.store.(storage.FetchStatser); ok {
		cf := fs.FetchStats()
		metric("progqoid_store_cold_fetches_total", "counter", "Object-store wire fetches (cache misses reaching the bucket).", cf.ColdFetches)
		metric("progqoid_store_cold_fetch_bytes_total", "counter", "Bytes fetched cold from the object store.", cf.ColdFetchBytes)
		metric("progqoid_store_cold_fetch_seconds_total", "counter", "Cumulative wall time spent in cold object-store fetches.", cf.ColdFetchSeconds)
	}

	// Latency and size distributions.
	obs.WriteFamilyHeader(&b, "progqoid_request_duration_seconds", "histogram", "Request handling latency, by route family.")
	for i, l := range routeLabels {
		obs.WriteHistogramSeries(&b, "progqoid_request_duration_seconds", `route="`+l+`"`, s.routeHist[i].Snapshot())
	}
	obs.WriteFamilyHeader(&b, "progqoid_frags_request_bytes", "histogram", "Batched fragment POST request body sizes.")
	obs.WriteHistogramSeries(&b, "progqoid_frags_request_bytes", "", s.fragsReqHB.Snapshot())
	obs.WriteFamilyHeader(&b, "progqoid_frags_response_bytes", "histogram", "Batched fragment response sizes as written to the wire (after compression).")
	obs.WriteHistogramSeries(&b, "progqoid_frags_response_bytes", "", s.fragsRespHB.Snapshot())

	// Go runtime gauges, so a scrape sees resource pressure without pprof.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	metric("progqoid_goroutines", "gauge", "Goroutines currently live in the process.", runtime.NumGoroutine())
	metric("progqoid_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.", ms.HeapAlloc)
	metric("progqoid_heap_sys_bytes", "gauge", "Bytes of heap memory obtained from the OS.", ms.HeapSys)
	metric("progqoid_gc_cycles_total", "counter", "Completed GC cycles.", ms.NumGC)
	metric("progqoid_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck
}

// handleCluster reports this node's live view of the cluster: the
// membership table (seeded from -advertise/-peers, evolved by
// join/heartbeat/leave/drain), its epoch, and the legacy flat peer list
// for one-shot discovery.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	b, _ := json.Marshal(s.memb.info(s.opts.Peers))
	writeBlob(w, r, b, "", "application/json", false)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	b, _ := json.Marshal(struct {
		Datasets []string `json:"datasets"`
	}{s.cat.Load().names})
	writeBlob(w, r, b, "", "application/json", false)
}

// handleReload is the hot-publish entry point: admin-gated by
// Options.AdminToken, it re-scans the store and swaps the catalog. 403
// when the admin surface is disabled, 401 on a missing or wrong token,
// 500 (catalog unchanged) when validation rejects the store contents.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.opts.AdminToken == "" {
		http.Error(w, "admin interface disabled (start with an admin token to enable hot publish)", http.StatusForbidden)
		return
	}
	tok, ok := bearerToken(r)
	if !ok || !TokenEqual(tok, s.opts.AdminToken) {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	res, err := s.Reload(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if s.opts.Log != nil {
		s.opts.Log.Info("reload",
			slog.Any("datasets", res.Datasets),
			slog.Any("added", res.Added),
			slog.Any("removed", res.Removed))
	}
	b, _ := json.Marshal(res)
	writeBlob(w, r, b, "", "application/json", false)
}

// rejectDraining sheds a session-opening request on a draining node.
// Only index and meta — the routes every new session starts with — are
// gated: fragment routes keep serving so in-flight retrievals finish,
// which is the whole point of drain over kill.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.memb.isDraining() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "node draining: not accepting new sessions", http.StatusServiceUnavailable)
	return true
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	if ds := s.dataset(w, r); ds != nil {
		writeBlob(w, r, ds.index, ds.indexTag, "application/json", true)
	}
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	if ds := s.dataset(w, r); ds != nil {
		writeBlob(w, r, ds.meta, ds.metaTag, "application/octet-stream", true)
	}
}

func (s *Server) handleFragment(w http.ResponseWriter, r *http.Request) {
	ds := s.dataset(w, r)
	if ds == nil {
		return
	}
	vi, ok := ds.varIdx[r.PathValue("vr")]
	if !ok {
		http.Error(w, "unknown variable", http.StatusNotFound)
		return
	}
	fi, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || fi < 0 || fi >= len(ds.fragLocs[vi]) {
		http.Error(w, "fragment index out of range", http.StatusNotFound)
		return
	}
	frag, err := s.fragment(r.Context(), ds, vi, fi)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if writeBlob(w, r, frag, ds.fragTags[vi][fi], "application/octet-stream", true) {
		s.fragBytes.Add(int64(len(frag)))
		s.fragsServed.Add(1)
	}
}

// maxBatchBody bounds the batched request JSON.
const maxBatchBody = 1 << 20

// statusClientClosedRequest is nginx's convention for "the client cancelled
// while we were serving"; no stdlib constant exists for it.
const statusClientClosedRequest = 499

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ds := s.dataset(w, r)
	if ds == nil {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		http.Error(w, "request body too large or unreadable", http.StatusBadRequest)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var frags []BatchFragment
	// Dedupe requested (variable, index) pairs: without it a small JSON
	// body repeating one large fragment index amplifies into an
	// arbitrarily large response. After dedup the response is bounded by
	// the dataset's total fragment bytes.
	type fragID struct {
		vi, fi int
	}
	sent := map[fragID]bool{}
	for _, want := range req.Wants {
		// A cancelled request means the client is gone: stop assembling the
		// batch instead of burning counters on bytes nobody will read.
		if err := r.Context().Err(); err != nil {
			http.Error(w, "request canceled", statusClientClosedRequest)
			return
		}
		vi, ok := ds.varIdx[want.Var]
		if !ok {
			http.Error(w, "unknown variable "+want.Var, http.StatusNotFound)
			return
		}
		for _, fi := range want.Indices {
			if fi < 0 || fi >= len(ds.fragLocs[vi]) {
				http.Error(w, fmt.Sprintf("fragment %s/%d out of range", want.Var, fi), http.StatusNotFound)
				return
			}
			if sent[fragID{vi, fi}] {
				continue
			}
			sent[fragID{vi, fi}] = true
			payload, err := s.fragment(r.Context(), ds, vi, fi)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			frags = append(frags, BatchFragment{Var: want.Var, Index: fi, Payload: payload})
			s.fragBytes.Add(int64(len(payload)))
			s.fragsServed.Add(1)
		}
	}
	s.batchReqs.Add(1)
	s.batchFrags.Add(int64(len(frags)))
	writeBlob(w, r, EncodeBatch(frags), "", "application/octet-stream", false)
}

func (s *Server) handleStoreKeys(w http.ResponseWriter, r *http.Request) {
	keys, err := s.store.Keys(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b, _ := json.Marshal(struct {
		Keys []string `json:"keys"`
	}{keys})
	writeBlob(w, r, b, "", "application/json", false)
}

func (s *Server) handleStoreBlob(w http.ResponseWriter, r *http.Request) {
	blob, err := s.store.Get(r.Context(), r.PathValue("key"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotFound) || errors.Is(err, storage.ErrInvalidKey) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeBlob(w, r, blob, etag(blob), "application/octet-stream", true)
}

// etag builds a strong validator from content checksum + length.
func etag(b []byte) string {
	return fmt.Sprintf("\"%08x-%x\"", crc32.Checksum(b, crcTable), len(b))
}

// writeBlob sends one in-memory payload with conditional-request and
// compression handling, reporting whether payload bytes were sent (false
// for a 304 revalidation). Immutable payloads get far-future cache
// headers; the gzip variant of a strong ETag is suffixed so validators
// stay unique per representation.
func writeBlob(w http.ResponseWriter, r *http.Request, blob []byte, tag, contentType string, immutable bool) bool {
	h := w.Header()
	h.Set("Content-Type", contentType)
	if tag != "" {
		h.Set("Vary", "Accept-Encoding")
		if immutable {
			h.Set("Cache-Control", "public, max-age=31536000, immutable")
		}
		gzTag := strings.TrimSuffix(tag, "\"") + "-gz\""
		if match := r.Header.Get("If-None-Match"); match != "" {
			for _, cand := range strings.Split(match, ",") {
				cand = strings.TrimSpace(cand)
				if cand == tag || cand == gzTag || cand == "*" {
					h.Set("ETag", tag)
					w.WriteHeader(http.StatusNotModified)
					return false
				}
			}
		}
		h.Set("ETag", tag)
	}
	if len(blob) >= gzipMin && acceptsGzip(r) {
		if tag != "" {
			h.Set("ETag", strings.TrimSuffix(tag, "\"")+"-gz\"")
		}
		h.Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		gz.Write(blob) //nolint:errcheck // client disconnects surface in Close
		gz.Close()     //nolint:errcheck
		return true
	}
	h.Set("Content-Length", strconv.Itoa(len(blob)))
	w.Write(blob) //nolint:errcheck
	return true
}

func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		e := strings.TrimSpace(enc)
		if e != "gzip" && !strings.HasPrefix(e, "gzip;") {
			continue
		}
		// Honor an explicit refusal: "gzip;q=0" (with any number of
		// trailing zeros) declines the encoding per RFC 9110.
		for _, p := range strings.Split(e, ";")[1:] {
			p = strings.TrimSpace(p)
			if q, ok := strings.CutPrefix(p, "q="); ok && strings.Trim(q, "0.") == "" {
				return false
			}
		}
		return true
	}
	return false
}
