package server

// reload_test.go certifies the hot-publish surface: the admin gate on
// POST /v1/datasets/reload, the atomic all-or-nothing catalog swap, the
// crash-safety of manifest-last publishing, and the cache-generation rule
// that keeps a republished dataset from serving its predecessor's bytes.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/storage"
)

func packDataset(t *testing.T, st storage.Store, name string, seed int64) []*core.Variable {
	t.Helper()
	ds := datagen.GE("GE-"+name, 3, 96, seed)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteArchive(context.Background(), st, name, vars); err != nil {
		t.Fatal(err)
	}
	return vars
}

func postReload(t *testing.T, url, token string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/datasets/reload", nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func TestReloadAdminGate(t *testing.T) {
	st := storage.NewMemStore()
	packDataset(t, st, "alpha", 1)

	// Admin disabled: the route exists but always refuses.
	srv, err := New(context.Background(), st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	if resp, _ := postReload(t, hs.URL, "whatever"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled admin: %s", resp.Status)
	}

	// Admin enabled: missing and wrong tokens are 401, the right one 200.
	srv2, err := New(context.Background(), st, Options{AdminToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()
	if resp, _ := postReload(t, hs2.URL, ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing token: %s", resp.Status)
	}
	if resp, _ := postReload(t, hs2.URL, "wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: %s", resp.Status)
	}
	resp, body := postReload(t, hs2.URL, "s3cret")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %s (%s)", resp.Status, body)
	}
	// GET on the route is not allowed.
	if r, _ := get(t, hs2.URL+"/v1/datasets/reload"); r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %s", r.Status)
	}
}

func TestReloadPublishesAndRemoves(t *testing.T) {
	st := storage.NewMemStore()
	packDataset(t, st, "alpha", 1)
	srv, err := New(context.Background(), st, Options{AdminToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// beta does not exist yet.
	if resp, _ := get(t, hs.URL+"/v1/d/beta/index"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("beta before publish: %s", resp.Status)
	}
	packDataset(t, st, "beta", 2)
	resp, body := postReload(t, hs.URL, "tok")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %s", resp.Status)
	}
	var res ReloadResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 2 || len(res.Added) != 1 || res.Added[0] != "beta" || len(res.Removed) != 0 {
		t.Fatalf("reload result = %+v", res)
	}
	if resp, _ := get(t, hs.URL+"/v1/d/beta/index"); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta after publish: %s", resp.Status)
	}

	// Removing alpha's manifest unpublishes it on the next reload.
	if err := st.Put(context.Background(), "alpha.manifest", []byte{}); err != nil {
		t.Fatal(err)
	}
	// MemStore has no delete; an empty manifest is invalid, so prove the
	// all-or-nothing rule instead: the reload fails and alpha stays served.
	if resp, _ := postReload(t, hs.URL, "tok"); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload over corrupt manifest: %s", resp.Status)
	}
	if resp, _ := get(t, hs.URL+"/v1/d/alpha/index"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha after failed reload: %s", resp.Status)
	}
	st2 := srv.Stats()
	if st2.Reloads != 1 || st2.ReloadFailures != 1 || st2.DatasetsLoaded != 3 {
		t.Fatalf("stats = %+v", st2)
	}
	// Metrics expose the publish counters.
	_, mbody := get(t, hs.URL+"/metrics")
	for _, want := range []string{
		"progqoid_reloads_total 1",
		"progqoid_reload_failures_total 1",
		"progqoid_datasets_loaded_total 3",
		`progqoid_route_requests_total{route="reload"}`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestReloadTornPublishIgnored: variable blobs without a manifest — the
// state a packer killed before its commit point leaves behind — are
// invisible to reload.
func TestReloadTornPublishIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	packDataset(t, st, "alpha", 1)
	srv, err := New(context.Background(), st, Options{AdminToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Torn pack: one variable blob flushed, no manifest committed.
	vars := packDataset(t, st, "scratch", 3)
	w, err := storage.NewArchiveWriter(st, "gamma")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVariable(context.Background(), vars[0]); err != nil {
		t.Fatal(err)
	}
	// (writer abandoned: simulated SIGKILL before Close)

	resp, body := postReload(t, hs.URL, "tok")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload with torn publish present: %s (%s)", resp.Status, body)
	}
	var res ReloadResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Datasets {
		if n == "gamma" {
			t.Fatal("torn publish served")
		}
	}
	if resp, _ := get(t, hs.URL+"/v1/d/alpha/meta"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha unaffected by torn publish: %s", resp.Status)
	}
}

// TestReloadKeepsUnchangedDatasetsWarm: publishing a new dataset must not
// cold-start serving of the existing ones — a dataset whose stored bytes
// are unchanged is carried across the reload verbatim, hot cache and all.
func TestReloadKeepsUnchangedDatasetsWarm(t *testing.T) {
	st := storage.NewMemStore()
	packDataset(t, st, "stable", 1)
	srv, err := New(context.Background(), st, Options{AdminToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Warm fragment 0: one miss, then a hit.
	for i := 0; i < 2; i++ {
		if resp, _ := get(t, hs.URL+"/v1/d/stable/frag/VelocityX/0"); resp.StatusCode != http.StatusOK {
			t.Fatalf("frag: %s", resp.Status)
		}
	}
	missesBefore := srv.Stats().HotCacheMisses

	packDataset(t, st, "extra", 2)
	if resp, _ := postReload(t, hs.URL, "tok"); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %s", resp.Status)
	}
	if resp, _ := get(t, hs.URL+"/v1/d/stable/frag/VelocityX/0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("frag after reload: %s", resp.Status)
	}
	after := srv.Stats()
	if after.HotCacheMisses != missesBefore {
		t.Fatalf("unchanged dataset went cold across reload: misses %d -> %d",
			missesBefore, after.HotCacheMisses)
	}
}

// TestReloadRepublishServesFreshBytes: replacing a dataset's contents and
// reloading must serve the new fragments — the hot cache must not leak the
// previous incarnation's bytes through reused keys.
func TestReloadRepublishServesFreshBytes(t *testing.T) {
	st := storage.NewMemStore()
	packDataset(t, st, "ds", 1)
	srv, err := New(context.Background(), st, Options{AdminToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Warm the hot cache with the first incarnation's fragment 0.
	resp, oldFrag := get(t, hs.URL+"/v1/d/ds/frag/VelocityX/0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frag: %s", resp.Status)
	}
	resp, _ = get(t, hs.URL+"/v1/d/ds/frag/VelocityX/0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frag (cached): %s", resp.Status)
	}

	// Republish the dataset with different data, then reload.
	newVars := packDataset(t, st, "ds", 99)
	if resp, _ := postReload(t, hs.URL, "tok"); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %s", resp.Status)
	}
	resp, newFrag := get(t, hs.URL+"/v1/d/ds/frag/VelocityX/0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frag after republish: %s", resp.Status)
	}
	if !bytes.Equal(newFrag, newVars[0].Ref.Fragments[0]) {
		// Note: packDataset leaves payloads intact in its returned vars —
		// the server's own copy was re-read from the store.
		t.Fatal("republished fragment does not match the new archive")
	}
	if bytes.Equal(newFrag, oldFrag) {
		t.Fatal("republished data identical to old data — test is vacuous")
	}
}
