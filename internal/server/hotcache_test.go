package server

// hotcache_test.go hammers the hot-fragment LRU with concurrent readers
// and writers whose working set exceeds capacity, so gets, adds,
// re-inserts of just-evicted keys, and evictions interleave constantly.
// Run under -race this proves the lock discipline; the post-hammer checks
// prove the byte accounting survives the churn.

import (
	"fmt"
	"sync"
	"testing"
)

func TestHotCacheConcurrentChurn(t *testing.T) {
	const (
		workers = 8
		rounds  = 400
		keys    = 64
		valSize = 512
	)
	// Capacity holds only a quarter of the key space: every worker's pass
	// keeps evicting what the others just inserted.
	c := newHotCache(int64(keys / 4 * valSize))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := make([]byte, valSize)
			for r := 0; r < rounds; r++ {
				// Walk the key space with a per-worker stride so the access
				// orders differ and LRU positions keep shuffling.
				k := fmt.Sprintf("k%d", (r*(w+1))%keys)
				if v, ok := c.get(k); ok {
					if len(v) != valSize {
						t.Errorf("got %d-byte value for %s, want %d", len(v), k, valSize)
						return
					}
				} else {
					c.add(k, val)
				}
				if r%16 == w {
					c.stats() // concurrent snapshots must not tear
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.stats()
	if st.bytes > int64(keys/4*valSize) {
		t.Fatalf("cache holds %d bytes, capacity %d", st.bytes, keys/4*valSize)
	}
	if st.bytes != int64(st.entries*valSize) {
		t.Fatalf("size accounting drifted: %d bytes for %d entries of %d", st.bytes, st.entries, valSize)
	}
	if st.entries > keys/4 {
		t.Fatalf("%d entries exceed the %d that fit", st.entries, keys/4)
	}
	// Every add either grew the cache or (beyond capacity) evicted; the
	// counters must account for all of them: inserts = misses that led to
	// an add = evictions + resident entries.
	if st.misses == 0 || st.evictions == 0 {
		t.Fatalf("churn produced no misses (%d) or no evictions (%d)", st.misses, st.evictions)
	}
	// stats() calls don't touch hit/miss; each loop iteration does exactly
	// one get, so the counters must add up to the total get count.
	if st.hits+st.misses != int64(workers*rounds) {
		t.Fatalf("hits %d + misses %d != %d gets", st.hits, st.misses, workers*rounds)
	}
}
