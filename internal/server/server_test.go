package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/obs"
	"progqoi/internal/progressive"
	"progqoi/internal/storage"
)

func testVars(t *testing.T) []*core.Variable {
	t.Helper()
	ds := datagen.GE("GE-srv", 4, 128, 11)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vars
}

func testServer(t *testing.T, opt Options) (*httptest.Server, *Server, []*core.Variable) {
	t.Helper()
	vars := testVars(t)
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	srv, err := New(context.Background(), st, opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs, srv, vars
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestDatasetsAndIndex(t *testing.T) {
	hs, _, vars := testServer(t, Options{})
	resp, body := get(t, hs.URL+"/v1/datasets")
	if resp.StatusCode != 200 {
		t.Fatalf("datasets: %s", resp.Status)
	}
	var dl struct {
		Datasets []string `json:"datasets"`
	}
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatal(err)
	}
	if len(dl.Datasets) != 1 || dl.Datasets[0] != "ge" {
		t.Fatalf("datasets = %v", dl.Datasets)
	}

	resp, body = get(t, hs.URL+"/v1/d/ge/index")
	if resp.StatusCode != 200 {
		t.Fatalf("index: %s", resp.Status)
	}
	var idx Index
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Dataset != "ge" || len(idx.Variables) != len(vars) {
		t.Fatalf("index = %+v", idx)
	}
	for i, iv := range idx.Variables {
		if iv.Name != vars[i].Name {
			t.Errorf("variable %d = %q, want %q", i, iv.Name, vars[i].Name)
		}
		if len(iv.FragmentSizes) != len(vars[i].Ref.Fragments) {
			t.Errorf("%s: %d sizes for %d fragments", iv.Name, len(iv.FragmentSizes), len(vars[i].Ref.Fragments))
		}
		if iv.TotalBytes != vars[i].Ref.TotalBytes() {
			t.Errorf("%s: totalBytes %d, want %d", iv.Name, iv.TotalBytes, vars[i].Ref.TotalBytes())
		}
	}

	resp, _ = get(t, hs.URL+"/v1/d/nope/index")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown dataset: %s", resp.Status)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	hs, _, vars := testServer(t, Options{})
	resp, body := get(t, hs.URL+"/v1/d/ge/meta")
	if resp.StatusCode != 200 {
		t.Fatalf("meta: %s", resp.Status)
	}
	got, err := DecodeMeta(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vars) {
		t.Fatalf("%d meta variables, want %d", len(got), len(vars))
	}
	for i, v := range got {
		want := vars[i]
		if v.Name != want.Name || v.Range != want.Range {
			t.Errorf("meta %d: name/range %q/%g, want %q/%g", i, v.Name, v.Range, want.Name, want.Range)
		}
		if (v.ZeroMask == nil) != (want.ZeroMask == nil) {
			t.Errorf("meta %s: zero-mask presence mismatch", v.Name)
		}
		if len(v.Ref.Fragments) != len(want.Ref.Fragments) {
			t.Errorf("meta %s: %d fragments, want %d", v.Name, len(v.Ref.Fragments), len(want.Ref.Fragments))
		}
		for fi, f := range v.Ref.Fragments {
			if len(f) != 0 {
				t.Fatalf("meta %s fragment %d not stripped (%d bytes)", v.Name, fi, len(f))
			}
		}
	}
}

func TestFragmentETagAnd304(t *testing.T) {
	hs, srv, vars := testServer(t, Options{})
	url := hs.URL + "/v1/d/ge/frag/" + vars[0].Name + "/0"
	resp, body := get(t, url)
	if resp.StatusCode != 200 {
		t.Fatalf("frag: %s", resp.Status)
	}
	if !bytes.Equal(body, vars[0].Ref.Fragments[0]) {
		t.Fatal("fragment payload mismatch")
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("no ETag on immutable fragment")
	}
	if cc := resp.Header.Get("Cache-Control"); cc == "" {
		t.Fatal("no Cache-Control on immutable fragment")
	}

	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("If-None-Match", tag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified || len(b2) != 0 {
		t.Fatalf("conditional GET: %s with %d bytes, want 304 empty", resp2.Status, len(b2))
	}

	resp3, _ := get(t, hs.URL+"/v1/d/ge/frag/"+vars[0].Name+"/999999")
	if resp3.StatusCode != 404 {
		t.Fatalf("out-of-range fragment: %s", resp3.Status)
	}

	// A 304 revalidation ships no payload, so it must not inflate the
	// fragment-bytes stat.
	served := srv.Stats().FragmentBytes
	req2, _ := http.NewRequest("GET", url, nil)
	req2.Header.Set("If-None-Match", tag)
	resp4, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if got := srv.Stats().FragmentBytes; got != served {
		t.Fatalf("304 revalidation grew FragmentBytes %d -> %d", served, got)
	}
}

func TestBatchFetch(t *testing.T) {
	hs, _, vars := testServer(t, Options{})
	req := BatchRequest{Wants: []BatchWant{
		{Var: vars[0].Name, Indices: []int{0, 1, 2}},
		{Var: vars[1].Name, Indices: []int{0}},
	}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/d/ge/frags", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %s", resp.Status)
	}
	frags, err := DecodeBatch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 4 {
		t.Fatalf("%d fragments, want 4", len(frags))
	}
	for _, f := range frags {
		var v *core.Variable
		for _, cand := range vars {
			if cand.Name == f.Var {
				v = cand
			}
		}
		if v == nil || !bytes.Equal(f.Payload, v.Ref.Fragments[f.Index]) {
			t.Fatalf("batch fragment %s/%d mismatch", f.Var, f.Index)
		}
	}

	bad, _ := json.Marshal(BatchRequest{Wants: []BatchWant{{Var: "nope", Indices: []int{0}}}})
	resp2, err := http.Post(hs.URL+"/v1/d/ge/frags", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("unknown variable batch: %s", resp2.Status)
	}
}

func TestGzipResponses(t *testing.T) {
	hs, _, _ := testServer(t, Options{})
	_, plain := get(t, hs.URL+"/v1/d/ge/meta")

	tr := &http.Transport{DisableCompression: true}
	req, _ := http.NewRequest("GET", hs.URL+"/v1/d/ge/meta", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := (&http.Client{Transport: tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	gr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, plain) {
		t.Fatal("gzip round trip does not match identity response")
	}

	// An explicit q=0 refusal must get the identity encoding.
	req2, _ := http.NewRequest("GET", hs.URL+"/v1/d/ge/meta", nil)
	req2.Header.Set("Accept-Encoding", "gzip;q=0")
	resp2, err := (&http.Client{Transport: tr}).Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if enc := resp2.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("gzip;q=0 got Content-Encoding %q, want identity", enc)
	}
	body2, _ := io.ReadAll(resp2.Body)
	if !bytes.Equal(body2, plain) {
		t.Fatal("identity response after q=0 does not match")
	}
}

// gateStore blocks Get calls (after construction) until released, so the
// test can observe the concurrency limiter holding requests back.
type gateStore struct {
	storage.Store
	mu      sync.Mutex
	armed   bool
	started chan string
	release chan struct{}
}

func (g *gateStore) Get(ctx context.Context, key string) ([]byte, error) {
	g.mu.Lock()
	armed := g.armed
	g.mu.Unlock()
	if armed {
		g.started <- key
		<-g.release
	}
	return g.Store.Get(ctx, key)
}

func TestConcurrencyLimit(t *testing.T) {
	vars := testVars(t)
	mem := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), mem, "ge", vars); err != nil {
		t.Fatal(err)
	}
	gs := &gateStore{Store: mem, started: make(chan string, 16), release: make(chan struct{})}
	srv, err := New(context.Background(), gs, Options{MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	gs.mu.Lock()
	gs.armed = true
	gs.mu.Unlock()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(hs.URL + "/v1/store/blob/ge.manifest")
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	// Exactly MaxInflight requests may reach the store; the rest must queue
	// on the semaphore.
	for i := 0; i < 2; i++ {
		select {
		case <-gs.started:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers never reached the store")
		}
	}
	select {
	case k := <-gs.started:
		t.Fatalf("third request (%s) passed a MaxInflight=2 limiter", k)
	case <-time.After(100 * time.Millisecond):
	}
	close(gs.release)
	wg.Wait()
	if max := srv.Stats().MaxConcurrent; max > 2 {
		t.Fatalf("max concurrent %d, want <= 2", max)
	}
}

func TestHealthz(t *testing.T) {
	hs, _, _ := testServer(t, Options{})
	resp, body := get(t, hs.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %s", resp.Status)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Datasets != 1 {
		t.Fatalf("healthz = %+v", st)
	}
}

func TestWireCodecsRejectCorruption(t *testing.T) {
	vars := testVars(t)
	meta := EncodeMeta(vars)
	for _, mut := range []int{0, len(meta) / 2, len(meta) - 1} {
		bad := append([]byte(nil), meta...)
		bad[mut] ^= 0x40
		if _, err := DecodeMeta(bad); err == nil {
			t.Fatalf("corrupt meta (byte %d) accepted", mut)
		}
	}
	if _, err := DecodeMeta(meta[:len(meta)-3]); err == nil {
		t.Fatal("truncated meta accepted")
	}
	batch := EncodeBatch([]BatchFragment{{Var: "Vx", Index: 3, Payload: []byte("abc")}})
	if frags, err := DecodeBatch(batch); err != nil || len(frags) != 1 || frags[0].Index != 3 {
		t.Fatalf("batch round trip: %v %v", frags, err)
	}
	if _, err := DecodeBatch(batch[:len(batch)-2]); err == nil {
		t.Fatal("truncated batch accepted")
	}
}

func ExampleBuildIndex() {
	idx := BuildIndex("demo", nil)
	fmt.Println(idx.Dataset, len(idx.Variables))
	// Output: demo 0
}

func TestHotCacheServesAndCounts(t *testing.T) {
	hs, srv, vars := testServer(t, Options{})
	url := fmt.Sprintf("%s/v1/d/ge/frag/%s/0", hs.URL, vars[0].Name)

	resp, body := get(t, url)
	if resp.StatusCode != 200 || !bytes.Equal(body, vars[0].Ref.Fragments[0]) {
		t.Fatalf("first read: %s, %d bytes", resp.Status, len(body))
	}
	st := srv.Stats()
	if st.HotCacheMisses == 0 || st.HotCacheEntries == 0 {
		t.Fatalf("first read did not miss into the cache: %+v", st)
	}

	resp, body = get(t, url)
	if resp.StatusCode != 200 || !bytes.Equal(body, vars[0].Ref.Fragments[0]) {
		t.Fatalf("second read: %s, %d bytes", resp.Status, len(body))
	}
	st2 := srv.Stats()
	if st2.HotCacheHits == 0 {
		t.Fatalf("second read missed the hot cache: %+v", st2)
	}
	if st2.HotCacheMisses != st.HotCacheMisses {
		t.Fatalf("second read went to the store: %d -> %d misses", st.HotCacheMisses, st2.HotCacheMisses)
	}
}

func TestHotCacheEvictsUnderBytePressure(t *testing.T) {
	// A cache smaller than one variable's fragments must keep evicting yet
	// serve every payload correctly.
	hs, srv, vars := testServer(t, Options{HotCacheBytes: 4 << 10})
	for vi, v := range vars {
		for fi, want := range v.Ref.Fragments {
			resp, body := get(t, fmt.Sprintf("%s/v1/d/ge/frag/%s/%d", hs.URL, v.Name, fi))
			if resp.StatusCode != 200 || !bytes.Equal(body, want) {
				t.Fatalf("var %d frag %d: %s, %d bytes (want %d)", vi, fi, resp.Status, len(body), len(want))
			}
		}
	}
	st := srv.Stats()
	if st.HotCacheEvictions == 0 {
		t.Fatalf("tiny cache never evicted: %+v", st)
	}
	if st.HotCacheBytes > 4<<10 {
		t.Fatalf("cache exceeded its byte bound: %d", st.HotCacheBytes)
	}
}

func TestHotCacheDisabledStillServes(t *testing.T) {
	hs, srv, vars := testServer(t, Options{HotCacheBytes: -1})
	url := fmt.Sprintf("%s/v1/d/ge/frag/%s/1", hs.URL, vars[0].Name)
	for i := 0; i < 2; i++ {
		resp, body := get(t, url)
		if resp.StatusCode != 200 || !bytes.Equal(body, vars[0].Ref.Fragments[1]) {
			t.Fatalf("read %d: %s", i, resp.Status)
		}
	}
	st := srv.Stats()
	if st.HotCacheHits != 0 || st.HotCacheEntries != 0 {
		t.Fatalf("disabled cache recorded hits/entries: %+v", st)
	}
}

func TestFragmentCorruptAtRestDetected(t *testing.T) {
	vars := testVars(t)
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		t.Fatal(err)
	}
	srv, err := New(context.Background(), st, Options{HotCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Rot one byte inside fragment 0's payload region after startup: the
	// per-read ETag check must refuse to serve it.
	key := storage.VarKey("ge", vars[0].Name)
	raw, err := st.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := storage.VariableFragmentRanges(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw[locs[0].Off] ^= 0xff
	if err := st.Put(context.Background(), key, raw); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	resp, body := get(t, fmt.Sprintf("%s/v1/d/ge/frag/%s/0", hs.URL, vars[0].Name))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt fragment served: %s", resp.Status)
	}
	if !bytes.Contains(body, []byte("corrupt")) {
		t.Fatalf("error does not name corruption: %q", body)
	}
	// The untouched fragment next door still serves.
	resp, _ = get(t, fmt.Sprintf("%s/v1/d/ge/frag/%s/1", hs.URL, vars[0].Name))
	if resp.StatusCode != 200 {
		t.Fatalf("healthy fragment refused: %s", resp.Status)
	}
}

func TestMetricsExposition(t *testing.T) {
	hs, _, vars := testServer(t, Options{})
	get(t, fmt.Sprintf("%s/v1/d/ge/frag/%s/0", hs.URL, vars[0].Name))
	body, _ := json.Marshal(BatchRequest{Wants: []BatchWant{{Var: vars[0].Name, Indices: []int{0, 1}}}})
	resp, err := http.Post(hs.URL+"/v1/d/ge/frags", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	mresp, mbody := get(t, hs.URL+"/metrics")
	if mresp.StatusCode != 200 {
		t.Fatalf("/metrics: %s", mresp.Status)
	}
	// Prometheus requires the exact versioned media type for the text
	// exposition format; a bare text/plain makes some scrapers guess.
	if ct, want := mresp.Header.Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; ct != want {
		t.Fatalf("content type %q, want %q", ct, want)
	}
	text := string(mbody)
	for _, want := range []string{
		"progqoid_requests_total",
		`progqoid_route_requests_total{route="frag"} 1`,
		`progqoid_route_requests_total{route="frags"} 1`,
		"progqoid_batch_requests_total 1",
		"progqoid_batch_fragments_total 2",
		"progqoid_inflight_requests",
		"progqoid_fragment_bytes_total",
		"progqoid_hot_cache_hits_total",
		"progqoid_hot_cache_misses_total",
		"# TYPE progqoid_requests_total counter",
		"# TYPE progqoid_request_duration_seconds histogram",
		`progqoid_request_duration_seconds_bucket{route="frag",le="+Inf"} 1`,
		`progqoid_request_duration_seconds_count{route="frags"} 1`,
		"# TYPE progqoid_frags_request_bytes histogram",
		"progqoid_frags_request_bytes_count 1",
		"# TYPE progqoid_frags_response_bytes histogram",
		"progqoid_frags_response_bytes_count 1",
		"# TYPE progqoid_goroutines gauge",
		"# TYPE progqoid_heap_alloc_bytes gauge",
		"# TYPE progqoid_gc_pause_seconds_total counter",
	} {
		if !bytes.Contains(mbody, []byte(want)) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// The whole document must survive the strict exposition parser: every
	// sample preceded by HELP and TYPE, histogram children well-formed.
	fams, err := obs.ParseExposition(bytes.NewReader(mbody))
	if err != nil {
		t.Fatalf("/metrics failed strict exposition parse: %v\n%s", err, text)
	}
	if f := fams["progqoid_request_duration_seconds"]; f == nil || f.Type != "histogram" || f.Samples == 0 {
		t.Fatalf("request_duration_seconds family malformed: %+v", fams["progqoid_request_duration_seconds"])
	}
}

func TestClusterInfoEndpoint(t *testing.T) {
	hs, _, _ := testServer(t, Options{
		Advertise: "http://node0:9123",
		Peers:     []string{"http://node1:9123", "http://node2:9123"},
	})
	resp, body := get(t, hs.URL+"/v1/cluster")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/cluster: %s", resp.Status)
	}
	var info ClusterInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Advertise != "http://node0:9123" || len(info.Peers) != 2 {
		t.Fatalf("cluster info = %+v", info)
	}

	// A solo node reports an empty, non-null peer list.
	hs2, _, _ := testServer(t, Options{})
	_, body2 := get(t, hs2.URL+"/v1/cluster")
	if !bytes.Contains(body2, []byte(`"peers":[]`)) {
		t.Fatalf("solo cluster info = %s", body2)
	}
}

func TestStatsSnapshotConsistency(t *testing.T) {
	// Hammer the server while polling Stats: the limiter counters are
	// captured in one critical section, so no snapshot may ever show more
	// in-flight requests than the recorded high-water mark.
	hs, srv, vars := testServer(t, Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/d/ge/frag/%s/0", hs.URL, vars[0].Name))
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	var lastRequests int64
	for time.Now().Before(deadline) {
		st := srv.Stats()
		if st.Inflight > st.MaxConcurrent {
			t.Errorf("torn snapshot: inflight %d > maxConcurrent %d", st.Inflight, st.MaxConcurrent)
			break
		}
		if st.Requests < lastRequests {
			t.Errorf("requests went backwards: %d -> %d", lastRequests, st.Requests)
			break
		}
		lastRequests = st.Requests
	}
	close(stop)
	wg.Wait()
}
