// Membership: the elastic side of the cluster. A static cluster (PR 4)
// froze its topology at startup — /v1/cluster reported whatever -peers
// said, and adding, draining, or restarting a node meant restarting every
// client. This file makes /v1/cluster live state: nodes announce
// themselves to seed peers on boot (POST /v1/cluster/join), heartbeat
// with a generation counter (POST /v1/cluster/heartbeat), are marked
// suspect and then removed after missed heartbeats, and leave cleanly
// (POST /v1/cluster/leave) or drain gracefully (POST /v1/cluster/drain,
// admin-gated like reload).
//
// The state machine per member is alive → suspect → removed, with two
// recovery edges: a suspect member's next heartbeat returns it to alive
// (a falsely suspected node rejoins by doing nothing special), and a
// restarted node re-joins under a higher generation, which replaces its
// previous incarnation outright. Generations order incarnations of the
// same address: announcements carrying a generation below the recorded
// one are rejected with 409 so a slow, stale duplicate can never undo a
// restart. Every membership change bumps the node's epoch; clients use
// the epoch-numbered view to re-resolve topology mid-session.
//
// Drain is the graceful exit: a draining node stops accepting new
// sessions (index and meta return 503) but keeps serving fragment reads
// so in-flight retrievals finish, keeps heartbeating with state
// "draining" so peers advertise it as non-routable, and deregisters via
// /v1/cluster/leave on shutdown.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Membership states reported in ClusterInfo.Members.
const (
	// MemberAlive is a node heartbeating on schedule; clients route to it.
	MemberAlive = "alive"
	// MemberSuspect is a node that missed heartbeats for SuspectAfter;
	// clients stop routing to it, but its next heartbeat restores alive.
	MemberSuspect = "suspect"
	// MemberDraining is a node finishing in-flight work before leaving;
	// clients stop opening sessions against it.
	MemberDraining = "draining"
)

// Membership timing defaults, applied when the corresponding Options
// fields are zero.
const (
	// DefaultHeartbeatInterval is how often a node announces itself to
	// every peer it knows.
	DefaultHeartbeatInterval = time.Second
	// DefaultSuspectMultiple × HeartbeatInterval of silence marks a
	// member suspect.
	DefaultSuspectMultiple = 3
	// DefaultRemoveMultiple × HeartbeatInterval of silence removes a
	// member from the table entirely.
	DefaultRemoveMultiple = 10
)

// MemberInfo is one row of ClusterInfo.Members: a node's advertised base
// URL, the generation of its current incarnation, and its membership
// state.
type MemberInfo struct {
	Addr       string `json:"addr"`
	Generation int64  `json:"generation"`
	State      string `json:"state"`
}

// announcement is the request body of /v1/cluster/{join,heartbeat,leave}:
// the sender's advertised address, the generation of its current
// incarnation, and (for heartbeats) its self-reported state — "alive" or
// "draining"; nodes never claim "suspect" about themselves.
type announcement struct {
	Addr       string `json:"addr"`
	Generation int64  `json:"generation"`
	State      string `json:"state,omitempty"`
}

// member is one peer's row in the membership table. Fields are guarded
// by the owning membership's mu.
type member struct {
	addr     string
	gen      int64
	state    string
	lastSeen time.Time
}

// membership is a node's live view of the cluster: itself plus every
// peer it has heard from (directly or through a peer's merged view),
// each with the generation of its current incarnation and a liveness
// state driven by heartbeat arrival times. All state transitions bump
// epoch, the version number clients key their topology views on.
type membership struct {
	hbInterval   time.Duration
	suspectAfter time.Duration
	removeAfter  time.Duration

	mu       sync.Mutex
	self     string             // guarded by mu; this node's advertised base URL ("" until set)
	gen      int64              // guarded by mu; this node's incarnation
	epoch    int64              // guarded by mu; bumped on every membership change
	draining bool               // guarded by mu
	members  map[string]*member // guarded by mu; peers by advertised URL, never self

	suspects   atomic.Int64 // alive→suspect transitions
	drains     atomic.Int64 // drain transitions acknowledged
	heartbeats atomic.Int64 // heartbeats received from peers
}

// newMembership builds the table from Options, applying the timing
// defaults. The zero table is a solo cluster of the advertised node.
func newMembership(opt Options) *membership {
	hb := opt.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeatInterval
	}
	sa := opt.SuspectAfter
	if sa <= 0 {
		sa = DefaultSuspectMultiple * hb
	}
	ra := opt.RemoveAfter
	if ra <= 0 {
		ra = DefaultRemoveMultiple * hb
	}
	if ra < sa {
		ra = sa
	}
	gen := opt.Generation
	if gen <= 0 {
		gen = 1
	}
	self := ""
	if opt.Advertise != "" {
		if a, err := normalizeNodeURL(opt.Advertise); err == nil {
			self = a
		} else {
			self = strings.TrimRight(opt.Advertise, "/")
		}
	}
	return &membership{
		hbInterval:   hb,
		suspectAfter: sa,
		removeAfter:  ra,
		self:         self,
		gen:          gen,
		epoch:        1,
		members:      map[string]*member{},
	}
}

// normalizeNodeURL validates a node's advertised base URL — absolute
// http(s) with a host — and trims the trailing slash so the same node
// never registers twice under spelling variants.
func normalizeNodeURL(raw string) (string, error) {
	base := strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("server: node URL %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("server: node URL %q must be absolute http(s)", raw)
	}
	return base, nil
}

// setSelf records this node's advertised URL (StartMembership learns it
// later than New does for httptest-hosted servers).
func (m *membership) setSelf(addr string) {
	m.mu.Lock()
	m.self = addr
	m.mu.Unlock()
}

func (m *membership) selfAddr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.self
}

func (m *membership) generation() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

func (m *membership) isSelf(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.self != "" && addr == m.self
}

// selfState is what this node claims about itself in announcements.
func (m *membership) selfState() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return MemberDraining
	}
	return MemberAlive
}

// observe records a first-party announcement (join or heartbeat) from
// addr. It reports false when the announcement is stale — its generation
// is below the recorded incarnation — so a delayed duplicate can never
// roll back a restart. A fresh generation replaces the incarnation; an
// equal one refreshes liveness and adopts the sender's self-reported
// state, which is how a falsely suspected node returns to alive.
func (m *membership) observe(addr string, gen int64, state string, now time.Time) bool {
	if state == "" {
		state = MemberAlive
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == m.self {
		return true
	}
	mem := m.members[addr]
	if mem == nil {
		m.members[addr] = &member{addr: addr, gen: gen, state: state, lastSeen: now}
		m.epoch++
		return true
	}
	if gen < mem.gen {
		return false
	}
	if gen > mem.gen || mem.state != state {
		m.epoch++
	}
	mem.gen, mem.state, mem.lastSeen = gen, state, now
	return true
}

// learn merges a peer's view (the ClusterInfo a join or heartbeat
// returned) into the table: unknown members are added and newer
// incarnations adopted, but equal-generation hearsay never refreshes
// liveness — only a member's own heartbeats keep it out of suspicion —
// and third-party suspicion is never adopted, because each node's
// sweeper judges silence against its own clock.
func (m *membership) learn(infos []MemberInfo, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mi := range infos {
		addr, err := normalizeNodeURL(mi.Addr)
		if err != nil || addr == m.self || mi.Generation <= 0 {
			continue
		}
		if mi.State != MemberAlive && mi.State != MemberDraining {
			continue
		}
		mem := m.members[addr]
		if mem == nil {
			m.members[addr] = &member{addr: addr, gen: mi.Generation, state: mi.State, lastSeen: now}
			m.epoch++
			continue
		}
		if mi.Generation > mem.gen {
			mem.gen, mem.state, mem.lastSeen = mi.Generation, mi.State, now
			m.epoch++
		}
	}
}

// remove deletes addr from the table (a clean leave). It reports false
// when the request is stale — a generation below the member's current
// incarnation must not remove the restarted node that superseded it.
// Removing an unknown member is a no-op success: leave is idempotent.
func (m *membership) remove(addr string, gen int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem := m.members[addr]
	if mem == nil {
		return true
	}
	if gen < mem.gen {
		return false
	}
	delete(m.members, addr)
	m.epoch++
	return true
}

// sweep advances the liveness state machine: members silent past
// suspectAfter turn suspect, members silent past removeAfter are removed
// outright. Returns the transitioned addresses (sorted) for logging.
func (m *membership) sweep(now time.Time) (suspected, removed []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for addr, mem := range m.members {
		idle := now.Sub(mem.lastSeen)
		switch {
		case idle > m.removeAfter:
			delete(m.members, addr)
			removed = append(removed, addr)
			m.epoch++
		case mem.state == MemberAlive && idle > m.suspectAfter:
			mem.state = MemberSuspect
			suspected = append(suspected, addr)
			m.suspects.Add(1)
			m.epoch++
		}
	}
	sort.Strings(suspected)
	sort.Strings(removed)
	return suspected, removed
}

// setDraining marks this node draining, reporting whether this call was
// the transition (drain is idempotent; only the first call counts).
func (m *membership) setDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return false
	}
	m.draining = true
	m.epoch++
	m.drains.Add(1)
	return true
}

func (m *membership) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// targets returns every address worth announcing to: known members plus
// the configured seeds (so a node that booted before its seeds keeps
// trying them), minus itself, deduplicated and sorted.
func (m *membership) targets(seeds []string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]bool{m.self: true}
	var out []string
	for addr := range m.members {
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// info renders the table as the /v1/cluster payload. Members lists this
// node first, then peers sorted by address. Peers stays the legacy flat
// list — the static -peers configuration unioned with every known member
// — so pre-elastic clients doing one-shot peer discovery keep finding
// the whole cluster.
func (m *membership) info(staticPeers []string) ClusterInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	info := ClusterInfo{Advertise: m.self, Epoch: m.epoch, Draining: m.draining, Peers: []string{}}
	if m.self != "" {
		st := MemberAlive
		if m.draining {
			st = MemberDraining
		}
		info.Members = append(info.Members, MemberInfo{Addr: m.self, Generation: m.gen, State: st})
	}
	addrs := make([]string, 0, len(m.members))
	for addr := range m.members {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		mem := m.members[addr]
		info.Members = append(info.Members, MemberInfo{Addr: addr, Generation: mem.gen, State: mem.state})
	}
	seen := map[string]bool{m.self: true}
	for _, p := range staticPeers {
		if !seen[p] {
			seen[p] = true
			info.Peers = append(info.Peers, p)
		}
	}
	// Only alive members reach the legacy Peers union: pre-elastic
	// clients route straight off Peers, so a suspect or draining node
	// listed there would keep taking traffic it cannot serve.
	for _, addr := range addrs {
		if m.members[addr].state != MemberAlive {
			continue
		}
		if !seen[addr] {
			seen[addr] = true
			info.Peers = append(info.Peers, addr)
		}
	}
	return info
}

// membershipMetrics is the point-in-time snapshot /metrics and Stats
// render.
type membershipMetrics struct {
	alive, suspect, draining int
	epoch                    int64
	suspects                 int64
	drains                   int64
	heartbeats               int64
}

func (m *membership) metrics() membershipMetrics {
	m.mu.Lock()
	mm := membershipMetrics{epoch: m.epoch}
	if m.self != "" {
		if m.draining {
			mm.draining++
		} else {
			mm.alive++
		}
	}
	for _, mem := range m.members {
		switch mem.state {
		case MemberSuspect:
			mm.suspect++
		case MemberDraining:
			mm.draining++
		default:
			mm.alive++
		}
	}
	m.mu.Unlock()
	mm.suspects = m.suspects.Load()
	mm.drains = m.drains.Load()
	mm.heartbeats = m.heartbeats.Load()
	return mm
}

// --- server integration -------------------------------------------------

// StartMembership turns on dynamic membership for this node: it records
// the advertised URL (known only after the listener binds, which is why
// this is not part of New), announces a join to every seed, and starts
// the heartbeat/sweep loop. Heartbeats go to every known member and
// every seed each HeartbeatInterval, so a node whose seeds were down at
// boot converges as soon as they answer. ctx cancels the loop; so does
// StopMembership.
func (s *Server) StartMembership(ctx context.Context, advertise string, seeds []string) error {
	addr, err := normalizeNodeURL(advertise)
	if err != nil {
		return fmt.Errorf("server: membership advertise: %w", err)
	}
	if !s.membStarted.CompareAndSwap(false, true) {
		return fmt.Errorf("server: membership already started")
	}
	s.memb.setSelf(addr)
	for _, p := range seeds {
		sp, err := normalizeNodeURL(p)
		if err != nil {
			return fmt.Errorf("server: membership seed: %w", err)
		}
		if sp != addr {
			s.membSeeds = append(s.membSeeds, sp)
		}
	}
	s.membHC = &http.Client{Timeout: s.announceTimeout()}
	s.announceAll(ctx, "join")
	s.membWG.Add(1)
	go s.membershipLoop(ctx)
	return nil
}

// StopMembership stops the heartbeat/sweep loop and waits for it. Safe
// to call even when StartMembership never ran, and more than once.
func (s *Server) StopMembership() {
	s.membStopOnce.Do(func() { close(s.membStop) })
	s.membWG.Wait()
}

// Drain marks this node draining: index and meta answer 503 so no new
// session can start, fragment routes keep serving so in-flight
// retrievals finish, and heartbeats announce state "draining" so peers
// (and refreshing clients) route around it. Idempotent.
func (s *Server) Drain() {
	if s.memb.setDraining() && s.opts.Log != nil {
		s.opts.Log.Info("cluster drain: not accepting new sessions")
	}
}

// Draining reports whether Drain was called (directly or via the
// admin-gated POST /v1/cluster/drain).
func (s *Server) Draining() bool { return s.memb.isDraining() }

// LeaveCluster announces a clean departure to every known member and
// seed, so the node disappears from peer tables immediately instead of
// aging through suspect→removed. Best-effort: unreachable peers learn
// from their sweepers.
func (s *Server) LeaveCluster(ctx context.Context) {
	if s.membHC == nil {
		return
	}
	s.announceAll(ctx, "leave")
}

// announceTimeout bounds one announcement round trip: twice the
// heartbeat interval, clamped to [250ms, 2s], so one dead peer can never
// stall a heartbeat round past the suspicion window of the live ones.
func (s *Server) announceTimeout() time.Duration {
	d := 2 * s.memb.hbInterval
	if d < 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// announceAll sends one announcement of the given kind to every target
// concurrently and waits for the round to finish.
func (s *Server) announceAll(ctx context.Context, kind string) {
	var wg sync.WaitGroup
	for _, target := range s.memb.targets(s.membSeeds) {
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			s.announce(ctx, kind, target)
		}(target)
	}
	wg.Wait()
}

// announce POSTs one join/heartbeat/leave to target and merges the
// returned view into the local table (anti-entropy: every announcement
// round trip is also a topology exchange). Failures are logged at debug
// and otherwise ignored — the sweeper owns liveness judgments.
func (s *Server) announce(ctx context.Context, kind, target string) {
	body, _ := json.Marshal(announcement{
		Addr:       s.memb.selfAddr(),
		Generation: s.memb.generation(),
		State:      s.memb.selfState(),
	})
	rctx, cancel := context.WithTimeout(ctx, s.announceTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, target+"/v1/cluster/"+kind, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.membHC.Do(req)
	if err != nil {
		if s.opts.Log != nil {
			s.opts.Log.Debug("cluster announce failed",
				slog.String("kind", kind), slog.String("peer", target), slog.String("error", err.Error()))
		}
		return
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK || rerr != nil {
		if s.opts.Log != nil {
			s.opts.Log.Debug("cluster announce rejected",
				slog.String("kind", kind), slog.String("peer", target), slog.Int("status", resp.StatusCode))
		}
		return
	}
	if kind == "leave" {
		return
	}
	var info ClusterInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return
	}
	s.memb.learn(info.Members, time.Now())
}

// membershipLoop heartbeats and sweeps every HeartbeatInterval until the
// context dies or StopMembership is called.
func (s *Server) membershipLoop(ctx context.Context) {
	defer s.membWG.Done()
	t := time.NewTicker(s.memb.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.membStop:
			return
		case <-t.C:
		}
		s.announceAll(ctx, "heartbeat")
		suspected, removed := s.memb.sweep(time.Now())
		if s.opts.Log != nil {
			for _, addr := range suspected {
				s.opts.Log.Warn("cluster member suspect", slog.String("member", addr))
			}
			for _, addr := range removed {
				s.opts.Log.Warn("cluster member removed", slog.String("member", addr))
			}
		}
	}
}

// --- handlers -----------------------------------------------------------

// decodeAnnouncement reads and validates a membership announcement body,
// writing the 400 itself on malformed input.
func (s *Server) decodeAnnouncement(w http.ResponseWriter, r *http.Request) (announcement, bool) {
	var a announcement
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		http.Error(w, "request body too large or unreadable", http.StatusBadRequest)
		return a, false
	}
	if err := json.Unmarshal(body, &a); err != nil {
		http.Error(w, "bad announcement: "+err.Error(), http.StatusBadRequest)
		return a, false
	}
	addr, err := normalizeNodeURL(a.Addr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return a, false
	}
	a.Addr = addr
	if a.Generation <= 0 {
		http.Error(w, "generation must be a positive incarnation counter", http.StatusBadRequest)
		return a, false
	}
	switch a.State {
	case "", MemberAlive, MemberDraining:
	default:
		http.Error(w, "state must be \"alive\" or \"draining\"", http.StatusBadRequest)
		return a, false
	}
	return a, true
}

// handleClusterJoin admits a node into the membership table and returns
// the full view so the joiner learns the cluster in one round trip. 409
// on a stale generation or on a duplicate of this node's own advertised
// address.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	a, ok := s.decodeAnnouncement(w, r)
	if !ok {
		return
	}
	if s.memb.isSelf(a.Addr) {
		http.Error(w, "duplicate advertise address: that URL is this node's own", http.StatusConflict)
		return
	}
	if !s.memb.observe(a.Addr, a.Generation, a.State, time.Now()) {
		http.Error(w, "stale generation: a newer incarnation of that address is registered", http.StatusConflict)
		return
	}
	if s.opts.Log != nil {
		s.opts.Log.Info("cluster join",
			slog.String("member", a.Addr), slog.Int64("generation", a.Generation))
	}
	b, _ := json.Marshal(s.memb.info(s.opts.Peers))
	writeBlob(w, r, b, "", "application/json", false)
}

// handleClusterHeartbeat refreshes a member's liveness. An unknown
// sender joins implicitly (heartbeat is join's idempotent steady state);
// a stale generation is rejected 409. The response is the full view, so
// every heartbeat doubles as anti-entropy.
func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	a, ok := s.decodeAnnouncement(w, r)
	if !ok {
		return
	}
	if s.memb.isSelf(a.Addr) {
		http.Error(w, "duplicate advertise address: that URL is this node's own", http.StatusConflict)
		return
	}
	if !s.memb.observe(a.Addr, a.Generation, a.State, time.Now()) {
		http.Error(w, "stale generation: a newer incarnation of that address is registered", http.StatusConflict)
		return
	}
	s.memb.heartbeats.Add(1)
	b, _ := json.Marshal(s.memb.info(s.opts.Peers))
	writeBlob(w, r, b, "", "application/json", false)
}

// handleClusterLeave removes a member cleanly. Idempotent; 409 only when
// the leave is stale (a newer incarnation of the address is registered —
// the restarted node must not be unregistered by its predecessor's
// shutdown).
func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	a, ok := s.decodeAnnouncement(w, r)
	if !ok {
		return
	}
	if !s.memb.remove(a.Addr, a.Generation) {
		http.Error(w, "stale generation: a newer incarnation of that address is registered", http.StatusConflict)
		return
	}
	if s.opts.Log != nil {
		s.opts.Log.Info("cluster leave", slog.String("member", a.Addr))
	}
	b, _ := json.Marshal(s.memb.info(s.opts.Peers))
	writeBlob(w, r, b, "", "application/json", false)
}

// handleClusterDrain starts a graceful drain, gated exactly like reload:
// 403 when no AdminToken is configured, 401 on a missing or wrong token.
func (s *Server) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	if s.opts.AdminToken == "" {
		http.Error(w, "admin interface disabled (start with an admin token to enable drain)", http.StatusForbidden)
		return
	}
	tok, ok := bearerToken(r)
	if !ok || !TokenEqual(tok, s.opts.AdminToken) {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	s.Drain()
	b, _ := json.Marshal(s.memb.info(s.opts.Peers))
	writeBlob(w, r, b, "", "application/json", false)
}
