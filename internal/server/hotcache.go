package server

import (
	"container/list"
	"sync"
)

// hotCache is the server's byte-bounded LRU over fragment payloads: the
// working set a cluster node keeps in memory in front of its store.
// Values are held by reference — fragments are immutable — so a hit costs
// no copy. A zero-capacity cache stores nothing, which degrades every
// fragment read to a store read but keeps the server correct.
type hotCache struct {
	mu        sync.Mutex
	capBytes  int64                    // immutable after construction
	size      int64                    // guarded by mu
	ll        *list.List               // guarded by mu; front = most recently used
	items     map[string]*list.Element // guarded by mu
	hits      int64                    // guarded by mu
	misses    int64                    // guarded by mu
	evictions int64                    // guarded by mu
}

type hotEntry struct {
	key string
	val []byte
}

func newHotCache(capBytes int64) *hotCache {
	return &hotCache{capBytes: capBytes, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *hotCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*hotEntry).val, true
}

func (c *hotCache) add(key string, val []byte) {
	if c.capBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*hotEntry)
		c.size += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&hotEntry{key: key, val: val})
		c.size += int64(len(val))
	}
	for c.size > c.capBytes && c.ll.Len() > 0 {
		back := c.ll.Back()
		e := back.Value.(*hotEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.size -= int64(len(e.val))
		c.evictions++
	}
}

// hotStats is one consistent snapshot of the cache counters.
type hotStats struct {
	bytes     int64
	entries   int
	hits      int64
	misses    int64
	evictions int64
}

func (c *hotCache) stats() hotStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return hotStats{bytes: c.size, entries: c.ll.Len(), hits: c.hits, misses: c.misses, evictions: c.evictions}
}
