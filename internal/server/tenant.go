// tenant.go — multi-tenant authentication and quality-of-service
// admission for the fragment service.
//
// A server started with Options.Tenants requires every data-plane
// request (everything except the /healthz and /metrics probes and the
// admin-gated reload route) to present a per-tenant bearer token. Each
// tenant carries its own QoS envelope:
//
//   - a token-bucket rate limit (requests/second with a burst bound):
//     over-limit requests are rejected with 429 and a Retry-After
//     header telling the client when the bucket will next hold a token;
//   - a per-tenant in-flight cap, also enforced with 429;
//   - a priority class, "interactive" or "bulk", deciding which queue
//     the request waits in when the server is at MaxInflight.
//
// Admission is a two-class queue in front of the serving slots: when a
// slot frees, interactive waiters are always dequeued ahead of bulk
// ones, so small latency-sensitive retrievals are never starved by a
// bulk scan that saturated the server. The queue is bounded
// (Options.MaxQueue); requests arriving at a full queue are shed with
// 503 rather than parked forever.
//
// Token comparisons — tenant tokens, the admin token, progqoid's pprof
// gate — all go through TokenEqual, which hashes both sides to fixed
// width before a constant-time compare, so neither timing nor length
// leaks a secret. The tokencmp analyzer (internal/analysis/tokencmp)
// machine-enforces that no raw string comparison of tokens creeps back.

package server

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"progqoi/internal/obs"
)

// Priority classes a tenant can be assigned to.
const (
	// ClassInteractive requests are dequeued ahead of bulk ones when the
	// server is saturated. The default class.
	ClassInteractive = "interactive"
	// ClassBulk requests wait behind every queued interactive request.
	ClassBulk = "bulk"
)

// DefaultMaxQueue bounds the admission queue when Options.MaxQueue is
// zero: 8 waiting requests per serving slot before 503 shedding.
const DefaultMaxQueue = 8

// minTokenLen rejects obviously weak tenant tokens at config load.
const minTokenLen = 8

// Tenant is one tenant's identity and QoS envelope, as loaded from the
// -tenants config file.
type Tenant struct {
	// Name identifies the tenant in metrics labels and access logs.
	Name string `json:"name"`
	// Token is the bearer token the tenant authenticates with.
	Token string `json:"token"`
	// RateLimit is the sustained request rate in requests/second; 0
	// means unlimited.
	RateLimit float64 `json:"rateLimit"`
	// Burst is the token-bucket depth (default: RateLimit rounded up,
	// at least 1). A burst of b admits b back-to-back requests before
	// the sustained rate applies.
	Burst float64 `json:"burst,omitempty"`
	// MaxInflight caps this tenant's concurrently served requests; 0
	// means unlimited (the global MaxInflight still applies).
	MaxInflight int `json:"maxInflight,omitempty"`
	// Class is the admission priority: "interactive" (default) or
	// "bulk".
	Class string `json:"class,omitempty"`
}

// tenantName is the shape a tenant name (and therefore a Prometheus
// label value and log field) may take.
var tenantName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]*$`)

// ParseTenants decodes and validates a tenant config document:
//
//	{"tenants": [
//	  {"name": "dash", "token": "...", "rateLimit": 50, "class": "interactive"},
//	  {"name": "etl",  "token": "...", "rateLimit": 10, "maxInflight": 4, "class": "bulk"}
//	]}
//
// Names and tokens must be unique; tokens must be at least 8 bytes;
// classes must be "interactive" or "bulk" (empty defaults to
// interactive).
func ParseTenants(data []byte) ([]Tenant, error) {
	var doc struct {
		Tenants []Tenant `json:"tenants"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("server: tenants config: %w", err)
	}
	if len(doc.Tenants) == 0 {
		return nil, fmt.Errorf("server: tenants config: no tenants defined")
	}
	return NormalizeTenants(doc.Tenants)
}

// NormalizeTenants validates a tenant set and applies the defaults
// (burst from the rate limit, interactive class), returning a normalized
// copy. ParseTenants runs it on decoded config files and New runs it on
// programmatic Options.Tenants, so both paths enforce the same
// invariants — a tenant handed to New in code gets the exact semantics
// the same tenant would get from a -tenants file.
func NormalizeTenants(tenants []Tenant) ([]Tenant, error) {
	out := append([]Tenant(nil), tenants...)
	names := map[string]bool{}
	for i := range out {
		t := &out[i]
		if !tenantName.MatchString(t.Name) {
			return nil, fmt.Errorf("server: tenant %d: name %q (want %s)", i, t.Name, tenantName)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("server: tenant %q defined twice", t.Name)
		}
		names[t.Name] = true
		if len(t.Token) < minTokenLen {
			return nil, fmt.Errorf("server: tenant %q: token shorter than %d bytes", t.Name, minTokenLen)
		}
		for j := 0; j < i; j++ {
			if TokenEqual(t.Token, out[j].Token) {
				return nil, fmt.Errorf("server: tenants %q and %q share a token", out[j].Name, t.Name)
			}
		}
		if t.RateLimit < 0 || math.IsNaN(t.RateLimit) || math.IsInf(t.RateLimit, 0) {
			return nil, fmt.Errorf("server: tenant %q: rateLimit %v", t.Name, t.RateLimit)
		}
		if t.Burst < 0 || math.IsNaN(t.Burst) || math.IsInf(t.Burst, 0) {
			return nil, fmt.Errorf("server: tenant %q: burst %v", t.Name, t.Burst)
		}
		if t.Burst == 0 {
			t.Burst = math.Max(1, math.Ceil(t.RateLimit))
		}
		if t.MaxInflight < 0 {
			return nil, fmt.Errorf("server: tenant %q: maxInflight %d", t.Name, t.MaxInflight)
		}
		switch t.Class {
		case "":
			t.Class = ClassInteractive
		case ClassInteractive, ClassBulk:
		default:
			return nil, fmt.Errorf("server: tenant %q: class %q (want %q or %q)",
				t.Name, t.Class, ClassInteractive, ClassBulk)
		}
	}
	return out, nil
}

// LoadTenants reads and validates a tenant config file (see
// ParseTenants for the format).
func LoadTenants(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: tenants config: %w", err)
	}
	return ParseTenants(data)
}

// TokenEqual reports whether a presented bearer token matches the
// expected one. Both sides are hashed to fixed width before the
// constant-time compare, so the check leaks neither content nor length
// of the secret. Every token comparison in the serving path — tenant
// tokens, the admin token, the pprof gate — must go through here (the
// tokencmp analyzer enforces it).
func TokenEqual(presented, want string) bool {
	p := sha256.Sum256([]byte(presented))
	w := sha256.Sum256([]byte(want))
	//progqoivet:allow tokencmp -- the one blessed site: both sides are fixed-width sha256 digests, so no length leak
	return subtle.ConstantTimeCompare(p[:], w[:]) == 1
}

// TenantStats is one tenant's serving counters, exposed at /healthz
// and (per label) at /metrics.
type TenantStats struct {
	Name     string `json:"name"`
	Class    string `json:"class"`
	Requests int64  `json:"requests"`
	// RateLimited counts 429 rejections from the token bucket.
	RateLimited int64 `json:"rateLimited"`
	// OverInflight counts 429 rejections from the per-tenant in-flight cap.
	OverInflight int64 `json:"overInflight"`
	// Shed counts 503 rejections from the bounded admission queue.
	Shed     int64 `json:"shed"`
	Inflight int64 `json:"inflight"`
	Bytes    int64 `json:"bytes"`
}

// tenantState is one tenant's live limiter and accounting state.
type tenantState struct {
	t Tenant

	mu       sync.Mutex
	tokens   float64   // guarded by mu: token-bucket fill
	last     time.Time // guarded by mu: last refill instant
	inflight int64     // guarded by mu: concurrently served requests

	requests     atomic.Int64 // authenticated arrivals, incl. rejected
	rateLimited  atomic.Int64 // 429: token bucket empty
	overInflight atomic.Int64 // 429: per-tenant in-flight cap
	shed         atomic.Int64 // 503: admission queue full
	bytes        atomic.Int64 // response bytes written

	hist *obs.Histogram // request latency, served requests only
}

func newTenantState(t Tenant, now time.Time) *tenantState {
	return &tenantState{
		t:      t,
		tokens: t.Burst,
		last:   now,
		hist:   obs.NewHistogram(obs.LatencyBuckets()...),
	}
}

// allow takes one token from the bucket if available; otherwise it
// reports how long until the next token accrues.
func (ts *tenantState) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if ts.t.RateLimit <= 0 {
		return true, 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	elapsed := now.Sub(ts.last).Seconds()
	if elapsed > 0 {
		ts.tokens = math.Min(ts.t.Burst, ts.tokens+elapsed*ts.t.RateLimit)
		ts.last = now
	}
	if ts.tokens >= 1 {
		ts.tokens--
		return true, 0
	}
	return false, time.Duration((1 - ts.tokens) / ts.t.RateLimit * float64(time.Second))
}

// acquireInflight claims a per-tenant serving slot, or fails when the
// tenant's cap is reached.
func (ts *tenantState) acquireInflight() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.t.MaxInflight > 0 && ts.inflight >= int64(ts.t.MaxInflight) {
		return false
	}
	ts.inflight++
	return true
}

func (ts *tenantState) releaseInflight() {
	ts.mu.Lock()
	ts.inflight--
	ts.mu.Unlock()
}

func (ts *tenantState) stats() TenantStats {
	ts.mu.Lock()
	inflight := ts.inflight
	ts.mu.Unlock()
	return TenantStats{
		Name:         ts.t.Name,
		Class:        ts.t.Class,
		Requests:     ts.requests.Load(),
		RateLimited:  ts.rateLimited.Load(),
		OverInflight: ts.overInflight.Load(),
		Shed:         ts.shed.Load(),
		Inflight:     inflight,
		Bytes:        ts.bytes.Load(),
	}
}

// classIndex maps a class name to its admitter queue.
func classIndex(class string) int {
	if class == ClassBulk {
		return 1
	}
	return 0
}

var classLabels = [2]string{ClassInteractive, ClassBulk}

// errQueueFull is returned by admitter.acquire when the bounded
// admission queue is already at capacity — the caller sheds with 503.
var errQueueFull = fmt.Errorf("server: admission queue full")

// admitWaiter is one parked request. Its channel is closed when a
// serving slot is handed to it; ownership of the slot transfers with
// the close.
type admitWaiter struct {
	ch      chan struct{}
	granted bool // written and read only under the owning admitter's mu
}

// admitter is the two-class admission queue in front of the serving
// slots. It replaces the PR 1 semaphore: same bound on concurrently
// served requests, but waiters park in per-class FIFO queues and a
// freed slot always goes to the oldest interactive waiter before any
// bulk one. The total queue is bounded; requests beyond it shed.
type admitter struct {
	mu      sync.Mutex
	free    int               // guarded by mu: unclaimed serving slots
	queues  [2][]*admitWaiter // guarded by mu: FIFO waiters, [0]=interactive [1]=bulk
	queued  int               // guarded by mu: total parked waiters
	maxQ    int
	waits   [2]atomic.Int64 // requests that had to queue, by class
	granted [2]atomic.Int64 // slots handed to queued waiters, by class
}

func newAdmitter(slots, maxQueue int) *admitter {
	return &admitter{free: slots, maxQ: maxQueue}
}

// acquire claims a serving slot, queueing by class when none is free.
// It returns nil once a slot is owned, errQueueFull when the bounded
// queue is already at capacity, or the context's error if the caller
// gave up while parked.
func (a *admitter) acquire(ctx context.Context, class int) error {
	w, err := a.enqueue(class)
	if err != nil {
		return err
	}
	if w == nil {
		return nil // a free slot was claimed without queueing
	}
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
	}
	// Either unpark cleanly, or — if the grant raced the cancellation —
	// the slot is ours now; pass it straight to the next waiter.
	if a.abandon(class, w) {
		a.release()
	}
	return ctx.Err()
}

// enqueue claims a free serving slot immediately (nil waiter) or parks
// a new waiter in the class queue; errQueueFull when the bounded queue
// is already at capacity.
func (a *admitter) enqueue(class int) (*admitWaiter, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.free > 0 {
		a.free--
		return nil, nil
	}
	if a.queued >= a.maxQ {
		return nil, errQueueFull
	}
	w := &admitWaiter{ch: make(chan struct{})}
	a.queues[class] = append(a.queues[class], w)
	a.queued++
	a.waits[class].Add(1)
	return w, nil
}

// abandon removes a canceled waiter from its queue. It reports true
// when the grant raced the cancellation: the waiter already owns a
// slot, and the caller must release it.
func (a *admitter) abandon(class int, w *admitWaiter) (granted bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return true
	}
	q := a.queues[class]
	for i, cand := range q {
		if cand == w {
			a.queues[class] = append(q[:i], q[i+1:]...)
			a.queued--
			break
		}
	}
	return false
}

// release returns a serving slot: the oldest interactive waiter gets
// it first, then the oldest bulk one, and only with both queues empty
// does the slot go back to the free pool.
func (a *admitter) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for class := range a.queues {
		if len(a.queues[class]) > 0 {
			w := a.queues[class][0]
			a.queues[class] = a.queues[class][1:]
			a.queued--
			w.granted = true
			a.granted[class].Add(1)
			close(w.ch)
			return
		}
	}
	a.free++
}

// depths snapshots the per-class queue depths.
func (a *admitter) depths() [2]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return [2]int{len(a.queues[0]), len(a.queues[1])}
}

// sortTenantStates returns the states sorted by tenant name, for
// deterministic /metrics and /healthz output.
func sortTenantStates(m []*tenantState) []*tenantState {
	out := append([]*tenantState(nil), m...)
	sort.Slice(out, func(i, j int) bool { return out[i].t.Name < out[j].t.Name })
	return out
}
