package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postJSON fires one POST with an optional bearer token and returns the
// response; the body is decoded by the callers that care.
func postJSON(t *testing.T, url, token string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func announceBody(t *testing.T, addr string, gen int64, state string) []byte {
	t.Helper()
	b, err := json.Marshal(announcement{Addr: addr, Generation: gen, State: state})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func clusterInfoOf(t *testing.T, resp *http.Response) ClusterInfo {
	t.Helper()
	var info ClusterInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestClusterJoinHandlerMatrix covers the join contract: malformed
// payloads 400, duplicate advertise 409, stale generations 409, wrong
// method 405, and a good join returns the full membership view.
func TestClusterJoinHandlerMatrix(t *testing.T) {
	hs, _, _ := testServer(t, Options{Advertise: "http://self:9123"})

	t.Run("malformed payloads", func(t *testing.T) {
		for name, body := range map[string][]byte{
			"not json":         []byte("{nope"),
			"missing addr":     announceBody(t, "", 1, ""),
			"relative addr":    announceBody(t, "node1:9123", 1, ""),
			"ftp addr":         announceBody(t, "ftp://node1:9123", 1, ""),
			"zero generation":  announceBody(t, "http://node1:9123", 0, ""),
			"negative gen":     []byte(`{"addr":"http://node1:9123","generation":-4}`),
			"claiming suspect": announceBody(t, "http://node1:9123", 1, MemberSuspect),
			"unknown state":    announceBody(t, "http://node1:9123", 1, "zombie"),
		} {
			if resp := postJSON(t, hs.URL+"/v1/cluster/join", "", body); resp.StatusCode != 400 {
				t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
			}
		}
	})

	t.Run("duplicate advertise address", func(t *testing.T) {
		resp := postJSON(t, hs.URL+"/v1/cluster/join", "", announceBody(t, "http://self:9123/", 7, ""))
		if resp.StatusCode != 409 {
			t.Fatalf("joining under the node's own URL: status %d, want 409", resp.StatusCode)
		}
	})

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/v1/cluster/join")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 405 {
			t.Fatalf("GET join: status %d, want 405", resp.StatusCode)
		}
	})

	t.Run("join then stale rejoin", func(t *testing.T) {
		resp := postJSON(t, hs.URL+"/v1/cluster/join", "", announceBody(t, "http://node1:9123", 5, ""))
		if resp.StatusCode != 200 {
			t.Fatalf("join: status %d", resp.StatusCode)
		}
		info := clusterInfoOf(t, resp)
		if len(info.Members) != 2 || info.Members[0].Addr != "http://self:9123" || info.Members[1].Addr != "http://node1:9123" {
			t.Fatalf("post-join members = %+v", info.Members)
		}
		if info.Members[1].Generation != 5 || info.Members[1].State != MemberAlive {
			t.Fatalf("joined member row = %+v", info.Members[1])
		}
		// The stale duplicate of a previous incarnation must not regress
		// the registered one.
		if resp := postJSON(t, hs.URL+"/v1/cluster/join", "", announceBody(t, "http://node1:9123", 4, "")); resp.StatusCode != 409 {
			t.Fatalf("stale join: status %d, want 409", resp.StatusCode)
		}
		// A restart (higher generation) replaces it.
		if resp := postJSON(t, hs.URL+"/v1/cluster/join", "", announceBody(t, "http://node1:9123", 6, "")); resp.StatusCode != 200 {
			t.Fatalf("restart join: status %d, want 200", resp.StatusCode)
		}
	})
}

// TestClusterHeartbeatHandler covers heartbeat as join's steady state:
// implicit registration, stale-generation rejection, drain state
// adoption, and the heartbeat counter.
func TestClusterHeartbeatHandler(t *testing.T) {
	hs, srv, _ := testServer(t, Options{Advertise: "http://self:9123"})

	// An unknown sender joins implicitly.
	resp := postJSON(t, hs.URL+"/v1/cluster/heartbeat", "", announceBody(t, "http://node1:9123", 3, ""))
	if resp.StatusCode != 200 {
		t.Fatalf("implicit-join heartbeat: status %d", resp.StatusCode)
	}
	if got := srv.memb.metrics().heartbeats; got != 1 {
		t.Fatalf("heartbeats counter = %d, want 1", got)
	}
	// A stale generation is rejected and not counted.
	if resp := postJSON(t, hs.URL+"/v1/cluster/heartbeat", "", announceBody(t, "http://node1:9123", 2, "")); resp.StatusCode != 409 {
		t.Fatalf("stale heartbeat: status %d, want 409", resp.StatusCode)
	}
	if got := srv.memb.metrics().heartbeats; got != 1 {
		t.Fatalf("heartbeats counter after stale = %d, want 1", got)
	}
	// A draining member advertises its state and leaves the routable
	// peers list.
	resp = postJSON(t, hs.URL+"/v1/cluster/heartbeat", "", announceBody(t, "http://node1:9123", 3, MemberDraining))
	if resp.StatusCode != 200 {
		t.Fatalf("draining heartbeat: status %d", resp.StatusCode)
	}
	info := clusterInfoOf(t, resp)
	if info.Members[1].State != MemberDraining {
		t.Fatalf("member state = %q, want draining", info.Members[1].State)
	}
	for _, p := range info.Peers {
		if p == "http://node1:9123" {
			t.Fatal("draining member still listed in legacy Peers")
		}
	}
}

// TestClusterLeaveHandler covers clean departure: deregistration,
// idempotency, and the stale-generation guard that protects a restarted
// node from its predecessor's shutdown.
func TestClusterLeaveHandler(t *testing.T) {
	hs, srv, _ := testServer(t, Options{Advertise: "http://self:9123"})
	if resp := postJSON(t, hs.URL+"/v1/cluster/join", "", announceBody(t, "http://node1:9123", 5, "")); resp.StatusCode != 200 {
		t.Fatalf("join: status %d", resp.StatusCode)
	}
	// A leave from a stale incarnation must not remove the newer one.
	if resp := postJSON(t, hs.URL+"/v1/cluster/leave", "", announceBody(t, "http://node1:9123", 4, "")); resp.StatusCode != 409 {
		t.Fatalf("stale leave: status %d, want 409", resp.StatusCode)
	}
	if len(srv.memb.info(nil).Members) != 2 {
		t.Fatal("stale leave removed the member")
	}
	resp := postJSON(t, hs.URL+"/v1/cluster/leave", "", announceBody(t, "http://node1:9123", 5, ""))
	if resp.StatusCode != 200 {
		t.Fatalf("leave: status %d", resp.StatusCode)
	}
	if info := clusterInfoOf(t, resp); len(info.Members) != 1 {
		t.Fatalf("post-leave members = %+v", info.Members)
	}
	// Leaving again (or an address never registered) is a no-op success.
	if resp := postJSON(t, hs.URL+"/v1/cluster/leave", "", announceBody(t, "http://node1:9123", 5, "")); resp.StatusCode != 200 {
		t.Fatalf("repeat leave: status %d, want 200", resp.StatusCode)
	}
}

// TestClusterDrainHandler covers the admin gate (same contract as
// reload: 403 with no token configured, 401 on wrong tokens) and the
// draining behavior: index/meta refuse new sessions with 503 +
// Retry-After while fragment routes keep serving in-flight work.
func TestClusterDrainHandler(t *testing.T) {
	t.Run("admin disabled", func(t *testing.T) {
		hs, _, _ := testServer(t, Options{Advertise: "http://self:9123"})
		if resp := postJSON(t, hs.URL+"/v1/cluster/drain", "whatever", nil); resp.StatusCode != 403 {
			t.Fatalf("drain without admin config: status %d, want 403", resp.StatusCode)
		}
	})
	t.Run("gated drain", func(t *testing.T) {
		hs, srv, vars := testServer(t, Options{Advertise: "http://self:9123", AdminToken: "sesame"})
		if resp := postJSON(t, hs.URL+"/v1/cluster/drain", "", nil); resp.StatusCode != 401 {
			t.Fatalf("drain without token: status %d, want 401", resp.StatusCode)
		}
		if resp := postJSON(t, hs.URL+"/v1/cluster/drain", "wrong", nil); resp.StatusCode != 401 {
			t.Fatalf("drain with wrong token: status %d, want 401", resp.StatusCode)
		}
		if srv.Draining() {
			t.Fatal("unauthorized drain took effect")
		}

		resp := postJSON(t, hs.URL+"/v1/cluster/drain", "sesame", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("drain: status %d", resp.StatusCode)
		}
		info := clusterInfoOf(t, resp)
		if !info.Draining || info.Members[0].State != MemberDraining {
			t.Fatalf("post-drain info = %+v", info)
		}
		if !srv.Draining() {
			t.Fatal("Draining() false after drain")
		}

		// New sessions are refused...
		for _, path := range []string{"/v1/d/ge/index", "/v1/d/ge/meta"} {
			resp, err := http.Get(hs.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 503 {
				t.Fatalf("GET %s while draining: status %d, want 503", path, resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("GET %s while draining: no Retry-After", path)
			}
		}
		// ...but in-flight fragment work keeps being served.
		fresp, err := http.Get(hs.URL + "/v1/d/ge/frag/" + vars[0].Name + "/0")
		if err != nil {
			t.Fatal(err)
		}
		fresp.Body.Close()
		if fresp.StatusCode != 200 {
			t.Fatalf("fragment read while draining: status %d, want 200", fresp.StatusCode)
		}
		// Drain is idempotent: the second call succeeds and the
		// transition counter stays at one.
		if resp := postJSON(t, hs.URL+"/v1/cluster/drain", "sesame", nil); resp.StatusCode != 200 {
			t.Fatalf("repeat drain: status %d", resp.StatusCode)
		}
		if got := srv.memb.metrics().drains; got != 1 {
			t.Fatalf("drain transitions = %d, want 1", got)
		}
	})
}

// TestMembershipSweep drives the liveness state machine with an injected
// clock: silence past SuspectAfter marks suspect (recoverable by the
// member's own heartbeat), silence past RemoveAfter removes, and every
// transition bumps the epoch.
func TestMembershipSweep(t *testing.T) {
	m := newMembership(Options{
		Advertise:         "http://self:9123",
		HeartbeatInterval: time.Second,
		SuspectAfter:      3 * time.Second,
		RemoveAfter:       10 * time.Second,
	})
	t0 := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	if !m.observe("http://node1:9123", 1, MemberAlive, t0) {
		t.Fatal("first observe rejected")
	}
	epoch := m.metrics().epoch

	// Within the suspicion window nothing changes.
	if sus, rem := m.sweep(t0.Add(2 * time.Second)); len(sus)+len(rem) != 0 {
		t.Fatalf("early sweep transitions: %v %v", sus, rem)
	}
	sus, _ := m.sweep(t0.Add(4 * time.Second))
	if len(sus) != 1 || sus[0] != "http://node1:9123" {
		t.Fatalf("suspected = %v", sus)
	}
	if mm := m.metrics(); mm.suspect != 1 || mm.alive != 1 || mm.epoch <= epoch {
		t.Fatalf("post-suspect metrics = %+v", mm)
	}
	// The suspect's own heartbeat restores alive — false suspicion costs
	// nothing permanent.
	if !m.observe("http://node1:9123", 1, MemberAlive, t0.Add(5*time.Second)) {
		t.Fatal("recovery heartbeat rejected")
	}
	if mm := m.metrics(); mm.suspect != 0 || mm.alive != 2 {
		t.Fatalf("post-recovery metrics = %+v", mm)
	}
	// Silence past RemoveAfter removes outright.
	_, rem := m.sweep(t0.Add(16 * time.Second))
	if len(rem) != 1 || rem[0] != "http://node1:9123" {
		t.Fatalf("removed = %v", rem)
	}
	if got := len(m.info(nil).Members); got != 1 {
		t.Fatalf("members after removal = %d, want 1 (self)", got)
	}
}

// TestMembershipLearn pins the anti-entropy merge rules: unknown members
// and newer incarnations are adopted, but equal-generation hearsay never
// refreshes liveness and third-party suspicion is never imported.
func TestMembershipLearn(t *testing.T) {
	m := newMembership(Options{Advertise: "http://self:9123", SuspectAfter: 3 * time.Second, RemoveAfter: 10 * time.Second})
	t0 := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	m.learn([]MemberInfo{
		{Addr: "http://self:9123", Generation: 99, State: MemberAlive},   // self: ignored
		{Addr: "http://node1:9123", Generation: 2, State: MemberAlive},   // adopted
		{Addr: "http://node2:9123", Generation: 1, State: MemberSuspect}, // suspicion: not imported
		{Addr: "nonsense", Generation: 1, State: MemberAlive},            // malformed: skipped
		{Addr: "http://node3:9123", Generation: 0, State: MemberAlive},   // no incarnation: skipped
	}, t0)
	info := m.info(nil)
	if len(info.Members) != 2 || info.Members[1].Addr != "http://node1:9123" {
		t.Fatalf("learned members = %+v", info.Members)
	}
	// Equal-generation hearsay does not refresh liveness: node1 still
	// goes suspect on this node's own clock.
	m.learn([]MemberInfo{{Addr: "http://node1:9123", Generation: 2, State: MemberAlive}}, t0.Add(4*time.Second))
	if sus, _ := m.sweep(t0.Add(4 * time.Second)); len(sus) != 1 {
		t.Fatalf("hearsay kept node1 alive: suspected = %v", sus)
	}
	// A newer incarnation via hearsay is adopted (and refreshes).
	m.learn([]MemberInfo{{Addr: "http://node1:9123", Generation: 3, State: MemberAlive}}, t0.Add(5*time.Second))
	info = m.info(nil)
	if info.Members[1].Generation != 3 || info.Members[1].State != MemberAlive {
		t.Fatalf("newer hearsay not adopted: %+v", info.Members[1])
	}
}

// TestStartMembershipValidation covers the programmatic entry points:
// bad advertise and seed URLs fail, double starts fail, and the
// stop/leave paths are safe without a started loop.
func TestStartMembershipValidation(t *testing.T) {
	_, srv, _ := testServer(t, Options{})
	if err := srv.StartMembership(t.Context(), "not-a-url", nil); err == nil {
		t.Fatal("bad advertise accepted")
	}
	if err := srv.StartMembership(t.Context(), "http://self:9123", []string{"bogus"}); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("bad seed error = %v", err)
	}
	// The failed seed validation above already consumed the one Start;
	// a second call reports that.
	if err := srv.StartMembership(t.Context(), "http://self:9123", nil); err == nil || !strings.Contains(err.Error(), "already started") {
		t.Fatalf("double start error = %v", err)
	}
	srv.LeaveCluster(t.Context()) // no-op without a started announcer
	srv.StopMembership()
	srv.StopMembership() // idempotent
}
