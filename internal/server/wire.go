package server

// Wire formats shared by the fragment service and the remote client
// (internal/client imports these types and codecs, so the two ends of the
// protocol can never drift apart).
//
// Three formats travel the wire:
//
//   - Index: a JSON description of one dataset — variable names, methods,
//     grid dims, and the true byte size of every fragment — enough for a
//     client to plan fetches and account for bytes without touching data.
//
//   - Meta blob: a binary, CRC-framed bundle of every variable's retrieval
//     metadata (range, zero mask, prefix bounds, schedule, block shapes)
//     with the fragment payloads stripped to zero length. A client decodes
//     it straight into meta-only core.Variables and fills payloads in
//     lazily as it fetches fragments.
//
//   - Batch blob: a binary, CRC-framed set of (variable, index, payload)
//     fragment tuples — the response of the batched fetch endpoint, one
//     round trip per retrieval iteration.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"progqoi/internal/core"
	"progqoi/internal/encoding"
	"progqoi/internal/storage"
)

// Index describes one served dataset.
type Index struct {
	Dataset   string          `json:"dataset"`
	Variables []IndexVariable `json:"variables"`
}

// IndexVariable describes one variable of a served dataset.
type IndexVariable struct {
	Name          string  `json:"name"`
	Method        string  `json:"method"`
	Dims          []int   `json:"dims"`
	FragmentSizes []int64 `json:"fragmentSizes"`
	TotalBytes    int64   `json:"totalBytes"`
}

// BatchWant names the fragments of one variable a batched fetch asks for.
type BatchWant struct {
	Var     string `json:"var"`
	Indices []int  `json:"indices"`
}

// BatchRequest is the JSON body of the batched fragment fetch endpoint.
type BatchRequest struct {
	Wants []BatchWant `json:"wants"`
}

// BatchFragment is one fragment of a batched fetch response.
type BatchFragment struct {
	Var     string
	Index   int
	Payload []byte
}

var (
	metaMagic  = []byte("PQMETA1\n")
	batchMagic = []byte("PQFRAG1\n")
)

// BuildIndex summarizes a dataset's variables into its wire Index.
func BuildIndex(name string, vars []*core.Variable) *Index {
	idx := &Index{Dataset: name}
	for _, v := range vars {
		iv := IndexVariable{
			Name:   v.Name,
			Method: v.Ref.Method.String(),
			Dims:   append([]int(nil), v.Ref.Dims...),
		}
		for _, f := range v.Ref.Fragments {
			iv.FragmentSizes = append(iv.FragmentSizes, int64(len(f)))
			iv.TotalBytes += int64(len(f))
		}
		idx.Variables = append(idx.Variables, iv)
	}
	return idx
}

// EncodeMeta bundles the variables' retrieval metadata — fragment payloads
// stripped to zero-length placeholders — into a CRC-framed blob.
func EncodeMeta(vars []*core.Variable) []byte {
	out := append([]byte(nil), metaMagic...)
	out = appendU32(out, uint32(len(vars)))
	for _, v := range vars {
		ref := *v.Ref
		ref.Fragments = make([][]byte, len(v.Ref.Fragments))
		for i := range ref.Fragments {
			ref.Fragments[i] = []byte{}
		}
		mv := *v
		mv.Ref = &ref
		out = encoding.PutSection(out, storage.EncodeVariable(&mv))
	}
	return withCRC(out)
}

// DecodeMeta parses an EncodeMeta blob into meta-only variables whose
// Refactored carries the right fragment count but zero-length payloads.
func DecodeMeta(raw []byte) ([]*core.Variable, error) {
	blob, err := checkCRC(raw)
	if err != nil {
		return nil, fmt.Errorf("server: meta blob: %w", err)
	}
	if len(blob) < len(metaMagic)+4 || string(blob[:len(metaMagic)]) != string(metaMagic) {
		return nil, fmt.Errorf("%w: bad meta magic", encoding.ErrCorrupt)
	}
	off := len(metaMagic)
	n := int(binary.LittleEndian.Uint32(blob[off:]))
	off += 4
	if n < 0 || n > 1<<16 {
		return nil, fmt.Errorf("%w: %d meta variables", encoding.ErrCorrupt, n)
	}
	vars := make([]*core.Variable, n)
	for i := 0; i < n; i++ {
		sec, m, err := encoding.GetSection(blob[off:])
		if err != nil {
			return nil, err
		}
		off += m
		v, err := storage.DecodeVariable(sec)
		if err != nil {
			return nil, fmt.Errorf("server: meta variable %d: %w", i, err)
		}
		vars[i] = v
	}
	return vars, nil
}

// EncodeBatch frames fragment tuples into a CRC-protected response blob.
func EncodeBatch(frags []BatchFragment) []byte {
	out := append([]byte(nil), batchMagic...)
	out = appendU32(out, uint32(len(frags)))
	for _, f := range frags {
		out = encoding.PutSection(out, []byte(f.Var))
		out = appendU32(out, uint32(f.Index))
		out = encoding.PutSection(out, f.Payload)
	}
	return withCRC(out)
}

// DecodeBatch parses an EncodeBatch blob, detecting truncation and
// corruption via the frame CRC.
func DecodeBatch(raw []byte) ([]BatchFragment, error) {
	blob, err := checkCRC(raw)
	if err != nil {
		return nil, fmt.Errorf("server: batch blob: %w", err)
	}
	if len(blob) < len(batchMagic)+4 || string(blob[:len(batchMagic)]) != string(batchMagic) {
		return nil, fmt.Errorf("%w: bad batch magic", encoding.ErrCorrupt)
	}
	off := len(batchMagic)
	n := int(binary.LittleEndian.Uint32(blob[off:]))
	off += 4
	// Each fragment needs at least two section headers plus an index
	// (12 bytes); bounding n by the blob size keeps a corrupt count from
	// forcing a huge allocation before parsing fails.
	if n < 0 || n > 1<<24 || n > len(blob)/12 {
		return nil, fmt.Errorf("%w: %d batch fragments in %d bytes", encoding.ErrCorrupt, n, len(blob))
	}
	out := make([]BatchFragment, n)
	for i := 0; i < n; i++ {
		name, m, err := encoding.GetSection(blob[off:])
		if err != nil {
			return nil, err
		}
		off += m
		if off+4 > len(blob) {
			return nil, fmt.Errorf("%w: batch fragment %d truncated", encoding.ErrCorrupt, i)
		}
		idx := int(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
		payload, m, err := encoding.GetSection(blob[off:])
		if err != nil {
			return nil, err
		}
		off += m
		out[i] = BatchFragment{Var: string(name), Index: idx, Payload: payload}
	}
	return out, nil
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func withCRC(blob []byte) []byte {
	return appendU32(blob, crc32.Checksum(blob, crcTable))
}

func checkCRC(raw []byte) ([]byte, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: blob too short for checksum", encoding.ErrCorrupt)
	}
	blob, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(blob, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", encoding.ErrCorrupt, got, want)
	}
	return blob, nil
}
