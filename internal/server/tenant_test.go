package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"progqoi/internal/obs"
	"progqoi/internal/storage"
)

func TestNormalizeTenantsValidation(t *testing.T) {
	valid := func() []Tenant {
		return []Tenant{
			{Name: "dash", Token: "dash-token-1", RateLimit: 50},
			{Name: "etl", Token: "etl-token-99", RateLimit: 10, MaxInflight: 4, Class: ClassBulk},
		}
	}
	cases := []struct {
		name   string
		mutate func([]Tenant) []Tenant
		substr string
	}{
		{"bad name", func(ts []Tenant) []Tenant { ts[0].Name = "da sh"; return ts }, "name"},
		{"empty name", func(ts []Tenant) []Tenant { ts[0].Name = ""; return ts }, "name"},
		{"dup name", func(ts []Tenant) []Tenant { ts[1].Name = ts[0].Name; return ts }, "twice"},
		{"short token", func(ts []Tenant) []Tenant { ts[0].Token = "short"; return ts }, "token shorter"},
		{"dup token", func(ts []Tenant) []Tenant { ts[1].Token = ts[0].Token; return ts }, "share a token"},
		{"negative rate", func(ts []Tenant) []Tenant { ts[0].RateLimit = -1; return ts }, "rateLimit"},
		{"negative burst", func(ts []Tenant) []Tenant { ts[0].Burst = -2; return ts }, "burst"},
		{"negative inflight", func(ts []Tenant) []Tenant { ts[1].MaxInflight = -1; return ts }, "maxInflight"},
		{"bad class", func(ts []Tenant) []Tenant { ts[1].Class = "batch"; return ts }, "class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NormalizeTenants(tc.mutate(valid()))
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("err = %v, want containing %q", err, tc.substr)
			}
		})
	}
	out, err := NormalizeTenants(valid())
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Class != ClassInteractive {
		t.Fatalf("default class = %q, want %q", out[0].Class, ClassInteractive)
	}
	if out[0].Burst != 50 {
		t.Fatalf("default burst = %v, want rate rounded up", out[0].Burst)
	}
	if out[1].Burst != 10 || out[1].Class != ClassBulk {
		t.Fatalf("tenant 1 normalized to %+v", out[1])
	}
	// Zero-rate tenants still get a usable bucket (rate 0 = unlimited,
	// but burst must not be 0 — the PR 9 programmatic-Options bug).
	z, err := NormalizeTenants([]Tenant{{Name: "z", Token: "zzzzzzzzz"}})
	if err != nil {
		t.Fatal(err)
	}
	if z[0].Burst != 1 {
		t.Fatalf("zero-rate burst = %v, want 1", z[0].Burst)
	}
}

func TestParseTenantsDocument(t *testing.T) {
	ts, err := ParseTenants([]byte(`{"tenants": [
		{"name": "dash", "token": "dash-token-1", "rateLimit": 50, "class": "interactive"},
		{"name": "etl",  "token": "etl-token-99", "rateLimit": 10, "maxInflight": 4, "class": "bulk"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[1].Class != ClassBulk {
		t.Fatalf("parsed %+v", ts)
	}
	if _, err := ParseTenants([]byte(`{"tenants": []}`)); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := ParseTenants([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestTokenEqual(t *testing.T) {
	if !TokenEqual("secret-token", "secret-token") {
		t.Fatal("equal tokens rejected")
	}
	if TokenEqual("secret-token", "secret-tokeN") {
		t.Fatal("different tokens accepted")
	}
	// Length differences must not short-circuit into acceptance either.
	if TokenEqual("secret-token", "secret-token-longer") {
		t.Fatal("prefix token accepted")
	}
	if TokenEqual("", "secret-token") {
		t.Fatal("empty token accepted")
	}
}

func TestTokenBucket(t *testing.T) {
	t0 := time.Now()
	ts := newTenantState(Tenant{Name: "a", Token: "aaaaaaaa", RateLimit: 2, Burst: 2}, t0)
	for i := 0; i < 2; i++ {
		if ok, _ := ts.allow(t0); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := ts.allow(t0)
	if ok {
		t.Fatal("over-burst request admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s] at 2 rps", retry)
	}
	// After the advertised wait the bucket holds a token again.
	if ok, _ := ts.allow(t0.Add(retry)); !ok {
		t.Fatal("request after advertised Retry-After still rejected")
	}
	// Unlimited tenants never wait.
	free := newTenantState(Tenant{Name: "f", Token: "ffffffff", Burst: 1}, t0)
	for i := 0; i < 100; i++ {
		if ok, _ := free.allow(t0); !ok {
			t.Fatal("unlimited tenant rate-limited")
		}
	}
}

// tenantTestServer starts a server with the given tenants over the
// standard test archive.
func tenantTestServer(t *testing.T, opt Options) (*httptest.Server, *Server) {
	t.Helper()
	hs, srv, _ := testServer(t, opt)
	return hs, srv
}

func authedGet(t *testing.T, url, token string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestTenantAuthHTTP(t *testing.T) {
	hs, srv := tenantTestServer(t, Options{Tenants: []Tenant{
		{Name: "dash", Token: "dash-token-1"},
	}})

	// Missing and wrong tokens are 401 on the data plane.
	for _, tok := range []string{"", "wrong-token-0"} {
		resp, _ := authedGet(t, hs.URL+"/v1/datasets", tok)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: %s, want 401", tok, resp.Status)
		}
	}
	// The right token passes.
	resp, _ := authedGet(t, hs.URL+"/v1/datasets", "dash-token-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated request: %s", resp.Status)
	}
	// Probes stay open without a token: a saturated-but-healthy server
	// must still answer its monitoring.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, _ := authedGet(t, hs.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s without token: %s, want 200", path, resp.Status)
		}
	}
	st := srv.Stats()
	if st.Unauthorized != 2 {
		t.Fatalf("Unauthorized = %d, want 2", st.Unauthorized)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Requests != 1 {
		t.Fatalf("tenant stats = %+v", st.Tenants)
	}
}

func TestTenantRateLimit429(t *testing.T) {
	hs, srv := tenantTestServer(t, Options{Tenants: []Tenant{
		{Name: "slow", Token: "slow-token-1", RateLimit: 0.5, Burst: 1},
	}})
	resp, _ := authedGet(t, hs.URL+"/v1/datasets", "slow-token-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %s", resp.Status)
	}
	resp, _ = authedGet(t, hs.URL+"/v1/datasets", "slow-token-1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: %s, want 429", resp.Status)
	}
	// At 0.5 rps the bucket refills in 2s: Retry-After must say so, and
	// must be integer seconds (RFC 9110), rounded up.
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	st := srv.Stats()
	if st.Tenants[0].RateLimited != 1 || st.Tenants[0].Requests != 2 {
		t.Fatalf("tenant stats = %+v (want rateLimited 1 of 2 requests)", st.Tenants[0])
	}
}

func TestTenantInflightCap429(t *testing.T) {
	vars := testVars(t)
	mem := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), mem, "ge", vars); err != nil {
		t.Fatal(err)
	}
	gs := &gateStore{Store: mem, started: make(chan string, 16), release: make(chan struct{})}
	srv, err := New(context.Background(), gs, Options{
		MaxInflight: 8,
		Tenants:     []Tenant{{Name: "capped", Token: "capped-token", MaxInflight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gs.mu.Lock()
	gs.armed = true
	gs.mu.Unlock()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := authedGet(t, hs.URL+"/v1/store/blob/ge.manifest", "capped-token")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked request finished %s: %s", resp.Status, body)
		}
	}()
	select {
	case <-gs.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the store")
	}
	// The tenant's single slot is occupied: the global limiter has room,
	// but the per-tenant cap rejects with 429.
	resp, _ := authedGet(t, hs.URL+"/v1/datasets", "capped-token")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	close(gs.release)
	<-done
	st := srv.Stats()
	if st.Tenants[0].OverInflight != 1 {
		t.Fatalf("OverInflight = %d, want 1", st.Tenants[0].OverInflight)
	}
	if st.Tenants[0].Inflight != 0 {
		t.Fatalf("Inflight = %d after completion, want 0", st.Tenants[0].Inflight)
	}
}

// TestAdmissionQueueFairness floods the bulk queue, then checks that a
// later interactive arrival is granted the freed slot first. Run under
// -race this also exercises the admitter's locking.
func TestAdmissionQueueFairness(t *testing.T) {
	ctx := context.Background()
	a := newAdmitter(1, 64)
	if err := a.acquire(ctx, 0); err != nil { // occupy the only slot
		t.Fatal(err)
	}

	const bulkWaiters = 8
	granted := make(chan int, bulkWaiters+1)
	var wg sync.WaitGroup
	for i := 0; i < bulkWaiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(ctx, 1); err != nil {
				t.Errorf("bulk acquire: %v", err)
				return
			}
			granted <- 1
			a.release()
		}()
	}
	waitDepth(t, a, 1, bulkWaiters)

	// The interactive probe arrives last — strictly after every bulk
	// waiter is parked — yet must be served first.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := a.acquire(ctx, 0); err != nil {
			t.Errorf("interactive acquire: %v", err)
			return
		}
		granted <- 0
		a.release()
	}()
	waitDepth(t, a, 0, 1)

	a.release() // free the occupied slot; the queue drains one by one
	if first := <-granted; first != 0 {
		t.Fatalf("first granted class = %d, want 0 (interactive ahead of %d queued bulk)", first, bulkWaiters)
	}
	wg.Wait()
	if got := a.granted[0].Load(); got != 1 {
		t.Fatalf("interactive grants = %d, want 1", got)
	}
	if got := a.granted[1].Load(); got != bulkWaiters {
		t.Fatalf("bulk grants = %d, want %d", got, bulkWaiters)
	}
}

// waitDepth polls until the class queue holds want waiters.
func waitDepth(t *testing.T, a *admitter, class, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.depths()[class] != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth[%d] = %d, want %d", class, a.depths()[class], want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionQueueShedAndCancel(t *testing.T) {
	ctx := context.Background()
	a := newAdmitter(1, 1)
	if err := a.acquire(ctx, 0); err != nil {
		t.Fatal(err)
	}

	// A canceled waiter parks, gives up, and leaves the queue without
	// consuming a slot or permanently occupying queue capacity.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := a.acquire(cctx, 0); err != context.Canceled {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	if d := a.depths(); d[0] != 0 {
		t.Fatalf("canceled waiter still queued: %v", d)
	}

	queued := make(chan error, 1)
	go func() { queued <- a.acquire(ctx, 1) }()
	waitDepth(t, a, 1, 1)

	// Queue full: the next arrival sheds immediately.
	if err := a.acquire(ctx, 0); err != errQueueFull {
		t.Fatalf("acquire on full queue = %v, want errQueueFull", err)
	}

	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("parked waiter: %v", err)
	}
	a.release()
	if d := a.depths(); d[0] != 0 || d[1] != 0 {
		t.Fatalf("queues not drained: %v", d)
	}
}

func TestMetricsPerTenantLabels(t *testing.T) {
	hs, _ := tenantTestServer(t, Options{Tenants: []Tenant{
		{Name: "dash", Token: "dash-token-1"},
		{Name: "etl", Token: "etl-token-99", RateLimit: 0.25, Burst: 1, Class: ClassBulk},
	}})
	// Traffic: two authenticated requests, one 429, one 401.
	authedGet(t, hs.URL+"/v1/datasets", "dash-token-1")
	authedGet(t, hs.URL+"/v1/datasets", "etl-token-99")
	if resp, _ := authedGet(t, hs.URL+"/v1/datasets", "etl-token-99"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("etl second request: %s, want 429", resp.Status)
	}
	authedGet(t, hs.URL+"/v1/datasets", "")

	resp, body := get(t, hs.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	// The exposition must parse strictly: well-formed samples, every
	// family declared with HELP and TYPE before use.
	fams, err := obs.ParseExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	wantFams := map[string]struct {
		typ     string
		samples int
	}{
		"progqoid_unauthorized_total":              {"counter", 1},
		"progqoid_tenant_requests_total":           {"counter", 2},
		"progqoid_tenant_rejected_total":           {"counter", 6}, // 3 reasons x 2 tenants
		"progqoid_tenant_inflight":                 {"gauge", 2},
		"progqoid_tenant_bytes_total":              {"counter", 2},
		"progqoid_admission_queued":                {"gauge", 2},
		"progqoid_admission_waits_total":           {"counter", 2},
		"progqoid_tenant_request_duration_seconds": {"histogram", 0},
	}
	for name, want := range wantFams {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing from /metrics", name)
		}
		if f.Type != want.typ {
			t.Fatalf("%s type = %s, want %s", name, f.Type, want.typ)
		}
		if want.samples > 0 && f.Samples != want.samples {
			t.Fatalf("%s samples = %d, want %d", name, f.Samples, want.samples)
		}
	}
	for _, line := range []string{
		`progqoid_tenant_requests_total{tenant="dash",class="interactive"} 1`,
		`progqoid_tenant_requests_total{tenant="etl",class="bulk"} 2`,
		`progqoid_tenant_rejected_total{tenant="etl",reason="rate"} 1`,
		`progqoid_unauthorized_total 1`,
	} {
		if !strings.Contains(string(body), line) {
			t.Fatalf("metrics missing %q", line)
		}
	}
}
