// Package datagen synthesizes deterministic stand-ins for the paper's five
// evaluation datasets (Table III). The real archives are multi-gigabyte
// and/or proprietary (GE), so each generator produces fields with the same
// smoothness character, value magnitudes, and pathological features the
// paper's pipeline exercises — most importantly the exact-zero velocity
// nodes in the GE data that motivate the outlier mask (§V-A) — at sizes
// configurable down to laptop scale. All generators are seeded and
// reproducible.
package datagen

import (
	"math"
	"math/rand"

	"progqoi/internal/qoi"
)

// Dataset is a named collection of equally shaped fields plus the QoIs the
// paper evaluates on it.
type Dataset struct {
	Name       string
	FieldNames []string
	Dims       []int
	Fields     [][]float64
	QoIs       []qoi.QoI
}

// NumElements returns the per-field element count.
func (d *Dataset) NumElements() int {
	n := 1
	for _, v := range d.Dims {
		n *= v
	}
	return n
}

// TotalBytes returns the raw size of all fields at float64 width.
func (d *Dataset) TotalBytes() int64 {
	return int64(d.NumElements()) * 8 * int64(len(d.Fields))
}

// Field returns the field with the given name, or nil.
func (d *Dataset) Field(name string) []float64 {
	for i, n := range d.FieldNames {
		if n == name {
			return d.Fields[i]
		}
	}
	return nil
}

// vortex is a 2-D Lamb–Oseen-like vortex used to compose CFD-flavoured
// velocity fields.
type vortex struct {
	cx, cy, strength, radius float64
}

func (v vortex) velocity(x, y float64) (vx, vy float64) {
	dx, dy := x-v.cx, y-v.cy
	r2 := dx*dx + dy*dy
	if r2 < 1e-12 {
		return 0, 0
	}
	// Tangential speed peaks near radius and decays outward.
	s := v.strength * (1 - math.Exp(-r2/(v.radius*v.radius))) / math.Sqrt(r2)
	return -s * dy, s * dx
}

// GE synthesizes the GE CFD stand-in: velocities Vx, Vy, Vz, pressure P and
// density D on a linearized layout of blocks×blockSize nodes (the paper's
// GE data is an unstructured mesh linearized to 1-D with a variable second
// dimension). About 2% of nodes are wall nodes with exactly zero velocity.
func GE(name string, blocks, blockSize int, seed int64) *Dataset {
	n := blocks * blockSize
	rng := rand.New(rand.NewSource(seed))
	vxs := make([]float64, n)
	vys := make([]float64, n)
	vzs := make([]float64, n)
	ps := make([]float64, n)
	ds := make([]float64, n)

	// A handful of vortices per block plus a mean flow; the block's nodes
	// trace a space-filling path through the vortex field so the linearized
	// signal stays smooth (mesh locality).
	for b := 0; b < blocks; b++ {
		nv := 3 + rng.Intn(4)
		vorts := make([]vortex, nv)
		for i := range vorts {
			vorts[i] = vortex{
				cx:       rng.Float64(),
				cy:       rng.Float64(),
				strength: (rng.Float64()*2 - 1) * 120,
				radius:   0.05 + rng.Float64()*0.3,
			}
		}
		meanVx := 40 + rng.Float64()*160
		swirl := rng.Float64() * 30
		phase := rng.Float64() * 2 * math.Pi
		for j := 0; j < blockSize; j++ {
			idx := b*blockSize + j
			t := float64(j) / float64(blockSize)
			// Serpentine path through the unit square.
			x := t
			y := 0.5 + 0.4*math.Sin(2*math.Pi*3*t+phase)
			vx, vy := meanVx, 0.0
			for _, vo := range vorts {
				dx, dy := vo.velocity(x, y)
				vx += dx
				vy += dy
			}
			vz := swirl * math.Sin(2*math.Pi*2*t+phase)
			// Soft speed limiter: vortex cores can produce unphysical
			// speeds; compress smoothly toward ~250 m/s so the Bernoulli
			// pressure stays in a physical range.
			speed := math.Sqrt(vx*vx + vy*vy + vz*vz)
			if speed > 0 {
				k := 1 / math.Sqrt(1+(speed/250)*(speed/250))
				vx, vy, vz = vx*k, vy*k, vz*k
			}
			speed2 := vx*vx + vy*vy + vz*vz
			vxs[idx], vys[idx], vzs[idx] = vx, vy, vz
			// Pressure from Bernoulli-like coupling, density weakly varying.
			ps[idx] = 101325 - 0.5*1.2*speed2 + 500*math.Sin(2*math.Pi*5*t+phase)
			ds[idx] = 1.2 + 0.05*math.Sin(2*math.Pi*t+phase) + 2e-3*ps[idx]/101325
		}
		// Wall nodes: a contiguous run at the block start (boundary layer)
		// with exactly zero velocity, like the paper's Vx=Vy=Vz=0 nodes.
		walls := blockSize / 50
		for j := 0; j < walls; j++ {
			idx := b*blockSize + j
			vxs[idx], vys[idx], vzs[idx] = 0, 0, 0
			ps[idx] = 101325
		}
	}
	return &Dataset{
		Name:       name,
		FieldNames: []string{"VelocityX", "VelocityY", "VelocityZ", "Pressure", "Density"},
		Dims:       []int{n},
		Fields:     [][]float64{vxs, vys, vzs, ps, ds},
		QoIs:       qoi.GEQoIs(),
	}
}

// GESmall builds the default laptop-scale GE-small stand-in.
func GESmall() *Dataset { return GE("GE-small", 200, 320, 42) }

// GELarge builds the stand-in for the 96-block transfer experiment.
func GELarge() *Dataset { return GE("GE-large", 96, 4096, 43) }

// Hurricane synthesizes a 3-D hurricane-like wind field (Vx, Vy, Vz): a
// strong vertical vortex with an eye, vertical shear, and large-scale waves.
func Hurricane(nz, ny, nx int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	n := nz * ny * nx
	vxs := make([]float64, n)
	vys := make([]float64, n)
	vzs := make([]float64, n)
	eyeX := 0.5 + 0.1*rng.Float64()
	eyeY := 0.5 + 0.1*rng.Float64()
	for z := 0; z < nz; z++ {
		zt := float64(z) / float64(maxi(nz-1, 1))
		// The vortex weakens and tilts with altitude.
		v := vortex{
			cx:       eyeX + 0.1*zt,
			cy:       eyeY - 0.05*zt,
			strength: 70 * (1 - 0.6*zt),
			radius:   0.12 + 0.05*zt,
		}
		for y := 0; y < ny; y++ {
			yt := float64(y) / float64(maxi(ny-1, 1))
			for x := 0; x < nx; x++ {
				xt := float64(x) / float64(maxi(nx-1, 1))
				idx := (z*ny+y)*nx + x
				vx, vy := v.velocity(xt, yt)
				vx += 8 * math.Sin(2*math.Pi*(yt+0.3*zt))
				vy += 6 * math.Cos(2*math.Pi*(xt-0.2*zt))
				vxs[idx] = vx
				vys[idx] = vy
				vzs[idx] = 2 * math.Sin(2*math.Pi*(xt+yt)) * (1 - zt)
			}
		}
	}
	return &Dataset{
		Name:       "Hurricane",
		FieldNames: []string{"U", "V", "W"},
		Dims:       []int{nz, ny, nx},
		Fields:     [][]float64{vxs, vys, vzs},
		QoIs:       []qoi.QoI{qoi.TotalVelocity(0, 1, 2)},
	}
}

// HurricaneSmall builds the default scaled Hurricane stand-in.
func HurricaneSmall() *Dataset { return Hurricane(16, 48, 48, 44) }

// NYX synthesizes cosmology-like baryon velocity fields: Gaussian random
// fields from superposed Fourier modes with a power-law spectrum, the
// texture of large-scale-structure velocity data.
func NYX(nz, ny, nx int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	n := nz * ny * nx
	fields := make([][]float64, 3)
	const modes = 48
	for f := 0; f < 3; f++ {
		data := make([]float64, n)
		type mode struct {
			kx, ky, kz, amp, phase float64
		}
		ms := make([]mode, modes)
		for i := range ms {
			k := 1 + rng.Float64()*7
			theta := rng.Float64() * math.Pi
			phi := rng.Float64() * 2 * math.Pi
			ms[i] = mode{
				kx:    k * math.Sin(theta) * math.Cos(phi),
				ky:    k * math.Sin(theta) * math.Sin(phi),
				kz:    k * math.Cos(theta),
				amp:   3e5 * math.Pow(k, -1.7) / modes * 6, // ~1e5-scale velocities like NYX (cm/s)
				phase: rng.Float64() * 2 * math.Pi,
			}
		}
		for z := 0; z < nz; z++ {
			zt := float64(z) / float64(nz)
			for y := 0; y < ny; y++ {
				yt := float64(y) / float64(ny)
				for x := 0; x < nx; x++ {
					xt := float64(x) / float64(nx)
					v := 0.0
					for _, m := range ms {
						v += m.amp * math.Sin(2*math.Pi*(m.kx*xt+m.ky*yt+m.kz*zt)+m.phase)
					}
					data[(z*ny+y)*nx+x] = v
				}
			}
		}
		fields[f] = data
	}
	return &Dataset{
		Name:       "NYX",
		FieldNames: []string{"velocity_x", "velocity_y", "velocity_z"},
		Dims:       []int{nz, ny, nx},
		Fields:     fields,
		QoIs:       []qoi.QoI{qoi.TotalVelocity(0, 1, 2)},
	}
}

// NYXSmall builds the default scaled NYX stand-in.
func NYXSmall() *Dataset { return NYX(32, 32, 32, 45) }

// S3D synthesizes combustion species molar concentrations: 8 species with
// flame-front (tanh) profiles plus smooth background variation, all
// strictly positive and small like real mass fractions.
func S3D(nz, ny, nx int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	n := nz * ny * nx
	names := []string{"H2", "O2", "H2O", "H", "O", "OH", "HO2", "H2O2"}
	scales := []float64{2e-2, 2e-1, 1e-1, 5e-4, 3e-4, 2e-3, 1e-4, 5e-5}
	fields := make([][]float64, len(names))
	// One wrinkled flame front through the domain, shared by all species.
	frontPhase := rng.Float64() * 2 * math.Pi
	frontAmp := 0.1 + 0.1*rng.Float64()
	for f := range names {
		data := make([]float64, n)
		sign := 1.0
		if f%2 == 0 {
			sign = -1.0 // reactants deplete across the front, products form
		}
		blobX := rng.Float64()
		blobY := rng.Float64()
		for z := 0; z < nz; z++ {
			zt := float64(z) / float64(nz)
			for y := 0; y < ny; y++ {
				yt := float64(y) / float64(ny)
				front := 0.5 + frontAmp*math.Sin(2*math.Pi*2*yt+frontPhase) +
					0.05*math.Sin(2*math.Pi*3*zt)
				for x := 0; x < nx; x++ {
					xt := float64(x) / float64(nx)
					prof := 0.5 * (1 + sign*math.Tanh((xt-front)*20))
					blob := 0.3 * math.Exp(-((xt-blobX)*(xt-blobX)+(yt-blobY)*(yt-blobY))*8)
					v := scales[f] * (0.05 + prof + blob*(0.5+0.5*math.Sin(2*math.Pi*4*zt)))
					data[(z*ny+y)*nx+x] = v
				}
			}
		}
		fields[f] = data
	}
	return &Dataset{
		Name:       "S3D",
		FieldNames: names,
		Dims:       []int{nz, ny, nx},
		Fields:     fields,
		QoIs:       qoi.S3DProducts(),
	}
}

// S3DSmall builds the default scaled S3D stand-in.
func S3DSmall() *Dataset { return S3D(24, 32, 20, 46) }

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
