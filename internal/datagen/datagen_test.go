package datagen

import (
	"math"
	"testing"
)

func TestGEDeterministic(t *testing.T) {
	a := GE("x", 10, 100, 7)
	b := GE("x", 10, 100, 7)
	for f := range a.Fields {
		for i := range a.Fields[f] {
			if a.Fields[f][i] != b.Fields[f][i] {
				t.Fatalf("field %d differs at %d", f, i)
			}
		}
	}
	c := GE("x", 10, 100, 8)
	same := true
	for i := range a.Fields[0] {
		if a.Fields[0][i] != c.Fields[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGEShapeAndFields(t *testing.T) {
	d := GESmall()
	if d.NumElements() != 200*320 {
		t.Fatalf("elements = %d", d.NumElements())
	}
	if len(d.Fields) != 5 || len(d.FieldNames) != 5 {
		t.Fatalf("want 5 fields")
	}
	if len(d.QoIs) != 6 {
		t.Fatalf("want 6 QoIs, got %d", len(d.QoIs))
	}
	for f, data := range d.Fields {
		if len(data) != d.NumElements() {
			t.Fatalf("field %d has %d elements", f, len(data))
		}
		for i, v := range data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("field %d non-finite at %d", f, i)
			}
		}
	}
	if d.Field("Pressure") == nil || d.Field("nope") != nil {
		t.Fatal("Field lookup broken")
	}
}

func TestGEHasExactZeroVelocityNodes(t *testing.T) {
	d := GESmall()
	vx, vy, vz := d.Fields[0], d.Fields[1], d.Fields[2]
	zeros := 0
	for i := range vx {
		if vx[i] == 0 && vy[i] == 0 && vz[i] == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("GE data must contain exact-zero velocity nodes (outlier-mask motivation)")
	}
	frac := float64(zeros) / float64(len(vx))
	if frac < 0.005 || frac > 0.1 {
		t.Fatalf("zero-node fraction %.3f outside [0.005, 0.1]", frac)
	}
}

func TestGEPhysicalRanges(t *testing.T) {
	d := GESmall()
	p := d.Field("Pressure")
	den := d.Field("Density")
	for i := range p {
		if p[i] < 5e4 || p[i] > 2e5 {
			t.Fatalf("pressure %g out of physical range at %d", p[i], i)
		}
		if den[i] < 0.8 || den[i] > 1.6 {
			t.Fatalf("density %g out of physical range at %d", den[i], i)
		}
	}
}

func TestHurricane(t *testing.T) {
	d := HurricaneSmall()
	if len(d.Dims) != 3 || len(d.Fields) != 3 {
		t.Fatal("hurricane should be 3 3-D fields")
	}
	if len(d.QoIs) != 1 || d.QoIs[0].Name != "VTOT" {
		t.Fatal("hurricane QoI should be total velocity")
	}
	// Wind speeds should be storm-like: peak above 30, not absurd.
	peak := 0.0
	for i := range d.Fields[0] {
		s := math.Sqrt(d.Fields[0][i]*d.Fields[0][i] + d.Fields[1][i]*d.Fields[1][i])
		if s > peak {
			peak = s
		}
	}
	if peak < 30 || peak > 500 {
		t.Fatalf("peak wind %g implausible", peak)
	}
}

func TestNYX(t *testing.T) {
	d := NYXSmall()
	if d.NumElements() != 32*32*32 {
		t.Fatalf("elements = %d", d.NumElements())
	}
	// Velocity magnitudes should be ~1e5-scale with both signs.
	hasPos, hasNeg := false, false
	maxAbs := 0.0
	for _, v := range d.Fields[0] {
		if v > 0 {
			hasPos = true
		}
		if v < 0 {
			hasNeg = true
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if !hasPos || !hasNeg {
		t.Fatal("NYX velocities should be signed")
	}
	if maxAbs < 1e4 || maxAbs > 1e7 {
		t.Fatalf("NYX velocity scale %g implausible", maxAbs)
	}
}

func TestS3DPositiveAndSmall(t *testing.T) {
	d := S3DSmall()
	if len(d.Fields) != 8 {
		t.Fatalf("want 8 species, got %d", len(d.Fields))
	}
	if len(d.QoIs) != 4 {
		t.Fatalf("want 4 molar products, got %d", len(d.QoIs))
	}
	for f, data := range d.Fields {
		for i, v := range data {
			if v <= 0 {
				t.Fatalf("species %d non-positive (%g) at %d", f, v, i)
			}
			if v > 1 {
				t.Fatalf("species %d mass fraction %g > 1 at %d", f, v, i)
			}
		}
	}
}

func TestTotalBytes(t *testing.T) {
	d := GE("x", 2, 10, 1)
	if d.TotalBytes() != 2*10*8*5 {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}

func TestFieldsAreSmoothEnoughToCompress(t *testing.T) {
	// The evaluation depends on the stand-ins being compressible: check the
	// mean |second difference| is far below the field range.
	for _, d := range []*Dataset{GESmall(), HurricaneSmall(), NYXSmall(), S3DSmall()} {
		for f, data := range d.Fields {
			if len(data) < 3 {
				continue
			}
			lo, hi := data[0], data[0]
			sum := 0.0
			for i := 1; i < len(data)-1; i++ {
				if data[i] < lo {
					lo = data[i]
				}
				if data[i] > hi {
					hi = data[i]
				}
				sum += math.Abs(data[i+1] - 2*data[i] + data[i-1])
			}
			if hi == lo {
				continue
			}
			mean := sum / float64(len(data)-2)
			if mean > (hi-lo)*0.2 {
				t.Errorf("%s field %d too rough: mean 2nd diff %g vs range %g", d.Name, f, mean, hi-lo)
			}
		}
	}
}
