// Package sz implements an SZ3-class error-bounded lossy compressor for
// uniform-grid scientific data, used as the underlying single-snapshot
// compressor of the PSZ3 and PSZ3-delta progressive representations
// (paper §V-B).
//
// The design follows the interpolation-based SZ3 pipeline:
//
//  1. a level-by-level linear-interpolation predictor (coarse→fine, the
//     same dyadic lattice the multilevel decomposition uses), seeded by a
//     first-order Lorenzo scan over the coarsest lattice;
//  2. error-controlled linear quantization of prediction residuals with
//     bin width 2ε, where predictions always use *reconstructed* values so
//     the L∞ guarantee |x−x̂| ≤ ε holds unconditionally;
//  3. an outlier escape hatch: residuals outside the quantizer range are
//     stored bit-exact (error 0 at those points);
//  4. canonical Huffman coding of the quantization indices.
//
// The compressor is deterministic and self-describing; Decompress validates
// framing and rejects truncated or corrupted payloads.
package sz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"progqoi/internal/encoding"
	"progqoi/internal/grid"
)

// quantRadius bounds quantization indices: |q| ≤ quantRadius, larger
// residuals become outliers.
const quantRadius = 1 << 15

// noMarker is the header sentinel meaning "no outliers in this stream". When
// outliers exist, the marker symbol is allocated just past the largest real
// zigzag index so the Huffman alphabet stays as dense as the data allows.
const noMarker = ^uint32(0)

// ErrBadInput reports invalid compression input.
var ErrBadInput = errors.New("sz: invalid input")

// Compress reduces data (row-major on g) under the absolute L∞ error bound
// eb > 0 and returns a self-describing buffer.
func Compress(data []float64, g *grid.Grid, eb float64) ([]byte, error) {
	if err := g.Validate(data); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("%w: error bound must be positive and finite, got %g", ErrBadInput, eb)
	}
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite value at index %d", ErrBadInput, i)
		}
	}

	recon := make([]float64, len(data))
	syms := make([]int, 0, len(data))
	var outliers []float64
	maxZig := 0
	quantize := func(off int, pred float64) {
		res := data[off] - pred
		q := math.Round(res / (2 * eb))
		if math.Abs(q) > quantRadius {
			syms = append(syms, -1) // placeholder, remapped below
			outliers = append(outliers, data[off])
			recon[off] = data[off]
			return
		}
		z := int(encoding.ZigZag(int64(q)))
		if z > maxZig {
			maxZig = z
		}
		syms = append(syms, z)
		recon[off] = pred + 2*eb*q
	}
	walkPredictionOrder(g, recon, quantize)

	marker := noMarker
	alphabet := maxZig + 1
	if len(outliers) > 0 {
		marker = uint32(maxZig + 1)
		alphabet = maxZig + 2
		for i, s := range syms {
			if s < 0 {
				syms[i] = int(marker)
			}
		}
	}
	huff, err := encoding.HuffmanEncode(syms, alphabet)
	if err != nil {
		return nil, err
	}

	hdr := make([]byte, 0, 20+4*g.NDims())
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(g.NDims()))
	hdr = append(hdr, tmp[:4]...)
	for _, d := range g.Dims() {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(d))
		hdr = append(hdr, tmp[:4]...)
	}
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(eb))
	hdr = append(hdr, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], marker)
	hdr = append(hdr, tmp[:4]...)

	out := encoding.PutSection(nil, hdr)
	out = encoding.PutSection(out, huff)
	out = encoding.PutSection(out, encoding.PutFloat64s(outliers))
	return out, nil
}

// Decompress reverses Compress, returning the reconstructed data, its grid,
// and the error bound it was compressed with.
func Decompress(buf []byte) ([]float64, *grid.Grid, float64, error) {
	hdr, n, err := encoding.GetSection(buf)
	if err != nil {
		return nil, nil, 0, err
	}
	off := n
	if len(hdr) < 4 {
		return nil, nil, 0, fmt.Errorf("%w: sz header", encoding.ErrCorrupt)
	}
	nd := int(binary.LittleEndian.Uint32(hdr))
	if nd < 1 || nd > 16 || len(hdr) != 4+4*nd+12 {
		return nil, nil, 0, fmt.Errorf("%w: sz header rank %d size %d", encoding.ErrCorrupt, nd, len(hdr))
	}
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint32(hdr[4+4*i:]))
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(hdr[4+4*nd:]))
	marker := binary.LittleEndian.Uint32(hdr[4+4*nd+8:])
	g, err := grid.New(dims...)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%w: %v", encoding.ErrCorrupt, err)
	}
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, nil, 0, fmt.Errorf("%w: sz error bound %g", encoding.ErrCorrupt, eb)
	}

	huff, n, err := encoding.GetSection(buf[off:])
	if err != nil {
		return nil, nil, 0, err
	}
	off += n
	outSec, _, err := encoding.GetSection(buf[off:])
	if err != nil {
		return nil, nil, 0, err
	}
	syms, err := encoding.HuffmanDecode(huff)
	if err != nil {
		return nil, nil, 0, err
	}
	outliers, _, err := encoding.GetFloat64s(outSec)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(syms) != g.Size() {
		return nil, nil, 0, fmt.Errorf("%w: sz symbol count %d, want %d", encoding.ErrCorrupt, len(syms), g.Size())
	}

	recon := make([]float64, g.Size())
	si, oi := 0, 0
	var derr error
	dequantize := func(off int, pred float64) {
		if derr != nil {
			return
		}
		s := syms[si]
		si++
		if marker != noMarker && uint32(s) == marker {
			if oi >= len(outliers) {
				derr = fmt.Errorf("%w: sz outlier stream exhausted", encoding.ErrCorrupt)
				return
			}
			recon[off] = outliers[oi]
			oi++
			return
		}
		q := encoding.UnZigZag(uint64(s))
		recon[off] = pred + 2*eb*float64(q)
	}
	walkPredictionOrder(g, recon, dequantize)
	if derr != nil {
		return nil, nil, 0, derr
	}
	if oi != len(outliers) {
		return nil, nil, 0, fmt.Errorf("%w: sz %d unused outliers", encoding.ErrCorrupt, len(outliers)-oi)
	}
	return recon, g, eb, nil
}

// walkPredictionOrder visits every node exactly once in the deterministic
// prediction order shared by Compress and Decompress. For each node it calls
// visit(offset, prediction) where the prediction is computed from recon
// values already finalized by earlier visits. The visit callback must store
// the node's reconstructed value into recon[offset] before returning (both
// the quantizer and dequantizer do).
func walkPredictionOrder(g *grid.Grid, recon []float64, visit func(off int, pred float64)) {
	steps := g.NumLevels() - 1
	coarse := grid.LevelStride(steps)

	// Pass 1: coarsest lattice with first-order Lorenzo along the scan.
	prev := 0.0
	first := true
	walkLattice(g, coarse, func(off int) {
		if first {
			visit(off, 0)
			first = false
		} else {
			visit(off, prev)
		}
		prev = recon[off]
	})

	// Pass 2: refine level by level. Within a level, the pass along dim k
	// predicts nodes that are odd along k, with dims < k on the full level-s
	// lattice (already finalized earlier in this level) and dims > k on the
	// coarser 2s lattice (not yet refined). Every node with at least one odd
	// coordinate is therefore visited exactly once — in the pass of its last
	// odd dimension — and all its interpolation neighbors are finalized.
	for l := steps - 1; l >= 0; l-- {
		s := grid.LevelStride(l)
		for dim := 0; dim < g.NDims(); dim++ {
			if s >= g.Dim(dim) {
				continue
			}
			eachPredLine(g, dim, s, func(line []int) {
				m := len(line)
				for i := 1; i < m; i += 2 {
					var pred float64
					switch {
					case i-3 >= 0 && i+3 < m:
						// Cubic (four-point) interpolation, the SZ3 default
						// for interior nodes. All four stencil points are
						// even positions, finalized before this visit.
						pred = (-recon[line[i-3]] + 9*recon[line[i-1]] +
							9*recon[line[i+1]] - recon[line[i+3]]) / 16
					case i+1 < m:
						pred = 0.5 * (recon[line[i-1]] + recon[line[i+1]])
					default:
						pred = recon[line[i-1]]
					}
					visit(line[i], pred)
				}
			})
		}
	}
}

// walkLattice visits nodes whose coords are ≡ 0 (mod stride) in row-major
// order.
func walkLattice(g *grid.Grid, stride int, fn func(off int)) {
	ndim := g.NDims()
	var walk func(dim, off int)
	walk = func(dim, off int) {
		if dim == ndim {
			fn(off)
			return
		}
		for c := 0; c < g.Dim(dim); c += stride {
			walk(dim+1, off+c*g.Stride(dim))
		}
	}
	walk(0, 0)
}

// eachPredLine iterates prediction lines along dim at level stride s: dims
// before dim step by s (fully refined at this level), dims after step by 2s
// (still coarse).
func eachPredLine(g *grid.Grid, dim, s int, fn func(line []int)) {
	ndim := g.NDims()
	ext := g.Dim(dim)
	stride := g.Stride(dim)
	nLine := (ext + s - 1) / s
	line := make([]int, nLine)
	var walk func(k, base int)
	walk = func(k, base int) {
		if k == ndim {
			for i := 0; i < nLine; i++ {
				line[i] = base + i*s*stride
			}
			fn(line)
			return
		}
		if k == dim {
			walk(k+1, base)
			return
		}
		step := s
		if k > dim {
			step = 2 * s
		}
		e := g.Dim(k)
		st := g.Stride(k)
		for c := 0; c < e; c += step {
			walk(k+1, base+c*st)
		}
	}
	walk(0, 0)
}
