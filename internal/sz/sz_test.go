package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"progqoi/internal/grid"
)

func smoothField(g *grid.Grid) []float64 {
	out := make([]float64, g.Size())
	for off := range out {
		c := g.Coords(off)
		v := 0.0
		for d, x := range c {
			v += math.Sin(2*math.Pi*float64(x)/float64(g.Dim(d))+0.3*float64(d)) * float64(d+1)
		}
		out[off] = 100 * v
	}
	return out
}

func randField(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 50
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

var shapes = [][]int{{1}, {2}, {7}, {100}, {257}, {5, 9}, {32, 33}, {7, 8, 9}, {17, 5, 13}}

func TestRoundTripRespectsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range shapes {
		g := grid.MustNew(dims...)
		for _, data := range [][]float64{smoothField(g), randField(rng, g.Size())} {
			for _, eb := range []float64{1e-1, 1e-3, 1e-6} {
				buf, err := Compress(data, g, eb)
				if err != nil {
					t.Fatalf("%v eb=%g: %v", dims, eb, err)
				}
				rec, g2, eb2, err := Decompress(buf)
				if err != nil {
					t.Fatalf("%v eb=%g: %v", dims, eb, err)
				}
				if !g.Equal(g2) || eb2 != eb {
					t.Fatalf("metadata mismatch: %v %g", g2.Dims(), eb2)
				}
				if e := maxAbsDiff(data, rec); e > eb {
					t.Fatalf("%v eb=%g: L∞ error %g exceeds bound", dims, eb, e)
				}
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := grid.MustNew(64, 64)
	data := smoothField(g)
	b1, err := Compress(data, g, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := Compress(data, g, 1e-4)
	if len(b1) != len(b2) {
		t.Fatal("nondeterministic size")
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("nondeterministic bytes")
		}
	}
}

func TestSmoothDataCompresses(t *testing.T) {
	g := grid.MustNew(64, 64, 64)
	data := smoothField(g)
	buf, err := Compress(data, g, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	raw := g.Size() * 8
	if len(buf) > raw/8 {
		t.Fatalf("smooth field should compress ≥8×: %d vs %d raw", len(buf), raw)
	}
}

func TestTighterBoundCostsMore(t *testing.T) {
	g := grid.MustNew(48, 48)
	data := smoothField(g)
	var prev int
	for i, eb := range []float64{1e-1, 1e-3, 1e-5, 1e-7} {
		buf, err := Compress(data, g, eb)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(buf) < prev {
			t.Fatalf("eb=%g produced smaller output (%d) than looser bound (%d)", eb, len(buf), prev)
		}
		prev = len(buf)
	}
}

func TestOutliersExact(t *testing.T) {
	// A field with huge spikes: spikes must come back essentially exact via
	// the outlier path while everything else obeys the bound.
	g := grid.MustNew(101)
	data := make([]float64, 101)
	for i := range data {
		data[i] = math.Sin(float64(i) / 10)
	}
	data[13] = 1e12
	data[77] = -3e11
	eb := 1e-6
	buf, err := Compress(data, g, eb)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsDiff(data, rec); e > eb {
		t.Fatalf("outlier handling violated bound: %g", e)
	}
}

func TestConstantField(t *testing.T) {
	g := grid.MustNew(50, 50)
	data := make([]float64, g.Size())
	for i := range data {
		data[i] = 42.5
	}
	buf, err := Compress(data, g, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 2000 {
		t.Fatalf("constant field should be tiny, got %d bytes", len(buf))
	}
	rec, _, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsDiff(data, rec); e > 1e-8 {
		t.Fatalf("error %g", e)
	}
}

func TestCompressRejectsBadInput(t *testing.T) {
	g := grid.MustNew(4)
	ok := []float64{1, 2, 3, 4}
	if _, err := Compress(ok[:3], g, 1e-3); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Compress(ok, g, 0); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := Compress(ok, g, -1); err == nil {
		t.Fatal("negative bound accepted")
	}
	if _, err := Compress(ok, g, math.Inf(1)); err == nil {
		t.Fatal("infinite bound accepted")
	}
	if _, err := Compress([]float64{1, math.NaN(), 3, 4}, g, 1e-3); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	g := grid.MustNew(30)
	data := smoothField(g)
	buf, _ := Compress(data, g, 1e-4)
	for _, cut := range []int{0, 3, 8, 20, len(buf) - 1} {
		if _, _, _, err := Decompress(buf[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 0xff // mangle rank
	if _, _, _, err := Decompress(bad); err == nil {
		t.Error("mangled header not detected")
	}
}

func TestPropertyBoundAlwaysHolds(t *testing.T) {
	f := func(seed int64, shapeSel uint8, ebExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := shapes[int(shapeSel)%len(shapes)]
		g := grid.MustNew(dims...)
		data := randField(rng, g.Size())
		eb := math.Pow(10, -float64(ebExp%8)-1)
		buf, err := Compress(data, g, eb)
		if err != nil {
			return false
		}
		rec, _, _, err := Decompress(buf)
		if err != nil {
			return false
		}
		return maxAbsDiff(data, rec) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualCompression(t *testing.T) {
	// The PSZ3-delta pattern: compress, compute residual, compress residual
	// with a tighter bound; combined reconstruction obeys the tighter bound.
	g := grid.MustNew(40, 40)
	data := smoothField(g)
	b1, err := Compress(data, g, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, _, _ := Decompress(b1)
	residual := make([]float64, len(data))
	for i := range residual {
		residual[i] = data[i] - r1[i]
	}
	b2, err := Compress(residual, g, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, _, _ := Decompress(b2)
	combined := make([]float64, len(data))
	for i := range combined {
		combined[i] = r1[i] + r2[i]
	}
	if e := maxAbsDiff(data, combined); e > 1e-5 {
		t.Fatalf("delta reconstruction error %g", e)
	}
	if len(b2) > len(b1)*20 {
		t.Fatalf("residual snapshot unexpectedly huge: %d vs %d", len(b2), len(b1))
	}
}

func BenchmarkCompress64Cubed(b *testing.B) {
	g := grid.MustNew(64, 64, 64)
	data := smoothField(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, g, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress64Cubed(b *testing.B) {
	g := grid.MustNew(64, 64, 64)
	data := smoothField(g)
	buf, _ := Compress(data, g, 1e-4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
