package encoding

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitIORoundTrip(t *testing.T) {
	w := NewBitWriter(16)
	vals := []struct {
		v  uint64
		nb uint
	}{
		{1, 1}, {0, 1}, {5, 3}, {255, 8}, {1023, 10}, {0x1ffffffffffffff, 57}, {42, 7},
	}
	for _, e := range vals {
		w.WriteBits(e.v, e.nb)
	}
	r := NewBitReader(w.Bytes())
	for i, e := range vals {
		got, err := r.ReadBits(e.nb)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != e.v {
			t.Fatalf("read %d = %d, want %d", i, got, e.v)
		}
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestBitWriterPanicsOver57(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitWriter(1).WriteBits(0, 58)
}

func TestBitIOPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		vs := make([]uint64, n)
		nbs := make([]uint, n)
		w := NewBitWriter(64)
		for i := range vs {
			nbs[i] = uint(rng.Intn(57) + 1)
			vs[i] = rng.Uint64() & ((1 << nbs[i]) - 1)
			w.WriteBits(vs[i], nbs[i])
		}
		r := NewBitReader(w.Bytes())
		for i := range vs {
			got, err := r.ReadBits(nbs[i])
			if err != nil || got != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanRoundTripBasic(t *testing.T) {
	syms := []int{0, 1, 1, 2, 2, 2, 2, 3, 0, 1, 2, 2}
	enc, err := HuffmanEncode(syms, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := HuffmanDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(syms) {
		t.Fatalf("len = %d, want %d", len(dec), len(syms))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("sym %d = %d, want %d", i, dec[i], syms[i])
		}
	}
}

func TestHuffmanEmpty(t *testing.T) {
	enc, err := HuffmanEncode(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := HuffmanDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("want empty, got %v", dec)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	syms := make([]int, 1000)
	for i := range syms {
		syms[i] = 7
	}
	enc, err := HuffmanEncode(syms, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Single-symbol streams should be tiny: ~1 bit/sym.
	if len(enc) > 8+16+150 {
		t.Fatalf("single-symbol encoding too large: %d bytes", len(enc))
	}
	dec, err := HuffmanDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range dec {
		if s != 7 {
			t.Fatalf("sym %d = %d", i, s)
		}
	}
}

func TestHuffmanRejectsOutOfAlphabet(t *testing.T) {
	if _, err := HuffmanEncode([]int{0, 5}, 5); err == nil {
		t.Fatal("expected error for symbol = alphabet")
	}
	if _, err := HuffmanEncode([]int{-1}, 5); err == nil {
		t.Fatal("expected error for negative symbol")
	}
	if _, err := HuffmanEncode(nil, 0); err == nil {
		t.Fatal("expected error for empty alphabet")
	}
}

func TestHuffmanDecodeCorrupt(t *testing.T) {
	syms := []int{1, 2, 3, 1, 2, 3, 0, 0, 0}
	enc, err := HuffmanEncode(syms, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 7, len(enc) - 1} {
		if _, err := HuffmanDecode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	// Header corruption: implausible alphabet.
	bad := append([]byte(nil), enc...)
	bad[3] = 0xff
	if _, err := HuffmanDecode(bad); err == nil {
		t.Error("corrupt alphabet not detected")
	}
}

func TestHuffmanPropertyRandomStreams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := rng.Intn(300) + 1
		n := rng.Intn(2000)
		syms := make([]int, n)
		for i := range syms {
			// Skewed distribution: mostly small symbols, like quantizer output.
			s := int(math.Abs(rng.NormFloat64()) * float64(alpha) / 6)
			if s >= alpha {
				s = alpha - 1
			}
			syms[i] = s
		}
		enc, err := HuffmanEncode(syms, alpha)
		if err != nil {
			return false
		}
		dec, err := HuffmanDecode(enc)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range syms {
			if dec[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64 + 1} {
		if got := UnZigZag(ZigZag(v)); got != v {
			t.Errorf("UnZigZag(ZigZag(%d)) = %d", v, got)
		}
	}
	// Small magnitudes stay small.
	if ZigZag(0) != 0 || ZigZag(-1) != 1 || ZigZag(1) != 2 || ZigZag(-2) != 3 {
		t.Error("zigzag ordering wrong")
	}
}

func TestUvarintsRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64}
	buf := PutUvarints(vals)
	got, n, err := GetUvarints(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("val %d = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestUvarintsCorrupt(t *testing.T) {
	buf := PutUvarints([]uint64{1, 2, 300})
	if _, _, err := GetUvarints(buf[:len(buf)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, _, err := GetUvarints(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("empty stream should be corrupt")
	}
	// Count claims more values than bytes available.
	big := PutUvarints(make([]uint64, 3))
	if _, _, err := GetUvarints(big[:2]); err == nil {
		t.Fatal("overlong count not detected")
	}
}

func TestDeflateInflateRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("progressive retrieval "), 100)
	for _, lvl := range []int{0, 1, 6, 9} {
		c, err := Deflate(data, lvl)
		if err != nil {
			t.Fatal(err)
		}
		if len(c) >= len(data) {
			t.Errorf("level %d: no compression (%d >= %d)", lvl, len(c), len(data))
		}
		d, err := Inflate(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d, data) {
			t.Fatalf("level %d: round trip mismatch", lvl)
		}
	}
}

func TestInflateLimit(t *testing.T) {
	data := make([]byte, 10000)
	c, err := Deflate(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inflate(c, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("size limit not enforced: %v", err)
	}
}

func TestInflateGarbage(t *testing.T) {
	if _, err := Inflate([]byte{0xde, 0xad, 0xbe, 0xef}, 0); err == nil {
		t.Fatal("garbage should not inflate")
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -math.Pi, math.Inf(1), math.NaN(), math.SmallestNonzeroFloat64}
	buf := PutFloat64s(vals)
	got, n, err := GetFloat64s(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	for i := range vals {
		if math.IsNaN(vals[i]) {
			if !math.IsNaN(got[i]) {
				t.Fatalf("val %d: want NaN", i)
			}
			continue
		}
		if got[i] != vals[i] {
			t.Fatalf("val %d = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestFloat64sCorrupt(t *testing.T) {
	buf := PutFloat64s([]float64{1, 2, 3})
	if _, _, err := GetFloat64s(buf[:10]); !errors.Is(err, ErrCorrupt) {
		t.Fatal("truncation not detected")
	}
	if _, _, err := GetFloat64s([]byte{1}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("short header not detected")
	}
}

func TestSectionRoundTrip(t *testing.T) {
	var buf []byte
	buf = PutSection(buf, []byte("alpha"))
	buf = PutSection(buf, nil)
	buf = PutSection(buf, []byte("beta"))
	p1, n1, err := GetSection(buf)
	if err != nil || string(p1) != "alpha" {
		t.Fatalf("section 1: %q %v", p1, err)
	}
	p2, n2, err := GetSection(buf[n1:])
	if err != nil || len(p2) != 0 {
		t.Fatalf("section 2: %q %v", p2, err)
	}
	p3, _, err := GetSection(buf[n1+n2:])
	if err != nil || string(p3) != "beta" {
		t.Fatalf("section 3: %q %v", p3, err)
	}
}

func TestSectionCorrupt(t *testing.T) {
	buf := PutSection(nil, []byte("payload"))
	if _, _, err := GetSection(buf[:5]); !errors.Is(err, ErrCorrupt) {
		t.Fatal("truncated section not detected")
	}
	if _, _, err := GetSection([]byte{1, 0}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("short header not detected")
	}
}
