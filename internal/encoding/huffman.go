package encoding

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Canonical Huffman coder over a dense alphabet of non-negative int symbols.
// The encoded layout is:
//
//	u32  alphabet size A
//	u32  symbol count N
//	A×u8 code lengths (0 = unused symbol), lengths ≤ 57
//	payload bits, LSB-first
//
// Code lengths are capped via the standard length-limiting fallback (rebuild
// with scaled frequencies) which in practice never triggers for quantizer
// alphabets but keeps the coder total.

const maxCodeLen = 57

type huffNode struct {
	freq        int64
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildCodeLengths returns per-symbol code lengths for the given frequency
// table (len = alphabet size). Symbols with zero frequency get length 0.
func buildCodeLengths(freq []int64) []uint8 {
	lengths := make([]uint8, len(freq))
	h := &huffHeap{}
	for s, f := range freq {
		if f > 0 {
			heap.Push(h, &huffNode{freq: f, sym: s})
		}
	}
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		lengths[(*h)[0].sym] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	root := heap.Pop(h).(*huffNode)
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	// Length-limit fallback: scale frequencies down until max length fits.
	for maxLen(lengths) > maxCodeLen {
		for i := range freq {
			if freq[i] > 1 {
				freq[i] = (freq[i] + 1) / 2
			}
		}
		return buildCodeLengths(freq)
	}
	return lengths
}

func maxLen(lengths []uint8) uint8 {
	var m uint8
	for _, l := range lengths {
		if l > m {
			m = l
		}
	}
	return m
}

// canonicalCodes assigns canonical codes from lengths. Returned codes are
// bit-reversed so they can be emitted LSB-first and decoded by peeking.
func canonicalCodes(lengths []uint8) []uint64 {
	type sl struct {
		sym int
		l   uint8
	}
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	codes := make([]uint64, len(lengths))
	var code uint64
	var prev uint8
	for _, e := range syms {
		code <<= (e.l - prev)
		prev = e.l
		codes[e.sym] = bits.Reverse64(code) >> (64 - e.l)
		code++
	}
	return codes
}

// HuffmanEncode encodes syms, each in [0, alphabet). It is deterministic.
func HuffmanEncode(syms []int, alphabet int) ([]byte, error) {
	if alphabet <= 0 {
		return nil, fmt.Errorf("encoding: alphabet must be positive, got %d", alphabet)
	}
	freq := make([]int64, alphabet)
	for _, s := range syms {
		if s < 0 || s >= alphabet {
			return nil, fmt.Errorf("encoding: symbol %d outside alphabet [0,%d)", s, alphabet)
		}
		freq[s]++
	}
	lengths := buildCodeLengths(freq)
	codes := canonicalCodes(lengths)

	// The length table is mostly zeros for sparse alphabets; DEFLATE it so
	// large quantizer alphabets do not dominate small payloads.
	lengthsC, err := Deflate(lengths, 6)
	if err != nil {
		return nil, err
	}
	head := make([]byte, 8)
	binary.LittleEndian.PutUint32(head[0:], uint32(alphabet))
	binary.LittleEndian.PutUint32(head[4:], uint32(len(syms)))
	out := PutSection(head, lengthsC)

	w := NewBitWriter(len(syms) / 2)
	for _, s := range syms {
		w.WriteBits(codes[s], uint(lengths[s]))
	}
	return append(out, w.Bytes()...), nil
}

// huffDecoder is a table-driven canonical decoder.
type huffDecoder struct {
	lengths []uint8
	// fast table for codes up to fastBits
	fast []int32 // packed: sym<<8 | len; -1 when not covered
	maxL uint8
	slow map[uint64]int // key: code | len<<58 for long codes
}

const fastBits = 11

func newHuffDecoder(lengths []uint8) *huffDecoder {
	codes := canonicalCodes(lengths)
	d := &huffDecoder{lengths: lengths, maxL: maxLen(lengths)}
	d.fast = make([]int32, 1<<fastBits)
	for i := range d.fast {
		d.fast[i] = -1
	}
	d.slow = make(map[uint64]int)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if l <= fastBits {
			// Fill all fast entries whose low l bits equal the code.
			step := 1 << l
			for idx := int(codes[s]); idx < 1<<fastBits; idx += step {
				d.fast[idx] = int32(s)<<8 | int32(l)
			}
		} else {
			d.slow[codes[s]|uint64(l)<<58] = s
		}
	}
	return d
}

// decode reads one symbol from r.
func (d *huffDecoder) decode(r *BitReader) (int, error) {
	// Peek up to maxL bits without a peek API: read incrementally.
	var code uint64
	var n uint
	for n < uint(d.maxL) {
		// Try fast path once we have fastBits (or all remaining bits).
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code |= b << n
		n++
		if n <= fastBits {
			e := d.fast[code&((1<<fastBits)-1)]
			if e >= 0 && uint(e&0xff) == n {
				return int(e >> 8), nil
			}
		} else if s, ok := d.slow[code|uint64(n)<<58]; ok {
			return s, nil
		}
	}
	return 0, fmt.Errorf("%w: invalid huffman code", ErrCorrupt)
}

// HuffmanDecode reverses HuffmanEncode.
func HuffmanDecode(data []byte) ([]int, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: huffman header truncated", ErrCorrupt)
	}
	alphabet := int(binary.LittleEndian.Uint32(data[0:]))
	count := int(binary.LittleEndian.Uint32(data[4:]))
	if alphabet < 0 || alphabet > 1<<28 || count < 0 || count > 1<<31 {
		return nil, fmt.Errorf("%w: implausible huffman header (A=%d N=%d)", ErrCorrupt, alphabet, count)
	}
	lengthsC, n, err := GetSection(data[8:])
	if err != nil {
		return nil, err
	}
	lengthsRaw, err := Inflate(lengthsC, int64(alphabet))
	if err != nil {
		return nil, err
	}
	if len(lengthsRaw) != alphabet {
		return nil, fmt.Errorf("%w: huffman length table size %d, want %d", ErrCorrupt, len(lengthsRaw), alphabet)
	}
	lengths := make([]uint8, alphabet)
	copy(lengths, lengthsRaw)
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("%w: code length %d too large", ErrCorrupt, l)
		}
	}
	payloadOff := 8 + n
	if count == 0 {
		return []int{}, nil
	}
	if maxLen(lengths) == 0 {
		return nil, fmt.Errorf("%w: nonzero count with empty code table", ErrCorrupt)
	}
	dec := newHuffDecoder(lengths)
	r := NewBitReader(data[payloadOff:])
	out := make([]int, count)
	for i := 0; i < count; i++ {
		s, err := dec.decode(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
