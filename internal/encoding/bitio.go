// Package encoding provides the lossless back end shared by the compressors:
// bit-level I/O, a canonical Huffman coder over bounded integer alphabets,
// zigzag/varint integer streams, and DEFLATE wrapping. All encoders produce
// self-describing byte slices that their decoders validate defensively, so a
// truncated or corrupted fragment yields an error instead of silent garbage.
package encoding

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports a malformed or truncated encoded stream.
var ErrCorrupt = errors.New("encoding: corrupt stream")

// BitWriter accumulates bits LSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint // bits occupied in cur (< 64)
}

// NewBitWriter returns an empty writer with capacity hint n bytes.
func NewBitWriter(n int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, n)}
}

// WriteBits writes the low nb bits of v (nb ≤ 57 per call).
func (w *BitWriter) WriteBits(v uint64, nb uint) {
	if nb > 57 {
		panic("encoding: WriteBits supports at most 57 bits per call")
	}
	w.cur |= (v & ((1 << nb) - 1)) << w.nCur
	w.nCur += nb
	for w.nCur >= 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur >>= 8
		w.nCur -= 8
	}
}

// WriteBit writes a single bit.
func (w *BitWriter) WriteBit(b uint64) { w.WriteBits(b&1, 1) }

// Len returns the number of whole bytes flushed so far plus pending bits
// rounded up.
func (w *BitWriter) Len() int {
	n := len(w.buf)
	if w.nCur > 0 {
		n++
	}
	return n
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer. The
// writer remains usable; subsequent writes continue at a byte boundary.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur = 0
		w.nCur = 0
	}
	return w.buf
}

// BitReader reads bits LSB-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int // next byte index
	cur  uint64
	nCur uint
}

// NewBitReader wraps buf.
func NewBitReader(buf []byte) *BitReader {
	return &BitReader{buf: buf}
}

// ReadBits reads nb bits (nb ≤ 57). It returns ErrCorrupt past end of input.
func (r *BitReader) ReadBits(nb uint) (uint64, error) {
	if nb > 57 {
		panic("encoding: ReadBits supports at most 57 bits per call")
	}
	for r.nCur < nb {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("%w: bit stream exhausted", ErrCorrupt)
		}
		r.cur |= uint64(r.buf[r.pos]) << r.nCur
		r.pos++
		r.nCur += 8
	}
	v := r.cur & ((1 << nb) - 1)
	r.cur >>= nb
	r.nCur -= nb
	return v, nil
}

// ReadBit reads one bit.
func (r *BitReader) ReadBit() (uint64, error) { return r.ReadBits(1) }

// Remaining returns a conservative count of unread bits.
func (r *BitReader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nCur)
}
