package encoding

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ZigZag maps a signed integer to an unsigned one with small magnitudes
// staying small: 0,-1,1,-2,2 → 0,1,2,3,4.
func ZigZag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// PutUvarints encodes vals as a length-prefixed varint stream.
func PutUvarints(vals []uint64) []byte {
	buf := make([]byte, 0, len(vals)+10)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(vals)))
	buf = append(buf, tmp[:n]...)
	for _, v := range vals {
		n = binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// GetUvarints decodes a stream produced by PutUvarints and returns the
// values plus the number of bytes consumed.
func GetUvarints(data []byte) ([]uint64, int, error) {
	cnt, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: varint count", ErrCorrupt)
	}
	if cnt > uint64(len(data)) { // each value takes ≥ 1 byte
		return nil, 0, fmt.Errorf("%w: varint count %d exceeds stream", ErrCorrupt, cnt)
	}
	off := n
	out := make([]uint64, cnt)
	for i := range out {
		v, m := binary.Uvarint(data[off:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("%w: varint value %d", ErrCorrupt, i)
		}
		out[i] = v
		off += m
	}
	return out, off, nil
}

// Deflate compresses data with DEFLATE at the given level (1..9; 0 means
// flate.DefaultCompression).
func Deflate(data []byte, level int) ([]byte, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	var b bytes.Buffer
	w, err := flate.NewWriter(&b, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Inflate reverses Deflate. maxSize bounds the decoded size to guard against
// decompression bombs from corrupted fragments (0 = 1 GiB default).
func Inflate(data []byte, maxSize int64) ([]byte, error) {
	if maxSize <= 0 {
		maxSize = 1 << 30
	}
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	var b bytes.Buffer
	n, err := io.Copy(&b, io.LimitReader(r, maxSize+1))
	if err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
	}
	if n > maxSize {
		return nil, fmt.Errorf("%w: inflated size exceeds limit %d", ErrCorrupt, maxSize)
	}
	return b.Bytes(), nil
}

// PutFloat64s encodes a float64 slice little-endian with a length prefix.
func PutFloat64s(vals []float64) []byte {
	buf := make([]byte, 4+8*len(vals))
	binary.LittleEndian.PutUint32(buf, uint32(len(vals)))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[4+8*i:], math.Float64bits(v))
	}
	return buf
}

// GetFloat64s decodes PutFloat64s output, returning values and bytes read.
func GetFloat64s(data []byte) ([]float64, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("%w: float block header", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(data))
	need := 4 + 8*n
	if n < 0 || len(data) < need {
		return nil, 0, fmt.Errorf("%w: float block truncated (want %d values)", ErrCorrupt, n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[4+8*i:]))
	}
	return out, need, nil
}

// Section framing: a simple tag+length container so multi-part fragments are
// self-describing.

// PutSection appends a framed section (u32 length + payload) to dst.
func PutSection(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// GetSection reads one framed section, returning payload and bytes consumed.
func GetSection(data []byte) ([]byte, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("%w: section header", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n < 0 || len(data) < 4+n {
		return nil, 0, fmt.Errorf("%w: section truncated (want %d bytes, have %d)", ErrCorrupt, n, len(data)-4)
	}
	return data[4 : 4+n], 4 + n, nil
}
