// Package netsim models the paper's remote-retrieval experiment (§VI-D):
// refactored data lives at a storage site, a compute site requests QoIs,
// and fragments cross a wide-area link (the paper uses Globus between the
// MCC and Anvil clusters; 96 workers each own one data block).
//
// The link is simulated in virtual time — bandwidth, per-request latency,
// and fair sharing among concurrent streams — while the per-block QoI
// retrieval work itself runs for real on goroutine workers. This preserves
// exactly what Fig. 9 measures: transfer time driven by the byte counts the
// QoI-preserving pipeline actually retrieves, compared against shipping the
// raw data.
package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Link describes a wide-area link.
type Link struct {
	// BandwidthBps is the aggregate bandwidth in bytes per second.
	BandwidthBps float64
	// LatencySec is the per-request round-trip latency in seconds.
	LatencySec float64
}

// DefaultGlobusLink is calibrated so the paper's raw-data baseline holds:
// 4.67 GB in ≈11.7 s ⇒ ≈0.4 GB/s effective aggregate bandwidth.
var DefaultGlobusLink = Link{BandwidthBps: 0.4e9, LatencySec: 0.05}

// TransferTime returns the virtual time to move one stream of n bytes over
// the link when `streams` streams share it fairly. One logical request pays
// one latency.
func (l Link) TransferTime(n int64, streams int) time.Duration {
	if streams < 1 {
		streams = 1
	}
	if n < 0 {
		n = 0
	}
	per := l.BandwidthBps / float64(streams)
	sec := l.LatencySec + float64(n)/per
	return time.Duration(sec * float64(time.Second))
}

// BlockResult is one worker's outcome.
type BlockResult struct {
	Block     int
	Bytes     int64         // fragment bytes pulled over the link
	Requests  int           // number of link requests (latency charges)
	WorkTime  time.Duration // real CPU time spent reconstructing/estimating
	LinkTime  time.Duration // virtual time on the wire
	TotalTime time.Duration // LinkTime + WorkTime
	Err       error
}

// BlockFunc performs the retrieval work of one block. It receives a
// Session-scoped fetch recorder to install as the progressive.FetchFunc of
// its readers, and returns the number of bytes it (separately) verified as
// retrieved — used as a cross-check against the recorder.
type BlockFunc func(block int, rec *Recorder) error

// Recorder tallies the fragment fetches of one block's retrieval. It is
// safe for use from the single worker goroutine that owns the block.
type Recorder struct {
	bytes    int64
	requests int
}

// Observe implements the progressive.FetchFunc signature.
func (r *Recorder) Observe(fragIndex int, size int64) {
	r.bytes += size
	r.requests++
}

// Bytes returns the recorded byte total.
func (r *Recorder) Bytes() int64 { return r.bytes }

// Requests returns the recorded request count.
func (r *Recorder) Requests() int { return r.requests }

// RunResult aggregates a parallel transfer experiment.
type RunResult struct {
	Blocks []BlockResult
	// TotalBytes is the sum over blocks.
	TotalBytes int64
	// Makespan is the virtual completion time: the max over workers of
	// (work + wire) time, with the link shared by all active workers.
	Makespan time.Duration
}

// Run executes fn for blocks 0..nBlocks-1 on `workers` goroutines and
// produces per-block and aggregate timings over the link. Fragments fetched
// by a block are batched into one logical transfer per block (Globus-style
// bulk movement), so each block pays one latency plus its bytes at the fair
// bandwidth share.
func Run(nBlocks, workers int, link Link, fn BlockFunc) (*RunResult, error) {
	if nBlocks <= 0 {
		return nil, fmt.Errorf("netsim: nBlocks must be positive, got %d", nBlocks)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	results := make([]BlockResult, nBlocks)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				rec := &Recorder{}
				start := time.Now()
				err := fn(b, rec)
				work := time.Since(start)
				results[b] = BlockResult{
					Block:    b,
					Bytes:    rec.bytes,
					Requests: rec.requests,
					WorkTime: work,
					Err:      err,
				}
			}
		}()
	}
	for b := 0; b < nBlocks; b++ {
		next <- b
	}
	close(next)
	wg.Wait()

	out := &RunResult{Blocks: results}
	for i := range results {
		if results[i].Err != nil {
			return nil, fmt.Errorf("netsim: block %d: %w", i, results[i].Err)
		}
		out.TotalBytes += results[i].Bytes
	}
	// Virtual wire model: all `workers` streams are concurrently active (the
	// steady-state of a balanced run), each block pays one latency and ships
	// its bytes at the fair share. Workers process ceil(nBlocks/workers)
	// blocks sequentially; makespan is the max per-worker sum.
	perWorker := make([]time.Duration, workers)
	for i := range results {
		w := i % workers
		lt := link.TransferTime(results[i].Bytes, workers)
		results[i].LinkTime = lt
		results[i].TotalTime = lt + results[i].WorkTime
		perWorker[w] += results[i].TotalTime
	}
	for _, t := range perWorker {
		if t > out.Makespan {
			out.Makespan = t
		}
	}
	return out, nil
}

// RawTransferTime returns the virtual time to ship `bytes` of unreduced
// data over the link using `workers` balanced streams — the dashed baseline
// of Fig. 9.
func RawTransferTime(bytes int64, workers int, link Link) time.Duration {
	if workers < 1 {
		workers = 1
	}
	per := (bytes + int64(workers) - 1) / int64(workers)
	return link.TransferTime(per, workers)
}
