package netsim

import (
	"errors"
	"testing"
	"time"
)

func TestTransferTimeBasic(t *testing.T) {
	l := Link{BandwidthBps: 1e9, LatencySec: 0.1}
	// One stream: 1 GB at 1 GB/s + 0.1 s latency = 1.1 s.
	got := l.TransferTime(1e9, 1)
	want := 1100 * time.Millisecond
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Two streams halve the per-stream bandwidth.
	got2 := l.TransferTime(1e9, 2)
	want2 := 2100 * time.Millisecond
	if d := got2 - want2; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("got %v, want %v", got2, want2)
	}
}

func TestTransferTimeDegenerate(t *testing.T) {
	l := Link{BandwidthBps: 1e9, LatencySec: 0}
	if l.TransferTime(0, 1) != 0 {
		t.Fatal("zero bytes zero latency should be instant")
	}
	if l.TransferTime(-5, 0) != 0 {
		t.Fatal("negative bytes should clamp")
	}
}

func TestDefaultGlobusBaseline(t *testing.T) {
	// The paper's raw baseline: 4.67 GB over 96 workers ≈ 11.7 s.
	got := RawTransferTime(4.67e9, 96, DefaultGlobusLink)
	if got < 10*time.Second || got > 14*time.Second {
		t.Fatalf("raw baseline %v, want ≈11.7 s", got)
	}
}

func TestRunAggregates(t *testing.T) {
	res, err := Run(8, 4, Link{BandwidthBps: 1e9, LatencySec: 0.01}, func(b int, rec *Recorder) error {
		rec.Observe(0, int64(1000*(b+1)))
		rec.Observe(1, 500)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for b := 0; b < 8; b++ {
		want += int64(1000*(b+1)) + 500
	}
	if res.TotalBytes != want {
		t.Fatalf("TotalBytes = %d, want %d", res.TotalBytes, want)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan should be positive")
	}
	for _, b := range res.Blocks {
		if b.Requests != 2 {
			t.Fatalf("block %d requests = %d", b.Block, b.Requests)
		}
		if b.TotalTime < b.LinkTime {
			t.Fatal("total < link time")
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(4, 2, DefaultGlobusLink, func(b int, rec *Recorder) error {
		if b == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(0, 1, DefaultGlobusLink, nil); err == nil {
		t.Fatal("zero blocks accepted")
	}
}

func TestRunWorkerClamp(t *testing.T) {
	// More workers than blocks must not deadlock or drop blocks.
	res, err := Run(3, 100, Link{BandwidthBps: 1e9}, func(b int, rec *Recorder) error {
		rec.Observe(0, 10)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 30 {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
}

func TestFewerBytesFasterMakespan(t *testing.T) {
	run := func(perBlock int64) time.Duration {
		res, err := Run(16, 8, DefaultGlobusLink, func(b int, rec *Recorder) error {
			rec.Observe(0, perBlock)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if small, big := run(1e6), run(1e8); small >= big {
		t.Fatalf("smaller transfers should finish earlier: %v vs %v", small, big)
	}
}
