// histogram.go — a fixed-bucket, lock-free histogram with Prometheus
// text exposition rendering. No dependencies: the serving tier exposes
// latency and size distributions without pulling in client_golang.

package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. Observe is
// lock-free (two atomic adds and a CAS loop for the sum) so it sits on
// request paths. Bucket upper bounds are set at construction and never
// change; the +Inf bucket is implicit.
type Histogram struct {
	upper  []float64 // ascending upper bounds, excluding +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. It panics on an empty or unsorted bound list — bucket
// layouts are compile-time decisions, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	upper := make([]float64, len(bounds))
	copy(upper, bounds)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~16) and branch-predictable,
	// beating binary search at this size without allocating.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts is per-bucket (non-cumulative) with the +Inf bucket last, so
// len(Counts) == len(Bounds)+1.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. Counters are read
// individually, so a snapshot taken under concurrent Observe calls is
// approximately — not transactionally — consistent, which is all the
// exposition format promises anyway.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.upper,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// LatencyBuckets is the default bucket layout for request latencies in
// seconds: 500 µs to 10 s, roughly geometric.
func LatencyBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// ByteBuckets is the default bucket layout for payload sizes in bytes:
// 256 B to 64 MiB in ×4 steps.
func ByteBuckets() []float64 {
	return []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
}

// WriteFamilyHeader writes the # HELP and # TYPE lines for one metric
// family. Call once per family, then WriteHistogramSeries (or plain
// sample lines) for each label set.
func WriteFamilyHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteHistogramSeries writes the _bucket/_sum/_count sample lines for
// one labelled series of a histogram family. labels is the rendered
// inner label list (e.g. `route="frag"`) or "" for an unlabelled
// series; the le label is appended per exposition rules.
func WriteHistogramSeries(w io.Writer, name, labels string, s HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatBound(b), cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatValue(s.Sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(s.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
}

// formatBound renders a bucket bound the way Prometheus does: shortest
// round-trippable float.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatValue renders a sample value.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
