package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets are (..1], (1..10], (10..100], (100..+Inf).
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-1066.5) > 1e-9 {
		t.Fatalf("sum %g, want 1066.5", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets()...)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g+1) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	var sumBuckets int64
	for _, c := range s.Counts {
		sumBuckets += c
	}
	if sumBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", sumBuckets, s.Count)
	}
	want := float64(per) * 0.001 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8)
	if math.Abs(s.Sum-want) > 1e-6 {
		t.Fatalf("sum %g, want %g", s.Sum, want)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

// TestHistogramExpositionRoundTrip renders a histogram family and
// feeds it back through the package's own exposition parser — the
// writer and the validator must agree on the format.
func TestHistogramExpositionRoundTrip(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	var buf bytes.Buffer
	WriteFamilyHeader(&buf, "x_duration_seconds", "histogram", "Request latency.")
	WriteHistogramSeries(&buf, "x_duration_seconds", `route="frag"`, h.Snapshot())
	WriteHistogramSeries(&buf, "x_duration_seconds", "", h.Snapshot())

	out := buf.String()
	for _, want := range []string{
		`x_duration_seconds_bucket{route="frag",le="0.001"} 1`,
		`x_duration_seconds_bucket{route="frag",le="+Inf"} 3`,
		`x_duration_seconds_count{route="frag"} 3`,
		`x_duration_seconds_bucket{le="+Inf"} 3`,
		"x_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}

	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own output failed own parser: %v", err)
	}
	f := fams["x_duration_seconds"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("family not parsed: %+v", f)
	}
	// 2 series × (4 buckets + sum + count) = 12 samples.
	if f.Samples != 12 {
		t.Fatalf("samples %d, want 12", f.Samples)
	}
}
