// Package obs is the shared observability layer for the progressive
// retrieval stack: a low-overhead span recorder for tracing one
// Session.Do end to end, request-ID generation and context plumbing so
// the ID crosses process boundaries as an X-Request-Id header, and a
// Chrome trace_event JSON writer so a recorded retrieval is inspectable
// in chrome://tracing or Perfetto.
//
// The recorder is built around one invariant: when tracing is off the
// hot path must not change. Every method on *Trace is nil-safe, Begin
// on a nil trace returns a zero SpanMark (a value, never a heap
// allocation), and End on a zero mark is a no-op — so call sites guard
// with a single pointer comparison and pay nothing when disabled.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories used across the stack. A span's Cat picks its lane in
// the Chrome trace view; Name carries the human detail (variable name,
// endpoint, fragment id).
const (
	CatDo       = "do"       // one whole Session.Do / Retrieve call
	CatPlan     = "plan"     // need-list construction for an iteration
	CatFetch    = "fetch"    // wire fetches; Bytes mirrors Stats.WireBytes
	CatDecode   = "decode"   // bitplane ingest per variable
	CatCommit   = "commit"   // block commit (reconstruction) per variable
	CatEstimate = "estimate" // QoI error estimation per iteration
	CatHTTP     = "http"     // individual HTTP attempts (raw, incl. retries)
	CatStore    = "store"    // object-store wire fetches; Bytes mirrors cold-fetch counters
)

// Span is one timed phase of a retrieval. Fields are fixed-width so a
// recorded span never drags a map or interface along; Start is relative
// to the trace origin.
type Span struct {
	Cat   string        // category, one of the Cat* constants
	Name  string        // detail: variable, endpoint, fragment batch
	Iter  int           // retrieval iteration (0 when not iteration-scoped)
	Start time.Duration // offset from the trace origin
	Dur   time.Duration // span duration
	Bytes int64         // wire bytes accounted inside this span (fetch spans only)
}

// Trace records spans for one retrieval. It is safe for concurrent use:
// parallel decode workers and shard fetchers append under one mutex.
// The zero value is not usable; construct with NewTrace. A nil *Trace
// is valid everywhere and records nothing.
type Trace struct {
	id     string
	origin time.Time

	mu    sync.Mutex
	spans []Span // guarded by mu
}

// NewTrace returns an empty trace with a fresh request ID and the
// origin pinned to now.
func NewTrace() *Trace {
	return &Trace{id: NewID(), origin: time.Now()}
}

// ID returns the trace's request ID ("" on a nil trace). The same ID is
// propagated to every server the retrieval touches.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanMark is an open span returned by Begin. It is a plain value: a
// zero SpanMark (from Begin on a nil trace) costs nothing to create and
// its End methods no-op.
type SpanMark struct {
	t     *Trace
	cat   string
	name  string
	iter  int
	start time.Duration
}

// Begin opens a span. On a nil trace it returns a zero mark.
func (t *Trace) Begin(cat, name string) SpanMark {
	return t.BeginIter(cat, name, 0)
}

// BeginIter opens a span tagged with a retrieval iteration number.
func (t *Trace) BeginIter(cat, name string, iter int) SpanMark {
	if t == nil {
		return SpanMark{}
	}
	return SpanMark{t: t, cat: cat, name: name, iter: iter, start: time.Since(t.origin)}
}

// End closes the span with no byte accounting.
func (m SpanMark) End() { m.EndBytes(0) }

// EndBytes closes the span, recording the wire bytes it accounted.
// Fetch spans call this at exactly the points where the client's
// WireBytes counter is incremented, so summing Bytes over a trace's
// fetch spans reconciles with Stats.WireBytes.
func (m SpanMark) EndBytes(n int64) {
	if m.t == nil {
		return
	}
	s := Span{Cat: m.cat, Name: m.name, Iter: m.iter, Start: m.start, Bytes: n}
	s.Dur = time.Since(m.t.origin) - m.start
	m.t.mu.Lock()
	m.t.spans = append(m.t.spans, s)
	m.t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// FetchBytes sums Bytes over the trace's fetch spans — the traced view
// of the client's wire-byte accounting.
func (t *Trace) FetchBytes() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, s := range t.spans {
		if s.Cat == CatFetch {
			n += s.Bytes
		}
	}
	return n
}

// chromeEvent is one trace_event record. Only "X" (complete) and "M"
// (metadata) phases are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace emits the trace in Chrome trace_event JSON (the
// {"traceEvents": [...]} object form), one lane per span category, for
// chrome://tracing or https://ui.perfetto.dev. Lanes are ordered by
// first appearance so the "do" umbrella span sits on top.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace")
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	lane := map[string]int{}
	var events []chromeEvent
	for _, s := range spans {
		tid, ok := lane[s.Cat]
		if !ok {
			tid = len(lane) + 1
			lane[s.Cat] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": s.Cat},
			})
		}
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
			Args: map[string]any{"iter": s.Iter},
		}
		if s.Bytes > 0 {
			ev.Args["bytes"] = s.Bytes
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents     []chromeEvent     `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		Metadata        map[string]string `json:"metadata,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"request_id": t.ID()},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// idCounter backs the fallback ID path when crypto/rand is unavailable.
var idCounter atomic.Int64

// NewID returns a 16-hex-character request ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

type traceKey struct{}
type requestIDKey struct{}

// ContextWithTrace attaches a trace to the context so layers below the
// retriever (client, shard fetchers) can record spans. Attaching a nil
// trace returns ctx unchanged.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ContextWithRequestID attaches a request ID for propagation as an
// X-Request-Id header. An empty ID returns ctx unchanged.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RequestIDHeader is the header name used to propagate request IDs from
// client to server, where it is logged and echoed back.
const RequestIDHeader = "X-Request-Id"

// SanitizeRequestID validates an inbound request ID for logging and
// echoing: at most 64 bytes of [A-Za-z0-9._-]. Anything else returns ""
// so hostile header values never reach logs verbatim.
func SanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}
