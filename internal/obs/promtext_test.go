package obs

import (
	"strings"
	"testing"
)

func TestParseExpositionValid(t *testing.T) {
	in := `# HELP up Whether the target is up.
# TYPE up gauge
up 1
# HELP reqs_total Requests served.
# TYPE reqs_total counter
reqs_total{route="frag"} 12
reqs_total{route="meta"} 3
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 0.42
lat_seconds_count 3
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams["reqs_total"].Samples != 2 || fams["reqs_total"].Type != "counter" {
		t.Fatalf("reqs_total: %+v", fams["reqs_total"])
	}
	if fams["lat_seconds"].Samples != 4 {
		t.Fatalf("histogram children not attributed: %+v", fams["lat_seconds"])
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without metadata": "orphan_total 1\n",
		"missing TYPE":            "# HELP x y\nx 1\n",
		"missing HELP":            "# TYPE x counter\nx 1\n",
		"bad value":               "# HELP x y\n# TYPE x counter\nx notanumber\n",
		"bad sample line":         "# HELP x y\n# TYPE x counter\nx{,} 1\n",
		"bad label pair":          "# HELP x y\n# TYPE x counter\nx{route=frag} 1\n",
		"unknown type":            "# TYPE x sparkline\n",
		"duplicate TYPE":          "# TYPE x counter\n# TYPE x counter\n",
		"duplicate HELP":          "# HELP x a\n# HELP x b\n",
		"malformed TYPE line":     "# TYPE onlyname\n",
		"bucket without family":   "lat_bucket{le=\"+Inf\"} 1\n",
		"bucket of a counter":     "# HELP c y\n# TYPE c counter\nc_bucket{le=\"1\"} 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseExpositionSpecialValues(t *testing.T) {
	in := "# HELP x y\n# TYPE x gauge\nx{a=\"b\"} +Inf\nx{a=\"c\"} NaN\nx{a=\"d\"} 1.5e-9 1700000000\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fams["x"].Samples != 3 {
		t.Fatalf("samples %d, want 3", fams["x"].Samples)
	}
}
