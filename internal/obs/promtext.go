// promtext.go — a minimal Prometheus text-exposition (version 0.0.4)
// parser. It exists so e2e tests can scrape a live /metrics endpoint
// and fail on malformed lines or families missing their # HELP/# TYPE
// metadata, without depending on the real Prometheus client libraries.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// MetricFamily is one parsed metric family: its metadata and how many
// sample lines referenced it.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Samples int
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(?:\s+(-?\d+))?$`)
	labelRe      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// ParseExposition parses Prometheus text exposition and validates it
// strictly: every sample line must be well-formed (name, optional
// labels, float value), and every sample must belong to a family that
// declared both # HELP and # TYPE before its first sample. Histogram
// and summary child series (_bucket/_sum/_count, quantile) resolve to
// their base family. Returns the families by name.
func ParseExposition(r io.Reader) (map[string]*MetricFamily, error) {
	fams := map[string]*MetricFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line: %q", lineNo, line)
			}
			f := fams[name]
			if f == nil {
				f = &MetricFamily{Name: name}
				fams[name] = f
			}
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			f.Help = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE line: %q", lineNo, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, parts[1])
			}
			f := fams[parts[0]]
			if f == nil {
				f = &MetricFamily{Name: parts[0]}
				fams[parts[0]] = f
			}
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, parts[0])
			}
			f.Type = parts[1]
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
			}
			name, labels, value := m[1], m[2], m[3]
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				if value != "+Inf" && value != "-Inf" && value != "NaN" {
					return nil, fmt.Errorf("line %d: unparseable sample value %q", lineNo, value)
				}
			}
			if labels != "" {
				if err := validateLabels(labels); err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
			}
			fam := resolveFamily(fams, name)
			if fam == nil || fam.Help == "" || fam.Type == "" {
				return nil, fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE pair", lineNo, name)
			}
			fam.Samples++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// resolveFamily maps a sample name to its declaring family, resolving
// histogram/summary child suffixes to the base family.
func resolveFamily(fams map[string]*MetricFamily, name string) *MetricFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

// validateLabels checks a rendered label block like {a="x",le="+Inf"}.
func validateLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return nil
	}
	for _, pair := range splitLabels(inner) {
		if !labelRe.MatchString(pair) {
			return fmt.Errorf("malformed label pair %q", pair)
		}
	}
	return nil
}

// splitLabels splits on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
