package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace()
	if tr.ID() == "" || len(tr.ID()) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", tr.ID())
	}
	m := tr.BeginIter(CatFetch, "frag a/0/0", 2)
	time.Sleep(time.Millisecond)
	m.EndBytes(128)
	tr.Begin(CatEstimate, "estimate").End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	f := spans[0]
	if f.Cat != CatFetch || f.Name != "frag a/0/0" || f.Iter != 2 || f.Bytes != 128 {
		t.Fatalf("fetch span wrong: %+v", f)
	}
	if f.Dur <= 0 {
		t.Fatalf("fetch span duration %v, want > 0", f.Dur)
	}
	if got := tr.FetchBytes(); got != 128 {
		t.Fatalf("FetchBytes %d, want 128", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Spans() != nil || tr.FetchBytes() != 0 {
		t.Fatal("nil trace leaked state")
	}
	m := tr.Begin(CatPlan, "x")
	m.End()
	m.EndBytes(10) // double-End on a zero mark must also be a no-op
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteChromeTrace on nil trace should error")
	}
}

// TestTraceDisabledZeroAlloc is the acceptance proof that the no-trace
// path adds zero allocations: Begin/End on a nil trace and the context
// helpers with nil/empty inputs must not touch the heap.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	var tr *Trace
	ctx := context.Background()
	n := testing.AllocsPerRun(1000, func() {
		m := tr.BeginIter(CatFetch, "frag", 1)
		m.EndBytes(4096)
		_ = TraceFrom(ctx)
		_ = RequestIDFrom(ctx)
		_ = ContextWithTrace(ctx, nil)
		_ = ContextWithRequestID(ctx, "")
	})
	if n != 0 {
		t.Fatalf("disabled tracing allocates %v times per op, want 0", n)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.BeginIter(CatDecode, "v", i).EndBytes(1)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTrace()
	ctx := ContextWithTrace(context.Background(), tr)
	ctx = ContextWithRequestID(ctx, tr.ID())
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if RequestIDFrom(ctx) != tr.ID() {
		t.Fatal("RequestIDFrom lost the ID")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace()
	tr.Begin(CatDo, "Do").End()
	tr.BeginIter(CatFetch, "frags ge", 1).EndBytes(2048)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	// 2 spans + 2 thread_name metadata events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	if doc.Metadata["request_id"] != tr.ID() {
		t.Fatalf("metadata request_id %q, want %q", doc.Metadata["request_id"], tr.ID())
	}
	var lanes, complete int
	var sawBytes bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			lanes++
		case "X":
			complete++
			if ev.Args["bytes"] == float64(2048) {
				sawBytes = true
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if lanes != 2 || complete != 2 || !sawBytes {
		t.Fatalf("lanes=%d complete=%d sawBytes=%v", lanes, complete, sawBytes)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := map[string]string{
		"abc-123_X.y":           "abc-123_X.y",
		"":                      "",
		"has space":             "",
		"inject\nheader":        "",
		strings.Repeat("a", 64): strings.Repeat("a", 64),
		strings.Repeat("a", 65): "",
		"quote\"":               "",
		"0123456789abcdef":      "0123456789abcdef",
	}
	for in, want := range cases {
		if got := SanitizeRequestID(in); got != want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}
