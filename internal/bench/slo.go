package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"

	"progqoi/internal/server"
)

// SLO pins the latency and correctness envelope a Summary must satisfy —
// the contract the slo-gate CI job enforces. Like the benchmark
// baselines, an SLO file records the CPU count of the machine that set
// its ceilings: latency ceilings are only meaningfully comparable on the
// same hardware class, so the perf gates arm (hard-fail) exactly when
// the recorded CPUs match the evaluating runner and stay advisory
// otherwise. Correctness gates — zero failed sessions, bit-identical
// results (a divergence fails the session) — are armed unconditionally.
type SLO struct {
	// Note is free-form provenance (where the ceilings were recorded).
	Note string `json:"note"`
	// CPUs is runtime.NumCPU() on the machine that recorded the
	// ceilings; the perf gates are hard only when it matches.
	CPUs int `json:"cpus"`
	// P99CeilingSeconds caps each tenant's p99 Do latency, keyed by
	// tenant name. Tenants without an entry are not latency-gated.
	P99CeilingSeconds map[string]float64 `json:"p99CeilingSeconds"`
	// FairnessP99Ratio caps every interactive tenant's p99 at this
	// multiple of the slowest bulk tenant's p99 — the "bulk never
	// starves interactive" floor. Zero disables the check.
	FairnessP99Ratio float64 `json:"fairnessP99Ratio"`
}

// LoadSLO reads an SLO file, rejecting unknown fields.
func LoadSLO(path string) (SLO, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return SLO{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s SLO
	if err := dec.Decode(&s); err != nil {
		return SLO{}, fmt.Errorf("bench: slo %s: %w", path, err)
	}
	return s, nil
}

// Armed reports whether the perf gates are hard on this machine.
func (s SLO) Armed() bool { return s.CPUs == runtime.NumCPU() }

// RecordSLO derives a fresh SLO from one run's measurements: each
// tenant's p99 ceiling is twice its measured p99 (headroom for run-to-run
// noise without letting a real regression hide), rounded up to 10ms,
// armed for this machine's CPU class. The fairness floor keeps the
// standard 1.5x ratio — it is a design invariant of the two-class queue,
// not a hardware measurement.
func RecordSLO(sum *Summary) SLO {
	ceil := map[string]float64{}
	for _, t := range sum.Tenants {
		c := math.Ceil(t.P99*2*100) / 100
		if c < 0.05 {
			c = 0.05
		}
		ceil[t.Name] = c
	}
	return SLO{
		Note: fmt.Sprintf("recorded by progqoibench -record-slo from scenario %q on a %d-CPU machine; "+
			"ceilings are 2x the measured p99. Zero failed sessions and bit-identical results are enforced unconditionally.",
			sum.Scenario, sum.CPUs),
		CPUs:              sum.CPUs,
		P99CeilingSeconds: ceil,
		FairnessP99Ratio:  1.5,
	}
}

// Evaluate checks sum against the SLO. hard violations fail the gate on
// any machine (correctness: failed sessions); perf violations (p99
// ceilings, fairness floor) fail only when Armed and are advisory
// otherwise.
func (s SLO) Evaluate(sum *Summary) (hard, perf []string) {
	var slowestBulkP99 float64
	for _, t := range sum.Tenants {
		if t.FailedSessions > 0 {
			msg := fmt.Sprintf("tenant %s: %d of %d sessions failed", t.Name, t.FailedSessions, t.Sessions)
			if len(t.Errors) > 0 {
				msg += " (first: " + t.Errors[0] + ")"
			}
			hard = append(hard, msg)
		}
		if t.Requests == 0 && t.Sessions > 0 {
			hard = append(hard, fmt.Sprintf("tenant %s: no requests completed", t.Name))
		}
		if ceil, ok := s.P99CeilingSeconds[t.Name]; ok && t.P99 > ceil {
			perf = append(perf, fmt.Sprintf("tenant %s: p99 %.3fs over ceiling %.3fs", t.Name, t.P99, ceil))
		}
		if t.Class == server.ClassBulk && t.P99 > slowestBulkP99 {
			slowestBulkP99 = t.P99
		}
	}
	if s.FairnessP99Ratio > 0 && slowestBulkP99 > 0 {
		floor := s.FairnessP99Ratio * slowestBulkP99
		for _, t := range sum.Tenants {
			if t.RateLimited > 0 {
				// A throttled tenant's latency is its own rate limiter
				// working (Retry-After waits), not bulk starvation; it is
				// still covered by its absolute p99 ceiling.
				continue
			}
			if t.Class != server.ClassBulk && t.P99 > floor {
				perf = append(perf, fmt.Sprintf(
					"fairness: interactive tenant %s p99 %.3fs exceeds %.2fx slowest bulk p99 (%.3fs): bulk load is starving interactive",
					t.Name, t.P99, s.FairnessP99Ratio, slowestBulkP99))
			}
		}
	}
	return hard, perf
}
