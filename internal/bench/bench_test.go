package bench

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"progqoi"
	"progqoi/internal/server"
)

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	one := []float64{0.7}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := quantile(one, p); q != 0.7 {
			t.Fatalf("quantile(one, %g) = %g, want 0.7", p, q)
		}
	}
	// Nearest-rank over 1..10: p50 is the 5th value, p99 the 10th.
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(ten, 0.50); q != 5 {
		t.Fatalf("p50 = %g, want 5", q)
	}
	if q := quantile(ten, 0.99); q != 10 {
		t.Fatalf("p99 = %g, want 10", q)
	}
}

func TestToleranceAt(t *testing.T) {
	if got := toleranceAt(0, 1e-3); got != 1e-1 {
		t.Fatalf("request 0: %g, want 1e-1", got)
	}
	if got := toleranceAt(1, 1e-3); got != 1e-2 {
		t.Fatalf("request 1: %g, want 1e-2", got)
	}
	for r := 2; r < 5; r++ {
		if got := toleranceAt(r, 1e-3); got != 1e-3 {
			t.Fatalf("request %d: %g, want 1e-3", r, got)
		}
	}
}

func TestTargetsFor(t *testing.T) {
	fields := []string{"VelocityX", "VelocityY", "VelocityZ", "Pressure", "Density"}
	wantLen := []int{1, 1, 2} // velocity-only, temperature-only, both
	for si := 0; si < 6; si++ {
		targets, err := targetsFor(si, 1e-3, fields)
		if err != nil {
			t.Fatalf("targetsFor(%d): %v", si, err)
		}
		if len(targets) != wantLen[si%3] {
			t.Fatalf("session %d: %d targets, want %d", si, len(targets), wantLen[si%3])
		}
		for _, tg := range targets {
			if tg.Tolerance != 1e-3 {
				t.Fatalf("session %d: tolerance %g, want 1e-3", si, tg.Tolerance)
			}
		}
	}
	// The derived-temperature QoI needs Pressure and Density.
	if _, err := targetsFor(1, 1e-3, []string{"VelocityX"}); err == nil {
		t.Fatal("targetsFor with missing fields: want error")
	}
}

func TestSameResult(t *testing.T) {
	ref := func() *progqoi.Result {
		return &progqoi.Result{
			EstErrors:      []float64{1e-4, 2e-4},
			RetrievedBytes: 1234,
			Data:           [][]float64{{1, 2, 3}, {4, 5, 6}},
		}
	}
	if err := sameResult(ref(), ref()); err != nil {
		t.Fatalf("identical results: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*progqoi.Result)
		wantSub string
	}{
		{"estErrorCount", func(r *progqoi.Result) { r.EstErrors = r.EstErrors[:1] }, "estimated errors"},
		{"estErrorValue", func(r *progqoi.Result) { r.EstErrors[1] = 3e-4 }, "certified error"},
		{"bytes", func(r *progqoi.Result) { r.RetrievedBytes++ }, "bytes"},
		{"varCount", func(r *progqoi.Result) { r.Data = r.Data[:1] }, "data slices"},
		{"pointCount", func(r *progqoi.Result) { r.Data[0] = r.Data[0][:2] }, "points"},
		{"pointValue", func(r *progqoi.Result) { r.Data[1][2] = math.Nextafter(6, 7) }, "point"},
	}
	for _, tc := range cases {
		got := ref()
		tc.mutate(got)
		err := sameResult(ref(), got)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: err %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestLoadScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(path, []byte(`{"name":"tiny","dataset":"d","nodes":1,"tenants":[]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenario(path)
	if err != nil {
		t.Fatalf("LoadScenario: %v", err)
	}
	if sc.Name != "tiny" || sc.Nodes != 1 {
		t.Fatalf("round-trip mismatch: %+v", sc)
	}
	// A typoed knob must fail loudly, not silently benchmark the default.
	if err := os.WriteFile(path, []byte(`{"name":"x","sesions":3}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(path); err == nil {
		t.Fatal("unknown field: want error")
	}
	if _, err := LoadScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestLoadSLO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(path, []byte(`{"note":"n","cpus":4,"p99CeilingSeconds":{"a":0.5},"fairnessP99Ratio":1.5}`), 0o600); err != nil {
		t.Fatal(err)
	}
	slo, err := LoadSLO(path)
	if err != nil {
		t.Fatalf("LoadSLO: %v", err)
	}
	if slo.CPUs != 4 || slo.P99CeilingSeconds["a"] != 0.5 {
		t.Fatalf("round-trip mismatch: %+v", slo)
	}
	if err := os.WriteFile(path, []byte(`{"cpuz":4}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSLO(path); err == nil {
		t.Fatal("unknown field: want error")
	}
	if _, err := LoadSLO(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestRecordSLO(t *testing.T) {
	sum := &Summary{
		Scenario: "rec",
		CPUs:     runtime.NumCPU(),
		Tenants: []TenantSummary{
			{Name: "fast", P99: 0.001},  // 2x = 0.002 → clamped to the 0.05 floor
			{Name: "slow", P99: 0.333},  // 2x = 0.666 → rounded up to 0.67
			{Name: "even", P99: 0.1000}, // 2x = 0.2 exactly
		},
	}
	slo := RecordSLO(sum)
	if !slo.Armed() {
		t.Fatal("freshly recorded SLO must be armed on the recording machine")
	}
	if got := slo.P99CeilingSeconds["fast"]; got != 0.05 {
		t.Fatalf("fast ceiling = %g, want floor 0.05", got)
	}
	if got := slo.P99CeilingSeconds["slow"]; got != 0.67 {
		t.Fatalf("slow ceiling = %g, want 0.67", got)
	}
	if got := slo.P99CeilingSeconds["even"]; got != 0.2 {
		t.Fatalf("even ceiling = %g, want 0.2", got)
	}
	if slo.FairnessP99Ratio != 1.5 {
		t.Fatalf("fairness ratio = %g, want 1.5", slo.FairnessP99Ratio)
	}
	if !strings.Contains(slo.Note, "rec") {
		t.Fatalf("note %q does not name the scenario", slo.Note)
	}
}

func TestSLOEvaluate(t *testing.T) {
	slo := SLO{
		CPUs:              runtime.NumCPU(),
		P99CeilingSeconds: map[string]float64{"interactive": 0.5},
		FairnessP99Ratio:  1.5,
	}
	if !slo.Armed() {
		t.Fatal("SLO recorded with this machine's CPU count must be armed")
	}
	if (SLO{CPUs: runtime.NumCPU() + 1}).Armed() {
		t.Fatal("SLO recorded for a different CPU class must not be armed")
	}

	healthy := func() *Summary {
		return &Summary{Tenants: []TenantSummary{
			{Name: "bulk", Class: server.ClassBulk, Sessions: 2, Requests: 8, P99: 0.4},
			{Name: "interactive", Class: server.ClassInteractive, Sessions: 1, Requests: 4, P99: 0.3},
		}}
	}
	if hard, perf := slo.Evaluate(healthy()); len(hard) != 0 || len(perf) != 0 {
		t.Fatalf("healthy summary: hard=%v perf=%v", hard, perf)
	}

	failed := healthy()
	failed.Tenants[0].FailedSessions = 1
	failed.Tenants[0].Errors = []string{"boom"}
	if hard, _ := slo.Evaluate(failed); len(hard) != 1 || !strings.Contains(hard[0], "boom") {
		t.Fatalf("failed sessions: hard=%v", hard)
	}

	silent := healthy()
	silent.Tenants[1].Requests = 0
	if hard, _ := slo.Evaluate(silent); len(hard) != 1 || !strings.Contains(hard[0], "no requests") {
		t.Fatalf("zero requests: hard=%v", hard)
	}

	slow := healthy()
	slow.Tenants[1].P99 = 0.55 // over its 0.5 ceiling, under the 1.5x fairness floor
	if _, perf := slo.Evaluate(slow); len(perf) != 1 || !strings.Contains(perf[0], "ceiling") {
		t.Fatalf("p99 ceiling: perf=%v", perf)
	}

	starved := healthy()
	starved.Tenants[0].P99 = 0.2 // fairness floor is now 0.3...
	starved.Tenants[1].P99 = 0.4 // ...and interactive sits above it
	if _, perf := slo.Evaluate(starved); len(perf) != 1 || !strings.Contains(perf[0], "starving") {
		t.Fatalf("fairness: perf=%v", perf)
	}

	// A throttled tenant's latency is its own rate limiter working, not
	// starvation: the fairness check skips it.
	throttled := healthy()
	throttled.Tenants[0].P99 = 0.2
	throttled.Tenants[1].P99 = 0.4
	throttled.Tenants[1].RateLimited = 3
	if _, perf := slo.Evaluate(throttled); len(perf) != 0 {
		t.Fatalf("throttled tenant must be exempt from fairness: perf=%v", perf)
	}
}

func TestRunAgainstValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunAgainst(ctx, Scenario{Name: "empty"}, nil); err == nil || !strings.Contains(err.Error(), "no tenants") {
		t.Fatalf("no tenants: %v", err)
	}
	sc := Scenario{Name: "nowhere", Tenants: []TenantLoad{{Tenant: server.Tenant{Name: "t", Token: "0123456789"}}}}
	if _, err := RunAgainst(ctx, sc, nil); err == nil || !strings.Contains(err.Error(), "neither endpoints") {
		t.Fatalf("no endpoints: %v", err)
	}
}

// tinyScenario is a cut-down DefaultScenario: one node, two tenants, a
// handful of requests — enough to exercise the full harness (references,
// bit-identity, wire stats) in well under a second of load.
func tinyScenario() Scenario {
	return Scenario{
		Name:        "bench-test-tiny",
		Dataset:     "bench-tiny",
		Blocks:      2,
		BlockSize:   96,
		Seed:        3,
		Nodes:       1,
		MaxInflight: 2,
		Tenants: []TenantLoad{
			{
				Tenant:   server.Tenant{Name: "bulk", Token: "bench-test-bulk-token", RateLimit: 10000, Class: server.ClassBulk},
				Sessions: 2, Requests: 2, Tolerance: 2e-3,
			},
			{
				Tenant:   server.Tenant{Name: "probe", Token: "bench-test-probe-token", RateLimit: 10000},
				Sessions: 1, Requests: 2, Tolerance: 2e-3,
			},
		},
	}
}

func TestRunInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("starts an in-process cluster and runs real retrievals")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sc := tinyScenario()
	cl, err := StartCluster(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sum, err := RunAgainst(ctx, sc, cl)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scenario != sc.Name || sum.Nodes != 1 || sum.CPUs != runtime.NumCPU() {
		t.Fatalf("summary header: %+v", sum)
	}
	if len(sum.Tenants) != 2 {
		t.Fatalf("%d tenant summaries, want 2", len(sum.Tenants))
	}
	for _, ts := range sum.Tenants {
		if ts.FailedSessions != 0 {
			t.Fatalf("tenant %s: %d failed sessions: %v", ts.Name, ts.FailedSessions, ts.Errors)
		}
		wantReqs := int64(0)
		for _, tl := range sc.Tenants {
			if tl.Tenant.Name == ts.Name {
				wantReqs = int64(tl.Sessions * tl.Requests)
			}
		}
		if ts.Requests != wantReqs {
			t.Fatalf("tenant %s: %d completed requests, want %d", ts.Name, ts.Requests, wantReqs)
		}
		if ts.WireRequests < ts.Requests {
			t.Fatalf("tenant %s: wire requests %d < completed %d", ts.Name, ts.WireRequests, ts.Requests)
		}
		if ts.P50 <= 0 || ts.P99 < ts.P50 || ts.Max < ts.P99 || ts.Throughput <= 0 {
			t.Fatalf("tenant %s: implausible quantiles %+v", ts.Name, ts)
		}
	}
	// The zero-value class defaults to interactive in the summary.
	for _, ts := range sum.Tenants {
		if ts.Name == "probe" && ts.Class != server.ClassInteractive {
			t.Fatalf("defaulted class = %q, want interactive", ts.Class)
		}
	}

	// The cluster's wire surface: Stats and strict-parseable /metrics.
	if st := cl.Stats(0); st.Requests == 0 {
		t.Fatal("node 0 served no requests")
	}
	expo, err := cl.Metrics(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo, `progqoid_tenant_requests_total{tenant="bulk",class="bulk"}`) {
		t.Fatal("/metrics lacks the per-tenant requests family")
	}
	if _, err := cl.Metrics(ctx, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRemoteMode(t *testing.T) {
	if testing.Short() {
		t.Skip("starts an in-process cluster and runs real retrievals")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sc := tinyScenario()
	cl, err := StartCluster(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Remote mode: the harness only knows the endpoints, so it skips the
	// bit-identity references and resolves the GE field schema statically.
	remote := sc
	remote.Endpoints = cl.Endpoints
	sum, err := Run(ctx, remote)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range sum.Tenants {
		if ts.FailedSessions != 0 {
			t.Fatalf("tenant %s: %d failed sessions: %v", ts.Name, ts.FailedSessions, ts.Errors)
		}
	}
}
