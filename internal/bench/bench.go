// Package bench is the synthetic load harness behind cmd/progqoibench and
// the slo-gate CI job: it drives N concurrent retrieval sessions with
// mixed QoI targets and tenant identities against a live progqoid cluster
// — in-process (started by this package) or remote (endpoints supplied) —
// and reports per-tenant throughput, latency quantiles (p50/p95/p99),
// and error counts as a machine-readable Summary.
//
// Every session runs the real public API end to end: progqoi.Open with
// WithToken against the full endpoint set, then repeated Session.Do
// calls. The client cache is disabled so each Do exercises the wire, and
// in in-process mode every result is compared bit for bit against a
// local reference retrieval — a throttled tenant is expected to slow
// down, never to diverge.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"progqoi"
	"progqoi/internal/server"
)

// TenantLoad is one tenant's slice of the scenario: its server-side QoS
// envelope plus the client-side load shape driven under that identity.
type TenantLoad struct {
	// Tenant is the server-side tenant definition (name, token, rate
	// limit, in-flight cap, priority class). In remote mode the serving
	// cluster must already know a tenant with this token.
	Tenant server.Tenant `json:"tenant"`
	// Sessions is how many concurrent sessions run under this identity.
	Sessions int `json:"sessions"`
	// Requests is how many Do calls each session issues back to back.
	Requests int `json:"requests"`
	// Tolerance is the relative error tolerance of every target.
	Tolerance float64 `json:"tolerance"`
}

// Scenario pins one reproducible load shape. The zero value is not
// runnable; start from DefaultScenario.
type Scenario struct {
	// Name labels the scenario in summaries and artifacts.
	Name string `json:"name"`
	// Dataset is the dataset name served and retrieved.
	Dataset string `json:"dataset"`
	// Blocks/BlockSize/Seed parameterize the synthetic GE dataset of the
	// in-process cluster (ignored in remote mode, where the cluster
	// already serves Dataset).
	Blocks    int   `json:"blocks"`
	BlockSize int   `json:"blockSize"`
	Seed      int64 `json:"seed"`
	// Nodes is the in-process cluster size (ignored in remote mode).
	Nodes int `json:"nodes"`
	// MaxInflight and MaxQueue configure each in-process node's serving
	// slots and admission queue (zero keeps the server defaults).
	MaxInflight int `json:"maxInflight,omitempty"`
	MaxQueue    int `json:"maxQueue,omitempty"`
	// Endpoints switches to remote mode: drive these base URLs instead
	// of starting an in-process cluster. Result bit-identity is not
	// checked remotely (the harness has no local reference).
	Endpoints []string `json:"endpoints,omitempty"`
	// Tenants is the mixed-tenant load.
	Tenants []TenantLoad `json:"tenants"`
}

// DefaultScenario is the pinned mixed-tenant scenario the slo-gate CI job
// runs: a 3-node cluster, one bulk tenant flooding wide-open sessions and
// one interactive tenant probing with small bursts, plus a deliberately
// over-limit tenant whose sessions must survive throttling via 429 +
// Retry-After with bit-identical results.
func DefaultScenario() Scenario {
	return Scenario{
		Name:      "pr9-mixed-tenants",
		Dataset:   "bench",
		Blocks:    4,
		BlockSize: 220,
		Seed:      7,
		Nodes:     3,
		// Few slots per node so bulk load actually contends with the
		// interactive probe in the admission queue.
		MaxInflight: 4,
		Tenants: []TenantLoad{
			{
				Tenant: server.Tenant{
					Name: "bulk-flood", Token: "bench-bulk-flood-token",
					RateLimit: 10000, Class: server.ClassBulk,
				},
				Sessions: 6, Requests: 4, Tolerance: 2e-3,
			},
			{
				Tenant: server.Tenant{
					Name: "interactive", Token: "bench-interactive-token",
					RateLimit: 10000, Class: server.ClassInteractive,
				},
				Sessions: 2, Requests: 6, Tolerance: 2e-3,
			},
			{
				Tenant: server.Tenant{
					Name: "over-limit", Token: "bench-over-limit-token",
					// One token per node, refilled at 1/s: the back-to-back
					// index+meta fetches at session open alone guarantee a 429
					// on any hardware (no think time between them), so the
					// scenario deterministically exercises 429 + Retry-After
					// recovery — and must still finish bit-identically.
					RateLimit: 1, Burst: 1, Class: server.ClassInteractive,
				},
				Sessions: 1, Requests: 3, Tolerance: 2e-3,
			},
		},
	}
}

// LoadScenario reads a Scenario from a JSON file, rejecting unknown
// fields so a typoed knob fails loudly instead of silently benchmarking
// the default.
func LoadScenario(path string) (Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("bench: scenario %s: %w", path, err)
	}
	return sc, nil
}

// TenantSummary is one tenant's measured outcome.
type TenantSummary struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// Sessions ran; FailedSessions aborted with an error or returned a
	// result differing from the local reference.
	Sessions       int      `json:"sessions"`
	FailedSessions int      `json:"failedSessions"`
	Errors         []string `json:"errors,omitempty"`
	// Requests is completed Do calls; WireRequests is HTTP requests the
	// tenant's clients issued (retries included) — the number that must
	// reconcile with the cluster's per-tenant requests_total metric.
	Requests     int64 `json:"requests"`
	WireRequests int64 `json:"wireRequests"`
	// RateLimited counts 429 responses absorbed by retry/backoff.
	RateLimited int64 `json:"rateLimited"`
	// Latency quantiles over completed Do calls, in seconds.
	P50 float64 `json:"p50Seconds"`
	P95 float64 `json:"p95Seconds"`
	P99 float64 `json:"p99Seconds"`
	Max float64 `json:"maxSeconds"`
	// Throughput is completed Do calls per second of scenario wall time.
	Throughput float64 `json:"throughputPerSecond"`
}

// Summary is the machine-readable result the slo-gate job evaluates.
type Summary struct {
	Scenario        string          `json:"scenario"`
	Go              string          `json:"go"`
	CPUs            int             `json:"cpus"`
	Nodes           int             `json:"nodes"`
	DurationSeconds float64         `json:"durationSeconds"`
	Tenants         []TenantSummary `json:"tenants"`
}

// recorder accumulates one tenant's measurements across its sessions.
type recorder struct {
	mu     sync.Mutex
	lat    []float64 // guarded by mu; completed Do latencies, seconds
	failed int       // guarded by mu; sessions aborted or diverged
	errs   []string  // guarded by mu
	done   int64     // guarded by mu; completed Do calls
	wire   int64     // guarded by mu; summed client WireRequests
	rlim   int64     // guarded by mu; summed client RateLimited
}

func (r *recorder) observe(d time.Duration) {
	r.mu.Lock()
	r.lat = append(r.lat, d.Seconds())
	r.done++
	r.mu.Unlock()
}

func (r *recorder) fail(err error) {
	r.mu.Lock()
	r.failed++
	r.errs = append(r.errs, err.Error())
	r.mu.Unlock()
}

func (r *recorder) wireStats(st progqoi.RemoteStats) {
	r.mu.Lock()
	r.wire += st.WireRequests
	r.rlim += st.RateLimited
	r.mu.Unlock()
}

// quantile returns the nearest-rank p-quantile of sorted (ascending).
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// toleranceAt is the tightening schedule a session walks: the first
// request at 100x the final tolerance, the second at 10x, the rest at
// the final tolerance — the paper's progressive workload, so every
// request retrieves a real residual rather than replaying a warm plan.
func toleranceAt(r int, final float64) float64 {
	switch r {
	case 0:
		return final * 100
	case 1:
		return final * 10
	default:
		return final
	}
}

// targetsFor gives session si its QoI mix: sessions cycle through total
// velocity only, derived temperature only, and both — so the cluster sees
// heterogeneous fragment demand, not one hot plan.
func targetsFor(si int, tol float64, fields []string) ([]progqoi.Target, error) {
	vtot := progqoi.TotalVelocity(0, 1, 2)
	temp, err := progqoi.ParseQoI("T", "Pressure/(287.1*Density)", fields)
	if err != nil {
		return nil, err
	}
	switch si % 3 {
	case 0:
		return []progqoi.Target{{QoI: vtot, Tolerance: tol}}, nil
	case 1:
		return []progqoi.Target{{QoI: temp, Tolerance: tol}}, nil
	default:
		return []progqoi.Target{{QoI: vtot, Tolerance: tol}, {QoI: temp, Tolerance: tol}}, nil
	}
}

// Run executes the scenario and returns its Summary. In in-process mode
// (no Endpoints) it starts the cluster, computes local reference results,
// and fails any session whose remote result is not bit-identical; pass a
// non-nil *Cluster via RunAgainst to keep the cluster alive for metric
// scraping after the run.
func Run(ctx context.Context, sc Scenario) (*Summary, error) {
	var cl *Cluster
	if len(sc.Endpoints) == 0 {
		var err error
		if cl, err = StartCluster(ctx, sc); err != nil {
			return nil, err
		}
		defer cl.Close()
	}
	return RunAgainst(ctx, sc, cl)
}

// RunAgainst executes the scenario against an already-started in-process
// cluster (or, with cl nil, against sc.Endpoints). The caller keeps
// ownership of cl.
func RunAgainst(ctx context.Context, sc Scenario, cl *Cluster) (*Summary, error) {
	if len(sc.Tenants) == 0 {
		return nil, fmt.Errorf("bench: scenario %q has no tenants", sc.Name)
	}
	endpoints := sc.Endpoints
	if cl != nil {
		endpoints = cl.Endpoints
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("bench: scenario %q has neither endpoints nor an in-process cluster", sc.Name)
	}

	// Local references for bit-identity checks, only available when we
	// own the archive. A session's request sequence is stateful — each
	// request tightens the tolerance, so later requests retrieve only the
	// residual bytes — which means every (tenant, target-mix, request)
	// needs its own reference, replayed on a fresh local session exactly
	// as the remote sessions will run it.
	type refKey struct {
		tenant, mix, req int
	}
	refs := map[refKey]*progqoi.Result{}
	if cl != nil {
		for ti, tl := range sc.Tenants {
			for mix := 0; mix < 3; mix++ {
				lsess, err := cl.Archive.Open()
				if err != nil {
					return nil, err
				}
				for r := 0; r < tl.Requests; r++ {
					targets, err := targetsFor(mix, toleranceAt(r, tl.Tolerance), cl.Fields)
					if err != nil {
						return nil, err
					}
					res, err := lsess.Do(ctx, progqoi.Request{Targets: targets})
					if err != nil {
						return nil, fmt.Errorf("bench: reference retrieval: %w", err)
					}
					refs[refKey{ti, mix, r}] = res
				}
			}
		}
	}

	fields := sc.fieldNames(cl)
	recs := make([]*recorder, len(sc.Tenants))
	for i := range recs {
		recs[i] = &recorder{}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for ti, tl := range sc.Tenants {
		for si := 0; si < tl.Sessions; si++ {
			wg.Add(1)
			go func(ti, si int, tl TenantLoad) {
				defer wg.Done()
				rec := recs[ti]
				// Each session is an independent user: its own client,
				// cache disabled so every Do pays the wire.
				arch, err := progqoi.OpenRemote(ctx, endpoints[0], sc.Dataset,
					progqoi.WithEndpoints(endpoints[1:]...),
					progqoi.WithToken(tl.Tenant.Token),
					progqoi.WithCache(-1))
				if err != nil {
					rec.fail(fmt.Errorf("session %d open: %w", si, err))
					return
				}
				// Snapshot at return, not at defer time: deferred args are
				// evaluated immediately.
				defer func() { rec.wireStats(arch.RemoteStats()) }()
				sess, err := arch.Open()
				if err != nil {
					rec.fail(fmt.Errorf("session %d: %w", si, err))
					return
				}
				for r := 0; r < tl.Requests; r++ {
					targets, err := targetsFor(si, toleranceAt(r, tl.Tolerance), fields)
					if err != nil {
						rec.fail(err)
						return
					}
					t0 := time.Now()
					res, err := sess.Do(ctx, progqoi.Request{Targets: targets})
					if err != nil {
						rec.fail(fmt.Errorf("session %d request %d: %w", si, r, err))
						return
					}
					rec.observe(time.Since(t0))
					if ref := refs[refKey{ti, si % 3, r}]; ref != nil {
						if err := sameResult(ref, res); err != nil {
							rec.fail(fmt.Errorf("session %d request %d diverged from local reference: %w", si, r, err))
							return
						}
					}
				}
			}(ti, si, tl)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := &Summary{
		Scenario:        sc.Name,
		Go:              runtime.Version(),
		CPUs:            runtime.NumCPU(),
		Nodes:           len(endpoints),
		DurationSeconds: elapsed.Seconds(),
	}
	for ti, tl := range sc.Tenants {
		rec := recs[ti]
		rec.mu.Lock()
		sort.Float64s(rec.lat)
		ts := TenantSummary{
			Name:           tl.Tenant.Name,
			Class:          tl.Tenant.Class,
			Sessions:       tl.Sessions,
			FailedSessions: rec.failed,
			Errors:         rec.errs,
			Requests:       rec.done,
			WireRequests:   rec.wire,
			RateLimited:    rec.rlim,
			P50:            quantile(rec.lat, 0.50),
			P95:            quantile(rec.lat, 0.95),
			P99:            quantile(rec.lat, 0.99),
		}
		if n := len(rec.lat); n > 0 {
			ts.Max = rec.lat[n-1]
		}
		if s := elapsed.Seconds(); s > 0 {
			ts.Throughput = float64(rec.done) / s
		}
		rec.mu.Unlock()
		if ts.Class == "" {
			ts.Class = server.ClassInteractive
		}
		sum.Tenants = append(sum.Tenants, ts)
	}
	return sum, nil
}

// fieldNames resolves the dataset's variable names: from the in-process
// archive when we own it, from the synthetic generator's fixed schema
// otherwise (remote GE-shaped datasets).
func (sc Scenario) fieldNames(cl *Cluster) []string {
	if cl != nil {
		return cl.Fields
	}
	return []string{"VelocityX", "VelocityY", "VelocityZ", "Pressure", "Density"}
}

// sameResult compares two retrieval results bit for bit, mirroring the
// cluster e2e assertions.
func sameResult(want, got *progqoi.Result) error {
	if len(want.EstErrors) != len(got.EstErrors) {
		return fmt.Errorf("%d vs %d estimated errors", len(want.EstErrors), len(got.EstErrors))
	}
	for k := range want.EstErrors {
		if want.EstErrors[k] != got.EstErrors[k] {
			return fmt.Errorf("QoI %d: certified error %g != %g", k, want.EstErrors[k], got.EstErrors[k])
		}
	}
	if want.RetrievedBytes != got.RetrievedBytes {
		return fmt.Errorf("retrieved %d != %d bytes", want.RetrievedBytes, got.RetrievedBytes)
	}
	if len(want.Data) != len(got.Data) {
		return fmt.Errorf("%d vs %d data slices", len(want.Data), len(got.Data))
	}
	for v := range want.Data {
		if len(want.Data[v]) != len(got.Data[v]) {
			return fmt.Errorf("var %d: %d vs %d points", v, len(want.Data[v]), len(got.Data[v]))
		}
		for j := range want.Data[v] {
			if math.Float64bits(want.Data[v][j]) != math.Float64bits(got.Data[v][j]) {
				return fmt.Errorf("var %d point %d: %g != %g", v, j, want.Data[v][j], got.Data[v][j])
			}
		}
	}
	return nil
}
