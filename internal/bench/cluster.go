package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"progqoi"
	"progqoi/internal/datagen"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// Cluster is an in-process progqoid cluster serving one synthetic
// archive: N real server.Server instances behind loopback listeners,
// sharing one in-memory store, configured with the scenario's tenants.
type Cluster struct {
	// Endpoints are the nodes' base URLs.
	Endpoints []string
	// Archive is the locally refactored archive the cluster serves — the
	// bit-identity reference.
	Archive *progqoi.Archive
	// Fields are the dataset's variable names.
	Fields []string

	servers   []*server.Server
	listeners []*http.Server
}

// StartCluster refactors the scenario's synthetic dataset once and serves
// it from sc.Nodes independent nodes, every node enforcing the scenario's
// tenant set. Callers own the cluster and must Close it.
func StartCluster(ctx context.Context, sc Scenario) (*Cluster, error) {
	nodes := sc.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	ds := datagen.GE(sc.Dataset, sc.Blocks, sc.BlockSize, sc.Seed)
	arch, err := progqoi.Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		return nil, err
	}
	st := storage.NewMemStore()
	if err := storage.WriteArchive(ctx, st, sc.Dataset, arch.Variables()); err != nil {
		return nil, err
	}
	tenants := make([]server.Tenant, len(sc.Tenants))
	for i, tl := range sc.Tenants {
		tenants[i] = tl.Tenant
	}
	cl := &Cluster{Archive: arch, Fields: ds.FieldNames}
	for i := 0; i < nodes; i++ {
		srv, err := server.New(ctx, st, server.Options{
			MaxInflight: sc.MaxInflight,
			MaxQueue:    sc.MaxQueue,
			Tenants:     tenants,
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cl.Close()
			return nil, err
		}
		hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
		go hs.Serve(ln) //nolint:errcheck // closed by Cluster.Close
		cl.servers = append(cl.servers, srv)
		cl.listeners = append(cl.listeners, hs)
		cl.Endpoints = append(cl.Endpoints, "http://"+ln.Addr().String())
	}
	return cl, nil
}

// Close shuts the cluster's listeners down.
func (c *Cluster) Close() {
	for _, hs := range c.listeners {
		hs.Close() //nolint:errcheck
	}
}

// Stats snapshots node i's serving counters.
func (c *Cluster) Stats(i int) server.Stats { return c.servers[i].Stats() }

// Metrics fetches node i's Prometheus text exposition over the wire —
// the same bytes an operator's scraper would see, so callers can push
// them through the strict obs.ParseExposition parser.
func (c *Cluster) Metrics(ctx context.Context, i int) (string, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.Endpoints[i]+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close() //nolint:errcheck
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("bench: metrics node %d: %s", i, resp.Status)
	}
	return string(b), nil
}
