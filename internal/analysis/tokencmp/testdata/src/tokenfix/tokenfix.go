// Package tokenfix exercises the tokencmp analyzer: raw comparisons of
// bearer secrets and direct subtle.ConstantTimeCompare calls.
package tokenfix

import "crypto/subtle"

type tenant struct {
	Token string
	Name  string
}

// bad is the shape the PR 9 audit removed: a short-circuiting string
// compare on a presented credential.
func bad(presented string, t tenant) bool {
	return presented == t.Token // want `server\.TokenEqual`
}

func alsoBad(presented string) bool {
	adminToken := "hunter2hunter2"
	return presented != adminToken // want `server\.TokenEqual`
}

func secretish(apiKey, other string) bool {
	return other == apiKey // want `server\.TokenEqual`
}

func directCompare(a, b string) bool {
	return subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1 // want `ConstantTimeCompare`
}

// presence checks against the empty literal are not verifications.
func good(t tenant) bool {
	return t.Token != "" && "" != t.Token
}

// names that do not look secret-bearing are out of scope.
func goodName(a, b string) bool {
	return a == b
}

func suppressed(a, b string) bool {
	//progqoivet:allow tokencmp -- fixture: documents the escape hatch
	return subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}
