// Package tokencmp defines an analyzer enforcing the repository's
// bearer-token comparison convention: secrets are compared only through
// server.TokenEqual, never with a raw == / != and never with a direct
// subtle.ConstantTimeCompare.
//
// The invariant exists because a raw string comparison short-circuits on
// the first differing byte, turning response timing into an oracle that
// leaks the secret byte by byte — and the "obvious" fix, calling
// subtle.ConstantTimeCompare on the raw strings, still leaks the
// secret's length (the compare returns immediately on unequal lengths).
// server.TokenEqual hashes both sides to fixed width first, closing both
// channels; the PR 9 audit migrated the admin reload gate, progqoid's
// pprof gate, and the tenant auth path onto it, and this analyzer keeps
// the tree there.
//
// Two shapes are flagged:
//
//   - x == y / x != y where either operand is a string whose name says
//     it holds a secret (token, secret, bearer, password, apikey,
//     credential — case-insensitive). Comparisons against the empty
//     string literal are allowed: "is a token configured at all" is a
//     presence check, not a verification.
//   - any call of crypto/subtle.ConstantTimeCompare. The one blessed
//     call site — inside server.TokenEqual, on fixed-width digests —
//     carries a //progqoivet:allow directive documenting why it is safe.
package tokencmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"progqoi/internal/analysis/analysisutil"
)

const doc = `check that bearer tokens are compared via server.TokenEqual

Raw ==/!= on a secret string is a byte-by-byte timing oracle, and a
direct subtle.ConstantTimeCompare on raw tokens still leaks the secret's
length. Every token comparison must go through server.TokenEqual, which
hashes both sides to fixed width before the constant-time compare.`

const name = "tokencmp"

// Analyzer is the tokencmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// secretName matches identifiers that, by this repository's naming
// conventions, hold a bearer secret.
var secretName = regexp.MustCompile(`(?i)(token|secret|bearer|password|passwd|apikey|credential)`)

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	report := func(pos token.Pos, format string, args ...any) {
		if analysisutil.InTestFile(pass, pos) {
			// Test assertions on parsed config fields are not a serving-
			// path timing oracle.
			return
		}
		if f := analysisutil.FileFor(pass, pos); f != nil && analysisutil.Allowed(pass, f, pos, name) {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			if isEmptyStringLit(n.X) || isEmptyStringLit(n.Y) {
				return
			}
			if sx, sy := isSecretString(pass.TypesInfo, n.X), isSecretString(pass.TypesInfo, n.Y); sx || sy {
				operand := n.X
				if !sx {
					operand = n.Y
				}
				report(n.OpPos,
					"%s looks like a bearer secret: compare with server.TokenEqual, not %s — raw comparison is a byte-by-byte timing oracle (PR 9 token audit)",
					analysisutil.ExprString(operand), n.Op)
			}
		case *ast.CallExpr:
			if analysisutil.IsPkgFunc(analysisutil.Callee(pass.TypesInfo, n), "crypto/subtle", "ConstantTimeCompare") {
				report(n.Pos(),
					"direct subtle.ConstantTimeCompare leaks the secret's length on unequal inputs: use server.TokenEqual (hash-then-compare) or carry an allow directive explaining why the inputs are fixed-width")
			}
		}
	})
	return nil, nil
}

// isEmptyStringLit reports whether e is the literal "".
func isEmptyStringLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}

// isSecretString reports whether e is a string-typed expression whose
// name marks it as a secret: an identifier, the final selector of a
// field access, or the callee name of a call.
func isSecretString(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.String {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		return secretName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return secretName.MatchString(e.Sel.Name)
	case *ast.CallExpr:
		switch f := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return secretName.MatchString(f.Name)
		case *ast.SelectorExpr:
			return secretName.MatchString(f.Sel.Name)
		}
	}
	return false
}
