package tokencmp_test

import (
	"testing"

	"progqoi/internal/analysis/analyzertest"
	"progqoi/internal/analysis/tokencmp"
)

func TestTokencmp(t *testing.T) {
	analyzertest.Run(t, tokencmp.Analyzer, "tokenfix")
}
