// Package errwrapcheck defines an analyzer enforcing the repository's
// sentinel-error discipline, established in PR 2 when ErrBadRequest
// became the typed wrapper for every argument-validation failure:
//
//  1. Sentinel errors are matched with errors.Is, never with == or !=.
//     Nearly every error in this codebase travels through at least one
//     fmt.Errorf("...: %w", err) wrap (client retries, core prefetch,
//     server dataset loading), so a direct comparison against a
//     sentinel silently stops matching the moment a wrap is added
//     upstream. Comparisons against nil are of course fine.
//
//  2. When a sentinel reaches fmt.Errorf it must be wrapped with %w,
//     not stringified with %v/%s. progqoi promises callers that
//     errors.Is(err, ErrBadRequest) classifies every validation
//     failure; a %v at any layer breaks that chain while keeping the
//     message text identical — invisible in review, caught here.
//
// A sentinel is a package-level variable of type error whose name
// starts with "Err" (ErrBadRequest, ErrShortFragment, ErrCorrupt,
// storage.ErrNotFound, ...) or io.EOF.
package errwrapcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"progqoi/internal/analysis/analysisutil"
)

const doc = `check sentinel-error discipline: errors.Is, and %w at wrap sites

Reports == / != comparisons against sentinel error variables (use
errors.Is — sentinels here are routinely wrapped) and fmt.Errorf calls
that format a sentinel with a verb other than %w (which would break
errors.Is classification for every caller downstream).`

const name = "errwrapcheck"

// Analyzer is the errwrapcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// isSentinel reports whether e resolves to a package-level error
// variable named Err* (or io.EOF).
func isSentinel(info *types.Info, e ast.Expr) (types.Object, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, false
	}
	obj := info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil, false
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil, false
	}
	if strings.HasPrefix(v.Name(), "Err") {
		return v, true
	}
	if v.Pkg().Path() == "io" && (v.Name() == "EOF" || v.Name() == "ErrUnexpectedEOF") {
		return v, true
	}
	return nil, false
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			checkComparison(pass, x)
		case *ast.CallExpr:
			checkErrorf(pass, x)
		}
	})
	return nil, nil
}

// checkComparison flags == / != against a sentinel error variable.
func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		obj, ok := isSentinel(pass.TypesInfo, side)
		if !ok {
			continue
		}
		// Sentinel-to-sentinel or sentinel-to-nil identity tests (e.g. in
		// the sentinel's own package tests) are not classification.
		other := b.Y
		if side == b.Y {
			other = b.X
		}
		if pass.TypesInfo.Types[other].IsNil() {
			return
		}
		if _, otherIsSentinel := isSentinel(pass.TypesInfo, other); otherIsSentinel {
			return
		}
		if f := analysisutil.FileFor(pass, b.Pos()); f != nil &&
			analysisutil.Allowed(pass, f, b.Pos(), name) {
			return
		}
		pass.Reportf(b.OpPos,
			"comparing against sentinel %s with %s breaks once the error is wrapped anywhere upstream; use errors.Is (PR 2 error contract)",
			obj.Name(), b.Op)
		return
	}
}

// checkErrorf flags fmt.Errorf calls that format a sentinel error with a
// verb other than %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysisutil.IsPkgFunc(analysisutil.Callee(pass.TypesInfo, call), "fmt", "Errorf") {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		obj, ok := isSentinel(pass.TypesInfo, arg)
		if !ok {
			continue
		}
		if i >= len(verbs) || verbs[i] == 'w' {
			continue
		}
		if f := analysisutil.FileFor(pass, call.Pos()); f != nil &&
			analysisutil.Allowed(pass, f, call.Pos(), name) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"sentinel %s formatted with %%%c; wrap with %%w so errors.Is keeps classifying it downstream",
			obj.Name(), verbs[i])
	}
}

// formatVerbs returns the verb letter consumed by each successive
// argument of a fmt format string. Indexed verbs (%[n]d) and * widths
// are rare in this codebase; the scanner handles flags, width and
// precision digits and treats anything it cannot follow conservatively
// by stopping.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		c := format[i]
		if c == '%' {
			continue
		}
		if c == '*' || c == '[' {
			// Star width / explicit index: bail out rather than misattribute.
			return verbs
		}
		verbs = append(verbs, c)
	}
	return verbs
}
