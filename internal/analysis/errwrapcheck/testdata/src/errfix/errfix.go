// Package errfix exercises the sentinel-error discipline: errors.Is for
// matching, %w at wrap sites.
package errfix

import (
	"errors"
	"fmt"
	"io"
)

var ErrCorrupt = errors.New("errfix: corrupt fragment")
var ErrBadRequest = errors.New("errfix: bad request")

// notSentinel is package-level but not named Err*.
var errInternal = errors.New("errfix: internal")

func compare(err error) int {
	if err == ErrCorrupt { // want `errors\.Is`
		return 1
	}
	if err != io.EOF { // want `errors\.Is`
		return 2
	}
	if errors.Is(err, ErrCorrupt) { // ok: the blessed form
		return 3
	}
	if err == errInternal { // ok: not a sentinel by naming convention
		return 4
	}
	if err == nil { // ok: nil tests are not classification
		return 5
	}
	return 0
}

// identity tests between two sentinels (e.g. in the defining package's
// own tests) are not classification.
func identity() bool {
	return ErrCorrupt == io.EOF //nolint:errorlint // ok for the fixture
}

func wrap(err error) error {
	if err == nil {
		return nil
	}
	_ = fmt.Errorf("load fragment: %v", ErrCorrupt)    // want `wrap with %w`
	_ = fmt.Errorf("load %s: %s", "v1", ErrBadRequest) // want `wrap with %w`
	_ = fmt.Errorf("load fragment: %w", ErrCorrupt)    // ok
	_ = fmt.Errorf("load %s: %w", "v1", ErrBadRequest) // ok
	_ = fmt.Errorf("plain value %v", err)              // ok: not a sentinel
	return fmt.Errorf("read: %w", io.ErrUnexpectedEOF)
}

func suppressed(err error) bool {
	//progqoivet:allow errwrapcheck -- fixture: documents the escape hatch
	return err == ErrCorrupt
}
