package errwrapcheck_test

import (
	"testing"

	"progqoi/internal/analysis/analyzertest"
	"progqoi/internal/analysis/errwrapcheck"
)

func TestErrWrapCheck(t *testing.T) {
	analyzertest.Run(t, errwrapcheck.Analyzer, "errfix")
}
