package traceguard_test

import (
	"testing"

	"progqoi/internal/analysis/analyzertest"
	"progqoi/internal/analysis/traceguard"
)

func TestTraceGuard(t *testing.T) {
	analyzertest.Run(t, traceguard.Analyzer, "tracefix")
}
