// Package obs is a stand-in for progqoi/internal/obs: the analyzer
// matches the Trace type by package name, so the fixture only needs the
// same shape, not the real implementation.
package obs

// Category labels a span.
type Category uint8

// Span categories mirrored from the real recorder.
const (
	CatDecode Category = iota
	CatFetch
	CatIter
)

// SpanMark is the zero-alloc span handle.
type SpanMark struct{ t *Trace }

// EndBytes closes the span. Nil-safe.
func (m SpanMark) EndBytes(n int) { _ = n }

// Trace records spans; all methods are nil-safe.
type Trace struct{ spans int }

// Begin opens a span. Nil-safe, but its arguments are evaluated first.
func (t *Trace) Begin(c Category, name string) SpanMark {
	if t == nil {
		return SpanMark{}
	}
	t.spans++
	return SpanMark{t: t}
}

// BeginIter opens an iteration span. Nil-safe.
func (t *Trace) BeginIter(name string) SpanMark {
	if t == nil {
		return SpanMark{}
	}
	t.spans++
	return SpanMark{t: t}
}

// TraceFrom mirrors the context accessor.
func TraceFrom() *Trace { return nil }
