// Package tracefix exercises the zero-alloc tracing contract: span
// calls whose arguments allocate must be nil-guarded.
package tracefix

import (
	"strconv"

	"obs"
)

func unguardedConcat(tr *obs.Trace, fi int) {
	tr.Begin(obs.CatFetch, "frag "+strconv.Itoa(fi)) // want `zero-alloc`
}

func unguardedCall(tr *obs.Trace, fi int) {
	tr.BeginIter(strconv.Itoa(fi)) // want `zero-alloc`
}

func constantName(tr *obs.Trace) {
	tr.Begin(obs.CatDecode, "decode header") // ok: constant args cost nothing on a nil trace
}

func plainLoads(tr *obs.Trace, names []string, s struct{ route string }) {
	tr.BeginIter(names[0])         // ok: indexing is a load, not an allocation
	tr.Begin(obs.CatIter, s.route) // ok: field load
}

func guardedParam(tr *obs.Trace, fi int) {
	if tr != nil {
		tr.Begin(obs.CatFetch, "frag "+strconv.Itoa(fi)) // ok: proven non-nil
	}
}

func guardedInit(fi int) {
	if tr := obs.TraceFrom(); tr != nil {
		tr.Begin(obs.CatFetch, "frag "+strconv.Itoa(fi)) // ok: the canonical core.go shape
	}
}

func guardedConjunction(tr *obs.Trace, fi int) {
	if tr != nil && fi > 0 {
		tr.BeginIter("iter " + strconv.Itoa(fi)) // ok: != nil appears in the conjunction
	}
}

func elseOfGuard(tr *obs.Trace, fi int) {
	if tr != nil {
		_ = fi
	} else {
		tr.BeginIter(strconv.Itoa(fi)) // want `zero-alloc`
	}
}

func wrongGuard(tr, other *obs.Trace, fi int) {
	if other != nil {
		tr.BeginIter(strconv.Itoa(fi)) // want `zero-alloc`
	}
}

func suppressed(tr *obs.Trace, fi int) {
	//progqoivet:allow traceguard -- fixture: cold path, allocation accepted
	tr.BeginIter(strconv.Itoa(fi))
}
