// Package traceguard defines an analyzer defending the PR 6 zero-alloc
// tracing contract statically: when tracing is disabled, the retrieval
// hot path must not allocate on behalf of the recorder.
//
// Every method on *obs.Trace is nil-safe, so calling Begin/BeginIter on
// a nil trace is free — as long as the arguments are free too. A span
// name built by concatenation ("frag "+vr+"/"+strconv.Itoa(fi)) or any
// function call allocates before the nil receiver is ever consulted,
// which is exactly the regression TestTraceDisabledZeroAlloc and the
// BenchmarkDoTraceOff gate catch at runtime. This analyzer catches it
// at vet time: a Begin/BeginIter call whose arguments require
// computation must sit inside an if statement that proves the trace
// non-nil, the way every existing call site does:
//
//	var mf obs.SpanMark
//	if tr := obs.TraceFrom(ctx); tr != nil {
//		mf = tr.Begin(obs.CatFetch, "frag "+vr+"/"+strconv.Itoa(fi))
//	}
//	...
//	mf.EndBytes(n)
//
// Calls whose arguments are constants or plain loads (identifiers,
// field selections, indexing) are allowed unguarded — they cost nothing
// on a nil trace, and the unguarded constant-name sites in core.go rely
// on that.
package traceguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"progqoi/internal/analysis/analysisutil"
)

const doc = `check that allocating obs span calls are nil-guarded

A (*obs.Trace).Begin/BeginIter call whose arguments involve computation
(string concatenation, function calls, conversions) must be inside an
if that proves the trace non-nil, preserving the PR 6 guarantee that a
disabled trace costs zero allocations on the retrieval hot path.`

const name = "traceguard"

// Analyzer is the traceguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "obs" {
		// The recorder's own methods implement the nil-safety the rest of
		// the tree relies on.
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Begin" && sel.Sel.Name != "BeginIter") {
			return true
		}
		recv := sel.X
		if !analysisutil.IsNamedType(pass.TypesInfo.TypeOf(recv), "obs", "Trace") {
			return true
		}
		free := true
		for _, arg := range call.Args {
			if !freeExpr(pass.TypesInfo, arg) {
				free = false
				break
			}
		}
		if free {
			return true
		}
		if guarded(pass.TypesInfo, recv, call, stack) {
			return true
		}
		if f := analysisutil.FileFor(pass, call.Pos()); f != nil &&
			analysisutil.Allowed(pass, f, call.Pos(), name) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s.%s with a computed argument must be guarded by an %q check: the argument allocates even when the trace is nil, breaking the PR 6 zero-alloc contract",
			analysisutil.ExprString(recv), sel.Sel.Name, analysisutil.ExprString(recv)+" != nil")
		return true
	})
	return nil, nil
}

// freeExpr reports whether evaluating e cannot allocate: constants,
// identifiers, field selections, indexing and pointer loads qualify;
// calls, conversions, concatenations and literals do not.
func freeExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true // constant-folded, incl. obs.Cat* and literals
	}
	switch x := e.(type) {
	case *ast.Ident:
		return true
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return freeExpr(info, x.X)
	case *ast.SelectorExpr:
		return freeExpr(info, x.X)
	case *ast.IndexExpr:
		return freeExpr(info, x.X) && freeExpr(info, x.Index)
	case *ast.StarExpr:
		return freeExpr(info, x.X)
	case *ast.UnaryExpr:
		return x.Op != token.AND && freeExpr(info, x.X)
	}
	return false
}

// guarded reports whether the call sits inside the body of an if whose
// condition proves recv non-nil — either "recv != nil" textually, or
// "x := <init>; x != nil" where recv is that x.
func guarded(info *types.Info, recv ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Only the then-branch is proven; a call in the else of a != nil
		// check is exactly the nil case.
		if !within(ifs.Body, call) {
			continue
		}
		if condProvesNonNil(info, ifs.Cond, recv) {
			return true
		}
	}
	return false
}

func within(body *ast.BlockStmt, n ast.Node) bool {
	return body != nil && body.Pos() <= n.Pos() && n.End() <= body.End()
}

// condProvesNonNil matches "recv != nil" anywhere in a conjunction.
func condProvesNonNil(info *types.Info, cond ast.Expr, recv ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return condProvesNonNil(info, c.X, recv) || condProvesNonNil(info, c.Y, recv)
		}
		if c.Op != token.NEQ {
			return false
		}
		x, y := ast.Unparen(c.X), ast.Unparen(c.Y)
		if info.Types[y].IsNil() {
			return sameExpr(info, x, recv)
		}
		if info.Types[x].IsNil() {
			return sameExpr(info, y, recv)
		}
	}
	return false
}

// sameExpr reports whether a and b denote the same value: identical
// identifiers (same object) or structurally equal selector/index chains.
func sameExpr(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	if ai, ok := a.(*ast.Ident); ok {
		if bi, ok := b.(*ast.Ident); ok {
			ao, bo := useOrDef(info, ai), useOrDef(info, bi)
			return ao != nil && ao == bo
		}
	}
	return analysisutil.ExprString(a) == analysisutil.ExprString(b)
}

func useOrDef(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
