// Package slogfix exercises the structured-logging invariant: no stdlib
// log and no implicit-stdout fmt printing outside func main.
package slogfix

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

func handler(lg *slog.Logger) {
	log.Printf("served %d bytes", 42) // want `log through \*slog\.Logger`
	log.Println("done")               // want `log through \*slog\.Logger`
	fmt.Println("served")             // want `log through \*slog\.Logger`
	fmt.Printf("served %d\n", 42)     // want `log through \*slog\.Logger`

	lg.Info("served", "bytes", 42)             // ok: structured
	fmt.Fprintf(os.Stderr, "fatal: %v\n", nil) // ok: explicit writer
	_ = fmt.Sprintf("id-%d", 42)               // ok: no I/O
}

// main is the bootstrap exemption: usage errors precede the logger.
func main() {
	fmt.Println("usage: progqoid [flags]")
	log.Fatal("cannot start")
}

func suppressed() {
	//progqoivet:allow slogonly -- fixture: documents the escape hatch
	fmt.Println("migration notice")
}
