package slogonly_test

import (
	"testing"

	"progqoi/internal/analysis/analyzertest"
	"progqoi/internal/analysis/slogonly"
)

func TestSlogOnly(t *testing.T) {
	// The production default restricts the check to the serving path;
	// fixtures run it everywhere.
	if err := slogonly.Analyzer.Flags.Set("pkgs", ""); err != nil {
		t.Fatal(err)
	}
	analyzertest.Run(t, slogonly.Analyzer, "slogfix")
}
