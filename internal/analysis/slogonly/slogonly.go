// Package slogonly defines an analyzer banning unstructured logging in
// the serving path: no stdlib log package and no implicit-stdout
// fmt.Print/Printf/Println inside internal/server or cmd/progqoid,
// except in the main bootstrap function.
//
// PR 6 converted the daemon to log/slog so every record carries route,
// status, byte and request-ID attributes and the log format is an
// operator choice (-log-format json|text). A stray log.Printf or
// fmt.Println reintroduces unparseable lines that bypass level gating —
// on a node serving heavy traffic that is operational noise at best and
// a disk-filling liability at worst. main may still print: flag usage
// errors and startup failures legitimately go to stderr before a logger
// exists.
package slogonly

import (
	"flag"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"progqoi/internal/analysis/analysisutil"
)

const doc = `check that the serving path logs through log/slog only

Within the configured packages (default: progqoi/internal/server and
progqoi/cmd/progqoid) any use of the stdlib log package or of
fmt.Print/Printf/Println (which write to process stdout) is reported,
except inside func main. Structured serving logs are a PR 6 invariant:
records must carry attributes and respect -log-format/-log-level.`

const name = "slogonly"

// Analyzer is the slogonly analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// pkgs restricts the check to the serving path; empty means every
// package (used by the fixture tests).
var pkgs string

func init() {
	Analyzer.Flags.Init("slogonly", flag.ContinueOnError)
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"progqoi/internal/server,progqoi/cmd/progqoid",
		"comma-separated package paths the check applies to (empty: all)")
}

// bannedFmt are the fmt functions that write to implicit stdout.
var bannedFmt = map[string]bool{"Print": true, "Printf": true, "Println": true}

func run(pass *analysis.Pass) (any, error) {
	if !analysisutil.PkgMatch(pkgs, pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		obj := analysisutil.Callee(pass.TypesInfo, call)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		var what string
		switch {
		case fn.Pkg().Path() == "log":
			what = "log." + fn.Name()
		case fn.Pkg().Path() == "fmt" && bannedFmt[fn.Name()]:
			what = "fmt." + fn.Name()
		default:
			return true
		}
		if analysisutil.InTestFile(pass, call.Pos()) {
			return true
		}
		// The main bootstrap may print: usage errors and startup
		// failures precede the logger.
		if analysisutil.FuncName(analysisutil.FuncFor(stack)) == "main" {
			return true
		}
		if f := analysisutil.FileFor(pass, call.Pos()); f != nil &&
			analysisutil.Allowed(pass, f, call.Pos(), name) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s in the serving path: log through *slog.Logger (server.Options.Log) so records are structured and level-gated (PR 6 invariant)", what)
		return true
	})
	return nil, nil
}
