// Package analyzertest is a self-contained replacement for
// golang.org/x/tools/go/analysis/analysistest, which the hermetically
// vendored x/tools subset under third_party does not include (it would
// drag in go/packages and its exec-based loader).
//
// It loads a fixture package from testdata/src/<pkg> GOPATH-style,
// typechecks it against the standard library (via the source importer,
// so no compiled export data is needed) and against sibling fixture
// packages, runs one analyzer over it, and compares the reported
// diagnostics with the fixture's expectations.
//
// Expectations use the analysistest comment convention: a comment
//
//	// want "regexp" "another regexp"
//
// on a source line declares that the analyzer must report, on that exact
// line, one diagnostic matching each quoted regular expression — and the
// harness fails on any diagnostic with no matching expectation, so
// fixtures prove both that an analyzer fires on violations and that it
// stays silent on conforming code.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Run loads testdata/src/<pkg> relative to the calling test's package
// directory, applies the analyzer, and checks its diagnostics against
// the fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	ld := newLoader(filepath.Join(wd, "testdata", "src"))
	lp, err := ld.load(pkg)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", pkg, err)
	}
	diags, err := runAnalyzer(a, ld, lp)
	if err != nil {
		t.Fatalf("running %s on %q: %v", a.Name, pkg, err)
	}
	check(t, ld.fset, lp, diags)
}

// loaded is one typechecked fixture package.
type loaded struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves imports from testdata/src first (recursively loading
// fixture packages) and falls back to the standard library via the
// source importer, which typechecks GOROOT sources directly and so
// works in this offline build environment.
type loader struct {
	fset   *token.FileSet
	root   string
	pkgs   map[string]*loaded
	stdlib types.Importer
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		root:   root,
		pkgs:   map[string]*loaded{},
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the fixture tree + stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.stdlib.Import(path)
}

func isDir(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and typechecks testdata/src/<path>.
func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	lp := &loaded{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = lp
	return lp, nil
}

// runAnalyzer builds a Pass by hand (computing the inspect.Analyzer
// dependency directly) and collects the diagnostics.
func runAnalyzer(a *analysis.Analyzer, ld *loader, lp *loaded) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]any{
			inspect.Analyzer: inspector.New(lp.files),
		},
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// expectation is one quoted regexp from a // want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wants collects the fixture's expectations, keyed to the line the
// comment sits on (the analysistest convention: the comment trails the
// offending code).
func wants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var exps []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := quotedStrings(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %w", pos, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %w", pos, p, err)
					}
					exps = append(exps, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: p,
					})
				}
			}
		}
	}
	return exps, nil
}

// quotedStrings parses a sequence of Go string literals ("..." or
// `...`) separated by spaces.
func quotedStrings(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		q := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == q && (q == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern at %q", s)
		}
		lit := s[:end+1]
		p, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %w", lit, err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}

// check matches diagnostics against expectations one-to-one and fails
// the test on any unmatched diagnostic or unmet expectation.
func check(t *testing.T, fset *token.FileSet, lp *loaded, diags []analysis.Diagnostic) {
	t.Helper()
	exps, err := wants(fset, lp.files)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, e := range exps {
			if !e.met && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range exps {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}
