package lockguard_test

import (
	"testing"

	"progqoi/internal/analysis/analyzertest"
	"progqoi/internal/analysis/lockguard"
)

func TestLockGuard(t *testing.T) {
	// The production default restricts the check to the concurrency
	// packages; fixtures run it everywhere.
	if err := lockguard.Analyzer.Flags.Set("pkgs", ""); err != nil {
		t.Fatal(err)
	}
	analyzertest.Run(t, lockguard.Analyzer, "lockfix")
}
