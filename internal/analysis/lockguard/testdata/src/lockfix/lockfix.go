// Package lockfix exercises the "guarded by" annotation checking. The
// limiter struct reproduces the PR 4 /healthz race: counters updated
// under a mutex but snapshotted without it.
package lockfix

import "sync"

type limiter struct {
	mu       sync.Mutex
	requests int64 // guarded by mu
	inflight int   // guarded by mu
	maxSeen  int   // guarded by mu
}

func (l *limiter) admit() {
	l.mu.Lock()
	l.requests++
	l.inflight++
	if l.inflight > l.maxSeen {
		l.maxSeen = l.inflight
	}
	l.mu.Unlock()
}

// snapshot is the PR 4 regression: lock-free reads of guarded counters.
func (l *limiter) snapshot() (int64, int) {
	return l.requests, l.inflight // want `read of l\.requests without holding` `read of l\.inflight without holding`
}

func (l *limiter) snapshotFixed() (int64, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.requests, l.inflight // ok: deferred unlock keeps the lock held
}

func (l *limiter) reset() {
	l.requests = 0 // want `write of l\.requests without holding`
}

func (l *limiter) afterUnlock() int {
	l.mu.Lock()
	l.requests++
	l.mu.Unlock()
	return l.maxSeen // want `read of l\.maxSeen without holding`
}

type cache struct {
	mu    sync.RWMutex
	items map[string]int // guarded by mu
	hits  int64          // guarded by mu
}

// newCache stays clean: composite-literal initialization does not go
// through a selector.
func newCache() *cache {
	return &cache{items: map[string]int{}}
}

func (c *cache) get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.items[k] // ok: RLock suffices for a read
}

func (c *cache) putUnderRLock(k string, v int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.items[k] = v // want `write of c\.items without holding`
}

func (c *cache) put(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items[k] = v
	c.hits++
}

// lookupOrFill is the Client.Index shape: an early-return branch
// unlocks, and the straight-line code re-acquires before writing. The
// clamped depth count must not report the final write.
func (c *cache) lookupOrFill(k string, fill func() int) int {
	c.mu.Lock()
	if v, ok := c.items[k]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := fill()
	c.mu.Lock()
	c.items[k] = v // ok: re-acquired after the early-unlock branch
	c.mu.Unlock()
	return v
}

func (c *cache) addrTaken() *int64 {
	return &c.hits // want `write of c\.hits without holding`
}

func (c *cache) suppressed() int {
	//progqoivet:allow lockguard -- fixture: racy stat read tolerated
	return len(c.items)
}

type stale struct {
	n int // guarded by mux // want `stale annotation`
}

type wrongType struct {
	lock int
	m    map[string]int // guarded by lock // want `stale annotation`
}
