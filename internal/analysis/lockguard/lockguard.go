// Package lockguard defines an analyzer that machine-checks the
// repository's mutex annotations: a struct field whose comment says
// "guarded by <mu>" may only be read or written while that sibling
// mutex is held.
//
// The motivating bug is the PR 4 /healthz race: the server's limiter
// counters (requests, inflight, maxSeen) were updated under a mutex but
// snapshotted without it, so a stats poll could observe inflight above
// maxConcurrent. The fix moved the reads under the same critical
// section; this analyzer makes the rule survive the next refactor, for
// every annotated field in internal/server, internal/client,
// internal/obs and internal/storage.
//
// # Annotation
//
// Add a line or doc comment to the field:
//
//	mu       sync.Mutex
//	inflight map[string]*call // guarded by mu
//
// The named mutex must be a sibling field of type sync.Mutex or
// sync.RWMutex in the same struct; an annotation naming a missing or
// non-mutex sibling is itself reported, so annotations cannot rot.
//
// # What the check proves
//
// The analysis is intraprocedural and lexical: within the enclosing
// top-level function, an access to x.f (annotated "guarded by mu")
// counts as locked when more x.mu.Lock()/RLock() than Unlock()/RUnlock()
// calls appear before it in source order — deferred unlocks keep the
// lock held to the function end, matching how they execute. Writes
// (assignment, ++/--, compound assignment, taking the address) require
// the exclusive lock; reads accept RLock too. Struct-literal
// initialization does not go through a selector and is naturally
// exempt, so constructors stay clean without special cases.
//
// Source order approximates execution order, which is exact for the
// straight-line Lock/defer-Unlock and Lock/op/Unlock shapes this
// codebase uses. The lock depth is clamped at zero so a branch that
// unlocks early and returns (the lookup/fetch/store shape in
// Client.Index) does not cancel out a later re-acquisition. A goroutine
// launched inside a critical section inherits the section's lexical
// state (a known false-negative), and
// //progqoivet:allow lockguard -- <reason> documents any genuinely
// unprovable site.
package lockguard

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"progqoi/internal/analysis/analysisutil"
)

const doc = `check that "guarded by <mu>" fields are accessed under their mutex

A struct field annotated with a "guarded by <mu>" comment may only be
accessed while the named sibling mutex is held (intraprocedural,
source-order lock tracking; writes require the exclusive lock). The PR 4
/healthz unguarded-stats race is the regression this prevents.`

const name = "lockguard"

// Analyzer is the lockguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// pkgs restricts the check to the concurrency-bearing packages; empty
// means every package (used by the fixture tests).
var pkgs string

func init() {
	Analyzer.Flags.Init("lockguard", flag.ContinueOnError)
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"progqoi/internal/server,progqoi/internal/client,progqoi/internal/obs,progqoi/internal/storage",
		"comma-separated package paths the check applies to (empty: all)")
}

// guardRe extracts the mutex name from a field comment.
var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guard is one annotated field: the name of the sibling mutex that
// protects it.
type guard struct {
	mutex string
	rw    bool // sync.RWMutex: RLock suffices for reads
}

// lockEvent is one Lock/Unlock-family call inside a function, keyed by
// the textual receiver chain ("c.mu" → base "c", mutex "mu").
type lockEvent struct {
	pos      token.Pos
	base     string // receiver chain owning the mutex
	mutex    string
	delta    int  // +1 acquire, -1 release (0 for deferred releases)
	writer   bool // Lock/Unlock vs RLock/RUnlock
	deferred bool
}

func run(pass *analysis.Pass) (any, error) {
	if !analysisutil.PkgMatch(pkgs, pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	guards := collectGuards(pass, ins)
	if len(guards) == 0 {
		return nil, nil
	}

	events := map[ast.Node][]lockEvent{} // per top-level function, sorted

	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		sel := n.(*ast.SelectorExpr)
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldVar, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guards[fieldVar]
		if !ok {
			return true
		}
		fn := outermostFunc(stack)
		if fn == nil {
			return true
		}
		evs, ok := events[fn]
		if !ok {
			evs = collectLockEvents(fn)
			events[fn] = evs
		}
		base := analysisutil.ExprString(sel.X)
		write := isWrite(stack, sel)
		if held(evs, sel.Pos(), base, g, write) {
			return true
		}
		if f := analysisutil.FileFor(pass, sel.Pos()); f != nil &&
			analysisutil.Allowed(pass, f, sel.Pos(), name) {
			return true
		}
		kind := "read"
		if write {
			kind = "write"
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s of %s.%s without holding %s.%s (field is annotated \"guarded by %s\"; the PR 4 /healthz race is this exact bug)",
			kind, base, sel.Sel.Name, base, g.mutex, g.mutex)
		return true
	})
	return nil, nil
}

// collectGuards finds every annotated struct field and validates that
// the named mutex is a sibling field of a sync mutex type.
func collectGuards(pass *analysis.Pass, ins *inspector.Inspector) map[*types.Var]guard {
	guards := map[*types.Var]guard{}
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, field := range st.Fields.List {
			name, ok := guardAnnotation(field)
			if !ok {
				continue
			}
			rw, found := findMutexField(pass, st, name)
			if !found {
				pass.Reportf(field.Pos(),
					"\"guarded by %s\" names no sibling sync.Mutex/RWMutex field in this struct (stale annotation?)", name)
				continue
			}
			for _, fname := range field.Names {
				if v, ok := pass.TypesInfo.Defs[fname].(*types.Var); ok {
					guards[v] = guard{mutex: name, rw: rw}
				}
			}
		}
	})
	return guards
}

// guardAnnotation extracts "guarded by <name>" from the field's doc or
// line comment.
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// findMutexField checks that the struct declares a field named name of
// type sync.Mutex or sync.RWMutex, reporting whether it was found and
// whether it is an RWMutex.
func findMutexField(pass *analysis.Pass, st *ast.StructType, name string) (rw, found bool) {
	for _, f := range st.Fields.List {
		for _, fn := range f.Names {
			if fn.Name != name {
				continue
			}
			t := pass.TypesInfo.TypeOf(f.Type)
			if analysisutil.IsNamedType(t, "sync", "Mutex") {
				return false, true
			}
			if analysisutil.IsNamedType(t, "sync", "RWMutex") {
				return true, true
			}
			return false, false
		}
	}
	return false, false
}

// outermostFunc returns the top-level function declaration or literal
// enclosing the access — the lexical scope the lock tracking runs over.
func outermostFunc(stack []ast.Node) ast.Node {
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return n
		}
	}
	return nil
}

// collectLockEvents walks one function and records every mutex
// Lock/Unlock-family call in source order.
func collectLockEvents(fn ast.Node) []lockEvent {
	var evs []lockEvent
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if d, ok := m.(*ast.DeferStmt); ok {
				walk(d.Call, true)
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var acquire, writer bool
			switch sel.Sel.Name {
			case "Lock":
				acquire, writer = true, true
			case "RLock":
				acquire, writer = true, false
			case "Unlock":
				writer = true
			case "RUnlock":
			default:
				return true
			}
			// Receiver chain: base.mu (or bare mu for a local mutex).
			var base, mutex string
			switch r := ast.Unparen(sel.X).(type) {
			case *ast.SelectorExpr:
				base, mutex = analysisutil.ExprString(r.X), r.Sel.Name
			case *ast.Ident:
				base, mutex = "", r.Name
			default:
				return true
			}
			delta := 1
			if !acquire {
				delta = -1
				if deferred {
					// A deferred unlock runs at function exit: the lock
					// stays held for the rest of the source text.
					delta = 0
				}
			}
			evs = append(evs, lockEvent{
				pos: call.Pos(), base: base, mutex: mutex,
				delta: delta, writer: writer, deferred: deferred,
			})
			return true
		})
	}
	walk(fn, false)
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// held reports whether the guard's mutex (on the same receiver chain) is
// lexically held at pos. Writes require the exclusive lock; reads
// accept a read lock on RWMutexes.
func held(evs []lockEvent, pos token.Pos, base string, g guard, write bool) bool {
	var wdepth, rdepth int
	for _, e := range evs {
		if e.pos >= pos {
			break
		}
		if e.mutex != g.mutex || e.base != base {
			continue
		}
		if e.writer {
			wdepth += e.delta
		} else {
			rdepth += e.delta
		}
		// Clamp at zero: an early-return branch that unlocks before the
		// straight-line code re-acquires (the lookup/fetch/store shape in
		// Client.Index) would otherwise leave the count negative and hide
		// the later Lock.
		if wdepth < 0 {
			wdepth = 0
		}
		if rdepth < 0 {
			rdepth = 0
		}
	}
	if write {
		return wdepth > 0
	}
	return wdepth > 0 || (g.rw && rdepth > 0)
}

// isWrite reports whether the selector at the top of stack is written:
// assignment LHS (plain or compound), ++/--, or address-taken.
func isWrite(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) < 2 {
		return false
	}
	var child ast.Node = sel
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == child
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == child
		case *ast.IndexExpr:
			// x.m[k] = v writes the map, not the field binding — but the
			// access still mutates the guarded structure; treat the
			// indexed form on the LHS as a write of the field.
			if p.X == child {
				child = p
				continue
			}
			return false
		default:
			return false
		}
	}
	return false
}
