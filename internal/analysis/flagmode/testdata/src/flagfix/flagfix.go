// Package flagfix reproduces the twice-shipped ExitOnError bug (PRs 4
// and 5): flag sets built with anything but ContinueOnError.
package flagfix

import "flag"

// bad is the PR 4/PR 5 regression shape: os.Exit from inside parsing.
func bad() *flag.FlagSet {
	return flag.NewFlagSet("serve", flag.ExitOnError) // want `flag\.ContinueOnError`
}

func alsoBad() *flag.FlagSet {
	return flag.NewFlagSet("get", flag.PanicOnError) // want `flag\.ContinueOnError`
}

func indirect(mode flag.ErrorHandling) *flag.FlagSet {
	// A mode the analyzer cannot prove is ContinueOnError is reported:
	// the convention is to name the constant at the call site.
	return flag.NewFlagSet("put", mode) // want `flag\.ContinueOnError`
}

func good() *flag.FlagSet {
	return flag.NewFlagSet("serve", flag.ContinueOnError)
}

func goodParenthesized() *flag.FlagSet {
	return flag.NewFlagSet("serve", (flag.ContinueOnError))
}

func suppressed() *flag.FlagSet {
	//progqoivet:allow flagmode -- fixture: documents the escape hatch
	return flag.NewFlagSet("legacy", flag.ExitOnError)
}
