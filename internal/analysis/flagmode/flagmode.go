// Package flagmode defines an analyzer enforcing the repository's CLI
// flag-set convention: every flag.NewFlagSet call must pass
// flag.ContinueOnError.
//
// The invariant exists because flag.ExitOnError calls os.Exit from deep
// inside argument parsing: -h exits 2 instead of printing usage as a
// clean success, parse errors bypass the command's error path, and
// nothing above main can test the behaviour. The bug shipped twice —
// cmd/progqoid was converted to ContinueOnError in PR 4 and all five
// cmd/progqoi subcommands needed the same fix again in PR 5 — which is
// exactly the kind of regression a machine check is for.
package flagmode

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"progqoi/internal/analysis/analysisutil"
)

const doc = `check that flag.NewFlagSet uses flag.ContinueOnError

Every flag set in this repository must be constructed with
flag.ContinueOnError so parse errors and -h return through the normal
error path instead of calling os.Exit mid-parse (the twice-fixed
ExitOnError bug of PRs 4 and 5).`

const name = "flagmode"

// Analyzer is the flagmode analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !analysisutil.IsPkgFunc(analysisutil.Callee(pass.TypesInfo, call), "flag", "NewFlagSet") {
			return
		}
		if len(call.Args) != 2 {
			return
		}
		mode := ast.Unparen(call.Args[1])
		if sel, ok := mode.(*ast.SelectorExpr); ok {
			if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil &&
				obj.Pkg() != nil && obj.Pkg().Path() == "flag" && obj.Name() == "ContinueOnError" {
				return
			}
		}
		if f := analysisutil.FileFor(pass, call.Pos()); f != nil &&
			analysisutil.Allowed(pass, f, call.Pos(), name) {
			return
		}
		pass.Reportf(call.Args[1].Pos(),
			"flag.NewFlagSet must use flag.ContinueOnError, not %s: ExitOnError/PanicOnError bypass the command's error path (see the PR 4/PR 5 progqoid and progqoi fixes)",
			analysisutil.ExprString(call.Args[1]))
	})
	return nil, nil
}
