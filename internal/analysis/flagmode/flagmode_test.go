package flagmode_test

import (
	"testing"

	"progqoi/internal/analysis/analyzertest"
	"progqoi/internal/analysis/flagmode"
)

func TestFlagMode(t *testing.T) {
	analyzertest.Run(t, flagmode.Analyzer, "flagfix")
}
