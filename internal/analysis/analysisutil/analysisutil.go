// Package analysisutil holds the small shared surface of the progqoivet
// analyzer suite: the suppression directive, package-scope matching, and
// AST helpers the individual analyzers share.
//
// # Suppression directive
//
// A diagnostic may be silenced at a specific site with
//
//	//progqoivet:allow <analyzer> -- <reason>
//
// placed on the flagged line or the line immediately above it. The
// analyzer name must match and the reason must be non-empty — a
// directive without a reason does not suppress anything, so every
// exemption in the tree documents why it is safe. The directive is the
// machine-readable form of "documented exception": the ctxflow detach in
// internal/client/remote.go and the deprecated v1 wrappers in progqoi.go
// are the canonical users.
package analysisutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "progqoivet:allow"

// Allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed by a well-formed //progqoivet:allow directive in file — on
// the same line or the line immediately above.
func Allowed(pass *analysis.Pass, file *ast.File, pos token.Pos, name string) bool {
	line := pass.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, DirectivePrefix)
			if !ok {
				continue
			}
			cl := pass.Fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			// "<analyzer> -- <reason>": both parts are mandatory.
			analyzer, reason, ok := strings.Cut(strings.TrimSpace(rest), "--")
			if !ok || strings.TrimSpace(reason) == "" {
				continue
			}
			if strings.TrimSpace(analyzer) == name {
				return true
			}
		}
	}
	return false
}

// FileFor returns the *ast.File of pass containing pos, or nil.
func FileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos sits in a _test.go file.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// PkgMatch reports whether the package path matches any element of the
// comma-separated list. An empty list matches every package — fixture
// packages run the analyzers unrestricted.
func PkgMatch(list, path string) bool {
	if strings.TrimSpace(list) == "" {
		return true
	}
	for _, p := range strings.Split(list, ",") {
		if strings.TrimSpace(p) == path {
			return true
		}
	}
	return false
}

// FuncFor returns the innermost function enclosing the node at the top
// of stack (a WithStack stack, outermost first): the body of a FuncDecl
// or FuncLit, or nil at package scope.
func FuncFor(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// FuncName returns the declared name of the function node returned by
// FuncFor ("" for function literals and nil).
func FuncName(fn ast.Node) string {
	if d, ok := fn.(*ast.FuncDecl); ok {
		return d.Name.Name
	}
	return ""
}

// IsNamedType reports whether t (after pointer indirection and alias
// unwrapping) is the named type pkgName.typeName, matching the package
// by name rather than import path so analyzer fixtures can declare
// stand-in packages.
func IsNamedType(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// Callee resolves the called function/method object of call, or nil.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Obj()
		}
		return info.Uses[f.Sel]
	}
	return nil
}

// IsPkgFunc reports whether obj is the package-level function pkg.name,
// matching the package by path.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// ExprString renders e compactly for diagnostics and receiver matching.
func ExprString(e ast.Expr) string {
	return types.ExprString(e)
}
