// Package ctxflow defines an analyzer enforcing the PR 2 context
// contract: cancellation flows end to end, so code below main must not
// mint fresh root contexts or issue context-free HTTP requests.
//
// Two rules:
//
//  1. context.Background() and context.TODO() are banned outside
//     package main and _test.go files. Library code receives its
//     context from the caller; a fresh root silently detaches I/O from
//     the session's deadline and cancel — exactly the bug class PR 2
//     eliminated by threading ctx through Retrieve, Prefetch, Advance
//     and the whole client. Two shapes are exempt: defaulting a nil
//     context ("if ctx == nil { ctx = context.Background() }"), which
//     preserves a caller-supplied context whenever one exists, and
//     sites carrying a //progqoivet:allow ctxflow -- <reason>
//     directive — the documented read-ahead detach in
//     internal/client/remote.go (speculative fetches must outlive the
//     iteration that spawned them), the context-free storage.Store
//     adapter reads, and the deprecated v1 wrappers in progqoi.go.
//
//  2. HTTP requests must carry a context: http.NewRequest and the
//     shorthand helpers http.Get/Head/Post/PostForm (package-level or
//     on *http.Client) are banned everywhere in favor of
//     http.NewRequestWithContext. A request built without a context
//     cannot be cancelled, which breaks the client invariant that a
//     dead session stops consuming cluster capacity immediately.
package ctxflow

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"progqoi/internal/analysis/analysisutil"
)

const doc = `check that contexts flow end to end

Bans context.Background()/context.TODO() outside package main and tests
(except nil-context defaulting and explicitly allowed detach points),
and bans the context-free HTTP request constructors in favor of
http.NewRequestWithContext.`

const name = "ctxflow"

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// bareHTTPFuncs are package-level net/http helpers that build requests
// with no context.
var bareHTTPFuncs = map[string]bool{
	"NewRequest": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
}

// bareClientMethods are *http.Client methods that build requests with no
// context.
var bareClientMethods = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		obj := analysisutil.Callee(pass.TypesInfo, call)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
			checkRootContext(pass, call, fn.Name(), stack)
		case fn.Pkg().Path() == "net/http":
			if analysisutil.InTestFile(pass, call.Pos()) {
				// Tests may fire quick context-free requests at httptest
				// servers; the invariant protects production sessions.
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			switch {
			case sig != nil && sig.Recv() == nil && bareHTTPFuncs[fn.Name()]:
				report(pass, call, "http."+fn.Name()+" builds a request without a context; use http.NewRequestWithContext so the session's cancel and deadline reach the wire")
			case sig != nil && sig.Recv() != nil && bareClientMethods[fn.Name()] &&
				analysisutil.IsNamedType(sig.Recv().Type(), "http", "Client"):
				report(pass, call, "(*http.Client)."+fn.Name()+" builds a request without a context; use http.NewRequestWithContext + Do so the session's cancel and deadline reach the wire")
			}
		}
		return true
	})
	return nil, nil
}

// checkRootContext reports a context.Background/TODO call unless it is in
// main, a test, a nil-context default, or an allowed detach point.
func checkRootContext(pass *analysis.Pass, call *ast.CallExpr, name string, stack []ast.Node) {
	if pass.Pkg.Name() == "main" || analysisutil.InTestFile(pass, call.Pos()) {
		return
	}
	if isNilDefault(pass, call, stack) {
		return
	}
	report(pass, call,
		"context."+name+"() detaches this code from the caller's cancellation and deadline; take and forward a context.Context instead (PR 2 contract), or mark a documented detach with //progqoivet:allow ctxflow -- <reason>")
}

// isNilDefault matches the one blessed Background() shape:
//
//	if ctx == nil { ctx = context.Background() }
//
// i.e. the call is the sole RHS of an assignment to an identifier inside
// an if whose condition is that same identifier == nil.
func isNilDefault(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	asg, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || ast.Unparen(asg.Rhs[0]) != call {
		return false
	}
	lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	// Walk outward over the block to the enclosing if.
	for i := len(stack) - 3; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || cond.Op.String() != "==" {
			return false
		}
		x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
		for _, side := range []ast.Expr{x, y} {
			if id, ok := side.(*ast.Ident); ok &&
				pass.TypesInfo.Uses[id] != nil &&
				pass.TypesInfo.Uses[id] == pass.TypesInfo.Uses[lhs] {
				return true
			}
		}
		return false
	}
	return false
}

func report(pass *analysis.Pass, call *ast.CallExpr, msg string) {
	if f := analysisutil.FileFor(pass, call.Pos()); f != nil &&
		analysisutil.Allowed(pass, f, call.Pos(), name) {
		return
	}
	pass.Reportf(call.Pos(), "%s", msg)
}
