package ctxflow_test

import (
	"testing"

	"progqoi/internal/analysis/analyzertest"
	"progqoi/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analyzertest.Run(t, ctxflow.Analyzer, "ctxfix")
}

func TestCtxFlowMainExempt(t *testing.T) {
	analyzertest.Run(t, ctxflow.Analyzer, "ctxmain")
}
