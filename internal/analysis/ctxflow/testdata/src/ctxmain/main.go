// Command ctxmain proves the package-main exemption: roots start here.
package main

import "context"

func main() {
	ctx := context.Background() // ok: main owns the root context
	helper(ctx)
}

func helper(ctx context.Context) {
	_ = ctx
}
