// Package ctxfix exercises the end-to-end context contract: no fresh
// root contexts below main, no context-free HTTP constructors.
package ctxfix

import (
	"context"
	"net/http"
)

func fresh() context.Context {
	return context.Background() // want `detaches this code`
}

func todo() context.Context {
	return context.TODO() // want `detaches this code`
}

// nilDefault is the one blessed Background shape: a caller-supplied
// context is preserved whenever one exists.
func nilDefault(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // ok: nil-context defaulting
	}
	return ctx
}

func wrongDefault(ctx context.Context) context.Context {
	if ctx != nil {
		ctx = context.Background() // want `detaches this code`
	}
	return ctx
}

func detach() context.Context {
	//progqoivet:allow ctxflow -- fixture: a documented read-ahead detach
	return context.Background()
}

func reasonless() context.Context {
	//progqoivet:allow ctxflow
	return context.Background() // want `detaches this code`
}

func requests(ctx context.Context, c *http.Client) {
	_, _ = http.Get("http://cluster.local/index")                       // want `NewRequestWithContext`
	_, _ = c.Get("http://cluster.local/index")                          // want `NewRequestWithContext`
	_, _ = http.NewRequest(http.MethodGet, "http://cluster.local", nil) // want `NewRequestWithContext`

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://cluster.local", nil) // ok
	if err == nil {
		_, _ = c.Do(req) // ok: Do carries the request's context
	}
}
