package grid

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadDims(t *testing.T) {
	cases := [][]int{{}, {0}, {-1}, {3, 0, 2}, {2, -5}}
	for _, dims := range cases {
		if _, err := New(dims...); err == nil {
			t.Errorf("New(%v) should fail", dims)
		}
	}
}

func TestSizeAndStrides(t *testing.T) {
	g := MustNew(4, 3, 5)
	if g.Size() != 60 {
		t.Fatalf("size = %d, want 60", g.Size())
	}
	if g.Stride(0) != 15 || g.Stride(1) != 5 || g.Stride(2) != 1 {
		t.Fatalf("strides = %d,%d,%d", g.Stride(0), g.Stride(1), g.Stride(2))
	}
	if g.NDims() != 3 {
		t.Fatalf("ndims = %d", g.NDims())
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	g := MustNew(3, 7, 2)
	for off := 0; off < g.Size(); off++ {
		c := g.Coords(off)
		if got := g.Index(c...); got != off {
			t.Fatalf("Index(Coords(%d)) = %d", off, got)
		}
	}
}

func TestIndexPanicsOutOfRange(t *testing.T) {
	g := MustNew(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Index(0, 2)
}

func TestIndexPanicsRankMismatch(t *testing.T) {
	g := MustNew(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Index(0)
}

func TestNumLevels(t *testing.T) {
	cases := []struct {
		dims []int
		want int
	}{
		{[]int{1}, 1},
		{[]int{2}, 1},
		{[]int{3}, 2},
		{[]int{5}, 3},
		{[]int{9}, 4},
		{[]int{17}, 5},
		{[]int{100}, 7},
		{[]int{1, 1, 1}, 1},
		{[]int{3, 9}, 4},
		{[]int{512, 512, 512}, 9},
	}
	for _, c := range cases {
		if got := MustNew(c.dims...).NumLevels(); got != c.want {
			t.Errorf("NumLevels%v = %d, want %d", c.dims, got, c.want)
		}
	}
}

func TestLevelStride(t *testing.T) {
	for l, want := range []int{1, 2, 4, 8, 16} {
		if got := LevelStride(l); got != want {
			t.Errorf("LevelStride(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	g := MustNew(2, 3)
	if err := g.Validate(make([]float64, 6)); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := g.Validate(make([]float64, 5)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := MustNew(4, 5)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should be equal")
	}
	if g.Equal(MustNew(5, 4)) {
		t.Fatal("different shape should not be equal")
	}
	if g.Equal(MustNew(4)) {
		t.Fatal("different rank should not be equal")
	}
	if g.Equal(nil) {
		t.Fatal("nil should not be equal")
	}
}

func TestCoordsPanicsOutOfRange(t *testing.T) {
	g := MustNew(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Coords(4)
}

func TestPropertyIndexBijective(t *testing.T) {
	f := func(a, b, c uint8) bool {
		d0, d1, d2 := int(a%7)+1, int(b%7)+1, int(c%7)+1
		g := MustNew(d0, d1, d2)
		seen := make(map[int]bool)
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				for k := 0; k < d2; k++ {
					off := g.Index(i, j, k)
					if off < 0 || off >= g.Size() || seen[off] {
						return false
					}
					seen[off] = true
				}
			}
		}
		return len(seen) == g.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if s := MustNew(2, 3).String(); s != "grid[2 3]" {
		t.Fatalf("String = %q", s)
	}
}
