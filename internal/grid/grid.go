// Package grid provides small N-dimensional uniform-grid utilities shared by
// the multilevel decomposition, the SZ-class compressor, and the synthetic
// dataset generators.
//
// Data is always stored in a flat []float64 in row-major (C) order: the last
// dimension varies fastest. A Grid describes the shape of that flat buffer
// and offers index arithmetic, level geometry for dyadic multilevel methods,
// and bounds-checked slicing helpers.
package grid

import (
	"errors"
	"fmt"
)

// Grid describes the shape of a row-major N-d array.
type Grid struct {
	dims    []int
	strides []int
	size    int
}

// ErrBadDims reports an invalid dimension specification.
var ErrBadDims = errors.New("grid: dimensions must be positive")

// New builds a Grid from dims. It returns ErrBadDims when dims is empty or
// any extent is < 1.
func New(dims ...int) (*Grid, error) {
	if len(dims) == 0 {
		return nil, ErrBadDims
	}
	size := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("%w: got %v", ErrBadDims, dims)
		}
		size *= d
	}
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	g := &Grid{dims: append([]int(nil), dims...), strides: strides, size: size}
	return g, nil
}

// MustNew is New that panics on error; intended for tests and literals.
func MustNew(dims ...int) *Grid {
	g, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return g
}

// NDims returns the number of dimensions.
func (g *Grid) NDims() int { return len(g.dims) }

// Dims returns a copy of the dimension extents.
func (g *Grid) Dims() []int { return append([]int(nil), g.dims...) }

// Dim returns the extent of dimension i.
func (g *Grid) Dim(i int) int { return g.dims[i] }

// Stride returns the row-major stride of dimension i.
func (g *Grid) Stride(i int) int { return g.strides[i] }

// Size returns the total number of elements.
func (g *Grid) Size() int { return g.size }

// Index converts multi-indices to a flat offset. It panics when the number
// of coordinates mismatches the rank or a coordinate is out of range.
func (g *Grid) Index(coords ...int) int {
	if len(coords) != len(g.dims) {
		panic(fmt.Sprintf("grid: Index got %d coords for rank-%d grid", len(coords), len(g.dims)))
	}
	off := 0
	for i, c := range coords {
		if c < 0 || c >= g.dims[i] {
			panic(fmt.Sprintf("grid: coordinate %d out of range [0,%d) in dim %d", c, g.dims[i], i))
		}
		off += c * g.strides[i]
	}
	return off
}

// Coords converts a flat offset back to multi-indices.
func (g *Grid) Coords(off int) []int {
	if off < 0 || off >= g.size {
		panic(fmt.Sprintf("grid: offset %d out of range [0,%d)", off, g.size))
	}
	out := make([]int, len(g.dims))
	for i := range g.dims {
		out[i] = off / g.strides[i]
		off %= g.strides[i]
	}
	return out
}

// String implements fmt.Stringer.
func (g *Grid) String() string { return fmt.Sprintf("grid%v", g.dims) }

// NumLevels returns the number of dyadic levels a multilevel method can use
// on this grid: the largest L such that every dimension with extent > 1 can
// be coarsened L-1 times with stride doubling while keeping at least two
// nodes. A rank-N grid with all extents 1 has a single level.
func (g *Grid) NumLevels() int {
	max := 1
	for _, d := range g.dims {
		l := 1
		for s := 1; s*2 < d; s *= 2 {
			l++
		}
		if l > max {
			max = l
		}
	}
	return max
}

// LevelStride returns the node spacing of level l counted from the finest
// level 0: stride 2^l.
func LevelStride(l int) int {
	s := 1
	for i := 0; i < l; i++ {
		s *= 2
	}
	return s
}

// Validate checks that data has exactly Size elements.
func (g *Grid) Validate(data []float64) error {
	if len(data) != g.size {
		return fmt.Errorf("grid: data length %d does not match %v (size %d)", len(data), g.dims, g.size)
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	return &Grid{dims: append([]int(nil), g.dims...), strides: append([]int(nil), g.strides...), size: g.size}
}

// Equal reports whether two grids have identical shapes.
func (g *Grid) Equal(o *Grid) bool {
	if o == nil || len(g.dims) != len(o.dims) {
		return false
	}
	for i := range g.dims {
		if g.dims[i] != o.dims[i] {
			return false
		}
	}
	return true
}
