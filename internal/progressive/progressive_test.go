package progressive

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"progqoi/internal/grid"
)

var allMethods = []Method{PSZ3, PSZ3Delta, PMGARD, PMGARDHB}

func smoothField(dims []int) []float64 {
	g := grid.MustNew(dims...)
	out := make([]float64, g.Size())
	for off := range out {
		c := g.Coords(off)
		v := 0.0
		for d, x := range c {
			v += math.Sin(2*math.Pi*float64(x)/float64(g.Dim(d))+0.7*float64(d)) * 50 * float64(d+1)
		}
		out[off] = v
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestRefactorAndFullRetrieveAllMethods(t *testing.T) {
	dims := []int{257}
	data := smoothField(dims)
	for _, m := range allMethods {
		ref, err := Refactor(data, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		rd, err := NewReader(ref, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		bound, err := rd.Advance(context.Background(), 0)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got, err := rd.Data()
		if err != nil {
			t.Fatal(err)
		}
		actual := maxAbsDiff(data, got)
		if actual > bound {
			t.Errorf("%v: actual error %g exceeds bound %g", m, actual, bound)
		}
		// Full retrieval should be near-exact.
		if actual > 1e-10*200 {
			t.Errorf("%v: full retrieval error %g too large", m, actual)
		}
	}
}

func TestProgressiveBoundsAlwaysHold(t *testing.T) {
	dims := []int{33, 17}
	data := smoothField(dims)
	targets := []float64{10, 1, 1e-2, 1e-4, 1e-6, 1e-9}
	for _, m := range allMethods {
		ref, err := Refactor(data, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		rd, err := NewReader(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		prevBytes := int64(0)
		for _, tgt := range targets {
			bound, err := rd.Advance(context.Background(), tgt)
			if err != nil {
				t.Fatalf("%v target %g: %v", m, tgt, err)
			}
			if bound > tgt {
				t.Errorf("%v: bound %g did not reach target %g", m, bound, tgt)
			}
			got, err := rd.Data()
			if err != nil {
				t.Fatal(err)
			}
			if e := maxAbsDiff(data, got); e > bound {
				t.Errorf("%v target %g: actual %g > bound %g", m, tgt, e, bound)
			}
			if rd.RetrievedBytes() < prevBytes {
				t.Errorf("%v: retrieved bytes decreased", m)
			}
			prevBytes = rd.RetrievedBytes()
		}
	}
}

func TestMonotoneBoundsWithinRepresentation(t *testing.T) {
	dims := []int{129}
	data := smoothField(dims)
	for _, m := range allMethods {
		ref, err := Refactor(data, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ref.PrefixBounds); i++ {
			if ref.PrefixBounds[i] > ref.PrefixBounds[i-1] {
				t.Errorf("%v: PrefixBounds not monotone at %d: %g > %g",
					m, i, ref.PrefixBounds[i], ref.PrefixBounds[i-1])
			}
		}
	}
}

func TestDeltaCheaperThanPSZ3OnProgressiveSession(t *testing.T) {
	// The Fig. 2 effect: a session requesting successively tighter bounds
	// costs much more with independent snapshots than with residuals.
	dims := []int{65, 65}
	data := smoothField(dims)
	session := func(m Method) int64 {
		ref, err := Refactor(data, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatal(err)
		}
		rd, _ := NewReader(ref, nil)
		for i := 1; i <= 8; i++ {
			if _, err := rd.Advance(context.Background(), 300*math.Pow(10, -float64(i))); err != nil {
				t.Fatal(err)
			}
		}
		return rd.RetrievedBytes()
	}
	psz3 := session(PSZ3)
	delta := session(PSZ3Delta)
	if delta >= psz3 {
		t.Errorf("delta session (%d B) should beat PSZ3 session (%d B)", delta, psz3)
	}
}

func TestHBTighterThanOB(t *testing.T) {
	// The Fig. 3 effect: for the same requested bound, HB retrieves fewer
	// bytes because its estimate is tighter.
	dims := []int{129, 65}
	data := smoothField(dims)
	cost := func(m Method) int64 {
		ref, err := Refactor(data, dims, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		rd, _ := NewReader(ref, nil)
		if _, err := rd.Advance(context.Background(), 1e-4); err != nil {
			t.Fatal(err)
		}
		return rd.RetrievedBytes()
	}
	ob := cost(PMGARD)
	hb := cost(PMGARDHB)
	if hb >= ob {
		t.Errorf("HB bytes (%d) should be below OB bytes (%d)", hb, ob)
	}
}

func TestFetchCallbackAccounting(t *testing.T) {
	dims := []int{100}
	data := smoothField(dims)
	ref, err := Refactor(data, dims, Options{Method: PMGARDHB})
	if err != nil {
		t.Fatal(err)
	}
	var cbBytes int64
	var calls int
	rd, err := NewReader(ref, func(i int, size int64) {
		cbBytes += size
		calls++
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Advance(context.Background(), 1e-3); err != nil {
		t.Fatal(err)
	}
	if cbBytes != rd.RetrievedBytes() {
		t.Fatalf("callback saw %d bytes, reader counted %d", cbBytes, rd.RetrievedBytes())
	}
	if calls == 0 {
		t.Fatal("no fetch callbacks")
	}
}

func TestAdvanceIdempotentAndMonotone(t *testing.T) {
	dims := []int{64}
	data := smoothField(dims)
	ref, _ := Refactor(data, dims, Options{Method: PMGARDHB})
	rd, _ := NewReader(ref, nil)
	b1, err := rd.Advance(context.Background(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	bytes1 := rd.RetrievedBytes()
	// Re-requesting the same or a looser bound must be free.
	b2, err := rd.Advance(context.Background(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := rd.Advance(context.Background(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.RetrievedBytes() != bytes1 || b1 != b2 || b2 != b3 {
		t.Fatal("repeat/looser requests should be no-ops")
	}
}

func TestAdvanceRejectsBadTarget(t *testing.T) {
	dims := []int{16}
	ref, _ := Refactor(smoothField(dims), dims, Options{Method: PMGARDHB})
	rd, _ := NewReader(ref, nil)
	if _, err := rd.Advance(context.Background(), -1); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := rd.Advance(context.Background(), math.NaN()); err == nil {
		t.Fatal("NaN target accepted")
	}
}

func TestRefactorValidations(t *testing.T) {
	if _, err := Refactor([]float64{1, 2}, []int{3}, Options{Method: PSZ3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Refactor([]float64{1, 2}, []int{2}, Options{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Refactor([]float64{1, 2}, []int{2}, Options{Method: PSZ3, SnapshotEBs: []float64{1e-3, 1e-2}}); err == nil {
		t.Fatal("increasing snapshot bounds accepted")
	}
	if _, err := Refactor([]float64{1, 2}, []int{2}, Options{Method: PSZ3, SnapshotEBs: []float64{-1}}); err == nil {
		t.Fatal("negative snapshot bound accepted")
	}
}

func TestZeroFieldAllMethods(t *testing.T) {
	dims := []int{50}
	data := make([]float64, 50)
	for _, m := range allMethods {
		ref, err := Refactor(data, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		rd, err := NewReader(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := rd.Advance(context.Background(), 1e-12)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if bound > 1e-12 {
			t.Errorf("%v: zero field bound %g", m, bound)
		}
		got, _ := rd.Data()
		for _, v := range got {
			if v != 0 {
				t.Errorf("%v: zero field decoded nonzero", m)
				break
			}
		}
	}
}

func TestMarshalRoundTripAllMethods(t *testing.T) {
	dims := []int{33, 9}
	data := smoothField(dims)
	for _, m := range allMethods {
		ref, err := Refactor(data, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatal(err)
		}
		buf := ref.Marshal()
		ref2, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		rd1, _ := NewReader(ref, nil)
		rd2, err := NewReader(ref2, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		b1, err := rd1.Advance(context.Background(), 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := rd2.Advance(context.Background(), 1e-5)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if b1 != b2 || rd1.RetrievedBytes() != rd2.RetrievedBytes() {
			t.Fatalf("%v: round-trip behaviour differs (%g/%g, %d/%d bytes)", m, b1, b2, rd1.RetrievedBytes(), rd2.RetrievedBytes())
		}
		d1, _ := rd1.Data()
		d2, _ := rd2.Data()
		if maxAbsDiff(d1, d2) != 0 {
			t.Fatalf("%v: round-trip data differs", m)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	dims := []int{20}
	ref, _ := Refactor(smoothField(dims), dims, Options{Method: PMGARDHB})
	buf := ref.Marshal()
	for _, cut := range []int{0, 3, 10, 40, len(buf) / 2, len(buf) - 1} {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 0x77 // method field garbage
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad method not detected")
	}
}

func TestLevelMajorOrderStillSound(t *testing.T) {
	dims := []int{65}
	data := smoothField(dims)
	ref, err := Refactor(data, dims, Options{Method: PMGARDHB, Order: LevelMajorOrder})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := NewReader(ref, nil)
	bound, err := rd.Advance(context.Background(), 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := rd.Data()
	if e := maxAbsDiff(data, got); e > bound || bound > 1e-5 {
		t.Fatalf("level-major: actual %g bound %g", e, bound)
	}
}

func TestGreedyBeatsLevelMajorAtLooseTargets(t *testing.T) {
	dims := []int{129, 33}
	data := smoothField(dims)
	cost := func(o Order) int64 {
		ref, err := Refactor(data, dims, Options{Method: PMGARDHB, Order: o})
		if err != nil {
			t.Fatal(err)
		}
		rd, _ := NewReader(ref, nil)
		if _, err := rd.Advance(context.Background(), 1.0); err != nil {
			t.Fatal(err)
		}
		return rd.RetrievedBytes()
	}
	if g, lm := cost(GreedyOrder), cost(LevelMajorOrder); g > lm {
		t.Errorf("greedy (%d B) should not exceed level-major (%d B) at loose targets", g, lm)
	}
}

func TestPropertyAllMethodsBoundSound(t *testing.T) {
	shapes := [][]int{{31}, {12, 11}, {5, 6, 7}}
	f := func(seed int64, msel, ssel uint8, tExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := shapes[int(ssel)%len(shapes)]
		g := grid.MustNew(dims...)
		data := make([]float64, g.Size())
		for i := range data {
			data[i] = rng.NormFloat64() * 10
		}
		m := allMethods[int(msel)%len(allMethods)]
		ref, err := Refactor(data, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			return false
		}
		rd, err := NewReader(ref, nil)
		if err != nil {
			return false
		}
		target := math.Pow(10, -float64(tExp%10))
		bound, err := rd.Advance(context.Background(), target)
		if err != nil {
			return false
		}
		got, err := rd.Data()
		if err != nil {
			return false
		}
		return maxAbsDiff(data, got) <= bound && bound <= target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataBytesAccounting(t *testing.T) {
	dims := []int{200}
	ref, err := Refactor(smoothField(dims), dims, Options{Method: PMGARDHB})
	if err != nil {
		t.Fatal(err)
	}
	meta := ref.MetadataBytes()
	if meta <= 0 {
		t.Fatalf("metadata bytes = %d", meta)
	}
	// Metadata + framed fragments + count must equal the marshalled size.
	total := int64(len(ref.Marshal()))
	if meta+ref.TotalBytes()+4*int64(len(ref.Fragments))+4 != total {
		t.Fatalf("accounting mismatch: meta %d + frags %d != total %d", meta, ref.TotalBytes(), total)
	}
}

func TestPSZ3SkipsLooseSnapshots(t *testing.T) {
	// A first request at a tight bound must fetch exactly one snapshot —
	// the matching one — not the looser prefix.
	dims := []int{300}
	data := smoothField(dims)
	ref, err := Refactor(data, dims, Options{Method: PSZ3, LosslessTail: true})
	if err != nil {
		t.Fatal(err)
	}
	var fetched []int
	rd, _ := NewReader(ref, func(i int, size int64) { fetched = append(fetched, i) })
	rng := 0.0
	for _, v := range data {
		if v > rng {
			rng = v
		}
	}
	if _, err := rd.Advance(context.Background(), ref.SnapshotEBs[5]); err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 1 || fetched[0] != 5 {
		t.Fatalf("expected single fetch of snapshot 5, got %v", fetched)
	}
}

func TestDeltaFetchesPrefix(t *testing.T) {
	dims := []int{300}
	ref, err := Refactor(smoothField(dims), dims, Options{Method: PSZ3Delta, LosslessTail: true})
	if err != nil {
		t.Fatal(err)
	}
	var fetched []int
	rd, _ := NewReader(ref, func(i int, size int64) { fetched = append(fetched, i) })
	if _, err := rd.Advance(context.Background(), ref.SnapshotEBs[3]); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	if len(fetched) != len(want) {
		t.Fatalf("fetched %v, want %v", fetched, want)
	}
	for i := range want {
		if fetched[i] != want[i] {
			t.Fatalf("fetched %v, want %v", fetched, want)
		}
	}
}

func TestDataAtResolution(t *testing.T) {
	dims := []int{33, 17}
	data := smoothField(dims)
	ref, err := Refactor(data, dims, Options{Method: PMGARDHB})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := NewReader(ref, nil)
	if _, err := rd.Advance(context.Background(), 1e-6); err != nil {
		t.Fatal(err)
	}
	coarse, cdims, err := rd.DataAtResolution(1)
	if err != nil {
		t.Fatal(err)
	}
	if cdims[0] != 17 || cdims[1] != 9 {
		t.Fatalf("coarse dims = %v", cdims)
	}
	// HB coarse values subsample the full reconstruction: compare against
	// the full-resolution data at even coordinates.
	full, err := rd.Data()
	if err != nil {
		t.Fatal(err)
	}
	g := grid.MustNew(dims...)
	idx := 0
	for y := 0; y < dims[0]; y += 2 {
		for x := 0; x < dims[1]; x += 2 {
			if coarse[idx] != full[g.Index(y, x)] {
				t.Fatalf("coarse (%d,%d) = %g, full = %g", y, x, coarse[idx], full[g.Index(y, x)])
			}
			idx++
		}
	}
	// Full resolution via DataAtResolution(0) must match Data().
	lvl0, _, err := rd.DataAtResolution(0)
	if err != nil {
		t.Fatal(err)
	}
	full2, _ := rd.Data()
	if maxAbsDiff(lvl0, full2) != 0 {
		t.Fatal("level-0 differs from Data()")
	}
}

func TestDataAtResolutionUnsupported(t *testing.T) {
	dims := []int{40}
	ref, _ := Refactor(smoothField(dims), dims, Options{Method: PSZ3})
	rd, _ := NewReader(ref, nil)
	if _, _, err := rd.DataAtResolution(1); err == nil {
		t.Fatal("snapshot method should not support resolution progression")
	}
}

func TestMethodString(t *testing.T) {
	want := map[Method]string{PSZ3: "PSZ3", PSZ3Delta: "PSZ3-delta", PMGARD: "PMGARD", PMGARDHB: "PMGARD-HB"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}
