package progressive

import (
	"bytes"
	"math"
	"testing"
)

// TestRefactorParallelBitIdentical is the ingest-side determinism
// guarantee: for every method, refactoring with a worker pool produces a
// marshalled representation byte-identical to the sequential path.
func TestRefactorParallelBitIdentical(t *testing.T) {
	n := 6000
	data := make([]float64, n)
	for i := range data {
		data[i] = 40*math.Sin(float64(i)/60) + 3*math.Cos(float64(i)/7)
	}
	// A few exact zeros so sign/plane slicing sees them.
	for i := 0; i < n; i += 997 {
		data[i] = 0
	}
	for _, method := range []Method{PSZ3, PSZ3Delta, PMGARD, PMGARDHB} {
		base, err := Refactor(data, []int{n}, Options{Method: method, LosslessTail: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", method, err)
		}
		want := base.Marshal()
		for _, workers := range []int{2, 4, 16} {
			ref, err := Refactor(data, []int{n}, Options{Method: method, LosslessTail: true, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", method, workers, err)
			}
			if !bytes.Equal(want, ref.Marshal()) {
				t.Fatalf("%s workers=%d: representation differs from sequential", method, workers)
			}
		}
	}
}

// TestRefactorDefaultWorkers checks the default resolves to a parallel
// pool without changing the representation (spot check against 2-D grids,
// where PMGARD has many groups to schedule).
func TestRefactorDefaultWorkers(t *testing.T) {
	n := 64 * 48
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i) / 11)
	}
	seq, err := Refactor(data, []int{64, 48}, Options{Method: PMGARDHB, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Refactor(data, []int{64, 48}, Options{Method: PMGARDHB})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Marshal(), def.Marshal()) {
		t.Fatal("default-workers representation differs from sequential")
	}
}
