package progressive

// parallel_test.go proves the worker-pool decode path: for every method and
// worker count the parallel Reader must produce bit-identical
// reconstructions, equal bounds, and equal byte accounting versus the
// sequential reference — including across cancellation mid-pool, where the
// committed prefix must leave the reader resumable.

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// advanceLadder drives rd through a tightening target ladder, returning the
// final (bound, retrieved, data-bits) state.
func advanceLadder(t *testing.T, rd *Reader, targets []float64) (float64, int64, []uint64) {
	t.Helper()
	var bound float64
	for _, tg := range targets {
		var err error
		bound, err = rd.Advance(context.Background(), tg)
		if err != nil {
			t.Fatalf("advance to %g: %v", tg, err)
		}
	}
	data, err := rd.Data()
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]uint64, len(data))
	for i, v := range data {
		bits[i] = math.Float64bits(v)
	}
	return bound, rd.RetrievedBytes(), bits
}

func TestAdvanceParallelMatchesSequential(t *testing.T) {
	dims := []int{37, 41}
	field := smoothField(dims)
	for _, m := range allMethods {
		ref, err := Refactor(field, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		targets := []float64{1e-1, 1e-3, 1e-6, 0}
		seq, err := NewReader(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq.SetWorkers(1)
		wantBound, wantBytes, wantBits := advanceLadder(t, seq, targets)
		for _, workers := range []int{2, 3, 8, 64} {
			rd, err := NewReader(ref, nil)
			if err != nil {
				t.Fatal(err)
			}
			rd.SetWorkers(workers)
			if rd.Workers() != workers {
				t.Fatalf("Workers() = %d, want %d", rd.Workers(), workers)
			}
			bound, bytes, bits := advanceLadder(t, rd, targets)
			if bound != wantBound {
				t.Fatalf("%v workers=%d: bound %g, want %g", m, workers, bound, wantBound)
			}
			if bytes != wantBytes {
				t.Fatalf("%v workers=%d: retrieved %d, want %d", m, workers, bytes, wantBytes)
			}
			for j := range bits {
				if bits[j] != wantBits[j] {
					t.Fatalf("%v workers=%d: point %d differs: %x vs %x", m, workers, j, bits[j], wantBits[j])
				}
			}
		}
	}
}

// TestAdvanceParallelObserverOrder checks the fetch observer still sees
// every fragment exactly once, in plan order, under the parallel path.
func TestAdvanceParallelObserverOrder(t *testing.T) {
	dims := []int{29, 31}
	field := smoothField(dims)
	for _, m := range []Method{PMGARDHB, PSZ3Delta} {
		ref, err := Refactor(field, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		rd, err := NewReader(ref, func(i int, size int64) {
			got = append(got, i)
			if size != int64(len(ref.Fragments[i])) {
				t.Fatalf("fragment %d observed size %d, want %d", i, size, len(ref.Fragments[i]))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		rd.SetWorkers(8)
		if _, err := rd.Advance(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		for k, i := range got {
			if i != k {
				t.Fatalf("%v: observer saw fragment %d at position %d", m, i, k)
			}
		}
		if len(got) != len(ref.Fragments) {
			t.Fatalf("%v: observer saw %d fragments, want %d", m, len(got), len(ref.Fragments))
		}
	}
}

// countdownCtx reports cancellation after its Err method has been consulted
// n times — a deterministic way to cancel mid-pool.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestAdvanceParallelCancelMidPoolResumes(t *testing.T) {
	dims := []int{33, 35}
	field := smoothField(dims)
	for _, m := range []Method{PMGARDHB, PSZ3Delta} {
		ref, err := Refactor(field, dims, Options{Method: m, LosslessTail: true})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewReader(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq.SetWorkers(1)
		wantBound, wantBytes, wantBits := advanceLadder(t, seq, []float64{0})

		rd, err := NewReader(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		rd.SetWorkers(4)
		ctx := &countdownCtx{Context: context.Background()}
		ctx.left.Store(3) // cancel after a few pool tasks
		bound, err := rd.Advance(ctx, 0)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: cancelled advance returned %v", m, err)
		}
		if math.IsNaN(bound) || bound < wantBound {
			t.Fatalf("%v: bound after cancel %g below final %g", m, bound, wantBound)
		}
		if rd.RetrievedBytes() > wantBytes {
			t.Fatalf("%v: cancelled advance accounted %d bytes > total %d", m, rd.RetrievedBytes(), wantBytes)
		}
		// The committed prefix must leave the reader resumable: finishing the
		// retrieval yields the exact sequential end state with no double
		// accounting.
		bound, werr := rd.Advance(context.Background(), 0)
		if werr != nil {
			t.Fatalf("%v: resume: %v", m, werr)
		}
		if bound != wantBound {
			t.Fatalf("%v: resumed bound %g, want %g", m, bound, wantBound)
		}
		if rd.RetrievedBytes() != wantBytes {
			t.Fatalf("%v: resumed retrieved %d, want %d", m, rd.RetrievedBytes(), wantBytes)
		}
		data, err := rd.Data()
		if err != nil {
			t.Fatal(err)
		}
		for j := range data {
			if math.Float64bits(data[j]) != wantBits[j] {
				t.Fatalf("%v: resumed point %d differs", m, j)
			}
		}
	}
}

func TestIngestShortFragmentTypedError(t *testing.T) {
	dims := []int{21, 23}
	field := smoothField(dims)
	for _, workers := range []int{1, 4} {
		// An emptied fragment payload (the remote layer failed to install it)
		// must surface as ErrShortFragment, not a panic.
		ref, err := Refactor(field, dims, Options{Method: PMGARDHB})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := NewReader(ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		rd.SetWorkers(workers)
		saved := ref.Fragments[2]
		ref.Fragments[2] = nil
		if _, err := rd.Advance(context.Background(), 0); !errors.Is(err, ErrShortFragment) {
			t.Fatalf("workers=%d: empty fragment returned %v, want ErrShortFragment", workers, err)
		}
		// The two committed fragments stay ingested; restoring the payload
		// resumes cleanly.
		if rd.RetrievedBytes() != int64(len(ref.Fragments[0])+len(ref.Fragments[1])) {
			t.Fatalf("workers=%d: committed prefix accounted %d bytes", workers, rd.RetrievedBytes())
		}
		ref.Fragments[2] = saved
		if _, err := rd.Advance(context.Background(), 0); err != nil {
			t.Fatalf("workers=%d: resume after repair: %v", workers, err)
		}

		// A cursor raced past the representation must bounds-check, not
		// panic, and a plan over truncated metadata must clamp.
		ref2, err := Refactor(field, dims, Options{Method: PMGARDHB})
		if err != nil {
			t.Fatal(err)
		}
		rd2, err := NewReader(ref2, nil)
		if err != nil {
			t.Fatal(err)
		}
		rd2.SetWorkers(workers)
		if _, err := rd2.fragment(len(ref2.Fragments)); !errors.Is(err, ErrShortFragment) {
			t.Fatalf("workers=%d: out-of-range fragment returned %v, want ErrShortFragment", workers, err)
		}
		if _, err := rd2.fragment(-1); !errors.Is(err, ErrShortFragment) {
			t.Fatalf("workers=%d: negative fragment returned %v, want ErrShortFragment", workers, err)
		}
		ref2.PrefixBounds = ref2.PrefixBounds[:1] // metadata shorter than fragments
		if plan := rd2.Plan(0); len(plan) > 1 {
			t.Fatalf("workers=%d: plan over truncated metadata wants %d fragments", workers, len(plan))
		}
		if _, err := rd2.Advance(context.Background(), 0); err != nil {
			t.Fatalf("workers=%d: clamped advance: %v", workers, err)
		}

		// A corrupt schedule that skips a plane must fail typed, not decode
		// garbage.
		ref3, err := Refactor(field, dims, Options{Method: PMGARDHB})
		if err != nil {
			t.Fatal(err)
		}
		rd3, err := NewReader(ref3, nil)
		if err != nil {
			t.Fatal(err)
		}
		rd3.SetWorkers(workers)
		g := ref3.Schedule[1].Group
		for i := 2; i < len(ref3.Schedule); i++ {
			if ref3.Schedule[i].Group == g {
				ref3.Schedule[1] = ref3.Schedule[i] // duplicate a later plane of the same group
				break
			}
		}
		if _, err := rd3.Advance(context.Background(), 0); !errors.Is(err, ErrShortFragment) {
			t.Fatalf("workers=%d: skipped plane returned %v, want ErrShortFragment", workers, err)
		}
	}
}
