package progressive

import (
	"context"
	"fmt"
	"math"

	"progqoi/internal/bitplane"
	"progqoi/internal/encoding"
	"progqoi/internal/grid"
	"progqoi/internal/mgard"
	"progqoi/internal/sz"
)

// FetchFunc observes fragment retrieval: it is invoked once per fragment
// with its byte size before the fragment is ingested. The network simulator
// and the byte accounting hook in here. A nil FetchFunc is allowed.
type FetchFunc func(fragIndex int, size int64)

// Reader incrementally retrieves a Refactored variable. It implements the
// paper's progressive_construct: each Advance ingests just enough additional
// fragments to guarantee the requested L∞ bound, reusing everything already
// retrieved.
type Reader struct {
	src   *Refactored
	fetch FetchFunc

	nextFrag  int
	bound     float64
	retrieved int64

	// Snapshot reconstruction state.
	data  []float64
	dirty bool

	// PMGARD state.
	blocks []*bitplane.Block
	decs   []*bitplane.Decoder
	shell  *mgard.Decomposition
	grd    *grid.Grid
}

// NewReader opens a reader over r. No fragments are fetched yet; Bound()
// starts at the no-data bound and Data() returns zeros.
func NewReader(r *Refactored, fetch FetchFunc) (*Reader, error) {
	g, err := grid.New(r.Dims...)
	if err != nil {
		return nil, err
	}
	rd := &Reader{src: r, fetch: fetch, grd: g, bound: math.Inf(1), dirty: true}
	switch r.Method {
	case PSZ3, PSZ3Delta:
		rd.data = make([]float64, g.Size())
	case PMGARD, PMGARDHB:
		shell := mgard.NewShell(g, r.Basis)
		if shell.NumGroups() != len(r.Blocks) {
			return nil, fmt.Errorf("%w: %d blocks for %d groups", encoding.ErrCorrupt, len(r.Blocks), shell.NumGroups())
		}
		rd.shell = shell
		rd.decs = make([]*bitplane.Decoder, len(r.Blocks))
		// Each reader gets private copies of the block metadata: ingesting
		// a fragment reattaches its payload to the block, and concurrent
		// readers over one Refactored must not share that mutable state.
		rd.blocks = make([]*bitplane.Block, len(r.Blocks))
		for i, blk := range r.Blocks {
			if blk.N != shell.GroupSize(i) {
				return nil, fmt.Errorf("%w: block %d has %d coefficients, want %d", encoding.ErrCorrupt, i, blk.N, shell.GroupSize(i))
			}
			cp := *blk
			cp.Planes = make([][]byte, len(blk.Planes))
			copy(cp.Planes, blk.Planes)
			rd.blocks[i] = &cp
			rd.decs[i] = bitplane.NewDecoder(rd.blocks[i])
		}
		rd.bound = rd.pmgardBound()
	default:
		return nil, fmt.Errorf("progressive: unknown method %d", r.Method)
	}
	return rd, nil
}

// Bound returns the current guaranteed L∞ bound of Data() versus the
// original field. Before any fragment arrives it is +Inf for snapshot
// methods and the zero-data bound for PMGARD methods.
func (rd *Reader) Bound() float64 { return rd.bound }

// RetrievedBytes returns the cumulative fragment bytes fetched so far.
func (rd *Reader) RetrievedBytes() int64 { return rd.retrieved }

// Exhausted reports whether every fragment has been ingested.
func (rd *Reader) Exhausted() bool { return rd.nextFrag >= len(rd.src.Fragments) }

// Plan returns the indices of the fragments the next Advance(target) will
// ingest, in ingestion order, without fetching or ingesting anything —
// Advance itself executes this plan. A remote retrieval layer uses it to
// pull every needed fragment in one batched round trip before Advance
// runs. An invalid or already-satisfied target plans nothing.
func (rd *Reader) Plan(target float64) []int {
	if target < 0 || math.IsNaN(target) || rd.bound <= target {
		return nil
	}
	switch rd.src.Method {
	case PSZ3:
		// The loosest not-yet-passed snapshot meeting target, or the
		// tightest available.
		want := -1
		for i := rd.nextFrag; i < len(rd.src.Fragments); i++ {
			if rd.src.PrefixBounds[i] <= target {
				want = i
				break
			}
		}
		if want < 0 {
			want = len(rd.src.Fragments) - 1
		}
		if want < rd.nextFrag {
			return nil
		}
		return []int{want}
	default:
		// PSZ3Delta and the PMGARD methods ingest the fragment prefix until
		// the tracked bound reaches target.
		var out []int
		b := rd.bound
		for i := rd.nextFrag; b > target && i < len(rd.src.Fragments); i++ {
			out = append(out, i)
			b = rd.src.PrefixBounds[i]
		}
		return out
	}
}

// Advance ingests fragments until the guaranteed bound is ≤ target or the
// representation is exhausted. target must be non-negative. It returns the
// achieved bound. The fragments ingested are exactly those Plan(target)
// reports — Advance consumes the plan, so the selection logic cannot
// diverge between the local and remote (prefetching) paths.
//
// ctx is checked between fragment ingests: on cancellation Advance stops
// early with ctx's error and the bound achieved so far. Fragments already
// ingested stay ingested, so the reader remains valid and a later Advance
// resumes from exactly where this one stopped. A nil ctx means
// context.Background().
func (rd *Reader) Advance(ctx context.Context, target float64) (float64, error) {
	if target < 0 || math.IsNaN(target) {
		return rd.bound, fmt.Errorf("%w: target %g", ErrBadRequest, target)
	}
	for _, i := range rd.Plan(target) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return rd.bound, err
			}
		}
		var err error
		switch rd.src.Method {
		case PSZ3, PSZ3Delta:
			err = rd.ingestSnapshot(i)
		default:
			err = rd.ingestPlane(i)
		}
		if err != nil {
			return rd.bound, err
		}
	}
	switch rd.src.Method {
	case PMGARD, PMGARDHB:
		if rd.bound > target && rd.Exhausted() {
			// Everything retrieved: the bound is the residual truncation
			// bound.
			rd.bound = rd.pmgardBound()
		}
	}
	return rd.bound, nil
}

func (rd *Reader) ingest(i int) []byte {
	f := rd.src.Fragments[i]
	if rd.fetch != nil {
		rd.fetch(i, int64(len(f)))
	}
	rd.retrieved += int64(len(f))
	return f
}

// ingestSnapshot fetches and applies snapshot fragment i. PSZ3 snapshots
// replace the reconstruction (re-fetching tighter ones later duplicates
// bytes — PSZ3's inherent redundancy); PSZ3-Delta residuals accumulate.
func (rd *Reader) ingestSnapshot(i int) error {
	buf := rd.ingest(i)
	delta := rd.src.Method == PSZ3Delta
	if rd.src.HasTail && i == len(rd.src.Fragments)-1 {
		vals, err := decodeLossless(buf, rd.grd.Size())
		if err != nil {
			return err
		}
		if delta {
			for j := range rd.data {
				rd.data[j] += vals[j]
			}
		} else {
			copy(rd.data, vals)
		}
		rd.bound = 0
	} else {
		dec, g, eb, err := sz.Decompress(buf)
		if err != nil {
			return err
		}
		if !g.Equal(rd.grd) {
			return fmt.Errorf("%w: snapshot grid %v, want %v", encoding.ErrCorrupt, g.Dims(), rd.grd.Dims())
		}
		if delta {
			for j := range rd.data {
				rd.data[j] += dec[j]
			}
		} else {
			copy(rd.data, dec)
		}
		rd.bound = eb
	}
	rd.nextFrag = i + 1
	return nil
}

// ingestPlane fetches scheduled plane fragment i and feeds it to its
// group's bit-plane decoder.
func (rd *Reader) ingestPlane(i int) error {
	ref := rd.src.Schedule[i]
	buf := rd.ingest(i)
	blk := rd.blocks[ref.Group]
	// Reattach the fragment payload to the metadata block so the decoder
	// can see it.
	if ref.Plane == 0 {
		signs, n, err := encoding.GetSection(buf)
		if err != nil {
			return err
		}
		plane, _, err := encoding.GetSection(buf[n:])
		if err != nil {
			return err
		}
		blk.Signs = signs
		blk.Planes[0] = plane
	} else {
		plane, _, err := encoding.GetSection(buf)
		if err != nil {
			return err
		}
		blk.Planes[ref.Plane] = plane
	}
	if err := rd.decs[ref.Group].Advance(ref.Plane + 1); err != nil {
		return err
	}
	rd.nextFrag = i + 1
	rd.bound = rd.src.PrefixBounds[i]
	rd.dirty = true
	return nil
}

func (rd *Reader) pmgardBound() float64 {
	factors := rd.shell.LevelFactors()
	total, slack := 0.0, 0.0
	for i, dec := range rd.decs {
		total += factors[i] * dec.Bound()
		// Same floating-point slack the refactorer bakes into PrefixBounds.
		if s := rd.blocks[i].Bound(0) * math.Ldexp(1, -46); s > slack {
			slack = s
		}
	}
	return total + slack
}

// DataAtResolution reconstructs the current approximation at a reduced
// resolution: level 0 is full resolution, each higher level halves every
// dimension (PMGARD's progression-in-resolution, available alongside the
// precision progression). Only PMGARD-family readers support it. It returns
// the coarse field and its dims.
func (rd *Reader) DataAtResolution(level int) ([]float64, []int, error) {
	switch rd.src.Method {
	case PMGARD, PMGARDHB:
	default:
		return nil, nil, fmt.Errorf("progressive: %v does not support resolution progression", rd.src.Method)
	}
	for gi, dec := range rd.decs {
		if err := rd.shell.SetGroup(gi, dec.Values()); err != nil {
			return nil, nil, err
		}
	}
	rd.dirty = true // shell coefficients were touched; Data() must rebuild
	vals, g, err := rd.shell.ReconstructToLevel(level)
	if err != nil {
		return nil, nil, err
	}
	return vals, g.Dims(), nil
}

// Data returns the current reconstruction. The returned slice is owned by
// the reader; callers must copy it if they mutate.
func (rd *Reader) Data() ([]float64, error) {
	switch rd.src.Method {
	case PSZ3, PSZ3Delta:
		return rd.data, nil
	default:
		if rd.dirty {
			for gi, dec := range rd.decs {
				if err := rd.shell.SetGroup(gi, dec.Values()); err != nil {
					return nil, err
				}
			}
			rd.data = rd.shell.Reconstruct()
			rd.dirty = false
		}
		return rd.data, nil
	}
}
