package progressive

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"progqoi/internal/bitplane"
	"progqoi/internal/encoding"
	"progqoi/internal/grid"
	"progqoi/internal/mgard"
	"progqoi/internal/obs"
	"progqoi/internal/sz"
)

// ErrShortFragment reports a fragment that is missing, empty, or addressed
// outside the representation — the failure mode of a plan raced against a
// mutated Refactored or of a truncated remote payload. It is returned as a
// typed error instead of letting the ingest path index out of range.
var ErrShortFragment = errors.New("progressive: short or missing fragment")

// FetchFunc observes fragment retrieval: it is invoked exactly once per
// successfully ingested fragment with its byte size, serially and in plan
// order, after the fragment decodes cleanly (a fragment that fails to
// decode is never reported). The network simulator and the byte accounting
// hook in here. A nil FetchFunc is allowed.
type FetchFunc func(fragIndex int, size int64)

// Reader incrementally retrieves a Refactored variable. It implements the
// paper's progressive_construct: each Advance ingests just enough additional
// fragments to guarantee the requested L∞ bound, reusing everything already
// retrieved.
type Reader struct {
	src   *Refactored
	fetch FetchFunc

	// workers bounds the decode pool used by Advance; 1 selects the plain
	// sequential path. Parallel and sequential decode are bit-identical.
	workers int

	// trace, when non-nil, records one decode span per Advance that
	// ingests fragments; traceName labels it (the variable name) and
	// traceIter tags the owning retrieval iteration.
	trace     *obs.Trace
	traceName string
	traceIter int

	nextFrag  int
	bound     float64
	retrieved int64

	// Snapshot reconstruction state.
	data  []float64
	dirty bool

	// PMGARD state.
	blocks []*bitplane.Block
	decs   []*bitplane.Decoder
	shell  *mgard.Decomposition
	grd    *grid.Grid
}

// NewReader opens a reader over r. No fragments are fetched yet; Bound()
// starts at the no-data bound and Data() returns zeros.
func NewReader(r *Refactored, fetch FetchFunc) (*Reader, error) {
	g, err := grid.New(r.Dims...)
	if err != nil {
		return nil, err
	}
	rd := &Reader{src: r, fetch: fetch, grd: g, bound: math.Inf(1), dirty: true, workers: runtime.GOMAXPROCS(0)}
	switch r.Method {
	case PSZ3, PSZ3Delta:
		rd.data = make([]float64, g.Size())
	case PMGARD, PMGARDHB:
		shell := mgard.NewShell(g, r.Basis)
		if shell.NumGroups() != len(r.Blocks) {
			return nil, fmt.Errorf("%w: %d blocks for %d groups", encoding.ErrCorrupt, len(r.Blocks), shell.NumGroups())
		}
		rd.shell = shell
		rd.decs = make([]*bitplane.Decoder, len(r.Blocks))
		// Each reader gets private copies of the block metadata: ingesting
		// a fragment reattaches its payload to the block, and concurrent
		// readers over one Refactored must not share that mutable state.
		rd.blocks = make([]*bitplane.Block, len(r.Blocks))
		for i, blk := range r.Blocks {
			if blk.N != shell.GroupSize(i) {
				return nil, fmt.Errorf("%w: block %d has %d coefficients, want %d", encoding.ErrCorrupt, i, blk.N, shell.GroupSize(i))
			}
			cp := *blk
			cp.Planes = make([][]byte, len(blk.Planes))
			copy(cp.Planes, blk.Planes)
			rd.blocks[i] = &cp
			rd.decs[i] = bitplane.NewDecoder(rd.blocks[i])
		}
		rd.bound = rd.pmgardBound()
	default:
		return nil, fmt.Errorf("progressive: unknown method %d", r.Method)
	}
	return rd, nil
}

// SetWorkers bounds the fragment-decode worker pool Advance uses. n ≤ 1
// selects the sequential path; n > 1 decodes independent fragments and
// bit planes on up to n goroutines with a deterministic merge, so the
// reconstruction stays bit-identical to the sequential path. The default
// is GOMAXPROCS.
func (rd *Reader) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	rd.workers = n
}

// Workers returns the current decode-pool bound.
func (rd *Reader) Workers() int { return rd.workers }

// SetTrace attaches a span recorder labelled with the variable name this
// reader serves. A nil trace (the default) records nothing and leaves
// the ingest path allocation-free.
func (rd *Reader) SetTrace(tr *obs.Trace, name string) {
	rd.trace = tr
	rd.traceName = name
}

// SetTraceIter tags subsequent decode spans with the owning retrieval
// iteration number.
func (rd *Reader) SetTraceIter(iter int) { rd.traceIter = iter }

// Bound returns the current guaranteed L∞ bound of Data() versus the
// original field. Before any fragment arrives it is +Inf for snapshot
// methods and the zero-data bound for PMGARD methods.
func (rd *Reader) Bound() float64 { return rd.bound }

// RetrievedBytes returns the cumulative fragment bytes fetched so far.
func (rd *Reader) RetrievedBytes() int64 { return rd.retrieved }

// Exhausted reports whether every fragment has been ingested.
func (rd *Reader) Exhausted() bool { return rd.nextFrag >= len(rd.src.Fragments) }

// Plan returns the indices of the fragments the next Advance(target) will
// ingest, in ingestion order, without fetching or ingesting anything —
// Advance itself executes this plan. A remote retrieval layer uses it to
// pull every needed fragment in one batched round trip before Advance
// runs. An invalid or already-satisfied target plans nothing.
func (rd *Reader) Plan(target float64) []int {
	if target < 0 || math.IsNaN(target) || rd.bound <= target {
		return nil
	}
	// Never plan past the metadata actually present: a Refactored whose
	// fragment list and bound/schedule tables disagree (truncated metadata,
	// concurrent mutation) yields a shorter plan instead of an index panic;
	// the ingest path then reports the inconsistency as ErrShortFragment.
	n := len(rd.src.Fragments)
	if len(rd.src.PrefixBounds) < n {
		n = len(rd.src.PrefixBounds)
	}
	switch rd.src.Method {
	case PSZ3:
		// The loosest not-yet-passed snapshot meeting target, or the
		// tightest available.
		want := -1
		for i := rd.nextFrag; i < n; i++ {
			if rd.src.PrefixBounds[i] <= target {
				want = i
				break
			}
		}
		if want < 0 {
			want = n - 1
		}
		if want < rd.nextFrag {
			return nil
		}
		return []int{want}
	default:
		// PSZ3Delta and the PMGARD methods ingest the fragment prefix until
		// the tracked bound reaches target.
		var out []int
		b := rd.bound
		for i := rd.nextFrag; b > target && i < n; i++ {
			out = append(out, i)
			b = rd.src.PrefixBounds[i]
		}
		return out
	}
}

// Advance ingests fragments until the guaranteed bound is ≤ target or the
// representation is exhausted. target must be non-negative. It returns the
// achieved bound. The fragments ingested are exactly those Plan(target)
// reports — Advance consumes the plan, so the selection logic cannot
// diverge between the local and remote (prefetching) paths.
//
// ctx is checked between fragment ingests: on cancellation Advance stops
// early with ctx's error and the bound achieved so far. Fragments already
// ingested stay ingested, so the reader remains valid and a later Advance
// resumes from exactly where this one stopped. A nil ctx means
// context.Background().
func (rd *Reader) Advance(ctx context.Context, target float64) (float64, error) {
	if target < 0 || math.IsNaN(target) {
		return rd.bound, fmt.Errorf("%w: target %g", ErrBadRequest, target)
	}
	plan := rd.Plan(target)
	if rd.trace != nil && len(plan) > 0 {
		m := rd.trace.BeginIter(obs.CatDecode, rd.traceName, rd.traceIter)
		defer m.End()
	}
	var err error
	if rd.workers > 1 && len(plan) > 1 {
		switch rd.src.Method {
		case PSZ3Delta:
			err = rd.advanceSnapshotsParallel(ctx, plan)
		case PMGARD, PMGARDHB:
			err = rd.advancePlanesParallel(ctx, plan)
		default:
			err = rd.advanceSequential(ctx, plan)
		}
	} else {
		err = rd.advanceSequential(ctx, plan)
	}
	if err != nil {
		return rd.bound, err
	}
	switch rd.src.Method {
	case PMGARD, PMGARDHB:
		if rd.bound > target && rd.Exhausted() {
			// Everything retrieved: the bound is the residual truncation
			// bound.
			rd.bound = rd.pmgardBound()
		}
	}
	return rd.bound, nil
}

// advanceSequential ingests the plan one fragment at a time on the calling
// goroutine — the reference path the parallel paths must match bit for bit.
func (rd *Reader) advanceSequential(ctx context.Context, plan []int) error {
	for _, i := range plan {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		var err error
		switch rd.src.Method {
		case PSZ3, PSZ3Delta:
			err = rd.ingestSnapshot(i)
		default:
			err = rd.ingestPlane(i)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fragment bounds-checks and returns the payload of fragment i without
// accounting for it. A plan raced against a mutated Refactored, or a remote
// layer that failed to install a payload, surfaces here as ErrShortFragment
// instead of an index panic.
func (rd *Reader) fragment(i int) ([]byte, error) {
	if i < 0 || i >= len(rd.src.Fragments) || i >= len(rd.src.PrefixBounds) {
		return nil, fmt.Errorf("%w: fragment %d of %d", ErrShortFragment, i, len(rd.src.Fragments))
	}
	f := rd.src.Fragments[i]
	if len(f) == 0 {
		return nil, fmt.Errorf("%w: fragment %d is empty", ErrShortFragment, i)
	}
	return f, nil
}

// account records fragment i as ingested: observer callback, byte counter,
// cursor. It runs on the reader's goroutine, in plan order, for the
// sequential and parallel paths alike.
func (rd *Reader) account(i int, size int) {
	if rd.fetch != nil {
		rd.fetch(i, int64(size))
	}
	rd.retrieved += int64(size)
	rd.nextFrag = i + 1
}

// runPool executes tasks 0..n-1 on at most workers goroutines. A task
// returning false stops the issue of new tasks; tasks already started run
// to completion. It returns when every issued task has finished.
func runPool(workers, n int, task func(int) bool) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if !task(i) {
				return
			}
		}
		return
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if !task(i) {
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// decodedFrag is the stage-1 output of the parallel paths: one fragment's
// payload decoded off the hot path, plus everything the deterministic
// commit stage needs to reattach it.
type decodedFrag struct {
	frag int
	err  error

	// PMGARD planes.
	ref      fragRef
	planeSec []byte // compressed plane section (reattached to the block)
	signsSec []byte // compressed signs section (plane 0 only)
	rawPlane []byte // decompressed plane bitmap
	rawSigns []byte // decompressed sign bitmap (plane 0 only)

	// Snapshots.
	vals  []float64
	bound float64
}

// truncateOK cuts tasks to the contiguous prefix that decoded successfully,
// returning the prefix and the error (decode failure or ctx cancellation)
// that ended it, if any. Committing only that prefix keeps the reader's
// state exactly what sequential ingestion of the same fragments produces.
func truncateOK(ctx context.Context, tasks []decodedFrag) ([]decodedFrag, error) {
	for i := range tasks {
		if tasks[i].err != nil {
			return tasks[:i], tasks[i].err
		}
		if tasks[i].frag < 0 {
			// Task never ran: the pool stopped early. A worker that observed
			// the stop flag may have skipped this slot even though the
			// failure lives at a later index — surface that real error, not
			// a generic one, so the caller sees why decoding stopped.
			for j := i + 1; j < len(tasks); j++ {
				if tasks[j].err != nil {
					return tasks[:i], tasks[j].err
				}
			}
			if err := ctx.Err(); err != nil {
				return tasks[:i], err
			}
			return tasks[:i], fmt.Errorf("%w: decode pool stopped early", ErrShortFragment)
		}
	}
	return tasks, nil
}

// advancePlanesParallel is the PMGARD worker-pool path: stage 1 decompresses
// every planned fragment concurrently (the deflate-dominated cost), stage 2
// ORs the new bit planes into each group's magnitudes over disjoint
// coefficient ranges, and the final stage commits accounting in plan order.
// Because plane application only sets independent bits, any execution order
// yields magnitudes bit-identical to sequential ingestion.
func (rd *Reader) advancePlanesParallel(ctx context.Context, plan []int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	tasks := make([]decodedFrag, len(plan))
	for t := range tasks {
		tasks[t].frag = -1 // marks "not run" for truncateOK
	}
	runPool(rd.workers, len(plan), func(t int) bool {
		if err := ctx.Err(); err != nil {
			tasks[t] = decodedFrag{frag: plan[t], err: err}
			return false
		}
		tasks[t] = rd.decodePlane(plan[t])
		return tasks[t].err == nil
	})
	ok, ferr := truncateOK(ctx, tasks)

	// Validate plane contiguity BEFORE any decoder mutation: a schedule that
	// skips a plane poisons everything after it, and the sequential path
	// rejects such a fragment without touching the decoder — the parallel
	// path must leave the same state behind.
	expected := map[int]int{}
	for i := range ok {
		g := ok[i].ref.Group
		if _, seen := expected[g]; !seen {
			expected[g] = rd.decs[g].Applied()
		}
		if p := ok[i].ref.Plane; p > expected[g] {
			ok = ok[:i]
			ferr = fmt.Errorf("%w: fragment %d skips to plane %d/%d (have %d)",
				ErrShortFragment, tasks[i].frag, g, p, expected[g])
			break
		} else if p+1 > expected[g] {
			expected[g] = p + 1
		}
	}

	// Stage 2: group the committed planes and OR them into each group's
	// decoder over disjoint coefficient chunks.
	type chunk struct {
		group, lo, hi int
		planes        []*decodedFrag
	}
	byGroup := map[int][]*decodedFrag{}
	order := []int{}
	for i := range ok {
		g := ok[i].ref.Group
		if byGroup[g] == nil {
			order = append(order, g)
		}
		byGroup[g] = append(byGroup[g], &ok[i])
	}
	var chunks []chunk
	for _, g := range order {
		n := rd.blocks[g].N
		size := (n + rd.workers - 1) / rd.workers
		if size < 2048 {
			size = 2048
		}
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			chunks = append(chunks, chunk{group: g, lo: lo, hi: hi, planes: byGroup[g]})
		}
	}
	runPool(rd.workers, len(chunks), func(c int) bool {
		ch := chunks[c]
		dec := rd.decs[ch.group]
		for _, p := range ch.planes {
			dec.OrPlane(p.ref.Plane, p.rawPlane, ch.lo, ch.hi)
		}
		return true
	})

	// Deterministic commit, in plan order: reattach payloads, account bytes,
	// advance the cursor and bound exactly as the sequential path does.
	for i := range ok {
		p := &ok[i]
		dec := rd.decs[p.ref.Group]
		blk := rd.blocks[p.ref.Group]
		if p.signsSec != nil {
			blk.Signs = p.signsSec
			dec.SetSigns(p.rawSigns)
		}
		blk.Planes[p.ref.Plane] = p.planeSec
		dec.CommitPlanes(p.ref.Plane + 1)
		rd.account(p.frag, len(rd.src.Fragments[p.frag]))
		rd.bound = rd.src.PrefixBounds[p.frag]
		rd.dirty = true
	}
	return ferr
}

// decodePlane does the per-fragment CPU work of ingestPlane without touching
// reader state: bounds checks, section parsing, bitmap decompression.
func (rd *Reader) decodePlane(i int) decodedFrag {
	out := decodedFrag{frag: i}
	buf, err := rd.fragment(i)
	if err != nil {
		out.err = err
		return out
	}
	if i >= len(rd.src.Schedule) {
		out.err = fmt.Errorf("%w: fragment %d has no schedule entry", ErrShortFragment, i)
		return out
	}
	ref := rd.src.Schedule[i]
	if ref.Group < 0 || ref.Group >= len(rd.blocks) || ref.Plane < 0 || ref.Plane >= len(rd.blocks[ref.Group].Planes) {
		out.err = fmt.Errorf("%w: fragment %d addresses plane %d/%d", ErrShortFragment, i, ref.Group, ref.Plane)
		return out
	}
	out.ref = ref
	blk := rd.blocks[ref.Group]
	if ref.Plane == 0 {
		signs, n, err := encoding.GetSection(buf)
		if err != nil {
			out.err = err
			return out
		}
		plane, _, err := encoding.GetSection(buf[n:])
		if err != nil {
			out.err = err
			return out
		}
		out.signsSec, out.planeSec = signs, plane
		if out.rawSigns, err = blk.RawBitmap(signs); err != nil {
			out.err = fmt.Errorf("bitplane: signs: %w", err)
			return out
		}
	} else {
		plane, _, err := encoding.GetSection(buf)
		if err != nil {
			out.err = err
			return out
		}
		out.planeSec = plane
	}
	var err2 error
	if out.rawPlane, err2 = blk.RawBitmap(out.planeSec); err2 != nil {
		out.err = fmt.Errorf("bitplane: plane %d: %w", ref.Plane, err2)
	}
	return out
}

// advanceSnapshotsParallel is the PSZ3-Delta pool path: residual snapshots
// decompress concurrently, then accumulate into the reconstruction in plan
// order per element chunk — the additions happen in exactly the sequential
// order for every element, so the float64 sums are bit-identical. The plan
// is processed in bounded windows so at most ~2×workers decoded full-field
// buffers are ever held at once (the sequential path holds one).
func (rd *Reader) advanceSnapshotsParallel(ctx context.Context, plan []int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	window := 2 * rd.workers
	if window < 2 {
		window = 2
	}
	for start := 0; start < len(plan); start += window {
		end := start + window
		if end > len(plan) {
			end = len(plan)
		}
		wplan := plan[start:end]
		tasks := make([]decodedFrag, len(wplan))
		for t := range tasks {
			tasks[t].frag = -1
		}
		runPool(rd.workers, len(wplan), func(t int) bool {
			if err := ctx.Err(); err != nil {
				tasks[t] = decodedFrag{frag: wplan[t], err: err}
				return false
			}
			tasks[t] = rd.decodeSnapshot(wplan[t])
			return tasks[t].err == nil
		})
		ok, ferr := truncateOK(ctx, tasks)

		if len(ok) > 0 {
			n := len(rd.data)
			size := (n + rd.workers - 1) / rd.workers
			if size < 4096 {
				size = 4096
			}
			nchunks := (n + size - 1) / size
			runPool(rd.workers, nchunks, func(c int) bool {
				lo := c * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				for t := range ok {
					vals := ok[t].vals
					for j := lo; j < hi; j++ {
						rd.data[j] += vals[j]
					}
				}
				return true
			})
		}
		for i := range ok {
			rd.account(ok[i].frag, len(rd.src.Fragments[ok[i].frag]))
			rd.bound = ok[i].bound
		}
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// decodeSnapshot does the per-fragment CPU work of ingestSnapshot for the
// delta method without touching reader state.
func (rd *Reader) decodeSnapshot(i int) decodedFrag {
	out := decodedFrag{frag: i}
	buf, err := rd.fragment(i)
	if err != nil {
		out.err = err
		return out
	}
	if rd.src.HasTail && i == len(rd.src.Fragments)-1 {
		if out.vals, out.err = decodeLossless(buf, rd.grd.Size()); out.err != nil {
			return out
		}
		out.bound = 0
		return out
	}
	dec, g, eb, err := sz.Decompress(buf)
	if err != nil {
		out.err = err
		return out
	}
	if !g.Equal(rd.grd) {
		out.err = fmt.Errorf("%w: snapshot grid %v, want %v", encoding.ErrCorrupt, g.Dims(), rd.grd.Dims())
		return out
	}
	out.vals, out.bound = dec, eb
	return out
}

// ingestSnapshot fetches and applies snapshot fragment i. PSZ3 snapshots
// replace the reconstruction (re-fetching tighter ones later duplicates
// bytes — PSZ3's inherent redundancy); PSZ3-Delta residuals accumulate.
// Bytes are accounted only once the fragment decodes cleanly.
func (rd *Reader) ingestSnapshot(i int) error {
	buf, err := rd.fragment(i)
	if err != nil {
		return err
	}
	delta := rd.src.Method == PSZ3Delta
	var vals []float64
	bound := 0.0
	if rd.src.HasTail && i == len(rd.src.Fragments)-1 {
		if vals, err = decodeLossless(buf, rd.grd.Size()); err != nil {
			return err
		}
	} else {
		var g *grid.Grid
		vals, g, bound, err = sz.Decompress(buf)
		if err != nil {
			return err
		}
		if !g.Equal(rd.grd) {
			return fmt.Errorf("%w: snapshot grid %v, want %v", encoding.ErrCorrupt, g.Dims(), rd.grd.Dims())
		}
	}
	if delta {
		for j := range rd.data {
			rd.data[j] += vals[j]
		}
	} else {
		copy(rd.data, vals)
	}
	rd.bound = bound
	rd.account(i, len(buf))
	return nil
}

// ingestPlane fetches scheduled plane fragment i and feeds it to its
// group's bit-plane decoder.
func (rd *Reader) ingestPlane(i int) error {
	p := rd.decodePlane(i)
	if p.err != nil {
		return p.err
	}
	dec := rd.decs[p.ref.Group]
	if p.ref.Plane > dec.Applied() {
		return fmt.Errorf("%w: fragment %d skips to plane %d/%d (have %d)",
			ErrShortFragment, i, p.ref.Group, p.ref.Plane, dec.Applied())
	}
	blk := rd.blocks[p.ref.Group]
	// Reattach the fragment payload to the metadata block so the decoder
	// can see it on later replays.
	if p.signsSec != nil {
		blk.Signs = p.signsSec
		dec.SetSigns(p.rawSigns)
	}
	blk.Planes[p.ref.Plane] = p.planeSec
	dec.OrPlane(p.ref.Plane, p.rawPlane, 0, blk.N)
	dec.CommitPlanes(p.ref.Plane + 1)
	rd.account(i, len(rd.src.Fragments[i]))
	rd.bound = rd.src.PrefixBounds[i]
	rd.dirty = true
	return nil
}

func (rd *Reader) pmgardBound() float64 {
	factors := rd.shell.LevelFactors()
	total, slack := 0.0, 0.0
	for i, dec := range rd.decs {
		total += factors[i] * dec.Bound()
		// Same floating-point slack the refactorer bakes into PrefixBounds.
		if s := rd.blocks[i].Bound(0) * math.Ldexp(1, -46); s > slack {
			slack = s
		}
	}
	return total + slack
}

// DataAtResolution reconstructs the current approximation at a reduced
// resolution: level 0 is full resolution, each higher level halves every
// dimension (PMGARD's progression-in-resolution, available alongside the
// precision progression). Only PMGARD-family readers support it. It returns
// the coarse field and its dims.
func (rd *Reader) DataAtResolution(level int) ([]float64, []int, error) {
	switch rd.src.Method {
	case PMGARD, PMGARDHB:
	default:
		return nil, nil, fmt.Errorf("progressive: %v does not support resolution progression", rd.src.Method)
	}
	for gi, dec := range rd.decs {
		if err := rd.shell.SetGroup(gi, dec.Values()); err != nil {
			return nil, nil, err
		}
	}
	rd.dirty = true // shell coefficients were touched; Data() must rebuild
	vals, g, err := rd.shell.ReconstructToLevel(level)
	if err != nil {
		return nil, nil, err
	}
	return vals, g.Dims(), nil
}

// Data returns the current reconstruction. The returned slice is owned by
// the reader; callers must copy it if they mutate.
func (rd *Reader) Data() ([]float64, error) {
	switch rd.src.Method {
	case PSZ3, PSZ3Delta:
		return rd.data, nil
	default:
		if rd.dirty {
			for gi, dec := range rd.decs {
				if err := rd.shell.SetGroup(gi, dec.Values()); err != nil {
					return nil, err
				}
			}
			rd.data = rd.shell.Reconstruct()
			rd.dirty = false
		}
		return rd.data, nil
	}
}
