package progressive

import (
	"encoding/binary"
	"fmt"
	"math"

	"progqoi/internal/bitplane"
	"progqoi/internal/encoding"
	"progqoi/internal/mgard"
)

// Marshal serializes the representation: a metadata header followed by all
// fragments, each framed. The layout is self-describing and validated by
// Unmarshal.
func (r *Refactored) Marshal() []byte {
	var hdr []byte
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		hdr = append(hdr, tmp[:4]...)
	}
	put64 := func(v float64) {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		hdr = append(hdr, tmp[:]...)
	}
	put32(uint32(r.Method))
	put32(uint32(len(r.Dims)))
	for _, d := range r.Dims {
		put32(uint32(d))
	}
	put32(uint32(len(r.PrefixBounds)))
	for _, b := range r.PrefixBounds {
		put64(b)
	}
	put32(uint32(len(r.SnapshotEBs)))
	for _, b := range r.SnapshotEBs {
		put64(b)
	}
	if r.HasTail {
		put32(1)
	} else {
		put32(0)
	}
	put32(uint32(r.Basis))
	put32(uint32(r.Planes))
	put32(uint32(len(r.Schedule)))
	for _, s := range r.Schedule {
		put32(uint32(s.Group))
		put32(uint32(s.Plane))
	}
	put32(uint32(len(r.Blocks)))
	for _, blk := range r.Blocks {
		put32(uint32(blk.N))
		put32(uint32(int32(blk.Exp)))
		put32(uint32(blk.B))
	}

	out := encoding.PutSection(nil, hdr)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(r.Fragments)))
	out = append(out, cnt[:]...)
	for _, f := range r.Fragments {
		out = encoding.PutSection(out, f)
	}
	return out
}

// MetadataBytes returns the size of the marshalled metadata header — the
// upfront cost a retrieval session pays before any fragment.
func (r *Refactored) MetadataBytes() int64 {
	return int64(len(r.Marshal())) - r.TotalBytes() - 4*int64(len(r.Fragments)) - 4
}

// Unmarshal parses Marshal output.
func Unmarshal(data []byte) (*Refactored, error) {
	hdr, n, err := encoding.GetSection(data)
	if err != nil {
		return nil, err
	}
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(hdr) {
			return 0, fmt.Errorf("%w: refactored header truncated", encoding.ErrCorrupt)
		}
		v := binary.LittleEndian.Uint32(hdr[off:])
		off += 4
		return v, nil
	}
	get64 := func() (float64, error) {
		if off+8 > len(hdr) {
			return 0, fmt.Errorf("%w: refactored header truncated", encoding.ErrCorrupt)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(hdr[off:]))
		off += 8
		return v, nil
	}
	r := &Refactored{}
	m, err := get32()
	if err != nil {
		return nil, err
	}
	r.Method = Method(m)
	if r.Method < PSZ3 || r.Method > PMGARDHB {
		return nil, fmt.Errorf("%w: method %d", encoding.ErrCorrupt, m)
	}
	nd, err := get32()
	if err != nil {
		return nil, err
	}
	if nd < 1 || nd > 16 {
		return nil, fmt.Errorf("%w: rank %d", encoding.ErrCorrupt, nd)
	}
	r.Dims = make([]int, nd)
	for i := range r.Dims {
		v, err := get32()
		if err != nil {
			return nil, err
		}
		r.Dims[i] = int(v)
	}
	np, err := get32()
	if err != nil {
		return nil, err
	}
	if np > 1<<24 {
		return nil, fmt.Errorf("%w: %d prefix bounds", encoding.ErrCorrupt, np)
	}
	r.PrefixBounds = make([]float64, np)
	for i := range r.PrefixBounds {
		if r.PrefixBounds[i], err = get64(); err != nil {
			return nil, err
		}
	}
	ns, err := get32()
	if err != nil {
		return nil, err
	}
	if ns > 1<<16 {
		return nil, fmt.Errorf("%w: %d snapshot bounds", encoding.ErrCorrupt, ns)
	}
	r.SnapshotEBs = make([]float64, ns)
	for i := range r.SnapshotEBs {
		if r.SnapshotEBs[i], err = get64(); err != nil {
			return nil, err
		}
	}
	tail, err := get32()
	if err != nil {
		return nil, err
	}
	r.HasTail = tail == 1
	basis, err := get32()
	if err != nil {
		return nil, err
	}
	r.Basis = mgard.Basis(basis)
	planes, err := get32()
	if err != nil {
		return nil, err
	}
	r.Planes = int(planes)
	nsch, err := get32()
	if err != nil {
		return nil, err
	}
	if nsch > 1<<24 {
		return nil, fmt.Errorf("%w: %d schedule entries", encoding.ErrCorrupt, nsch)
	}
	r.Schedule = make([]fragRef, nsch)
	for i := range r.Schedule {
		g, err := get32()
		if err != nil {
			return nil, err
		}
		p, err := get32()
		if err != nil {
			return nil, err
		}
		r.Schedule[i] = fragRef{Group: int(g), Plane: int(p)}
	}
	nblk, err := get32()
	if err != nil {
		return nil, err
	}
	if nblk > 1<<16 {
		return nil, fmt.Errorf("%w: %d blocks", encoding.ErrCorrupt, nblk)
	}
	r.Blocks = make([]*bitplane.Block, nblk)
	for i := range r.Blocks {
		nc, err := get32()
		if err != nil {
			return nil, err
		}
		exp, err := get32()
		if err != nil {
			return nil, err
		}
		b, err := get32()
		if err != nil {
			return nil, err
		}
		if b > 62 {
			return nil, fmt.Errorf("%w: block %d planes %d", encoding.ErrCorrupt, i, b)
		}
		r.Blocks[i] = &bitplane.Block{
			N:      int(nc),
			Exp:    int(int32(exp)),
			B:      int(b),
			Planes: make([][]byte, int(b)),
		}
	}
	// Validate schedule references.
	for _, s := range r.Schedule {
		if s.Group < 0 || s.Group >= len(r.Blocks) || s.Plane < 0 || s.Plane >= r.Blocks[s.Group].B {
			return nil, fmt.Errorf("%w: schedule entry %v out of range", encoding.ErrCorrupt, s)
		}
	}

	rest := data[n:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: fragment count truncated", encoding.ErrCorrupt)
	}
	nfrag := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if nfrag < 0 || nfrag > 1<<24 {
		return nil, fmt.Errorf("%w: %d fragments", encoding.ErrCorrupt, nfrag)
	}
	if len(r.PrefixBounds) != nfrag {
		return nil, fmt.Errorf("%w: %d bounds for %d fragments", encoding.ErrCorrupt, len(r.PrefixBounds), nfrag)
	}
	switch r.Method {
	case PMGARD, PMGARDHB:
		if len(r.Schedule) != nfrag {
			return nil, fmt.Errorf("%w: %d schedule entries for %d fragments", encoding.ErrCorrupt, len(r.Schedule), nfrag)
		}
	}
	r.Fragments = make([][]byte, nfrag)
	for i := range r.Fragments {
		f, m, err := encoding.GetSection(rest)
		if err != nil {
			return nil, err
		}
		r.Fragments[i] = f
		rest = rest[m:]
	}
	return r, nil
}
