// Package progressive implements the three error-controlled progressive
// representations the paper integrates and compares (§V-B):
//
//   - PSZ3: multiple independent SZ snapshots at preset error bounds. A
//     retrieval fetches the single snapshot matching the request; tightening
//     across a session re-fetches, so redundancy accumulates (the staircase
//     in Fig. 2).
//
//   - PSZ3-Delta: snapshots compress residuals against the previous
//     reconstruction, so a session fetches a prefix of snapshots with no
//     redundancy.
//
//   - PMGARD / PMGARD-HB: a multilevel decomposition (orthogonal or
//     hierarchical basis) whose per-level coefficient groups are bit-plane
//     encoded; retrieval streams (group, plane) fragments in a greedy
//     benefit-per-byte order with an exactly tracked L∞ bound.
//
// Every representation satisfies the paper's Definition 1: refactor into
// fragments, reconstruct from any served prefix with a guaranteed L∞ bound.
// A Reader tracks cumulative retrieved bytes, which is what the evaluation
// plots as bitrate.
package progressive

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"progqoi/internal/bitplane"
	"progqoi/internal/encoding"
	"progqoi/internal/grid"
	"progqoi/internal/mgard"
	"progqoi/internal/sz"
)

// Method identifies a progressive representation.
type Method int

const (
	// PSZ3 stores independent snapshots at preset bounds.
	PSZ3 Method = iota
	// PSZ3Delta stores residual snapshots at preset bounds.
	PSZ3Delta
	// PMGARD uses the orthogonal-basis decomposition with bit planes.
	PMGARD
	// PMGARDHB uses the hierarchical-basis decomposition with bit planes.
	PMGARDHB
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case PSZ3:
		return "PSZ3"
	case PSZ3Delta:
		return "PSZ3-delta"
	case PMGARD:
		return "PMGARD"
	case PMGARDHB:
		return "PMGARD-HB"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Order selects the fragment schedule for the PMGARD methods.
type Order int

const (
	// GreedyOrder streams fragments by error-reduction per byte (default).
	GreedyOrder Order = iota
	// LevelMajorOrder streams all planes of each level before the next,
	// coarse to fine; kept as the ablation baseline.
	LevelMajorOrder
)

// Options configures Refactor.
type Options struct {
	Method Method
	// SnapshotEBs are the preset absolute error bounds for the snapshot
	// methods, strictly decreasing. Empty selects 16 decades starting at
	// 1/10 of the data range (the paper's ε_i = 10^-i relative ladder).
	SnapshotEBs []float64
	// Planes is the bit-plane count for PMGARD methods (default 60).
	Planes int
	// Order is the PMGARD fragment schedule (default greedy).
	Order Order
	// LosslessTail appends a bit-exact final fragment to snapshot methods
	// so any tolerance can be met (default true).
	LosslessTail bool
	// Workers bounds the encode worker pool (default GOMAXPROCS): PMGARD
	// methods pool-schedule the per-(group, plane) slicing and compression,
	// and PSZ3 compresses its independent snapshots concurrently. 1 selects
	// the fully sequential path; the refactored output is bit-identical
	// either way. PSZ3-Delta stays sequential regardless — each snapshot
	// compresses the residual of the previous reconstruction.
	Workers int
}

func (o Options) withDefaults(dataRange float64) Options {
	if o.Planes == 0 {
		o.Planes = bitplane.DefaultPlanes
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.SnapshotEBs) == 0 {
		base := dataRange
		if base == 0 {
			base = 1
		}
		for i := 1; i <= 16; i++ {
			o.SnapshotEBs = append(o.SnapshotEBs, base*math.Pow(10, -float64(i)))
		}
	}
	return o
}

// ErrBadRequest reports an invalid retrieval request.
var ErrBadRequest = errors.New("progressive: invalid request")

// fragRef addresses one PMGARD fragment.
type fragRef struct {
	Group, Plane int
}

// Refactored is one variable's progressive representation: opaque ordered
// fragments plus the metadata needed to plan retrieval.
type Refactored struct {
	Method Method
	Dims   []int

	// Fragments in retrieval order. For snapshot methods fragment i is
	// snapshot i (optionally ending in a lossless tail); for PMGARD methods
	// fragment i is the plane identified by Schedule[i].
	Fragments [][]byte

	// PrefixBounds[i] is the guaranteed L∞ bound after ingesting fragments
	// 0..i. For PSZ3 (independent snapshots) it is the bound of snapshot i
	// alone.
	PrefixBounds []float64

	// Snapshot methods only.
	SnapshotEBs []float64
	HasTail     bool

	// PMGARD methods only.
	Basis    mgard.Basis
	Planes   int
	Blocks   []*bitplane.Block // per group, fragment payloads stripped
	Schedule []fragRef
}

// TotalBytes returns the total stored fragment bytes.
func (r *Refactored) TotalBytes() int64 {
	var n int64
	for _, f := range r.Fragments {
		n += int64(len(f))
	}
	return n
}

// NumElements returns the element count of the refactored field.
func (r *Refactored) NumElements() int {
	n := 1
	for _, d := range r.Dims {
		n *= d
	}
	return n
}

// Refactor produces the progressive representation of data (row-major on
// dims) under the given options.
func Refactor(data []float64, dims []int, opt Options) (*Refactored, error) {
	g, err := grid.New(dims...)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(data); err != nil {
		return nil, err
	}
	rng := valueRange(data)
	opt = opt.withDefaults(rng)
	switch opt.Method {
	case PSZ3, PSZ3Delta:
		return refactorSnapshots(data, g, opt)
	case PMGARD, PMGARDHB:
		return refactorMultilevel(data, g, opt)
	default:
		return nil, fmt.Errorf("progressive: unknown method %d", opt.Method)
	}
}

func valueRange(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func refactorSnapshots(data []float64, g *grid.Grid, opt Options) (*Refactored, error) {
	for i := 1; i < len(opt.SnapshotEBs); i++ {
		if !(opt.SnapshotEBs[i] < opt.SnapshotEBs[i-1]) {
			return nil, fmt.Errorf("progressive: snapshot bounds must strictly decrease, got %v", opt.SnapshotEBs)
		}
	}
	if opt.SnapshotEBs[0] <= 0 {
		return nil, fmt.Errorf("progressive: snapshot bounds must be positive")
	}
	r := &Refactored{
		Method:      opt.Method,
		Dims:        g.Dims(),
		SnapshotEBs: append([]float64(nil), opt.SnapshotEBs...),
		HasTail:     opt.LosslessTail,
	}
	delta := opt.Method == PSZ3Delta
	if !delta {
		// PSZ3 snapshots are independent compressions of the same data, so
		// they (and the lossless tail) schedule onto one bounded pool. Each
		// task writes only its own slot; assembly below is in preset order,
		// so the fragment stream is bit-identical to the sequential path.
		nfrag := len(opt.SnapshotEBs)
		if opt.LosslessTail {
			nfrag++
		}
		frags := make([][]byte, nfrag)
		errs := make([]error, nfrag)
		runPool(opt.Workers, nfrag, func(i int) bool {
			if i == len(opt.SnapshotEBs) {
				frags[i] = encodeLossless(data)
				return true
			}
			frags[i], errs[i] = sz.Compress(data, g, opt.SnapshotEBs[i])
			return true
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		r.Fragments = frags
		r.PrefixBounds = append(r.PrefixBounds, opt.SnapshotEBs...)
		if opt.LosslessTail {
			r.PrefixBounds = append(r.PrefixBounds, 0)
		}
		return r, nil
	}
	// PSZ3-Delta is inherently sequential: every snapshot compresses the
	// residual of the reconstruction so far.
	recon := make([]float64, len(data))
	for _, eb := range opt.SnapshotEBs {
		residual := make([]float64, len(data))
		for i := range residual {
			residual[i] = data[i] - recon[i]
		}
		buf, err := sz.Compress(residual, g, eb)
		if err != nil {
			return nil, err
		}
		dec, _, _, err := sz.Decompress(buf)
		if err != nil {
			return nil, err
		}
		for i := range recon {
			recon[i] += dec[i]
		}
		r.Fragments = append(r.Fragments, buf)
		r.PrefixBounds = append(r.PrefixBounds, eb)
	}
	if opt.LosslessTail {
		residual := make([]float64, len(data))
		for i := range residual {
			residual[i] = data[i] - recon[i]
		}
		r.Fragments = append(r.Fragments, encodeLossless(residual))
		r.PrefixBounds = append(r.PrefixBounds, 0)
	}
	return r, nil
}

func encodeLossless(data []float64) []byte {
	raw := encoding.PutFloat64s(data)
	c, err := encoding.Deflate(raw, 6)
	if err != nil {
		// Deflate on a bytes.Buffer cannot fail in practice; fall back raw.
		return append([]byte{0}, raw...)
	}
	if len(c) < len(raw) {
		return append([]byte{1}, c...)
	}
	return append([]byte{0}, raw...)
}

func decodeLossless(buf []byte, want int) ([]float64, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty lossless fragment", encoding.ErrCorrupt)
	}
	raw := buf[1:]
	if buf[0] == 1 {
		var err error
		raw, err = encoding.Inflate(raw, int64(want)*8+16)
		if err != nil {
			return nil, err
		}
	}
	vals, _, err := encoding.GetFloat64s(raw)
	if err != nil {
		return nil, err
	}
	if len(vals) != want {
		return nil, fmt.Errorf("%w: lossless fragment has %d values, want %d", encoding.ErrCorrupt, len(vals), want)
	}
	return vals, nil
}

func refactorMultilevel(data []float64, g *grid.Grid, opt Options) (*Refactored, error) {
	basis := mgard.Hierarchical
	if opt.Method == PMGARD {
		basis = mgard.Orthogonal
	}
	dec, err := mgard.Decompose(data, g, basis)
	if err != nil {
		return nil, err
	}
	nGroups := dec.NumGroups()
	r := &Refactored{
		Method: opt.Method,
		Dims:   g.Dims(),
		Basis:  basis,
		Planes: opt.Planes,
		Blocks: make([]*bitplane.Block, nGroups),
	}
	factors := dec.LevelFactors()
	type fragMeta struct {
		ref     fragRef
		size    int
		benefit float64 // weighted bound reduction
	}
	// Encode each group, pool-scheduling every (group, plane) compression
	// over the Workers budget; the greedy schedule below then walks the
	// finished blocks sequentially, so fragment order — and every byte —
	// matches the sequential encode.
	perGroupNext := make([]int, nGroups)
	groups := make([][]float64, nGroups)
	for gi := 0; gi < nGroups; gi++ {
		groups[gi] = dec.Group(gi)
	}
	blocks, err := bitplane.EncodeAll(groups, opt.Planes, opt.Workers)
	if err != nil {
		return nil, err
	}
	// Current per-group applied plane counts and running bound. The bound
	// carries a floating-point slack of scale·2⁻⁴⁶ (≈64 ulp) on top of the
	// theoretical estimate: the inverse transform itself accumulates
	// round-off that the coefficient-level theory does not see.
	bounds := make([]float64, nGroups)
	slack := 0.0
	for gi := range bounds {
		bounds[gi] = blocks[gi].Bound(0)
		if s := blocks[gi].Bound(0) * math.Ldexp(1, -46); s > slack {
			slack = s
		}
	}
	next := func(gi int) (fragMeta, bool) {
		k := perGroupNext[gi]
		if k >= blocks[gi].B || blocks[gi].Bound(0) == 0 {
			// Exhausted, or an all-zero block that needs no fragments.
			return fragMeta{}, false
		}
		redux := blocks[gi].Bound(k) - blocks[gi].Bound(k+1)
		return fragMeta{
			ref:     fragRef{Group: gi, Plane: k},
			size:    blocks[gi].PlaneSize(k),
			benefit: factors[gi] * redux,
		}, true
	}
	appendFrag := func(fm fragMeta) {
		gi, p := fm.ref.Group, fm.ref.Plane
		payload := blocks[gi].Planes[p]
		if p == 0 {
			// Sign fragment rides with the first plane.
			payload = encoding.PutSection(nil, blocks[gi].Signs)
			payload = encoding.PutSection(payload, blocks[gi].Planes[0])
		} else {
			payload = encoding.PutSection(nil, payload)
		}
		r.Fragments = append(r.Fragments, payload)
		r.Schedule = append(r.Schedule, fm.ref)
		perGroupNext[gi] = p + 1
		bounds[gi] = blocks[gi].Bound(p + 1)
		total := slack
		for i := range bounds {
			total += factors[i] * bounds[i]
		}
		r.PrefixBounds = append(r.PrefixBounds, total)
	}
	switch opt.Order {
	case LevelMajorOrder:
		for gi := 0; gi < nGroups; gi++ {
			for {
				fm, ok := next(gi)
				if !ok {
					break
				}
				appendFrag(fm)
			}
		}
	default: // GreedyOrder
		for {
			best, found := fragMeta{}, false
			for gi := 0; gi < nGroups; gi++ {
				fm, ok := next(gi)
				if !ok {
					continue
				}
				if !found || better(fm.benefit, fm.size, best.benefit, best.size) {
					best, found = fm, true
				}
			}
			if !found {
				break
			}
			appendFrag(best)
		}
	}
	// Strip plane payloads from the metadata blocks: fragments carry them.
	for gi, blk := range blocks {
		meta := *blk
		meta.Planes = make([][]byte, len(blk.Planes))
		meta.Signs = nil
		r.Blocks[gi] = &meta
	}
	return r, nil
}

// better reports whether benefit/size a beats b, avoiding division (sizes
// can be zero for all-zero groups: treat them as infinitely good).
func better(benA float64, sizeA int, benB float64, sizeB int) bool {
	if sizeA == 0 || sizeB == 0 {
		if sizeA == 0 && sizeB == 0 {
			return benA > benB
		}
		return sizeA == 0 && benA > 0
	}
	return benA*float64(sizeB) > benB*float64(sizeA)
}
