package experiments

import (
	"context"
	"strings"
	"testing"
)

var quick = Opts{Quick: true}

func mustNotError(t *testing.T, name, out string) {
	t.Helper()
	if strings.Contains(out, name+": ") && strings.Contains(out, "error") {
		t.Fatalf("%s reported an error:\n%s", name, out)
	}
	lower := strings.ToLower(out)
	for _, bad := range []string{"fig2: ", "fig3: ", "fig4: ", "fig5: ", "fig6: ", "fig7: ", "fig8: ", "fig9: ", "table4: "} {
		if strings.HasPrefix(lower, bad) {
			t.Fatalf("%s failed: %s", name, out)
		}
	}
	if len(out) < 50 {
		t.Fatalf("%s output suspiciously short:\n%s", name, out)
	}
}

func TestTable3(t *testing.T) {
	out := Table3(context.Background(), quick)
	mustNotError(t, "table3", out)
	for _, ds := range []string{"GE-small", "Hurricane", "NYX", "S3D", "GE-large"} {
		if !strings.Contains(out, ds) {
			t.Errorf("Table3 missing %s", ds)
		}
	}
}

func TestFig2(t *testing.T) {
	out := Fig2(context.Background(), quick)
	mustNotError(t, "fig2", out)
	for _, f := range fig2Fields {
		if !strings.Contains(out, f) {
			t.Errorf("Fig2 missing field %s", f)
		}
	}
	if !strings.Contains(out, "PMGARD-HB") {
		t.Error("Fig2 missing method column")
	}
}

func TestFig3(t *testing.T) {
	out := Fig3(context.Background(), quick)
	mustNotError(t, "fig3", out)
	if !strings.Contains(out, "est(OB)") || !strings.Contains(out, "real(HB)") {
		t.Error("Fig3 missing OB/HB columns")
	}
}

func TestFig4(t *testing.T) {
	out := Fig4(context.Background(), quick)
	mustNotError(t, "fig4", out)
	for _, q := range []string{"VTOT", "T", "C", "Mach", "PT", "mu"} {
		if !strings.Contains(out, ":: "+q+"]") {
			t.Errorf("Fig4 missing QoI %s", q)
		}
	}
}

func TestFig5(t *testing.T) {
	out := Fig5(context.Background(), quick)
	mustNotError(t, "fig5", out)
	if !strings.Contains(out, "NYX") || !strings.Contains(out, "Hurricane") {
		t.Error("Fig5 missing a dataset")
	}
}

func TestFig6(t *testing.T) {
	out := Fig6(context.Background(), quick)
	mustNotError(t, "fig6", out)
	if !strings.Contains(out, "x1*x3") {
		t.Error("Fig6 missing molar product")
	}
}

func TestFig7(t *testing.T) {
	out := Fig7(context.Background(), quick)
	mustNotError(t, "fig7", out)
	if !strings.Contains(out, "PSZ3-delta") {
		t.Error("Fig7 missing method")
	}
}

func TestFig8(t *testing.T) {
	out := Fig8(context.Background(), quick)
	mustNotError(t, "fig8", out)
	if !strings.Contains(out, "S3D") {
		t.Error("Fig8 missing dataset")
	}
}

func TestTable4(t *testing.T) {
	out := Table4(context.Background(), quick)
	mustNotError(t, "table4", out)
	if !strings.Contains(out, "Refactoring") || !strings.Contains(out, "1E-5") {
		t.Error("Table4 missing columns")
	}
}

func TestFig9(t *testing.T) {
	out := Fig9(context.Background(), quick)
	mustNotError(t, "fig9", out)
	if !strings.Contains(out, "speedup_vs_raw") {
		t.Error("Fig9 missing speedup column")
	}
}
