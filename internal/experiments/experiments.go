// Package experiments regenerates every table and figure of the paper's
// evaluation (§V-B exploration and §VI) on the synthetic stand-in datasets:
// the same sweeps, the same series, printed as rows. cmd/experiments drives
// it from the command line and the repository-root benchmarks time it.
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data); the shapes the paper argues from are asserted in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/netsim"
	"progqoi/internal/progressive"
	"progqoi/internal/qoi"
	"progqoi/internal/stats"
)

// Opts scales the experiments. Quick shrinks datasets and sweeps so the
// whole suite runs in seconds (used by the benchmarks); the default matches
// the scaled-down evaluation configuration.
type Opts struct {
	Quick bool
}

func (o Opts) geSmall() *datagen.Dataset {
	if o.Quick {
		return datagen.GE("GE-small", 24, 256, 42)
	}
	return datagen.GESmall()
}

func (o Opts) geLarge() (*datagen.Dataset, int) {
	if o.Quick {
		return datagen.GE("GE-large", 16, 1024, 43), 16
	}
	return datagen.GELarge(), 96
}

func (o Opts) hurricane() *datagen.Dataset {
	if o.Quick {
		return datagen.Hurricane(8, 24, 24, 44)
	}
	return datagen.HurricaneSmall()
}

func (o Opts) nyx() *datagen.Dataset {
	if o.Quick {
		return datagen.NYX(16, 16, 16, 45)
	}
	return datagen.NYXSmall()
}

func (o Opts) s3d() *datagen.Dataset {
	if o.Quick {
		return datagen.S3D(12, 16, 10, 46)
	}
	return datagen.S3DSmall()
}

// sweep returns the requested relative tolerances τᵢ = 0.1·2⁻ⁱ.
func (o Opts) sweep(n int) []float64 {
	step := 1
	if o.Quick {
		step = 4
	}
	var out []float64
	for i := 0; i < n; i += step {
		out = append(out, 0.1*math.Pow(2, -float64(i)))
	}
	return out
}

var methodsAll = []progressive.Method{
	progressive.PSZ3, progressive.PSZ3Delta, progressive.PMGARD, progressive.PMGARDHB,
}

var methodsFig7 = []progressive.Method{
	progressive.PSZ3, progressive.PSZ3Delta, progressive.PMGARDHB,
}

// Table3 prints the dataset inventory (paper Table III, at stand-in scale).
func Table3(ctx context.Context, o Opts) string {
	t := &stats.Table{Header: []string{"Dataset", "Dimensions", "nv", "Type", "Size", "QoIs"}}
	add := func(ds *datagen.Dataset, qoiDesc string) {
		dims := make([]string, len(ds.Dims))
		for i, d := range ds.Dims {
			dims[i] = fmt.Sprint(d)
		}
		t.AddRow(ds.Name, strings.Join(dims, "x"), len(ds.Fields), "double",
			fmt.Sprintf("%.2f MB", float64(ds.TotalBytes())/1e6), qoiDesc)
	}
	add(o.geSmall(), "Eq.(1)-(6)")
	add(o.hurricane(), "Total velocity")
	add(o.nyx(), "Total velocity")
	add(o.s3d(), "Molar concentration multiplication")
	gl, _ := o.geLarge()
	add(gl, "Eq.(1)-(6)")
	return "Table III: Datasets and QoIs (synthetic stand-ins)\n" + t.String()
}

// fig2Fields are the fields the paper plots in Figs. 2–3.
var fig2Fields = []string{"VelocityX", "VelocityZ", "Pressure", "Density"}

// Fig2 sweeps successively tighter primary-data error bounds through a
// single progressive session per compressor and reports the resulting
// bitrate (paper Fig. 2).
func Fig2(ctx context.Context, o Opts) string {
	ds := o.geSmall()
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 2: requested PD relative error vs bitrate (bits/value), per compressor")
	targets := o.sweep(20)
	for _, fname := range fig2Fields {
		data := ds.Field(fname)
		rng := stats.Range(data)
		t := &stats.Table{Header: []string{"rel_eb", "PSZ3", "PSZ3-delta", "PMGARD", "PMGARD-HB"}}
		rows := make([][]float64, len(targets))
		for i := range rows {
			rows[i] = make([]float64, len(methodsAll))
		}
		for mi, m := range methodsAll {
			ref, err := progressive.Refactor(data, ds.Dims, progressive.Options{Method: m, LosslessTail: true})
			if err != nil {
				return "fig2: " + err.Error()
			}
			rd, err := progressive.NewReader(ref, nil)
			if err != nil {
				return "fig2: " + err.Error()
			}
			for ti, rel := range targets {
				if _, err := rd.Advance(ctx, rel*rng); err != nil {
					return "fig2: " + err.Error()
				}
				rows[ti][mi] = stats.Bitrate(rd.RetrievedBytes(), len(data))
			}
		}
		for ti, rel := range targets {
			t.AddRow(rel, rows[ti][0], rows[ti][1], rows[ti][2], rows[ti][3])
		}
		fmt.Fprintf(&b, "\n[%s]\n%s", fname, t.String())
	}
	return b.String()
}

// Fig3 compares the orthogonal (OB) and hierarchical (HB) bases: requested
// tolerance vs the estimated bound vs the real error (paper Fig. 3).
func Fig3(ctx context.Context, o Opts) string {
	ds := o.geSmall()
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 3: requested vs estimated vs real PD error, OB (PMGARD) vs HB (PMGARD-HB)")
	targets := o.sweep(20)
	for _, fname := range fig2Fields {
		data := ds.Field(fname)
		rng := stats.Range(data)
		t := &stats.Table{Header: []string{
			"rel_tol", "bitrate(OB)", "est(OB)", "real(OB)", "bitrate(HB)", "est(HB)", "real(HB)",
		}}
		type point struct{ bitrate, est, real float64 }
		series := map[progressive.Method][]point{}
		for _, m := range []progressive.Method{progressive.PMGARD, progressive.PMGARDHB} {
			ref, err := progressive.Refactor(data, ds.Dims, progressive.Options{Method: m})
			if err != nil {
				return "fig3: " + err.Error()
			}
			rd, err := progressive.NewReader(ref, nil)
			if err != nil {
				return "fig3: " + err.Error()
			}
			for _, rel := range targets {
				bound, err := rd.Advance(ctx, rel*rng)
				if err != nil {
					return "fig3: " + err.Error()
				}
				rec, err := rd.Data()
				if err != nil {
					return "fig3: " + err.Error()
				}
				series[m] = append(series[m], point{
					bitrate: stats.Bitrate(rd.RetrievedBytes(), len(data)),
					est:     bound / rng,
					real:    stats.MaxAbsError(data, rec) / rng,
				})
			}
		}
		ob, hb := series[progressive.PMGARD], series[progressive.PMGARDHB]
		for i, rel := range targets {
			t.AddRow(rel, ob[i].bitrate, ob[i].est, ob[i].real, hb[i].bitrate, hb[i].est, hb[i].real)
		}
		fmt.Fprintf(&b, "\n[%s]\n%s", fname, t.String())
	}
	return b.String()
}

// qoiSweep runs the Figs. 4–6 protocol on one dataset: a PMGARD-HB session
// per QoI, sweeping requested relative QoI tolerances and reporting the max
// estimated and max actual relative errors plus bitrate.
func qoiSweep(ctx context.Context, ds *datagen.Dataset, o Opts, nTargets int) (string, error) {
	ranges := core.QoIRanges(ds.QoIs, ds.Fields)
	targets := o.sweep(nTargets)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	ne := ds.NumElements()
	for k, q := range ds.QoIs {
		rt, err := core.NewRetriever(vars, core.Config{}, nil)
		if err != nil {
			return "", err
		}
		t := &stats.Table{Header: []string{"req_rel_tol", "bitrate", "max_est_rel", "max_actual_rel"}}
		for _, rel := range targets {
			res, err := rt.Retrieve(ctx, core.Request{
				QoIs:       []qoi.QoI{q},
				Tolerances: []float64{rel * ranges[k]},
				InitRel:    []float64{rel},
			})
			if err != nil {
				return "", fmt.Errorf("%s rel=%g: %w", q.Name, rel, err)
			}
			actual := core.ActualQoIErrors([]qoi.QoI{q}, ds.Fields, res.Data)
			t.AddRow(rel,
				stats.Bitrate(res.RetrievedBytes, ne),
				res.EstErrors[0]/ranges[k],
				actual[0]/ranges[k])
		}
		fmt.Fprintf(&b, "\n[%s :: %s]\n%s", ds.Name, q.Name, t.String())
	}
	return b.String(), nil
}

// Fig4 is the GE-small QoI error-control experiment (paper Fig. 4).
func Fig4(ctx context.Context, o Opts) string {
	out, err := qoiSweep(ctx, o.geSmall(), o, 20)
	if err != nil {
		return "fig4: " + err.Error()
	}
	return "Fig. 4: max estimated / actual QoI errors vs requested (PMGARD-HB, GE-small)" + out
}

// Fig5 runs the same protocol for total velocity on NYX and Hurricane
// (paper Fig. 5).
func Fig5(ctx context.Context, o Opts) string {
	var b strings.Builder
	fmt.Fprint(&b, "Fig. 5: max estimated / actual QoI errors vs requested (PMGARD-HB, NYX & Hurricane)")
	for _, ds := range []*datagen.Dataset{o.nyx(), o.hurricane()} {
		out, err := qoiSweep(ctx, ds, o, 20)
		if err != nil {
			return "fig5: " + err.Error()
		}
		b.WriteString(out)
	}
	return b.String()
}

// Fig6 runs the molar-concentration products on S3D (paper Fig. 6).
func Fig6(ctx context.Context, o Opts) string {
	out, err := qoiSweep(ctx, o.s3d(), o, 20)
	if err != nil {
		return "fig6: " + err.Error()
	}
	return "Fig. 6: max estimated / actual QoI errors vs requested (PMGARD-HB, S3D)" + out
}

// retrievalEfficiency implements Figs. 7–8: for each QoI and each method, a
// fresh session per requested tolerance (the paper's single-request
// "generic case"), reporting bitrate.
func retrievalEfficiency(ctx context.Context, ds *datagen.Dataset, o Opts, nTargets int) (string, error) {
	ranges := core.QoIRanges(ds.QoIs, ds.Fields)
	targets := o.sweep(nTargets)
	if !o.Quick {
		// Fresh sessions per point are expensive; halve the sweep density.
		targets = targets[:len(targets):len(targets)]
		kept := targets[:0]
		for i, v := range targets {
			if i%2 == 0 {
				kept = append(kept, v)
			}
		}
		targets = kept
	}
	refs := map[progressive.Method][]*core.Variable{}
	for _, m := range methodsFig7 {
		vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
			Progressive: progressive.Options{Method: m, LosslessTail: true},
			MaskZeros:   true,
		})
		if err != nil {
			return "", err
		}
		refs[m] = vars
	}
	ne := ds.NumElements()
	var b strings.Builder
	for k, q := range ds.QoIs {
		t := &stats.Table{Header: []string{"req_rel_tol", "PSZ3", "PSZ3-delta", "PMGARD-HB"}}
		for _, rel := range targets {
			row := make([]float64, len(methodsFig7))
			for mi, m := range methodsFig7 {
				rt, err := core.NewRetriever(refs[m], core.Config{}, nil)
				if err != nil {
					return "", err
				}
				res, err := rt.Retrieve(ctx, core.Request{
					QoIs:       []qoi.QoI{q},
					Tolerances: []float64{rel * ranges[k]},
					InitRel:    []float64{rel},
				})
				if err != nil {
					return "", fmt.Errorf("%s %v rel=%g: %w", q.Name, m, rel, err)
				}
				row[mi] = stats.Bitrate(res.RetrievedBytes, ne)
			}
			t.AddRow(rel, row[0], row[1], row[2])
		}
		fmt.Fprintf(&b, "\n[%s :: %s] bitrate (bits/value)\n%s", ds.Name, q.Name, t.String())
	}
	return b.String(), nil
}

// Fig7 is retrieval efficiency on GE-small (paper Fig. 7).
func Fig7(ctx context.Context, o Opts) string {
	out, err := retrievalEfficiency(ctx, o.geSmall(), o, 20)
	if err != nil {
		return "fig7: " + err.Error()
	}
	return "Fig. 7: retrieval efficiency of progressive approaches (GE-small)" + out
}

// Fig8 is retrieval efficiency on S3D (paper Fig. 8).
func Fig8(ctx context.Context, o Opts) string {
	out, err := retrievalEfficiency(ctx, o.s3d(), o, 20)
	if err != nil {
		return "fig8: " + err.Error()
	}
	return "Fig. 8: retrieval efficiency of progressive approaches (S3D)" + out
}

// Table4 measures refactor and retrieval wall time per method for the VTOT
// QoI at tolerances 1e-1..1e-5 (paper Table IV).
func Table4(ctx context.Context, o Opts) string {
	ds := o.geSmall()
	vtot := []qoi.QoI{ds.QoIs[0]}
	ranges := core.QoIRanges(vtot, ds.Fields)
	rels := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}
	t := &stats.Table{Header: []string{"Compressor", "Refactoring(s)", "1E-1", "1E-2", "1E-3", "1E-4", "1E-5"}}
	for _, m := range methodsFig7 {
		start := time.Now()
		vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
			Progressive: progressive.Options{Method: m, LosslessTail: true},
			MaskZeros:   true,
		})
		if err != nil {
			return "table4: " + err.Error()
		}
		refactorTime := time.Since(start).Seconds()
		cells := []interface{}{m.String(), refactorTime}
		for _, rel := range rels {
			rt, err := core.NewRetriever(vars, core.Config{}, nil)
			if err != nil {
				return "table4: " + err.Error()
			}
			start := time.Now()
			if _, err := rt.Retrieve(ctx, core.Request{
				QoIs:       vtot,
				Tolerances: []float64{rel * ranges[0]},
				InitRel:    []float64{rel},
			}); err != nil {
				return "table4: " + err.Error()
			}
			cells = append(cells, time.Since(start).Seconds())
		}
		t.AddRow(cells...)
	}
	return "Table IV: refactor and retrieval time (seconds), VTOT on GE-small\n" + t.String()
}

// Fig9 runs the remote-transfer experiment: per-block QoI retrieval over a
// simulated Globus-class link, versus shipping the raw velocity fields
// (paper Fig. 9).
func Fig9(ctx context.Context, o Opts) string {
	ds, workers := o.geLarge()
	blockSize := ds.NumElements() / workers
	// VTOT uses the velocity components only: 3 of the 5 fields.
	rawBytes := int64(ds.NumElements()) * 8 * 3
	// Calibrate the link so the raw baseline is the paper's ≈11.7 s at this
	// (possibly scaled) data size.
	link := netsim.DefaultGlobusLink
	link.BandwidthBps = float64(rawBytes) / 11.7

	// Refactor each block independently (one block per core, like the paper).
	type blockVars struct{ vars []*core.Variable }
	refactorStart := time.Now()
	blocks := make([]blockVars, workers)
	names := ds.FieldNames[:3]
	for b := 0; b < workers; b++ {
		fields := make([][]float64, 3)
		for f := 0; f < 3; f++ {
			fields[f] = ds.Fields[f][b*blockSize : (b+1)*blockSize]
		}
		vars, err := core.RefactorVariables(names, fields, []int{blockSize}, core.RefactorOptions{
			Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
			MaskZeros:   true,
		})
		if err != nil {
			return "fig9: " + err.Error()
		}
		blocks[b] = blockVars{vars: vars}
	}
	refactorTime := time.Since(refactorStart)

	t := &stats.Table{Header: []string{"req_rel_tol(VTOT)", "retrieved_MB", "transfer_time(s)", "speedup_vs_raw"}}
	rawTime := netsim.RawTransferTime(rawBytes, workers, link)
	vtot := qoi.TotalVelocity(0, 1, 2)
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5} {
		res, err := netsim.Run(workers, workers, link, func(b int, rec *netsim.Recorder) error {
			rt, err := core.NewRetriever(blocks[b].vars, core.Config{}, rec.Observe)
			if err != nil {
				return err
			}
			fields := make([][]float64, 3)
			for f := 0; f < 3; f++ {
				fields[f] = ds.Fields[f][b*blockSize : (b+1)*blockSize]
			}
			ranges := core.QoIRanges([]qoi.QoI{vtot}, fields)
			if ranges[0] == 0 {
				ranges[0] = 1
			}
			_, err = rt.Retrieve(ctx, core.Request{
				QoIs:       []qoi.QoI{vtot},
				Tolerances: []float64{rel * ranges[0]},
				InitRel:    []float64{rel},
			})
			return err
		})
		if err != nil {
			return "fig9: " + err.Error()
		}
		t.AddRow(rel,
			float64(res.TotalBytes)/1e6,
			res.Makespan.Seconds(),
			rawTime.Seconds()/res.Makespan.Seconds())
	}
	return fmt.Sprintf(
		"Fig. 9: data transfer time over simulated Globus link (%d workers, PMGARD-HB)\n"+
			"raw transfer baseline: %.2f s for %.2f MB; refactoring took %.2f s\n%s",
		workers, rawTime.Seconds(), float64(rawBytes)/1e6, refactorTime.Seconds(), t.String())
}

// All runs every experiment in order.
func All(ctx context.Context, o Opts) string {
	parts := []string{
		Table3(ctx, o), Fig2(ctx, o), Fig3(ctx, o), Fig4(ctx, o), Fig5(ctx, o),
		Fig6(ctx, o), Fig7(ctx, o), Fig8(ctx, o), Table4(ctx, o), Fig9(ctx, o),
	}
	return strings.Join(parts, "\n\n"+strings.Repeat("=", 72)+"\n\n")
}
