package progqoi

import (
	"errors"
	"math"
	"testing"
)

func demoFields(n int) ([]string, [][]float64, []int) {
	names := []string{"Vx", "Vy", "Vz"}
	fields := make([][]float64, 3)
	for f := range fields {
		data := make([]float64, n)
		for i := range data {
			t := float64(i) / float64(n)
			data[i] = 80 * math.Sin(2*math.Pi*(float64(f)+2)*t+float64(f))
		}
		fields[f] = data
	}
	return names, fields, []int{n}
}

func TestPublicAPIQuickPath(t *testing.T) {
	names, fields, dims := demoFields(2000)
	arch, err := Refactor(names, fields, dims)
	if err != nil {
		t.Fatal(err)
	}
	if arch.StoredBytes() <= 0 {
		t.Fatal("no stored bytes")
	}
	sess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	vtot, err := ParseQoI("VTOT", "sqrt(Vx^2+Vy^2+Vz^2)", arch.FieldNames())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Retrieve([]QoI{vtot}, []float64{1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ToleranceMet {
		t.Fatal("tolerance not met")
	}
	actual := ActualQoIErrors([]QoI{vtot}, fields, res.Data)
	if actual[0] > 1e-3 {
		t.Fatalf("actual QoI error %g exceeds tolerance", actual[0])
	}
	if res.RetrievedBytes >= int64(2000*8*3) {
		t.Fatalf("retrieved %d bytes, no saving vs raw", res.RetrievedBytes)
	}
}

func TestAllMethodsThroughFacade(t *testing.T) {
	names, fields, dims := demoFields(800)
	vtot := TotalVelocity(0, 1, 2)
	for _, m := range []Method{PSZ3, PSZ3Delta, PMGARD, PMGARDHB} {
		arch, err := Refactor(names, fields, dims, WithMethod(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		sess, err := arch.Open()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Retrieve([]QoI{vtot}, []float64{1e-4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		actual := ActualQoIErrors([]QoI{vtot}, fields, res.Data)
		if actual[0] > res.EstErrors[0] || res.EstErrors[0] > 1e-4 {
			t.Errorf("%v: actual %g est %g", m, actual[0], res.EstErrors[0])
		}
	}
}

func TestRetrieveRelative(t *testing.T) {
	names, fields, dims := demoFields(1000)
	arch, err := Refactor(names, fields, dims)
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := arch.Open()
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, fields)
	res, err := sess.RetrieveRelative([]QoI{vtot}, []float64{1e-5}, ranges)
	if err != nil {
		t.Fatal(err)
	}
	actual := ActualQoIErrors([]QoI{vtot}, fields, res.Data)
	if actual[0] > 1e-5*ranges[0] {
		t.Fatalf("relative tolerance violated: %g vs %g", actual[0], 1e-5*ranges[0])
	}
	if _, err := sess.RetrieveRelative([]QoI{vtot}, []float64{1e-5, 1}, ranges); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFetchObserverThroughFacade(t *testing.T) {
	names, fields, dims := demoFields(500)
	arch, _ := Refactor(names, fields, dims)
	var seen int64
	sess, err := arch.Open(WithFetchObserver(func(i int, size int64) { seen += size }))
	if err != nil {
		t.Fatal(err)
	}
	vtot := TotalVelocity(0, 1, 2)
	if _, err := sess.Retrieve([]QoI{vtot}, []float64{1e-2}); err != nil {
		t.Fatal(err)
	}
	if seen != sess.RetrievedBytes() {
		t.Fatalf("observer saw %d, session counted %d", seen, sess.RetrievedBytes())
	}
}

func TestGEQoIsExported(t *testing.T) {
	qois := GEQoIs()
	if len(qois) != 6 {
		t.Fatalf("want 6, got %d", len(qois))
	}
	names := map[string]bool{}
	for _, q := range qois {
		names[q.Name] = true
	}
	for _, want := range []string{"VTOT", "T", "C", "Mach", "PT", "mu"} {
		if !names[want] {
			t.Errorf("missing QoI %s", want)
		}
	}
}

func TestParseQoIError(t *testing.T) {
	if _, err := ParseQoI("bad", "sqrt(", []string{"x"}); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestExhaustedSurfaced(t *testing.T) {
	// A representation without a lossless tail and with very few snapshot
	// levels cannot certify an extreme tolerance: ErrExhausted plus a
	// best-effort result.
	names, fields, dims := demoFields(300)
	arch, err := Refactor(names, fields, dims,
		WithMethod(PSZ3),
		WithLosslessTail(false),
		WithSnapshotBounds([]float64{1, 1e-2}))
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := arch.Open()
	vtot := TotalVelocity(0, 1, 2)
	res, err := sess.Retrieve([]QoI{vtot}, []float64{1e-12})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if res == nil || res.ToleranceMet {
		t.Fatal("best-effort result expected")
	}
}

func TestRetrieveRegionsThroughFacade(t *testing.T) {
	names, fields, dims := demoFields(1200)
	arch, err := Refactor(names, fields, dims)
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := arch.Open()
	vtot := TotalVelocity(0, 1, 2)
	hot := Region{Lo: 0, Hi: 300}
	res, err := sess.RetrieveRegions(
		[]QoI{vtot, vtot},
		[]float64{1e-6, 1e-2},
		[]Region{hot, {}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ToleranceMet {
		t.Fatal("region request not certified")
	}
	// The hot region must actually meet the tight tolerance.
	hotOrig := make([][]float64, 3)
	hotRecon := make([][]float64, 3)
	for v := range fields {
		hotOrig[v] = fields[v][hot.Lo:hot.Hi]
		hotRecon[v] = res.Data[v][hot.Lo:hot.Hi]
	}
	if e := ActualQoIErrors([]QoI{vtot}, hotOrig, hotRecon); e[0] > 1e-6 {
		t.Fatalf("hot region error %g", e[0])
	}
	if _, err := sess.RetrieveRegions([]QoI{vtot}, []float64{1}, []Region{{Lo: -1, Hi: 2}}); err == nil {
		t.Fatal("invalid region accepted")
	}
}

func TestArchiveAccessors(t *testing.T) {
	names, fields, dims := demoFields(100)
	arch, _ := Refactor(names, fields, dims)
	got := arch.FieldNames()
	got[0] = "mutated"
	if arch.FieldNames()[0] == "mutated" {
		t.Fatal("FieldNames must return a copy")
	}
	d := arch.Dims()
	d[0] = -1
	if arch.Dims()[0] == -1 {
		t.Fatal("Dims must return a copy")
	}
	if len(arch.Variables()) != 3 {
		t.Fatal("Variables accessor broken")
	}
}
