package progqoi_test

// tenant_bench_test.go measures the per-request cost of the PR 9
// multi-tenant front door: bearer authentication (hash-then-compare
// over every configured tenant), the token bucket, the per-tenant
// in-flight ledger, and the two-class admission queue — everything
// ServeHTTP adds in front of the handler. The benchmark drives a
// cheap route directly (no network), so the number is dominated by the
// admission path itself; CI pins it against BENCH_pr9_baseline.json via
// cmd/benchgate.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func BenchmarkTenantAdmission(b *testing.B) {
	ds := datagen.GE("GE-adm", 2, 64, 3)
	vars, err := core.RefactorVariables(ds.FieldNames, ds.Fields, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, "ge", vars); err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(context.Background(), st, server.Options{
		MaxInflight: 64,
		Tenants: []server.Tenant{
			{Name: "dash", Token: "bench-dash-token", Class: server.ClassInteractive},
			{Name: "etl", Token: "bench-etl-token-9", Class: server.ClassBulk},
			{Name: "ml", Token: "bench-ml-token-77", Class: server.ClassBulk},
			{Name: "qa", Token: "bench-qa-token-13", Class: server.ClassInteractive},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	tokens := []string{"bench-dash-token", "bench-etl-token-9", "bench-ml-token-77", "bench-qa-token-13"}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := httptest.NewRequest(http.MethodGet, "/v1/datasets", nil)
			req.Header.Set("Authorization", "Bearer "+tokens[i%len(tokens)])
			i++
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
}
