package progqoi_test

// Runnable godoc examples for the public API. `go test` executes them and
// checks the printed output, so the documentation cannot rot.

import (
	"context"
	"fmt"
	"log"
	"math"

	"progqoi"
)

func demo3Fields(n int) ([]string, [][]float64) {
	names := []string{"Vx", "Vy", "Vz"}
	fields := make([][]float64, 3)
	for f := range fields {
		data := make([]float64, n)
		for i := range data {
			data[i] = 50 * math.Sin(2*math.Pi*float64(i)/float64(n)*float64(f+1))
		}
		fields[f] = data
	}
	return names, fields
}

// Example demonstrates the minimal refactor → retrieve path with a parsed
// QoI and a certified tolerance.
func Example() {
	names, fields := demo3Fields(4096)
	arch, err := progqoi.Refactor(names, fields, []int{4096})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot, err := progqoi.ParseQoI("VTOT", "sqrt(Vx^2+Vy^2+Vz^2)", arch.FieldNames())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-3})
	if err != nil {
		log.Fatal(err)
	}
	actual := progqoi.ActualQoIErrors([]progqoi.QoI{vtot}, fields, res.Data)
	fmt.Println("tolerance met:", res.ToleranceMet)
	fmt.Println("guarantee holds:", actual[0] <= res.EstErrors[0] && res.EstErrors[0] <= 1e-3)
	// Output:
	// tolerance met: true
	// guarantee holds: true
}

// ExampleParseQoI shows the formula syntax, including the automatic
// lowering of half-integer powers into the derivable basis.
func ExampleParseQoI() {
	q, err := progqoi.ParseQoI("PT-factor", "(1 + 0.7*M^2)^3.5", []string{"M"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.6f\n", q.Expr.Eval([]float64{0.5}))
	// Output:
	// 1.758460
}

// ExampleSession_Do composes one request from heterogeneous targets — a
// relative tolerance over a region of interest next to an absolute
// whole-domain tolerance — and streams per-iteration progress. The context
// would cancel or deadline the retrieval end to end, including in-flight
// HTTP fetches on a remote archive.
func ExampleSession_Do() {
	names, fields := demo3Fields(4096)
	arch, err := progqoi.Refactor(names, fields, []int{4096})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot := progqoi.TotalVelocity(0, 1, 2)
	vx2, err := progqoi.ParseQoI("Vx2", "Vx^2", names)
	if err != nil {
		log.Fatal(err)
	}
	ranges := progqoi.QoIRanges([]progqoi.QoI{vtot}, fields)

	progressed := 0
	res, err := sess.Do(context.Background(), progqoi.Request{
		Targets: []progqoi.Target{
			{QoI: vtot, Tolerance: 1e-6, Relative: true, Range: ranges[0], Region: progqoi.Region{Lo: 0, Hi: 1024}},
			{QoI: vx2, Tolerance: 1e-2},
		},
		OnProgress: func(it progqoi.Iteration) { progressed = it.N },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certified:", res.ToleranceMet)
	fmt.Println("progress streamed:", progressed == res.Iterations && progressed > 0)
	fmt.Println("region bound tight:", res.EstErrors[0] <= 1e-6*ranges[0])
	// Output:
	// certified: true
	// progress streamed: true
	// region bound tight: true
}

// ExampleSession_Retrieve shows incremental tightening: the second request
// reuses every byte the first one fetched.
func ExampleSession_Retrieve() {
	names, fields := demo3Fields(2048)
	arch, err := progqoi.Refactor(names, fields, []int{2048})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot := progqoi.TotalVelocity(0, 1, 2)
	r1, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-1})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bytes grow monotonically:", r2.RetrievedBytes >= r1.RetrievedBytes)
	fmt.Println("both certified:", r1.ToleranceMet && r2.ToleranceMet)
	// Output:
	// bytes grow monotonically: true
	// both certified: true
}
