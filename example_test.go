package progqoi_test

// Runnable godoc examples for the public API. `go test` executes them and
// checks the printed output, so the documentation cannot rot.

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"
	"net/http/httptest"

	"progqoi"
	"progqoi/internal/core"
	"progqoi/internal/progressive"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

func demo3Fields(n int) ([]string, [][]float64) {
	names := []string{"Vx", "Vy", "Vz"}
	fields := make([][]float64, 3)
	for f := range fields {
		data := make([]float64, n)
		for i := range data {
			data[i] = 50 * math.Sin(2*math.Pi*float64(i)/float64(n)*float64(f+1))
		}
		fields[f] = data
	}
	return names, fields
}

// Example demonstrates the minimal refactor → retrieve path with a parsed
// QoI and a certified tolerance.
func Example() {
	names, fields := demo3Fields(4096)
	arch, err := progqoi.Refactor(names, fields, []int{4096})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot, err := progqoi.ParseQoI("VTOT", "sqrt(Vx^2+Vy^2+Vz^2)", arch.FieldNames())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-3})
	if err != nil {
		log.Fatal(err)
	}
	actual := progqoi.ActualQoIErrors([]progqoi.QoI{vtot}, fields, res.Data)
	fmt.Println("tolerance met:", res.ToleranceMet)
	fmt.Println("guarantee holds:", actual[0] <= res.EstErrors[0] && res.EstErrors[0] <= 1e-3)
	// Output:
	// tolerance met: true
	// guarantee holds: true
}

// ExampleParseQoI shows the formula syntax, including the automatic
// lowering of half-integer powers into the derivable basis.
func ExampleParseQoI() {
	q, err := progqoi.ParseQoI("PT-factor", "(1 + 0.7*M^2)^3.5", []string{"M"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.6f\n", q.Expr.Eval([]float64{0.5}))
	// Output:
	// 1.758460
}

// ExampleSession_Do composes one request from heterogeneous targets — a
// relative tolerance over a region of interest next to an absolute
// whole-domain tolerance — and streams per-iteration progress. The context
// would cancel or deadline the retrieval end to end, including in-flight
// HTTP fetches on a remote archive.
func ExampleSession_Do() {
	names, fields := demo3Fields(4096)
	arch, err := progqoi.Refactor(names, fields, []int{4096})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot := progqoi.TotalVelocity(0, 1, 2)
	vx2, err := progqoi.ParseQoI("Vx2", "Vx^2", names)
	if err != nil {
		log.Fatal(err)
	}
	ranges := progqoi.QoIRanges([]progqoi.QoI{vtot}, fields)

	progressed := 0
	res, err := sess.Do(context.Background(), progqoi.Request{
		Targets: []progqoi.Target{
			{QoI: vtot, Tolerance: 1e-6, Relative: true, Range: ranges[0], Region: progqoi.Region{Lo: 0, Hi: 1024}},
			{QoI: vx2, Tolerance: 1e-2},
		},
		OnProgress: func(it progqoi.Iteration) { progressed = it.N },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certified:", res.ToleranceMet)
	fmt.Println("progress streamed:", progressed == res.Iterations && progressed > 0)
	fmt.Println("region bound tight:", res.EstErrors[0] <= 1e-6*ranges[0])
	// Output:
	// certified: true
	// progress streamed: true
	// region bound tight: true
}

// Example_packAndServe is the producer-to-server vertical: pack fields
// into a store with the streaming parallel ingest, serve the store with
// the fragment service, publish a second dataset to the running server
// with one admin reload, and retrieve both over the wire. This is exactly
// what `progqoi pack` + `progqoid -admin` + `POST /v1/datasets/reload` do
// across processes.
func Example_packAndServe() {
	names, fields := demo3Fields(2048)
	st := storage.NewMemStore()
	opt := core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	}
	if _, err := storage.RefactorTo(context.Background(), st, "alpha", names, []int{2048}, opt,
		func(i int) ([]float64, error) { return fields[i], nil }); err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(context.Background(), st, server.Options{AdminToken: "token"})
	if err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ctx := context.Background()

	arch, err := progqoi.Open(ctx, hs.URL+"/alpha")
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot := progqoi.TotalVelocity(0, 1, 2)
	res, err := sess.Do(ctx, progqoi.Request{Targets: []progqoi.Target{{QoI: vtot, Tolerance: 1e-3}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alpha certified over the wire:", res.ToleranceMet)

	// Publish a second dataset to the live server: pack, then reload.
	if _, err := storage.RefactorTo(context.Background(), st, "beta", names, []int{2048}, opt,
		func(i int) ([]float64, error) { return fields[i], nil }); err != nil {
		log.Fatal(err)
	}
	if _, err := srv.Reload(context.Background()); err != nil { // over HTTP: POST /v1/datasets/reload
		log.Fatal(err)
	}
	fmt.Println("served after hot publish:", srv.Datasets())
	// Output:
	// alpha certified over the wire: true
	// served after hot publish: [alpha beta]
}

// Example_streamingIngest shows the bounded-memory producer path:
// storage.RefactorTo loads, refactors and flushes one variable at a time
// (manifest last, so a crash mid-pack publishes nothing) and its store
// contents are byte-identical to the in-memory Refactor + WriteArchive
// pipeline — at any worker-pool setting.
func Example_streamingIngest() {
	ctx := context.Background()
	names, fields := demo3Fields(2048)
	opt := core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
	}

	// In-memory reference: refactor everything, then write.
	vars, err := core.RefactorVariables(names, fields, []int{2048}, opt)
	if err != nil {
		log.Fatal(err)
	}
	ref := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), ref, "demo", vars); err != nil {
		log.Fatal(err)
	}

	// Streaming: one variable resident at a time, parallel encode pool.
	streamed := storage.NewMemStore()
	opt.Workers = 8
	loaded := 0
	if _, err := storage.RefactorTo(context.Background(), streamed, "demo", names, []int{2048}, opt,
		func(i int) ([]float64, error) { loaded++; return fields[i], nil }); err != nil {
		log.Fatal(err)
	}

	identical := true
	keys, _ := ref.Keys(ctx)
	for _, k := range keys {
		a, _ := ref.Get(ctx, k)
		b, err := streamed.Get(ctx, k)
		if err != nil || !bytes.Equal(a, b) {
			identical = false
		}
	}
	fmt.Println("fields loaded one at a time:", loaded == len(fields))
	fmt.Println("store byte-identical to Refactor+WriteArchive:", identical)
	// Output:
	// fields loaded one at a time: true
	// store byte-identical to Refactor+WriteArchive: true
}

// ExampleSession_Retrieve shows incremental tightening: the second request
// reuses every byte the first one fetched.
func ExampleSession_Retrieve() {
	names, fields := demo3Fields(2048)
	arch, err := progqoi.Refactor(names, fields, []int{2048})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := arch.Open()
	if err != nil {
		log.Fatal(err)
	}
	vtot := progqoi.TotalVelocity(0, 1, 2)
	r1, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-1})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := sess.Retrieve([]progqoi.QoI{vtot}, []float64{1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bytes grow monotonically:", r2.RetrievedBytes >= r1.RetrievedBytes)
	fmt.Println("both certified:", r1.ToleranceMet && r2.ToleranceMet)
	// Output:
	// bytes grow monotonically: true
	// both certified: true
}
