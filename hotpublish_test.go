package progqoi

// hotpublish_test.go is the live-publishing e2e: a dataset packed (with
// the streaming, parallel ingest path) into the directory of a running
// fragment service becomes retrievable over the wire after one admin
// reload — no restart — while sessions opened before the publish keep
// certifying against their own catalog snapshot. It also proves the
// crash-safety half of the contract: a pack killed before its manifest
// commit leaves the store fully readable.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// packInto streams a GE dataset into the store and returns the matching
// local archive for result comparison.
func packInto(t *testing.T, st storage.Store, name string, seed int64) (*Archive, *datagen.Dataset) {
	t.Helper()
	ds := datagen.GE("GE-"+name, 3, 128, seed)
	_, err := storage.RefactorTo(context.Background(), st, name, ds.FieldNames, ds.Dims, core.RefactorOptions{
		Progressive: progressive.Options{Method: progressive.PMGARDHB, LosslessTail: true},
		MaskZeros:   true,
		Workers:     4,
	}, func(i int) ([]float64, error) { return ds.Fields[i], nil })
	if err != nil {
		t.Fatal(err)
	}
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims, WithRefactorWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	return arch, ds
}

func adminReload(t *testing.T, url, token string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/datasets/reload", nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode
}

// doVTot certifies total velocity at rel tolerance and returns the result.
func doVTot(t *testing.T, sess *Session, ds *datagen.Dataset, rel float64) *Result {
	t.Helper()
	vtot := TotalVelocity(0, 1, 2)
	ranges := QoIRanges([]QoI{vtot}, ds.Fields)
	res, err := sess.Do(context.Background(), Request{Targets: []Target{
		{QoI: vtot, Tolerance: rel, Relative: true, Range: ranges[0]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ToleranceMet {
		t.Fatalf("tolerance %g not met", rel)
	}
	return res
}

func sameData(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Data) != len(b.Data) {
		t.Fatalf("%d vs %d variables", len(a.Data), len(b.Data))
	}
	for v := range a.Data {
		if len(a.Data[v]) != len(b.Data[v]) {
			t.Fatalf("variable %d lengths differ", v)
		}
		for i := range a.Data[v] {
			if a.Data[v][i] != b.Data[v][i] {
				t.Fatalf("variable %d differs at %d", v, i)
			}
		}
	}
}

func TestHotPublishEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	localAlpha, dsAlpha := packInto(t, st, "alpha", 21)
	srv, err := server.New(context.Background(), st, server.Options{AdminToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	ctx := context.Background()

	// A session opened against the pre-publish catalog.
	remAlpha, err := OpenRemote(ctx, hs.URL, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	sessAlpha, err := remAlpha.Open()
	if err != nil {
		t.Fatal(err)
	}
	lsessAlpha, err := localAlpha.Open()
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, doVTot(t, lsessAlpha, dsAlpha, 1e-2), doVTot(t, sessAlpha, dsAlpha, 1e-2))

	// beta is not yet publishable: pack it live, then reload.
	if _, err := OpenRemote(ctx, hs.URL, "beta"); err == nil {
		t.Fatal("beta retrievable before publish")
	}
	localBeta, dsBeta := packInto(t, st, "beta", 22)
	// A torn pack of another dataset sits alongside — it must not block
	// the publish (SIGKILL-during-publish leaves the store readable).
	w, err := storage.NewArchiveWriter(st, "torn")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVariable(context.Background(), localBeta.Variables()[0]); err != nil {
		t.Fatal(err)
	}

	if code := adminReload(t, hs.URL, "wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d", code)
	}
	if code := adminReload(t, hs.URL, "tok"); code != http.StatusOK {
		t.Fatalf("reload: %d", code)
	}

	// The new dataset is retrievable over the wire without a restart, and
	// matches a local session bit for bit.
	remBeta, err := OpenRemote(ctx, hs.URL, "beta")
	if err != nil {
		t.Fatal(err)
	}
	sessBeta, err := remBeta.Open()
	if err != nil {
		t.Fatal(err)
	}
	lsessBeta, err := localBeta.Open()
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, doVTot(t, lsessBeta, dsBeta, 1e-3), doVTot(t, sessBeta, dsBeta, 1e-3))

	// The pre-publish session keeps working — and keeps its incremental
	// reuse — across the catalog swap.
	resL := doVTot(t, lsessAlpha, dsAlpha, 1e-4)
	resR := doVTot(t, sessAlpha, dsAlpha, 1e-4)
	sameData(t, resL, resR)
	if resL.RetrievedBytes != resR.RetrievedBytes {
		t.Fatalf("retrieved bytes diverged: %d vs %d", resL.RetrievedBytes, resR.RetrievedBytes)
	}
}
