package progqoi

// obs_bench_test.go pairs the same QoI-certified retrieval with tracing
// off and on. The off variant is the proof that threading *obs.Trace
// through the retrieval core costs nothing when unused — its allocs/op
// and B/op are gated by benchgate, so an accidental allocation on the
// nil-trace path (e.g. building a span name before the nil check) fails
// CI rather than taxing every untraced retrieval.

import (
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/obs"
	"progqoi/internal/progressive"
)

func benchDoTrace(b *testing.B, traced bool) {
	ds := datagen.GESmall()
	vars := refactorFor(b, ds, progressive.PMGARDHB, progressive.GreedyOrder)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr *obs.Trace
		if traced {
			tr = obs.NewTrace()
		}
		retrieveVTOT(b, vars, core.Config{Trace: tr}, 1e-4, ds)
	}
}

func BenchmarkDoTraceOff(b *testing.B) { benchDoTrace(b, false) }
func BenchmarkDoTraceOn(b *testing.B)  { benchDoTrace(b, true) }
