module progqoi

go 1.23
