module progqoi

go 1.23

// The x/tools dependency exists only for cmd/progqoivet (the custom
// go/analysis vettool) and internal/analysis; the library packages stay
// stdlib-only. It resolves to the vendored subset under third_party so
// the build needs no network access.
require golang.org/x/tools v0.30.0

replace golang.org/x/tools => ./third_party/golang.org/x/tools
