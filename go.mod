module progqoi

go 1.24
