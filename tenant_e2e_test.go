package progqoi_test

// tenant_e2e_test.go proves the multi-tenant QoS envelope end to end
// against a real 3-node in-process cluster, using the same pinned
// mixed-tenant scenario the slo-gate CI job drives through
// cmd/progqoibench:
//
//   - a bulk tenant floods every serving slot while an interactive
//     tenant probes: the interactive p99 must stay within a small
//     multiple of the bulk p99 (the two-class admission queue working);
//   - a deliberately over-limit tenant trips the token bucket, absorbs
//     429 + Retry-After, and still finishes every retrieval with
//     results bit-identical to a local session (RunAgainst fails the
//     session on any divergence);
//   - per-tenant counters scraped from every node's /metrics must
//     reconcile exactly with the client side: the cluster-wide sum of
//     progqoid_tenant_requests_total{tenant=X} equals the HTTP requests
//     tenant X's sessions issued (retries and rejections included).
//
// This test lives in package progqoi_test so it can drive the public
// API through internal/bench without an import cycle.

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"progqoi/internal/bench"
	"progqoi/internal/obs"
	"progqoi/internal/server"
)

// tenantRequestsRe extracts per-tenant request counters from one node's
// exposition text.
var tenantRequestsRe = regexp.MustCompile(`(?m)^progqoid_tenant_requests_total\{tenant="([^"]+)",class="[^"]+"\} (\d+)$`)

func TestTenantQoSEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant cluster e2e is not a -short test")
	}
	ctx := context.Background()
	sc := bench.DefaultScenario()
	cl, err := bench.StartCluster(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sum, err := bench.RunAgainst(ctx, sc, cl)
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]bench.TenantSummary{}
	for _, ts := range sum.Tenants {
		byName[ts.Name] = ts
	}

	// Every session of every tenant finished, and finished bit-identical
	// to the local reference (a divergence fails the session inside
	// RunAgainst).
	for _, ts := range sum.Tenants {
		if ts.FailedSessions != 0 {
			t.Fatalf("tenant %s: %d failed sessions: %v", ts.Name, ts.FailedSessions, ts.Errors)
		}
		if ts.Requests == 0 {
			t.Fatalf("tenant %s completed no requests", ts.Name)
		}
	}

	// The over-limit tenant must actually have been throttled — and, per
	// the block above, recovered through 429 + Retry-After.
	if rl := byName["over-limit"].RateLimited; rl == 0 {
		t.Fatal("over-limit tenant was never rate-limited: the scenario is not exercising 429 recovery")
	}
	for _, name := range []string{"bulk-flood", "interactive"} {
		if rl := byName[name].RateLimited; rl != 0 {
			t.Fatalf("tenant %s rate-limited %d times: wide-open tenants must not throttle", name, rl)
		}
	}

	// The interactive tenant probes while bulk saturates every slot; the
	// priority queue must keep its tail latency in the bulk tenant's
	// neighborhood. The armed SLO gate pins the precise ceilings; here a
	// generous factor keeps tier-1 robust on slow shared runners.
	bulkP99, interP99 := byName["bulk-flood"].P99, byName["interactive"].P99
	if ceiling := max(2*bulkP99, 0.75); interP99 > ceiling {
		t.Fatalf("interactive p99 %.3fs over bulk-saturated ceiling %.3fs (bulk p99 %.3fs): bulk load is starving interactive",
			interP99, ceiling, bulkP99)
	}

	// Reconcile the server-side ledger with the client-side one. Each
	// node's /metrics must parse strictly, and the cluster-wide sum of
	// per-tenant request counters must equal the HTTP requests that
	// tenant's sessions issued — rejections and retries included, so the
	// two ledgers match to the request, not approximately.
	metricTotals := map[string]int64{}
	statTotals := map[string]int64{}
	for i := range sc.Nodes {
		text, err := cl.Metrics(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := obs.ParseExposition(strings.NewReader(text)); err != nil {
			t.Fatalf("node %d exposition: %v", i, err)
		}
		matches := tenantRequestsRe.FindAllStringSubmatch(text, -1)
		if len(matches) != len(sc.Tenants) {
			t.Fatalf("node %d exposes %d tenant request series, want %d", i, len(matches), len(sc.Tenants))
		}
		for _, m := range matches {
			n, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			metricTotals[m[1]] += n
		}
		for _, ts := range cl.Stats(i).Tenants {
			statTotals[ts.Name] += ts.Requests
		}
	}
	for _, ts := range sum.Tenants {
		if got := metricTotals[ts.Name]; got != ts.WireRequests {
			t.Errorf("tenant %s: cluster metrics count %d requests, clients sent %d", ts.Name, got, ts.WireRequests)
		}
		if got := statTotals[ts.Name]; got != metricTotals[ts.Name] {
			t.Errorf("tenant %s: /metrics says %d, Stats says %d", ts.Name, metricTotals[ts.Name], got)
		}
	}
}

// TestScenarioTenantsAreValid pins that the shipped scenario's tenant
// set passes the same validation progqoid applies to a -tenants file.
func TestScenarioTenantsAreValid(t *testing.T) {
	sc := bench.DefaultScenario()
	var tenants []server.Tenant
	for _, tl := range sc.Tenants {
		tenants = append(tenants, tl.Tenant)
	}
	norm, err := server.NormalizeTenants(tenants)
	if err != nil {
		t.Fatal(err)
	}
	for i, tn := range norm {
		if tn.Class != server.ClassInteractive && tn.Class != server.ClassBulk {
			t.Fatalf("tenant %d normalized to class %q", i, tn.Class)
		}
	}
}
