package progqoi

// parallel_bench_test.go benchmarks the PR 3 worker-pool retrieval engine.
// BenchmarkAdvanceSequential vs BenchmarkAdvanceParallel isolates the
// fragment-decode hot path (the CI gate asserts the parallel variant's
// speedup on multi-core runners); BenchmarkMultiQoIDo measures a mixed-QoI
// Session.Do end to end at both pool settings.

import (
	"context"
	"runtime"
	"testing"

	"progqoi/internal/core"
	"progqoi/internal/datagen"
	"progqoi/internal/progressive"
)

// benchRefactored builds one PMGARD-HB variable big enough for the decode
// pool to matter.
func benchRefactored(b *testing.B) *progressive.Refactored {
	b.Helper()
	ds := datagen.GE("GE-advance-bench", 64, 512, 11)
	ref, err := progressive.Refactor(ds.Fields[0], ds.Dims, progressive.Options{Method: progressive.PMGARDHB})
	if err != nil {
		b.Fatal(err)
	}
	return ref
}

func benchAdvance(b *testing.B, workers int) {
	ref := benchRefactored(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := progressive.NewReader(ref, nil)
		if err != nil {
			b.Fatal(err)
		}
		rd.SetWorkers(workers)
		if _, err := rd.Advance(context.Background(), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(ref.TotalBytes())
}

// BenchmarkAdvanceSequential is the single-threaded decode reference.
func BenchmarkAdvanceSequential(b *testing.B) { benchAdvance(b, 1) }

// BenchmarkAdvanceParallel decodes the same representation with the full
// worker pool; the CI benchmark gate requires it to beat the sequential
// reference ≥2x on the 4-core runner.
func BenchmarkAdvanceParallel(b *testing.B) { benchAdvance(b, runtime.GOMAXPROCS(0)) }

func benchMultiQoIDo(b *testing.B, workers int) {
	ds := datagen.GE("GE-do-bench", 24, 320, 23)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		b.Fatal(err)
	}
	qois := []QoI{TotalVelocity(0, 1, 2), ds.QoIs[1], ds.QoIs[2]}
	ranges := QoIRanges(qois, ds.Fields)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := arch.Open(WithSessionConfig(core.Config{Workers: workers}))
		if err != nil {
			b.Fatal(err)
		}
		targets := make([]Target, len(qois))
		for k := range qois {
			targets[k] = Target{QoI: qois[k], Tolerance: 1e-4, Relative: true, Range: ranges[k]}
		}
		res, err := sess.Do(context.Background(), Request{Targets: targets})
		if err != nil {
			b.Fatal(err)
		}
		if !res.ToleranceMet {
			b.Fatal("tolerance not met")
		}
	}
}

// BenchmarkMultiQoIDo certifies three mixed QoIs in one Do call: the
// shared fragment plan fetches each fragment once while the targets
// estimate concurrently.
func BenchmarkMultiQoIDo(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchMultiQoIDo(b, 1) })
	b.Run("workers=max", func(b *testing.B) { benchMultiQoIDo(b, runtime.GOMAXPROCS(0)) })
}
