package progqoi

// remote_test.go proves the networked retrieval subsystem end to end:
// refactor → storage archive → real HTTP fragment service (httptest) →
// remote Retrieve. A remote session must certify the same error bounds,
// reconstruct bit-identical data, and account identical fragment bytes as
// a local session — with actual wire bytes at most the logical retrieved
// bytes on repeated workloads (the cache makes re-requests free), and the
// wire accounting agreeing with internal/netsim's recorder.

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"progqoi/internal/datagen"
	"progqoi/internal/netsim"
	"progqoi/internal/server"
	"progqoi/internal/storage"
)

// serveArchiveHandler builds the real fragment-service handler over a
// local archive held in a MemStore.
func serveArchiveHandler(t *testing.T, arch *Archive, name string) *server.Server {
	t.Helper()
	st := storage.NewMemStore()
	if err := storage.WriteArchive(context.Background(), st, name, arch.Variables()); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(context.Background(), st, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// serveArchive exposes a local archive through the real HTTP service.
func serveArchive(t *testing.T, arch *Archive, name string) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(serveArchiveHandler(t, arch, name))
	t.Cleanup(hs.Close)
	return hs
}

// retrieveSequence runs the paper's tightening-tolerance workload on one
// session and returns per-step results.
func retrieveSequence(t *testing.T, sess *Session, qois []QoI, ranges []float64) []*Result {
	t.Helper()
	var out []*Result
	for _, rel := range []float64{1e-2, 1e-3, 1e-4} {
		rels := make([]float64, len(qois))
		for i := range rels {
			rels[i] = rel
		}
		res, err := sess.RetrieveRelative(qois, rels, ranges)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		out = append(out, res)
	}
	return out
}

func TestRemoteRetrieveMatchesLocalEndToEnd(t *testing.T) {
	ds := datagen.GE("GE-remote-e2e", 4, 300, 5)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	hs := serveArchive(t, arch, "ge")

	rarch, err := OpenRemote(context.Background(), hs.URL, "ge")
	if err != nil {
		t.Fatal(err)
	}
	if !rarch.Remote() || arch.Remote() {
		t.Fatal("Remote() flags wrong")
	}
	if rarch.StoredBytes() != arch.StoredBytes() {
		t.Fatalf("remote StoredBytes %d, local %d", rarch.StoredBytes(), arch.StoredBytes())
	}
	if got, want := rarch.FieldNames(), arch.FieldNames(); len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("field names %v, want %v", got, want)
	}

	vtot := TotalVelocity(0, 1, 2)
	temp, err := ParseQoI("T", "Pressure/(287.1*Density)", ds.FieldNames)
	if err != nil {
		t.Fatal(err)
	}
	qois := []QoI{vtot, temp}
	ranges := QoIRanges(qois, ds.Fields)

	// Local reference run.
	lsess, err := arch.Open()
	if err != nil {
		t.Fatal(err)
	}
	local := retrieveSequence(t, lsess, qois, ranges)

	// Remote run inside the network simulator's accounting, so the virtual
	// wire model and the real wire agree on what crossed.
	var remote []*Result
	var recBytes int64
	run, err := netsim.Run(1, 1, netsim.DefaultGlobusLink, func(_ int, rec *netsim.Recorder) error {
		rsess, err := rarch.Open(WithFetchObserver(rec.Observe))
		if err != nil {
			return err
		}
		remote = retrieveSequence(t, rsess, qois, ranges)
		recBytes = rec.Bytes()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for step := range local {
		l, r := local[step], remote[step]
		if !r.ToleranceMet {
			t.Fatalf("step %d: remote tolerance not met", step)
		}
		for k := range qois {
			if l.EstErrors[k] != r.EstErrors[k] {
				t.Fatalf("step %d QoI %d: certified error %g (local) != %g (remote)",
					step, k, l.EstErrors[k], r.EstErrors[k])
			}
		}
		if l.RetrievedBytes != r.RetrievedBytes {
			t.Fatalf("step %d: retrieved %d (local) != %d (remote)", step, l.RetrievedBytes, r.RetrievedBytes)
		}
		if len(l.Data) != len(r.Data) {
			t.Fatalf("step %d: %d vs %d data slices", step, len(l.Data), len(r.Data))
		}
		for v := range l.Data {
			if (l.Data[v] == nil) != (r.Data[v] == nil) {
				t.Fatalf("step %d var %d: nil-ness differs", step, v)
			}
			for j := range l.Data[v] {
				if math.Float64bits(l.Data[v][j]) != math.Float64bits(r.Data[v][j]) {
					t.Fatalf("step %d var %d point %d: %g (local) != %g (remote)",
						step, v, j, l.Data[v][j], r.Data[v][j])
				}
			}
		}
	}

	// Wire accounting: a cold client fetches exactly the fragment bytes the
	// session logically retrieved, and the netsim recorder — observing the
	// same session — must agree byte for byte.
	finalLogical := remote[len(remote)-1].RetrievedBytes
	if recBytes != finalLogical {
		t.Fatalf("netsim recorder %d bytes != session RetrievedBytes %d", recBytes, finalLogical)
	}
	if run.TotalBytes != finalLogical {
		t.Fatalf("netsim run total %d != session RetrievedBytes %d", run.TotalBytes, finalLogical)
	}
	st := rarch.RemoteStats()
	if st.WireBytes != finalLogical {
		t.Fatalf("cold client wire bytes %d != logical %d", st.WireBytes, finalLogical)
	}

	// Repeated workload: a second session re-requests every fragment, so
	// its logical bytes match, but the shared cache keeps them off the
	// wire — wire bytes must not grow (strictly less than 2× logical).
	rsess2, err := rarch.Open()
	if err != nil {
		t.Fatal(err)
	}
	remote2 := retrieveSequence(t, rsess2, qois, ranges)
	if got := remote2[len(remote2)-1].RetrievedBytes; got != finalLogical {
		t.Fatalf("second session retrieved %d, want %d", got, finalLogical)
	}
	st2 := rarch.RemoteStats()
	if st2.WireBytes != st.WireBytes {
		t.Fatalf("repeat workload leaked onto the wire: %d -> %d bytes", st.WireBytes, st2.WireBytes)
	}
	if st2.CacheHits == 0 {
		t.Fatal("repeat workload recorded no cache hits")
	}

	// Certified bounds must dominate the ground truth on the remote
	// reconstruction too.
	final := remote2[len(remote2)-1]
	actual := ActualQoIErrors(qois, ds.Fields, final.Data)
	for k := range qois {
		if actual[k] > final.EstErrors[k] {
			t.Fatalf("QoI %d: actual error %g exceeds certified %g", k, actual[k], final.EstErrors[k])
		}
	}
}

func TestOpenRemoteUnknownDataset(t *testing.T) {
	ds := datagen.GE("GE-remote-404", 4, 64, 3)
	arch, err := Refactor(ds.FieldNames, ds.Fields, ds.Dims)
	if err != nil {
		t.Fatal(err)
	}
	hs := serveArchive(t, arch, "ge")
	if _, err := OpenRemote(context.Background(), hs.URL, "missing"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
